// Dynamic arrivals example: the paper's future work (§6) asks how the
// protocols behave when messages arrive over time instead of in one
// batch. This example feeds the same Poisson and bursty workloads to
// One-Fail Adaptive and Exp Back-on/Back-off, with every station running
// its protocol from its own arrival instant, and reports delivery latency
// and channel backlog.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/protocol"
	"repro/internal/rng"
)

func main() {
	const messages = 400

	newOFA := func() (protocol.Controller, error) {
		return core.NewOneFailAdaptive(core.DefaultOFADelta)
	}
	newEBB := func() (protocol.Schedule, error) {
		return core.NewExpBackonBackoff(core.DefaultEBBDelta)
	}

	printResult := func(rate float64, name string, r dynamic.Result, n int) {
		status := fmt.Sprint(r.Completion)
		if !r.Completed {
			status = fmt.Sprintf("LIVELOCK (%d/%d)", r.Delivered, n)
		}
		fmt.Printf("%-8.2f %-28s %-18s %-14.1f %-14.0f %-12d\n",
			rate, name, status, r.Latency.Mean(), r.Latency.Quantile(0.99), r.MaxBacklog)
	}

	fmt.Println("Poisson arrivals (statistical), local per-arrival clocks:")
	fmt.Printf("%-8s %-28s %-18s %-14s %-14s %-12s\n",
		"rate", "protocol", "completion", "mean latency", "p99 latency", "max backlog")
	for _, rate := range []float64{0.02, 0.05, 0.1, 0.2} {
		w, err := dynamic.PoissonArrivals(messages, rate, rng.NewStream(7, "arrivals", fmt.Sprint(rate)))
		if err != nil {
			log.Fatal(err)
		}
		ofaLocal, err := dynamic.RunFair(w, newOFA, rng.NewStream(7, "ofa", fmt.Sprint(rate)),
			dynamic.WithMaxSlots(2_000_000))
		if err != nil {
			log.Fatal(err)
		}
		ofaGlobal, err := dynamic.RunFair(w, newOFA, rng.NewStream(7, "ofa-g", fmt.Sprint(rate)),
			dynamic.WithClock(dynamic.ClockGlobal), dynamic.WithMaxSlots(2_000_000))
		if err != nil {
			log.Fatal(err)
		}
		ebb, err := dynamic.RunWindow(w, newEBB, rng.NewStream(7, "ebb", fmt.Sprint(rate)),
			dynamic.WithMaxSlots(2_000_000))
		if err != nil {
			log.Fatal(err)
		}
		printResult(rate, "One-Fail Adaptive (local)", ofaLocal, w.N())
		printResult(rate, "One-Fail Adaptive (global)", ofaGlobal, w.N())
		printResult(rate, "Exp Back-on/Back-off", ebb, w.N())
	}
	fmt.Println("\nfinding: with per-arrival local clocks, OFA's BT-step (probability 1")
	fmt.Println("while σ=0) livelocks once both slot-parity classes hold ≥2 fresh")
	fmt.Println("stations — the dynamic problem genuinely needs new protocol design,")
	fmt.Println("as §6 anticipates. A shared global slot clock avoids the hazard.")

	fmt.Println("\nAdversarial bursts (4 bursts of 100, 2000 slots apart):")
	w, err := dynamic.BurstArrivals(4, 100, 2000)
	if err != nil {
		log.Fatal(err)
	}
	ofa, err := dynamic.RunFair(w, newOFA, rng.NewStream(8, "ofa"))
	if err != nil {
		log.Fatal(err)
	}
	ebb, err := dynamic.RunWindow(w, newEBB, rng.NewStream(8, "ebb"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s completion=%-8d mean-latency=%-10.1f max-backlog=%d\n",
		"One-Fail Adaptive", ofa.Completion, ofa.Latency.Mean(), ofa.MaxBacklog)
	fmt.Printf("%-28s completion=%-8d mean-latency=%-10.1f max-backlog=%d\n",
		"Exp Back-on/Back-off", ebb.Completion, ebb.Latency.Mean(), ebb.MaxBacklog)
	fmt.Println("\neach burst is absorbed before the next arrives — the batched analysis")
	fmt.Println("predicts the per-burst cost, supporting the paper's conjecture that")
	fmt.Println("non-monotonic strategies help the dynamic problem.")
}
