// MAC service example: the deployable surface of this library — the
// simulation-serving subsystem behind cmd/macsimd. The example boots
// the real HTTP server in-process on an ephemeral port and walks the
// full client lifecycle a user of the service would script with curl:
//
//  1. submit a static sweep (POST /v1/evaluate) and stream its NDJSON
//     progress events live,
//
//  2. submit a single solve (POST /v1/solve) and poll it to completion,
//
//  3. resubmit the identical sweep — a canonical-request-hash cache hit
//     that costs zero simulation time,
//
//  4. read the service's own accounting from /metrics,
//
//  5. shut down gracefully (the SIGTERM path: drain, then stop).
//
//     go run ./examples/macservice
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	mac "repro"
)

const sweep = `{"protocols":["one-fail","exp-bb"],"ks":[10,100,1000],"runs":3,"seed":1}`

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	served := make(chan error, 1)
	go func() { served <- mac.Serve(ctx, mac.ServerConfig{Addr: "127.0.0.1:0"}, ready) }()
	base := "http://" + <-ready
	fmt.Printf("macsimd serving on %s\n\n", base)

	// 1. Submit the paper's static sweep and follow it live: the job is
	// accepted onto the bounded queue (202 + Location) and every
	// finished (system, k, run) execution streams out as one NDJSON
	// progress event.
	id := submit(base+"/v1/evaluate", sweep, http.StatusAccepted)
	fmt.Printf("submitted evaluate job %s; streaming progress:\n", id)
	stream(base + "/v1/jobs/" + id + "/stream")

	// 2. Single executions work the same way; poll instead of stream.
	solveID := submit(base+"/v1/solve", `{"protocol":"exp-bb","k":100000,"seed":42}`, http.StatusAccepted)
	result := poll(base+"/v1/jobs/"+solveID, 30*time.Second)
	var solved struct {
		System string  `json:"system"`
		Slots  uint64  `json:"slots"`
		Ratio  float64 `json:"ratio"`
	}
	must(json.Unmarshal(result, &solved))
	fmt.Printf("\nsolve: %s delivered k=100000 in %d slots (ratio %.2f)\n\n",
		solved.System, solved.Slots, solved.Ratio)

	// 3. The identical sweep again: every simulation is deterministic in
	// (endpoint, params, seed), so the resubmit is answered from the
	// sharded result cache — 200 with the result inline, zero slots
	// simulated.
	t0 := time.Now()
	submit(base+"/v1/evaluate", sweep, http.StatusOK)
	fmt.Printf("resubmitted the identical sweep: cache hit in %s\n\n", time.Since(t0).Round(time.Microsecond))

	// 4. The service's own accounting.
	fmt.Println("service metrics:")
	for _, line := range strings.Split(metrics(base), "\n") {
		for _, name := range []string{"macsimd_cache_hits_total", "macsimd_cache_misses_total",
			"macsimd_cache_hit_rate", "macsimd_slots_simulated_total", "macsimd_queue_depth"} {
			if strings.HasPrefix(line, name+" ") {
				fmt.Println("  " + line)
			}
		}
	}

	// 5. Graceful shutdown: cancel plays the role of SIGTERM — the
	// server refuses new submissions, finishes what is queued, and
	// stops.
	cancel()
	must(<-served)
	fmt.Println("\nserver drained and stopped cleanly")
}

// submit POSTs body and returns the job id (empty for cache hits).
func submit(url, body string, wantStatus int) string {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	must(err)
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	must(err)
	if resp.StatusCode != wantStatus {
		log.Fatalf("POST %s = %d (want %d): %s", url, resp.StatusCode, wantStatus, data)
	}
	var sub struct {
		ID string `json:"id"`
	}
	must(json.Unmarshal(data, &sub))
	return sub.ID
}

// stream follows a job's NDJSON event stream, printing a compact tail.
func stream(url string) {
	resp, err := http.Get(url)
	must(err)
	defer resp.Body.Close()
	events := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var ev struct {
			Event  string `json:"event"`
			System string `json:"system"`
			K      int    `json:"k"`
			Run    int    `json:"run"`
			Slots  uint64 `json:"slots"`
		}
		must(json.Unmarshal(sc.Bytes(), &ev))
		switch ev.Event {
		case "progress":
			events++
			// 2 protocols × 3 sizes × 3 runs = 18 events; show a sample.
			if ev.Run == 0 && ev.K >= 1000 {
				fmt.Printf("  progress: %-22s k=%-5d solved in %d slots\n", ev.System, ev.K, ev.Slots)
			}
		case "done":
			fmt.Printf("  ... %d progress events total, result delivered on the stream\n", events)
		case "failed":
			log.Fatalf("job failed: %s", sc.Text())
		}
	}
	must(sc.Err())
}

// poll waits for a job's terminal state and returns its result.
func poll(url string, timeout time.Duration) json.RawMessage {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		must(err)
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			log.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
		}
		var view struct {
			Status string          `json:"status"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		must(err)
		switch view.Status {
		case "done":
			return view.Result
		case "failed":
			log.Fatalf("job failed: %s", view.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatal("job did not finish in time")
	return nil
}

// metrics scrapes the exposition text.
func metrics(base string) string {
	resp, err := http.Get(base + "/metrics")
	must(err)
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	must(err)
	return string(data)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
