// MAC service example: the deployable surface of this library. A
// telemetry stream of messages arrives over time; the gated-batch MAC
// service (internal/maclayer) delivers every message over the shared
// channel by running the paper's One-Fail Adaptive protocol on each
// batch. Gating converts the dynamic arrival stream into the static
// batched instances the protocol is specified for — inheriting the
// paper's linear-time-per-batch guarantee and avoiding the local-clock
// livelock that naive per-arrival deployment exhibits (see
// examples/dynamic).
//
//	go run ./examples/macservice
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/maclayer"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/stats"
)

// telemetry is the application payload.
type telemetry struct {
	sensor  int
	reading float64
}

func main() {
	src := rng.NewStream(31337, "macservice")
	svc := maclayer.New(func() (protocol.Station, error) {
		ctrl, err := core.NewOneFailAdaptive(core.DefaultOFADelta)
		if err != nil {
			return nil, err
		}
		return protocol.NewFairStation(ctrl), nil
	}, src)

	// Drive 20k slots of channel time with two kinds of traffic: a steady
	// trickle and a couple of event bursts (a threshold alarm that fires
	// many sensors at once — the paper's batched-arrival motivation).
	const horizon = 20000
	arrivals := rng.NewStream(31337, "arrivals")
	var latency stats.Summary
	perBatch := make(map[int]int)
	enqueued := 0
	maxBacklog := 0

	for slot := 1; slot <= horizon; slot++ {
		if arrivals.Bernoulli(0.02) { // steady trickle
			svc.Enqueue(telemetry{sensor: enqueued, reading: 20 + arrivals.NormFloat64()})
			enqueued++
		}
		if slot == 5000 || slot == 12000 { // alarm: 300 sensors fire together
			for i := 0; i < 300; i++ {
				svc.Enqueue(telemetry{sensor: enqueued, reading: 90 + arrivals.NormFloat64()})
				enqueued++
			}
		}
		d, err := svc.Step()
		if err != nil {
			log.Fatal(err)
		}
		if d != nil {
			latency.Add(float64(d.Latency()))
			perBatch[d.Batch]++
		}
		if b := svc.Backlog(); b > maxBacklog {
			maxBacklog = b
		}
	}
	// Drain whatever is still in flight at the horizon.
	rest, err := svc.RunUntilDrained(horizon + 100000)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range rest {
		latency.Add(float64(d.Latency()))
		perBatch[d.Batch]++
	}

	fmt.Printf("delivered %d/%d messages in %d slots across %d batches\n",
		svc.Delivered(), enqueued, svc.Slot(), svc.Batch())
	fmt.Printf("latency: mean %.1f  median %.0f  p99 %.0f  max %.0f slots\n",
		latency.Mean(), latency.Median(), latency.Quantile(0.99), latency.Max())
	fmt.Printf("max backlog %d (bursts of 300 + trickle), %d collision slots\n",
		maxBacklog, svc.Collisions())

	// The two alarm batches should each resolve at the protocol's static
	// cost: ≈ 7.4 slots per message.
	big := 0
	for _, n := range perBatch {
		if n > big {
			big = n
		}
	}
	fmt.Printf("largest batch carried %d messages (alarm burst + trickle overlap)\n", big)
	fmt.Println("\neach burst is resolved as one static k-selection instance — the")
	fmt.Println("service inherits the paper's 2(δ+1)k w.h.p. guarantee per batch.")
}
