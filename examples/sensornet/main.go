// Sensor network example: a field of sensors is triggered by the same
// physical event and every sensor must report its reading to a base
// station over one shared radio channel — the paper's motivating Radio
// Network scenario (§2), including its remark that sensor networks can
// realize the delivery acknowledgement through a designated leader.
//
// The example runs One-Fail Adaptive on the exact per-node simulator,
// shows the first contention-heavy slots, and prints delivery statistics.
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sim"
)

// reading is the payload a sensor wants to deliver.
type reading struct {
	sensorID int
	value    float64
}

func main() {
	const sensors = 200
	src := rng.NewStream(2024, "sensornet")

	// Synthesize the readings that arrive in one batch when the event fires.
	readings := make([]reading, sensors)
	for i := range readings {
		readings[i] = reading{sensorID: i, value: 20 + 5*src.NormFloat64()}
	}

	// Every sensor runs its own One-Fail Adaptive automaton. None of them
	// knows how many sensors were triggered.
	stations := make([]protocol.Station, sensors)
	for i := range stations {
		ctrl, err := core.NewOneFailAdaptive(core.DefaultOFADelta)
		if err != nil {
			log.Fatal(err)
		}
		stations[i] = protocol.NewFairStation(ctrl)
	}

	fmt.Printf("event fired: %d sensors contend for the channel\n\n", sensors)
	fmt.Println("first 15 slots on the air:")
	res, err := sim.Run(stations, src,
		sim.WithDeliveryOrder(),
		sim.WithTrace(func(r sim.SlotRecord) {
			if r.Slot > 15 {
				return
			}
			note := ""
			if r.Outcome == sim.Success {
				note = fmt.Sprintf("  base station acks sensor %d (%.1f°C)",
					r.Deliverer, readings[r.Deliverer].value)
			}
			fmt.Printf("  slot %2d: %2d transmitters -> %-9s%s\n", r.Slot, r.Transmitters, r.Outcome, note)
		}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nall %d readings delivered in %d slots (ratio %.2f)\n",
		res.Delivered, res.Slots, float64(res.Slots)/float64(sensors))
	fmt.Printf("channel usage: %d successes, %d collisions, %d silent slots\n",
		res.Successes, res.Collisions, res.Silences)
	fmt.Printf("first five sensors heard: %v\n", res.DeliveryOrder[:5])

	// The base station can reconstruct the mean field temperature once all
	// readings are in.
	sum := 0.0
	for _, r := range readings {
		sum += r.value
	}
	fmt.Printf("mean reported temperature: %.2f°C\n", sum/sensors)
}
