// Command adversary reproduces the ranking-inversion result under
// adversarial load: which contention-resolution protocol is "best"
// depends on who schedules the arrivals.
//
// Under a benign Poisson trickle, monotone binary exponential back-off
// sustains the offered load with tiny latencies, while the paper's Exp
// Back-on/Back-off saturates well below it — steady isolated arrivals
// are exactly the regime monotone back-off was built for. Under a
// thundering-herd adversary offering the *same* long-run load in large
// co-timed batches, the ranking inverts: Exp Back-on/Back-off drains
// every herd in linear time (Theorem 2) while binary exponential
// back-off's Θ(k·log k) batch cost drives it into saturation — the §1
// argument for non-monotone protocols, reproduced as a live throughput
// gap.
//
// Usage: go run ./examples/adversary [-messages 20000] [-runs 2] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/scenario"
	"repro/internal/throughput"
)

// lambda is the shared long-run offered load (messages per slot) of both
// scenarios: below binary exponential back-off's Poisson saturation
// point, above its herd saturation point.
const lambda = 0.25

// herdBatch is the adversary's herd size. Exp Back-on/Back-off drains a
// batch of k in ~2.7k slots, so at λ=0.25 a period of 4k slots leaves
// slack; binary exponential back-off needs ~k·log₂k ≈ 11k slots and
// falls behind forever.
const herdBatch = 2048

func main() {
	messages := flag.Int("messages", 20000, "messages per execution")
	runs := flag.Int("runs", 2, "executions per (protocol, scenario)")
	seed := flag.Uint64("seed", 1, "master seed")
	flag.Parse()

	protos := []throughput.Protocol{
		throughput.DefaultProtocols()[0], // Exp Back-on/Back-off
		throughput.DefaultProtocols()[2], // Binary Exp Backoff
	}
	scenarios := []scenario.Workload{
		{Name: "poisson (benign)", Arrivals: scenario.Poisson{}},
		{Name: "thundering herd (adversarial)", Arrivals: scenario.Herd{Batch: herdBatch}},
	}

	fmt.Printf("ranking inversion at offered load λ=%.2f (%d messages, %d runs):\n\n", lambda, *messages, *runs)
	winners := make([]string, len(scenarios))
	for i, scn := range scenarios {
		series, err := throughput.Run(protos, throughput.Config{
			Lambdas:  []float64{lambda},
			Messages: *messages,
			Runs:     *runs,
			Seed:     *seed,
			Scenario: scn,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "adversary:", err)
			os.Exit(1)
		}
		fmt.Printf("scenario: %s\n", scn.Name)
		fmt.Print(throughput.Table(series))
		ebb, beb := series[0].Points[0], series[1].Points[0]
		winners[i] = series[0].Protocol.Name
		if beb.Throughput.Mean() > ebb.Throughput.Mean() {
			winners[i] = series[1].Protocol.Name
		}
		fmt.Printf("→ higher sustained throughput: %s (%.3g vs %.3g msgs/slot)\n\n",
			winners[i],
			maxf(ebb.Throughput.Mean(), beb.Throughput.Mean()),
			minf(ebb.Throughput.Mean(), beb.Throughput.Mean()))
	}
	if winners[0] != winners[1] {
		fmt.Printf("ranking inverted: %q wins the benign workload, %q wins the adversarial one.\n", winners[0], winners[1])
	} else {
		fmt.Printf("no inversion at these parameters: %q wins both scenarios.\n", winners[0])
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
