// Saturation example: where does each contention-resolution protocol
// stop keeping up with sustained traffic?
//
// The paper proves linear-time batched k-selection; its §6 future work
// asks about messages arriving over time. This example sweeps the
// offered load λ across the saturation points of the windowed protocols
// on the event-driven engine — 50 000 messages per execution, far beyond
// what the per-node simulator handles — and prints the throughput table
// and the throughput-vs-load chart.
//
//	go run ./examples/saturation
package main

import (
	"fmt"
	"log"

	"repro/internal/throughput"
)

func main() {
	cfg := throughput.Config{
		Lambdas:  []float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4},
		Messages: 50_000,
		Runs:     3,
		Seed:     1,
	}
	series, err := throughput.Run(throughput.WindowedProtocols(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Poisson λ-sweep, %d messages per execution, %d runs per point:\n\n", cfg.Messages, cfg.Runs)
	fmt.Print(throughput.Table(series))
	fmt.Println()
	fmt.Print(throughput.Plot(series))

	fmt.Println(`
finding: the ranking of the batched evaluation inverts under sustained
arrivals. Exp Back-on/Back-off — linear-time on batches — saturates
first (λ ≈ 0.15): its sawtooth windows reset to aggressive sizes and
fresh arrivals keep colliding with the backlog. Loglog-iterated back-off
holds to λ ≈ 0.25, and plain binary exponential back-off — the paper's
superlinear strawman for batches — sustains the highest load, because
ever-growing windows are exactly what a persistent backlog needs. §6's
dynamic problem genuinely rewards different protocol design.`)

	fmt.Println("\nAdversarial shapes at λ = 0.1 (same long-run load, burstier arrivals):")
	for _, shape := range []throughput.Shape{throughput.Poisson, throughput.Bursty, throughput.OnOff} {
		cfg := throughput.Config{Lambdas: []float64{0.1}, Messages: 50_000, Runs: 3, Seed: 2, Shape: shape}
		series, err := throughput.Run(throughput.WindowedProtocols(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s arrivals:\n", shape)
		fmt.Print(throughput.Table(series))
	}
}
