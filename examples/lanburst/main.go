// LAN burst example: the paper's introduction motivates non-monotone
// contention resolution with bursty (batched) packet arrivals on local
// area networks, where the ubiquitous binary exponential back-off is
// provably superlinear (Θ(k log k), [2]) while the paper's sawtooth
// Exp Back-on/Back-off stays linear.
//
// This example sweeps burst sizes and prints the steps/packet ratio of
// binary exponential back-off, loglog-iterated back-off (the best
// monotone strategy) and Exp Back-on/Back-off, showing who wins and by
// what factor as bursts grow.
//
//	go run ./examples/lanburst
package main

import (
	"fmt"
	"log"

	mac "repro"
)

func main() {
	beb, err := mac.ExponentialBackoff(2)
	if err != nil {
		log.Fatal(err)
	}
	llib, err := mac.LoglogIteratedBackoff()
	if err != nil {
		log.Fatal(err)
	}
	ebb, err := mac.ExpBackonBackoff()
	if err != nil {
		log.Fatal(err)
	}
	protocols := []mac.Protocol{beb, llib, ebb}

	const runs = 5
	fmt.Println("steps per packet for a burst of k packets (lower is better):")
	fmt.Printf("%-10s %-24s %-24s %-24s\n", "burst k", "binary exponential", "loglog-iterated", "exp back-on/back-off")
	for _, k := range []int{16, 64, 256, 1024, 4096, 16384, 65536} {
		ratios := make([]float64, len(protocols))
		for i, p := range protocols {
			var total uint64
			for seed := uint64(0); seed < runs; seed++ {
				steps, err := p.Solve(k, seed)
				if err != nil {
					log.Fatal(err)
				}
				total += steps
			}
			ratios[i] = float64(total) / runs / float64(k)
		}
		fmt.Printf("%-10d %-24.2f %-24.2f %-24.2f\n", k, ratios[0], ratios[1], ratios[2])
	}
	fmt.Println("\nbinary exponential back-off degrades with burst size; the paper's")
	fmt.Println("non-monotone sawtooth stays flat — its advantage grows with the burst.")
}
