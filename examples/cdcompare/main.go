// Collision-detection comparison: §2 of the paper surveys what becomes
// possible when the channel reports silence/success/collision instead of
// the paper's noise-only feedback. This example quantifies the gap on the
// same workload:
//
//   - randomized binary tree splitting (Capetanakis/Hayes/
//     Tsybakov–Mikhailov) with and without the Massey skip, which needs
//     collision detection and resolves k contenders in ≈ 2.9k / 2.66k
//     slots;
//
//   - the paper's One-Fail Adaptive and Exp Back-on/Back-off, which need
//     nothing and pay ≈ 7.4k / ≈ 5–8k;
//
//   - Willard-style leader election, the O(log log k) primitive §2 cites
//     for building the acknowledgement a bare channel lacks.
//
//     go run ./examples/cdcompare
package main

import (
	"fmt"
	"log"

	mac "repro"
	"repro/internal/cd"
	"repro/internal/rng"
)

func main() {
	const runs = 5
	ofa, err := mac.OneFailAdaptive()
	if err != nil {
		log.Fatal(err)
	}
	ebb, err := mac.ExpBackonBackoff()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("steps per contender, with vs without collision detection:")
	fmt.Printf("%-9s %-18s %-18s %-20s %-20s\n",
		"k", "tree (CD)", "tree+Massey (CD)", "One-Fail (no CD)", "Exp B-on/B-off (no CD)")
	for _, k := range []int{100, 1000, 10000, 100000} {
		tree := treeRatio(k, runs)
		massey := treeRatio(k, runs, cd.WithMasseySkip())
		ratioOFA := solveRatio(ofa, k, runs)
		ratioEBB := solveRatio(ebb, k, runs)
		fmt.Printf("%-9d %-18.2f %-18.2f %-20.2f %-20.2f\n", k, tree, massey, ratioOFA, ratioEBB)
	}

	fmt.Println("\nleader election (collision detection, unknown k) — mean slots to a")
	fmt.Println("unique leader, the ack-infrastructure primitive of §2:")
	for _, k := range []int{10, 1000, 100000, 10000000} {
		const elections = 200
		var total uint64
		for i := 0; i < elections; i++ {
			steps, err := cd.LeaderRun(k, rng.NewStream(9, "leader", fmt.Sprint(k), fmt.Sprint(i)), 0)
			if err != nil {
				log.Fatal(err)
			}
			total += steps
		}
		fmt.Printf("  k=%-9d mean %.1f slots\n", k, float64(total)/elections)
	}
	fmt.Println("\ncollision detection buys a ~2.6x constant over the paper's optimal")
	fmt.Println("no-CD protocols — and the paper's point is that its protocols get")
	fmt.Println("within that constant with no channel feedback at all.")
}

func treeRatio(k, runs int, opts ...cd.TreeOption) float64 {
	var total uint64
	for i := 0; i < runs; i++ {
		steps, err := cd.TreeRun(k, rng.NewStream(9, "tree", fmt.Sprint(k), fmt.Sprint(i), fmt.Sprint(len(opts))), 0, opts...)
		if err != nil {
			log.Fatal(err)
		}
		total += steps
	}
	return float64(total) / float64(runs) / float64(k)
}

func solveRatio(p mac.Protocol, k, runs int) float64 {
	var total uint64
	for seed := uint64(0); seed < uint64(runs); seed++ {
		steps, err := p.Solve(k, seed)
		if err != nil {
			log.Fatal(err)
		}
		total += steps
	}
	return float64(total) / float64(runs) / float64(k)
}
