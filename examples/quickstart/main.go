// Quickstart: solve a static k-selection instance with the paper's two
// protocols through the declarative spec API — the same description,
// execution path and result document the CLI (`macsim solve`) and the
// HTTP API (POST /v1/solve) use — and compare the measured cost against
// the analysis.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	mac "repro"
)

func main() {
	const k = 1000 // contenders, unknown to the protocols

	for _, name := range []string{"one-fail", "exp-bb"} {
		// One declarative spec per experiment; mac.Run validates it,
		// executes it with cancellation support, and streams progress.
		exec, err := mac.Run(context.Background(), mac.SolveExperiment(mac.SolveSpec{
			Protocol: mac.ProtocolSpec{Name: name},
			K:        k,
			Seed:     42,
		}))
		if err != nil {
			log.Fatal(err)
		}
		res, err := exec.Result()
		if err != nil {
			log.Fatal(err)
		}
		r := res.Solve // the exact document /v1/solve would cache and serve
		fmt.Printf("%-22s delivered %d messages in %d slots (ratio %.2f, analysis %s)\n",
			r.System, r.K, r.Slots, r.Ratio, r.Analysis)
	}
}
