// Quickstart: solve a static k-selection instance with the paper's two
// protocols and compare the measured cost against the analysis.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mac "repro"
)

func main() {
	const k = 1000 // contenders, unknown to the protocols

	ofa, err := mac.OneFailAdaptive() // δ = 2.72, the paper's choice
	if err != nil {
		log.Fatal(err)
	}
	ebb, err := mac.ExpBackonBackoff() // δ = 0.366
	if err != nil {
		log.Fatal(err)
	}

	for _, p := range []mac.Protocol{ofa, ebb} {
		steps, err := p.Solve(k, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s delivered %d messages in %d slots (ratio %.2f, analysis %s)\n",
			p.Name(), k, steps, float64(steps)/k, p.AnalysisRatio(k))
	}
}
