package mac

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Protocol is a contention-resolution protocol configuration ready to
// solve static k-selection instances.
type Protocol struct {
	sys harness.System
}

// Name returns the protocol's display name.
func (p Protocol) Name() string { return p.sys.Name() }

// AnalysisRatio returns the steps/k ratio the protocol's published
// analysis predicts at network size k (symbolic forms verbatim).
func (p Protocol) AnalysisRatio(k int) string { return p.sys.AnalysisRatio(k) }

// Solve simulates one static k-selection execution with k contenders and
// the given seed, returning the number of slots until every message was
// delivered. Identical (k, seed) always reproduce the identical result.
func (p Protocol) Solve(k int, seed uint64) (uint64, error) {
	if k < 0 {
		return 0, fmt.Errorf("mac: negative k %d", k)
	}
	return p.sys.Run(k, rng.NewStream(seed, "mac.Solve", p.Name(), fmt.Sprint(k)))
}

// OneFailAdaptive returns the paper's novel protocol (Algorithm 1) with
// the evaluation's δ = 2.72; pass a delta to override. Theorem 1: solves
// static k-selection in 2(δ+1)k + O(log²k) slots w.p. ≥ 1 − 2/(1+k),
// with no knowledge of k or n.
func OneFailAdaptive(delta ...float64) (Protocol, error) {
	d := core.DefaultOFADelta
	if len(delta) > 0 {
		d = delta[0]
	}
	if _, err := core.NewOneFailAdaptive(d); err != nil {
		return Protocol{}, err
	}
	name := "One-Fail Adaptive"
	if d != core.DefaultOFADelta {
		name = fmt.Sprintf("One-Fail Adaptive (δ=%v)", d)
	}
	return Protocol{sys: harness.NewFairSystem(name,
		func(int) string { return fmt.Sprintf("%.1f", analysis.OFARatio(d)) },
		func(int) (protocol.Controller, error) { return core.NewOneFailAdaptive(d) },
	)}, nil
}

// ExpBackonBackoff returns the paper's sawtooth window protocol
// (Algorithm 2) with the evaluation's δ = 0.366; pass a delta to
// override. Theorem 2: solves static k-selection within 4(1+1/δ)k slots
// w.h.p. for big enough k.
func ExpBackonBackoff(delta ...float64) (Protocol, error) {
	d := core.DefaultEBBDelta
	if len(delta) > 0 {
		d = delta[0]
	}
	if _, err := core.NewExpBackonBackoff(d); err != nil {
		return Protocol{}, err
	}
	name := "Exp Back-on/Back-off"
	if d != core.DefaultEBBDelta {
		name = fmt.Sprintf("Exp Back-on/Back-off (δ=%v)", d)
	}
	return Protocol{sys: harness.NewWindowSystem(name,
		func(int) string { return fmt.Sprintf("%.1f", analysis.EBBRatio(d)) },
		func(int) (protocol.Schedule, error) { return core.NewExpBackonBackoff(d) },
	)}, nil
}

// LogFailsAdaptive returns the baseline of reference [7] (reconstructed;
// see DESIGN.md) with ε = 1/(k+1) derived per instance and the given
// BT-step fraction ξt (the paper evaluates 1/2 and 1/10). Unlike the
// paper's own protocols it needs a bound on the network size.
func LogFailsAdaptive(xiT float64) (Protocol, error) {
	if _, err := baseline.NewLogFailsAdaptive(0.5, xiT); err != nil {
		return Protocol{}, err
	}
	denom := int(1 / xiT)
	return Protocol{sys: harness.NewFairSystem(fmt.Sprintf("Log-Fails Adaptive (%d)", denom),
		func(int) string {
			return fmt.Sprintf("%.1f", analysis.LFARatio(baseline.DefaultLFAXiDelta, baseline.DefaultLFAXiBeta, xiT))
		},
		func(k int) (protocol.Controller, error) {
			return baseline.NewLogFailsAdaptive(1/(float64(k)+1), xiT)
		},
	)}, nil
}

// LoglogIteratedBackoff returns the monotone baseline of reference [2]
// (reconstructed; see DESIGN.md) with growth base r = 2; pass a base to
// override. Makespan Θ(k·loglog k/logloglog k) w.h.p.
func LoglogIteratedBackoff(base ...float64) (Protocol, error) {
	r := baseline.DefaultLLIBBase
	if len(base) > 0 {
		r = base[0]
	}
	if _, err := baseline.NewLoglogIteratedBackoff(r); err != nil {
		return Protocol{}, err
	}
	return Protocol{sys: harness.NewWindowSystem("Loglog-Iterated Backoff",
		func(int) string { return "Θ(loglog k/logloglog k)" },
		func(int) (protocol.Schedule, error) { return baseline.NewLoglogIteratedBackoff(r) },
	)}, nil
}

// ExponentialBackoff returns classic monotone r-exponential back-off
// (binary for r = 2), the practical strategy whose superlinear makespan
// Θ(k·log_{log r}k) motivates the paper's protocols.
func ExponentialBackoff(r float64) (Protocol, error) {
	if _, err := baseline.NewExponentialBackoff(r); err != nil {
		return Protocol{}, err
	}
	return Protocol{sys: harness.NewWindowSystem(fmt.Sprintf("Exponential Backoff (r=%v)", r),
		func(int) string { return "Θ(k·log k) total" },
		func(int) (protocol.Schedule, error) { return baseline.NewExponentialBackoff(r) },
	)}, nil
}

// PaperProtocols returns the five configurations of the paper's
// evaluation (§5), in Table 1 row order.
func PaperProtocols() []Protocol {
	systems := harness.PaperSystems()
	out := make([]Protocol, len(systems))
	for i, s := range systems {
		out[i] = Protocol{sys: s}
	}
	return out
}

// EvalConfig parameterizes Evaluate.
type EvalConfig struct {
	// MaxExp selects network sizes 10, 10², …, 10^MaxExp (default 5; the
	// paper uses 7 — minutes of CPU time).
	MaxExp int
	// Ks overrides the network sizes entirely when non-empty.
	Ks []int
	// Runs is the number of averaged runs per point (default 10, as in
	// the paper).
	Runs int
	// Seed is the master seed (default 1).
	Seed uint64
}

// Result is one protocol's sweep outcome.
type Result = harness.SeriesResult

// Evaluate reruns the paper's evaluation for the given protocols and
// returns one series per protocol.
func Evaluate(protocols []Protocol, cfg EvalConfig) ([]Result, error) {
	if cfg.MaxExp <= 0 {
		cfg.MaxExp = 5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	ks := cfg.Ks
	if len(ks) == 0 {
		ks = harness.PaperKs(cfg.MaxExp)
	}
	systems := make([]harness.System, len(protocols))
	for i, p := range protocols {
		systems[i] = p.sys
	}
	sweep := harness.Sweep{Ks: ks, Runs: cfg.Runs, Seed: cfg.Seed}
	return sweep.Run(systems)
}

// Table1 renders sweep results as the paper's Table 1 (steps/nodes ratio
// per size, with the analysis column) in Markdown.
func Table1(results []Result) string { return harness.Table1(results) }

// Figure1 renders sweep results as the paper's Figure 1 (average steps
// per size, log-log) as ASCII art plus the raw numbers.
func Figure1(results []Result) string { return harness.Figure1(results) }

// CSV renders sweep results as tidy comma-separated records.
func CSV(results []Result) string { return harness.CSV(results) }
