package mac

import (
	"context"
	"fmt"

	"repro/internal/harness"
	"repro/internal/rng"
	"repro/internal/spec"
)

// Protocol is a contention-resolution protocol configuration ready to
// solve static k-selection instances.
type Protocol struct {
	sys harness.System
}

// Name returns the protocol's display name.
func (p Protocol) Name() string { return p.sys.Name() }

// AnalysisRatio returns the steps/k ratio the protocol's published
// analysis predicts at network size k (symbolic forms verbatim).
func (p Protocol) AnalysisRatio(k int) string { return p.sys.AnalysisRatio(k) }

// Solve simulates one static k-selection execution with k contenders and
// the given seed, returning the number of slots until every message was
// delivered. Identical (k, seed) always reproduce the identical result,
// on every front end: Solve, `macsim solve` and /v1/solve derive the
// same randomness.
func (p Protocol) Solve(k int, seed uint64) (uint64, error) {
	if k < 0 {
		return 0, fmt.Errorf("mac: negative k %d", k)
	}
	return p.sys.Run(k, rng.NewStream(seed, "mac.Solve", p.Name(), fmt.Sprint(k)))
}

// protocolBySpec resolves a registry configuration with parameter
// overrides — the one constructor behind the five named façades below.
// The registry probes a protocol instance per construction, so invalid
// parameters fail here rather than mid-run.
func protocolBySpec(name string, params map[string]float64) (Protocol, error) {
	sys, err := harness.SystemBySpec(name, params)
	if err != nil {
		return Protocol{}, err
	}
	return Protocol{sys: sys}, nil
}

// optParam builds the override map for an optional variadic parameter.
func optParam(key string, v []float64) map[string]float64 {
	if len(v) == 0 {
		return nil
	}
	return map[string]float64{key: v[0]}
}

// OneFailAdaptive returns the paper's novel protocol (Algorithm 1) with
// the evaluation's δ = 2.72; pass a delta to override. Theorem 1: solves
// static k-selection in 2(δ+1)k + O(log²k) slots w.p. ≥ 1 − 2/(1+k),
// with no knowledge of k or n.
func OneFailAdaptive(delta ...float64) (Protocol, error) {
	return protocolBySpec("one-fail", optParam("delta", delta))
}

// ExpBackonBackoff returns the paper's sawtooth window protocol
// (Algorithm 2) with the evaluation's δ = 0.366; pass a delta to
// override. Theorem 2: solves static k-selection within 4(1+1/δ)k slots
// w.h.p. for big enough k.
func ExpBackonBackoff(delta ...float64) (Protocol, error) {
	return protocolBySpec("exp-bb", optParam("delta", delta))
}

// LogFailsAdaptive returns the baseline of reference [7] (reconstructed;
// see DESIGN.md) with ε = 1/(k+1) derived per instance and the given
// BT-step fraction ξt (the paper evaluates 1/2 and 1/10). Unlike the
// paper's own protocols it needs a bound on the network size.
func LogFailsAdaptive(xiT float64) (Protocol, error) {
	return protocolBySpec("log-fails-2", map[string]float64{"xi_t": xiT})
}

// LoglogIteratedBackoff returns the monotone baseline of reference [2]
// (reconstructed; see DESIGN.md) with growth base r = 2; pass a base to
// override. Makespan Θ(k·loglog k/logloglog k) w.h.p.
func LoglogIteratedBackoff(base ...float64) (Protocol, error) {
	return protocolBySpec("loglog-iterated", optParam("r", base))
}

// ExponentialBackoff returns classic monotone r-exponential back-off
// (binary for r = 2), the practical strategy whose superlinear makespan
// Θ(k·log_{log r}k) motivates the paper's protocols.
func ExponentialBackoff(r float64) (Protocol, error) {
	return protocolBySpec("exp-backoff", map[string]float64{"r": r})
}

// PaperProtocols returns the five configurations of the paper's
// evaluation (§5), in Table 1 row order.
func PaperProtocols() []Protocol {
	systems := harness.PaperSystems()
	out := make([]Protocol, len(systems))
	for i, s := range systems {
		out[i] = Protocol{sys: s}
	}
	return out
}

// EvalConfig parameterizes Evaluate.
type EvalConfig struct {
	// MaxExp selects network sizes 10, 10², …, 10^MaxExp (default 5; the
	// paper uses 7 — minutes of CPU time).
	MaxExp int
	// Ks overrides the network sizes entirely when non-empty.
	Ks []int
	// Runs is the number of averaged runs per point (default 10, as in
	// the paper).
	Runs int
	// Seed is the master seed (default 1).
	Seed uint64
}

// Result is one protocol's sweep outcome.
type Result = harness.SeriesResult

// Evaluate reruns the paper's evaluation for the given protocols and
// returns one series per protocol. It is a compatibility wrapper over
// Run: the same sweep is reachable as an EvaluateExperiment spec, with
// streaming progress and cancellation.
func Evaluate(protocols []Protocol, cfg EvalConfig) ([]Result, error) {
	if cfg.MaxExp <= 0 {
		cfg.MaxExp = 5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Runs <= 0 {
		cfg.Runs = harness.DefaultRuns
	}
	ks := cfg.Ks
	if len(ks) == 0 {
		ks = harness.PaperKs(cfg.MaxExp)
	}
	if len(protocols) == 0 {
		return []Result{}, nil
	}
	systems := make([]harness.System, len(protocols))
	for i, p := range protocols {
		systems[i] = p.sys
	}
	exec, err := Run(context.Background(), spec.ForEvaluate(spec.EvaluateSpec{
		Ks:      ks,
		Runs:    cfg.Runs,
		Seed:    cfg.Seed,
		Systems: systems,
	}))
	if err != nil {
		return nil, err
	}
	res, err := exec.Result()
	if err != nil {
		return nil, err
	}
	return res.Sweep(), nil
}

// Table1 renders sweep results as the paper's Table 1 (steps/nodes ratio
// per size, with the analysis column) in Markdown.
func Table1(results []Result) string { return harness.Table1(results) }

// Figure1 renders sweep results as the paper's Figure 1 (average steps
// per size, log-log) as ASCII art plus the raw numbers.
func Figure1(results []Result) string { return harness.Figure1(results) }

// CSV renders sweep results as tidy comma-separated records.
func CSV(results []Result) string { return harness.CSV(results) }
