package mac

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestServerMatchesLibrary verifies API/library parity: a /v1/solve
// job must reproduce mac.Protocol.Solve bit for bit — same protocol,
// same k, same seed, same slot count.
func TestServerMatchesLibrary(t *testing.T) {
	srv, err := NewServer(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const k, seed = 700, 99
	p, err := OneFailAdaptive()
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Solve(k, seed)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
		strings.NewReader(`{"protocol":"one-fail","k":700,"seed":99}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var view struct {
			Status string `json:"status"`
			Error  string `json:"error"`
			Result struct {
				Slots uint64 `json:"slots"`
			} `json:"result"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if view.Status == "failed" {
			t.Fatalf("job failed: %s", view.Error)
		}
		if view.Status == "done" {
			if view.Result.Slots != want {
				t.Fatalf("API solved in %d slots, library in %d", view.Result.Slots, want)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeGracefulShutdown runs the programmatic daemon entry point on
// an ephemeral port and stops it via context cancellation.
func TestServeGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	served := make(chan error, 1)
	go func() { served <- Serve(ctx, ServerConfig{Addr: "127.0.0.1:0"}, ready) }()

	select {
	case addr := <-ready:
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz = %d", resp.StatusCode)
		}
	case err := <-served:
		t.Fatalf("serve exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve never became ready")
	}
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not stop")
	}
}
