package mac

import (
	"context"

	"repro/internal/session"
	"repro/internal/spec"
)

// KindSession tags session parameter documents in the serving
// subsystem. Sessions are not experiments — they stream windowed
// aggregates instead of producing a cached Result.
const KindSession = spec.KindSession

// SessionSpec configures a live session: a dynamic Poisson workload
// simulated window by window on the event-skip kernel, indefinitely or
// up to MaxWindows, under a windowed protocol, with typed controls
// accepted mid-flight. Shared verbatim by OpenSession, the CLI
// (macsim session) and the HTTP API (POST /v1/sessions).
type SessionSpec = spec.SessionSpec

// JamSpec describes a session's channel impairment: "off", "on", or a
// deterministic "pattern" duty cycle (Burst jammed slots per Period).
type JamSpec = spec.JamSpec

// ControlMessage is one typed mid-flight session control: set-lambda,
// jam, swap-protocol, pause, resume, checkpoint or stop. The session
// stamps each accepted control with the slot at which it takes effect.
type ControlMessage = spec.ControlMessage

// ParseControl parses the one-line control grammar ("set-lambda 0.3",
// "jam pattern 8:3", "swap-protocol exp-backoff", "pause", "stop").
func ParseControl(line string) (ControlMessage, error) { return spec.ParseControl(line) }

// SessionWindow is one aggregation window's throughput / backlog /
// collision / latency aggregate, streamed by Session.Events.
type SessionWindow = spec.SessionWindow

// SessionGap marks window aggregates dropped by slow-consumer
// backpressure: the stream has a hole, the simulation does not.
type SessionGap = spec.SessionGap

// SessionControlEvent acknowledges an applied control on the stream.
type SessionControlEvent = spec.SessionControl

// SessionCheckpoint is the replay document: the initial validated spec
// plus the slot-stamped control log. ReplaySession reproduces every
// window aggregate of the original run bit for bit from it.
type SessionCheckpoint = spec.SessionCheckpoint

// SessionEnd is the terminal event of a session stream.
type SessionEnd = spec.SessionEnd

// Session is a live (or finished) session handle: Control to steer,
// Events to stream, Checkpoint to snapshot the replay document, Stop
// for hard teardown, Wait for the terminal error.
type Session = session.Session

// SessionOption configures OpenSession and ReplaySession.
type SessionOption = session.Option

// SessionObserver receives per-window, per-control and per-drop
// callbacks from a running session (serving-layer accounting hooks).
type SessionObserver = session.Observer

// WithSessionObserver attaches observer callbacks to a session.
func WithSessionObserver(o SessionObserver) SessionOption { return session.WithObserver(o) }

// OpenSession validates sp (in place: defaults applied, names
// canonicalized) and starts a live session. Canceling ctx tears it
// down (status "canceled"); a stop control ends it cleanly. The
// returned handle's Events stream carries SessionWindow aggregates,
// control acknowledgments, gap markers under backpressure, and a
// SessionEnd record.
func OpenSession(ctx context.Context, sp SessionSpec, opts ...SessionOption) (*Session, error) {
	return session.Open(ctx, sp, opts...)
}

// ReplaySession re-executes a checkpoint document deterministically:
// the same (seed, spec, control log) produces byte-identical window
// aggregates. Replay sessions accept no controls and ignore pacing.
func ReplaySession(ctx context.Context, ck SessionCheckpoint, opts ...SessionOption) (*Session, error) {
	return session.Replay(ctx, ck, opts...)
}
