package mac

import (
	"context"
	"net"

	"repro/internal/server"
	"repro/internal/store"
)

// ServerConfig parameterizes the simulation-serving subsystem
// (internal/server): listen address, workers, queue bound, result
// cache size, per-request limits, the tenancy layer (per-tenant
// admission buckets via Tenants, deficit-round-robin FairnessWeights,
// the interactive PriorityLane; see docs/tenancy.md), durability
// (Store, LeaseDuration, MaxRetries; see docs/durability.md) and
// static cluster membership (Peers, SelfAddr). The zero value serves
// on 127.0.0.1:8080 with sensible single-node, single-tenant defaults.
type ServerConfig = server.Config

// ServerStore persists the server's job records and result documents.
// The default is in-memory; NewFileStore survives restarts.
type ServerStore = store.Store

// NewFileStore opens (creating if needed) a file-backed ServerStore
// rooted at dir: one JSON record per job, content-addressed result
// documents, atomic writes with fsync. See docs/durability.md for the
// on-disk layout and the recovery semantics it enables.
func NewFileStore(dir string) (ServerStore, error) { return store.OpenFile(dir) }

// ServerLimits bounds what one API request may ask of the simulators.
type ServerLimits = server.Limits

// TenantLimits configures one tenant's token-bucket admission control
// in ServerConfig.Tenants: sustained jobs/second and burst capacity.
type TenantLimits = server.TenantLimits

// Server is the running simulation-serving subsystem: an HTTP API over
// this package's simulators with per-tenant admission control and
// weighted-fair scheduling into a worker pool, a
// canonical-request-hash result cache with duplicate-request
// coalescing, NDJSON result streaming, and /metrics. See cmd/macsimd
// for the daemon and examples/macservice for a client walkthrough.
type Server = server.Server

// NewServer builds a Server, recovers any persisted jobs from
// cfg.Store, and starts the worker pool. It fails only on invalid
// cluster membership (cfg.Peers/cfg.SelfAddr). Expose Server.Handler
// on any listener (or call Server.ListenAndServe), then Server.Drain +
// Server.Close to stop gracefully.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Serve runs the simulation-serving subsystem on cfg.Addr until ctx is
// canceled, then drains gracefully: in-flight and queued jobs finish
// (bounded by cfg.DrainTimeout) while new submissions are refused. It
// is the programmatic equivalent of running cmd/macsimd. ready, if
// non-nil, receives the bound address once listening (useful with
// ":0").
func Serve(ctx context.Context, cfg ServerConfig, ready chan<- string) error {
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	return srv.ListenAndServe(ctx, ready)
}

// ServeOn is Serve for an existing listener; the caller keeps control
// of address selection and socket options.
func ServeOn(ctx context.Context, cfg ServerConfig, ln net.Listener) error {
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	return srv.Serve(ctx, ln)
}
