package mac

import (
	"context"
	"net"

	"repro/internal/server"
)

// ServerConfig parameterizes the simulation-serving subsystem
// (internal/server): listen address, workers, queue bound, result
// cache size, per-request limits, and the tenancy layer (per-tenant
// admission buckets via Tenants, deficit-round-robin FairnessWeights,
// the interactive PriorityLane; see docs/tenancy.md). The zero value
// serves on 127.0.0.1:8080 with sensible single-tenant defaults.
type ServerConfig = server.Config

// ServerLimits bounds what one API request may ask of the simulators.
type ServerLimits = server.Limits

// TenantLimits configures one tenant's token-bucket admission control
// in ServerConfig.Tenants: sustained jobs/second and burst capacity.
type TenantLimits = server.TenantLimits

// Server is the running simulation-serving subsystem: an HTTP API over
// this package's simulators with per-tenant admission control and
// weighted-fair scheduling into a worker pool, a
// canonical-request-hash result cache with duplicate-request
// coalescing, NDJSON result streaming, and /metrics. See cmd/macsimd
// for the daemon and examples/macservice for a client walkthrough.
type Server = server.Server

// NewServer builds a Server and starts its worker pool. Expose
// Server.Handler on any listener (or call Server.ListenAndServe), then
// Server.Drain + Server.Close to stop gracefully.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// Serve runs the simulation-serving subsystem on cfg.Addr until ctx is
// canceled, then drains gracefully: in-flight and queued jobs finish
// (bounded by cfg.DrainTimeout) while new submissions are refused. It
// is the programmatic equivalent of running cmd/macsimd. ready, if
// non-nil, receives the bound address once listening (useful with
// ":0").
func Serve(ctx context.Context, cfg ServerConfig, ready chan<- string) error {
	srv := server.New(cfg)
	defer srv.Close()
	return srv.ListenAndServe(ctx, ready)
}

// ServeOn is Serve for an existing listener; the caller keeps control
// of address selection and socket options.
func ServeOn(ctx context.Context, cfg ServerConfig, ln net.Listener) error {
	srv := server.New(cfg)
	defer srv.Close()
	return srv.Serve(ctx, ln)
}
