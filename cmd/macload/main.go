// Command macload is a closed-loop load generator for macsimd: it warms
// the daemon's result cache with one simulation, then hammers the same
// canonical request from many concurrent workers and reports sustained
// request rate, client-observed latency quantiles and cache hit rate.
// Because every simulation is deterministic in (endpoint, params, seed),
// the steady state measures the serving plane — routing, canonical
// hashing, the sharded cache — with zero simulation time per request,
// i.e. the capacity that makes interactive traffic plausible.
//
// Usage:
//
//	macload [-url http://127.0.0.1:8080] [-endpoint evaluate] [-body JSON]
//	        [-c 32] [-duration 5s] [-warm] [-bench] [-min-rate 0]
//
// With -bench the summary is followed by a `go test -bench`-format
// result line, so CI can append it to the benchmark stream that
// cmd/benchjson converts into BENCH_PR.json:
//
//	BenchmarkMacloadCached/evaluate  61234  408163 ns/op  12246 req/s  0.9999 hit-rate
//
// A non-zero -min-rate turns the run into a gate: the exit status is 1
// when the sustained rate falls short.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "macload:", err)
		os.Exit(1)
	}
}

// defaultBodies are the canonical cached queries per endpoint: small
// enough to warm in seconds, representative of an interactive sweep.
var defaultBodies = map[string]string{
	"solve":      `{"protocol":"one-fail","k":100000,"seed":42}`,
	"evaluate":   `{"ks":[10,100,1000],"runs":3,"seed":1}`,
	"throughput": `{"lambdas":[0.1,0.2],"messages":500,"runs":1,"seed":1}`,
	"scenario":   `{"scenario":"herd","lambdas":[0.1],"messages":300,"runs":1,"seed":1}`,
}

type options struct {
	url      string
	endpoint string
	body     string
	workers  int
	duration time.Duration
	warm     bool
	bench    bool
	minRate  float64
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("macload", flag.ContinueOnError)
	var opts options
	fs.StringVar(&opts.url, "url", "http://127.0.0.1:8080", "macsimd base URL")
	fs.StringVar(&opts.endpoint, "endpoint", "evaluate", "submit endpoint: solve, evaluate, throughput, scenario")
	fs.StringVar(&opts.body, "body", "", "request body (default: a small canonical query per endpoint)")
	fs.IntVar(&opts.workers, "c", 32, "concurrent closed-loop workers")
	fs.DurationVar(&opts.duration, "duration", 5*time.Second, "measurement duration")
	fs.BoolVar(&opts.warm, "warm", true, "prime the cache (submit once and wait) before measuring")
	fs.BoolVar(&opts.bench, "bench", false, "append a `go test -bench`-format result line")
	fs.Float64Var(&opts.minRate, "min-rate", 0, "fail unless the sustained rate reaches this many requests/sec")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if _, ok := defaultBodies[opts.endpoint]; !ok {
		return fmt.Errorf("unknown endpoint %q (valid: solve, evaluate, throughput, scenario)", opts.endpoint)
	}
	if opts.body == "" {
		opts.body = defaultBodies[opts.endpoint]
	}
	if opts.workers < 1 {
		return fmt.Errorf("-c must be ≥ 1, got %d", opts.workers)
	}
	if opts.duration <= 0 {
		return fmt.Errorf("-duration must be > 0, got %v", opts.duration)
	}
	return drive(opts, stdout)
}

// result aggregates one worker's closed loop.
type workerResult struct {
	requests int64
	hits     int64
	queued   int64 // 202 responses (cache not warm for this key yet)
	rejected int64 // 429 backpressure responses
	latency  stats.Summary
}

func drive(opts options, stdout io.Writer) error {
	submitURL := strings.TrimRight(opts.url, "/") + "/v1/" + opts.endpoint
	// The default transport keeps only two idle connections per host;
	// a closed loop with dozens of workers would churn through TCP
	// handshakes and measure the dialer instead of the server.
	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        2 * opts.workers,
			MaxIdleConnsPerHost: 2 * opts.workers,
			IdleConnTimeout:     90 * time.Second,
		},
	}

	if opts.warm {
		if err := warm(client, opts.url, submitURL, opts.body); err != nil {
			return fmt.Errorf("warming %s: %w", submitURL, err)
		}
	}

	var stop atomic.Bool
	results := make([]workerResult, opts.workers)
	var wg sync.WaitGroup
	start := time.Now()
	time.AfterFunc(opts.duration, func() { stop.Store(true) })
	for w := 0; w < opts.workers; w++ {
		wg.Add(1)
		go func(res *workerResult) {
			defer wg.Done()
			for !stop.Load() {
				t0 := time.Now()
				resp, err := client.Post(submitURL, "application/json", strings.NewReader(opts.body))
				if err != nil {
					continue // the server may be mid-drain; keep looping until stop
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				res.requests++
				res.latency.Add(float64(time.Since(t0).Nanoseconds()))
				switch {
				case resp.Header.Get("X-Cache") == "hit":
					res.hits++
				case resp.StatusCode == http.StatusAccepted:
					res.queued++
				case resp.StatusCode == http.StatusTooManyRequests:
					res.rejected++
				}
			}
		}(&results[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total workerResult
	for i := range results {
		total.requests += results[i].requests
		total.hits += results[i].hits
		total.queued += results[i].queued
		total.rejected += results[i].rejected
		total.latency.Merge(&results[i].latency)
	}
	if total.requests == 0 {
		return fmt.Errorf("no request completed within %v", opts.duration)
	}
	rate := float64(total.requests) / elapsed.Seconds()
	hitRate := float64(total.hits) / float64(total.requests)

	fmt.Fprintf(stdout, "macload: %d requests in %.2fs from %d workers against %s → %.0f req/s\n",
		total.requests, elapsed.Seconds(), opts.workers, submitURL, rate)
	fmt.Fprintf(stdout, "latency: p50 %.2fms  p99 %.2fms  max %.2fms\n",
		total.latency.Quantile(0.5)/1e6, total.latency.Quantile(0.99)/1e6, total.latency.Max()/1e6)
	fmt.Fprintf(stdout, "cache: %.4f hit rate client-side (%d hits, %d queued, %d rejected)\n",
		hitRate, total.hits, total.queued, total.rejected)
	if line, err := scrapeServer(client, opts.url); err == nil {
		fmt.Fprintf(stdout, "server: %s\n", line)
	}
	if opts.bench {
		// The standard benchmark line format, parseable by cmd/benchjson:
		// iterations = requests, ns/op = wall time per request.
		fmt.Fprintf(stdout, "BenchmarkMacloadCached/%s \t%8d\t%12.0f ns/op\t%12.1f req/s\t%8.4f hit-rate\n",
			opts.endpoint, total.requests, float64(elapsed.Nanoseconds())/float64(total.requests), rate, hitRate)
	}
	if opts.minRate > 0 && rate < opts.minRate {
		return fmt.Errorf("sustained %.0f req/s, below the -min-rate gate of %.0f", rate, opts.minRate)
	}
	return nil
}

// warm submits the canonical request once and waits until the job
// reaches a terminal state, so the measurement phase runs against a
// primed cache.
func warm(client *http.Client, baseURL, submitURL, body string) error {
	resp, err := client.Post(submitURL, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return nil // already cached
	case http.StatusAccepted:
	default:
		return fmt.Errorf("submit answered %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	id, err := extractJSONString(data, "id")
	if err != nil {
		return err
	}
	pollURL := strings.TrimRight(baseURL, "/") + "/v1/jobs/" + id
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := client.Get(pollURL)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		status, err := extractJSONString(data, "status")
		if err != nil {
			return err
		}
		switch status {
		case "done":
			return nil
		case "failed":
			return fmt.Errorf("warm job failed: %s", strings.TrimSpace(string(data)))
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("warm job did not finish in time")
}

// extractJSONString pulls a top-level string field out of a JSON
// object.
func extractJSONString(data []byte, field string) (string, error) {
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(data, &obj); err != nil {
		return "", fmt.Errorf("decoding response %s: %w", strings.TrimSpace(string(data)), err)
	}
	raw, ok := obj[field]
	if !ok {
		return "", fmt.Errorf("response missing %q: %s", field, strings.TrimSpace(string(data)))
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return "", err
	}
	return s, nil
}

// scrapeServer summarizes the daemon's own view from /metrics.
func scrapeServer(client *http.Client, baseURL string) (string, error) {
	resp, err := client.Get(strings.TrimRight(baseURL, "/") + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	var picked []string
	for _, name := range []string{"macsimd_cache_hit_rate", "macsimd_queue_depth", "macsimd_slots_simulated_total"} {
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, name+" ") {
				picked = append(picked, strings.ReplaceAll(line, " ", "="))
				break
			}
		}
	}
	return strings.Join(picked, " "), nil
}
