// Command macload is a closed-loop load generator for macsimd: it warms
// the daemon's result cache with one simulation, then hammers the same
// canonical request from many concurrent workers and reports sustained
// request rate, client-observed latency quantiles and cache hit rate.
// Because every simulation is deterministic in (endpoint, params, seed),
// the steady state measures the serving plane — routing, canonical
// hashing, the sharded cache — with zero simulation time per request,
// i.e. the capacity that makes interactive traffic plausible.
//
// Usage:
//
//	macload [-url http://127.0.0.1:8080] [-endpoint evaluate] [-body JSON]
//	        [-c 32] [-duration 5s] [-warm] [-bench] [-min-rate 0]
//
// -url accepts a comma-separated list of base URLs; workers spread
// requests across them round-robin, so a multi-node macsimd fleet
// (-peers) is loaded through every front end at once. Fairness mode
// (-tenants) drives the first URL only.
//
// With -bench the summary is followed by a `go test -bench`-format
// result line, so CI can append it to the benchmark stream that
// cmd/benchjson converts into BENCH_PR.json:
//
//	BenchmarkMacloadCached/evaluate  61234  408163 ns/op  12246 req/s  0.9999 hit-rate
//
// A non-zero -min-rate turns the run into a gate: the exit status is 1
// when the sustained rate falls short.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "macload:", err)
		os.Exit(1)
	}
}

// defaultBodies are the canonical cached queries per endpoint: small
// enough to warm in seconds, representative of an interactive sweep.
var defaultBodies = map[string]string{
	"solve":      `{"protocol":"one-fail","k":100000,"seed":42}`,
	"evaluate":   `{"ks":[10,100,1000],"runs":3,"seed":1}`,
	"throughput": `{"lambdas":[0.1,0.2],"messages":500,"runs":1,"seed":1}`,
	"scenario":   `{"scenario":"herd","lambdas":[0.1],"messages":300,"runs":1,"seed":1}`,
}

type options struct {
	url      string
	urls     []string // url split on commas, trimmed
	endpoint string
	body     string
	workers  int
	duration time.Duration
	warm     bool
	bench    bool
	minRate  float64

	// Fairness mode (-tenants ≥ 2): a zipfian multi-tenant mix instead
	// of the single cached request. See driveFairness.
	tenants     int
	zipf        float64
	maxSlowdown float64
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("macload", flag.ContinueOnError)
	var opts options
	fs.StringVar(&opts.url, "url", "http://127.0.0.1:8080", "macsimd base URL, or a comma-separated list to round-robin a fleet")
	fs.StringVar(&opts.endpoint, "endpoint", "evaluate", "submit endpoint: solve, evaluate, throughput, scenario")
	fs.StringVar(&opts.body, "body", "", "request body (default: a small canonical query per endpoint)")
	fs.IntVar(&opts.workers, "c", 32, "concurrent closed-loop workers")
	fs.DurationVar(&opts.duration, "duration", 5*time.Second, "measurement duration")
	fs.BoolVar(&opts.warm, "warm", true, "prime the cache (submit once and wait) before measuring")
	fs.BoolVar(&opts.bench, "bench", false, "append a `go test -bench`-format result line")
	fs.Float64Var(&opts.minRate, "min-rate", 0, "fail unless the sustained rate reaches this many requests/sec")
	fs.IntVar(&opts.tenants, "tenants", 0, "fairness mode: total tenants (1 saturating + N-1 small; 0 = off)")
	fs.Float64Var(&opts.zipf, "zipf", 1.1, "fairness mode: zipf exponent of the small-tenant request mix")
	fs.Float64Var(&opts.maxSlowdown, "max-slowdown", 0, "fairness mode: fail when loaded small-tenant p99 exceeds this multiple of the unloaded p99 (0 = no gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	for _, u := range strings.Split(opts.url, ",") {
		if u = strings.TrimSpace(strings.TrimRight(u, "/")); u != "" {
			opts.urls = append(opts.urls, u)
		}
	}
	if len(opts.urls) == 0 {
		return fmt.Errorf("-url %q holds no base URL", opts.url)
	}
	// Fairness mode and the metric scrapes address one node.
	opts.url = opts.urls[0]
	if opts.tenants != 0 {
		if opts.tenants < 2 {
			return fmt.Errorf("-tenants must be ≥ 2 (one saturating + at least one small), got %d", opts.tenants)
		}
		if opts.zipf < 0 {
			return fmt.Errorf("-zipf must be ≥ 0, got %v", opts.zipf)
		}
		if opts.duration <= 0 {
			return fmt.Errorf("-duration must be > 0, got %v", opts.duration)
		}
		return driveFairness(opts, stdout)
	}
	if _, ok := defaultBodies[opts.endpoint]; !ok {
		return fmt.Errorf("unknown endpoint %q (valid: solve, evaluate, throughput, scenario)", opts.endpoint)
	}
	if opts.body == "" {
		opts.body = defaultBodies[opts.endpoint]
	}
	if opts.workers < 1 {
		return fmt.Errorf("-c must be ≥ 1, got %d", opts.workers)
	}
	if opts.duration <= 0 {
		return fmt.Errorf("-duration must be > 0, got %v", opts.duration)
	}
	return drive(opts, stdout)
}

// result aggregates one worker's closed loop.
type workerResult struct {
	requests int64
	hits     int64
	queued   int64 // 202 responses (cache not warm for this key yet)
	rejected int64 // 429 backpressure responses
	latency  stats.Summary
}

func drive(opts options, stdout io.Writer) error {
	submitURLs := make([]string, len(opts.urls))
	for i, base := range opts.urls {
		submitURLs[i] = base + "/v1/" + opts.endpoint
	}
	// The default transport keeps only two idle connections per host;
	// a closed loop with dozens of workers would churn through TCP
	// handshakes and measure the dialer instead of the server.
	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        2 * opts.workers,
			MaxIdleConnsPerHost: 2 * opts.workers,
			IdleConnTimeout:     90 * time.Second,
		},
	}

	if opts.warm {
		// Warm through each front end: in a fleet, the first submit lands
		// the result on the key's owner and the rest confirm every node
		// serves it (by proxy or read-through) before measurement starts.
		for i, base := range opts.urls {
			if err := warm(client, base, submitURLs[i], opts.body); err != nil {
				return fmt.Errorf("warming %s: %w", submitURLs[i], err)
			}
		}
	}

	var stop atomic.Bool
	results := make([]workerResult, opts.workers)
	var wg sync.WaitGroup
	start := time.Now()
	time.AfterFunc(opts.duration, func() { stop.Store(true) })
	for w := 0; w < opts.workers; w++ {
		wg.Add(1)
		go func(w int, res *workerResult) {
			defer wg.Done()
			// Round-robin across the fleet, each worker starting at its own
			// offset so the bases stay evenly loaded at any worker count.
			next := w
			for !stop.Load() {
				submitURL := submitURLs[next%len(submitURLs)]
				next++
				t0 := time.Now()
				resp, err := client.Post(submitURL, "application/json", strings.NewReader(opts.body))
				if err != nil {
					continue // the server may be mid-drain; keep looping until stop
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				res.requests++
				res.latency.Add(float64(time.Since(t0).Nanoseconds()))
				switch {
				case resp.Header.Get("X-Cache") == "hit":
					res.hits++
				case resp.StatusCode == http.StatusAccepted:
					res.queued++
				case resp.StatusCode == http.StatusTooManyRequests:
					res.rejected++
				}
			}
		}(w, &results[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total workerResult
	for i := range results {
		total.requests += results[i].requests
		total.hits += results[i].hits
		total.queued += results[i].queued
		total.rejected += results[i].rejected
		total.latency.Merge(&results[i].latency)
	}
	if total.requests == 0 {
		return fmt.Errorf("no request completed within %v", opts.duration)
	}
	rate := float64(total.requests) / elapsed.Seconds()
	hitRate := float64(total.hits) / float64(total.requests)

	fmt.Fprintf(stdout, "macload: %d requests in %.2fs from %d workers against %s → %.0f req/s\n",
		total.requests, elapsed.Seconds(), opts.workers, strings.Join(submitURLs, ","), rate)
	fmt.Fprintf(stdout, "latency: p50 %.2fms  p99 %.2fms  max %.2fms\n",
		total.latency.Quantile(0.5)/1e6, total.latency.Quantile(0.99)/1e6, total.latency.Max()/1e6)
	fmt.Fprintf(stdout, "cache: %.4f hit rate client-side (%d hits, %d queued, %d rejected)\n",
		hitRate, total.hits, total.queued, total.rejected)
	for _, base := range opts.urls {
		if line, err := scrapeServer(client, base); err == nil {
			fmt.Fprintf(stdout, "server %s: %s\n", base, line)
		}
	}
	if opts.bench {
		// The standard benchmark line format, parseable by cmd/benchjson:
		// iterations = requests, ns/op = wall time per request.
		fmt.Fprintf(stdout, "BenchmarkMacloadCached/%s \t%8d\t%12.0f ns/op\t%12.1f req/s\t%8.4f hit-rate\n",
			opts.endpoint, total.requests, float64(elapsed.Nanoseconds())/float64(total.requests), rate, hitRate)
	}
	if opts.minRate > 0 && rate < opts.minRate {
		return fmt.Errorf("sustained %.0f req/s, below the -min-rate gate of %.0f", rate, opts.minRate)
	}
	return nil
}

// fairnessResult aggregates one tenant loop's phase.
type fairnessResult struct {
	requests int64
	rejected int64
	failed   int64
	latency  stats.Summary
}

// driveFairness measures cross-tenant isolation instead of cached
// throughput: tenant t0 saturates the queue with unique-seed batch
// sweeps while tenants t1..tN-1 submit small interactive solves in a
// zipfian mix (tenant i's request share ∝ i^-zipf), each measured from
// submit to completion. Phase one runs the small tenants alone for the
// unloaded p99 baseline; phase two adds the saturating tenant. The
// fairness metric is the slowdown — loaded p99 over unloaded p99 —
// which deficit-round-robin keeps near 1 and a FIFO lets grow with the
// heavy tenant's backlog. With -bench the loaded p99 lands in a
// BenchmarkMacloadFairness line; -max-slowdown turns the ratio into a
// gate.
func driveFairness(opts options, stdout io.Writer) error {
	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        4 * opts.tenants,
			MaxIdleConnsPerHost: 4 * opts.tenants,
			IdleConnTimeout:     90 * time.Second,
		},
	}
	base := strings.TrimRight(opts.url, "/")
	// Unique seeds per run so every request is a fresh job, never a
	// cache hit: fairness is about queue wait, which hits would bypass.
	var seq atomic.Int64
	seq.Store(time.Now().UnixNano() % (1 << 40))

	// smallLoop is one small tenant's closed loop: submit a small solve,
	// wait for completion, record the server-side latency (the job's
	// created→finished span: queue wait plus execution — the scheduling
	// lane itself, unpolluted by client HTTP or poll-interval noise),
	// think for `delay`, repeat. k=20000 keeps the job interactive-class
	// (60k estimated slots, under the 2^16 default threshold) while
	// giving it a service time large enough to measure a slowdown
	// against.
	smallLoop := func(tenant string, delay time.Duration, stop *atomic.Bool, res *fairnessResult) {
		for !stop.Load() {
			body := fmt.Sprintf(`{"protocol":"one-fail","k":20000,"seed":%d}`, seq.Add(1))
			status, data, err := submitAs(client, base+"/v1/solve", tenant, body)
			switch {
			case err != nil:
				time.Sleep(5 * time.Millisecond)
				continue
			case status == http.StatusTooManyRequests:
				res.rejected++
				time.Sleep(5 * time.Millisecond)
				continue
			case status != http.StatusAccepted:
				res.failed++
				time.Sleep(5 * time.Millisecond)
				continue
			}
			id, err := extractJSONString(data, "id")
			if err != nil {
				res.failed++
				continue
			}
			lat, err := waitJob(client, base, id)
			if err != nil {
				res.failed++
				continue
			}
			res.requests++
			res.latency.Add(float64(lat.Nanoseconds()))
			time.Sleep(delay)
		}
	}

	// heavyLoop keeps the saturating tenant's sub-queue full of
	// unique-seed batch sweeps; completions are not awaited — pressure,
	// not latency, is its job. 3 runs × 7500 contenders is just past the
	// batch threshold (67.5k estimated slots), so each sweep is
	// individually short but the backlog is classified and scheduled as
	// batch work.
	heavyLoop := func(stop *atomic.Bool, submitted *atomic.Int64) {
		body := func() string {
			return fmt.Sprintf(`{"protocols":["one-fail"],"ks":[7500],"runs":3,"seed":%d}`, seq.Add(1))
		}
		for !stop.Load() {
			status, _, err := submitAs(client, base+"/v1/evaluate", "t0", body())
			if err != nil || status == http.StatusTooManyRequests {
				time.Sleep(2 * time.Millisecond)
				continue
			}
			if status == http.StatusAccepted {
				submitted.Add(1)
			}
		}
	}

	// phase runs the small tenants (and optionally the heavy one) for
	// the configured duration and returns the merged small-tenant view.
	phase := func(loaded bool) (fairnessResult, int64) {
		var stop atomic.Bool
		var heavySubmitted atomic.Int64
		var wg sync.WaitGroup
		results := make([]fairnessResult, opts.tenants-1)
		if loaded {
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func() { defer wg.Done(); heavyLoop(&stop, &heavySubmitted) }()
			}
		}
		for i := 1; i < opts.tenants; i++ {
			// Zipfian mix: tenant i thinks i^zipf times longer between
			// requests than tenant 1, so request shares follow i^-zipf.
			delay := time.Duration(float64(10*time.Millisecond) * math.Pow(float64(i), opts.zipf))
			wg.Add(1)
			go func(i int, res *fairnessResult) {
				defer wg.Done()
				smallLoop(fmt.Sprintf("t%d", i), delay, &stop, res)
			}(i, &results[i-1])
		}
		time.AfterFunc(opts.duration, func() { stop.Store(true) })
		wg.Wait()
		var total fairnessResult
		for i := range results {
			total.requests += results[i].requests
			total.rejected += results[i].rejected
			total.failed += results[i].failed
			total.latency.Merge(&results[i].latency)
		}
		return total, heavySubmitted.Load()
	}

	fmt.Fprintf(stdout, "macload fairness: %d tenants (t0 saturating, %d small, zipf %.2f) against %s\n",
		opts.tenants, opts.tenants-1, opts.zipf, base)
	baseline, _ := phase(false)
	if baseline.requests == 0 {
		return fmt.Errorf("baseline phase completed no small-tenant request within %v", opts.duration)
	}
	basP99 := baseline.latency.Quantile(0.99)
	fmt.Fprintf(stdout, "unloaded: %d small requests, p50 %.2fms p99 %.2fms\n",
		baseline.requests, baseline.latency.Quantile(0.5)/1e6, basP99/1e6)

	loaded, heavy := phase(true)
	if loaded.requests == 0 {
		return fmt.Errorf("loaded phase completed no small-tenant request within %v", opts.duration)
	}
	lodP99 := loaded.latency.Quantile(0.99)
	slowdown := lodP99 / basP99
	fmt.Fprintf(stdout, "loaded: %d small requests (%d rejected, %d failed), p50 %.2fms p99 %.2fms; heavy submitted %d sweeps\n",
		loaded.requests, loaded.rejected, loaded.failed,
		loaded.latency.Quantile(0.5)/1e6, lodP99/1e6, heavy)
	fmt.Fprintf(stdout, "fairness: small-tenant p99 slowdown under saturation %.2fx\n", slowdown)
	if line, err := scrapeServer(client, opts.url); err == nil && line != "" {
		fmt.Fprintf(stdout, "server: %s\n", line)
	}
	if opts.bench {
		// ns/op is the loaded small-tenant p99 — the number BENCH_BASE
		// pins; the slowdown rides along as an extra unit pair.
		fmt.Fprintf(stdout, "BenchmarkMacloadFairness/tenants=%d \t%8d\t%12.0f ns/op\t%12.2f p99-slowdown\n",
			opts.tenants, loaded.requests, lodP99, slowdown)
	}
	if opts.maxSlowdown > 0 && slowdown > opts.maxSlowdown {
		return fmt.Errorf("small-tenant p99 slowdown %.2fx exceeds the -max-slowdown gate of %.2fx", slowdown, opts.maxSlowdown)
	}
	return nil
}

// submitAs posts one body under a tenant identity and returns the
// status and response bytes.
func submitAs(client *http.Client, url, tenant, body string) (int, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

// waitJob polls until the job reaches a terminal state and returns its
// server-side latency: the created→finished span from the job view.
func waitJob(client *http.Client, baseURL, id string) (time.Duration, error) {
	pollURL := baseURL + "/v1/jobs/" + id
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		resp, err := client.Get(pollURL)
		if err != nil {
			return 0, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		status, err := extractJSONString(data, "status")
		if err != nil {
			return 0, err
		}
		switch status {
		case "done":
			return jobSpan(data)
		case "failed", "canceled":
			return 0, fmt.Errorf("job %s: %s", id, status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return 0, fmt.Errorf("job %s did not finish in time", id)
}

// jobSpan extracts created→finished from a terminal job view.
func jobSpan(view []byte) (time.Duration, error) {
	var v struct {
		Created  time.Time `json:"created"`
		Finished time.Time `json:"finished"`
	}
	if err := json.Unmarshal(view, &v); err != nil {
		return 0, err
	}
	if v.Created.IsZero() || v.Finished.IsZero() {
		return 0, fmt.Errorf("job view missing timestamps: %s", strings.TrimSpace(string(view)))
	}
	return v.Finished.Sub(v.Created), nil
}

// warm submits the canonical request once and waits until the job
// reaches a terminal state, so the measurement phase runs against a
// primed cache.
func warm(client *http.Client, baseURL, submitURL, body string) error {
	resp, err := client.Post(submitURL, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return nil // already cached
	case http.StatusAccepted:
	default:
		return fmt.Errorf("submit answered %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	id, err := extractJSONString(data, "id")
	if err != nil {
		return err
	}
	pollURL := strings.TrimRight(baseURL, "/") + "/v1/jobs/" + id
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := client.Get(pollURL)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		status, err := extractJSONString(data, "status")
		if err != nil {
			return err
		}
		switch status {
		case "done":
			return nil
		case "failed":
			return fmt.Errorf("warm job failed: %s", strings.TrimSpace(string(data)))
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("warm job did not finish in time")
}

// extractJSONString pulls a top-level string field out of a JSON
// object.
func extractJSONString(data []byte, field string) (string, error) {
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(data, &obj); err != nil {
		return "", fmt.Errorf("decoding response %s: %w", strings.TrimSpace(string(data)), err)
	}
	raw, ok := obj[field]
	if !ok {
		return "", fmt.Errorf("response missing %q: %s", field, strings.TrimSpace(string(data)))
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return "", err
	}
	return s, nil
}

// scrapeServer summarizes the daemon's own view from /metrics.
func scrapeServer(client *http.Client, baseURL string) (string, error) {
	resp, err := client.Get(strings.TrimRight(baseURL, "/") + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	var picked []string
	for _, name := range []string{"macsimd_cache_hit_rate", "macsimd_queue_depth", "macsimd_slots_simulated_total"} {
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, name+" ") {
				picked = append(picked, strings.ReplaceAll(line, " ", "="))
				break
			}
		}
	}
	return strings.Join(picked, " "), nil
}
