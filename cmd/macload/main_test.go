package main

import (
	"bytes"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/internal/server"
)

// startServer boots a real serving subsystem behind httptest.
func startServer(t *testing.T) string {
	t.Helper()
	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-endpoint", "nope"}, &out); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
	if err := run([]string{"-c", "0"}, &out); err == nil {
		t.Fatal("zero workers accepted")
	}
	if err := run([]string{"-duration", "0s"}, &out); err == nil {
		t.Fatal("zero duration accepted")
	}
	if err := run([]string{"stray"}, &out); err == nil {
		t.Fatal("stray argument accepted")
	}
	if err := run([]string{"-url", " , "}, &out); err == nil {
		t.Fatal("empty URL list accepted")
	}
}

func TestMultiURLRoundRobin(t *testing.T) {
	// Two independent servers behind one comma-separated -url: the
	// closed loop must spread requests across both and report per-node
	// scrape lines for each.
	url1, url2 := startServer(t), startServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-url", url1 + "," + url2,
		"-endpoint", "solve",
		"-body", `{"k":250,"seed":6}`,
		"-c", "4",
		"-duration", "300ms",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	text := out.String()
	for _, base := range []string{url1, url2} {
		if !strings.Contains(text, "server "+base+":") {
			t.Fatalf("report missing scrape for %s:\n%s", base, text)
		}
	}
	// Warm ran against both nodes, so nearly every measured request is a
	// hit; an even spread with no misses means both nodes served.
	if !strings.Contains(text, url1+"/v1/solve,"+url2+"/v1/solve") {
		t.Fatalf("report does not show both submit URLs:\n%s", text)
	}
}

// benchLine matches the `go test -bench` result format macload emits:
// name, iterations, then (value, unit) pairs.
var benchLine = regexp.MustCompile(`^BenchmarkMacloadCached/solve \s*\d+\s+\d+ ns/op\s+[\d.]+ req/s\s+[\d.]+ hit-rate$`)

func TestClosedLoopAgainstLiveServer(t *testing.T) {
	url := startServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-url", url,
		"-endpoint", "solve",
		"-body", `{"k":300,"seed":5}`,
		"-c", "4",
		"-duration", "300ms",
		"-bench",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"req/s", "latency:", "hit rate", "macsimd_cache_hit_rate"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
	found := false
	for _, line := range strings.Split(text, "\n") {
		if benchLine.MatchString(line) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no parseable benchmark line in:\n%s", text)
	}
}

func TestBadFairnessFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-tenants", "1"}, &out); err == nil {
		t.Fatal("-tenants 1 accepted")
	}
	if err := run([]string{"-tenants", "4", "-zipf", "-1"}, &out); err == nil {
		t.Fatal("negative -zipf accepted")
	}
}

var fairnessBenchLine = regexp.MustCompile(`^BenchmarkMacloadFairness/tenants=3 \s*\d+\s+\d+ ns/op\s+[\d.]+ p99-slowdown$`)

// TestFairnessModeAgainstLiveServer runs the zipfian multi-tenant mix
// against a DRR-scheduled server: both phases must complete, the report
// must carry the slowdown metric, and the bench line must parse.
func TestFairnessModeAgainstLiveServer(t *testing.T) {
	s, err := server.New(server.Config{Workers: 2, QueueDepth: 64, TenantQueueDepth: 32, PriorityLane: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	var out bytes.Buffer
	err = run([]string{
		"-url", ts.URL,
		"-tenants", "3",
		"-zipf", "1.0",
		"-duration", "700ms",
		"-bench",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"unloaded:", "loaded:", "p99 slowdown under saturation"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
	found := false
	for _, line := range strings.Split(text, "\n") {
		if fairnessBenchLine.MatchString(line) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no parseable fairness benchmark line in:\n%s", text)
	}
}

func TestMinRateGate(t *testing.T) {
	url := startServer(t)
	var out bytes.Buffer
	// An impossible gate must fail the run (after a valid measurement).
	err := run([]string{
		"-url", url,
		"-endpoint", "solve",
		"-body", `{"k":100,"seed":8}`,
		"-c", "2",
		"-duration", "200ms",
		"-min-rate", "1e12",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "below the -min-rate gate") {
		t.Fatalf("err = %v, want a min-rate failure", err)
	}
}
