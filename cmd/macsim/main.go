// Command macsim regenerates the evaluation of "Unbounded Contention
// Resolution in Multiple-Access Channels" (PODC 2011) and exposes the
// repository's simulators on the command line.
//
// Usage:
//
//	macsim -experiment table1  [-maxexp 7] [-runs 10] [-seed 1]
//	macsim -experiment figure1 [-maxexp 7] [-runs 10] [-out csv]
//	macsim -experiment paper   [-maxexp 7] — figure + table + CSV in one sweep
//	macsim -experiment solve -protocol one-fail -k 100000 [-seed 1]   (alias: run)
//	macsim -experiment trace -protocol exp-bb -k 12
//	macsim -experiment dynamic [-k 500] [-rate 0.1]
//	macsim -experiment throughput [-lambdas 0.05,0.1,0.2] [-messages 2000] [-shape poisson|bursty|onoff] [-out csv|plot]
//	macsim -experiment scenario [-scenario all|poisson|bursty|onoff|rho|herd|adaptive|jammed|mixed] [-lambdas 0.1,0.2,0.3] [-out csv|plot]
//	macsim -experiment arena [-protocols one-fail,bk-cascade,...] [-scenarios herd,rho,jammed] [-rate 0.2] [-messages 400] [-runs 3]
//	macsim -experiment cd [-k 10000] — §2 collision-detection comparison
//	macsim -experiment ablation-ofa|ablation-ebb|ablation-monotone
//	macsim session [-protocol exp-bb] [-rate 0.1] [-window 64] [-windows N]
//	               [-pace W] [-buffer 256] [-seed 1]   — live session (NDJSON)
//	macsim session -replay checkpoint.json             — deterministic replay
//
// The session subcommand opens a live session (docs/sessions.md): the
// dynamic simulation runs window by window on the event-skip kernel,
// control lines read from stdin ("set-lambda 0.3", "jam on", "jam
// pattern 8:3", "swap-protocol exp-backoff", "pause", "resume",
// "checkpoint", "stop") steer it mid-flight, and every event — window
// aggregates, control acknowledgments, checkpoints, the end record —
// streams to stdout as NDJSON, byte-identical to the lines GET
// /v1/sessions/{id}/stream serves. -replay re-executes a saved
// checkpoint document (the "checkpoint" control's output, or the
// .checkpoint field of the HTTP session view) and reproduces the
// original window aggregates bit for bit.
//
// The experiment name may also be given as a subcommand:
//
//	macsim throughput -lambdas 0.1,0.2 -shape bursty
//
// The arena experiment runs every named protocol configuration — by
// default the full registry, including the no-collision-detection
// families of the related work — through a gauntlet of adversarial
// scenarios and prints a robustness ranking with CI95 error bars
// (docs/arena.md).
//
// The spec-backed experiments (solve/run, table1, figure1, paper,
// throughput, scenario, arena) build a mac.ExperimentSpec and execute it
// through mac.Run — the same entry point, validation, canonical cache
// key and codecs as the library and the macsimd HTTP API. The global
// -json flag prints the final result document exactly as /v1/* would
// serve it; -stream emits the NDJSON progress events plus a terminal
// record exactly as /v1/jobs/{id}/stream would.
//
// The sweep experiments (table1, figure1, paper, throughput, scenario)
// accept -epsilon/-confidence to switch from the fixed -runs count to
// adaptive-precision replication: each point repeats until the
// Student-t confidence interval of its primary metric is within
// ±epsilon·mean at the given confidence (internal/montecarlo), e.g.
//
//	macsim throughput -epsilon 0.01 -confidence 0.95
//
// and the result documents report the error bar and replications spent
// per point (ci95, repsUsed).
//
// The paper's full grid (-maxexp 7, -runs 10) takes a few minutes of CPU
// time; the default -maxexp 5 finishes in seconds.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	mac "repro"
	"repro/internal/baseline"
	"repro/internal/cd"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/throughput"
)

// version identifies the build; the CI build stamps it with the commit
// SHA via -ldflags "-X main.version=...".
var version = "dev"

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "macsim:", err)
		os.Exit(1)
	}
}

type options struct {
	experiment  string
	protocol    string
	protocols   string
	k           int
	maxExp      int
	runs        int
	seed        uint64
	out         string
	rate        float64
	lambdas     string
	messages    int
	shape       string
	scenario    string
	scenarios   string
	epsilon     float64
	confidence  float64
	window      int
	windows     int
	pace        float64
	buffer      int
	replay      string
	protocolSet bool
	rateSet     bool
	messagesSet bool
	runsSet     bool
	quiet       bool
	jsonOut     bool
	stream      bool
	version     bool
}

// precision builds the adaptive-precision request the flags describe;
// nil (fixed-rep mode) unless -epsilon is set.
func (o options) precision() *mac.PrecisionSpec {
	if o.epsilon == 0 {
		return nil
	}
	return &mac.PrecisionSpec{Epsilon: o.epsilon, Confidence: o.confidence}
}

// experiments is the single table behind -experiment dispatch, the flag
// help text and the unknown-name error, so the three cannot drift.
// spec marks the experiments that execute through mac.Run and therefore
// support the -json/-stream output flags.
var experiments = []struct {
	name string
	spec bool
	run  func(options) error
}{
	{"table1", true, runSweep},
	{"figure1", true, runSweep},
	{"paper", true, runSweep},
	{"solve", true, runSolve},
	{"run", true, runSolve},
	{"trace", false, runTrace},
	{"dynamic", false, runDynamic},
	{"throughput", true, runThroughput},
	{"scenario", true, runScenario},
	{"arena", true, runArena},
	{"cd", false, runCD},
	{"ablation-ofa", false, runAblationOFA},
	{"ablation-ebb", false, runAblationEBB},
	{"ablation-monotone", false, runAblationMonotone},
	{"session", false, runSession},
}

func experimentNames() []string {
	names := make([]string, len(experiments))
	for i, e := range experiments {
		names[i] = e.name
	}
	return names
}

// specExperimentNames lists the experiments that support -json/-stream.
func specExperimentNames() []string {
	var names []string
	for _, e := range experiments {
		if e.spec {
			names = append(names, e.name)
		}
	}
	return names
}

// protocolNames lists the -protocol registry (internal/harness's named
// registry, shared with the spec layer and the macsimd serving API).
func protocolNames() []string { return harness.SystemNames() }

// parseOptions parses flags, accepting the experiment name as a leading
// subcommand (`macsim throughput -messages 1000`) as well as via
// -experiment.
func parseOptions(args []string) (options, error) {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		args = append([]string{"-experiment", args[0]}, args[1:]...)
	}
	fs := flag.NewFlagSet("macsim", flag.ContinueOnError)
	var opts options
	fs.StringVar(&opts.experiment, "experiment", "table1",
		"experiment to run: "+strings.Join(experimentNames(), ", "))
	fs.StringVar(&opts.protocol, "protocol", "one-fail",
		"protocol for -experiment solve/trace: "+strings.Join(protocolNames(), ", "))
	fs.StringVar(&opts.protocols, "protocols", "",
		"comma-separated contestants for -experiment arena (default: every registered protocol)")
	fs.IntVar(&opts.k, "k", 1000, "number of contenders for solve/trace/dynamic")
	fs.IntVar(&opts.maxExp, "maxexp", 5, "sweep sizes 10..10^maxexp (paper: 7)")
	fs.IntVar(&opts.runs, "runs", harness.DefaultRuns, "runs averaged per point")
	fs.Uint64Var(&opts.seed, "seed", 1, "master seed")
	fs.StringVar(&opts.out, "out", "text", "output format for sweeps: text, csv (throughput also: plot)")
	fs.Float64Var(&opts.rate, "rate", 0.1, "arrival rate (messages/slot) for -experiment dynamic; offered load for -experiment arena (default 0.2 there)")
	fs.StringVar(&opts.lambdas, "lambdas", "", "comma-separated offered loads for -experiment throughput (default 0.02..0.4 grid)")
	fs.IntVar(&opts.messages, "messages", 2000, "messages per execution for -experiment throughput")
	fs.StringVar(&opts.shape, "shape", "poisson", "arrival shape for -experiment throughput: poisson, bursty, onoff")
	fs.StringVar(&opts.scenario, "scenario", "all",
		"workload for -experiment scenario: all, "+strings.Join(scenario.Names(), ", "))
	fs.StringVar(&opts.scenarios, "scenarios", "",
		"comma-separated workloads for -experiment arena (default herd,rho,jammed)")
	fs.Float64Var(&opts.epsilon, "epsilon", 0,
		"sweep experiments: adaptive-precision stopping at this relative precision (e.g. 0.01 = ±1%); 0 keeps the fixed -runs count")
	fs.Float64Var(&opts.confidence, "confidence", 0.95,
		"confidence level of the -epsilon stopping rule")
	fs.IntVar(&opts.window, "window", 0, "session aggregation window in slots (default 64)")
	fs.IntVar(&opts.windows, "windows", 0, "session window budget; 0 runs until a stop control")
	fs.Float64Var(&opts.pace, "pace", 0, "session pacing in windows per wall-clock second; 0 runs flat out")
	fs.IntVar(&opts.buffer, "buffer", 0, "session event buffer before drop-oldest backpressure (default 256)")
	fs.StringVar(&opts.replay, "replay", "", "replay this session checkpoint file instead of opening a live session")
	fs.BoolVar(&opts.quiet, "quiet", false, "suppress progress output")
	fs.BoolVar(&opts.jsonOut, "json", false, "spec-backed experiments: print the result document as JSON (the same codec the HTTP API serves)")
	fs.BoolVar(&opts.stream, "stream", false, "spec-backed experiments: emit NDJSON progress events plus a terminal result record (as /v1/jobs/{id}/stream)")
	fs.BoolVar(&opts.version, "version", false, "print the build version and exit")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments %q (only flags may follow the experiment name; list values are comma-separated)", fs.Args())
	}
	confidenceSet := false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "confidence":
			confidenceSet = true
		case "protocol":
			opts.protocolSet = true
		case "rate":
			opts.rateSet = true
		case "messages":
			opts.messagesSet = true
		case "runs":
			opts.runsSet = true
		}
	})
	if confidenceSet && opts.epsilon == 0 {
		return options{}, fmt.Errorf("-confidence only applies to adaptive-precision runs: set -epsilon too (e.g. -epsilon 0.01)")
	}
	return opts, nil
}

func run(args []string) error {
	opts, err := parseOptions(args)
	if err != nil {
		return err
	}
	if opts.version {
		fmt.Printf("macsim %s\n", version)
		return nil
	}
	for _, e := range experiments {
		if e.name == opts.experiment {
			if (opts.jsonOut || opts.stream) && !e.spec {
				return fmt.Errorf("-json/-stream are supported by the spec-backed experiments only (%s), not %q",
					strings.Join(specExperimentNames(), ", "), e.name)
			}
			return e.run(opts)
		}
	}
	return fmt.Errorf("unknown experiment %q (valid: %s)", opts.experiment, strings.Join(experimentNames(), ", "))
}

// --- spec-backed experiments ---

// solveSpec builds the solve experiment the flags describe.
func solveSpec(opts options) mac.ExperimentSpec {
	return mac.SolveExperiment(mac.SolveSpec{
		Protocol: mac.ProtocolSpec{Name: opts.protocol},
		K:        opts.k,
		Seed:     opts.seed,
	})
}

// evaluateSpec builds the static-sweep experiment the flags describe
// (the paper's five-protocol lineup over 10..10^maxexp).
func evaluateSpec(opts options) mac.ExperimentSpec {
	return mac.EvaluateExperiment(mac.EvaluateSpec{
		MaxExp:    opts.maxExp,
		Runs:      opts.runs,
		Seed:      opts.seed,
		Precision: opts.precision(),
	})
}

// throughputSpec builds the λ-sweep experiment the flags describe.
func throughputSpec(opts options) (mac.ExperimentSpec, error) {
	if opts.messages <= 0 {
		return mac.ExperimentSpec{}, fmt.Errorf("-messages must be > 0, got %d", opts.messages)
	}
	lambdas, err := parseLambdas(opts.lambdas)
	if err != nil {
		return mac.ExperimentSpec{}, err
	}
	if lambdas == nil {
		lambdas = throughput.DefaultLambdas()
	}
	return mac.ThroughputExperiment(mac.ThroughputSpec{
		Shape:     opts.shape,
		Lambdas:   lambdas,
		Messages:  opts.messages,
		Runs:      opts.runs,
		Seed:      opts.seed,
		Precision: opts.precision(),
	}), nil
}

// scenarioSpec builds the workload-scenario experiment the flags
// describe, for one named catalog scenario.
func scenarioSpec(opts options, name string) (mac.ExperimentSpec, error) {
	if opts.messages <= 0 {
		return mac.ExperimentSpec{}, fmt.Errorf("-messages must be > 0, got %d", opts.messages)
	}
	lambdas, err := parseLambdas(opts.lambdas)
	if err != nil {
		return mac.ExperimentSpec{}, err
	}
	if lambdas == nil {
		// A compact default grid bracketing the windowed protocols'
		// saturation knees; the full throughput grid would multiply the
		// catalog's cost for little extra shape.
		lambdas = []float64{0.1, 0.2, 0.3}
	}
	return mac.ScenarioExperiment(mac.ThroughputSpec{
		Scenario:  name,
		Lambdas:   lambdas,
		Messages:  opts.messages,
		Runs:      opts.runs,
		Seed:      opts.seed,
		Precision: opts.precision(),
	}), nil
}

// printProgress renders one progress event as the classic stderr
// chatter line; prefix labels the scenario in catalog runs.
func printProgress(prefix string, ev mac.Event) {
	switch p := ev.(type) {
	case mac.SweepProgress:
		fmt.Fprintf(os.Stderr, "done %s%-28s k=%-9d run=%-3d steps=%d\n", prefix, p.System, p.K, p.Run, p.Slots)
	case mac.DynamicProgress:
		status := "drained"
		if !p.Drained {
			status = fmt.Sprintf("saturated (%d delivered)", p.Delivered)
		}
		fmt.Fprintf(os.Stderr, "done %s%-28s λ=%-6.3g run=%-3d %s\n", prefix, p.Protocol, p.Lambda, p.Run, status)
	case mac.ArenaProgress:
		status := "drained"
		if !p.Drained {
			status = fmt.Sprintf("saturated (%d delivered)", p.Delivered)
		}
		fmt.Fprintf(os.Stderr, "done %-10s %-28s run=%-3d %s\n", p.Scenario, p.Protocol, p.Run, status)
	}
}

// runExperiment executes one spec through mac.Run — the same entry
// point the library and the HTTP API use — streaming progress to
// stderr (or NDJSON to stdout with -stream) and rendering the result
// with render, or as its JSON document with -json.
func runExperiment(opts options, es mac.ExperimentSpec, prefix string, render func(*mac.ExperimentResult) error) error {
	exec, err := mac.Run(context.Background(), es)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	for ev, eventErr := range exec.Events() {
		if eventErr != nil {
			break // the terminal error surfaces from Result below
		}
		switch {
		case opts.stream:
			if err := enc.Encode(ev); err != nil {
				return err
			}
		case !opts.quiet:
			printProgress(prefix, ev)
		}
	}
	res, err := exec.Result()
	if opts.stream {
		// Always close the NDJSON stream with a terminal record, exactly
		// as /v1/jobs/{id}/stream does — a failure must not truncate it.
		if err != nil {
			if encErr := enc.Encode(mac.StreamEnd{Event: "failed", Status: "failed", Error: err.Error()}); encErr != nil {
				return encErr
			}
			return err
		}
		doc, err := json.Marshal(res.Document())
		if err != nil {
			return err
		}
		return enc.Encode(mac.StreamEnd{Event: "done", Status: "done", Result: doc})
	}
	if err != nil {
		return err
	}
	if opts.jsonOut {
		return enc.Encode(res.Document())
	}
	return render(res)
}

// runSolve solves one static k-selection instance; bit-identical to
// mac.Protocol.Solve and POST /v1/solve at the same (protocol, k,
// seed).
func runSolve(opts options) error {
	return runExperiment(opts, solveSpec(opts), "", func(res *mac.ExperimentResult) error {
		r := res.Solve
		fmt.Printf("%s: k=%d solved in %d slots (ratio %.2f, analysis %s)\n",
			r.System, r.K, r.Slots, r.Ratio, r.Analysis)
		return nil
	})
}

func runSweep(opts options) error {
	return runExperiment(opts, evaluateSpec(opts), "", func(res *mac.ExperimentResult) error {
		results := res.Sweep()
		switch {
		case opts.out == "csv":
			fmt.Print(harness.CSV(results))
		case opts.experiment == "table1":
			fmt.Println("Table 1: ratio steps/nodes as a function of the number of nodes k")
			fmt.Print(harness.Table1(results))
		case opts.experiment == "figure1":
			fmt.Println("Figure 1: number of steps to solve static k-selection, per number of nodes k")
			fmt.Print(harness.Figure1(results))
		default: // "paper": everything from one sweep
			fmt.Println("Figure 1: number of steps to solve static k-selection, per number of nodes k")
			fmt.Print(harness.Figure1(results))
			fmt.Println()
			fmt.Println("Table 1: ratio steps/nodes as a function of the number of nodes k")
			fmt.Print(harness.Table1(results))
			fmt.Println()
			fmt.Println("Raw data (CSV):")
			fmt.Print(harness.CSV(results))
		}
		return nil
	})
}

// runThroughput sweeps offered load λ over the dynamic-arrival protocol
// lineup and reports sustained throughput, latency quantiles and peak
// backlog per (protocol, λ).
func runThroughput(opts options) error {
	es, err := throughputSpec(opts)
	if err != nil {
		return err
	}
	return runExperiment(opts, es, "", func(res *mac.ExperimentResult) error {
		series := res.Dynamic()
		switch opts.out {
		case "csv":
			fmt.Print(throughput.CSV(series))
		case "plot":
			fmt.Print(throughput.Plot(series))
		default:
			fmt.Printf("λ-sweep: %d messages per run, %s arrivals (* = not drained within budget)\n",
				opts.messages, res.Throughput.Scenario)
			fmt.Print(throughput.Table(series))
			fmt.Println()
			fmt.Print(throughput.Plot(series))
		}
		return nil
	})
}

// runScenario sweeps offered load under the named workload scenarios —
// the adversarial (ρ-bounded, thundering herd, adaptive), impaired
// (jammed) and heterogeneous (mixed-population) workloads of
// internal/scenario, alongside the benign shapes. `-scenario all` runs
// the whole catalog in a fixed order; output is deterministic under a
// fixed seed (progress chatter goes to stderr). With -json, one result
// document per scenario is emitted as NDJSON.
func runScenario(opts options) error {
	var scns []scenario.Workload
	if strings.EqualFold(opts.scenario, "all") {
		scns = scenario.Catalog()
	} else {
		scn, err := scenario.ByName(opts.scenario)
		if err != nil {
			return err
		}
		scns = []scenario.Workload{scn}
	}
	for i, scn := range scns {
		es, err := scenarioSpec(opts, scn.Name)
		if err != nil {
			return err
		}
		prefix := fmt.Sprintf("%-10s ", scn.Name)
		err = runExperiment(opts, es, prefix, func(res *mac.ExperimentResult) error {
			series := res.Dynamic()
			if i > 0 {
				fmt.Println()
			}
			switch opts.out {
			case "csv":
				fmt.Printf("# scenario: %s\n", scn.Name)
				fmt.Print(throughput.CSV(series))
			case "plot":
				fmt.Printf("scenario: %s\n", scn.Name)
				fmt.Print(throughput.Plot(series))
			default:
				fmt.Printf("scenario: %s (%d messages per run, * = not drained within budget)\n", scn.Name, opts.messages)
				fmt.Print(throughput.Table(series))
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("scenario %s: %w", scn.Name, err)
		}
	}
	return nil
}

// arenaSpec builds the arena experiment the flags describe. Flags whose
// macsim default differs from the arena's (rate, messages, runs) are
// forwarded only when explicitly set, so a bare `macsim arena` hashes to
// the same canonical key as an empty POST /v1/arena body.
func arenaSpec(opts options) mac.ExperimentSpec {
	s := mac.ArenaSpec{
		Scenarios: splitList(opts.scenarios),
		Seed:      opts.seed,
		Precision: opts.precision(),
	}
	for _, name := range splitList(opts.protocols) {
		s.Protocols = append(s.Protocols, mac.ProtocolSpec{Name: name})
	}
	if opts.rateSet {
		s.Lambda = opts.rate
	}
	if opts.messagesSet {
		s.Messages = opts.messages
	}
	if opts.runsSet {
		s.Runs = opts.runs
	}
	return mac.ArenaExperiment(s)
}

// runArena ranks protocol configurations by robustness across
// adversarial scenarios. The rendered table and CSV come verbatim from
// the result document, so CLI, library and HTTP output are
// byte-identical.
func runArena(opts options) error {
	return runExperiment(opts, arenaSpec(opts), "", func(res *mac.ExperimentResult) error {
		if opts.out == "csv" {
			fmt.Print(res.Arena.CSV)
			return nil
		}
		fmt.Print(res.Arena.Table)
		return nil
	})
}

// splitList parses a comma-separated flag into trimmed fields (empty
// means none given).
func splitList(flagValue string) []string {
	if strings.TrimSpace(flagValue) == "" {
		return nil
	}
	var out []string
	for _, field := range strings.Split(flagValue, ",") {
		out = append(out, strings.TrimSpace(field))
	}
	return out
}

// --- simulator-level experiments (trace, dynamic, cd, ablations) ---

// runCD quantifies the §2 collision-detection comparison: tree splitting
// (± the Massey skip) and leader election against the paper's no-CD
// protocols at the same size.
func runCD(opts options) error {
	fmt.Printf("collision detection at k=%d (%d runs):\n", opts.k, opts.runs)
	treeRatio := func(treeOpts ...cd.TreeOption) (float64, error) {
		var total uint64
		for r := 0; r < opts.runs; r++ {
			steps, err := cd.TreeRun(opts.k, rng.NewStream(opts.seed, "cd-tree", fmt.Sprint(r), fmt.Sprint(len(treeOpts))), 0, treeOpts...)
			if err != nil {
				return 0, err
			}
			total += steps
		}
		return float64(total) / float64(opts.runs) / float64(opts.k), nil
	}
	basic, err := treeRatio()
	if err != nil {
		return err
	}
	massey, err := treeRatio(cd.WithMasseySkip())
	if err != nil {
		return err
	}
	ctrl, err := core.NewOneFailAdaptive(core.DefaultOFADelta)
	if err != nil {
		return err
	}
	ofaSteps, err := engine.FairRun(opts.k, ctrl, rng.NewStream(opts.seed, "cd-ofa"), 0)
	if err != nil {
		return err
	}
	fmt.Printf("  tree splitting (CD)        ratio=%.2f\n", basic)
	fmt.Printf("  tree + Massey skip (CD)    ratio=%.2f\n", massey)
	fmt.Printf("  One-Fail Adaptive (no CD)  ratio=%.2f\n", float64(ofaSteps)/float64(opts.k))
	var total uint64
	const elections = 100
	for r := 0; r < elections; r++ {
		steps, err := cd.LeaderRun(opts.k, rng.NewStream(opts.seed, "cd-leader", fmt.Sprint(r)), 0)
		if err != nil {
			return err
		}
		total += steps
	}
	fmt.Printf("  leader election (CD)       mean %.1f slots to a unique leader\n", float64(total)/elections)
	return nil
}

// runTrace executes a small instance on the exact per-node simulator and
// prints the slot-by-slot channel history.
func runTrace(opts options) error {
	if opts.k > 4096 {
		return fmt.Errorf("trace uses the exact per-node simulator; use -k ≤ 4096 (got %d)", opts.k)
	}
	stations := make([]protocol.Station, opts.k)
	var build func(i int) (protocol.Station, error)
	switch strings.ToLower(opts.protocol) {
	case "one-fail", "ofa":
		build = func(int) (protocol.Station, error) {
			ctrl, err := core.NewOneFailAdaptive(core.DefaultOFADelta)
			if err != nil {
				return nil, err
			}
			return protocol.NewFairStation(ctrl), nil
		}
	case "exp-bb", "ebb":
		build = func(int) (protocol.Station, error) {
			sched, err := core.NewExpBackonBackoff(core.DefaultEBBDelta)
			if err != nil {
				return nil, err
			}
			return protocol.NewWindowStation(sched), nil
		}
	default:
		return fmt.Errorf("trace supports protocols one-fail and exp-bb, got %q", opts.protocol)
	}
	for i := range stations {
		st, err := build(i)
		if err != nil {
			return err
		}
		stations[i] = st
	}
	res, err := sim.Run(stations, rng.NewStream(opts.seed, "macsim-trace"), sim.WithTrace(func(r sim.SlotRecord) {
		marker := ""
		if r.Outcome == sim.Success {
			marker = fmt.Sprintf("  <- station %d delivered", r.Deliverer)
		}
		fmt.Printf("slot %4d  active=%-4d transmitters=%-4d %-9s%s\n",
			r.Slot, r.Active, r.Transmitters, r.Outcome, marker)
	}))
	if err != nil {
		return err
	}
	fmt.Printf("solved k=%d in %d slots (%d successes, %d collisions, %d silences)\n",
		opts.k, res.Slots, res.Successes, res.Collisions, res.Silences)
	return nil
}

func runDynamic(opts options) error {
	src := rng.NewStream(opts.seed, "macsim-dynamic", fmt.Sprint(opts.k))
	w, err := dynamic.PoissonArrivals(opts.k, opts.rate, src)
	if err != nil {
		return err
	}
	fmt.Printf("dynamic k-selection: %d messages, Poisson rate %.3g/slot (span %d slots)\n",
		w.N(), opts.rate, w.Span())
	resOFA, err := dynamic.RunFair(w, func() (protocol.Controller, error) {
		return core.NewOneFailAdaptive(core.DefaultOFADelta)
	}, rng.NewStream(opts.seed, "dyn-ofa"), dynamic.WithClock(dynamic.ClockGlobal))
	if err != nil {
		return err
	}
	resEBB, err := dynamic.RunWindow(w, func() (protocol.Schedule, error) {
		return core.NewExpBackonBackoff(core.DefaultEBBDelta)
	}, rng.NewStream(opts.seed, "dyn-ebb"))
	if err != nil {
		return err
	}
	report := func(name string, r dynamic.Result) {
		completion := fmt.Sprint(r.Completion)
		if !r.Completed {
			completion = fmt.Sprintf("incomplete (%d/%d)", r.Delivered, w.N())
		}
		fmt.Printf("%-22s completion=%-18s mean-latency=%-9.1f p99-latency=%-9.0f max-backlog=%d\n",
			name, completion, r.Latency.Mean(), r.Latency.Quantile(0.99), r.MaxBacklog)
	}
	report("One-Fail Adaptive", resOFA)
	report("Exp Back-on/Back-off", resEBB)
	return nil
}

// runSession opens a live session (or replays a checkpoint with
// -replay), streaming every session event to stdout as NDJSON — the
// same lines GET /v1/sessions/{id}/stream serves — while a reader
// goroutine turns stdin lines into controls via the one-line grammar.
// Blank lines and #-comments are skipped; a malformed or rejected
// control is reported on stderr and the session runs on. The session
// ends at a "stop" control, the -windows budget, or SIGINT.
func runSession(opts options) error {
	var sess *mac.Session
	if opts.replay != "" {
		data, err := os.ReadFile(opts.replay)
		if err != nil {
			return err
		}
		var ck mac.SessionCheckpoint
		if err := json.Unmarshal(data, &ck); err != nil {
			return fmt.Errorf("-replay %s: %w", opts.replay, err)
		}
		sess, err = mac.ReplaySession(context.Background(), ck)
		if err != nil {
			return err
		}
	} else {
		sp := mac.SessionSpec{
			Lambda:     opts.rate,
			Seed:       opts.seed,
			Window:     opts.window,
			MaxWindows: opts.windows,
			Buffer:     opts.buffer,
			Pace:       opts.pace,
		}
		// The global -protocol default (one-fail) is a fair protocol;
		// sessions are windowed-only, so an unset flag defers to the
		// session spec's own default (exp-bb).
		if opts.protocolSet {
			sp.Protocol = mac.ProtocolSpec{Name: opts.protocol}
		}
		var err error
		sess, err = mac.OpenSession(context.Background(), sp)
		if err != nil {
			return err
		}
		go func() {
			sc := bufio.NewScanner(os.Stdin)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if line == "" || strings.HasPrefix(line, "#") {
					continue
				}
				msg, err := mac.ParseControl(line)
				if err != nil {
					fmt.Fprintln(os.Stderr, "macsim: control:", err)
					continue
				}
				if _, err := sess.Control(context.Background(), msg); err != nil {
					fmt.Fprintln(os.Stderr, "macsim: control:", err)
				}
			}
			// stdin EOF ends the control feed, not the session: it still
			// runs to its stop control, window budget or interrupt.
		}()
	}
	enc := json.NewEncoder(os.Stdout)
	for ev, err := range sess.Events() {
		if err != nil {
			return err
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return sess.Wait()
}

// parseLambdas parses the -lambdas flag (empty means the caller's
// default grid).
func parseLambdas(flagValue string) ([]float64, error) {
	if flagValue == "" {
		return nil, nil
	}
	var lambdas []float64
	for _, field := range strings.Split(flagValue, ",") {
		l, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -lambdas entry %q: %w", field, err)
		}
		lambdas = append(lambdas, l)
	}
	return lambdas, nil
}

// runAblationOFA sweeps One-Fail Adaptive's δ across its admissible range.
func runAblationOFA(opts options) error {
	fmt.Println("One-Fail Adaptive δ ablation (Theorem 1 constant 2(δ+1)):")
	for _, delta := range []float64{2.7185, 2.72, 2.8, 2.9, core.OFADeltaMax} {
		var total uint64
		for r := 0; r < opts.runs; r++ {
			ctrl, err := core.NewOneFailAdaptive(delta)
			if err != nil {
				return err
			}
			steps, err := engine.FairRun(opts.k, ctrl, rng.NewStream(opts.seed, "abl-ofa", fmt.Sprint(delta), fmt.Sprint(r)), 0)
			if err != nil {
				return err
			}
			total += steps
		}
		ratio := float64(total) / float64(opts.runs) / float64(opts.k)
		fmt.Printf("  δ=%-7.4f ratio=%-7.2f analysis=%.2f\n", delta, ratio, 2*(delta+1))
	}
	return nil
}

// runAblationEBB sweeps Exp Back-on/Back-off's δ and rounding mode.
func runAblationEBB(opts options) error {
	fmt.Println("Exp Back-on/Back-off δ ablation (Theorem 2 constant 4(1+1/δ)):")
	var runner engine.WindowRunner
	for _, delta := range []float64{0.05, 0.1, 0.2, 0.3, 0.366} {
		var total uint64
		for r := 0; r < opts.runs; r++ {
			sched, err := core.NewExpBackonBackoff(delta)
			if err != nil {
				return err
			}
			steps, err := runner.Run(opts.k, sched, rng.NewStream(opts.seed, "abl-ebb", fmt.Sprint(delta), fmt.Sprint(r)), 0)
			if err != nil {
				return err
			}
			total += steps
		}
		ratio := float64(total) / float64(opts.runs) / float64(opts.k)
		fmt.Printf("  δ=%-6.3f ratio=%-7.2f analysis=%.2f\n", delta, ratio, 4*(1+1/delta))
	}
	fmt.Println("window rounding ablation at δ=0.366:")
	for _, mode := range []core.RoundingMode{core.RoundCeil, core.RoundFloor, core.RoundNearest} {
		var total uint64
		for r := 0; r < opts.runs; r++ {
			sched, err := core.NewExpBackonBackoff(core.DefaultEBBDelta, core.WithEBBRounding(mode))
			if err != nil {
				return err
			}
			steps, err := runner.Run(opts.k, sched, rng.NewStream(opts.seed, "abl-round", mode.String(), fmt.Sprint(r)), 0)
			if err != nil {
				return err
			}
			total += steps
		}
		fmt.Printf("  rounding=%-8s ratio=%.2f\n", mode, float64(total)/float64(opts.runs)/float64(opts.k))
	}
	return nil
}

// runAblationMonotone contrasts the monotone back-off family with the
// paper's non-monotone protocols (§1: non-monotonicity yields linear time).
func runAblationMonotone(opts options) error {
	fmt.Printf("monotone vs non-monotone at k=%d (ratio steps/k, %d runs):\n", opts.k, opts.runs)
	var runner engine.WindowRunner
	schedules := []struct {
		name string
		make func() (protocol.Schedule, error)
	}{
		{name: "binary exponential (monotone)", make: func() (protocol.Schedule, error) { return baseline.NewExponentialBackoff(2) }},
		{name: "polynomial r=2 (monotone)", make: func() (protocol.Schedule, error) { return baseline.NewPolynomialBackoff(2) }},
		{name: "log-backoff (monotone)", make: func() (protocol.Schedule, error) { s := baseline.NewLogBackoff(); return s, nil }},
		{name: "loglog-iterated (monotone)", make: func() (protocol.Schedule, error) { return baseline.NewLoglogIteratedBackoff(2) }},
		{name: "exp back-on/back-off (sawtooth)", make: func() (protocol.Schedule, error) { return core.NewExpBackonBackoff(core.DefaultEBBDelta) }},
	}
	for _, s := range schedules {
		var total uint64
		for r := 0; r < opts.runs; r++ {
			sched, err := s.make()
			if err != nil {
				return err
			}
			steps, err := runner.Run(opts.k, sched, rng.NewStream(opts.seed, "abl-mono", s.name, fmt.Sprint(r)), 0)
			if err != nil {
				return err
			}
			total += steps
		}
		fmt.Printf("  %-32s ratio=%.2f\n", s.name, float64(total)/float64(opts.runs)/float64(opts.k))
	}
	return nil
}
