package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected and returns what it printed.
// The pipe is drained concurrently so large outputs cannot deadlock the
// writer.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := fn()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done, runErr
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-experiment", "nope"})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// The error must teach the valid names, not just reject (they used to
	// live only in the flag help text).
	for _, want := range []string{"table1", "throughput", "scenario", "ablation-monotone"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("experiment error does not list %q: %v", want, err)
		}
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	err := run([]string{"-experiment", "run", "-protocol", "nope"})
	if err == nil {
		t.Fatal("unknown protocol accepted")
	}
	for _, want := range []string{"one-fail", "exp-bb", "log-fails-10", "exp-backoff"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("protocol error does not list %q: %v", want, err)
		}
	}
}

func TestRunUnknownScenario(t *testing.T) {
	err := run([]string{"scenario", "-scenario", "nope", "-quiet"})
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	for _, want := range []string{"rho", "herd", "adaptive", "jammed", "mixed"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("scenario error does not list %q: %v", want, err)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSingle(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-experiment", "run", "-protocol", "one-fail", "-k", "200", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "One-Fail Adaptive") || !strings.Contains(out, "k=200") {
		t.Fatalf("unexpected output: %s", out)
	}
}

func TestRunTable1Small(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-experiment", "table1", "-maxexp", "2", "-runs", "2", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "One-Fail Adaptive", "Analysis"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTraceSmall(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-experiment", "trace", "-protocol", "exp-bb", "-k", "3", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "solved k=3") {
		t.Fatalf("trace output missing summary:\n%s", out)
	}
}

func TestRunTraceRejectsLargeK(t *testing.T) {
	if err := run([]string{"-experiment", "trace", "-k", "100000"}); err == nil {
		t.Fatal("huge trace accepted")
	}
}

func TestRunCSVOutput(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-experiment", "table1", "-maxexp", "1", "-runs", "2", "-out", "csv", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "system,k,runs,") {
		t.Fatalf("CSV output wrong:\n%s", out)
	}
}

func TestRunAblations(t *testing.T) {
	for _, exp := range []string{"ablation-ofa", "ablation-ebb", "ablation-monotone"} {
		out, err := capture(t, func() error {
			return run([]string{"-experiment", exp, "-k", "300", "-runs", "2", "-quiet"})
		})
		if err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(out, "ratio") {
			t.Fatalf("%s output missing ratios:\n%s", exp, out)
		}
	}
}

func TestRunDynamicSmall(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-experiment", "dynamic", "-k", "50", "-rate", "0.05", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "One-Fail Adaptive") || !strings.Contains(out, "max-backlog") {
		t.Fatalf("dynamic output wrong:\n%s", out)
	}
}

func TestRunThroughputSmall(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-experiment", "throughput", "-lambdas", "0.05,0.1",
			"-messages", "200", "-runs", "1", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"p99 lat", "Exp Back-on/Back-off", "One-Fail Adaptive", "Sustained throughput"} {
		if !strings.Contains(out, want) {
			t.Fatalf("throughput output missing %q:\n%s", want, out)
		}
	}
}

func TestRunThroughputSubcommandForm(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"throughput", "-lambdas", "0.05", "-messages", "150",
			"-runs", "1", "-shape", "bursty", "-out", "csv", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "protocol,lambda,") {
		t.Fatalf("throughput CSV output wrong:\n%s", out)
	}
}

// scenarioGoldenArgs is the fixed invocation behind the determinism and
// golden checks: small enough for CI, yet running every catalog
// scenario over the full protocol lineup.
var scenarioGoldenArgs = []string{"scenario", "-messages", "120", "-runs", "1",
	"-lambdas", "0.1", "-seed", "9", "-quiet"}

// TestRunScenarioDeterministic: two invocations with the same flags must
// produce byte-identical output (the acceptance bar for the scenario
// subsystem — workload generation, jam masks, population draws and
// aggregation are all keyed by the seed alone).
func TestRunScenarioDeterministic(t *testing.T) {
	first, err := capture(t, func() error { return run(scenarioGoldenArgs) })
	if err != nil {
		t.Fatal(err)
	}
	second, err := capture(t, func() error { return run(scenarioGoldenArgs) })
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("scenario output not byte-identical across invocations:\n--- first\n%s\n--- second\n%s", first, second)
	}
	// Every catalog scenario and protocol appears.
	for _, want := range []string{"poisson", "bursty", "onoff", "rho", "herd", "adaptive", "jammed", "mixed",
		"Exp Back-on/Back-off", "One-Fail Adaptive"} {
		if !strings.Contains(first, want) {
			t.Fatalf("scenario output missing %q:\n%s", want, first)
		}
	}
}

// TestRunScenarioGolden pins the scenario subcommand's output to the
// checked-in golden file, so accidental changes to workload generation,
// rng streams or rendering are caught as diffs.
func TestRunScenarioGolden(t *testing.T) {
	out, err := capture(t, func() error { return run(scenarioGoldenArgs) })
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("testdata/scenario_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatalf("scenario output diverges from testdata/scenario_golden.txt:\n%s", out)
	}
}

// throughputGoldenArgs mirrors scenarioGoldenArgs for the throughput
// subcommand: a fixed, CI-cheap invocation over the full dynamic
// protocol lineup whose default output (table + plot) is pinned.
var throughputGoldenArgs = []string{"throughput", "-messages", "120", "-runs", "1",
	"-lambdas", "0.1,0.2", "-seed", "9", "-quiet"}

// TestRunThroughputGolden pins the throughput subcommand's output to
// the checked-in golden file, so accidental changes to workload
// generation, rng streams, aggregation or rendering are caught as
// diffs.
func TestRunThroughputGolden(t *testing.T) {
	out, err := capture(t, func() error { return run(throughputGoldenArgs) })
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("testdata/throughput_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatalf("throughput output diverges from testdata/throughput_golden.txt:\n%s", out)
	}
}

func TestRunVersionFlag(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-version"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "macsim ") {
		t.Fatalf("version output %q", out)
	}
}

func TestRunScenarioSingleCSV(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"scenario", "-scenario", "rho", "-messages", "100", "-runs", "1",
			"-lambdas", "0.1", "-out", "csv", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "# scenario: rho\nprotocol,lambda,") {
		t.Fatalf("scenario CSV output wrong:\n%s", out)
	}
	if strings.Contains(out, "poisson") {
		t.Fatalf("single-scenario run leaked other scenarios:\n%s", out)
	}
}

func TestRunThroughputRejectsBadFlags(t *testing.T) {
	if err := run([]string{"throughput", "-shape", "uniform", "-quiet"}); err == nil {
		t.Fatal("unknown shape accepted")
	}
	if err := run([]string{"throughput", "-lambdas", "0.1,zap", "-quiet"}); err == nil {
		t.Fatal("malformed -lambdas accepted")
	}
}
