package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	mac "repro"
)

// capture runs fn with stdout redirected and returns what it printed.
// The pipe is drained concurrently so large outputs cannot deadlock the
// writer.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := fn()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done, runErr
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-experiment", "nope"})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// The error must teach the valid names, not just reject (they used to
	// live only in the flag help text).
	for _, want := range []string{"table1", "throughput", "scenario", "ablation-monotone"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("experiment error does not list %q: %v", want, err)
		}
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	err := run([]string{"-experiment", "run", "-protocol", "nope"})
	if err == nil {
		t.Fatal("unknown protocol accepted")
	}
	for _, want := range []string{"one-fail", "exp-bb", "log-fails-10", "exp-backoff",
		"bk-cascade", "cjz-ladder", "jz-robust"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("protocol error does not list %q: %v", want, err)
		}
	}
}

func TestRunUnknownScenario(t *testing.T) {
	err := run([]string{"scenario", "-scenario", "nope", "-quiet"})
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	for _, want := range []string{"rho", "herd", "adaptive", "jammed", "mixed"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("scenario error does not list %q: %v", want, err)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSingle(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-experiment", "run", "-protocol", "one-fail", "-k", "200", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "One-Fail Adaptive") || !strings.Contains(out, "k=200") {
		t.Fatalf("unexpected output: %s", out)
	}
}

func TestRunTable1Small(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-experiment", "table1", "-maxexp", "2", "-runs", "2", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "One-Fail Adaptive", "Analysis"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTraceSmall(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-experiment", "trace", "-protocol", "exp-bb", "-k", "3", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "solved k=3") {
		t.Fatalf("trace output missing summary:\n%s", out)
	}
}

func TestRunTraceRejectsLargeK(t *testing.T) {
	if err := run([]string{"-experiment", "trace", "-k", "100000"}); err == nil {
		t.Fatal("huge trace accepted")
	}
}

func TestRunCSVOutput(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-experiment", "table1", "-maxexp", "1", "-runs", "2", "-out", "csv", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "system,k,runs,") {
		t.Fatalf("CSV output wrong:\n%s", out)
	}
}

func TestRunAblations(t *testing.T) {
	for _, exp := range []string{"ablation-ofa", "ablation-ebb", "ablation-monotone"} {
		out, err := capture(t, func() error {
			return run([]string{"-experiment", exp, "-k", "300", "-runs", "2", "-quiet"})
		})
		if err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(out, "ratio") {
			t.Fatalf("%s output missing ratios:\n%s", exp, out)
		}
	}
}

func TestRunDynamicSmall(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-experiment", "dynamic", "-k", "50", "-rate", "0.05", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "One-Fail Adaptive") || !strings.Contains(out, "max-backlog") {
		t.Fatalf("dynamic output wrong:\n%s", out)
	}
}

func TestRunThroughputSmall(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-experiment", "throughput", "-lambdas", "0.05,0.1",
			"-messages", "200", "-runs", "1", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"p99 lat", "Exp Back-on/Back-off", "One-Fail Adaptive", "Sustained throughput"} {
		if !strings.Contains(out, want) {
			t.Fatalf("throughput output missing %q:\n%s", want, out)
		}
	}
}

func TestRunThroughputSubcommandForm(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"throughput", "-lambdas", "0.05", "-messages", "150",
			"-runs", "1", "-shape", "bursty", "-out", "csv", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "protocol,lambda,") {
		t.Fatalf("throughput CSV output wrong:\n%s", out)
	}
}

// scenarioGoldenArgs is the fixed invocation behind the determinism and
// golden checks: small enough for CI, yet running every catalog
// scenario over the full protocol lineup.
var scenarioGoldenArgs = []string{"scenario", "-messages", "120", "-runs", "1",
	"-lambdas", "0.1", "-seed", "9", "-quiet"}

// TestRunScenarioDeterministic: two invocations with the same flags must
// produce byte-identical output (the acceptance bar for the scenario
// subsystem — workload generation, jam masks, population draws and
// aggregation are all keyed by the seed alone).
func TestRunScenarioDeterministic(t *testing.T) {
	first, err := capture(t, func() error { return run(scenarioGoldenArgs) })
	if err != nil {
		t.Fatal(err)
	}
	second, err := capture(t, func() error { return run(scenarioGoldenArgs) })
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("scenario output not byte-identical across invocations:\n--- first\n%s\n--- second\n%s", first, second)
	}
	// Every catalog scenario and protocol appears.
	for _, want := range []string{"poisson", "bursty", "onoff", "rho", "herd", "adaptive", "jammed", "mixed",
		"Exp Back-on/Back-off", "One-Fail Adaptive"} {
		if !strings.Contains(first, want) {
			t.Fatalf("scenario output missing %q:\n%s", want, first)
		}
	}
}

// TestRunScenarioGolden pins the scenario subcommand's output to the
// checked-in golden file, so accidental changes to workload generation,
// rng streams or rendering are caught as diffs.
func TestRunScenarioGolden(t *testing.T) {
	out, err := capture(t, func() error { return run(scenarioGoldenArgs) })
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("testdata/scenario_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatalf("scenario output diverges from testdata/scenario_golden.txt:\n%s", out)
	}
}

// throughputGoldenArgs mirrors scenarioGoldenArgs for the throughput
// subcommand: a fixed, CI-cheap invocation over the full dynamic
// protocol lineup whose default output (table + plot) is pinned.
var throughputGoldenArgs = []string{"throughput", "-messages", "120", "-runs", "1",
	"-lambdas", "0.1,0.2", "-seed", "9", "-quiet"}

// TestRunThroughputGolden pins the throughput subcommand's output to
// the checked-in golden file, so accidental changes to workload
// generation, rng streams, aggregation or rendering are caught as
// diffs.
func TestRunThroughputGolden(t *testing.T) {
	out, err := capture(t, func() error { return run(throughputGoldenArgs) })
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("testdata/throughput_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatalf("throughput output diverges from testdata/throughput_golden.txt:\n%s", out)
	}
}

// arenaGoldenArgs is a fixed, CI-cheap arena invocation: the full
// registry (no -protocols filter) over the default adversarial gauntlet
// at seed 1, as the acceptance bar specifies.
var arenaGoldenArgs = []string{"arena", "-messages", "120", "-runs", "1", "-seed", "1", "-quiet"}

// TestRunArenaGolden pins `macsim arena -seed 1` output to the
// checked-in golden file: the ranking must cover the paper's original
// protocols and all three no-collision-detection families, byte for
// byte.
func TestRunArenaGolden(t *testing.T) {
	out, err := capture(t, func() error { return run(arenaGoldenArgs) })
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("testdata/arena_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatalf("arena output diverges from testdata/arena_golden.txt:\n%s", out)
	}
	for _, want := range []string{"one-fail", "exp-bb", "log-fails-2", "log-fails-10", "loglog-iterated",
		"bk-cascade", "cjz-ladder", "jz-robust", "herd", "rho", "jammed", "±"} {
		if !strings.Contains(out, want) {
			t.Fatalf("arena golden missing %q:\n%s", want, out)
		}
	}
}

// TestRunArenaCSVAndJSON: the CSV and text renderings come verbatim
// from the result document, so the CLI's bytes are exactly what
// /v1/arena serves.
func TestRunArenaCSVAndJSON(t *testing.T) {
	args := []string{"arena", "-protocols", "exp-bb,cjz-ladder", "-scenarios", "herd",
		"-messages", "60", "-runs", "1", "-seed", "5", "-quiet"}
	text, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	csv, err := capture(t, func() error { return run(append(args, "-out", "csv")) })
	if err != nil {
		t.Fatal(err)
	}
	jsonOut, err := capture(t, func() error { return run(append(args, "-json")) })
	if err != nil {
		t.Fatal(err)
	}
	var doc mac.ArenaResult
	if err := json.Unmarshal([]byte(jsonOut), &doc); err != nil {
		t.Fatal(err)
	}
	if text != doc.Table {
		t.Fatalf("text output diverges from the document's table:\n--- text\n%s\n--- document\n%s", text, doc.Table)
	}
	if csv != doc.CSV {
		t.Fatalf("csv output diverges from the document's csv:\n--- csv\n%s\n--- document\n%s", csv, doc.CSV)
	}
	if len(doc.Ranking) != 2 || len(doc.Scenarios) != 1 {
		t.Fatalf("unexpected arena document shape: %d protocols, %d scenarios", len(doc.Ranking), len(doc.Scenarios))
	}
	for _, e := range doc.Ranking {
		if e.Rank < 1 || e.Display == "" || len(e.Scenarios) != 1 {
			t.Fatalf("malformed ranking entry %+v", e)
		}
	}
}

func TestRunVersionFlag(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-version"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "macsim ") {
		t.Fatalf("version output %q", out)
	}
}

func TestRunScenarioSingleCSV(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"scenario", "-scenario", "rho", "-messages", "100", "-runs", "1",
			"-lambdas", "0.1", "-out", "csv", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "# scenario: rho\nprotocol,lambda,") {
		t.Fatalf("scenario CSV output wrong:\n%s", out)
	}
	if strings.Contains(out, "poisson") {
		t.Fatalf("single-scenario run leaked other scenarios:\n%s", out)
	}
}

func TestRunThroughputRejectsBadFlags(t *testing.T) {
	if err := run([]string{"throughput", "-shape", "uniform", "-quiet"}); err == nil {
		t.Fatal("unknown shape accepted")
	}
	if err := run([]string{"throughput", "-lambdas", "0.1,zap", "-quiet"}); err == nil {
		t.Fatal("malformed -lambdas accepted")
	}
}

// TestRunSolveJSONGolden pins `macsim solve -json` to the checked-in
// golden document — the exact bytes POST /v1/solve would cache and
// serve for the same experiment, so the two codecs cannot drift.
func TestRunSolveJSONGolden(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"solve", "-json", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("testdata/solve_json_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Fatalf("solve -json diverges from testdata/solve_json_golden.txt:\ngot:  %swant: %s", out, golden)
	}
	// The run/solve aliases are one experiment.
	viaRun, err := capture(t, func() error {
		return run([]string{"-experiment", "run", "-json", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if viaRun != out {
		t.Fatalf("run and solve aliases diverge:\n%s\n%s", viaRun, out)
	}
}

// TestRunSolveStream: -stream emits NDJSON progress events plus the
// terminal record, using the HTTP API's codecs.
func TestRunSolveStream(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"solve", "-k", "200", "-stream", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("stream lines = %d, want 2:\n%s", len(lines), out)
	}
	var progress mac.SweepProgress
	if err := json.Unmarshal([]byte(lines[0]), &progress); err != nil {
		t.Fatal(err)
	}
	if progress.Event != "progress" || progress.K != 200 || progress.Slots == 0 {
		t.Fatalf("unexpected progress line %+v", progress)
	}
	var end mac.StreamEnd
	if err := json.Unmarshal([]byte(lines[1]), &end); err != nil {
		t.Fatal(err)
	}
	if end.Event != "done" || end.Status != "done" || len(end.Result) == 0 {
		t.Fatalf("unexpected terminal line %+v", end)
	}
	var doc mac.SolveResult
	if err := json.Unmarshal(end.Result, &doc); err != nil || doc.Slots != progress.Slots {
		t.Fatalf("terminal result %+v does not match progress %+v (%v)", doc, progress, err)
	}
}

// TestRunThroughputJSON: the λ-sweep's -json document carries the same
// series the text renderers draw.
func TestRunThroughputJSON(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"throughput", "-lambdas", "0.1", "-messages", "150",
			"-runs", "1", "-json", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc mac.ThroughputResult
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Scenario != "poisson" || len(doc.Series) == 0 || len(doc.Series[0].Points) != 1 {
		t.Fatalf("unexpected throughput document %+v", doc)
	}
}

// TestSpecKeyParityAcrossFrontEnds is the three-front-end half of the
// canonical-key satellite: the identical experiment expressed via CLI
// flags (real flag parsing), a library struct, and the HTTP JSON body
// must hash to byte-identical cache keys. Float formatting cases
// (0.2 vs 0.20) ride on the -lambdas flag.
func TestSpecKeyParityAcrossFrontEnds(t *testing.T) {
	key := func(t *testing.T, es mac.ExperimentSpec) string {
		t.Helper()
		if err := es.Validate(mac.Limits{}); err != nil {
			t.Fatal(err)
		}
		k, err := es.CanonicalKey()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	cliSpec := func(t *testing.T, args []string) mac.ExperimentSpec {
		t.Helper()
		opts, err := parseOptions(args)
		if err != nil {
			t.Fatal(err)
		}
		switch opts.experiment {
		case "solve", "run":
			return solveSpec(opts)
		case "table1", "figure1", "paper":
			return evaluateSpec(opts)
		case "throughput":
			es, err := throughputSpec(opts)
			if err != nil {
				t.Fatal(err)
			}
			return es
		case "scenario":
			es, err := scenarioSpec(opts, opts.scenario)
			if err != nil {
				t.Fatal(err)
			}
			return es
		case "arena":
			return arenaSpec(opts)
		}
		t.Fatalf("experiment %q has no spec", opts.experiment)
		return mac.ExperimentSpec{}
	}
	cases := []struct {
		name    string
		cliArgs []string
		library mac.ExperimentSpec
		kind    mac.ExperimentKind
		http    string
	}{
		{
			name:    "solve via alias and defaults",
			cliArgs: []string{"solve", "-protocol", "ofa", "-k", "500", "-seed", "7"},
			library: mac.SolveExperiment(mac.SolveSpec{Protocol: mac.ProtocolSpec{Name: "one-fail"}, K: 500, Seed: 7}),
			kind:    mac.KindSolve,
			http:    `{"protocol":"one-fail","k":500,"seed":7}`,
		},
		{
			name:    "throughput with float formatting 0.2 vs 0.20",
			cliArgs: []string{"throughput", "-lambdas", "0.10,0.20", "-messages", "300", "-runs", "2", "-seed", "9", "-shape", "burst"},
			library: mac.ThroughputExperiment(mac.ThroughputSpec{Shape: "bursty", Lambdas: []float64{0.1, 0.2}, Messages: 300, Runs: 2, Seed: 9}),
			kind:    mac.KindThroughput,
			http:    `{"shape":"bursty","lambdas":[0.1,0.2],"messages":300,"runs":2,"seed":9}`,
		},
		{
			name:    "scenario herd",
			cliArgs: []string{"scenario", "-scenario", "herd", "-lambdas", "0.1", "-messages", "120", "-runs", "1", "-seed", "9"},
			library: mac.ScenarioExperiment(mac.ThroughputSpec{Scenario: "herd", Lambdas: []float64{0.1}, Messages: 120, Runs: 1, Seed: 9}),
			kind:    mac.KindScenario,
			http:    `{"scenario":"herd","lambdas":[0.10],"messages":120,"runs":1,"seed":9}`,
		},
		{
			name:    "evaluate sweep",
			cliArgs: []string{"table1", "-maxexp", "3", "-runs", "4", "-seed", "2"},
			library: mac.EvaluateExperiment(mac.EvaluateSpec{MaxExp: 3, Runs: 4, Seed: 2}),
			kind:    mac.KindEvaluate,
			http:    `{"maxExp":3,"runs":4,"seed":2}`,
		},
		{
			name:    "arena via aliases and explicit flags",
			cliArgs: []string{"arena", "-protocols", "ofa,bkc", "-scenarios", "herd", "-rate", "0.20", "-messages", "300", "-runs", "2", "-seed", "9"},
			library: mac.ArenaExperiment(mac.ArenaSpec{
				Protocols: []mac.ProtocolSpec{{Name: "one-fail"}, {Name: "bk-cascade"}},
				Scenarios: []string{"herd"}, Lambda: 0.2, Messages: 300, Runs: 2, Seed: 9}),
			kind: mac.KindArena,
			http: `{"protocols":["one-fail","bk-cascade"],"scenarios":["herd"],"lambda":0.2,"messages":300,"runs":2,"seed":9}`,
		},
		{
			name:    "arena all defaults expand to the explicit registry",
			cliArgs: []string{"arena"},
			library: mac.ArenaExperiment(mac.ArenaSpec{}),
			kind:    mac.KindArena,
			http:    `{}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cliKey := key(t, cliSpec(t, tc.cliArgs))
			libKey := key(t, tc.library)
			decoded, err := mac.DecodeExperiment(tc.kind, []byte(tc.http))
			if err != nil {
				t.Fatal(err)
			}
			httpKey := key(t, decoded)
			if cliKey != libKey || libKey != httpKey {
				t.Fatalf("keys diverge:\ncli:  %s\nlib:  %s\nhttp: %s", cliKey, libKey, httpKey)
			}
		})
	}
}

// TestRunJSONUnsupportedExperiments: -json is only meaningful for the
// spec-backed experiments; simulator-level ones still run (text only).
func TestRunScenarioJSONEmitsNDJSON(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"scenario", "-scenario", "rho", "-lambdas", "0.1",
			"-messages", "100", "-runs", "1", "-json", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc mac.ThroughputResult
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Scenario != "rho" {
		t.Fatalf("scenario document names %q", doc.Scenario)
	}
}

func TestRunJSONRejectedForNonSpecExperiments(t *testing.T) {
	for _, args := range [][]string{
		{"trace", "-json", "-k", "3"},
		{"cd", "-stream"},
		{"ablation-ofa", "-json"},
	} {
		err := run(args)
		if err == nil || !strings.Contains(err.Error(), "spec-backed") {
			t.Fatalf("%v: err = %v, want spec-backed rejection", args, err)
		}
	}
}

// TestRunThroughputAdaptivePrecision: -epsilon/-confidence switch the
// λ-sweep to adaptive stopping, the JSON document reports the per-point
// replication counts and error bars, and the CLI spelling hashes to the
// same canonical key as the equivalent HTTP JSON body.
func TestRunThroughputAdaptivePrecision(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"throughput", "-lambdas", "0.05", "-messages", "200",
			"-epsilon", "0.4", "-confidence", "0.9", "-json", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc mac.ThroughputResult
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	for _, s := range doc.Series {
		for _, p := range s.Points {
			if p.RepsUsed < 2 || p.RepsUsed > 64 {
				t.Fatalf("%s: repsUsed = %d, want within [minReps, maxReps]", s.Protocol, p.RepsUsed)
			}
			if p.RepsUsed != p.Runs {
				t.Fatalf("%s: repsUsed %d != runs %d", s.Protocol, p.RepsUsed, p.Runs)
			}
		}
	}

	// Canonical-key parity: CLI flags vs HTTP JSON body.
	opts, err := parseOptions([]string{"throughput", "-lambdas", "0.05", "-messages", "200",
		"-epsilon", "0.4", "-confidence", "0.9"})
	if err != nil {
		t.Fatal(err)
	}
	cliES, err := throughputSpec(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := cliES.Validate(mac.Limits{}); err != nil {
		t.Fatal(err)
	}
	cliKey, err := cliES.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	httpES, err := mac.DecodeExperiment(mac.KindThroughput,
		[]byte(`{"lambdas":[0.05],"messages":200,"precision":{"epsilon":0.4,"confidence":0.9}}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := httpES.Validate(mac.Limits{}); err != nil {
		t.Fatal(err)
	}
	httpKey, err := httpES.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if cliKey != httpKey {
		t.Fatalf("CLI key %s != HTTP key %s for the same adaptive experiment", cliKey, httpKey)
	}
}
