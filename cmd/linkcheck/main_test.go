package main

import (
	"os"
	"path/filepath"
	"testing"
)

// write creates a file under dir, making parents as needed.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckFindsBrokenAndAcceptsValid(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "DESIGN.md", "# design\n")
	write(t, dir, "docs/api.md", "see [design](../DESIGN.md) and [missing](nope.md)\n")
	readme := write(t, dir, "README.md", `
[ok](DESIGN.md) and [ok-too](docs/api.md) and [gone](docs/ghost.md)
[anchor-ok](DESIGN.md#design) [pure-anchor](#here)
[external](https://example.com/x.md) [mail](mailto:a@b.c)
[![badge](../../actions/workflows/ci.yml/badge.svg)](../../actions/workflows/ci.yml)
![img](DESIGN.md)
`)
	api := filepath.Join(dir, "docs", "api.md")

	bad, err := check(dir, []string{readme, api})
	if err != nil {
		t.Fatal(err)
	}
	var targets []string
	for _, b := range bad {
		targets = append(targets, b.target)
	}
	if len(bad) != 2 || targets[0] != "docs/ghost.md" || targets[1] != "nope.md" {
		t.Fatalf("broken = %v, want exactly [docs/ghost.md nope.md]", targets)
	}
}

func TestCheckStripsFragmentsBeforeStat(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.md", "x")
	md := write(t, dir, "b.md", "[frag](a.md#sec) [badfrag](missing.md#sec)")
	bad, err := check(dir, []string{md})
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0].target != "missing.md#sec" {
		t.Fatalf("broken = %v, want only missing.md#sec", bad)
	}
}

func TestCheckSkipsTargetsOutsideRoot(t *testing.T) {
	dir := t.TempDir()
	// A target resolving outside the root must be skipped even though
	// it does not exist — outside the root we cannot tell web paths
	// (GitHub badge links) from file references.
	md := write(t, dir, "doc.md", "[out](../elsewhere/gone.md)")
	bad, err := check(dir, []string{md})
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("broken = %v, want none (outside root)", bad)
	}
}

func TestCheckRepositoryDocs(t *testing.T) {
	// The real repository documentation must stay link-clean; this is
	// the same invocation the CI docs job runs.
	root := "../.."
	files := []string{filepath.Join(root, "README.md"), filepath.Join(root, "DESIGN.md")}
	docs, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(docs) == 0 {
		t.Fatal("no docs/*.md found — glob broken?")
	}
	bad, err := check(root, files)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bad {
		t.Error(b)
	}
}
