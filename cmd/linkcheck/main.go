// Command linkcheck validates the relative links in the repository's
// Markdown documentation. CI runs it over README.md, DESIGN.md and
// docs/*.md so a moved or renamed file cannot silently strand its
// references.
//
// Usage:
//
//	linkcheck [-root dir] file.md ...
//
// For every inline Markdown link or image target it checks that the
// referenced file exists on disk, resolved relative to the referencing
// file. External targets (any URL scheme), pure in-page anchors
// (#section) and targets that escape the root directory (GitHub web
// paths like ../../actions/...) are skipped — only repository files
// are validated. Fragments are stripped before the existence check.
// Broken links are listed one per line and the exit status is 1.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkPattern matches inline Markdown links and images:
// [text](target), ![alt](target), with an optional "title".
var linkPattern = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+)(?:\s+"[^"]*")?\)`)

// schemePattern recognizes absolute URLs (http://, https://, mailto:, …).
var schemePattern = regexp.MustCompile(`^[a-zA-Z][a-zA-Z0-9+.-]*:`)

// broken describes one unresolvable link.
type broken struct {
	file   string
	target string
	reason string
}

func (b broken) String() string {
	return fmt.Sprintf("%s: broken link %q (%s)", b.file, b.target, b.reason)
}

// check validates every relative link in the given Markdown files
// against the filesystem under root and returns the broken ones.
func check(root string, files []string) ([]broken, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var out []broken
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for _, m := range linkPattern.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if schemePattern.MatchString(target) || strings.HasPrefix(target, "#") {
				continue // external or in-page
			}
			// Strip a fragment: the existence check is per file.
			path := target
			if i := strings.IndexByte(path, '#'); i >= 0 {
				path = path[:i]
			}
			if path == "" {
				continue
			}
			resolved, err := filepath.Abs(filepath.Join(filepath.Dir(file), path))
			if err != nil {
				out = append(out, broken{file, target, err.Error()})
				continue
			}
			if rel, err := filepath.Rel(absRoot, resolved); err != nil || strings.HasPrefix(rel, "..") {
				continue // escapes the repository: a web path, not a file reference
			}
			if _, err := os.Stat(resolved); err != nil {
				out = append(out, broken{file, target, "no such file"})
			}
		}
	}
	return out, nil
}

func main() {
	root := "."
	args := os.Args[1:]
	if len(args) >= 2 && args[0] == "-root" {
		root, args = args[1], args[2:]
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck [-root dir] file.md ...")
		os.Exit(2)
	}
	bad, err := check(root, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(2)
	}
	for _, b := range bad {
		fmt.Println(b)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", len(bad))
		os.Exit(1)
	}
}
