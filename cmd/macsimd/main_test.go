package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

func TestVersionFlag(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"-version"}, nil)
	os.Stdout = old
	w.Close()
	data, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !strings.HasPrefix(string(data), "macsimd ") {
		t.Fatalf("version output %q", data)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-addr", ":0", "stray"}, nil); err == nil {
		t.Fatal("stray argument accepted")
	}
	for _, bad := range []string{"noequals", "acme=", "acme=-1", "acme=5:zero", "acme=5:0"} {
		if err := run([]string{"-tenant", bad}, nil); err == nil {
			t.Fatalf("-tenant %q accepted", bad)
		}
	}
	for _, bad := range []string{"noequals", "acme=0", "acme=two"} {
		if err := run([]string{"-tenant-weight", bad}, nil); err == nil {
			t.Fatalf("-tenant-weight %q accepted", bad)
		}
	}
}

func TestParseTenantFlags(t *testing.T) {
	name, lim, err := parseTenantLimit("acme=2.5:7")
	if err != nil || name != "acme" || lim.Rate != 2.5 || lim.Burst != 7 {
		t.Fatalf("parseTenantLimit = (%q, %+v, %v)", name, lim, err)
	}
	name, lim, err = parseTenantLimit("*=10")
	if err != nil || name != "*" || lim.Rate != 10 || lim.Burst != 0 {
		t.Fatalf("wildcard parseTenantLimit = (%q, %+v, %v)", name, lim, err)
	}
	name, w, err := parseTenantWeight("big=3")
	if err != nil || name != "big" || w != 3 {
		t.Fatalf("parseTenantWeight = (%q, %d, %v)", name, w, err)
	}
}

// TestDaemonTenancyFlags boots the daemon with the tenancy flags on and
// verifies the admission bucket answers 429 with Retry-After while the
// per-tenant metric families are exposed.
func TestDaemonTenancyFlags(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	served := make(chan error, 1)
	go func() {
		served <- runCtx(ctx, []string{"-addr", "127.0.0.1:0",
			"-tenant", "metered=0.001:1", "-tenant-weight", "metered=2",
			"-priority-lane", "-tenant-queue", "8"}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-served:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	submit := func(body string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, base+"/v1/solve", strings.NewReader(body))
		req.Header.Set("X-Tenant", "metered")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := submit(`{"k":100,"seed":1}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", resp.StatusCode)
	}
	resp := submit(`{"k":101,"seed":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	metrics, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(metrics.Body)
	metrics.Body.Close()
	for _, want := range []string{
		`macsimd_tenant_admitted_total{tenant="metered"} 1`,
		`macsimd_tenant_429_total{tenant="metered"} 1`,
	} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, data)
		}
	}
	cancel()
	if err := <-served; err != nil {
		t.Fatalf("daemon shutdown: %v", err)
	}
}

// TestDaemonServesAndDrains boots the daemon on an ephemeral port,
// exercises one end-to-end solve, and shuts it down via context
// cancellation (the same path a SIGTERM takes).
func TestDaemonServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	served := make(chan error, 1)
	go func() { served <- runCtx(ctx, []string{"-addr", "127.0.0.1:0", "-queue", "8"}, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-served:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/solve", "application/json",
		strings.NewReader(`{"k":200,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var view struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if view.Status == "failed" {
			t.Fatalf("job failed: %s", view.Error)
		}
		if view.Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished (status %s)", view.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain and stop")
	}
}
