package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

func TestVersionFlag(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"-version"}, nil)
	os.Stdout = old
	w.Close()
	data, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !strings.HasPrefix(string(data), "macsimd ") {
		t.Fatalf("version output %q", data)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-addr", ":0", "stray"}, nil); err == nil {
		t.Fatal("stray argument accepted")
	}
}

// TestDaemonServesAndDrains boots the daemon on an ephemeral port,
// exercises one end-to-end solve, and shuts it down via context
// cancellation (the same path a SIGTERM takes).
func TestDaemonServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	served := make(chan error, 1)
	go func() { served <- runCtx(ctx, []string{"-addr", "127.0.0.1:0", "-queue", "8"}, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-served:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/solve", "application/json",
		strings.NewReader(`{"k":200,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var view struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if view.Status == "failed" {
			t.Fatalf("job failed: %s", view.Error)
		}
		if view.Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished (status %s)", view.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain and stop")
	}
}
