// Command macsimd serves this repository's contention-resolution
// simulators over HTTP: a long-running daemon with per-tenant admission
// control and weighted-fair scheduling into a worker pool, a
// canonical-request-hash result cache (repeated queries cost zero
// simulation time) and NDJSON result streaming.
//
// Usage:
//
//	macsimd [-addr 127.0.0.1:8080] [-workers N] [-queue 256]
//	        [-cache 4096] [-retry-after 1s] [-drain-timeout 30s]
//	        [-default-tenant default] [-tenant name=rate[:burst]]...
//	        [-tenant-weight name=w]... [-tenant-queue N] [-priority-lane]
//	        [-interactive-cost N] [-max-sessions N]
//	        [-data-dir DIR] [-lease 15s] [-max-retries 3]
//	        [-peers a:8080,b:8080] [-self a:8080]
//	macsimd -version
//
// Durability (docs/durability.md): -data-dir persists job records and
// content-addressed result documents under DIR, so accepted work
// survives restarts — a daemon killed mid-job requeues and finishes it
// on the next boot. -lease bounds how long a crashed worker's job stays
// unclaimed; -max-retries bounds how often a lease-expired job is
// requeued before it is failed. Without -data-dir, job state lives in
// memory exactly as before.
//
// Clustering: -peers lists the static fleet (comma-separated host:port
// advertise addresses) and -self names this node's own entry (default
// -addr). Each canonical request key has one owner on a consistent-hash
// ring; a non-owner proxies submits — and polls, cancels and streams by
// job id — a single hop to the owner.
//
// Tenancy (docs/tenancy.md): requests carry an X-Tenant header (absent
// means -default-tenant). -tenant caps a tenant's fresh-job admission
// at rate jobs/second with an optional burst ("-tenant acme=5:10"; name
// "*" sets the default for unlisted tenants). -tenant-weight sets the
// tenant's deficit-round-robin share, -tenant-queue bounds one tenant's
// queued jobs, and -priority-lane serves small interactive requests
// (estimated cost ≤ -interactive-cost) before a tenant's own batch
// sweeps. All flags are optional; without them the daemon behaves as a
// single-tenant server.
//
// API:
//
//	POST /v1/solve       {"protocol":"one-fail","k":100000,"seed":42}
//	POST /v1/evaluate    {"maxExp":4,"runs":3} — Table 1 / Figure 1 sweep
//	POST /v1/throughput  {"lambdas":[0.1,0.2],"messages":2000,"shape":"bursty"}
//	POST /v1/scenario    {"scenario":"herd","lambdas":[0.1]}
//	GET  /v1/jobs/{id}           — poll
//	GET  /v1/jobs/{id}/stream    — NDJSON progress + result
//	POST /v1/sessions            — open a live session (docs/sessions.md)
//	GET  /v1/sessions/{id}/stream, POST /v1/sessions/{id}/control
//	GET  /v1/protocols, /v1/scenarios, /metrics, /healthz
//
// Submits answer 200 with the result on a cache hit, 202 with a job to
// poll otherwise, 429 + Retry-After when the queue is full, and 503
// while draining. SIGINT/SIGTERM drain gracefully: queued and running
// jobs finish (bounded by -drain-timeout) while new work is refused.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	mac "repro"
)

// version identifies the build; the CI build stamps it with the commit
// SHA via -ldflags "-X main.version=...".
var version = "dev"

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "macsimd:", err)
		os.Exit(1)
	}
}

// run serves until a termination signal (SIGINT/SIGTERM), draining
// gracefully.
func run(args []string, ready chan<- string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runCtx(ctx, args, ready)
}

// runCtx parses flags and serves until ctx is canceled. ready, if
// non-nil, receives the bound address (the tests use it with :0).
func runCtx(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("macsimd", flag.ContinueOnError)
	var (
		cfg          mac.ServerConfig
		showVersion  bool
		retryAfter   time.Duration
		drainTimeout time.Duration
		dataDir      string
		peers        string
	)
	fs.StringVar(&cfg.Addr, "addr", "127.0.0.1:8080", "listen address")
	fs.IntVar(&cfg.Workers, "workers", 0, "worker shards (default GOMAXPROCS)")
	fs.IntVar(&cfg.QueueDepth, "queue", 256, "queued jobs before submits answer 429")
	fs.IntVar(&cfg.CacheEntries, "cache", 4096, "result cache entries")
	fs.IntVar(&cfg.JobsRetained, "jobs", 1024, "finished jobs retained for polling")
	fs.DurationVar(&retryAfter, "retry-after", time.Second, "backpressure hint on 429 responses")
	fs.DurationVar(&drainTimeout, "drain-timeout", 30*time.Second, "graceful drain bound on shutdown")
	fs.IntVar(&cfg.Limits.MaxK, "max-k", 0, "largest k one request may ask for (default 10^7)")
	fs.IntVar(&cfg.Limits.MaxMessages, "max-messages", 0, "largest dynamic workload per request (default 10^6)")
	fs.StringVar(&cfg.DefaultTenant, "default-tenant", "", `tenant assumed when X-Tenant is absent (default "default")`)
	fs.IntVar(&cfg.TenantQueueDepth, "tenant-queue", 0, "queued jobs one tenant may hold before 429 (0 = no per-tenant bound)")
	fs.BoolVar(&cfg.PriorityLane, "priority-lane", false, "serve small interactive requests before a tenant's batch jobs")
	fs.IntVar(&cfg.Limits.InteractiveCost, "interactive-cost", 0, "interactive/batch cost boundary in estimated slots (default 2^16)")
	fs.IntVar(&cfg.MaxSessions, "max-sessions", 0, "live sessions running at once before opens answer 429 (default 64)")
	fs.Func("tenant", "per-tenant admission `name=rate[:burst]` (repeatable; name \"*\" = unlisted tenants)", func(v string) error {
		name, lim, err := parseTenantLimit(v)
		if err != nil {
			return err
		}
		if cfg.Tenants == nil {
			cfg.Tenants = make(map[string]mac.TenantLimits)
		}
		cfg.Tenants[name] = lim
		return nil
	})
	fs.Func("tenant-weight", "fair-share `name=weight` (repeatable; unlisted tenants weigh 1)", func(v string) error {
		name, w, err := parseTenantWeight(v)
		if err != nil {
			return err
		}
		if cfg.FairnessWeights == nil {
			cfg.FairnessWeights = make(map[string]int)
		}
		cfg.FairnessWeights[name] = w
		return nil
	})
	fs.StringVar(&dataDir, "data-dir", "", "persist job records and results under this directory (empty = in-memory)")
	fs.DurationVar(&cfg.LeaseDuration, "lease", 0, "how long a worker owns a running job before recovery may requeue it (default 15s)")
	fs.IntVar(&cfg.MaxRetries, "max-retries", 0, "lease-expired requeues before a job is failed (default 3; negative = never requeue)")
	fs.StringVar(&peers, "peers", "", "static cluster membership: comma-separated host:port advertise addresses")
	fs.StringVar(&cfg.SelfAddr, "self", "", "this node's advertise address in -peers (default -addr)")
	fs.BoolVar(&showVersion, "version", false, "print the build version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if showVersion {
		fmt.Printf("macsimd %s\n", version)
		return nil
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	cfg.RetryAfter = retryAfter
	cfg.DrainTimeout = drainTimeout
	cfg.Version = version
	if dataDir != "" {
		st, err := mac.NewFileStore(dataDir)
		if err != nil {
			return fmt.Errorf("-data-dir %s: %w", dataDir, err)
		}
		cfg.Store = st
	}
	if peers != "" {
		for _, p := range strings.Split(peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	bound := make(chan string, 1)
	go func() {
		addr := <-bound
		log.Printf("macsimd %s serving on http://%s (workers=%d queue=%d cache=%d)",
			version, addr, workers, cfg.QueueDepth, cfg.CacheEntries)
		if ready != nil {
			ready <- addr
		}
	}()
	err := mac.Serve(ctx, cfg, bound)
	if err == nil {
		log.Printf("macsimd drained and stopped")
	}
	return err
}

// parseTenantLimit parses one -tenant value: name=rate or
// name=rate:burst.
func parseTenantLimit(v string) (string, mac.TenantLimits, error) {
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return "", mac.TenantLimits{}, fmt.Errorf("-tenant %q: want name=rate[:burst]", v)
	}
	rateStr, burstStr, hasBurst := strings.Cut(spec, ":")
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil || rate <= 0 {
		return "", mac.TenantLimits{}, fmt.Errorf("-tenant %q: rate must be a positive number", v)
	}
	lim := mac.TenantLimits{Rate: rate}
	if hasBurst {
		burst, err := strconv.Atoi(burstStr)
		if err != nil || burst < 1 {
			return "", mac.TenantLimits{}, fmt.Errorf("-tenant %q: burst must be a positive integer", v)
		}
		lim.Burst = burst
	}
	return name, lim, nil
}

// parseTenantWeight parses one -tenant-weight value: name=weight.
func parseTenantWeight(v string) (string, int, error) {
	name, wStr, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return "", 0, fmt.Errorf("-tenant-weight %q: want name=weight", v)
	}
	w, err := strconv.Atoi(wStr)
	if err != nil || w < 1 {
		return "", 0, fmt.Errorf("-tenant-weight %q: weight must be a positive integer", v)
	}
	return name, w, nil
}
