package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkThroughput/Exp_Back-on/Back-off-8         	       1	  52341876 ns/op
BenchmarkSolve/k=1000-8   	     100	    123456 ns/op	    2048 B/op	      12 allocs/op
some benchmark log line
BenchmarkNoProcsSuffix 	      10	      99.5 ns/op
PASS
ok  	repro	1.234s
pkg: repro/internal/engine
BenchmarkExact-8  	       5	   7777 ns/op
PASS
`

func TestConvert(t *testing.T) {
	rep, err := convert(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("context wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	first := rep.Benchmarks[0]
	if first.Name != "BenchmarkThroughput/Exp_Back-on/Back-off" || first.Procs != 8 {
		t.Fatalf("name/procs wrong: %+v", first)
	}
	if first.Pkg != "repro" || first.Iterations != 1 || first.Metrics["ns/op"] != 52341876 {
		t.Fatalf("first benchmark wrong: %+v", first)
	}
	second := rep.Benchmarks[1]
	if second.Metrics["B/op"] != 2048 || second.Metrics["allocs/op"] != 12 || second.Metrics["ns/op"] != 123456 {
		t.Fatalf("multi-metric parse wrong: %+v", second)
	}
	third := rep.Benchmarks[2]
	if third.Name != "BenchmarkNoProcsSuffix" || third.Procs != 1 || third.Metrics["ns/op"] != 99.5 {
		t.Fatalf("suffix-free benchmark wrong: %+v", third)
	}
	// The pkg context line applies to subsequent results only.
	if rep.Benchmarks[3].Pkg != "repro/internal/engine" {
		t.Fatalf("pkg tracking wrong: %+v", rep.Benchmarks[3])
	}

	// The document round-trips as JSON with the expected shape.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"goos":"linux"`, `"benchmarks":[`, `"ns/op":123456`, `"allocs/op":12`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("JSON missing %s:\n%s", want, data)
		}
	}
}

// bench builds a one-metric benchmark for the diff tests.
func bench(pkg, name string, nsPerOp float64) Benchmark {
	return Benchmark{Pkg: pkg, Name: name, Procs: 8, Iterations: 1,
		Metrics: map[string]float64{"ns/op": nsPerOp}}
}

func TestDiffReports(t *testing.T) {
	base := Report{Benchmarks: []Benchmark{
		bench("repro", "BenchmarkA", 1000),
		bench("repro", "BenchmarkB", 1000),
		bench("repro", "BenchmarkGone", 1000),
	}}
	pr := Report{Benchmarks: []Benchmark{
		bench("repro", "BenchmarkA", 1200),  // +20% — within a 25% gate
		bench("repro", "BenchmarkB", 1400),  // +40% — regression
		bench("repro", "BenchmarkNew", 500), // not in baseline
	}}
	var out strings.Builder
	regressed := diffReports(&out, base, pr, 25)
	if len(regressed) != 1 || regressed[0] != "repro.BenchmarkB" {
		t.Fatalf("regressed = %v, want [repro.BenchmarkB]", regressed)
	}
	text := out.String()
	for _, want := range []string{
		"ok        repro.BenchmarkA",
		"REGRESSED repro.BenchmarkB",
		"delta=+40.0%",
		"MISSING  repro.BenchmarkGone",
		"NEW       repro.BenchmarkNew",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("diff output missing %q:\n%s", want, text)
		}
	}

	// An improvement or identical numbers never fail the gate.
	if got := diffReports(&strings.Builder{}, base, Report{Benchmarks: []Benchmark{
		bench("repro", "BenchmarkA", 800),
		bench("repro", "BenchmarkB", 1000),
		bench("repro", "BenchmarkGone", 1000),
	}}, 25); len(got) != 0 {
		t.Fatalf("improvement flagged as regression: %v", got)
	}
}

// TestDiffIgnoresProcs: the baseline is recorded on whatever core count
// the committer's machine had, CI runners have another — the same name
// must still compare (a procs-keyed match would make the gate vacuous).
func TestDiffIgnoresProcs(t *testing.T) {
	b := bench("repro", "BenchmarkA", 1000)
	b.Procs = 4
	base := Report{Benchmarks: []Benchmark{b}}
	pr := Report{Benchmarks: []Benchmark{bench("repro", "BenchmarkA", 5000)}} // procs 8
	var out strings.Builder
	got := diffReports(&out, base, pr, 25)
	if len(got) != 1 || got[0] != "repro.BenchmarkA" {
		t.Fatalf("cross-procs regression not caught: %v\n%s", got, out.String())
	}
}

func TestConvertEmptyInput(t *testing.T) {
	rep, err := convert(strings.NewReader("PASS\nok \trepro\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	// No results still yields a valid document with an empty (not null)
	// benchmark list, so downstream consumers can index it blindly.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"benchmarks":[]`) {
		t.Fatalf("empty report marshals wrong:\n%s", data)
	}
}
