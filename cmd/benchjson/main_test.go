package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkThroughput/Exp_Back-on/Back-off-8         	       1	  52341876 ns/op
BenchmarkSolve/k=1000-8   	     100	    123456 ns/op	    2048 B/op	      12 allocs/op
some benchmark log line
BenchmarkNoProcsSuffix 	      10	      99.5 ns/op
PASS
ok  	repro	1.234s
pkg: repro/internal/engine
BenchmarkExact-8  	       5	   7777 ns/op
PASS
`

func TestConvert(t *testing.T) {
	rep, err := convert(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("context wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	first := rep.Benchmarks[0]
	if first.Name != "BenchmarkThroughput/Exp_Back-on/Back-off" || first.Procs != 8 {
		t.Fatalf("name/procs wrong: %+v", first)
	}
	if first.Pkg != "repro" || first.Iterations != 1 || first.Metrics["ns/op"] != 52341876 {
		t.Fatalf("first benchmark wrong: %+v", first)
	}
	second := rep.Benchmarks[1]
	if second.Metrics["B/op"] != 2048 || second.Metrics["allocs/op"] != 12 || second.Metrics["ns/op"] != 123456 {
		t.Fatalf("multi-metric parse wrong: %+v", second)
	}
	third := rep.Benchmarks[2]
	if third.Name != "BenchmarkNoProcsSuffix" || third.Procs != 1 || third.Metrics["ns/op"] != 99.5 {
		t.Fatalf("suffix-free benchmark wrong: %+v", third)
	}
	// The pkg context line applies to subsequent results only.
	if rep.Benchmarks[3].Pkg != "repro/internal/engine" {
		t.Fatalf("pkg tracking wrong: %+v", rep.Benchmarks[3])
	}

	// The document round-trips as JSON with the expected shape.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"goos":"linux"`, `"benchmarks":[`, `"ns/op":123456`, `"allocs/op":12`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("JSON missing %s:\n%s", want, data)
		}
	}
}

func TestConvertEmptyInput(t *testing.T) {
	rep, err := convert(strings.NewReader("PASS\nok \trepro\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	// No results still yields a valid document with an empty (not null)
	// benchmark list, so downstream consumers can index it blindly.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"benchmarks":[]`) {
		t.Fatalf("empty report marshals wrong:\n%s", data)
	}
}
