// Command benchjson converts the text output of `go test -bench` into a
// JSON document, so CI can archive each run's numbers as a machine-
// readable artifact and the repository accumulates a performance
// trajectory over pull requests.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x ./... | benchjson -o BENCH_PR.json
//	benchjson -o BENCH_PR.json bench.txt
//	benchjson -diff BENCH_BASE.json [-threshold 25] BENCH_PR.json
//
// The converter understands the standard benchmark line format — name,
// iteration count, then (value, unit) pairs such as ns/op, B/op and
// allocs/op — plus the goos/goarch/pkg/cpu context lines. Unknown lines
// (PASS, ok, test chatter) are ignored, so the raw `go test` stream can
// be piped in unfiltered.
//
// With -diff the input is a previously converted JSON report (not bench
// text) and benchjson becomes a regression gate: every benchmark named
// in the baseline — the committed BENCH_BASE.json defines the tier-1
// set — is compared by ns/op, and the exit status is 1 when any of them
// regressed by more than -threshold percent. Benchmarks missing from
// the input and benchmarks only in the input are reported but do not
// fail the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Pkg is the import path the benchmark ran in (from the preceding
	// "pkg:" context line).
	Pkg string `json:"pkg,omitempty"`
	// Name is the benchmark name with any -N GOMAXPROCS suffix removed.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 if the name carried none).
	Procs int `json:"procs"`
	// Iterations is the measured iteration count (b.N).
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every (value, unit) pair on the
	// line, e.g. "ns/op", "B/op", "allocs/op".
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the full converted document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// convert parses a `go test -bench` text stream.
func convert(r io.Reader) (Report, error) {
	rep := Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// A result line is "Name N value unit [value unit ...]"; anything
		// shorter (e.g. a benchmark's own log output) is not a result.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Pkg: pkg, Name: fields[0], Procs: 1, Iterations: iters, Metrics: map[string]float64{}}
		if dash := strings.LastIndex(b.Name, "-"); dash >= 0 {
			if procs, err := strconv.Atoi(b.Name[dash+1:]); err == nil && procs > 0 {
				b.Name, b.Procs = b.Name[:dash], procs
			}
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// benchKey identifies one benchmark across reports. The GOMAXPROCS
// suffix is deliberately not part of the identity: the baseline and the
// PR run land on machines with different core counts, and keying on
// procs would silently turn every comparison into a non-failing
// MISSING/NEW pair — a vacuous gate.
type benchKey struct {
	Pkg  string
	Name string
}

// diffReports compares pr against base by ns/op, writing a line per
// baseline benchmark to w. It returns the benchmarks that regressed by
// more than thresholdPct percent.
func diffReports(w io.Writer, base, pr Report, thresholdPct float64) []string {
	prIdx := make(map[benchKey]Benchmark, len(pr.Benchmarks))
	for _, b := range pr.Benchmarks {
		prIdx[benchKey{b.Pkg, b.Name}] = b
	}
	var regressed []string
	baseSeen := make(map[benchKey]bool, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		key := benchKey{b.Pkg, b.Name}
		baseSeen[key] = true
		baseNs, ok := b.Metrics["ns/op"]
		if !ok {
			continue
		}
		cur, ok := prIdx[key]
		if !ok {
			fmt.Fprintf(w, "MISSING  %-60s (in baseline, not in input)\n", b.Pkg+"."+b.Name)
			continue
		}
		curNs, ok := cur.Metrics["ns/op"]
		if !ok {
			fmt.Fprintf(w, "MISSING  %-60s (no ns/op in input)\n", b.Pkg+"."+b.Name)
			continue
		}
		delta := 0.0
		if baseNs > 0 {
			delta = (curNs - baseNs) / baseNs * 100
		}
		verdict := "ok"
		if delta > thresholdPct {
			verdict = "REGRESSED"
			regressed = append(regressed, b.Pkg+"."+b.Name)
		}
		fmt.Fprintf(w, "%-9s %-60s base=%.0fns/op pr=%.0fns/op delta=%+.1f%%\n",
			verdict, b.Pkg+"."+b.Name, baseNs, curNs, delta)
	}
	for _, b := range pr.Benchmarks {
		if !baseSeen[benchKey{b.Pkg, b.Name}] {
			fmt.Fprintf(w, "NEW       %-60s (not in baseline)\n", b.Pkg+"."+b.Name)
		}
	}
	return regressed
}

// readReport loads a converted JSON report.
func readReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	diff := flag.String("diff", "", "baseline JSON report: compare the input JSON report against it instead of converting")
	threshold := flag.Float64("threshold", 25, "with -diff, fail when ns/op regresses by more than this percent")
	flag.Parse()

	if *diff != "" {
		if flag.NArg() != 1 {
			fmt.Fprintf(os.Stderr, "benchjson: -diff needs exactly one input report, got %q\n", flag.Args())
			os.Exit(1)
		}
		base, err := readReport(*diff)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		pr, err := readReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		regressed := diffReports(os.Stdout, base, pr, *threshold)
		if len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed by more than %.0f%% ns/op: %s\n",
				len(regressed), *threshold, strings.Join(regressed, ", "))
			os.Exit(1)
		}
		return
	}

	in := io.Reader(os.Stdin)
	switch flag.NArg() {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	default:
		fmt.Fprintf(os.Stderr, "benchjson: at most one input file, got %q\n", flag.Args())
		os.Exit(1)
	}

	rep, err := convert(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
