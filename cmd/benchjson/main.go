// Command benchjson converts the text output of `go test -bench` into a
// JSON document, so CI can archive each run's numbers as a machine-
// readable artifact and the repository accumulates a performance
// trajectory over pull requests.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x ./... | benchjson -o BENCH_PR.json
//	benchjson -o BENCH_PR.json bench.txt
//
// The converter understands the standard benchmark line format — name,
// iteration count, then (value, unit) pairs such as ns/op, B/op and
// allocs/op — plus the goos/goarch/pkg/cpu context lines. Unknown lines
// (PASS, ok, test chatter) are ignored, so the raw `go test` stream can
// be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Pkg is the import path the benchmark ran in (from the preceding
	// "pkg:" context line).
	Pkg string `json:"pkg,omitempty"`
	// Name is the benchmark name with any -N GOMAXPROCS suffix removed.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 if the name carried none).
	Procs int `json:"procs"`
	// Iterations is the measured iteration count (b.N).
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every (value, unit) pair on the
	// line, e.g. "ns/op", "B/op", "allocs/op".
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the full converted document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// convert parses a `go test -bench` text stream.
func convert(r io.Reader) (Report, error) {
	rep := Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// A result line is "Name N value unit [value unit ...]"; anything
		// shorter (e.g. a benchmark's own log output) is not a result.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Pkg: pkg, Name: fields[0], Procs: 1, Iterations: iters, Metrics: map[string]float64{}}
		if dash := strings.LastIndex(b.Name, "-"); dash >= 0 {
			if procs, err := strconv.Atoi(b.Name[dash+1:]); err == nil && procs > 0 {
				b.Name, b.Procs = b.Name[:dash], procs
			}
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return Report{}, err
	}
	return rep, nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	switch flag.NArg() {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	default:
		fmt.Fprintf(os.Stderr, "benchjson: at most one input file, got %q\n", flag.Args())
		os.Exit(1)
	}

	rep, err := convert(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
