package mac

import (
	"math"
	"testing"
)

func TestNewServiceDeliversStream(t *testing.T) {
	t.Parallel()
	svc := NewService(5)
	const n = 120
	for i := 0; i < n; i++ {
		svc.Enqueue(i)
	}
	deliveries, err := svc.RunUntilDrained(100000)
	if err != nil {
		t.Fatal(err)
	}
	if len(deliveries) != n {
		t.Fatalf("delivered %d of %d", len(deliveries), n)
	}
	if ratio := float64(svc.Slot()) / n; ratio > 12 {
		t.Fatalf("batch ratio %v, want near 7.4", ratio)
	}
}

func TestNewServiceDeterministic(t *testing.T) {
	t.Parallel()
	run := func() uint64 {
		svc := NewService(9)
		for i := 0; i < 50; i++ {
			svc.Enqueue(i)
		}
		if _, err := svc.RunUntilDrained(100000); err != nil {
			t.Fatal(err)
		}
		return svc.Slot()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed drained in %d and %d slots", a, b)
	}
}

func TestTreeSplittingSolve(t *testing.T) {
	t.Parallel()
	const k = 3000
	var basic, massey uint64
	const runs = 5
	for seed := uint64(0); seed < runs; seed++ {
		b, err := TreeSplittingSolve(k, seed, false)
		if err != nil {
			t.Fatal(err)
		}
		m, err := TreeSplittingSolve(k, seed, true)
		if err != nil {
			t.Fatal(err)
		}
		basic += b
		massey += m
	}
	rBasic := float64(basic) / runs / k
	rMassey := float64(massey) / runs / k
	if math.Abs(rBasic-2.885) > 0.2 {
		t.Errorf("tree ratio %v, want ≈ 2.89", rBasic)
	}
	if rMassey >= rBasic {
		t.Errorf("Massey ratio %v not below basic %v", rMassey, rBasic)
	}
}

func TestElectLeader(t *testing.T) {
	t.Parallel()
	for _, k := range []int{1, 100, 100000} {
		var total uint64
		const runs = 50
		for seed := uint64(0); seed < runs; seed++ {
			slots, err := ElectLeader(k, seed)
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			total += slots
		}
		if mean := float64(total) / runs; mean > 30 {
			t.Errorf("k=%d: mean election %v slots, want loglog-small", k, mean)
		}
	}
}
