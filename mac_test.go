package mac

import (
	"math"
	"strings"
	"testing"
)

func TestOneFailAdaptiveSolve(t *testing.T) {
	t.Parallel()
	p, err := OneFailAdaptive()
	if err != nil {
		t.Fatal(err)
	}
	steps, err := p.Solve(1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(steps) / 1000
	if ratio < 2 || ratio > 12 {
		t.Fatalf("OFA ratio at k=1000 = %v, want near 7.4", ratio)
	}
	// Determinism through the façade.
	again, err := p.Solve(1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if steps != again {
		t.Fatalf("same seed gave %d then %d", steps, again)
	}
	other, err := p.Solve(1000, 43)
	if err != nil {
		t.Fatal(err)
	}
	if steps == other {
		t.Fatalf("different seeds both gave %d", steps)
	}
}

func TestSolveValidation(t *testing.T) {
	t.Parallel()
	p, err := ExpBackonBackoff()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Solve(-1, 1); err == nil {
		t.Fatal("negative k accepted")
	}
	steps, err := p.Solve(0, 1)
	if err != nil || steps != 0 {
		t.Fatalf("k=0: (%d, %v), want (0, nil)", steps, err)
	}
}

func TestConstructorValidation(t *testing.T) {
	t.Parallel()
	if _, err := OneFailAdaptive(1.0); err == nil {
		t.Error("OFA δ=1 accepted")
	}
	if _, err := ExpBackonBackoff(0.9); err == nil {
		t.Error("EBB δ=0.9 accepted")
	}
	if _, err := LogFailsAdaptive(0); err == nil {
		t.Error("LFA ξt=0 accepted")
	}
	if _, err := LoglogIteratedBackoff(1.0); err == nil {
		t.Error("LLIB r=1 accepted")
	}
	if _, err := ExponentialBackoff(0.5); err == nil {
		t.Error("exp backoff r=0.5 accepted")
	}
}

func TestPaperProtocolsOrder(t *testing.T) {
	t.Parallel()
	ps := PaperProtocols()
	if len(ps) != 5 {
		t.Fatalf("got %d protocols, want 5", len(ps))
	}
	if ps[2].Name() != "One-Fail Adaptive" {
		t.Fatalf("third protocol = %q, want One-Fail Adaptive", ps[2].Name())
	}
}

func TestEvaluateAndRender(t *testing.T) {
	t.Parallel()
	ps := PaperProtocols()
	res, err := Evaluate(ps, EvalConfig{Ks: []int{8, 32}, Runs: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(ps) {
		t.Fatalf("got %d series, want %d", len(res), len(ps))
	}
	tbl := Table1(res)
	if !strings.Contains(tbl, "One-Fail Adaptive") || !strings.Contains(tbl, "Analysis") {
		t.Fatalf("Table1 incomplete:\n%s", tbl)
	}
	fig := Figure1(res)
	if !strings.Contains(fig, "k-selection") {
		t.Fatalf("Figure1 incomplete:\n%s", fig)
	}
	csv := CSV(res)
	if !strings.HasPrefix(csv, "system,k,runs,") {
		t.Fatalf("CSV incomplete:\n%s", csv)
	}
}

// TestFacadeRatioSanity runs each paper protocol once at a moderate size
// and confirms the measured ratio is within a factor two of either the
// analysis constant or (for the baselines at moderate k) within the
// paper's observed band.
func TestFacadeRatioSanity(t *testing.T) {
	t.Parallel()
	const k = 2000
	ofa, err := OneFailAdaptive()
	if err != nil {
		t.Fatal(err)
	}
	ebb, err := ExpBackonBackoff()
	if err != nil {
		t.Fatal(err)
	}
	llib, err := LoglogIteratedBackoff()
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		p      Protocol
		lo, hi float64
	}{
		{p: ofa, lo: 5, hi: 10},  // analysis 7.44
		{p: ebb, lo: 3, hi: 15},  // observed 4–8, bound 14.9
		{p: llib, lo: 3, hi: 14}, // observed 5.6–10.5
	}
	for _, tt := range tests {
		var total uint64
		const runs = 5
		for seed := uint64(0); seed < runs; seed++ {
			s, err := tt.p.Solve(k, seed)
			if err != nil {
				t.Fatal(err)
			}
			total += s
		}
		ratio := float64(total) / runs / k
		if ratio < tt.lo || ratio > tt.hi {
			t.Errorf("%s ratio at k=%d = %v, want in [%v, %v]", tt.p.Name(), k, ratio, tt.lo, tt.hi)
		}
	}
}

// TestExponentialBackoffSuperlinear confirms the motivating contrast of
// the paper: binary exponential back-off's ratio grows with k while the
// paper's protocols stay flat.
func TestExponentialBackoffSuperlinear(t *testing.T) {
	t.Parallel()
	beb, err := ExponentialBackoff(2)
	if err != nil {
		t.Fatal(err)
	}
	ratio := func(k int) float64 {
		var total uint64
		const runs = 3
		for seed := uint64(0); seed < runs; seed++ {
			s, err := beb.Solve(k, seed)
			if err != nil {
				t.Fatal(err)
			}
			total += s
		}
		return float64(total) / runs / float64(k)
	}
	small, large := ratio(100), ratio(10000)
	if large <= small {
		t.Fatalf("binary exponential back-off ratio did not grow: %v at k=100 vs %v at k=10⁴", small, large)
	}
	if math.Abs(large-small) < 1 {
		t.Fatalf("growth too small to be superlinear: %v -> %v", small, large)
	}
}

// TestEvaluateDynamic exercises the public dynamic-arrivals entry point:
// a small λ-sweep over the default lineup must produce one series per
// protocol with stable points tracking the offered load, and render to
// every output format.
func TestEvaluateDynamic(t *testing.T) {
	t.Parallel()
	protos := DynamicProtocols()
	results, err := EvaluateDynamic(nil, DynamicConfig{
		Lambdas:  []float64{0.05},
		Messages: 300,
		Runs:     2,
		Seed:     7,
		Shape:    ArrivalsPoisson,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(protos) {
		t.Fatalf("series = %d, want %d", len(results), len(protos))
	}
	for _, r := range results {
		p := r.Points[0]
		if p.Completed != p.Runs {
			t.Fatalf("%s: %d/%d drained at λ=0.05", r.Protocol.Name, p.Completed, p.Runs)
		}
		if got := p.Throughput.Mean(); math.Abs(got-0.05) > 0.02 {
			t.Fatalf("%s: throughput %.3f, want ~0.05", r.Protocol.Name, got)
		}
	}
	for _, render := range []string{ThroughputTable(results), ThroughputCSV(results), ThroughputPlot(results)} {
		if !strings.Contains(render, "One-Fail Adaptive") {
			t.Fatalf("rendering misses protocol name:\n%s", render)
		}
	}
}

// TestEvaluateDynamicScenario exercises the scenario surface: a jammed
// adversarial workload resolved by name, evaluated end to end.
func TestEvaluateDynamicScenario(t *testing.T) {
	t.Parallel()
	if len(Scenarios()) < 8 {
		t.Fatalf("scenario catalog has %d entries, want ≥ 8", len(Scenarios()))
	}
	scn, err := ScenarioByName("jammed")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScenarioByName("nope"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	results, err := EvaluateDynamic(DynamicProtocols()[:1], DynamicConfig{
		Lambdas:  []float64{0.05},
		Messages: 200,
		Runs:     1,
		Seed:     5,
		Scenario: scn,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := results[0].Points[0]
	if p.Completed != p.Runs {
		t.Fatalf("jammed scenario did not drain: %d/%d", p.Completed, p.Runs)
	}
	// Custom composition: an on-off adversary over a periodically jammed
	// channel with a mixed population, built from the surfaced types.
	custom := Scenario{
		Name:     "custom",
		Arrivals: ScenarioOnOff{Phase: 64},
		Channel:  JamPeriodic{Period: 16, Burst: 2},
		Population: &ScenarioPopulation{
			Fraction:      0.25,
			Background:    "beb",
			NewBackground: NewBackgroundBackoff,
		},
	}
	results, err = EvaluateDynamic(DynamicProtocols()[:1], DynamicConfig{
		Lambdas:  []float64{0.05},
		Messages: 150,
		Runs:     1,
		Seed:     5,
		Scenario: custom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := results[0].Points[0]; p.Completed != p.Runs {
		t.Fatalf("custom scenario did not drain: %d/%d", p.Completed, p.Runs)
	}
}
