// Package mac is the public entry point of this repository: a Go
// reproduction of "Unbounded Contention Resolution in Multiple-Access
// Channels" (Fernández Anta, Mosteiro, Muñoz; PODC 2011, arXiv:1107.0234).
//
// The paper studies static k-selection on a single-hop Radio Network
// without collision detection: k stations, activated simultaneously, must
// each deliver one message over a shared slotted channel on which a slot
// succeeds only when exactly one station transmits. Its two protocols —
// One-Fail Adaptive and Exp Back-on/Back-off — solve the problem in O(k)
// slots w.h.p. with no knowledge of k or of the network size.
//
// # Quick start
//
//	p, err := mac.OneFailAdaptive()       // the paper's novel protocol
//	if err != nil { ... }
//	steps, err := p.Solve(1000, 42)       // k = 1000 contenders, seed 42
//	fmt.Println(float64(steps) / 1000)    // ≈ 7.4, Table 1's OFA ratio
//
// # One API, three front ends
//
// Every experiment is a declarative ExperimentSpec executed by Run —
// the same description, validation, canonical cache key and result
// codecs behind this library, the macsim CLI and the macsimd HTTP API:
//
//	exec, err := mac.Run(ctx, mac.SolveExperiment(mac.SolveSpec{K: 100000, Seed: 42}))
//	for ev, err := range exec.Events() { ... }   // typed streaming progress
//	res, err := exec.Result()                    // the /v1/solve result document
//
// Canceling ctx aborts the simulation work promptly — the first
// cancellation path the simulators have had.
//
// # Reproducing the paper's evaluation
//
//	res, err := mac.Evaluate(mac.PaperProtocols(), mac.EvalConfig{MaxExp: 5})
//	fmt.Println(mac.Table1(res))          // the paper's Table 1
//	fmt.Println(mac.Figure1(res))         // the paper's Figure 1 (ASCII)
//
// # Dynamic arrivals (§6 future work)
//
//	dyn, err := mac.EvaluateDynamic(nil, mac.DynamicConfig{Messages: 10000})
//	fmt.Println(mac.ThroughputTable(dyn))  // sustained throughput per offered load λ
//
// EvaluateDynamic sweeps the offered load across each protocol's
// saturation point under Poisson, bursty or on/off arrivals; windowed
// protocols run on an event-driven engine that scales to millions of
// messages per execution.
//
// The cmd/macsim command exposes the same experiments on the command
// line, and the packages under internal/ provide the full substrate:
// exact per-node channel simulation (internal/sim), scalable aggregate
// engines (internal/engine, internal/dynamic), protocol implementations
// (internal/core, internal/baseline), the paper's closed-form analysis
// (internal/analysis), the experiment harness (internal/harness) and the
// dynamic saturation experiments (internal/throughput).
package mac
