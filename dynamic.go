package mac

import (
	"context"

	"repro/internal/protocol"
	"repro/internal/scenario"
	"repro/internal/spec"
	"repro/internal/throughput"
)

// DynamicProtocol is one protocol configuration under dynamic-arrival
// saturation test; build custom ones from a controller or schedule
// constructor, or start from DynamicProtocols().
type DynamicProtocol = throughput.Protocol

// DynamicConfig parameterizes EvaluateDynamic: offered loads, messages
// per execution, runs per point, arrival shape, seed — and, via the
// Precision field, adaptive-precision replication (stop each point once
// its confidence interval is narrow enough, instead of a fixed runs
// count).
type DynamicConfig = throughput.Config

// DynamicResult is one protocol's λ-sweep outcome.
type DynamicResult = throughput.Series

// ArrivalShape selects the arrival pattern of a dynamic evaluation.
type ArrivalShape = throughput.Shape

// Arrival shapes for DynamicConfig.Shape.
const (
	// ArrivalsPoisson is a memoryless arrival process at rate λ.
	ArrivalsPoisson ArrivalShape = throughput.Poisson
	// ArrivalsBursty delivers adversarial batches at long-run load λ.
	ArrivalsBursty ArrivalShape = throughput.Bursty
	// ArrivalsOnOff alternates double-rate on-phases with silent
	// off-phases at long-run load λ.
	ArrivalsOnOff ArrivalShape = throughput.OnOff
)

// Scenario is a composable workload description — arrival schedule,
// channel impairments (jamming), and heterogeneous station populations —
// consumed via DynamicConfig.Scenario. Build custom ones from the
// ingredients in internal/scenario surfaced here, or start from
// Scenarios().
type Scenario = scenario.Workload

// ScenarioPopulation mixes a background station kind into a scenario's
// runs (Scenario.Population).
type ScenarioPopulation = scenario.Population

// Scenario channel impairments for Scenario.Channel.
type (
	// JamRandom jams each slot independently with the given rate.
	JamRandom = scenario.JamRandom
	// JamPeriodic jams the first Burst slots of every Period slots.
	JamPeriodic = scenario.JamPeriodic
)

// Scenario arrival generators for Scenario.Arrivals.
type (
	// ScenarioPoisson is the memoryless benign arrival process.
	ScenarioPoisson = scenario.Poisson
	// ScenarioBursty delivers periodic batches at long-run load λ.
	ScenarioBursty = scenario.Bursty
	// ScenarioOnOff alternates double-rate on-phases with silence.
	ScenarioOnOff = scenario.OnOff
	// ScenarioRhoBounded is the greedy ρ-bounded injection adversary.
	ScenarioRhoBounded = scenario.RhoBounded
	// ScenarioHerd is the thundering-herd adversary that times batches
	// to land mid-resolution.
	ScenarioHerd = scenario.Herd
	// ScenarioAdaptive is the greedy adaptive adversary that injects
	// where a pilot execution's backlog peaks.
	ScenarioAdaptive = scenario.Adaptive
)

// NewBackgroundBackoff builds binary-exponential-backoff stations, the
// standard background crowd for mixed-population scenarios.
func NewBackgroundBackoff() (protocol.Station, error) { return scenario.NewBackgroundBackoff() }

// Scenarios returns the named scenario catalog: the benign shapes
// (poisson, bursty, onoff) plus the adversarial and heterogeneous
// workloads (rho, herd, adaptive, jammed, mixed).
func Scenarios() []Scenario { return scenario.Catalog() }

// ScenarioByName resolves a catalog scenario by name, as used by the
// `macsim scenario` subcommand; unknown names list the valid ones.
func ScenarioByName(name string) (Scenario, error) { return scenario.ByName(name) }

// DynamicProtocols returns the standard saturation lineup: Exp
// Back-on/Back-off, Loglog-Iterated Backoff and binary exponential
// backoff on the event-driven engine, plus One-Fail Adaptive (global
// clock) on the exact simulator.
func DynamicProtocols() []DynamicProtocol { return throughput.DefaultProtocols() }

// EvaluateDynamic measures sustained throughput, delivery-latency
// quantiles and peak backlog for each protocol across a sweep of offered
// loads — the dynamic (§6 future work) counterpart of Evaluate. A nil or
// empty protocols slice evaluates DynamicProtocols(). Windowed protocols
// run on the event-driven engine and scale to millions of messages per
// execution. It is a compatibility wrapper over Run: the same sweep is
// reachable as a ThroughputExperiment or ScenarioExperiment spec, with
// streaming progress and cancellation.
func EvaluateDynamic(protocols []DynamicProtocol, cfg DynamicConfig) ([]DynamicResult, error) {
	if len(protocols) == 0 {
		protocols = throughput.DefaultProtocols()
	}
	exec, err := Run(context.Background(), spec.ForThroughput(spec.ThroughputSpec{
		Lineup: protocols,
		Config: &cfg,
	}))
	if err != nil {
		return nil, err
	}
	res, err := exec.Result()
	if err != nil {
		return nil, err
	}
	return res.Dynamic(), nil
}

// ThroughputTable renders a dynamic evaluation as a Markdown table with
// one row per (protocol, λ).
func ThroughputTable(results []DynamicResult) string { return throughput.Table(results) }

// ThroughputCSV renders a dynamic evaluation as tidy comma-separated
// records.
func ThroughputCSV(results []DynamicResult) string { return throughput.CSV(results) }

// ThroughputPlot renders sustained throughput against offered load as a
// log-log ASCII chart.
func ThroughputPlot(results []DynamicResult) string { return throughput.Plot(results) }
