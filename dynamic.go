package mac

import (
	"repro/internal/throughput"
)

// DynamicProtocol is one protocol configuration under dynamic-arrival
// saturation test; build custom ones from a controller or schedule
// constructor, or start from DynamicProtocols().
type DynamicProtocol = throughput.Protocol

// DynamicConfig parameterizes EvaluateDynamic: offered loads, messages
// per execution, runs per point, arrival shape, seed.
type DynamicConfig = throughput.Config

// DynamicResult is one protocol's λ-sweep outcome.
type DynamicResult = throughput.Series

// ArrivalShape selects the arrival pattern of a dynamic evaluation.
type ArrivalShape = throughput.Shape

// Arrival shapes for DynamicConfig.Shape.
const (
	// ArrivalsPoisson is a memoryless arrival process at rate λ.
	ArrivalsPoisson ArrivalShape = throughput.Poisson
	// ArrivalsBursty delivers adversarial batches at long-run load λ.
	ArrivalsBursty ArrivalShape = throughput.Bursty
	// ArrivalsOnOff alternates double-rate on-phases with silent
	// off-phases at long-run load λ.
	ArrivalsOnOff ArrivalShape = throughput.OnOff
)

// DynamicProtocols returns the standard saturation lineup: Exp
// Back-on/Back-off, Loglog-Iterated Backoff and binary exponential
// backoff on the event-driven engine, plus One-Fail Adaptive (global
// clock) on the exact simulator.
func DynamicProtocols() []DynamicProtocol { return throughput.DefaultProtocols() }

// EvaluateDynamic measures sustained throughput, delivery-latency
// quantiles and peak backlog for each protocol across a sweep of offered
// loads — the dynamic (§6 future work) counterpart of Evaluate. A nil or
// empty protocols slice evaluates DynamicProtocols(). Windowed protocols
// run on the event-driven engine and scale to millions of messages per
// execution.
func EvaluateDynamic(protocols []DynamicProtocol, cfg DynamicConfig) ([]DynamicResult, error) {
	if len(protocols) == 0 {
		protocols = throughput.DefaultProtocols()
	}
	return throughput.Run(protocols, cfg)
}

// ThroughputTable renders a dynamic evaluation as a Markdown table with
// one row per (protocol, λ).
func ThroughputTable(results []DynamicResult) string { return throughput.Table(results) }

// ThroughputCSV renders a dynamic evaluation as tidy comma-separated
// records.
func ThroughputCSV(results []DynamicResult) string { return throughput.CSV(results) }

// ThroughputPlot renders sustained throughput against offered load as a
// log-log ASCII chart.
func ThroughputPlot(results []DynamicResult) string { return throughput.Plot(results) }
