package mac

import (
	"context"

	"repro/internal/spec"
)

// ExperimentKind names one of the experiment families an
// ExperimentSpec can describe.
type ExperimentKind = spec.ExperimentKind

// Experiment kinds, one per sub-spec (and per /v1/* endpoint of the
// serving API).
const (
	// KindSolve is one static k-selection execution.
	KindSolve = spec.KindSolve
	// KindEvaluate is the paper's static sweep (Table 1 / Figure 1).
	KindEvaluate = spec.KindEvaluate
	// KindThroughput is the λ-sweep saturation experiment over a benign
	// arrival shape.
	KindThroughput = spec.KindThroughput
	// KindScenario is the λ-sweep over a catalog workload scenario.
	KindScenario = spec.KindScenario
	// KindArena is the cross-paper robustness arena: every registered
	// protocol configuration against every adversarial scenario, ranked.
	KindArena = spec.KindArena
)

// ExperimentSpec is the declarative experiment description shared by
// all three front ends: this library (Run), the CLI (cmd/macsim) and
// the HTTP API (/v1/*). It is a tagged union — Kind selects which
// sub-spec is active — with JSON codecs, validation
// (ExperimentSpec.Validate) and a canonical hash
// (ExperimentSpec.CanonicalKey) under which the serving subsystem
// caches results. Identical experiments hash identically however they
// were expressed.
type ExperimentSpec = spec.ExperimentSpec

// SolveSpec describes one static k-selection execution.
type SolveSpec = spec.SolveSpec

// EvaluateSpec describes the paper's static sweep.
type EvaluateSpec = spec.EvaluateSpec

// ThroughputSpec describes the λ-sweep saturation experiment, under a
// benign arrival shape (KindThroughput) or a catalog workload scenario
// (KindScenario).
type ThroughputSpec = spec.ThroughputSpec

// ArenaSpec describes the cross-paper robustness arena: every listed
// protocol configuration (default: the full registry) runs through
// every listed adversarial scenario (default: thundering herd,
// ρ-bounded adversary, jammed channel) at one fixed offered load, and
// the result ranks protocols by the fraction of that load they
// sustained, with CI95 error bars.
type ArenaSpec = spec.ArenaSpec

// ProtocolSpec selects a protocol configuration by registry name with
// optional parameter overrides (e.g. {"delta": 2.9} on "one-fail"). In
// JSON it is a bare name string or a {"name", "params"} object.
type ProtocolSpec = spec.ProtocolSpec

// PrecisionSpec requests adaptive-precision replication for the
// repeated-run experiment kinds (evaluate, throughput, scenario):
// instead of a fixed runs count, each point replicates until the
// Student-t confidence interval of its primary metric is narrower than
// Epsilon·|mean| at the Confidence level (default 0.95), between
// MinReps (default 3) and MaxReps (default 64) replications —
// "throughput to ±1% at 95% confidence" as an input. Replication r
// draws the identical randomness fixed-rep run r would, so
// MinReps == MaxReps reproduces fixed-rep results exactly; a nil
// PrecisionSpec keeps classic fixed-rep mode and pre-existing cache
// keys. Result documents report the error bar and the replications
// spent per point (EvaluateResult cells' and ThroughputResult points'
// CI95 and RepsUsed).
type PrecisionSpec = spec.PrecisionSpec

// Limits bound what one experiment may ask of the simulators. The zero
// value of every field means unlimited; the serving API fills its own
// serving defaults (ServerLimits documents them).
type Limits = spec.Limits

// SolveExperiment wraps a SolveSpec into an ExperimentSpec.
func SolveExperiment(s SolveSpec) ExperimentSpec { return spec.ForSolve(s) }

// EvaluateExperiment wraps an EvaluateSpec into an ExperimentSpec.
func EvaluateExperiment(s EvaluateSpec) ExperimentSpec { return spec.ForEvaluate(s) }

// ThroughputExperiment wraps a ThroughputSpec into an ExperimentSpec of
// KindThroughput.
func ThroughputExperiment(s ThroughputSpec) ExperimentSpec { return spec.ForThroughput(s) }

// ScenarioExperiment wraps a ThroughputSpec into an ExperimentSpec of
// KindScenario.
func ScenarioExperiment(s ThroughputSpec) ExperimentSpec { return spec.ForScenario(s) }

// ArenaExperiment wraps an ArenaSpec into an ExperimentSpec.
func ArenaExperiment(s ArenaSpec) ExperimentSpec { return spec.ForArena(s) }

// DecodeExperiment parses an experiment's flat JSON parameter document
// — the exact body the /v1/* submit endpoints accept — into a spec of
// the given kind. An empty body selects all defaults; unknown fields
// are rejected.
func DecodeExperiment(kind ExperimentKind, body []byte) (ExperimentSpec, error) {
	return spec.Decode(kind, body)
}

// Event is one typed progress record streamed by an Execution; the
// concrete types are SweepProgress and DynamicProgress. Events marshal
// to the NDJSON lines the HTTP /stream endpoint and `macsim -stream`
// emit.
type Event = spec.Event

// SweepProgress is one completed static execution of a solve or
// evaluate experiment.
type SweepProgress = spec.SweepProgress

// DynamicProgress is one completed execution of a throughput or
// scenario experiment.
type DynamicProgress = spec.DynamicProgress

// ArenaProgress is one completed execution of an arena experiment's
// (protocol, scenario) cell.
type ArenaProgress = spec.ArenaProgress

// StreamEnd is the terminal record of an NDJSON event stream, shared by
// the HTTP /stream endpoint and `macsim -stream`.
type StreamEnd = spec.StreamEnd

// ExperimentResult is an experiment's typed outcome; Document returns
// the JSON document shared byte-for-byte with the HTTP API and
// `macsim -json`.
type ExperimentResult = spec.Result

// SolveResult is the result document of a solve experiment.
type SolveResult = spec.SolveResult

// EvaluateResult is the result document of an evaluate experiment.
type EvaluateResult = spec.EvaluateResult

// ThroughputResult is the result document of a throughput or scenario
// experiment.
type ThroughputResult = spec.ThroughputResult

// ArenaResult is the result document of an arena experiment: the
// robustness ranking plus its rendered table and CSV.
type ArenaResult = spec.ArenaResult

// Execution is one running (or finished) experiment: an
// iter.Seq2[Event, error] stream of progress events (Events) plus the
// final typed result (Result).
type Execution = spec.Execution

// Run is the single execution entry point behind every front end: it
// validates the spec (in place — defaults applied, protocol aliases
// canonicalized) and starts executing it on background goroutines.
// Canceling ctx aborts the simulation work promptly — queued runs are
// skipped, no new run starts; one individual execution is not
// interruptible, so cancellation takes effect within a single run's
// time — and surfaces ctx's error from the Execution's Events and
// Result. Validation errors return synchronously.
//
//	exec, err := mac.Run(ctx, mac.SolveExperiment(mac.SolveSpec{K: 100000, Seed: 42}))
//	for ev, err := range exec.Events() { ... }
//	res, err := exec.Result()
func Run(ctx context.Context, s ExperimentSpec) (*Execution, error) {
	return spec.Run(ctx, s)
}
