package mac

import (
	"fmt"
	"strconv"

	"repro/internal/cd"
	"repro/internal/core"
	"repro/internal/maclayer"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Delivery re-exports maclayer.Delivery: one delivered message with its
// arrival/delivery slots and batch index.
type Delivery = maclayer.Delivery

// Service is a slot-driven MAC service over the shared channel: enqueue
// messages at any time, call Step once per slot, receive deliveries. It
// resolves traffic in gated batches, each batch a static k-selection
// instance solved by the configured protocol (so each batch inherits the
// paper's linear-time w.h.p. guarantee). See internal/maclayer for the
// full semantics.
type Service = maclayer.Service

// NewService returns a Service resolving each batch with One-Fail
// Adaptive at the paper's δ = 2.72 — the recommended default: its batch
// cost is the most predictable of the protocols (Table 1). The seed
// determines all channel randomness.
func NewService(seed uint64) *Service {
	return maclayer.New(func() (protocol.Station, error) {
		ctrl, err := core.NewOneFailAdaptive(core.DefaultOFADelta)
		if err != nil {
			return nil, err
		}
		return protocol.NewFairStation(ctrl), nil
	}, rng.NewStream(seed, "mac.Service"))
}

// TreeSplittingSolve resolves a batch of k contenders on a channel WITH
// collision detection using randomized binary tree splitting (≈2.9k
// slots; ≈2.66k with massey), the §2 related-work comparator for what
// the ternary feedback would buy over the paper's model.
func TreeSplittingSolve(k int, seed uint64, massey bool) (uint64, error) {
	var opts []cd.TreeOption
	if massey {
		opts = append(opts, cd.WithMasseySkip())
	}
	return cd.TreeRun(k, rng.NewStream(seed, "mac.Tree", strconv.FormatBool(massey)), 0, opts...)
}

// ElectLeader runs Willard-style leader election among k stations on a
// channel with collision detection and returns the slot at which a
// unique leader emerged (expected O(log log k) slots) — the primitive §2
// cites for building delivery acknowledgements.
func ElectLeader(k int, seed uint64) (uint64, error) {
	return cd.LeaderRun(k, rng.NewStream(seed, "mac.Leader", fmt.Sprint(k)), 0)
}
