// The session engine: an unbounded dynamic simulation advanced one
// aggregation window at a time on the event-skip kernel.
//
// Determinism is the load-bearing property. A session draws from ONE
// rng stream in a strict order fixed entirely by (seed, validated
// spec, slot-stamped control log):
//
//  1. At each window open, the Poisson arrival count for the window,
//     then one uniform slot per arrival.
//  2. Schedule seeding per arrival in ascending arrival-slot order
//     (ties broken by draw order, which the sort keeps stable).
//  3. Collision redraws in calendar pop order, which is itself
//     deterministic.
//
// Content controls apply only at window boundaries — the engine stamps
// each with the first slot of the next unsimulated window — so a
// control's effect is a pure function of its stamped slot, never of
// wall-clock arrival time. Pause, resume, checkpoint and pacing
// consume no randomness and cannot move any stamped slot... except
// that pausing delays which window the *next* control lands in; that
// is recorded faithfully by the stamp itself, so replay agrees.
//
// The kernel.Calendar is strictly monotone: nothing can be scheduled
// behind its scan position. Arrivals are generated lazily per window,
// so the engine must never let the calendar advance past the current
// window's end — Calendar.PeekWithin exists exactly for this: it
// answers "is the next event inside this window?" without moving the
// scan position past the boundary.

package session

import (
	"fmt"
	"sort"

	"repro/internal/harness"
	"repro/internal/kernel"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/spec"
	"repro/internal/stats"
)

// station is one backlogged message: its private window schedule
// position and its arrival slot (for delivery latency).
type station struct {
	sched protocol.Schedule
	// windowEnd is the last slot of the most recently drawn window.
	windowEnd uint64
	arrival   uint64
}

// next draws the station's next transmission slot via the same
// protocol.DrawWindow primitive the batch engines use.
func (st *station) next(src *rng.Rand) (uint64, error) {
	end, chosen, err := protocol.DrawWindow(st.sched, st.windowEnd, src)
	if err != nil {
		return 0, err
	}
	st.windowEnd = end
	return chosen, nil
}

// engine is the deterministic simulation core, shared verbatim by live
// sessions and replay.
type engine struct {
	src      *rng.Rand
	cal      *kernel.Calendar
	stations map[int32]*station
	nextID   int32
	group    []int32 // reusable PopGroup buffer

	sys    *harness.WindowSystem // current protocol
	lambda float64
	jam    func(slot uint64) bool
	window uint64 // aggregation window length in slots

	next      uint64 // first slot of the next unsimulated window
	widx      int    // next window index
	delivered uint64
}

// newEngine builds the engine for a validated spec.
func newEngine(sp spec.SessionSpec) (*engine, error) {
	sys, err := windowSystem(sp.Protocol)
	if err != nil {
		return nil, err
	}
	return &engine{
		src:      rng.NewStream(sp.Seed, "session"),
		cal:      kernel.NewCalendar(),
		stations: make(map[int32]*station),
		sys:      sys,
		lambda:   sp.Lambda,
		jam:      sp.Jam.Mask(),
		window:   uint64(sp.Window),
		next:     1,
	}, nil
}

// windowSystem resolves a protocol spec to its windowed system,
// rejecting fair protocols (spec validation already has; this guards
// the library path).
func windowSystem(p spec.ProtocolSpec) (*harness.WindowSystem, error) {
	sys, err := harness.SystemBySpec(p.Name, p.Params)
	if err != nil {
		return nil, err
	}
	ws, ok := sys.(*harness.WindowSystem)
	if !ok {
		return nil, fmt.Errorf("session: %q is not a windowed protocol", p.Name)
	}
	return ws, nil
}

// apply executes one content control at the current window boundary.
// It is the single code path live control handling and replay share —
// which is what makes the stamped log sufficient for bit-identical
// reproduction.
func (e *engine) apply(msg spec.ControlMessage) error {
	switch msg.Type {
	case spec.ControlSetLambda:
		e.lambda = msg.Lambda
	case spec.ControlJam:
		e.jam = msg.Jam.Mask()
	case spec.ControlSwapProtocol:
		sys, err := windowSystem(*msg.Protocol)
		if err != nil {
			return err
		}
		return e.swap(sys)
	case spec.ControlStop:
		// Termination is decided by the caller; nothing to simulate.
	default:
		return fmt.Errorf("session: control %q is not a content control", msg.Type)
	}
	return nil
}

// swap hot-swaps the protocol at the window boundary: every backlogged
// station redraws its schedule under the new protocol from the
// boundary slot on, in ascending station-id order (the deterministic
// order), into a fresh calendar (the old one's pending attempts are
// void, and a timing wheel has no delete).
func (e *engine) swap(sys *harness.WindowSystem) error {
	e.sys = sys
	ids := make([]int32, 0, len(e.stations))
	for id := range e.stations {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	cal := kernel.NewCalendar()
	for _, id := range ids {
		st := e.stations[id]
		sched, err := sys.NewSchedule(0)
		if err != nil {
			return err
		}
		st.sched = sched
		st.windowEnd = e.next - 1
		slot, err := st.next(e.src)
		if err != nil {
			return err
		}
		cal.Schedule(slot, id)
	}
	e.cal = cal
	return nil
}

// simulateWindow advances the session by one aggregation window and
// returns its aggregate event.
func (e *engine) simulateWindow() (spec.SessionWindow, error) {
	start := e.next
	end := start + e.window - 1
	agg := spec.SessionWindow{
		Event:  "window",
		Window: e.widx,
		Start:  start,
		Slots:  int(e.window),
		Lambda: e.lambda,
	}
	var lat stats.Summary

	// Arrivals: the Poisson count for the window, then one uniform slot
	// each, sorted so station ids and schedule seeding follow arrival
	// order. Stations run on their local clocks (the default dynamic
	// deployment): the first window opens at the arrival slot.
	n := e.src.Poisson(e.lambda * float64(e.window))
	if n > 0 {
		slots := make([]uint64, n)
		for i := range slots {
			slots[i] = start + e.src.Uint64n(e.window)
		}
		sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
		for _, arrival := range slots {
			sched, err := e.sys.NewSchedule(0)
			if err != nil {
				return agg, err
			}
			id := e.nextID
			e.nextID++
			st := &station{sched: sched, windowEnd: arrival - 1, arrival: arrival}
			slot, err := st.next(e.src)
			if err != nil {
				return agg, err
			}
			e.stations[id] = st
			e.cal.Schedule(slot, id)
		}
		agg.Arrivals = n
	}

	// Drain every transmission event inside the window. PeekWithin
	// keeps the calendar's scan position at or before the boundary, so
	// the next window's arrivals (slots > end) stay schedulable.
	for {
		slot, ok := e.cal.PeekWithin(end)
		if !ok {
			break
		}
		slot, e.group = e.cal.PopGroup(e.group)
		if len(e.group) == 1 && !(e.jam != nil && e.jam(slot)) {
			id := e.group[0]
			st := e.stations[id]
			lat.Add(float64(slot - st.arrival + 1))
			delete(e.stations, id)
			agg.Delivered++
			continue
		}
		agg.Collisions++
		for _, id := range e.group {
			next, err := e.stations[id].next(e.src)
			if err != nil {
				return agg, err
			}
			e.cal.Schedule(next, id)
		}
	}

	e.next = end + 1
	e.widx++
	e.delivered += uint64(agg.Delivered)
	agg.Backlog = len(e.stations)
	agg.Throughput = float64(agg.Delivered) / float64(e.window)
	if agg.Delivered > 0 {
		agg.LatencyP99 = lat.Quantile(0.99)
	}
	return agg, nil
}
