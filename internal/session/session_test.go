package session

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/spec"
)

// collect consumes a session's whole event stream, returning the
// window aggregates as marshaled NDJSON lines (the byte-compare
// currency of the determinism golden test) plus every event seen.
func collect(t *testing.T, s *Session) (windowLines []string, events []spec.Event) {
	t.Helper()
	for ev, err := range s.Events() {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		events = append(events, ev)
		if _, ok := ev.(spec.SessionWindow); ok {
			b, err := json.Marshal(ev)
			if err != nil {
				t.Fatal(err)
			}
			windowLines = append(windowLines, string(b))
		}
	}
	return windowLines, events
}

// control sends one parsed control line and fails the test on error.
func control(t *testing.T, s *Session, line string) spec.ControlMessage {
	t.Helper()
	msg, err := spec.ParseControl(line)
	if err != nil {
		t.Fatalf("parse %q: %v", line, err)
	}
	stamped, err := s.Control(context.Background(), msg)
	if err != nil {
		t.Fatalf("control %q: %v", line, err)
	}
	return stamped
}

// waitWindows polls until the session has simulated at least n windows.
func waitWindows(t *testing.T, s *Session, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.Windows() < n {
		if time.Now().After(deadline) {
			t.Fatalf("session stuck at %d windows waiting for %d", s.Windows(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplayDeterminism is the golden test of the subsystem: a live
// run with mid-flight controls — a lambda change, a jammer toggled on
// and off, a protocol hot-swap — is replayed twice from its
// checkpoint document, and all three window-aggregate streams must be
// byte-identical.
func TestReplayDeterminism(t *testing.T) {
	t.Parallel()
	sp := spec.SessionSpec{
		Protocol: spec.ProtocolSpec{Name: "exp-bb"},
		Lambda:   0.2,
		Seed:     7,
		Window:   32,
		Buffer:   65536, // no drops: the live stream must be complete to compare
	}
	s, err := Open(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	// Collect concurrently so the consumer never falls behind.
	type collected struct {
		lines  []string
		events []spec.Event
	}
	liveC := make(chan collected, 1)
	go func() {
		lines, events := collect(t, s)
		liveC <- collected{lines, events}
	}()

	// Script mid-flight controls, letting the session advance between
	// them so the stamped slots land mid-run, not all at slot 1.
	control(t, s, "pause")
	control(t, s, "set-lambda 0.45")
	control(t, s, "resume")
	waitWindows(t, s, 3)
	control(t, s, "pause")
	jamOn := control(t, s, "jam pattern 8:3")
	control(t, s, "resume")
	waitWindows(t, s, 6)
	control(t, s, "pause")
	control(t, s, "jam off")
	swap := control(t, s, "swap-protocol exp-backoff")
	control(t, s, "resume")
	waitWindows(t, s, 9)
	control(t, s, "checkpoint")
	stop := control(t, s, "stop")
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if s.Status() != StatusStopped {
		t.Fatalf("status = %q, want %q", s.Status(), StatusStopped)
	}
	if s.Dropped() != 0 {
		t.Fatalf("live stream dropped %d windows; the golden compare needs a complete stream", s.Dropped())
	}
	if jamOn.Slot == 0 || swap.Slot <= jamOn.Slot || stop.Slot <= swap.Slot {
		t.Fatalf("controls did not land at advancing mid-run slots: jam@%d swap@%d stop@%d", jamOn.Slot, swap.Slot, stop.Slot)
	}
	live := <-liveC
	if len(live.lines) < 9 {
		t.Fatalf("only %d window aggregates collected", len(live.lines))
	}

	ck := s.Checkpoint()
	if got := len(ck.Log); got != 5 { // set-lambda, jam on, jam off, swap, stop
		t.Fatalf("control log has %d entries, want 5: %+v", got, ck.Log)
	}

	// The checkpoint document must survive a JSON round trip (it is
	// served over HTTP and fed to macsim session -replay as a file).
	doc, err := json.Marshal(ck)
	if err != nil {
		t.Fatal(err)
	}
	var ck2 spec.SessionCheckpoint
	if err := json.Unmarshal(doc, &ck2); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 2; round++ {
		r, err := Replay(context.Background(), ck2)
		if err != nil {
			t.Fatal(err)
		}
		lines, _ := collect(t, r)
		if err := r.Wait(); err != nil {
			t.Fatalf("replay %d: %v", round, err)
		}
		if len(lines) != len(live.lines) {
			t.Fatalf("replay %d produced %d windows, live produced %d", round, len(lines), len(live.lines))
		}
		for i := range lines {
			if lines[i] != live.lines[i] {
				t.Fatalf("replay %d window %d differs:\nlive:   %s\nreplay: %s", round, i, live.lines[i], lines[i])
			}
		}
		if rs := r.Status(); rs != StatusStopped {
			t.Fatalf("replay %d status = %q", round, rs)
		}
	}
}

// TestReplayRejectsControls: replay sessions are read-only.
func TestReplayRejectsControls(t *testing.T) {
	t.Parallel()
	ck := spec.SessionCheckpoint{
		Session: spec.SessionSpec{MaxWindows: 2},
		Log:     []spec.ControlMessage{{Type: spec.ControlStop, Slot: 65}},
	}
	r, err := Replay(context.Background(), ck)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Control(context.Background(), spec.ControlMessage{Type: spec.ControlPause}); err == nil {
		t.Fatal("replay session accepted a control")
	}
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestBackpressureDropsOldest: a consumer that never reads must not
// grow the session's memory — the bounded buffer drops the oldest
// window aggregates, counts them, surfaces merged gap markers, and
// the union of surviving windows and gap ranges covers every window
// exactly once.
func TestBackpressureDropsOldest(t *testing.T) {
	t.Parallel()
	const maxWindows = 200
	sp := spec.SessionSpec{
		Lambda:     0.3,
		Seed:       11,
		Window:     16,
		Buffer:     16,
		MaxWindows: maxWindows,
	}
	var observed atomic.Int64
	s, err := Open(context.Background(), sp, WithObserver(Observer{
		OnDrop: func(n int) { observed.Add(int64(n)) },
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}

	_, events := collect(t, s)
	if len(events) > sp.Buffer+4 {
		t.Fatalf("buffer leaked: %d events survive a bound of %d", len(events), sp.Buffer)
	}
	covered := make([]bool, maxWindows)
	var gaps, gapDropped int
	var end *spec.SessionEnd
	for _, ev := range events {
		switch v := ev.(type) {
		case spec.SessionWindow:
			covered[v.Window] = true
		case spec.SessionGap:
			gaps++
			gapDropped += v.Dropped
			if v.Dropped != v.To-v.From+1 {
				t.Fatalf("gap %+v: dropped count does not match its range", v)
			}
			for w := v.From; w <= v.To; w++ {
				if covered[w] {
					t.Fatalf("window %d covered twice", w)
				}
				covered[w] = true
			}
		case spec.SessionEnd:
			end = &v
		}
	}
	for w, ok := range covered {
		if !ok {
			t.Fatalf("window %d neither delivered nor gap-covered", w)
		}
	}
	if gaps == 0 {
		t.Fatal("no gap marker on an overflowing stream")
	}
	dropped := s.Dropped()
	if dropped == 0 || int(dropped) != gapDropped {
		t.Fatalf("Dropped() = %d, gap markers account for %d", dropped, gapDropped)
	}
	if observed.Load() != int64(dropped) {
		t.Fatalf("OnDrop observed %d, session counted %d", observed.Load(), dropped)
	}
	if end == nil || end.Dropped != dropped || end.Windows != maxWindows || end.Reason != "maxWindows" {
		t.Fatalf("end event %+v, want reason maxWindows with %d dropped", end, dropped)
	}
}

// TestStopCancels: hard teardown via Stop (and via parent context)
// ends the session promptly with status canceled, and the stream
// terminates with the context error after an end event.
func TestStopCancels(t *testing.T) {
	t.Parallel()
	s, err := Open(context.Background(), spec.SessionSpec{Lambda: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitWindows(t, s, 1)
	s.Stop()
	if err := s.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if s.Status() != StatusCanceled {
		t.Fatalf("status = %q", s.Status())
	}
	var sawEnd bool
	var lastErr error
	for ev, err := range s.Events() {
		if err != nil {
			lastErr = err
			continue
		}
		if e, ok := ev.(spec.SessionEnd); ok {
			sawEnd = true
			if e.Reason != "canceled" {
				t.Fatalf("end reason = %q", e.Reason)
			}
		}
	}
	if !sawEnd || !errors.Is(lastErr, context.Canceled) {
		t.Fatalf("stream end = (%v, %v), want canceled end event + error", sawEnd, lastErr)
	}
	if _, err := s.Control(context.Background(), spec.ControlMessage{Type: spec.ControlPause}); err == nil ||
		!strings.Contains(err.Error(), "ended") {
		t.Fatalf("control after end: %v", err)
	}

	// Parent-context cancellation takes the same path.
	ctx, cancel := context.WithCancel(context.Background())
	s2, err := Open(ctx, spec.SessionSpec{Lambda: 0.2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := s2.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("parent cancel: Wait = %v", err)
	}
}

// TestPauseFreezesSimulation: a paused session simulates nothing until
// resumed, while still accepting controls.
func TestPauseFreezesSimulation(t *testing.T) {
	t.Parallel()
	s, err := Open(context.Background(), spec.SessionSpec{Lambda: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	waitWindows(t, s, 1)
	control(t, s, "pause")
	frozen := s.Windows()
	time.Sleep(30 * time.Millisecond)
	if got := s.Windows(); got != frozen {
		t.Fatalf("paused session advanced from %d to %d windows", frozen, got)
	}
	control(t, s, "set-lambda 0.4") // controls still flow while paused
	control(t, s, "resume")
	waitWindows(t, s, frozen+1)
	control(t, s, "stop")
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestPaceThrottles: a paced session advances at roughly the requested
// windows/second, not flat out (content is unaffected; replay of a
// paced run ignores pace, which TestReplayDeterminism covers for the
// unpaced direction).
func TestPaceThrottles(t *testing.T) {
	t.Parallel()
	s, err := Open(context.Background(), spec.SessionSpec{Lambda: 0.2, Seed: 6, Pace: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	time.Sleep(200 * time.Millisecond)
	if got := s.Windows(); got > 40 {
		t.Fatalf("paced session simulated %d windows in 200ms at 50 windows/s", got)
	}
	control(t, s, "stop")
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestSwapRebuildsBacklog: after a protocol hot-swap under full jam,
// the backlog carries over — no message is lost or double-delivered
// across the swap boundary once the jammer lifts.
func TestSwapRebuildsBacklog(t *testing.T) {
	t.Parallel()
	sp := spec.SessionSpec{
		Lambda: 0.3,
		Seed:   9,
		Window: 32,
		Jam:    &spec.JamSpec{Mode: spec.JamOn},
	}
	// Tally through the observer, which sees every aggregate before any
	// buffer-overflow drop; an unpaced jam phase can run thousands of
	// windows before the controls land, far past the stream buffer.
	var mu sync.Mutex
	var arrivals, delivered, backlog int
	s, err := Open(context.Background(), sp, WithObserver(Observer{
		OnWindow: func(w spec.SessionWindow) {
			mu.Lock()
			arrivals += w.Arrivals
			delivered += w.Delivered
			backlog = w.Backlog
			mu.Unlock()
		},
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	waitWindows(t, s, 2) // accumulate a jammed backlog
	control(t, s, "pause")
	control(t, s, "swap-protocol loglog-iterated")
	control(t, s, "jam off")
	control(t, s, "resume")
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		d := delivered
		mu.Unlock()
		if d > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("nothing delivered after the jammer lifted")
		}
		time.Sleep(time.Millisecond)
	}
	control(t, s, "stop")
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if arrivals != delivered+backlog {
		t.Fatalf("conservation violated: %d arrivals, %d delivered + %d backlog", arrivals, delivered, backlog)
	}
}
