// Package session implements live sessions: dynamic simulations that
// run indefinitely on the event-skip kernel, accept typed control
// messages mid-flight and stream windowed aggregates as spec-layer
// events. Every control is stamped with the slot at which it takes
// effect and appended to a control log; replaying (seed, initial spec,
// control log) — Replay, macsim session -replay — reproduces the run
// bit for bit. docs/sessions.md is the operator guide.
package session

import (
	"context"
	"fmt"
	"iter"
	"sync"
	"time"

	"repro/internal/spec"
)

// Session statuses.
const (
	StatusRunning  = "running"
	StatusStopped  = "stopped"
	StatusCanceled = "canceled"
	StatusFailed   = "failed"
)

// Observer receives serving-layer callbacks from a running session:
// metrics and tenant accounting hook in here. All callbacks fire on
// the session goroutine — keep them fast and non-blocking.
type Observer struct {
	// OnWindow fires after each simulated window's aggregate publishes.
	OnWindow func(w spec.SessionWindow)
	// OnControl fires after each accepted control is stamped and
	// logged.
	OnControl func(c spec.ControlMessage)
	// OnDrop fires when slow-consumer backpressure drops window
	// aggregates from the event buffer, with the count just dropped.
	OnDrop func(windows int)
}

// Option configures Open.
type Option func(*Session)

// WithObserver attaches serving-layer callbacks.
func WithObserver(o Observer) Option {
	return func(s *Session) { s.obs = o }
}

// entry is one buffered event with its monotone sequence number (the
// consumer cursor: replacement of a dropped window by a gap marker
// keeps the sequence number, so cursors never go backwards).
type entry struct {
	seq uint64
	ev  spec.Event
}

// controlReq carries one control into the session goroutine.
type controlReq struct {
	msg   spec.ControlMessage
	reply chan controlReply
}

type controlReply struct {
	msg spec.ControlMessage
	err error
}

// Session is one live (or finished) session. Obtain one from Open or
// Replay; mac.OpenSession is the façade.
type Session struct {
	spec     spec.SessionSpec
	obs      Observer
	cancel   context.CancelFunc
	controls chan controlReq
	replayed bool
	endC     chan struct{} // closed once the session has ended

	mu      sync.Mutex
	buf     []entry
	seq     uint64
	pulse   chan struct{} // closed and replaced on every change
	done    bool
	err     error
	status  string
	dropped uint64
	windows int
	slot    uint64 // next unsimulated slot
	log     []spec.ControlMessage
}

// Open validates the spec (in place: defaults applied, names
// canonicalized) and starts the session. Canceling ctx tears the
// session down promptly (status "canceled"); a stop control ends it
// cleanly (status "stopped").
func Open(ctx context.Context, sp spec.SessionSpec, opts ...Option) (*Session, error) {
	if err := sp.Validate(spec.Limits{}); err != nil {
		return nil, err
	}
	return open(ctx, sp, nil, opts)
}

// Replay re-executes a checkpoint document: the same engine consumes
// the recorded log's controls at their stamped slots instead of a live
// control channel, so every SessionWindow aggregate reproduces bit for
// bit. Pacing is ignored — replay runs flat out. The session ends
// where the original did: at a recorded stop, or after the spec's
// window budget; a checkpoint taken mid-run on an unbounded session
// (no stop in the log yet) replays up to the window it was taken at.
func Replay(ctx context.Context, ck spec.SessionCheckpoint, opts ...Option) (*Session, error) {
	sp := ck.Session
	if err := sp.Validate(spec.Limits{}); err != nil {
		return nil, err
	}
	sp.Pace = 0
	log := make([]spec.ControlMessage, len(ck.Log))
	copy(log, ck.Log)
	for i := range log {
		if err := log[i].Validate(spec.Limits{}); err != nil {
			return nil, fmt.Errorf("session: replay log entry %d: %w", i, err)
		}
		if i > 0 && log[i].Slot < log[i-1].Slot {
			return nil, fmt.Errorf("session: replay log entry %d: stamped slot %d before predecessor's %d", i, log[i].Slot, log[i-1].Slot)
		}
	}
	if sp.MaxWindows == 0 && (len(log) == 0 || log[len(log)-1].Type != spec.ControlStop) {
		// Without a recorded stop an unbounded spec would replay forever;
		// the checkpoint's own window count is the reproducible prefix.
		if ck.Window == 0 {
			return nil, fmt.Errorf("session: checkpoint of an unbounded session has no recorded stop and no simulated windows to replay")
		}
		sp.MaxWindows = ck.Window
	}
	return open(ctx, sp, log, opts)
}

func open(ctx context.Context, sp spec.SessionSpec, replayLog []spec.ControlMessage, opts []Option) (*Session, error) {
	e, err := newEngine(sp)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	s := &Session{
		spec:     sp,
		cancel:   cancel,
		controls: make(chan controlReq),
		replayed: replayLog != nil,
		endC:     make(chan struct{}),
		pulse:    make(chan struct{}),
		status:   StatusRunning,
		slot:     1,
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.replayed {
		go s.runReplay(ctx, e, replayLog)
	} else {
		go s.run(ctx, e)
	}
	return s, nil
}

// Spec returns the initial validated spec.
func (s *Session) Spec() spec.SessionSpec { return s.spec }

// Control validates msg, hands it to the session goroutine and returns
// the slot-stamped message as recorded in the control log. It blocks
// until the session picks the control up (window boundaries come fast;
// paused sessions consume controls immediately) or ctx / the session
// ends.
func (s *Session) Control(ctx context.Context, msg spec.ControlMessage) (spec.ControlMessage, error) {
	if s.replayed {
		return spec.ControlMessage{}, fmt.Errorf("session: replay sessions accept no controls")
	}
	if err := msg.Validate(spec.Limits{}); err != nil {
		return spec.ControlMessage{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	req := controlReq{msg: msg, reply: make(chan controlReply, 1)}
	select {
	case s.controls <- req:
	case <-ctx.Done():
		return spec.ControlMessage{}, ctx.Err()
	case <-s.endC:
		return spec.ControlMessage{}, fmt.Errorf("session: already ended")
	}
	select {
	case rep := <-req.reply:
		return rep.msg, rep.err
	case <-ctx.Done():
		return spec.ControlMessage{}, ctx.Err()
	}
}

// Stop tears the session down (status "canceled"). For a clean end
// with a logged, replayable boundary, send a stop control instead.
// Idempotent.
func (s *Session) Stop() { s.cancel() }

// Wait blocks until the session ends and returns its terminal error
// (nil for a clean stop or exhausted window budget).
func (s *Session) Wait() error {
	for {
		s.mu.Lock()
		done, err, pulse := s.done, s.err, s.pulse
		s.mu.Unlock()
		if done {
			return err
		}
		<-pulse
	}
}

// Status returns "running", "stopped", "canceled" or "failed".
func (s *Session) Status() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.status
}

// Windows returns how many aggregation windows have been simulated.
func (s *Session) Windows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.windows
}

// Dropped returns how many window aggregates slow-consumer
// backpressure has dropped from the event buffer.
func (s *Session) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Log returns a copy of the slot-stamped control log.
func (s *Session) Log() []spec.ControlMessage {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]spec.ControlMessage, len(s.log))
	copy(out, s.log)
	return out
}

// Checkpoint assembles the current replay document.
func (s *Session) Checkpoint() spec.SessionCheckpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

func (s *Session) checkpointLocked() spec.SessionCheckpoint {
	log := make([]spec.ControlMessage, len(s.log))
	copy(log, s.log)
	return spec.SessionCheckpoint{
		Event:   "checkpoint",
		Slot:    s.slot,
		Window:  s.windows,
		Session: s.spec,
		Log:     log,
	}
}

// Events streams the session's events in publication order, following
// live until it ends; the terminal error (ctx's error after
// cancellation) is yielded last with a nil event. The stream reads
// from the bounded buffer: a consumer that falls more than the buffer
// behind sees gap markers where dropped window aggregates were.
// Re-iterable; each iteration starts at the oldest buffered event.
func (s *Session) Events() iter.Seq2[spec.Event, error] {
	return s.EventsContext(context.Background())
}

// EventsContext is Events with consumer-side cancellation: when ctx
// ends, iteration stops with ctx's error even if the session never
// publishes again — the HTTP streamer's client-disconnect path, where
// a paused session must not pin a handler goroutine forever.
func (s *Session) EventsContext(ctx context.Context) iter.Seq2[spec.Event, error] {
	return func(yield func(spec.Event, error) bool) {
		var cursor uint64
		for {
			events, pulse, done, err := s.snapshot(cursor)
			for _, en := range events {
				if !yield(en.ev, nil) {
					return
				}
				cursor = en.seq
			}
			if done {
				if err != nil {
					yield(nil, err)
				}
				return
			}
			select {
			case <-pulse:
			case <-ctx.Done():
				yield(nil, ctx.Err())
				return
			}
		}
	}
}

// snapshot returns a copy of the buffered events with sequence numbers
// after cursor, the current pulse channel and the terminal state. The
// copy matters: the consumer iterates outside the lock while
// backpressure rewrites buffer entries in place (dropOldestLocked).
func (s *Session) snapshot(cursor uint64) ([]entry, <-chan struct{}, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := 0
	for i < len(s.buf) && s.buf[i].seq <= cursor {
		i++
	}
	out := make([]entry, len(s.buf)-i)
	copy(out, s.buf[i:])
	return out, s.pulse, s.done, s.err
}

// publish appends one event to the bounded buffer. droppable marks
// window aggregates — the only events backpressure may discard. When
// the buffer is full the oldest droppable entry is replaced by (or
// merged into an adjacent) gap marker carrying the dropped window
// range; everything else (controls, checkpoints, gaps, the end event)
// survives, so the buffer can exceed its bound only by the trickle of
// non-droppable events.
func (s *Session) publish(ev spec.Event, droppable bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if droppable && len(s.buf) >= s.spec.Buffer {
		s.dropOldestLocked()
	}
	s.seq++
	s.buf = append(s.buf, entry{seq: s.seq, ev: ev})
	close(s.pulse)
	s.pulse = make(chan struct{})
}

// dropOldestLocked implements the drop-oldest-aggregate policy.
func (s *Session) dropOldestLocked() {
	for i := range s.buf {
		w, ok := s.buf[i].ev.(spec.SessionWindow)
		if !ok {
			continue
		}
		s.dropped++
		if s.obs.OnDrop != nil {
			s.obs.OnDrop(1)
		}
		if i > 0 {
			if g, ok := s.buf[i-1].ev.(spec.SessionGap); ok {
				// Extend the adjacent gap instead of stacking markers.
				g.To = w.Window
				g.Dropped++
				s.buf[i-1].ev = g
				s.buf = append(s.buf[:i], s.buf[i+1:]...)
				return
			}
		}
		s.buf[i].ev = spec.SessionGap{Event: "gap", From: w.Window, To: w.Window, Dropped: 1}
		return
	}
}

// noteWindow records a simulated window's bookkeeping.
func (s *Session) noteWindow(agg spec.SessionWindow) {
	s.mu.Lock()
	s.windows = agg.Window + 1
	s.slot = agg.Start + uint64(agg.Slots)
	s.mu.Unlock()
	if s.obs.OnWindow != nil {
		s.obs.OnWindow(agg)
	}
}

// finish publishes the end event and records the terminal state.
func (s *Session) finish(e *engine, reason, status string, err error) {
	end := spec.SessionEnd{
		Event:     "end",
		Reason:    reason,
		Windows:   e.widx,
		Slots:     e.next - 1,
		Delivered: e.delivered,
		Backlog:   len(e.stations),
	}
	s.mu.Lock()
	end.Dropped = s.dropped
	s.seq++
	s.buf = append(s.buf, entry{seq: s.seq, ev: end})
	s.done = true
	s.status = status
	s.err = err
	close(s.pulse)
	s.pulse = make(chan struct{})
	s.mu.Unlock()
	close(s.endC)
}

// handle applies one live control at the current window boundary:
// stamp, validate against the engine, log (content controls only),
// publish the acknowledgment and reply to the caller.
func (s *Session) handle(e *engine, req controlReq, paused *bool) (stop bool) {
	msg := req.msg
	msg.Slot = e.next
	var err error
	switch msg.Type {
	case spec.ControlPause:
		*paused = true
	case spec.ControlResume:
		*paused = false
	case spec.ControlCheckpoint:
		s.mu.Lock()
		ck := s.checkpointLocked()
		s.mu.Unlock()
		s.publish(ck, false)
	case spec.ControlStop:
		stop = true
		s.logControl(msg)
	default: // content controls: set-lambda, jam, swap-protocol
		if err = e.apply(msg); err == nil {
			s.logControl(msg)
		}
	}
	req.reply <- controlReply{msg: msg, err: err}
	if err == nil && s.obs.OnControl != nil {
		s.obs.OnControl(msg)
	}
	return stop
}

// logControl appends a stamped content control to the log and
// publishes its acknowledgment event.
func (s *Session) logControl(msg spec.ControlMessage) {
	s.mu.Lock()
	s.log = append(s.log, msg)
	s.mu.Unlock()
	s.publish(spec.SessionControl{Event: "control", Control: msg}, false)
}

// run is the live session loop: apply queued controls at the window
// boundary, honor pacing and pauses, simulate one window, repeat.
func (s *Session) run(ctx context.Context, e *engine) {
	var tickC <-chan time.Time
	if s.spec.Pace > 0 {
		interval := time.Duration(float64(time.Second) / s.spec.Pace)
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		tickC = tick.C
	}
	paused := false
	for {
		// Window boundary: drain every control already queued; while
		// paused (or waiting out the pace interval) keep accepting
		// controls instead of spinning.
		for {
			if paused {
				select {
				case req := <-s.controls:
					if s.handle(e, req, &paused) {
						s.finish(e, "stop", StatusStopped, nil)
						return
					}
				case <-ctx.Done():
					s.finish(e, "canceled", StatusCanceled, ctx.Err())
					return
				}
				continue
			}
			select {
			case req := <-s.controls:
				if s.handle(e, req, &paused) {
					s.finish(e, "stop", StatusStopped, nil)
					return
				}
				continue
			case <-ctx.Done():
				s.finish(e, "canceled", StatusCanceled, ctx.Err())
				return
			default:
			}
			break
		}
		if tickC != nil {
			waited := false
			for !waited {
				select {
				case req := <-s.controls:
					if s.handle(e, req, &paused) {
						s.finish(e, "stop", StatusStopped, nil)
						return
					}
				case <-tickC:
					waited = true
				case <-ctx.Done():
					s.finish(e, "canceled", StatusCanceled, ctx.Err())
					return
				}
			}
			if paused {
				continue
			}
		}
		agg, err := e.simulateWindow()
		if err != nil {
			s.fail(err)
			return
		}
		s.publish(agg, true)
		s.noteWindow(agg)
		if s.spec.MaxWindows > 0 && e.widx >= s.spec.MaxWindows {
			s.finish(e, "maxWindows", StatusStopped, nil)
			return
		}
	}
}

// runReplay re-executes a recorded control log: before each window,
// apply (in order) every content control stamped for the boundary
// slot, exactly as the live loop did.
func (s *Session) runReplay(ctx context.Context, e *engine, log []spec.ControlMessage) {
	i := 0
	for {
		for i < len(log) && log[i].Slot <= e.next {
			msg := log[i]
			i++
			if msg.Type == spec.ControlStop {
				s.replayLog(log[:i])
				s.publish(spec.SessionControl{Event: "control", Control: msg}, false)
				s.finish(e, "stop", StatusStopped, nil)
				return
			}
			if err := e.apply(msg); err != nil {
				s.fail(err)
				return
			}
			s.replayLog(log[:i])
			s.publish(spec.SessionControl{Event: "control", Control: msg}, false)
		}
		if err := ctx.Err(); err != nil {
			s.finish(e, "canceled", StatusCanceled, err)
			return
		}
		agg, err := e.simulateWindow()
		if err != nil {
			s.fail(err)
			return
		}
		s.publish(agg, true)
		s.noteWindow(agg)
		if s.spec.MaxWindows > 0 && e.widx >= s.spec.MaxWindows {
			s.replayLog(log[:i])
			s.finish(e, "maxWindows", StatusStopped, nil)
			return
		}
	}
}

// replayLog mirrors the consumed prefix of the recorded log into the
// session's own log, so Checkpoint on a replay matches the original.
func (s *Session) replayLog(prefix []spec.ControlMessage) {
	s.mu.Lock()
	s.log = s.log[:0]
	s.log = append(s.log, prefix...)
	s.mu.Unlock()
}

// fail records a terminal engine error.
func (s *Session) fail(err error) {
	s.mu.Lock()
	s.done = true
	s.status = StatusFailed
	s.err = err
	close(s.pulse)
	s.pulse = make(chan struct{})
	s.mu.Unlock()
	close(s.endC)
}
