package harness

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/montecarlo"
	"repro/internal/protocol"
	"repro/internal/rng"
)

func TestPaperSystems(t *testing.T) {
	t.Parallel()
	systems := PaperSystems()
	wantNames := []string{
		"Log-Fails Adaptive (2)",
		"Log-Fails Adaptive (10)",
		"One-Fail Adaptive",
		"Exp Back-on/Back-off",
		"Loglog-Iterated Backoff",
	}
	if len(systems) != len(wantNames) {
		t.Fatalf("got %d systems, want %d", len(systems), len(wantNames))
	}
	for i, sys := range systems {
		if sys.Name() != wantNames[i] {
			t.Errorf("system %d = %q, want %q", i, sys.Name(), wantNames[i])
		}
	}
}

func TestPaperSystemsAnalysisColumn(t *testing.T) {
	t.Parallel()
	want := map[string]string{
		"Log-Fails Adaptive (2)":  "7.8",
		"Log-Fails Adaptive (10)": "4.4",
		"One-Fail Adaptive":       "7.4",
		"Exp Back-on/Back-off":    "14.9",
		"Loglog-Iterated Backoff": "Θ(loglog k/logloglog k)",
	}
	for _, sys := range PaperSystems() {
		if got := sys.AnalysisRatio(10_000_000); got != want[sys.Name()] {
			t.Errorf("%s analysis = %q, want %q", sys.Name(), got, want[sys.Name()])
		}
	}
}

func TestPaperKs(t *testing.T) {
	t.Parallel()
	got := PaperKs(7)
	want := []int{10, 100, 1000, 10000, 100000, 1000000, 10000000}
	if len(got) != len(want) {
		t.Fatalf("PaperKs(7) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PaperKs(7) = %v, want %v", got, want)
		}
	}
}

func TestSweepRunSmall(t *testing.T) {
	t.Parallel()
	s := Sweep{Ks: []int{4, 16}, Runs: 5, Seed: 1}
	results, err := s.Run(PaperSystems())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d series, want 5", len(results))
	}
	for _, r := range results {
		if len(r.Cells) != 2 {
			t.Fatalf("%s: %d cells, want 2", r.System.Name(), len(r.Cells))
		}
		for _, c := range r.Cells {
			if c.Steps.N() != 5 {
				t.Errorf("%s k=%d: %d runs, want 5", r.System.Name(), c.K, c.Steps.N())
			}
			if c.Steps.Mean() < float64(c.K) {
				t.Errorf("%s k=%d: mean steps %v below k (impossible)", r.System.Name(), c.K, c.Steps.Mean())
			}
			if c.Ratio() < 1 {
				t.Errorf("%s k=%d: ratio %v < 1", r.System.Name(), c.K, c.Ratio())
			}
		}
	}
}

// TestSweepDeterministic: the same sweep executed twice (with different
// parallelism) produces identical statistics, because every run's stream
// is derived from its coordinates.
func TestSweepDeterministic(t *testing.T) {
	t.Parallel()
	run := func(par int) []SeriesResult {
		s := Sweep{Ks: []int{8, 32}, Runs: 4, Seed: 7, Parallelism: par}
		res, err := s.Run(PaperSystems())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	for i := range a {
		for j := range a[i].Cells {
			if a[i].Cells[j].Steps.Mean() != b[i].Cells[j].Steps.Mean() {
				t.Fatalf("%s k=%d: mean %v (par=1) vs %v (par=8)",
					a[i].System.Name(), a[i].Cells[j].K,
					a[i].Cells[j].Steps.Mean(), b[i].Cells[j].Steps.Mean())
			}
		}
	}
}

func TestSweepProgressCallback(t *testing.T) {
	t.Parallel()
	var mu sync.Mutex
	calls := 0
	s := Sweep{Ks: []int{4}, Runs: 3, Seed: 1, Progress: func(string, int, int, uint64) {
		mu.Lock()
		calls++
		mu.Unlock()
	}}
	if _, err := s.Run(PaperSystems()[:2]); err != nil {
		t.Fatal(err)
	}
	if calls != 6 { // 2 systems × 1 k × 3 runs
		t.Fatalf("progress called %d times, want 6", calls)
	}
}

func TestSweepPropagatesError(t *testing.T) {
	t.Parallel()
	wantErr := errors.New("boom")
	bad := NewFairSystem("bad", fixedRatio(1), func(int) (protocol.Controller, error) {
		return nil, wantErr
	})
	s := Sweep{Ks: []int{4}, Runs: 2, Seed: 1}
	if _, err := s.Run([]System{bad}); !errors.Is(err, wantErr) {
		t.Fatalf("error = %v, want %v", err, wantErr)
	}
}

func TestTable1Render(t *testing.T) {
	t.Parallel()
	s := Sweep{Ks: []int{4, 16}, Runs: 2, Seed: 3}
	results, err := s.Run(PaperSystems())
	if err != nil {
		t.Fatal(err)
	}
	out := Table1(results)
	for _, want := range []string{"One-Fail Adaptive", "7.4", "14.9", "| 4 |", "| 16 |", "Analysis"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+5 { // header + separator + 5 systems
		t.Errorf("Table1 has %d lines, want 7:\n%s", len(lines), out)
	}
}

func TestFigure1Render(t *testing.T) {
	t.Parallel()
	s := Sweep{Ks: []int{4, 16, 64}, Runs: 2, Seed: 3}
	results, err := s.Run(PaperSystems())
	if err != nil {
		t.Fatal(err)
	}
	out := Figure1(results)
	for _, want := range []string{"k-selection", "nodes k", "steps", "Loglog-Iterated Backoff", "±"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure1 output missing %q:\n%s", want, out)
		}
	}
}

func TestCSVRender(t *testing.T) {
	t.Parallel()
	s := Sweep{Ks: []int{4}, Runs: 2, Seed: 3}
	results, err := s.Run(PaperSystems()[:1])
	if err != nil {
		t.Fatal(err)
	}
	out := CSV(results)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "system,k,runs,") {
		t.Fatalf("CSV header wrong: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"Log-Fails Adaptive (2)",4,2,`) {
		t.Fatalf("CSV record wrong: %s", lines[1])
	}
}

func TestFormatK(t *testing.T) {
	t.Parallel()
	tests := []struct {
		k    int
		want string
	}{
		{k: 10, want: "10"},
		{k: 100, want: "100"},
		{k: 1000, want: "10^3"},
		{k: 10000000, want: "10^7"},
		{k: 5000, want: "5000"},
		{k: 7, want: "7"},
	}
	for _, tt := range tests {
		if got := formatK(tt.k); got != tt.want {
			t.Errorf("formatK(%d) = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestGeometricKs(t *testing.T) {
	t.Parallel()
	ks := GeometricKs(10, 10000, 7)
	if ks[0] != 10 || ks[len(ks)-1] != 10000 {
		t.Fatalf("GeometricKs endpoints wrong: %v", ks)
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Fatalf("GeometricKs not strictly increasing: %v", ks)
		}
	}
	if got := GeometricKs(5, 4, 3); len(got) != 1 || got[0] != 5 {
		t.Fatalf("degenerate GeometricKs = %v, want [5]", got)
	}
}

// TestRunStreamIsolation: a system's Run must depend only on its own
// stream, not on shared mutable state (pooled runners must be reset).
func TestRunStreamIsolation(t *testing.T) {
	t.Parallel()
	sys := PaperSystems()[3] // Exp Back-on/Back-off (pooled WindowRunner)
	src1 := rng.NewStream(11, "iso")
	a, err := sys.Run(100, src1)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave other runs, then repeat with an identical stream.
	for i := 0; i < 5; i++ {
		if _, err := sys.Run(50, rng.NewStream(12, "other")); err != nil {
			t.Fatal(err)
		}
	}
	src2 := rng.NewStream(11, "iso")
	b, err := sys.Run(100, src2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical streams gave %d and %d steps", a, b)
	}
}

// TestProgressNotSerialized pins the locking discipline of Sweep.Run: the
// Progress callback must run outside the results mutex. Each of the four
// callbacks blocks on a barrier that opens only when all four are in
// flight at once — under a callback-holds-the-lock regression at most one
// callback can be in flight and the sweep deadlocks.
func TestProgressNotSerialized(t *testing.T) {
	t.Parallel()
	const par = 4
	var barrier sync.WaitGroup
	barrier.Add(par)
	sweep := Sweep{
		Ks:          []int{1},
		Runs:        par,
		Seed:        1,
		Parallelism: par,
		Progress: func(string, int, int, uint64) {
			barrier.Done()
			barrier.Wait()
		},
	}
	done := make(chan error, 1)
	go func() {
		results, err := sweep.Run(PaperSystems()[2:3]) // One-Fail Adaptive
		if err == nil && results[0].Cells[0].Steps.N() != par {
			err = errors.New("wrong number of recorded runs")
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Sweep.Run deadlocked: Progress callbacks are serialized under the results mutex")
	}
}

// TestSweepRunContextCancel is the regression test for cancellation
// mid-k: once the context is canceled, workers must stop starting
// queued runs (at most the in-flight ones finish) and the sweep must
// return ctx.Err(). Run under -race in CI, it also guards the
// cancel-vs-worker interleaving.
func TestSweepRunContextCancel(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const par, totalRuns = 4, 400
	var runs atomic.Int32
	s := Sweep{
		Ks:          []int{32},
		Runs:        totalRuns,
		Seed:        1,
		Parallelism: par,
		Progress: func(string, int, int, uint64) {
			if runs.Add(1) == 3 {
				cancel()
			}
		},
	}
	results, err := s.RunContext(ctx, PaperSystems()[2:3])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext after cancel = (%v, %v), want context.Canceled", results, err)
	}
	// After the cancel at run 3, each of the par workers may finish the
	// run it already dequeued, plus a small scheduling slack — but the
	// bulk of the 400 queued runs must never start.
	if n := runs.Load(); n > 3+2*par {
		t.Fatalf("%d runs executed after cancellation at run 3 (parallelism %d)", n, par)
	}
}

// TestSweepRunContextDone: an already-canceled context aborts before
// any simulation starts.
func TestSweepRunContextDone(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var runs atomic.Int32
	s := Sweep{Ks: []int{8}, Runs: 4, Seed: 1, Progress: func(string, int, int, uint64) { runs.Add(1) }}
	if _, err := s.RunContext(ctx, PaperSystems()[:1]); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if runs.Load() != 0 {
		t.Fatalf("%d runs executed under a canceled context", runs.Load())
	}
}

func TestSystemBySpecParams(t *testing.T) {
	t.Parallel()
	// No params resolves exactly like SystemByName.
	plain, err := SystemBySpec("ofa", nil)
	if err != nil || plain.Name() != "One-Fail Adaptive" {
		t.Fatalf("SystemBySpec(ofa) = %v, %v", plain, err)
	}
	// The default-valued param keeps the plain name (and therefore the
	// same rng streams and cache keys).
	def, err := SystemBySpec("one-fail", map[string]float64{"delta": 2.72})
	if err != nil || def.Name() != "One-Fail Adaptive" {
		t.Fatalf("default delta renamed the system: %v, %v", def, err)
	}
	over, err := SystemBySpec("one-fail", map[string]float64{"delta": 2.9})
	if err != nil || !strings.Contains(over.Name(), "δ=2.9") {
		t.Fatalf("override delta = %v, %v", over, err)
	}
	if _, err := SystemBySpec("one-fail", map[string]float64{"delta": 1.0}); err == nil {
		t.Fatal("out-of-range delta accepted")
	}
	if _, err := SystemBySpec("one-fail", map[string]float64{"zap": 1}); err == nil {
		t.Fatal("unknown parameter accepted")
	}
	if _, err := SystemBySpec("nope", nil); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	// The ξt override reproduces the other paper row's name.
	lfa, err := SystemBySpec("log-fails-2", map[string]float64{"xi_t": 0.1})
	if err != nil || lfa.Name() != "Log-Fails Adaptive (10)" {
		t.Fatalf("xi_t override = %v, %v", lfa, err)
	}
	// The r override names exponential backoff like the library does.
	beb, err := SystemBySpec("exp-backoff", map[string]float64{"r": 3})
	if err != nil || beb.Name() != "Exponential Backoff (r=3)" {
		t.Fatalf("r override = %v, %v", beb, err)
	}
}

// TestAdaptiveMatchesFixedAtPinnedReps is the seed-determinism proof
// for the adaptive engine: with MinReps == MaxReps == Runs, adaptive
// mode executes the identical replication indices — hence the identical
// rng streams — and must reproduce fixed-rep results bit for bit.
func TestAdaptiveMatchesFixedAtPinnedReps(t *testing.T) {
	t.Parallel()
	const runs = 5
	systems := []System{PaperSystems()[2], PaperSystems()[3]} // OFA + EBB
	fixed := Sweep{Ks: []int{10, 100}, Runs: runs, Seed: 42}
	fixedRes, err := fixed.Run(systems)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := Sweep{Ks: []int{10, 100}, Seed: 42,
		Precision: montecarlo.Precision{Epsilon: 1e-12, Confidence: 0.95, MinReps: runs, MaxReps: runs}}
	adaptiveRes, err := adaptive.Run(systems)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fixedRes {
		for j := range fixedRes[i].Cells {
			f, a := &fixedRes[i].Cells[j], &adaptiveRes[i].Cells[j]
			if f.K != a.K || f.Steps.N() != a.Steps.N() ||
				f.Steps.Mean() != a.Steps.Mean() || f.Steps.Variance() != a.Steps.Variance() {
				t.Fatalf("%s k=%d: adaptive (n=%d mean=%v var=%v) != fixed (n=%d mean=%v var=%v)",
					fixedRes[i].System.Name(), f.K,
					a.Steps.N(), a.Steps.Mean(), a.Steps.Variance(),
					f.Steps.N(), f.Steps.Mean(), f.Steps.Variance())
			}
		}
	}
}

// TestAdaptiveStopsEarlyOnLowVariance checks the speed lever end to
// end: a loose precision target on a low-variance cell must finish in
// fewer than MaxReps replications.
func TestAdaptiveStopsEarlyOnLowVariance(t *testing.T) {
	t.Parallel()
	s := Sweep{Ks: []int{1000}, Seed: 1,
		Precision: montecarlo.Precision{Epsilon: 0.2, Confidence: 0.9, MinReps: 3, MaxReps: 64}}
	res, err := s.Run([]System{PaperSystems()[3]}) // Exp Back-on/Back-off: tight spread
	if err != nil {
		t.Fatal(err)
	}
	if n := res[0].Cells[0].Steps.N(); n >= 64 || n < 3 {
		t.Fatalf("reps used = %d, want early stop in [3, 64)", n)
	}
}

// TestAdaptiveInvalidPrecision verifies precision validation surfaces
// from the sweep entry point.
func TestAdaptiveInvalidPrecision(t *testing.T) {
	t.Parallel()
	s := Sweep{Ks: []int{10}, Precision: montecarlo.Precision{Epsilon: 2}}
	if _, err := s.Run(PaperSystems()[:1]); err == nil {
		t.Fatal("want validation error for epsilon ≥ 1")
	}
}
