package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/nocd"
	"repro/internal/protocol"
)

// NamedSystem pairs a protocol configuration with the canonical name and
// short alias under which the CLI (`macsim -protocol`), the spec layer
// (spec.ProtocolSpec) and the serving API (`macsimd /v1/solve`) resolve
// it. New returns a fresh System with the registry defaults; NewWith,
// when non-nil, constructs one with parameter overrides. The paper
// systems are stateless between runs, so sharing one instance per call
// site is also fine.
type NamedSystem struct {
	// Name is the canonical lookup name, e.g. "one-fail".
	Name string
	// Alias is the short form, e.g. "ofa".
	Alias string
	// New constructs the system with its registry defaults.
	New func() System
	// NewWith constructs the system with parameter overrides (missing
	// keys fall back to the defaults); nil means the configuration takes
	// no parameters. Constructors validate their parameters by probing a
	// protocol instance, so a bad value fails here rather than mid-run.
	NewWith func(params map[string]float64) (System, error)
	// Defaults maps each accepted parameter key to the value New uses,
	// so callers that canonicalize (the spec layer's cache keys) can
	// drop explicitly-spelled defaults.
	Defaults map[string]float64
}

// checkParams rejects parameter keys the configuration does not take.
func checkParams(params map[string]float64, allowed ...string) error {
	for key := range params {
		ok := false
		for _, a := range allowed {
			if key == a {
				ok = true
				break
			}
		}
		if !ok {
			keys := make([]string, 0, len(params))
			for k := range params {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			return fmt.Errorf("unknown protocol parameter %q in %v (valid: %s)",
				key, keys, strings.Join(allowed, ", "))
		}
	}
	return nil
}

// param reads an override, falling back to the default.
func param(params map[string]float64, key string, def float64) float64 {
	if v, ok := params[key]; ok {
		return v
	}
	return def
}

// newOneFail builds One-Fail Adaptive at the given δ (the paper's
// evaluation uses 2.72), named plainly at the default so rng streams
// and cache keys are stable across spellings.
func newOneFail(d float64) (System, error) {
	if _, err := core.NewOneFailAdaptive(d); err != nil {
		return nil, err
	}
	name := "One-Fail Adaptive"
	if d != core.DefaultOFADelta {
		name = fmt.Sprintf("One-Fail Adaptive (δ=%v)", d)
	}
	return NewFairSystem(name, fixedRatio(analysis.OFARatio(d)),
		func(int) (protocol.Controller, error) { return core.NewOneFailAdaptive(d) }), nil
}

// newExpBB builds Exp Back-on/Back-off at the given δ (the evaluation
// uses 0.366).
func newExpBB(d float64) (System, error) {
	if _, err := core.NewExpBackonBackoff(d); err != nil {
		return nil, err
	}
	name := "Exp Back-on/Back-off"
	if d != core.DefaultEBBDelta {
		name = fmt.Sprintf("Exp Back-on/Back-off (δ=%v)", d)
	}
	return NewWindowSystem(name, fixedRatio(analysis.EBBRatio(d)),
		func(int) (protocol.Schedule, error) { return core.NewExpBackonBackoff(d) }), nil
}

// newLogFails builds the Log-Fails Adaptive baseline with the given
// BT-step fraction ξt (the paper evaluates 1/2 and 1/10); ε = 1/(k+1)
// is derived per instance.
func newLogFails(xiT float64) (System, error) {
	if _, err := baseline.NewLogFailsAdaptive(0.5, xiT); err != nil {
		return nil, err
	}
	return NewFairSystem(fmt.Sprintf("Log-Fails Adaptive (%d)", int(1/xiT)),
		fixedRatio(analysis.LFARatio(baseline.DefaultLFAXiDelta, baseline.DefaultLFAXiBeta, xiT)),
		func(k int) (protocol.Controller, error) {
			return baseline.NewLogFailsAdaptive(1/(float64(k)+1), xiT)
		}), nil
}

// newLoglogIterated builds Loglog-Iterated Back-off with growth base r
// (the paper simulates r = 2).
func newLoglogIterated(r float64) (System, error) {
	if _, err := baseline.NewLoglogIteratedBackoff(r); err != nil {
		return nil, err
	}
	return NewWindowSystem("Loglog-Iterated Backoff",
		func(int) string { return "Θ(loglog k/logloglog k)" },
		func(int) (protocol.Schedule, error) { return baseline.NewLoglogIteratedBackoff(r) }), nil
}

// newExpBackoff builds classic monotone r-exponential back-off.
func newExpBackoff(r float64) (System, error) {
	if _, err := baseline.NewExponentialBackoff(r); err != nil {
		return nil, err
	}
	return NewWindowSystem(fmt.Sprintf("Exponential Backoff (r=%v)", r),
		func(int) string { return "Θ(k·log k) total" },
		func(int) (protocol.Schedule, error) { return baseline.NewExponentialBackoff(r) }), nil
}

// newCascade builds the Bender–Kuszmaul-style no-CD probability cascade
// at base β (see internal/nocd).
func newCascade(beta float64) (System, error) {
	if _, err := nocd.NewCascade(beta); err != nil {
		return nil, err
	}
	name := "BK Cascade"
	if beta != nocd.DefaultCascadeBase {
		name = fmt.Sprintf("BK Cascade (β=%v)", beta)
	}
	return NewFairSystem(name, func(int) string { return "O(log k)" },
		func(int) (protocol.Controller, error) { return nocd.NewCascade(beta) }), nil
}

// newRepetitionLadder builds the Chen–Jiang–Zheng-style repetition
// ladder with trade-off exponent θ (see internal/nocd).
func newRepetitionLadder(theta float64) (System, error) {
	if _, err := nocd.NewRepetitionLadder(theta); err != nil {
		return nil, err
	}
	name := "CJZ Repetition Ladder"
	if theta != nocd.DefaultLadderTheta {
		name = fmt.Sprintf("CJZ Repetition Ladder (θ=%v)", theta)
	}
	return NewWindowSystem(name, func(int) string { return "O(log^θ k)" },
		func(int) (protocol.Schedule, error) { return nocd.NewRepetitionLadder(theta) }), nil
}

// newRobustLadder builds the Jiang–Zheng-style success-clocked robust
// ladder with patience multiplier c (see internal/nocd).
func newRobustLadder(c float64) (System, error) {
	if _, err := nocd.NewRobustLadder(c); err != nil {
		return nil, err
	}
	name := "JZ Robust Ladder"
	if c != nocd.DefaultRobustPatience {
		name = fmt.Sprintf("JZ Robust Ladder (c=%v)", c)
	}
	return NewFairSystem(name, func(int) string { return "O(1) amortized" },
		func(int) (protocol.Controller, error) { return nocd.NewRobustLadder(c) }), nil
}

// withParam adapts a single-parameter constructor into NewWith.
func withParam(build func(float64) (System, error), key string, def float64) func(map[string]float64) (System, error) {
	return func(params map[string]float64) (System, error) {
		if err := checkParams(params, key); err != nil {
			return nil, err
		}
		return build(param(params, key, def))
	}
}

// withDelta adapts a δ-parameterized constructor into NewWith.
func withDelta(build func(float64) (System, error), def float64) func(map[string]float64) (System, error) {
	return withParam(build, "delta", def)
}

// withR adapts a base-parameterized constructor into NewWith.
func withR(build func(float64) (System, error), def float64) func(map[string]float64) (System, error) {
	return withParam(build, "r", def)
}

// withXiT adapts the LFA ξt-parameterized constructor into NewWith.
func withXiT(def float64) func(map[string]float64) (System, error) {
	return withParam(newLogFails, "xi_t", def)
}

// NamedSystems returns the registry behind SystemByName and
// SystemBySpec: the five paper configurations, classic binary
// exponential back-off, and the three no-collision-detection protocol
// families of the related work (internal/nocd). The slice is freshly
// allocated; callers may reorder it.
func NamedSystems() []NamedSystem {
	return []NamedSystem{
		{Name: "one-fail", Alias: "ofa", New: func() System { return PaperSystems()[2] },
			NewWith:  withDelta(newOneFail, core.DefaultOFADelta),
			Defaults: map[string]float64{"delta": core.DefaultOFADelta}},
		{Name: "exp-bb", Alias: "ebb", New: func() System { return PaperSystems()[3] },
			NewWith:  withDelta(newExpBB, core.DefaultEBBDelta),
			Defaults: map[string]float64{"delta": core.DefaultEBBDelta}},
		{Name: "log-fails-2", Alias: "lfa-2", New: func() System { return PaperSystems()[0] },
			NewWith:  withXiT(0.5),
			Defaults: map[string]float64{"xi_t": 0.5}},
		{Name: "log-fails-10", Alias: "lfa-10", New: func() System { return PaperSystems()[1] },
			NewWith:  withXiT(0.1),
			Defaults: map[string]float64{"xi_t": 0.1}},
		{Name: "loglog-iterated", Alias: "llib", New: func() System { return PaperSystems()[4] },
			NewWith:  withR(newLoglogIterated, baseline.DefaultLLIBBase),
			Defaults: map[string]float64{"r": baseline.DefaultLLIBBase}},
		{Name: "exp-backoff", Alias: "beb", New: func() System {
			sys, _ := newExpBackoff(2)
			return sys
		},
			NewWith:  withR(newExpBackoff, 2),
			Defaults: map[string]float64{"r": 2}},
		{Name: "bk-cascade", Alias: "bkc", New: func() System {
			sys, _ := newCascade(nocd.DefaultCascadeBase)
			return sys
		},
			NewWith:  withParam(newCascade, "beta", nocd.DefaultCascadeBase),
			Defaults: map[string]float64{"beta": nocd.DefaultCascadeBase}},
		{Name: "cjz-ladder", Alias: "cjz", New: func() System {
			sys, _ := newRepetitionLadder(nocd.DefaultLadderTheta)
			return sys
		},
			NewWith:  withParam(newRepetitionLadder, "theta", nocd.DefaultLadderTheta),
			Defaults: map[string]float64{"theta": nocd.DefaultLadderTheta}},
		{Name: "jz-robust", Alias: "jzr", New: func() System {
			sys, _ := newRobustLadder(nocd.DefaultRobustPatience)
			return sys
		},
			NewWith:  withParam(newRobustLadder, "c", nocd.DefaultRobustPatience),
			Defaults: map[string]float64{"c": nocd.DefaultRobustPatience}},
	}
}

// registry is the memoized lookup table behind lookup, SystemNames and
// DefaultParams: resolution runs on the server's per-request admission
// path (2-3 lookups per protocol before the cache is consulted), so it
// must not rebuild the entry slice — with its closures and Defaults
// maps — on every call. Read-only after init.
var registry = NamedSystems()

// DefaultParams returns the registry defaults for a protocol's accepted
// parameters (nil for unknown names or parameterless configurations) —
// the table behind the spec layer's explicit-default canonicalization.
// The returned map is shared and must not be mutated.
func DefaultParams(name string) map[string]float64 {
	n, err := lookup(name)
	if err != nil {
		return nil
	}
	return n.Defaults
}

// SystemNames returns the canonical names of NamedSystems, in registry
// order. The slice is freshly allocated.
func SystemNames() []string {
	names := make([]string, len(registry))
	for i, n := range registry {
		names[i] = n.Name
	}
	return names
}

// lookup resolves a registry entry by canonical name or alias
// (case-insensitive), allocation-free on the hit path.
func lookup(name string) (NamedSystem, error) {
	lower := strings.ToLower(name)
	for _, n := range registry {
		if lower == n.Name || lower == n.Alias {
			return n, nil
		}
	}
	return NamedSystem{}, fmt.Errorf("unknown protocol %q (valid: %s)", name, strings.Join(SystemNames(), ", "))
}

// SystemByName resolves a protocol configuration by canonical name or
// alias (case-insensitive); unknown names error listing the valid ones.
func SystemByName(name string) (System, error) {
	n, err := lookup(name)
	if err != nil {
		return nil, err
	}
	return n.New(), nil
}

// SystemBySpec resolves a protocol configuration by name or alias with
// parameter overrides — the resolver behind spec.ProtocolSpec. Without
// parameters it is SystemByName; with them the entry's NewWith
// validates the keys and values.
func SystemBySpec(name string, params map[string]float64) (System, error) {
	n, err := lookup(name)
	if err != nil {
		return nil, err
	}
	if len(params) == 0 {
		return n.New(), nil
	}
	if n.NewWith == nil {
		return nil, fmt.Errorf("protocol %q takes no parameters", n.Name)
	}
	return n.NewWith(params)
}

// CanonicalSystemName maps a name or alias (case-insensitive) to the
// registry's canonical name, so callers that key caches by protocol
// resolve "ofa" and "one-fail" to the same entry.
func CanonicalSystemName(name string) (string, error) {
	n, err := lookup(name)
	if err != nil {
		return "", err
	}
	return n.Name, nil
}
