package harness

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/protocol"
)

// NamedSystem pairs a protocol configuration with the canonical name and
// short alias under which the CLI (`macsim -protocol`) and the serving
// API (`macsimd /v1/solve`) resolve it. New returns a fresh System; the
// paper systems are stateless between runs, so sharing one instance per
// call site is also fine.
type NamedSystem struct {
	// Name is the canonical lookup name, e.g. "one-fail".
	Name string
	// Alias is the short form, e.g. "ofa".
	Alias string
	// New constructs the system.
	New func() System
}

// NamedSystems returns the registry behind SystemByName: the five paper
// configurations plus classic binary exponential back-off. The slice is
// freshly allocated; callers may reorder it.
func NamedSystems() []NamedSystem {
	return []NamedSystem{
		{Name: "one-fail", Alias: "ofa", New: func() System { return PaperSystems()[2] }},
		{Name: "exp-bb", Alias: "ebb", New: func() System { return PaperSystems()[3] }},
		{Name: "log-fails-2", Alias: "lfa-2", New: func() System { return PaperSystems()[0] }},
		{Name: "log-fails-10", Alias: "lfa-10", New: func() System { return PaperSystems()[1] }},
		{Name: "loglog-iterated", Alias: "llib", New: func() System { return PaperSystems()[4] }},
		{Name: "exp-backoff", Alias: "beb", New: func() System {
			return NewWindowSystem("Exponential Backoff (r=2)",
				func(int) string { return "Θ(k·log k) total" },
				func(int) (protocol.Schedule, error) { return baseline.NewExponentialBackoff(2) })
		}},
	}
}

// SystemNames returns the canonical names of NamedSystems, in registry
// order.
func SystemNames() []string {
	reg := NamedSystems()
	names := make([]string, len(reg))
	for i, n := range reg {
		names[i] = n.Name
	}
	return names
}

// SystemByName resolves a protocol configuration by canonical name or
// alias (case-insensitive); unknown names error listing the valid ones.
func SystemByName(name string) (System, error) {
	lower := strings.ToLower(name)
	for _, n := range NamedSystems() {
		if lower == n.Name || lower == n.Alias {
			return n.New(), nil
		}
	}
	return nil, fmt.Errorf("unknown protocol %q (valid: %s)", name, strings.Join(SystemNames(), ", "))
}

// CanonicalSystemName maps a name or alias (case-insensitive) to the
// registry's canonical name, so callers that key caches by protocol
// resolve "ofa" and "one-fail" to the same entry.
func CanonicalSystemName(name string) (string, error) {
	lower := strings.ToLower(name)
	for _, n := range NamedSystems() {
		if lower == n.Name || lower == n.Alias {
			return n.Name, nil
		}
	}
	return "", fmt.Errorf("unknown protocol %q (valid: %s)", name, strings.Join(SystemNames(), ", "))
}
