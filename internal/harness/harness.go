// Package harness orchestrates the paper's evaluation (§5): it sweeps
// simulated protocol configurations over network sizes
// k ∈ {10, 10², …, 10⁷}, averages repeated runs, and renders the results
// as the paper's Figure 1 (average steps vs k, log-log) and Table 1
// (steps/nodes ratio vs the analysis constants).
//
// Runs execute in parallel across a worker pool; every run draws its
// randomness from a stream derived from (master seed, system, k, run),
// and per-run outcomes are folded into the aggregates in a fixed order
// after all workers finish, so results are bit-for-bit reproducible
// regardless of scheduling. Setting Sweep.Precision replaces the fixed
// repetition count with the adaptive-precision engine of
// internal/montecarlo: each (system, k) cell replicates until its
// Student-t confidence interval meets the requested relative precision,
// reusing the exact per-run streams of fixed mode.
package harness

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/montecarlo"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/stats"
)

// System is one protocol configuration under test.
type System interface {
	// Name returns the configuration's display name, as in the paper's
	// Figure 1 legend.
	Name() string
	// AnalysisRatio returns the steps/nodes ratio predicted by the
	// protocol's analysis for this configuration at network size k, as in
	// Table 1's "Analysis" column (e.g. "7.4"); symbolic forms are
	// returned verbatim.
	AnalysisRatio(k int) string
	// Run simulates one execution of static k-selection and returns the
	// number of slots until all k messages were delivered.
	Run(k int, src *rng.Rand) (uint64, error)
}

// FairSystem adapts a fair-protocol controller constructor into a System
// using the O(1)/slot aggregate engine. The constructor receives k because
// some baselines (Log-Fails Adaptive) derive parameters from it; the
// paper's own protocols ignore it.
type FairSystem struct {
	name     string
	analysis func(k int) string
	newCtrl  func(k int) (protocol.Controller, error)
}

// NewFairSystem builds a System from a fair-protocol constructor.
func NewFairSystem(name string, analysis func(k int) string,
	newCtrl func(k int) (protocol.Controller, error)) *FairSystem {
	return &FairSystem{name: name, analysis: analysis, newCtrl: newCtrl}
}

// Name implements System.
func (s *FairSystem) Name() string { return s.name }

// AnalysisRatio implements System.
func (s *FairSystem) AnalysisRatio(k int) string { return s.analysis(k) }

// NewController builds one fresh shared controller state machine, sized
// for k contenders (protocols that do not derive parameters from k
// ignore it; pass 0 when no contender estimate exists). Controllers are
// stateful and single-use. It exposes the constructor behind Run so
// dynamic drivers (internal/arena, internal/throughput) can run registry
// systems on the event-driven engines, mirroring
// WindowSystem.NewSchedule.
func (s *FairSystem) NewController(k int) (protocol.Controller, error) {
	return s.newCtrl(k)
}

// Run implements System.
func (s *FairSystem) Run(k int, src *rng.Rand) (uint64, error) {
	ctrl, err := s.newCtrl(k)
	if err != nil {
		return 0, fmt.Errorf("harness: %s at k=%d: %w", s.name, k, err)
	}
	return engine.FairRun(k, ctrl, src, 0)
}

// WindowSystem adapts a window-schedule constructor into a System using
// the balls-in-bins aggregate engine. Runner scratch buffers are pooled
// across parallel workers.
type WindowSystem struct {
	name     string
	analysis func(k int) string
	newSched func(k int) (protocol.Schedule, error)
	pool     sync.Pool
}

// NewWindowSystem builds a System from a window-schedule constructor.
func NewWindowSystem(name string, analysis func(k int) string,
	newSched func(k int) (protocol.Schedule, error)) *WindowSystem {
	return &WindowSystem{name: name, analysis: analysis, newSched: newSched}
}

// Name implements System.
func (s *WindowSystem) Name() string { return s.name }

// AnalysisRatio implements System.
func (s *WindowSystem) AnalysisRatio(k int) string { return s.analysis(k) }

// NewSchedule builds one fresh private window schedule, sized for k
// contenders (oblivious protocols such as Exp Back-on/Back-off ignore
// k; pass 0 when no contender estimate exists, as internal/session
// does for stations arriving over time). Each schedule is stateful and
// single-use: one station, one schedule.
func (s *WindowSystem) NewSchedule(k int) (protocol.Schedule, error) {
	return s.newSched(k)
}

// Run implements System.
func (s *WindowSystem) Run(k int, src *rng.Rand) (uint64, error) {
	sched, err := s.newSched(k)
	if err != nil {
		return 0, fmt.Errorf("harness: %s at k=%d: %w", s.name, k, err)
	}
	runner, _ := s.pool.Get().(*engine.WindowRunner)
	if runner == nil {
		runner = &engine.WindowRunner{}
	}
	defer s.pool.Put(runner)
	return runner.Run(k, sched, src, 0)
}

// fixedRatio renders a constant analysis ratio to one decimal, as printed
// in Table 1.
func fixedRatio(r float64) func(int) string {
	return func(int) string { return fmt.Sprintf("%.1f", r) }
}

// PaperSystems returns the five protocol configurations of the paper's
// evaluation, in the order of Table 1's rows: Log-Fails Adaptive with
// ξt = 1/2 and ξt = 1/10 (ε ≈ 1/(k+1), ξδ = ξβ = 0.1), One-Fail Adaptive
// (δ = 2.72), Exp Back-on/Back-off (δ = 0.366) and Loglog-Iterated
// Back-off (r = 2).
func PaperSystems() []System {
	lfa := func(xiT float64) func(k int) (protocol.Controller, error) {
		return func(k int) (protocol.Controller, error) {
			return baseline.NewLogFailsAdaptive(1/(float64(k)+1), xiT)
		}
	}
	return []System{
		NewFairSystem("Log-Fails Adaptive (2)",
			fixedRatio(analysis.LFARatio(baseline.DefaultLFAXiDelta, baseline.DefaultLFAXiBeta, 0.5)),
			lfa(0.5)),
		NewFairSystem("Log-Fails Adaptive (10)",
			fixedRatio(analysis.LFARatio(baseline.DefaultLFAXiDelta, baseline.DefaultLFAXiBeta, 0.1)),
			lfa(0.1)),
		NewFairSystem("One-Fail Adaptive",
			fixedRatio(analysis.OFARatio(core.DefaultOFADelta)),
			func(int) (protocol.Controller, error) {
				return core.NewOneFailAdaptive(core.DefaultOFADelta)
			}),
		NewWindowSystem("Exp Back-on/Back-off",
			fixedRatio(analysis.EBBRatio(core.DefaultEBBDelta)),
			func(int) (protocol.Schedule, error) {
				return core.NewExpBackonBackoff(core.DefaultEBBDelta)
			}),
		NewWindowSystem("Loglog-Iterated Backoff",
			func(int) string { return "Θ(loglog k/logloglog k)" },
			func(int) (protocol.Schedule, error) {
				return baseline.NewLoglogIteratedBackoff(baseline.DefaultLLIBBase)
			}),
	}
}

// PaperKs returns the network sizes of the paper's evaluation:
// 10, 10², …, 10^maxExp. The paper uses maxExp = 7.
func PaperKs(maxExp int) []int {
	ks := make([]int, 0, maxExp)
	k := 1
	for e := 1; e <= maxExp; e++ {
		k *= 10
		ks = append(ks, k)
	}
	return ks
}

// DefaultRuns is the number of runs averaged per point, as in the paper
// ("the average of 10 runs for each algorithm").
const DefaultRuns = 10

// Sweep describes a full experiment grid.
type Sweep struct {
	// Ks lists the network sizes; defaults to PaperKs(5) if empty.
	Ks []int
	// Runs is the number of executions averaged per (system, k);
	// defaults to DefaultRuns.
	Runs int
	// Seed is the master seed; every run derives an independent stream
	// from (Seed, system name, k, run index).
	Seed uint64
	// Parallelism bounds concurrent runs; defaults to GOMAXPROCS.
	Parallelism int
	// Precision, when enabled (Epsilon > 0), switches the sweep to
	// adaptive-precision replication: Runs is ignored and each
	// (system, k) cell executes between Precision.MinReps and
	// Precision.MaxReps runs, stopping once the Student-t confidence
	// interval of its mean slots is narrower than Epsilon·mean at the
	// requested confidence. Run r of a cell draws the identical stream in
	// both modes, so MinReps == MaxReps == Runs reproduces fixed-rep
	// results exactly. The zero value keeps the classic fixed-rep sweep.
	Precision montecarlo.Precision
	// Progress, if non-nil, is invoked after each completed run. It may
	// be called concurrently from multiple workers and must be safe for
	// concurrent use.
	Progress func(system string, k int, run int, steps uint64)
}

// Cell is one (system, k) aggregate.
type Cell struct {
	K     int
	Steps stats.Summary
}

// Ratio returns mean steps divided by k, the quantity tabulated in Table 1.
func (c *Cell) Ratio() float64 {
	if c.K == 0 {
		return 0
	}
	return c.Steps.Mean() / float64(c.K)
}

// SeriesResult is one system's sweep outcome across all k.
type SeriesResult struct {
	System System
	Cells  []Cell // ascending k, aligned with the sweep's Ks
}

// Run executes the sweep over the given systems and returns one
// SeriesResult per system, in input order.
func (s Sweep) Run(systems []System) ([]SeriesResult, error) {
	return s.RunContext(context.Background(), systems)
}

// RunContext is Run with cancellation: once ctx is canceled no further
// run starts — workers drain the queued jobs without simulating and the
// producer stops enqueueing — and ctx's error is returned. Runs already
// executing finish (a single run is not interruptible); with the usual
// many-runs grids cancellation therefore takes effect within one run.
func (s Sweep) RunContext(ctx context.Context, systems []System) ([]SeriesResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ks := s.Ks
	if len(ks) == 0 {
		ks = PaperKs(5)
	}
	ks = append([]int(nil), ks...)
	sort.Ints(ks)
	runs := s.Runs
	if runs <= 0 {
		runs = DefaultRuns
	}
	par := s.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	results := make([]SeriesResult, len(systems))
	for i, sys := range systems {
		results[i] = SeriesResult{System: sys, Cells: make([]Cell, len(ks))}
		for j, k := range ks {
			results[i].Cells[j].K = k
		}
	}

	if s.Precision.Enabled() {
		if err := s.runAdaptive(ctx, systems, results, par); err != nil {
			return nil, err
		}
		return results, nil
	}

	// Fixed-rep mode: the grid is known up front, so all runs go through
	// one worker pool. Per-run step counts are recorded into a
	// pre-shaped grid (each job owns its slot — no lock) and folded in
	// (system, k, run) order after the pool drains, which makes the
	// floating-point accumulation independent of scheduling.
	steps := make([][][]uint64, len(systems))
	for i := range systems {
		steps[i] = make([][]uint64, len(ks))
		for j := range ks {
			steps[i][j] = make([]uint64, runs)
		}
	}

	type job struct{ sys, kIdx, run int }
	jobs := make(chan job)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				// After cancellation, drain the remaining jobs without
				// burning their (potentially minutes-long) budgets.
				if ctx.Err() != nil {
					continue
				}
				sys := systems[j.sys]
				k := results[j.sys].Cells[j.kIdx].K
				src := rng.NewStream(s.Seed, sys.Name(), fmt.Sprint(k), fmt.Sprint(j.run))
				n, err := sys.Run(k, src)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				steps[j.sys][j.kIdx][j.run] = n
				if s.Progress != nil {
					s.Progress(sys.Name(), k, j.run, n)
				}
			}
		}()
	}
	// Schedule the largest k first so the long runs are not left for last.
enqueue:
	for kIdx := len(ks) - 1; kIdx >= 0; kIdx-- {
		for sysIdx := range systems {
			for run := 0; run < runs; run++ {
				select {
				case jobs <- job{sys: sysIdx, kIdx: kIdx, run: run}:
				case <-ctx.Done():
					break enqueue
				}
			}
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for sysIdx := range systems {
		for kIdx := range ks {
			cell := &results[sysIdx].Cells[kIdx]
			for run := 0; run < runs; run++ {
				cell.Steps.Add(float64(steps[sysIdx][kIdx][run]))
			}
		}
	}
	return results, nil
}

// runAdaptive executes the sweep under the adaptive-precision engine:
// cells are evaluated one at a time, each replicating across the worker
// pool until its confidence interval meets the target (or MaxReps).
// Replication r of a cell draws the identical stream fixed-rep run r
// would, so the two modes agree exactly when MinReps == MaxReps ==
// Runs.
func (s Sweep) runAdaptive(ctx context.Context, systems []System, results []SeriesResult, par int) error {
	prec := s.Precision.WithDefaults()
	if err := prec.Validate(); err != nil {
		return err
	}
	for sysIdx, sys := range systems {
		for kIdx := range results[sysIdx].Cells {
			cell := &results[sysIdx].Cells[kIdx]
			k := cell.K
			res, err := montecarlo.Run(ctx, prec, par, func(run int) (float64, error) {
				src := rng.NewStream(s.Seed, sys.Name(), fmt.Sprint(k), fmt.Sprint(run))
				n, err := sys.Run(k, src)
				if err != nil {
					return 0, err
				}
				if s.Progress != nil {
					s.Progress(sys.Name(), k, run, n)
				}
				return float64(n), nil
			})
			if err != nil {
				return err
			}
			cell.Steps = res.Stats
		}
	}
	return nil
}

// GeometricKs returns n network sizes spaced geometrically from lo to hi
// (inclusive), deduplicated after rounding; it is used by the examples
// and ablation benches for denser sweeps than the paper's powers of ten.
func GeometricKs(lo, hi, n int) []int {
	if n < 2 || lo < 1 || hi <= lo {
		return []int{lo}
	}
	ratio := math.Pow(float64(hi)/float64(lo), 1/float64(n-1))
	ks := make([]int, 0, n)
	prev := 0
	x := float64(lo)
	for i := 0; i < n; i++ {
		k := int(math.Round(x))
		if k != prev {
			ks = append(ks, k)
			prev = k
		}
		x *= ratio
	}
	return ks
}
