package harness

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/asciiplot"
)

// formatK renders a network size like the paper's column heads (10, 10²,
// …) in plain ASCII: 10, 100, ..., 1e+06 style is avoided in favor of
// powers of ten when exact.
func formatK(k int) string {
	if k >= 1000 && isPowerOfTen(k) {
		exp := 0
		for v := k; v > 1; v /= 10 {
			exp++
		}
		return fmt.Sprintf("10^%d", exp)
	}
	return strconv.Itoa(k)
}

func isPowerOfTen(k int) bool {
	for k > 1 {
		if k%10 != 0 {
			return false
		}
		k /= 10
	}
	return k == 1
}

// Table1 renders the sweep as the paper's Table 1: the steps/nodes ratio
// per system and network size, with the analysis column last. The output
// is GitHub-flavored Markdown.
func Table1(results []SeriesResult) string {
	var b strings.Builder
	b.WriteString("| k |")
	if len(results) == 0 {
		return "| k |\n"
	}
	for _, c := range results[0].Cells {
		fmt.Fprintf(&b, " %s |", formatK(c.K))
	}
	b.WriteString(" Analysis |\n|---|")
	for range results[0].Cells {
		b.WriteString("---|")
	}
	b.WriteString("---|\n")
	for _, r := range results {
		fmt.Fprintf(&b, "| %s |", r.System.Name())
		maxK := 0
		for _, c := range r.Cells {
			fmt.Fprintf(&b, " %s |", formatRatio(c.Ratio()))
			if c.K > maxK {
				maxK = c.K
			}
		}
		fmt.Fprintf(&b, " %s |\n", r.System.AnalysisRatio(maxK))
	}
	return b.String()
}

// formatRatio matches the paper's one-decimal table style, with adaptive
// precision for very large ratios.
func formatRatio(r float64) string {
	if r >= 10000 {
		return fmt.Sprintf("%.3g", r)
	}
	return fmt.Sprintf("%.1f", r)
}

// Figure1 renders the sweep as the paper's Figure 1: average number of
// steps per network size, one log-log series per system, as an ASCII
// chart followed by the underlying numbers.
func Figure1(results []SeriesResult) string {
	plot := asciiplot.New("Steps to solve static k-selection", "nodes k", "steps")
	for _, r := range results {
		var xs, ys []float64
		for _, c := range r.Cells {
			if c.Steps.N() == 0 {
				continue
			}
			xs = append(xs, float64(c.K))
			ys = append(ys, c.Steps.Mean())
		}
		plot.AddSeries(r.System.Name(), xs, ys)
	}
	var b strings.Builder
	b.WriteString(plot.Render(78, 24))
	b.WriteString("\n")
	b.WriteString(stepsTable(results))
	return b.String()
}

// stepsTable renders the Figure 1 raw data (mean ± stddev steps).
func stepsTable(results []SeriesResult) string {
	var b strings.Builder
	b.WriteString("| k |")
	if len(results) == 0 {
		return "| k |\n"
	}
	for _, c := range results[0].Cells {
		fmt.Fprintf(&b, " %s |", formatK(c.K))
	}
	b.WriteString("\n|---|")
	for range results[0].Cells {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, r := range results {
		fmt.Fprintf(&b, "| %s |", r.System.Name())
		for _, c := range r.Cells {
			fmt.Fprintf(&b, " %.4g ± %.2g |", c.Steps.Mean(), c.Steps.StdDev())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the sweep as tidy comma-separated records:
// system,k,runs,mean_steps,stddev_steps,min,max,ratio.
func CSV(results []SeriesResult) string {
	var b strings.Builder
	b.WriteString("system,k,runs,mean_steps,stddev_steps,min_steps,max_steps,ratio\n")
	for _, r := range results {
		for _, c := range r.Cells {
			fmt.Fprintf(&b, "%q,%d,%d,%.6g,%.6g,%.6g,%.6g,%.6g\n",
				r.System.Name(), c.K, c.Steps.N(), c.Steps.Mean(), c.Steps.StdDev(),
				c.Steps.Min(), c.Steps.Max(), c.Ratio())
		}
	}
	return b.String()
}
