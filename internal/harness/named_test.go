package harness_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/rng"
)

// TestNamedSystemsRegistryProperties holds every registry entry to the
// full resolution contract, so a new protocol cannot land
// half-registered: canonical name and alias (in any case) round-trip
// through CanonicalSystemName and SystemByName, the entry resolves with
// and without parameters, explicit defaults canonicalize to the plain
// display name, unknown parameters and names are rejected with listings,
// and the system actually runs.
func TestNamedSystemsRegistryProperties(t *testing.T) {
	t.Parallel()
	entries := harness.NamedSystems()
	if len(entries) < 9 {
		t.Fatalf("registry has %d entries, want at least 9 (paper five + BEB + three no-CD families)", len(entries))
	}

	seen := map[string]string{}
	for _, e := range entries {
		for _, id := range []string{e.Name, e.Alias} {
			if prev, dup := seen[id]; dup {
				t.Errorf("identifier %q used by both %q and %q", id, prev, e.Name)
			}
			seen[id] = e.Name
		}
	}

	names := harness.SystemNames()
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			found := false
			for _, n := range names {
				if n == e.Name {
					found = true
				}
			}
			if !found {
				t.Errorf("%q missing from SystemNames()", e.Name)
			}

			// Round-trip: name, alias, and case variants all resolve to the
			// canonical name.
			for _, id := range []string{e.Name, e.Alias, strings.ToUpper(e.Name), strings.ToUpper(e.Alias)} {
				canon, err := harness.CanonicalSystemName(id)
				if err != nil {
					t.Fatalf("CanonicalSystemName(%q): %v", id, err)
				}
				if canon != e.Name {
					t.Errorf("CanonicalSystemName(%q) = %q, want %q", id, canon, e.Name)
				}
				if _, err := harness.SystemByName(id); err != nil {
					t.Errorf("SystemByName(%q): %v", id, err)
				}
			}

			// Resolution without parameters.
			sys, err := harness.SystemBySpec(e.Name, nil)
			if err != nil {
				t.Fatalf("SystemBySpec(%q, nil): %v", e.Name, err)
			}
			if sys.Name() != e.New().Name() {
				t.Errorf("SystemBySpec name %q != New name %q", sys.Name(), e.New().Name())
			}

			// Resolution with parameters: explicitly-spelled defaults must
			// produce the same display name as the default constructor, and
			// unknown keys must be rejected.
			if e.NewWith != nil {
				if len(e.Defaults) == 0 {
					t.Error("NewWith set but Defaults empty: spec canonicalization cannot drop defaults")
				}
				withDefaults, err := harness.SystemBySpec(e.Name, e.Defaults)
				if err != nil {
					t.Fatalf("SystemBySpec(%q, defaults): %v", e.Name, err)
				}
				if withDefaults.Name() != sys.Name() {
					t.Errorf("explicit defaults name %q != default name %q", withDefaults.Name(), sys.Name())
				}
				if _, err := harness.SystemBySpec(e.Name, map[string]float64{"no-such-param": 1}); err == nil {
					t.Error("unknown parameter accepted, want error")
				}
			}

			// The system must complete a small run under the sweep's stream
			// discipline.
			slots, err := sys.Run(4, rng.NewStream(1, sys.Name(), "4", "0"))
			if err != nil {
				t.Fatalf("Run(4): %v", err)
			}
			if slots == 0 {
				t.Error("Run(4) = 0 slots, want positive")
			}
		})
	}

	// Unknown names error with a listing naming every canonical entry.
	_, err := harness.SystemByName("no-such-protocol")
	if err == nil {
		t.Fatal("SystemByName(unknown) succeeded, want error")
	}
	for _, e := range entries {
		if !strings.Contains(err.Error(), e.Name) {
			t.Errorf("unknown-protocol error %q does not list %q", err, e.Name)
		}
	}
}

// TestNamedSystemsDefaultParams pins DefaultParams to the registry
// entries, aliases included.
func TestNamedSystemsDefaultParams(t *testing.T) {
	t.Parallel()
	for _, e := range harness.NamedSystems() {
		for _, id := range []string{e.Name, e.Alias} {
			got := harness.DefaultParams(id)
			if fmt.Sprint(got) != fmt.Sprint(e.Defaults) {
				t.Errorf("DefaultParams(%q) = %v, want %v", id, got, e.Defaults)
			}
		}
	}
	if harness.DefaultParams("no-such-protocol") != nil {
		t.Error("DefaultParams(unknown) != nil")
	}
}
