package kernel

import "math"

// log1m returns log(1-p) for p ∈ [0, 1). math.Log1p has no assembly
// implementation and dominates profiles of the skip kernel, while
// math.Log does; computing log(1-p) directly is safe whenever 1-p does
// not cancel (p not tiny), and a short series covers the tiny-p range
// with relative error below 1e-17.
func log1m(p float64) float64 {
	if p > 1e-4 {
		return math.Log(1 - p)
	}
	return -p * (1 + p*(0.5+p*(1.0/3+p*0.25)))
}

// deadExponent is the (m-1)·p threshold beyond which a slot class is
// treated as never succeeding: (1-p)^(m-1) ≤ e^{-(m-1)p}, so the success
// probability is below m·p·e^{-64} < 10^{-20} — more than ten orders of
// magnitude under one expected event per the longest representable run
// (10^10 slots). Cutting it costs less distributional distortion than
// floating-point rounding and saves an exp+log per phase for every class
// that is hopeless (e.g. the BT class while thousands of stations
// contend).
const deadExponent = 64

// successProb is the kernel-internal fast path of SuccessProb: identical
// except for the dead-class cutoff and the log1m fast path.
func successProb(m int, p float64) float64 {
	switch {
	case m <= 0 || p <= 0:
		return 0
	case m == 1:
		return math.Min(p, 1)
	case p >= 1:
		return 0
	default:
		e := float64(m-1) * p
		if e >= deadExponent {
			return 0
		}
		return float64(m) * p * math.Exp(float64(m-1)*log1m(p))
	}
}
