package kernel

import (
	"math"

	"repro/internal/rng"
)

// This file samples one window of a windowed protocol: m active stations
// each pick one of w slots uniformly at random (m balls into w bins) and
// the singleton bins are deliveries. Three exact samplers cover the three
// regimes:
//
//   - stepByBall, O(m): sample each ball's bin. A bounded uniform costs
//     roughly a tenth of a binomial draw (which pays an exp and a log for
//     its q^n factor), so this wins up to m ≈ ballBinCostRatio·w.
//
//   - stepByBin, O(w): sample occupancies in slot order via the binomial
//     chain N_j ~ Binomial(remaining, 1/(w−j+1)). Cheapest when m ≫ w
//     and the window is still expected to deliver.
//
//   - stepBySeries, O(series terms): for saturated windows (m ≫ w) the
//     expected singleton count ES = m·(1−1/w)^(m−1) is tiny and almost
//     every window is silent. Draw the singleton count S directly from
//     its exact distribution
//
//       P(S = s) = C(w,s)·(m)_s·A(m−s, w−s) / w^m,
//       A(m',w') = Σ_j (−1)^j C(w',j)·(m')_j·(w'−j)^(m'−j),
//
//     where A counts placements with no singleton (inclusion–exclusion
//     over the forced-singleton bins). Terms decay like ES^j/j!, so the
//     alternating series needs ~15 terms at ES = 1/2 — independent of w.
//     Conditioned on S = s, bin exchangeability makes the singleton slot
//     set a uniform s-subset of the w slots, so the last-delivery slot is
//     sampled with s more uniforms. This turns the saturated phases of
//     Exp Back-on/Back-off from O(w) per window into O(1).
//
// All three are exact in distribution; stepBySeries truncates terms below
// 10⁻¹⁸, far under the 2⁻⁵³ resolution of the uniform it inverts.

const (
	// seriesMinWindow is the smallest window handed to stepBySeries; under
	// it the O(w) binomial chain is already cheap.
	seriesMinWindow = 64
	// seriesMaxES is the largest expected singleton count handed to
	// stepBySeries; above it windows deliver frequently enough that the
	// cumulative-sum walk over P(S=s) loses to the binomial chain.
	seriesMaxES = 0.5
	// seriesEps truncates the alternating series; the discarded tail is
	// bounded by the first omitted term.
	seriesEps = 1e-18
	// ballBinCostRatio is the measured cost of one binomial draw in units
	// of one bounded-uniform draw: ball-by-ball (m uniforms) beats the
	// binomial chain (w binomials) up to m ≈ ballBinCostRatio·w. At 12 the
	// chain's band m/12 < w closes almost exactly onto the series branch's
	// ES ≤ 1/2 envelope (ES ≤ 1/2 ⇔ w ≲ m/ln(2m)), measured fastest on
	// the Exp Back-on/Back-off grid.
	ballBinCostRatio = 12
)

// Window samples windowed-protocol windows. The zero value is ready to
// use; reusing one across executions amortizes the O(max window) scratch
// of the ball-by-ball branch.
type Window struct {
	counts  []int32 // per-bin occupancy scratch for the ball-by-ball branch
	touched []int32 // bins touched in this window, for O(m) reset
}

// Step throws m balls into w bins and returns the number of singleton
// bins and the 1-based slot index of the last singleton (0 if none),
// choosing the cheapest exact sampler for the regime.
func (o *Window) Step(m, w int, src *rng.Rand) (delivered, last int) {
	if m <= ballBinCostRatio*w {
		return o.stepByBall(m, w, src)
	}
	if w >= seriesMinWindow {
		x := float64(m-1) / float64(w)
		if x >= deadExponent {
			// ES ≤ m·e⁻⁶⁴: silent to within floating-point noise
			// (the same argument as deadExponent). No draws consumed.
			return 0, 0
		}
		if es := float64(m) * math.Exp(float64(m-1)*log1m(1/float64(w))); es <= seriesMaxES {
			return stepBySeries(m, w, src)
		}
	}
	return stepByBin(m, w, src)
}

// stepByBall samples each ball's bin: O(m) uniforms. Used when m is not
// much larger than w. Correct for any m, w ≥ 1.
func (o *Window) stepByBall(m, w int, src *rng.Rand) (delivered, last int) {
	if cap(o.counts) < w {
		o.counts = make([]int32, w)
	}
	counts := o.counts[:w]
	o.touched = o.touched[:0]
	for i := 0; i < m; i++ {
		b := int32(src.Uint64n(uint64(w)))
		if counts[b] == 0 {
			o.touched = append(o.touched, b)
		}
		counts[b]++
	}
	for _, b := range o.touched {
		if counts[b] == 1 {
			delivered++
			if int(b)+1 > last {
				last = int(b) + 1
			}
		}
		counts[b] = 0
	}
	return delivered, last
}

// stepByBin samples bin occupancies in slot order via the binomial chain
// N_j ~ Binomial(remaining, 1/(w−j+1)): O(w) binomial draws. Used when
// m > w and the window is not saturated enough for stepBySeries.
func stepByBin(m, w int, src *rng.Rand) (delivered, last int) {
	rem := m
	for j := 0; j < w && rem > 0; j++ {
		var nj int
		if left := w - j; left == 1 {
			nj = rem // all remaining balls land in the last bin
		} else {
			nj = src.Binomial(rem, 1/float64(left))
		}
		if nj == 1 {
			delivered++
			last = j + 1
		}
		rem -= nj
	}
	return delivered, last
}

// seriesRatio is the common term ratio of the singleton-count series:
// with mr balls and wr bins remaining after i forced singletons,
//
//	ratio = [(mr−i)/(i+1)] · ((wr−i−1)/(wr−i))^(mr−i−1)
//
// relates consecutive terms both along j (within one P(S=s) series) and
// along s (between the leading terms of consecutive s).
func seriesRatio(mr, wr, i int) float64 {
	return float64(mr-i) / float64(i+1) *
		math.Exp(float64(mr-i-1)*log1m(1/float64(wr-i)))
}

// singletonPMF returns P(S = s) by summing the alternating series with
// leading term t0 = C(w,s)·(m)_s·(w−s)^(m−s)/w^m (supplied by the caller,
// maintained incrementally across s).
func singletonPMF(m, w, s int, t0 float64) float64 {
	sum, t := t0, t0
	sign := -1.0
	for j := 0; j < m-s && j < w-s; j++ {
		t *= seriesRatio(m-s, w-s, j)
		if t < seriesEps {
			break
		}
		sum += sign * t
		sign = -sign
	}
	return sum
}

// stepBySeries draws the singleton count S from its exact distribution by
// inverting one uniform against the cumulative series, then places the S
// singletons as a uniform S-subset of the w slots. Requires m > w ≥
// seriesMinWindow and small ES (enforced by Step's dispatch).
func stepBySeries(m, w int, src *rng.Rand) (delivered, last int) {
	u := src.Float64()
	t0 := 1.0 // leading term for s = 0: w^m/w^m
	cum := 0.0
	s := 0
	for {
		cum += singletonPMF(m, w, s, t0)
		if u < cum {
			break
		}
		// Advance the leading term: t0(s+1) = t0(s)·C ratio (see
		// seriesRatio). When it underflows, the true tail mass is below
		// floating-point resolution of u — clamp.
		t0 *= seriesRatio(m, w, s)
		s++
		if t0 < seriesEps || s >= w {
			break
		}
	}
	if s == 0 {
		return 0, 0
	}
	// Conditioned on S = s the singleton slots are a uniform s-subset:
	// draw s distinct slots by rejection (collision probability ≤ s/w,
	// negligible for s ≪ w).
	var picked [64]int
	if s > len(picked) {
		s = len(picked) // unreachable for ES ≤ seriesMaxES; safety clamp
	}
	for i := 0; i < s; {
		b := int(src.Uint64n(uint64(w)))
		dup := false
		for _, p := range picked[:i] {
			if p == b {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		picked[i] = b
		i++
		if b+1 > last {
			last = b + 1
		}
	}
	return s, last
}
