package kernel

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
)

// TestBallsInBinsBranchesAgree checks that the per-ball and per-bin
// samplers draw the delivered-count from the same distribution.
func TestBallsInBinsBranchesAgree(t *testing.T) {
	t.Parallel()
	const m, w, draws = 12, 16, 100000
	var win Window
	srcA, srcB := rng.New(11), rng.New(22)
	var pmfA, pmfB [13]int
	for i := 0; i < draws; i++ {
		dA, _ := win.stepByBall(m, w, srcA)
		dB, _ := stepByBin(m, w, srcB)
		pmfA[dA]++
		pmfB[dB]++
	}
	for d := 0; d <= m; d++ {
		nA, nB := float64(pmfA[d]), float64(pmfB[d])
		if nA+nB < 50 {
			continue
		}
		// Two-proportion z-ish bound: difference within 6 standard errors.
		p := (nA + nB) / (2 * draws)
		se := math.Sqrt(2 * p * (1 - p) * draws)
		if math.Abs(nA-nB) > 6*se+1 {
			t.Errorf("delivered=%d: per-ball %d vs per-bin %d (se %.1f)", d, pmfA[d], pmfB[d], se)
		}
	}
}

// TestSeriesAgreesWithByBin checks the saturated-window series sampler
// against the binomial-chain reference on the full delivered-count pmf
// and on the last-slot distribution conditioned on delivery.
func TestSeriesAgreesWithByBin(t *testing.T) {
	t.Parallel()
	cases := []struct{ m, w int }{
		{m: 400, w: 64},  // ES ≈ 0.73 at the branch boundary region
		{m: 800, w: 128}, // ES ≈ 1.5e0? exercised via direct call anyway
		{m: 1500, w: 128},
	}
	for _, tt := range cases {
		tt := tt
		t.Run(fmt.Sprintf("m=%d_w=%d", tt.m, tt.w), func(t *testing.T) {
			t.Parallel()
			const draws = 200000
			srcA, srcB := rng.New(uint64(tt.m)), rng.New(uint64(tt.w))
			pmfA := map[int]int{}
			pmfB := map[int]int{}
			var lastSumA, lastSumB float64
			var lastN, lastM int
			for i := 0; i < draws; i++ {
				dA, lA := stepBySeries(tt.m, tt.w, srcA)
				dB, lB := stepByBin(tt.m, tt.w, srcB)
				pmfA[dA]++
				pmfB[dB]++
				if dA > 0 {
					lastSumA += float64(lA)
					lastN++
				}
				if dB > 0 {
					lastSumB += float64(lB)
					lastM++
				}
			}
			for d := 0; d <= 6; d++ {
				nA, nB := float64(pmfA[d]), float64(pmfB[d])
				if nA+nB < 50 {
					continue
				}
				p := (nA + nB) / (2 * draws)
				se := math.Sqrt(2 * p * (1 - p) * draws)
				if math.Abs(nA-nB) > 6*se+1 {
					t.Errorf("S=%d: series %d vs by-bin %d (se %.1f)", d, pmfA[d], pmfB[d], se)
				}
			}
			// Mean last-delivery slot: the series path places singletons as
			// a uniform subset; must match the chain's slot-ordered walk.
			if lastN > 1000 && lastM > 1000 {
				mA, mB := lastSumA/float64(lastN), lastSumB/float64(lastM)
				se := float64(tt.w) / math.Sqrt(float64(min(lastN, lastM)))
				if math.Abs(mA-mB) > 6*se {
					t.Errorf("mean last slot: series %.2f vs by-bin %.2f (se %.2f)", mA, mB, se)
				}
			}
		})
	}
}

// TestSingletonPMFSumsToOne: the series pmf must be a probability
// distribution to within truncation error.
func TestSingletonPMFSumsToOne(t *testing.T) {
	t.Parallel()
	for _, tt := range []struct{ m, w int }{
		{m: 300, w: 64}, {m: 700, w: 100}, {m: 5000, w: 512}, {m: 100000, w: 8192},
	} {
		sum := 0.0
		t0 := 1.0
		for s := 0; s < tt.w && t0 >= seriesEps; s++ {
			sum += singletonPMF(tt.m, tt.w, s, t0)
			t0 *= seriesRatio(tt.m, tt.w, s)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("m=%d w=%d: Σ P(S=s) = %v, want 1", tt.m, tt.w, sum)
		}
	}
}

// TestSingletonPMFMean: E[S] under the series pmf must equal the exact
// expectation m·(1−1/w)^(m−1).
func TestSingletonPMFMean(t *testing.T) {
	t.Parallel()
	for _, tt := range []struct{ m, w int }{
		{m: 300, w: 64}, {m: 700, w: 100}, {m: 5000, w: 512},
	} {
		mean := 0.0
		t0 := 1.0
		for s := 0; s < tt.w && t0 >= seriesEps; s++ {
			mean += float64(s) * singletonPMF(tt.m, tt.w, s, t0)
			t0 *= seriesRatio(tt.m, tt.w, s)
		}
		want := float64(tt.m) * math.Pow(1-1/float64(tt.w), float64(tt.m-1))
		if math.Abs(mean-want) > 1e-9*want {
			t.Errorf("m=%d w=%d: E[S] = %v, want %v", tt.m, tt.w, mean, want)
		}
	}
}

// TestBallsInBinsMeanSingletons compares the empirical mean number of
// singleton bins with the exact expectation m·(1−1/w)^(m−1), across all
// three samplers as dispatched by Step.
func TestBallsInBinsMeanSingletons(t *testing.T) {
	t.Parallel()
	tests := []struct{ m, w int }{
		{m: 1, w: 1}, {m: 2, w: 1}, {m: 5, w: 5}, {m: 10, w: 100},
		{m: 100, w: 10}, {m: 64, w: 64}, {m: 1000, w: 500},
		{m: 600, w: 64}, // saturated: dispatches to the series sampler
	}
	for _, tt := range tests {
		tt := tt
		t.Run(fmt.Sprintf("m=%d_w=%d", tt.m, tt.w), func(t *testing.T) {
			t.Parallel()
			src := rng.New(uint64(tt.m*1000 + tt.w))
			const draws = 20000
			var win Window
			sum := 0.0
			for i := 0; i < draws; i++ {
				d, _ := win.Step(tt.m, tt.w, src)
				sum += float64(d)
			}
			got := sum / draws
			want := float64(tt.m) * math.Pow(1-1/float64(tt.w), float64(tt.m-1))
			tol := 6 * math.Sqrt(want+1) / math.Sqrt(draws) * 3
			if math.Abs(got-want) > math.Max(tol, 0.05) {
				t.Errorf("mean singletons = %v, want %v", got, want)
			}
		})
	}
}

// TestBallsInBinsLastSlot: with m = w = 1 the single ball lands in the
// single bin, delivered at slot 1.
func TestBallsInBinsLastSlot(t *testing.T) {
	t.Parallel()
	var win Window
	d, last := win.stepByBall(1, 1, rng.New(1))
	if d != 1 || last != 1 {
		t.Fatalf("(delivered, last) = (%d, %d), want (1, 1)", d, last)
	}
	d, last = stepByBin(2, 1, rng.New(1))
	if d != 0 || last != 0 {
		t.Fatalf("two balls one bin: (delivered, last) = (%d, %d), want (0, 0)", d, last)
	}
}

// TestStepDeadWindow: a window with (m−1)/w beyond the dead cutoff is
// silent and consumes no randomness.
func TestStepDeadWindow(t *testing.T) {
	t.Parallel()
	var win Window
	src := rng.New(7)
	before := src.Uint64()
	src = rng.New(7)
	d, last := win.Step(1_000_000, 64, src)
	if d != 0 || last != 0 {
		t.Fatalf("dead window delivered (%d, %d), want (0, 0)", d, last)
	}
	if got := src.Uint64(); got != before {
		t.Fatalf("dead window consumed randomness: next draw %d, want %d", got, before)
	}
}
