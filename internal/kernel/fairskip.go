package kernel

import (
	"fmt"
	"math"

	"repro/internal/protocol"
	"repro/internal/rng"
)

// This file samples fair-protocol executions success by success.
//
// Within one SkipPhase the slots split into a special class (constant
// probability) and a regular class (probability in [RegularLo,
// RegularHi]). With m active stations a slot of probability p succeeds
// with q = P₁(m, p), so over the phase's quiet stretch the two classes
// are independent sequences of Bernoulli trials:
//
//   - Special class: constant q_s — the index of the first success is
//     exactly Geometric(q_s). One draw.
//
//   - Regular class: varying q_t ≤ q_max := max over p ∈ [lo, hi] of
//     P₁(m, p). Thinning (rejection sampling): draw candidate indices
//     from Geometric(q_max), accept each candidate t with probability
//     q_t/q_max. The accepted process is exactly the non-homogeneous
//     Bernoulli first-success process — the standard thinning argument,
//     discrete-time version. When lo == hi the accept test is skipped
//     (q_t ≡ q_max: every candidate accepted), making the draw exact
//     with no rejection cost.
//
// The next success is the minimum across the two classes; everything up
// to it is skipped in O(1) via SkipController.SkipTo, which replays the
// silent-slot bookkeeping in closed form.

// firstResidue returns the smallest slot ≥ from with slot ≡ r (mod p).
func firstResidue(from, p, r uint64) uint64 {
	return from + (r+p-from%p)%p
}

// countResidue returns the number of slots in [a, b) with slot ≡ r (mod p).
func countResidue(a, b, p, r uint64) uint64 {
	if b <= a {
		return 0
	}
	f := func(y uint64) uint64 { // slots in [0, y) ≡ r (mod p)
		if y <= r {
			return 0
		}
		return (y-r-1)/p + 1
	}
	return f(b) - f(a)
}

// geometric draws Geometric(q) — failures before the first success —
// given the precomputed denominator denom = log(1-q) < 0, so the
// denominator is paid once per phase instead of once per draw.
func geometric(src *rng.Rand, denom float64) uint64 {
	g := math.Log(src.Float64Open()) / denom
	if g >= math.MaxUint64 || math.IsNaN(g) {
		return rng.GeometricInf
	}
	return uint64(g)
}

// nthRegular returns the n-th slot ≥ from (0-indexed) that is NOT ≡ r
// (mod p). For p ≤ 1 every slot is regular.
func nthRegular(from, n, p, r uint64) uint64 {
	if p <= 1 {
		return from + n
	}
	if from%p == r {
		from++
	}
	per := p - 1 // regular slots per period
	s := from + (n/per)*p
	for i := n % per; i > 0; i-- {
		s++
		if s%p == r {
			s++
		}
	}
	return s
}

// FairRun simulates static k-selection under the fair protocol ctrl and
// returns the slot of the k-th delivery. If the slot budget is exhausted
// first it returns ErrSlotLimit (wrapped), with the number of undelivered
// messages in the error text. Cost is O(1) per delivery plus O(1) per
// controller phase, independent of the number of slots skipped.
func FairRun(k int, ctrl protocol.SkipController, src *rng.Rand, maxSlots uint64) (uint64, error) {
	if k < 0 {
		return 0, fmt.Errorf("kernel: negative k %d", k)
	}
	m := k
	if m == 0 {
		return 0, nil
	}
	slot := uint64(1)
	for slot <= maxSlots {
		ph := ctrl.SkipPhase(slot)
		end := ph.End
		if end < slot {
			end = slot
		}
		if end > maxSlots {
			end = maxSlots
		}
		p, r := ph.Period, ph.SpecialResidue
		if p == 0 {
			p = 1
		}

		// Special class: exact geometric over its constant probability.
		var spec uint64
		specFound := false
		if p >= 2 {
			if qs := successProb(m, ph.SpecialProb); qs > 0 {
				if first := firstResidue(slot, p, r); first <= end {
					n := (end-first)/p + 1 // special slots in the phase
					if g := geometric(src, log1m(qs)); g < n {
						spec = first + g*p
						specFound = true
					}
				}
			}
		}

		// Regular class: thinned geometric against the dominating q_max.
		var reg uint64
		regFound := false
		lo, hi := ph.RegularLo, ph.RegularHi
		if qmax := maxSuccessProb(m, lo, hi); qmax > 0 {
			denom := log1m(qmax)
			cur := slot
			for {
				var cnt uint64 // regular slots in [cur, end]
				if p <= 1 {
					cnt = end - cur + 1
				} else {
					cnt = (end + 1 - cur) - countResidue(cur, end+1, p, r)
				}
				if cnt == 0 {
					break
				}
				g := geometric(src, denom)
				if g >= cnt {
					break // no further candidate inside the phase
				}
				c := nthRegular(cur, g, p, r)
				if specFound && c > spec {
					break // the special class already succeeded earlier
				}
				if lo < hi {
					// Accept with q_c/q_max (thinning); ProbQuiet is the
					// probability at c given the quiet stretch before it.
					q := successProb(m, ctrl.ProbQuiet(c))
					if src.Float64()*qmax >= q {
						cur = c + 1
						continue
					}
				}
				reg = c
				regFound = true
				break
			}
		}

		if !specFound && !regFound {
			ctrl.SkipTo(end + 1)
			slot = end + 1
			continue
		}
		c := spec
		if !specFound || (regFound && reg < spec) {
			c = reg
		}
		ctrl.SkipTo(c)
		m--
		ctrl.Observe(c, true)
		if m == 0 {
			return c, nil
		}
		slot = c + 1
	}
	return 0, fmt.Errorf("%w (limit %d, remaining %d of %d)", ErrSlotLimit, maxSlots, m, k)
}
