package kernel

import (
	"sort"
	"testing"

	"repro/internal/rng"
)

// TestCalendarDrainsInOrder inserts a random multiset of (slot, id)
// attempts — spanning level 0, level 1 and the overflow — and checks that
// PopGroup yields exactly the sorted groups.
func TestCalendarDrainsInOrder(t *testing.T) {
	t.Parallel()
	src := rng.New(42)
	c := NewCalendar()
	want := map[uint64][]int32{}
	var slots []uint64
	for i := 0; i < 20000; i++ {
		var slot uint64
		switch i % 4 {
		case 0:
			slot = 1 + src.Uint64n(1000) // dense: many collisions
		case 1:
			slot = 1 + src.Uint64n(calL0Len*3) // level-0/1 boundary
		case 2:
			slot = 1 + src.Uint64n(calHorizon) // full wheel
		default:
			slot = 1 + src.Uint64n(calHorizon*5) // overflow
		}
		id := int32(i)
		c.Schedule(slot, id)
		if len(want[slot]) == 0 {
			slots = append(slots, slot)
		}
		want[slot] = append(want[slot], id)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	if c.Len() != 20000 {
		t.Fatalf("Len = %d, want 20000", c.Len())
	}
	var buf []int32
	for _, s := range slots {
		var got uint64
		got, buf = c.PopGroup(buf)
		if got != s {
			t.Fatalf("popped slot %d, want %d", got, s)
		}
		if len(buf) != len(want[s]) {
			t.Fatalf("slot %d: popped %d ids, want %d", s, len(buf), len(want[s]))
		}
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		for i, id := range want[s] {
			if buf[i] != id {
				t.Fatalf("slot %d: ids %v, want %v", s, buf, want[s])
			}
		}
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", c.Len())
	}
	if s, ids := c.PopGroup(buf); s != 0 || ids != nil {
		t.Fatalf("empty pop = (%d, %v), want (0, nil)", s, ids)
	}
}

// TestCalendarInterleaved alternates pops with reschedules — the pattern
// of the event-driven engines (pop a collision group, reschedule each
// collider further out) — against a plain sorted-map reference.
func TestCalendarInterleaved(t *testing.T) {
	t.Parallel()
	src := rng.New(7)
	c := NewCalendar()
	ref := map[uint64][]int32{}
	for id := int32(0); id < 500; id++ {
		slot := 1 + src.Uint64n(64)
		c.Schedule(slot, id)
		ref[slot] = append(ref[slot], id)
	}
	var buf []int32
	for events := 0; c.Len() > 0; events++ {
		if events > 1_000_000 {
			t.Fatal("calendar failed to drain")
		}
		var slot uint64
		slot, buf = c.PopGroup(buf)
		refIDs := ref[slot]
		delete(ref, slot)
		if len(refIDs) != len(buf) {
			t.Fatalf("slot %d: %d ids, reference %d", slot, len(buf), len(refIDs))
		}
		if len(buf) == 1 {
			continue // success: station departs
		}
		for _, id := range buf {
			// Reschedule each collider a random distance ahead, sometimes
			// far enough to exercise the overflow path.
			d := 1 + src.Uint64n(1<<uint(src.Uint64n(28)))
			c.Schedule(slot+d, id)
			ref[slot+d] = append(ref[slot+d], id)
		}
	}
	if len(ref) != 0 {
		t.Fatalf("reference still holds %d slots", len(ref))
	}
}

// TestCalendarPastSchedulePanics: scheduling behind the scan position is
// a caller bug and must fail loudly.
func TestCalendarPastSchedulePanics(t *testing.T) {
	t.Parallel()
	c := NewCalendar()
	c.Schedule(100, 1)
	var buf []int32
	if s, _ := c.PopGroup(buf); s != 100 {
		t.Fatalf("popped %d, want 100", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule into the past did not panic")
		}
	}()
	c.Schedule(99, 2)
}

// TestCalendarPeekWithin: the lazy-generation contract of PeekWithin —
// a miss must leave every slot strictly after the limit schedulable,
// across level-0, level-1 and overflow material.
func TestCalendarPeekWithin(t *testing.T) {
	t.Parallel()
	c := NewCalendar()
	if _, ok := c.PeekWithin(1 << 40); ok {
		t.Fatal("empty calendar peeked an event")
	}

	// Level-0 material beyond the limit: miss, then schedule behind it.
	c.Schedule(100, 1)
	if _, ok := c.PeekWithin(50); ok {
		t.Fatal("peek(50) saw the event at 100")
	}
	c.Schedule(60, 2) // must not panic: 60 > limit 50
	if slot, ok := c.PeekWithin(60); !ok || slot != 60 {
		t.Fatalf("peek(60) = %d, %v, want 60, true", slot, ok)
	}
	slot, group := c.PopGroup(nil)
	if slot != 60 || len(group) != 1 || group[0] != 2 {
		t.Fatalf("pop = %d %v, want 60 [2]", slot, group)
	}

	// Level-1 material: the far bucket must not be spilled on a miss.
	c2 := NewCalendar()
	c2.Schedule(70_000, 3) // beyond the first level-0 window
	if _, ok := c2.PeekWithin(8_191); ok {
		t.Fatal("peek(8191) saw the event at 70000")
	}
	c2.Schedule(9_000, 4)
	if slot, ok := c2.PeekWithin(9_000); !ok || slot != 9_000 {
		t.Fatalf("peek(9000) = %d, %v, want 9000, true", slot, ok)
	}
	if slot, _ := c2.PopGroup(nil); slot != 9_000 {
		t.Fatalf("pop = %d, want 9000", slot)
	}
	if slot, ok := c2.PeekWithin(1 << 40); !ok || slot != 70_000 {
		t.Fatalf("peek(huge) = %d, %v, want 70000, true", slot, ok)
	}

	// Overflow material: a miss must not re-base the wheel either.
	c3 := NewCalendar()
	const far = uint64(calHorizon) + 5
	c3.Schedule(far, 5)
	if _, ok := c3.PeekWithin(1000); ok {
		t.Fatal("peek(1000) saw the overflow event")
	}
	c3.Schedule(2000, 6)
	if slot, ok := c3.PeekWithin(2000); !ok || slot != 2000 {
		t.Fatalf("peek(2000) = %d, %v, want 2000, true", slot, ok)
	}
	if slot, _ := c3.PopGroup(nil); slot != 2000 {
		t.Fatal("overflow interleave pop mismatch")
	}
	if slot, ok := c3.PeekWithin(far); !ok || slot != far {
		t.Fatalf("peek(far) = %d, %v, want %d, true", slot, ok, far)
	}
	if slot, _ := c3.PopGroup(nil); slot != far {
		t.Fatalf("final pop = %d, want %d", slot, far)
	}
	if c3.Len() != 0 {
		t.Fatalf("len = %d after draining", c3.Len())
	}

	// Peek never consumes: repeated peeks and the following pop agree.
	c4 := NewCalendar()
	c4.Schedule(7, 7)
	c4.Schedule(7, 8)
	for i := 0; i < 3; i++ {
		if slot, ok := c4.PeekWithin(7); !ok || slot != 7 {
			t.Fatalf("peek #%d = %d, %v", i, slot, ok)
		}
	}
	if slot, group := c4.PopGroup(nil); slot != 7 || len(group) != 2 {
		t.Fatalf("pop = %d %v, want slot 7 with 2 ids", slot, group)
	}
}
