package kernel

import (
	"sort"
	"testing"

	"repro/internal/rng"
)

// TestCalendarDrainsInOrder inserts a random multiset of (slot, id)
// attempts — spanning level 0, level 1 and the overflow — and checks that
// PopGroup yields exactly the sorted groups.
func TestCalendarDrainsInOrder(t *testing.T) {
	t.Parallel()
	src := rng.New(42)
	c := NewCalendar()
	want := map[uint64][]int32{}
	var slots []uint64
	for i := 0; i < 20000; i++ {
		var slot uint64
		switch i % 4 {
		case 0:
			slot = 1 + src.Uint64n(1000) // dense: many collisions
		case 1:
			slot = 1 + src.Uint64n(calL0Len*3) // level-0/1 boundary
		case 2:
			slot = 1 + src.Uint64n(calHorizon) // full wheel
		default:
			slot = 1 + src.Uint64n(calHorizon*5) // overflow
		}
		id := int32(i)
		c.Schedule(slot, id)
		if len(want[slot]) == 0 {
			slots = append(slots, slot)
		}
		want[slot] = append(want[slot], id)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	if c.Len() != 20000 {
		t.Fatalf("Len = %d, want 20000", c.Len())
	}
	var buf []int32
	for _, s := range slots {
		var got uint64
		got, buf = c.PopGroup(buf)
		if got != s {
			t.Fatalf("popped slot %d, want %d", got, s)
		}
		if len(buf) != len(want[s]) {
			t.Fatalf("slot %d: popped %d ids, want %d", s, len(buf), len(want[s]))
		}
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		for i, id := range want[s] {
			if buf[i] != id {
				t.Fatalf("slot %d: ids %v, want %v", s, buf, want[s])
			}
		}
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", c.Len())
	}
	if s, ids := c.PopGroup(buf); s != 0 || ids != nil {
		t.Fatalf("empty pop = (%d, %v), want (0, nil)", s, ids)
	}
}

// TestCalendarInterleaved alternates pops with reschedules — the pattern
// of the event-driven engines (pop a collision group, reschedule each
// collider further out) — against a plain sorted-map reference.
func TestCalendarInterleaved(t *testing.T) {
	t.Parallel()
	src := rng.New(7)
	c := NewCalendar()
	ref := map[uint64][]int32{}
	for id := int32(0); id < 500; id++ {
		slot := 1 + src.Uint64n(64)
		c.Schedule(slot, id)
		ref[slot] = append(ref[slot], id)
	}
	var buf []int32
	for events := 0; c.Len() > 0; events++ {
		if events > 1_000_000 {
			t.Fatal("calendar failed to drain")
		}
		var slot uint64
		slot, buf = c.PopGroup(buf)
		refIDs := ref[slot]
		delete(ref, slot)
		if len(refIDs) != len(buf) {
			t.Fatalf("slot %d: %d ids, reference %d", slot, len(buf), len(refIDs))
		}
		if len(buf) == 1 {
			continue // success: station departs
		}
		for _, id := range buf {
			// Reschedule each collider a random distance ahead, sometimes
			// far enough to exercise the overflow path.
			d := 1 + src.Uint64n(1<<uint(src.Uint64n(28)))
			c.Schedule(slot+d, id)
			ref[slot+d] = append(ref[slot+d], id)
		}
	}
	if len(ref) != 0 {
		t.Fatalf("reference still holds %d slots", len(ref))
	}
}

// TestCalendarPastSchedulePanics: scheduling behind the scan position is
// a caller bug and must fail loudly.
func TestCalendarPastSchedulePanics(t *testing.T) {
	t.Parallel()
	c := NewCalendar()
	c.Schedule(100, 1)
	var buf []int32
	if s, _ := c.PopGroup(buf); s != 100 {
		t.Fatalf("popped %d, want 100", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule into the past did not panic")
		}
	}()
	c.Schedule(99, 2)
}
