package kernel

import (
	"fmt"
	"math/bits"
)

// Calendar is a two-level timing wheel holding pending transmission
// attempts: station ids keyed by future slot numbers. It is the event
// queue of the event-driven engines in internal/dynamic and internal/sim,
// replacing a binary min-heap: Schedule and PopGroup cost amortized O(1)
// per attempt instead of O(log n), and popping a slot yields the whole
// colliding group at once.
//
//   - Level 0 is a window of calL0Len consecutive slots, one bucket per
//     slot, with an occupancy bitmap scanned by trailing-zero counts.
//   - Level 1 is calL1Len coarse buckets of calL0Len slots each — a
//     horizon of 2²⁶ slots past the current position. When level 0 is
//     exhausted, the next occupied coarse bucket is spilled into it.
//   - Attempts beyond the horizon go to an unordered overflow list; when
//     both wheels run dry the calendar re-bases at the overflow minimum.
//     With the paper's window schedules the horizon covers every window
//     drawn below ~10⁷ contenders, so overflow is a rare slow path.
//
// Each attempt is touched at most three times (insert, spill, pop), so a
// run costs O(attempts), not O(attempts·log n). The zero value is NOT
// ready to use; call NewCalendar.
type Calendar struct {
	l0     [][]int32 // per-slot buckets for [l0Base, l0Base+calL0Len)
	l0map  []uint64  // occupancy bitmap over l0
	l0Base uint64    // slot of l0[0]
	l0Cur  int       // next l0 index to scan

	l1     [][]calEv // coarse buckets for [l1Base, l1Base+horizon)
	l1map  []uint64  // occupancy bitmap over l1
	l1Base uint64    // slot of l1[0]'s span start
	l1Cur  int       // coarse bucket currently expanded into l0; -1 if none

	over []calEv // attempts beyond the horizon, unordered
	n    int
}

// calEv is one scheduled attempt held at level 1 or in overflow.
type calEv struct {
	slot uint64
	id   int32
}

const (
	calL0Bits   = 13
	calL0Len    = 1 << calL0Bits // slots per level-0 window
	calL1Bits   = 13
	calL1Len    = 1 << calL1Bits      // coarse buckets
	calHorizon  = calL0Len * calL1Len // slots covered past l1Base
	calMapWords = calL0Len / 64
)

// NewCalendar returns an empty calendar positioned at slot 0.
func NewCalendar() *Calendar {
	return &Calendar{
		l0:    make([][]int32, calL0Len),
		l0map: make([]uint64, calMapWords),
		l0Cur: calL0Len,
		l1:    make([][]calEv, calL1Len),
		l1map: make([]uint64, calMapWords),
		l1Cur: -1,
	}
}

// Len returns the number of scheduled attempts.
func (c *Calendar) Len() int { return c.n }

// Schedule inserts an attempt by station id at the given slot, which must
// not precede the most recently popped slot.
func (c *Calendar) Schedule(slot uint64, id int32) {
	c.n++
	if c.l1Cur >= 0 && slot >= c.l0Base && slot < c.l0Base+calL0Len {
		i := int(slot - c.l0Base)
		if i < c.l0Cur {
			c.n--
			panic(fmt.Sprintf("kernel: Calendar.Schedule(%d) behind scan position %d", slot, c.l0Base+uint64(c.l0Cur)))
		}
		c.l0[i] = append(c.l0[i], id)
		c.l0map[i>>6] |= 1 << (i & 63)
		return
	}
	if slot >= c.l1Base && slot < c.l1Base+calHorizon {
		j := int((slot - c.l1Base) >> calL0Bits)
		if j > c.l1Cur {
			c.l1[j] = append(c.l1[j], calEv{slot: slot, id: id})
			c.l1map[j>>6] |= 1 << (j & 63)
			return
		}
		// j ≤ l1Cur with the slot outside the l0 window: the past.
		c.n--
		panic(fmt.Sprintf("kernel: Calendar.Schedule(%d) before current window at %d", slot, c.l0Base))
	}
	if slot < c.l1Base {
		c.n--
		panic(fmt.Sprintf("kernel: Calendar.Schedule(%d) before wheel base %d", slot, c.l1Base))
	}
	c.over = append(c.over, calEv{slot: slot, id: id})
}

// PopGroup removes and returns the earliest occupied slot together with
// every station scheduled at it, appended to buf[:0] (so callers can
// reuse one buffer across events). It returns (0, nil) when empty.
func (c *Calendar) PopGroup(buf []int32) (uint64, []int32) {
	for c.n > 0 {
		// Level 0: next occupied slot bucket at or after the scan position.
		if i := nextBit(c.l0map, c.l0Cur); i >= 0 {
			slot := c.l0Base + uint64(i)
			buf = append(buf[:0], c.l0[i]...)
			c.l0[i] = c.l0[i][:0]
			c.l0map[i>>6] &^= 1 << (i & 63)
			c.l0Cur = i + 1
			c.n -= len(buf)
			return slot, buf
		}
		// Level 1: spill the next occupied coarse bucket into level 0.
		if j := nextBit(c.l1map, c.l1Cur+1); j >= 0 {
			c.l1Cur = j
			c.l0Base = c.l1Base + uint64(j)<<calL0Bits
			c.l0Cur = 0
			for _, e := range c.l1[j] {
				i := int(e.slot - c.l0Base)
				c.l0[i] = append(c.l0[i], e.id)
				c.l0map[i>>6] |= 1 << (i & 63)
			}
			c.l1[j] = c.l1[j][:0]
			c.l1map[j>>6] &^= 1 << (j & 63)
			continue
		}
		// Both wheels dry: re-base the horizon at the overflow minimum and
		// pull every attempt that now fits back into level 1.
		min := c.over[0].slot
		for _, e := range c.over[1:] {
			if e.slot < min {
				min = e.slot
			}
		}
		c.l1Base = min
		c.l1Cur = -1
		c.l0Cur = calL0Len
		kept := c.over[:0]
		for _, e := range c.over {
			if e.slot < c.l1Base+calHorizon {
				j := int((e.slot - c.l1Base) >> calL0Bits)
				c.l1[j] = append(c.l1[j], e)
				c.l1map[j>>6] |= 1 << (j & 63)
			} else {
				kept = append(kept, e)
			}
		}
		c.over = kept
	}
	return 0, nil
}

// PeekWithin reports the earliest occupied slot if it is at most limit,
// without removing anything. Crucially for callers that generate work
// lazily — internal/session schedules each aggregation window's
// arrivals only when the window opens — the scan position never
// advances past limit: level-1 buckets are spilled (and the overflow
// re-based) only when their span begins at or before limit, so after a
// miss every slot strictly after limit remains schedulable. The wheels
// are monotone (everything outside the level-0 window lies at higher
// slots), so inspecting the level-0 bitmap alone decides the answer
// once the earliest material is spilled in.
func (c *Calendar) PeekWithin(limit uint64) (uint64, bool) {
	for c.n > 0 {
		if c.l1Cur >= 0 {
			if i := nextBit(c.l0map, c.l0Cur); i >= 0 {
				slot := c.l0Base + uint64(i)
				if slot > limit {
					return 0, false
				}
				return slot, true
			}
		}
		if j := nextBit(c.l1map, c.l1Cur+1); j >= 0 {
			if c.l1Base+uint64(j)<<calL0Bits > limit {
				return 0, false
			}
			c.l1Cur = j
			c.l0Base = c.l1Base + uint64(j)<<calL0Bits
			c.l0Cur = 0
			for _, e := range c.l1[j] {
				i := int(e.slot - c.l0Base)
				c.l0[i] = append(c.l0[i], e.id)
				c.l0map[i>>6] |= 1 << (i & 63)
			}
			c.l1[j] = c.l1[j][:0]
			c.l1map[j>>6] &^= 1 << (j & 63)
			continue
		}
		min := c.over[0].slot
		for _, e := range c.over[1:] {
			if e.slot < min {
				min = e.slot
			}
		}
		if min > limit {
			return 0, false
		}
		c.l1Base = min
		c.l1Cur = -1
		c.l0Cur = calL0Len
		kept := c.over[:0]
		for _, e := range c.over {
			if e.slot < c.l1Base+calHorizon {
				j := int((e.slot - c.l1Base) >> calL0Bits)
				c.l1[j] = append(c.l1[j], e)
				c.l1map[j>>6] |= 1 << (j & 63)
			} else {
				kept = append(kept, e)
			}
		}
		c.over = kept
	}
	return 0, false
}

// nextBit returns the index of the first set bit at or after position
// from, or -1 if none.
func nextBit(words []uint64, from int) int {
	if from >= len(words)*64 {
		return -1
	}
	w := from >> 6
	if rem := words[w] >> (from & 63); rem != 0 {
		return from + bits.TrailingZeros64(rem)
	}
	for w++; w < len(words); w++ {
		if words[w] != 0 {
			return w<<6 + bits.TrailingZeros64(words[w])
		}
	}
	return -1
}
