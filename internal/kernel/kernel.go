// Package kernel is the event-skip simulation core shared by the engines
// in internal/engine, internal/sim and internal/dynamic. It exploits one
// observation about the paper's protocols: almost every slot is silent,
// and silence carries no information a protocol acts on beyond simple
// counting — so executions can jump from interesting slot to interesting
// slot instead of resolving every slot.
//
// The kernel has three parts:
//
//   - FairRun (fairskip.go) samples the slot of the next successful
//     delivery of a fair protocol directly, using the phase declarations
//     of protocol.SkipController: exact geometric draws for constant-
//     probability slot classes, thinned (rejection-sampled) geometric
//     draws for boundedly varying ones. Exact in distribution with
//     respect to the per-slot chain.
//
//   - Window (occupancy.go) samples one window of a windowed protocol —
//     m balls into w bins, deliveries are the singleton bins — choosing
//     among a ball-by-ball O(m) sampler, a bin-by-bin O(w) binomial-chain
//     sampler, and, for saturated windows whose expected singleton count
//     is tiny, a direct draw of the singleton count from its
//     inclusion–exclusion distribution in O(1) series terms.
//
//   - Calendar (calendar.go) is a two-level hierarchical timing wheel
//     holding pending transmission attempts, the event queue behind the
//     per-station event-driven paths in internal/sim and
//     internal/dynamic. O(1) amortized per scheduled attempt, against
//     O(log n) for the binary heap it replaces.
//
// Every sampler consumes randomness from the caller's rng.Rand stream, so
// rep-indexed reproducibility (internal/montecarlo) is preserved: a given
// (stream, code path) still yields one deterministic execution. Relative
// to the per-slot reference paths the draw sequences necessarily differ —
// that is the point — and the distributional equivalence is enforced by
// Kolmogorov–Smirnov tests in this package, internal/engine, internal/sim
// and internal/dynamic.
package kernel

import (
	"errors"
	"math"
)

// ErrSlotLimit is returned when an execution exceeds its slot budget
// before all messages are delivered.
var ErrSlotLimit = errors.New("kernel: slot limit exceeded before all messages were delivered")

// SuccessProb returns P₁(m, p) = m·p·(1−p)^(m−1), the probability that a
// slot carries a successful delivery when m active stations each transmit
// with probability p. Computed in log space for large m. It is the single
// definition used by both the kernel and internal/engine.
func SuccessProb(m int, p float64) float64 {
	switch {
	case m <= 0 || p <= 0:
		return 0
	case m == 1:
		return math.Min(p, 1)
	case p >= 1:
		return 0 // all m > 1 stations transmit: certain collision
	default:
		return float64(m) * p * math.Exp(float64(m-1)*math.Log1p(-p))
	}
}

// maxSuccessProb bounds SuccessProb(m, p) over p ∈ [lo, hi]. P₁(m, ·) is
// unimodal with its maximum at p = 1/m (and monotone increasing for
// m = 1, where 1/m = 1 is the right endpoint), so the bound is attained
// at 1/m clamped into the interval.
func maxSuccessProb(m int, lo, hi float64) float64 {
	p := 1 / float64(m)
	if p < lo {
		p = lo
	}
	if p > hi {
		p = hi
	}
	return successProb(m, p)
}
