package kernel

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/protocol"
	"repro/internal/rng"
)

// TestResidueArithmetic cross-checks firstResidue, countResidue and
// nthRegular against brute-force enumeration over small ranges.
func TestResidueArithmetic(t *testing.T) {
	t.Parallel()
	for _, p := range []uint64{2, 3, 5, 7} {
		for r := uint64(0); r < p; r++ {
			for a := uint64(0); a < 40; a++ {
				// firstResidue: smallest slot ≥ a with slot ≡ r (mod p).
				want := a
				for want%p != r {
					want++
				}
				if got := firstResidue(a, p, r); got != want {
					t.Fatalf("firstResidue(%d,%d,%d) = %d, want %d", a, p, r, got, want)
				}
				// countResidue over [a, b).
				for b := a; b < a+30; b++ {
					cnt := uint64(0)
					for s := a; s < b; s++ {
						if s%p == r {
							cnt++
						}
					}
					if got := countResidue(a, b, p, r); got != cnt {
						t.Fatalf("countResidue(%d,%d,%d,%d) = %d, want %d", a, b, p, r, got, cnt)
					}
				}
				// nthRegular: n-th slot ≥ a (0-indexed) not ≡ r (mod p).
				for n := uint64(0); n < 25; n++ {
					s, left := a, n
					for {
						if s%p != r {
							if left == 0 {
								break
							}
							left--
						}
						s++
					}
					if got := nthRegular(a, n, p, r); got != s {
						t.Fatalf("nthRegular(%d,%d,%d,%d) = %d, want %d", a, n, p, r, got, s)
					}
				}
			}
		}
	}
	// Period ≤ 1: every slot is regular.
	if got := nthRegular(10, 5, 1, 0); got != 15 {
		t.Fatalf("nthRegular period 1: %d, want 15", got)
	}
}

// constCtrl is a synthetic skip controller with a constant probability on
// every slot (no special class), for closed-form validation.
type constCtrl struct {
	p      float64
	cursor uint64
	span   uint64
}

func (c *constCtrl) Prob(uint64) float64 { return c.p }
func (c *constCtrl) Observe(slot uint64, success bool) {
	c.cursor = slot + 1
}
func (c *constCtrl) ProbQuiet(uint64) float64 { return c.p }
func (c *constCtrl) SkipTo(s uint64) {
	if s > c.cursor {
		c.cursor = s
	}
}
func (c *constCtrl) SkipPhase(slot uint64) protocol.SkipPhase {
	return protocol.SkipPhase{
		End:       slot + c.span - 1,
		Period:    1, // no special class
		RegularLo: c.p,
		RegularHi: c.p,
	}
}

// TestFairRunConstantController: with constant per-slot probability p and
// k = 1, the completion slot is 1 + Geometric(P₁(1,p)); for general k the
// mean completion is k/q with q = P₁ evaluated along the descent. Checked
// against the analytic mean Σ_{m=1..k} 1/P₁(m,p) for small k, across
// phase spans that do and do not straddle successes.
func TestFairRunConstantController(t *testing.T) {
	t.Parallel()
	for _, tt := range []struct {
		k    int
		p    float64
		span uint64
	}{
		{k: 1, p: 0.2, span: 4},
		{k: 3, p: 0.1, span: 7},
		{k: 5, p: 0.05, span: 64},
		{k: 2, p: 0.5, span: 1}, // one-slot phases: pure phase-loop stress
	} {
		tt := tt
		t.Run(fmt.Sprintf("k=%d_p=%v_span=%d", tt.k, tt.p, tt.span), func(t *testing.T) {
			t.Parallel()
			const draws = 4000
			src := rng.New(uint64(tt.k)*1000 + tt.span)
			sum := 0.0
			for i := 0; i < draws; i++ {
				ctrl := &constCtrl{p: tt.p, cursor: 1, span: tt.span}
				slots, err := FairRun(tt.k, ctrl, src, 10_000_000)
				if err != nil {
					t.Fatal(err)
				}
				sum += float64(slots)
			}
			want := 0.0
			va := 0.0
			for m := 1; m <= tt.k; m++ {
				q := SuccessProb(m, tt.p)
				want += 1 / q
				va += (1 - q) / (q * q)
			}
			got := sum / draws
			tol := 6 * math.Sqrt(va/draws)
			if math.Abs(got-want) > tol {
				t.Errorf("mean completion %.2f, want %.2f ± %.2f", got, want, tol)
			}
		})
	}
}

// TestFairRunSlotLimit: exhausting the budget yields ErrSlotLimit.
func TestFairRunSlotLimit(t *testing.T) {
	t.Parallel()
	ctrl := &constCtrl{p: 1e-9, cursor: 1, span: 16}
	_, err := FairRun(4, ctrl, rng.New(3), 1000)
	if !errors.Is(err, ErrSlotLimit) {
		t.Errorf("err = %v, want ErrSlotLimit", err)
	}
}

// TestFairRunZeroK: nothing to deliver completes at slot 0.
func TestFairRunZeroK(t *testing.T) {
	t.Parallel()
	ctrl := &constCtrl{p: 0.5, cursor: 1, span: 16}
	slots, err := FairRun(0, ctrl, rng.New(3), 1000)
	if err != nil || slots != 0 {
		t.Errorf("FairRun(0) = (%d, %v), want (0, nil)", slots, err)
	}
}
