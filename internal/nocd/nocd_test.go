package nocd_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/nocd"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

func mustCascade(t testing.TB) *nocd.Cascade {
	t.Helper()
	c, err := nocd.NewCascade(nocd.DefaultCascadeBase)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustRobust(t testing.TB) *nocd.RobustLadder {
	t.Helper()
	l, err := nocd.NewRobustLadder(nocd.DefaultRobustPatience)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func mustLadder(t testing.TB) *nocd.RepetitionLadder {
	t.Helper()
	l, err := nocd.NewRepetitionLadder(nocd.DefaultLadderTheta)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func ladderStations(t testing.TB, k int) []protocol.Station {
	t.Helper()
	stations := make([]protocol.Station, k)
	for i := range stations {
		stations[i] = protocol.NewWindowStation(mustLadder(t))
	}
	return stations
}

func TestParameterValidation(t *testing.T) {
	t.Parallel()
	if _, err := nocd.NewCascade(1); err == nil {
		t.Error("NewCascade(1) accepted, want error")
	}
	if _, err := nocd.NewCascade(nocd.CascadeBaseMax + 1); err == nil {
		t.Error("NewCascade(beyond max) accepted, want error")
	}
	if _, err := nocd.NewRepetitionLadder(-0.5); err == nil {
		t.Error("NewRepetitionLadder(-0.5) accepted, want error")
	}
	if _, err := nocd.NewRepetitionLadder(nocd.LadderThetaMax + 1); err == nil {
		t.Error("NewRepetitionLadder(beyond max) accepted, want error")
	}
	if _, err := nocd.NewRobustLadder(0.5); err == nil {
		t.Error("NewRobustLadder(0.5) accepted, want error")
	}
	if _, err := nocd.NewRobustLadder(nocd.RobustPatienceMax + 1); err == nil {
		t.Error("NewRobustLadder(beyond max) accepted, want error")
	}
}

// TestCascadeSchedule pins the β=2 slot→probability map: epoch e sweeps
// levels 0..e-1 with dwell 2ⁱ, so the level boundaries fall at
// 1 | 2, 3-4 | 5, 6-7, 8-11 | 12, 13-14, 15-18, 19-26 | …
func TestCascadeSchedule(t *testing.T) {
	t.Parallel()
	want := map[uint64]float64{
		1: 1, 2: 1, 3: 0.5, 4: 0.5,
		5: 1, 6: 0.5, 7: 0.5, 8: 0.25, 11: 0.25,
		12: 1, 14: 0.5, 18: 0.25, 19: 0.125, 26: 0.125, 27: 1,
	}
	c := mustCascade(t)
	// Prob advances a monotone position, so query in slot order.
	for slot := uint64(1); slot <= 27; slot++ {
		p := c.Prob(slot)
		if w, ok := want[slot]; ok && p != w {
			t.Errorf("Prob(%d) = %v, want %v", slot, p, w)
		}
		c.Observe(slot, false)
	}
}

// TestRepetitionLadderWindows pins the window sequence for three θ
// settings: phase i emits ⌈iᶿ⌉ windows of 2ⁱ slots.
func TestRepetitionLadderWindows(t *testing.T) {
	t.Parallel()
	cases := []struct {
		theta float64
		want  []int
	}{
		{0, []int{2, 4, 8, 16, 32}},
		{1, []int{2, 4, 4, 8, 8, 8, 16, 16, 16, 16}},
		{2, []int{2, 4, 4, 4, 4, 8, 8, 8, 8, 8, 8, 8, 8, 8}},
	}
	for _, tc := range cases {
		l, err := nocd.NewRepetitionLadder(tc.theta)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range tc.want {
			if got := l.NextWindow(); got != w {
				t.Fatalf("θ=%v: window %d = %d, want %d", tc.theta, i, got, w)
			}
		}
	}
}

// TestRobustLadderStateMachine drives the success-clocked ladder through
// its transitions: quiet stretches of ⌈c·2^L⌉ step the level up, a
// success steps it down and resets the clock.
func TestRobustLadderStateMachine(t *testing.T) {
	t.Parallel()
	l, err := nocd.NewRobustLadder(4)
	if err != nil {
		t.Fatal(err)
	}
	slot := uint64(1)
	quiet := func(n int) {
		for i := 0; i < n; i++ {
			l.Observe(slot, false)
			slot++
		}
	}
	quiet(3)
	if l.Level() != 0 {
		t.Fatalf("after 3 quiet slots Level = %d, want 0 (patience 4)", l.Level())
	}
	quiet(1)
	if l.Level() != 1 {
		t.Fatalf("after 4 quiet slots Level = %d, want 1", l.Level())
	}
	quiet(8) // patience at L=1 is ⌈4·2⌉ = 8
	if l.Level() != 2 {
		t.Fatalf("after the L=1 patience Level = %d, want 2", l.Level())
	}
	l.Observe(slot, true)
	slot++
	if l.Level() != 1 {
		t.Fatalf("after success Level = %d, want 1", l.Level())
	}
	if p := l.Prob(slot); p != 0.5 {
		t.Fatalf("Prob at L=1 = %v, want 0.5", p)
	}
}

// TestRobustLadderSkipMatchesObserve checks the SkipController contract
// deterministically: driving a ladder through the kernel's
// SkipPhase/SkipTo/Observe protocol with a fixed success pattern must
// reproduce the state of a ladder fed the same pattern slot by slot.
func TestRobustLadderSkipMatchesObserve(t *testing.T) {
	t.Parallel()
	successes := map[uint64]bool{5: true, 6: true, 40: true, 41: true, 42: true, 150: true}
	const last = uint64(200)

	slotwise, err := nocd.NewRobustLadder(4)
	if err != nil {
		t.Fatal(err)
	}
	skipped, err := nocd.NewRobustLadder(4)
	if err != nil {
		t.Fatal(err)
	}

	// checkpoints[c] records slotwise state right after Observe(c, true).
	type state struct{ level int }
	checkpoints := map[uint64]state{}
	for slot := uint64(1); slot <= last; slot++ {
		slotwise.Prob(slot)
		slotwise.Observe(slot, successes[slot])
		if successes[slot] {
			checkpoints[slot] = state{slotwise.Level()}
		}
	}

	// Drive skipped the way kernel.FairRun does: fetch a phase, jump to
	// the first success inside it or to the slot past its end.
	slot := uint64(1)
	for slot <= last {
		ph := skipped.SkipPhase(slot)
		var hit uint64
		for c := slot; c <= ph.End && c <= last; c++ {
			if successes[c] {
				hit = c
				break
			}
		}
		if hit == 0 {
			end := ph.End
			if end > last {
				end = last
			}
			skipped.SkipTo(end + 1)
			slot = end + 1
			continue
		}
		skipped.SkipTo(hit)
		skipped.Observe(hit, true)
		if cp := checkpoints[hit]; skipped.Level() != cp.level {
			t.Fatalf("after success at slot %d: skip path Level = %d, slotwise Level = %d",
				hit, skipped.Level(), cp.level)
		}
		slot = hit + 1
	}
	if skipped.Level() != slotwise.Level() {
		t.Fatalf("final Level: skip path %d, slotwise %d", skipped.Level(), slotwise.Level())
	}
}

// TestFairKernelMatchesSlotReference is the KS validation for the two
// fair no-CD protocols: engine.FairRun dispatches SkipControllers to the
// event-skip kernel, and its completion-time distribution must match the
// untouched per-slot reference loop (two-sample KS at ~99.9%).
func TestFairKernelMatchesSlotReference(t *testing.T) {
	t.Parallel()
	protocols := []struct {
		name string
		new  func(testing.TB) protocol.Controller
	}{
		{"cascade", func(t testing.TB) protocol.Controller { return mustCascade(t) }},
		{"robust", func(t testing.TB) protocol.Controller { return mustRobust(t) }},
	}
	for _, pr := range protocols {
		pr := pr
		for _, k := range []int{2, 3, 8, 32} {
			k := k
			t.Run(fmt.Sprintf("%s/k=%d", pr.name, k), func(t *testing.T) {
				t.Parallel()
				const draws = 3000
				event := make([]float64, draws)
				exact := make([]float64, draws)
				for i := 0; i < draws; i++ {
					sE, err := engine.FairRun(k, pr.new(t),
						rng.NewStream(99, "ev", pr.name, fmt.Sprint(k), fmt.Sprint(i)), 0)
					if err != nil {
						t.Fatal(err)
					}
					sX, err := engine.FairRunSlot(k, pr.new(t),
						rng.NewStream(99, "ex", pr.name, fmt.Sprint(k), fmt.Sprint(i)), 0)
					if err != nil {
						t.Fatal(err)
					}
					event[i] = float64(sE)
					exact[i] = float64(sX)
				}
				crit := 1.95 * math.Sqrt(2.0/draws)
				if d := stats.KSDistance(event, exact); d > crit {
					t.Errorf("KS distance %.4f > %.4f between kernel and per-slot reference", d, crit)
				}
			})
		}
	}
}

// TestFairAggregateMatchesPerNode cross-checks the aggregate fair loop
// against the per-node ground-truth simulator (one private controller per
// station; their states stay synchronized because transitions depend only
// on globally observable successes).
func TestFairAggregateMatchesPerNode(t *testing.T) {
	t.Parallel()
	protocols := []struct {
		name string
		new  func() protocol.Controller
	}{
		{"cascade", func() protocol.Controller { c, _ := nocd.NewCascade(nocd.DefaultCascadeBase); return c }},
		{"robust", func() protocol.Controller { l, _ := nocd.NewRobustLadder(nocd.DefaultRobustPatience); return l }},
	}
	for _, pr := range protocols {
		pr := pr
		t.Run(pr.name, func(t *testing.T) {
			t.Parallel()
			const k, draws = 8, 1500
			agg := make([]float64, draws)
			node := make([]float64, draws)
			for i := 0; i < draws; i++ {
				sA, err := engine.FairRun(k, pr.new(),
					rng.NewStream(7, "agg", pr.name, fmt.Sprint(i)), 0)
				if err != nil {
					t.Fatal(err)
				}
				sN, err := engine.ExactFairRun(k, pr.new,
					rng.NewStream(7, "node", pr.name, fmt.Sprint(i)), 0)
				if err != nil {
					t.Fatal(err)
				}
				agg[i] = float64(sA)
				node[i] = float64(sN)
			}
			crit := 1.95 * math.Sqrt(2.0/draws)
			if d := stats.KSDistance(agg, node); d > crit {
				t.Errorf("KS distance %.4f > %.4f between aggregate and per-node", d, crit)
			}
		})
	}
}

// TestWindowEventMatchesPerSlot is the KS validation for the repetition
// ladder's event-driven per-node path, mirroring sim/event_test.go.
func TestWindowEventMatchesPerSlot(t *testing.T) {
	t.Parallel()
	for _, k := range []int{2, 8, 32} {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			t.Parallel()
			const draws = 3000
			event := make([]float64, draws)
			exact := make([]float64, draws)
			for i := 0; i < draws; i++ {
				resE, err := sim.Run(ladderStations(t, k),
					rng.NewStream(99, "lev", fmt.Sprint(k), fmt.Sprint(i)), sim.WithEventDriven())
				if err != nil {
					t.Fatal(err)
				}
				resX, err := sim.Run(ladderStations(t, k),
					rng.NewStream(99, "lex", fmt.Sprint(k), fmt.Sprint(i)))
				if err != nil {
					t.Fatal(err)
				}
				event[i] = float64(resE.Slots)
				exact[i] = float64(resX.Slots)
			}
			crit := 1.95 * math.Sqrt(2.0/draws)
			if d := stats.KSDistance(event, exact); d > crit {
				t.Errorf("KS distance %.4f > %.4f between event-driven and slot-by-slot", d, crit)
			}
		})
	}
}

// TestWindowRunnerMatchesExact cross-checks the aggregate balls-in-bins
// window runner against the per-node simulator for the repetition ladder.
func TestWindowRunnerMatchesExact(t *testing.T) {
	t.Parallel()
	for _, k := range []int{3, 16} {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			t.Parallel()
			const draws = 2000
			agg := make([]float64, draws)
			node := make([]float64, draws)
			var r engine.WindowRunner
			for i := 0; i < draws; i++ {
				sA, err := r.Run(k, mustLadder(t),
					rng.NewStream(13, "wagg", fmt.Sprint(k), fmt.Sprint(i)), 0)
				if err != nil {
					t.Fatal(err)
				}
				sN, err := engine.ExactWindowRun(k,
					func() protocol.Schedule { l, _ := nocd.NewRepetitionLadder(nocd.DefaultLadderTheta); return l },
					rng.NewStream(13, "wnode", fmt.Sprint(k), fmt.Sprint(i)), 0)
				if err != nil {
					t.Fatal(err)
				}
				agg[i] = float64(sA)
				node[i] = float64(sN)
			}
			crit := 1.95 * math.Sqrt(2.0/draws)
			if d := stats.KSDistance(agg, node); d > crit {
				t.Errorf("KS distance %.4f > %.4f between window runner and per-node", d, crit)
			}
		})
	}
}

// TestSeedDeterminism: the same stream must reproduce the same completion
// time for each protocol, and all three must drain k = 100 messages.
func TestSeedDeterminism(t *testing.T) {
	t.Parallel()
	const k = 100
	runs := map[string]func() (uint64, error){
		"cascade": func() (uint64, error) {
			return engine.FairRun(k, mustCascade(t), rng.NewStream(42, "det", "cascade"), 0)
		},
		"robust": func() (uint64, error) {
			return engine.FairRun(k, mustRobust(t), rng.NewStream(42, "det", "robust"), 0)
		},
		"ladder": func() (uint64, error) {
			var r engine.WindowRunner
			return r.Run(k, mustLadder(t), rng.NewStream(42, "det", "ladder"), 0)
		},
	}
	for name, run := range runs {
		a, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a != b || a == 0 {
			t.Errorf("%s: runs gave %d and %d slots, want equal and positive", name, a, b)
		}
	}
}
