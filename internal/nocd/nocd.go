// Package nocd implements contention-resolution protocols from the
// no-collision-detection literature that the paper's related work
// cites — channels on which a station learns only of successes (its
// own delivery acknowledgement, or an overheard reception): silence
// and collision are indistinguishable, and no ternary feedback exists.
//
// Three protocol families are modeled, each named for the paper whose
// core mechanism it implements (in the spirit of internal/cd's
// "Willard-style" leader election — faithful to the published
// mechanism, not a line-by-line transcription):
//
//   - Cascade (Bender–Kuszmaul 2020, "Contention Resolution Without
//     Collision Detection"): a fair oblivious probability cascade.
//     Time is split into epochs; epoch e sweeps transmission
//     probabilities β⁰ > β⁻¹ > … > β^-(e-1), dwelling ~βⁱ slots at
//     probability β⁻ⁱ, then restarts one level deeper. Every epoch
//     revisits the high-probability levels, so late arrivals and
//     stragglers are never starved — the restart structure that makes
//     cascades robust without any channel feedback at all.
//
//   - RepetitionLadder (Chen–Jiang–Zheng 2021, tight trade-off):
//     a windowed back-off ladder with a repetition knob θ. Phase i
//     repeats windows of 2ⁱ slots ⌈iᶿ⌉ times before doubling. θ tunes
//     the paper's tight trade-off between completion time and
//     per-station channel accesses: higher θ spends more (redundant)
//     attempts per window size, buying reliability under disruption
//     for a log-power factor of time.
//
//   - RobustLadder (Jiang–Zheng 2021, robust/optimal): a fair
//     adaptive protocol whose only clock is success. It transmits
//     with probability 2^-L; a success steps the level down (the
//     channel got lighter), and a patience of ⌈c·2^L⌉ consecutive
//     quiet slots steps it up — on a channel without collision
//     detection, a quiet stretch is the only evidence of being at the
//     wrong level, and backing off is the jamming-safe response.
//
// All three run on the per-slot ground-truth simulator (internal/sim)
// via the standard protocol adapters, and all three declare event-skip
// contracts: Cascade and RobustLadder implement
// protocol.SkipController (their probabilities are piecewise constant
// between state changes), and RepetitionLadder inherits
// protocol.AttemptStation through protocol.WindowStation. KS tests in
// this package hold the fast paths to the per-slot reference
// distributions.
package nocd

import (
	"fmt"
	"math"

	"repro/internal/protocol"
)

// Parameter defaults and bounds.
const (
	// DefaultCascadeBase is the cascade's probability/dwell base β.
	DefaultCascadeBase = 2.0
	// CascadeBaseMax bounds β; beyond it levels are too coarse to ever
	// match a density.
	CascadeBaseMax = 16.0

	// DefaultLadderTheta is the repetition ladder's trade-off exponent.
	DefaultLadderTheta = 1.0
	// LadderThetaMax bounds θ; beyond it repetition dominates runtime.
	LadderThetaMax = 4.0

	// DefaultRobustPatience is the robust ladder's patience multiplier c.
	DefaultRobustPatience = 4.0
	// RobustPatienceMax bounds c.
	RobustPatienceMax = 64.0

	// maxLevel caps ladder/cascade levels so 2^L arithmetic stays in
	// uint64 range; no feasible simulation climbs this far.
	maxLevel = 62
)

// Cascade is the Bender–Kuszmaul-style fair oblivious probability
// cascade. It implements protocol.Controller and
// protocol.SkipController. The zero value is not usable; create
// instances with NewCascade. A Cascade is stateful (it tracks its
// position in the slot→level map) and single-use.
type Cascade struct {
	base float64

	epoch    int     // current epoch e ≥ 1; epoch e sweeps levels 0..e-1
	level    int     // current level i within the epoch
	levelEnd uint64  // last slot of the current level
	prob     float64 // β^-level, the level's transmission probability
	cursor   uint64  // next unobserved slot (event-skip contract)
}

// NewCascade returns a cascade with base β = base. It returns an error
// unless 1 < β ≤ CascadeBaseMax.
func NewCascade(base float64) (*Cascade, error) {
	if !(base > 1 && base <= CascadeBaseMax) {
		return nil, fmt.Errorf("nocd: cascade requires 1 < β ≤ %v, got %v", CascadeBaseMax, base)
	}
	return &Cascade{base: base, epoch: 1, level: 0, levelEnd: 1, prob: 1, cursor: 1}, nil
}

// Base returns the protocol parameter β.
func (c *Cascade) Base() float64 { return c.base }

// dwell returns the slot count of level i: ⌈βⁱ⌉.
func (c *Cascade) dwell(i int) uint64 {
	return uint64(math.Ceil(math.Pow(c.base, float64(i))))
}

// advanceTo moves the level position forward until it covers slot. The
// slot→level map is deterministic and oblivious to channel feedback,
// so advancing is pure bookkeeping.
func (c *Cascade) advanceTo(slot uint64) {
	for slot > c.levelEnd {
		c.level++
		if c.level >= c.epoch {
			c.epoch++
			c.level = 0
		}
		c.levelEnd += c.dwell(c.level)
		c.prob = math.Pow(c.base, -float64(c.level))
	}
}

// Prob implements protocol.Controller.
func (c *Cascade) Prob(slot uint64) float64 {
	c.advanceTo(slot)
	return c.prob
}

// Observe implements protocol.Controller. The cascade is oblivious:
// feedback never changes its schedule, only the cursor advances.
func (c *Cascade) Observe(slot uint64, success bool) {
	c.advanceTo(slot)
	c.cursor = slot + 1
}

// SkipPhase implements protocol.SkipController: the phase is the
// remainder of the current level, over which the probability is one
// constant.
func (c *Cascade) SkipPhase(slot uint64) protocol.SkipPhase {
	c.advanceTo(slot)
	return protocol.SkipPhase{
		End:       c.levelEnd,
		RegularLo: c.prob,
		RegularHi: c.prob,
	}
}

// ProbQuiet implements protocol.SkipController. Within a phase the
// probability is the level constant.
func (c *Cascade) ProbQuiet(s uint64) float64 { return c.prob }

// SkipTo implements protocol.SkipController: quiet slots carry no
// state beyond the position, so skipping is pure bookkeeping.
func (c *Cascade) SkipTo(s uint64) {
	if s > c.cursor {
		c.advanceTo(s)
		c.cursor = s
	}
}

// RepetitionLadder is the Chen–Jiang–Zheng-style windowed schedule:
// phase i emits ⌈iᶿ⌉ windows of 2ⁱ slots. It implements
// protocol.Schedule; stations adapted via protocol.NewWindowStation
// are channel-oblivious (ack-only) and event-skippable through
// protocol.AttemptStation. Create instances with NewRepetitionLadder.
type RepetitionLadder struct {
	theta float64
	phase int // current phase i; window size 2^i
	reps  int // windows remaining in the current phase
}

// NewRepetitionLadder returns a ladder with trade-off exponent
// θ = theta. It returns an error unless 0 ≤ θ ≤ LadderThetaMax.
func NewRepetitionLadder(theta float64) (*RepetitionLadder, error) {
	if !(theta >= 0 && theta <= LadderThetaMax) {
		return nil, fmt.Errorf("nocd: repetition ladder requires 0 ≤ θ ≤ %v, got %v", LadderThetaMax, theta)
	}
	return &RepetitionLadder{theta: theta}, nil
}

// Theta returns the protocol parameter θ.
func (l *RepetitionLadder) Theta() float64 { return l.theta }

// Phase returns the current phase index i (0 before the first window).
func (l *RepetitionLadder) Phase() int { return l.phase }

// NextWindow implements protocol.Schedule.
func (l *RepetitionLadder) NextWindow() int {
	if l.reps == 0 {
		l.phase++
		l.reps = int(math.Ceil(math.Pow(float64(l.phase), l.theta)))
		if l.reps < 1 {
			l.reps = 1
		}
	}
	l.reps--
	i := l.phase
	if i > 30 {
		i = 30 // cap the window so int arithmetic cannot overflow
	}
	return 1 << i
}

// RobustLadder is the Jiang–Zheng-style fair success-clocked ladder.
// It implements protocol.Controller and protocol.SkipController.
// Create instances with NewRobustLadder; a ladder is stateful and
// single-use.
type RobustLadder struct {
	patience float64

	level  int    // L: transmission probability 2^-L
	quiet  uint64 // consecutive quiet slots since the last state change
	cursor uint64 // next unobserved slot (event-skip contract)
}

// NewRobustLadder returns a ladder with patience multiplier
// c = patience. It returns an error unless 1 ≤ c ≤ RobustPatienceMax.
func NewRobustLadder(patience float64) (*RobustLadder, error) {
	if !(patience >= 1 && patience <= RobustPatienceMax) {
		return nil, fmt.Errorf("nocd: robust ladder requires 1 ≤ c ≤ %v, got %v", RobustPatienceMax, patience)
	}
	return &RobustLadder{patience: patience, cursor: 1}, nil
}

// Patience returns the protocol parameter c.
func (l *RobustLadder) Patience() float64 { return l.patience }

// Level returns the current probability level L.
func (l *RobustLadder) Level() int { return l.level }

// threshold returns the quiet-slot patience at the current level,
// ⌈c·2^L⌉.
func (l *RobustLadder) threshold() uint64 {
	return uint64(math.Ceil(l.patience * math.Exp2(float64(l.level))))
}

// prob returns the current transmission probability 2^-L.
func (l *RobustLadder) prob() float64 { return math.Exp2(-float64(l.level)) }

// stepUp raises the level after patience runs out.
func (l *RobustLadder) stepUp() {
	if l.level < maxLevel {
		l.level++
	}
	l.quiet = 0
}

// Prob implements protocol.Controller.
func (l *RobustLadder) Prob(slot uint64) float64 { return l.prob() }

// Observe implements protocol.Controller: a success steps the level
// down and resets the quiet clock; a quiet slot advances the clock and
// steps the level up when patience ⌈c·2^L⌉ runs out.
func (l *RobustLadder) Observe(slot uint64, success bool) {
	l.cursor = slot + 1
	if success {
		if l.level > 0 {
			l.level--
		}
		l.quiet = 0
		return
	}
	l.quiet++
	if l.quiet >= l.threshold() {
		l.stepUp()
	}
}

// SkipPhase implements protocol.SkipController: the phase runs until
// the quiet clock would hit the patience threshold (the slot whose
// quiet observation steps the level up), over one constant
// probability.
func (l *RobustLadder) SkipPhase(slot uint64) protocol.SkipPhase {
	p := l.prob()
	return protocol.SkipPhase{
		End:       slot + (l.threshold() - l.quiet) - 1,
		RegularLo: p,
		RegularHi: p,
	}
}

// ProbQuiet implements protocol.SkipController. Within a phase the
// probability is constant.
func (l *RobustLadder) ProbQuiet(s uint64) float64 { return l.prob() }

// SkipTo implements protocol.SkipController: quiet slots only advance
// the clock, and the phase bound guarantees at most one threshold
// crossing, exactly at the phase boundary.
func (l *RobustLadder) SkipTo(s uint64) {
	if s <= l.cursor {
		return
	}
	l.quiet += s - l.cursor
	l.cursor = s
	if l.quiet >= l.threshold() {
		l.stepUp()
	}
}

// Compile-time interface conformance checks.
var (
	_ protocol.SkipController = (*Cascade)(nil)
	_ protocol.Schedule       = (*RepetitionLadder)(nil)
	_ protocol.SkipController = (*RobustLadder)(nil)
)
