package cd

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/sim"
)

// maxExponent caps the probe level 2^(-2^j): beyond j = 30 the
// transmission probability underflows any practical network size.
const maxExponent = 30

// leaderPhase is the state of the Willard-style search.
type leaderPhase uint8

const (
	phaseDoubling leaderPhase = iota
	phaseBinarySearch
)

// leaderState is the deterministic part of the leader-election automaton,
// shared (in value) by every station since it evolves only on the public
// ternary feedback.
//
// The doubling phase probes transmission probabilities 2^(-2^j) for
// j = 0, 1, 2, …; the first silence at 2^j brackets the workable integer
// exponent e (the one with k·2^(-e) ≈ 1) inside (2^(j-1), 2^j], which the
// binary-search phase then locates with O(log log k) additional probes at
// p = 2^(-e).
type leaderState struct {
	phase leaderPhase
	j     int // doubling phase: probing exponent 2^j
	lo    int // binary search bounds on the integer exponent e
	hi    int
}

// newLeaderState returns the initial state: probe exponent 2^0 = 1.
func newLeaderState() leaderState {
	return leaderState{phase: phaseDoubling, j: 0}
}

// prob returns the transmission probability for the current slot.
func (s *leaderState) prob() float64 {
	if s.phase == phaseBinarySearch {
		return math.Exp2(-float64((s.lo + s.hi) / 2))
	}
	return math.Exp2(-math.Exp2(float64(s.j)))
}

// advance folds one slot outcome into the search state. A Success ends
// the election (the transmitter is the leader); callers stop before
// advancing on success.
func (s *leaderState) advance(outcome sim.Outcome) {
	switch s.phase {
	case phaseDoubling:
		switch outcome {
		case sim.Collision:
			// Probability still too high: square it (double the exponent).
			if s.j < maxExponent {
				s.j++
			}
		case sim.Silence:
			// Overshot: the workable integer exponent lies in
			// (2^(j-1), 2^j].
			if s.j == 0 {
				// Silence at the densest probe: just retry.
				return
			}
			s.phase = phaseBinarySearch
			s.lo = int(math.Exp2(float64(s.j-1))) + 1
			s.hi = int(math.Exp2(float64(s.j)))
		}
	case phaseBinarySearch:
		mid := (s.lo + s.hi) / 2
		switch outcome {
		case sim.Collision:
			s.lo = mid + 1 // too many transmitters: lower the probability
		case sim.Silence:
			s.hi = mid - 1 // too few: raise the probability
		}
		if s.lo > s.hi {
			// Search exhausted without a success: restart the doubling.
			*s = newLeaderState()
		}
	}
}

// LeaderStation is the per-node leader-election automaton; it implements
// sim.CDStation. The station that transmits in the first successful slot
// is the leader (and, in the k-selection framing the simulator uses, the
// one that "delivers").
type LeaderStation struct {
	state leaderState
}

// NewLeaderStation returns a station starting at the initial probe level.
func NewLeaderStation() *LeaderStation {
	return &LeaderStation{state: newLeaderState()}
}

// WillTransmit implements protocol.Station.
func (s *LeaderStation) WillTransmit(slot uint64, src *rng.Rand) bool {
	return src.Bernoulli(s.state.prob())
}

// Feedback implements protocol.Station; leader election requires ternary
// feedback.
func (s *LeaderStation) Feedback(slot uint64, transmitted, received bool) {
	panic("cd: LeaderStation requires a collision-detection channel")
}

// FeedbackOutcome implements sim.CDStation.
func (s *LeaderStation) FeedbackOutcome(slot uint64, transmitted bool, outcome sim.Outcome) {
	s.state.advance(outcome)
}

var _ sim.CDStation = (*LeaderStation)(nil)

// LeaderRun simulates leader election among k stations with the O(1)/slot
// aggregate engine and returns the slot at which a unique leader emerged.
// Expected O(log log k) slots. maxSlots of 0 means 1<<20.
func LeaderRun(k int, src *rng.Rand, maxSlots uint64) (uint64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("cd: leader election requires k ≥ 1, got %d", k)
	}
	if maxSlots == 0 {
		maxSlots = 1 << 20
	}
	state := newLeaderState()
	for slot := uint64(1); slot <= maxSlots; slot++ {
		p := state.prob()
		// Trinomial outcome: silence (1−p)^k, success k·p(1−p)^(k−1),
		// collision otherwise.
		pSilence := math.Exp(float64(k) * math.Log1p(-p))
		pSuccess := float64(k) * p * math.Exp(float64(k-1)*math.Log1p(-p))
		u := src.Float64()
		switch {
		case u < pSuccess:
			return slot, nil
		case u < pSuccess+pSilence:
			state.advance(sim.Silence)
		default:
			state.advance(sim.Collision)
		}
	}
	return 0, fmt.Errorf("%w (leader election, limit %d)", ErrSlotLimit, maxSlots)
}

// NewLeaderStations returns k independent leader-election stations for
// the exact simulator.
func NewLeaderStations(k int) []*LeaderStation {
	stations := make([]*LeaderStation, k)
	for i := range stations {
		stations[i] = NewLeaderStation()
	}
	return stations
}
