package cd

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestTreeConfigValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewTreeStation(WithSplitProb(0)); err == nil {
		t.Error("split 0 accepted")
	}
	if _, err := NewTreeStation(WithSplitProb(1)); err == nil {
		t.Error("split 1 accepted")
	}
	if _, err := TreeRun(-1, rng.New(1), 0); err == nil {
		t.Error("negative k accepted")
	}
}

func TestTreeRunTrivial(t *testing.T) {
	t.Parallel()
	steps, err := TreeRun(0, rng.New(1), 0)
	if err != nil || steps != 0 {
		t.Fatalf("k=0: (%d, %v), want (0, nil)", steps, err)
	}
	// k=1: the lone station transmits in slot 1 and succeeds.
	for seed := uint64(0); seed < 50; seed++ {
		steps, err := TreeRun(1, rng.New(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		if steps != 1 {
			t.Fatalf("k=1 completed at %d, want 1", steps)
		}
	}
}

// TestTreeRunK2Distribution: with k=2 the first slot always collides;
// resolution then takes a geometric number of splits. The probability
// that the execution finishes by slot 3 (split succeeds immediately:
// one station goes left, one right) is 1/2.
func TestTreeRunK2(t *testing.T) {
	t.Parallel()
	const draws = 50000
	byThree := 0
	for i := 0; i < draws; i++ {
		steps, err := TreeRun(2, rng.NewStream(1, "k2", fmt.Sprint(i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		if steps < 3 {
			t.Fatalf("k=2 finished at %d, impossible before slot 3", steps)
		}
		if steps == 3 {
			byThree++
		}
	}
	got := float64(byThree) / draws
	if math.Abs(got-0.5) > 0.01 {
		t.Fatalf("P(finish at slot 3) = %v, want 0.5", got)
	}
}

// TestTreeExpectedCost: randomized binary splitting resolves k batched
// stations in ≈ 2.89k slots on average (the classic constant 2.885…);
// the Massey skip lowers it to ≈ 2.66k.
func TestTreeExpectedCost(t *testing.T) {
	t.Parallel()
	const k, runs = 4000, 20
	mean := func(opts ...TreeOption) float64 {
		var total uint64
		for i := 0; i < runs; i++ {
			steps, err := TreeRun(k, rng.NewStream(2, "cost", fmt.Sprint(i), fmt.Sprint(len(opts))), 0, opts...)
			if err != nil {
				t.Fatal(err)
			}
			total += steps
		}
		return float64(total) / runs / k
	}
	basic := mean()
	massey := mean(WithMasseySkip())
	if math.Abs(basic-2.885) > 0.15 {
		t.Errorf("basic tree ratio = %v, want ≈ 2.89", basic)
	}
	if math.Abs(massey-2.66) > 0.15 {
		t.Errorf("Massey tree ratio = %v, want ≈ 2.66", massey)
	}
	if massey >= basic {
		t.Errorf("Massey skip did not improve: %v ≥ %v", massey, basic)
	}
}

// runTreeExact drives per-node tree stations through the exact simulator.
func runTreeExact(t *testing.T, k int, src *rng.Rand, opts ...TreeOption) uint64 {
	t.Helper()
	sts, err := NewTreeStations(k, opts...)
	if err != nil {
		t.Fatal(err)
	}
	stations := make([]protocol.Station, k)
	for i, st := range sts {
		stations[i] = st
	}
	res, err := sim.Run(stations, src, sim.WithMaxSlots(uint64(1000*k+1000)))
	if err != nil {
		t.Fatal(err)
	}
	return res.Slots
}

// TestTreeAggregateMatchesExact holds the aggregate group-stack engine to
// the per-node automata, with and without the Massey skip.
func TestTreeAggregateMatchesExact(t *testing.T) {
	t.Parallel()
	for _, massey := range []bool{false, true} {
		massey := massey
		t.Run(fmt.Sprintf("massey=%v", massey), func(t *testing.T) {
			t.Parallel()
			var opts []TreeOption
			if massey {
				opts = append(opts, WithMasseySkip())
			}
			const k, draws = 12, 4000
			agg := make([]float64, draws)
			exact := make([]float64, draws)
			for i := 0; i < draws; i++ {
				s1, err := TreeRun(k, rng.NewStream(3, "agg", fmt.Sprint(massey), fmt.Sprint(i)), 0, opts...)
				if err != nil {
					t.Fatal(err)
				}
				agg[i] = float64(s1)
				exact[i] = float64(runTreeExact(t, k, rng.NewStream(3, "exact", fmt.Sprint(massey), fmt.Sprint(i)), opts...))
			}
			crit := 1.95 * math.Sqrt(2.0/draws)
			if d := stats.KSDistance(agg, exact); d > crit {
				t.Fatalf("aggregate vs exact: KS distance %v > %v", d, crit)
			}
		})
	}
}

// TestTreeBeatsNoCollisionDetection pins the §2 comparison: with
// collision detection, tree splitting resolves contention in ≈ 2.9k —
// well under One-Fail Adaptive's 7.44k without it.
func TestTreeBeatsNoCollisionDetection(t *testing.T) {
	t.Parallel()
	const k, runs = 2000, 10
	var total uint64
	for i := 0; i < runs; i++ {
		steps, err := TreeRun(k, rng.NewStream(4, fmt.Sprint(i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		total += steps
	}
	ratio := float64(total) / runs / k
	if ratio >= 2*(2.72+1) {
		t.Fatalf("tree ratio %v not below OFA's 7.44 — collision detection should win", ratio)
	}
}

func TestTreeStationRequiresCD(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("binary Feedback did not panic")
		}
	}()
	st, err := NewTreeStation()
	if err != nil {
		t.Fatal(err)
	}
	st.Feedback(1, false, false)
}

func TestLeaderRunValidation(t *testing.T) {
	t.Parallel()
	if _, err := LeaderRun(0, rng.New(1), 0); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestLeaderRunElects: leader election terminates quickly for sizes
// spanning five orders of magnitude, with mean slots growing only
// loglog-slowly.
func TestLeaderRunElects(t *testing.T) {
	t.Parallel()
	const runs = 400
	means := make([]float64, 0, 4)
	for _, k := range []int{1, 10, 1000, 100000} {
		var total uint64
		for i := 0; i < runs; i++ {
			steps, err := LeaderRun(k, rng.NewStream(5, fmt.Sprint(k), fmt.Sprint(i)), 0)
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			total += steps
		}
		means = append(means, float64(total)/runs)
	}
	// Loglog growth: even at k = 10⁵ the mean must stay tiny.
	last := means[len(means)-1]
	if last > 25 {
		t.Fatalf("mean election time at k=1e5 = %v slots, want ≪ 25 (loglog growth)", last)
	}
}

// TestLeaderExactMatchesAggregate cross-validates the two leader-election
// realizations, and checks the exact runs elect exactly one station.
func TestLeaderExactMatchesAggregate(t *testing.T) {
	t.Parallel()
	const k, draws = 64, 3000
	agg := make([]float64, draws)
	exact := make([]float64, draws)
	for i := 0; i < draws; i++ {
		s1, err := LeaderRun(k, rng.NewStream(6, "agg", fmt.Sprint(i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		agg[i] = float64(s1)

		sts := NewLeaderStations(k)
		stations := make([]protocol.Station, k)
		for j, st := range sts {
			stations[j] = st
		}
		res, err := sim.Run(stations, rng.NewStream(6, "exact", fmt.Sprint(i)),
			sim.WithStopAfterDeliveries(1), sim.WithMaxSlots(1<<20))
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered != 1 {
			t.Fatalf("elected %d leaders, want 1", res.Delivered)
		}
		exact[i] = float64(res.Slots)
	}
	crit := 1.95 * math.Sqrt(2.0/draws)
	if d := stats.KSDistance(agg, exact); d > crit {
		t.Fatalf("aggregate vs exact: KS distance %v > %v", d, crit)
	}
}

// TestLeaderStateTransitions unit-checks the search automaton.
func TestLeaderStateTransitions(t *testing.T) {
	t.Parallel()
	s := newLeaderState()
	if got := s.prob(); got != 0.5 { // 2^(-2^0)
		t.Fatalf("initial prob = %v, want 0.5", got)
	}
	s.advance(sim.Collision)
	if got := s.prob(); got != 0.25 { // 2^(-2^1)
		t.Fatalf("prob after collision = %v, want 0.25", got)
	}
	s.advance(sim.Collision) // probing exponent 2^2 = 4: p = 1/16
	if got := s.prob(); got != 1.0/16 {
		t.Fatalf("prob after second collision = %v, want 1/16", got)
	}
	s.advance(sim.Silence) // overshoot: integer exponents (2, 4] → [3, 4]
	if s.phase != phaseBinarySearch || s.lo != 3 || s.hi != 4 {
		t.Fatalf("state after overshoot = %+v, want binary search [3,4]", s)
	}
	// mid = 3: probability 2^(-3) = 1/8.
	if got := s.prob(); got != 0.125 {
		t.Fatalf("binary-search prob = %v, want 0.125", got)
	}
	// Exhaust the search: collision at mid=3 → lo=4; silence at mid=4 →
	// hi=3 → restart.
	s.advance(sim.Collision)
	s.advance(sim.Silence)
	if s.phase != phaseDoubling || s.j != 0 {
		t.Fatalf("state after exhausted search = %+v, want restart", s)
	}
}

func TestLeaderStationRequiresCD(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("binary Feedback did not panic")
		}
	}()
	NewLeaderStation().Feedback(1, false, false)
}

// TestTreeStackInvariant: in the aggregate engine, group sizes always sum
// to the number of undelivered messages. The per-node engine can't break
// this by construction; exercise the aggregate via a long run that would
// error internally on violation.
func TestTreeStackInvariant(t *testing.T) {
	t.Parallel()
	for seed := uint64(0); seed < 20; seed++ {
		if _, err := TreeRun(500, rng.New(seed), 0, WithMasseySkip()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func BenchmarkTreeRun(b *testing.B) {
	for _, k := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var total uint64
			for i := 0; i < b.N; i++ {
				steps, err := TreeRun(k, rng.NewStream(7, fmt.Sprint(i)), 0)
				if err != nil {
					b.Fatal(err)
				}
				total += steps
			}
			b.ReportMetric(float64(total)/float64(b.N)/float64(k), "steps/k")
		})
	}
}

func BenchmarkLeaderRun(b *testing.B) {
	for _, k := range []int{100, 100000} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := LeaderRun(k, rng.NewStream(8, fmt.Sprint(i)), 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
