package cd

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestTreeRunProperties property-checks structural invariants of the
// aggregate tree engine across random sizes, split probabilities and
// Massey settings:
//
//   - completion needs at least k slots (one success each) and, for
//     k ≥ 2, at least k+1 (the first slot always collides);
//   - the run always completes within the budget for sane splits.
func TestTreeRunProperties(t *testing.T) {
	t.Parallel()
	f := func(kRaw uint8, splitRaw uint8, massey bool, seed uint16) bool {
		k := int(kRaw%200) + 1
		split := 0.2 + 0.6*float64(splitRaw)/255 // within (0.2, 0.8)
		opts := []TreeOption{WithSplitProb(split)}
		if massey {
			opts = append(opts, WithMasseySkip())
		}
		steps, err := TreeRun(k, rng.NewStream(uint64(seed), "prop", fmt.Sprint(k)), 0, opts...)
		if err != nil {
			return false
		}
		if steps < uint64(k) {
			return false
		}
		if k >= 2 && steps < uint64(k)+1 {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestLeaderRunProperty: leader election always terminates within budget
// and never needs fewer than one slot.
func TestLeaderRunProperty(t *testing.T) {
	t.Parallel()
	f := func(kRaw uint16, seed uint16) bool {
		k := int(kRaw%10000) + 1
		steps, err := LeaderRun(k, rng.NewStream(uint64(seed), "leader-prop", fmt.Sprint(k)), 0)
		return err == nil && steps >= 1
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
