package cd_test

import (
	"testing"

	"repro/internal/cd"
	"repro/internal/nocd"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sim"
)

func repetitionStations(t testing.TB, k int, wrap func(protocol.Station) protocol.Station) []protocol.Station {
	t.Helper()
	stations := make([]protocol.Station, k)
	for i := range stations {
		sched, err := nocd.NewRepetitionLadder(nocd.DefaultLadderTheta)
		if err != nil {
			t.Fatal(err)
		}
		var st protocol.Station = protocol.NewWindowStation(sched)
		if wrap != nil {
			st = wrap(st)
		}
		stations[i] = st
	}
	return stations
}

func TestBinaryFeedback(t *testing.T) {
	t.Parallel()
	if !cd.BinaryFeedback(sim.Success) {
		t.Error("BinaryFeedback(Success) = false, want true")
	}
	if cd.BinaryFeedback(sim.Silence) {
		t.Error("BinaryFeedback(Silence) = true, want false: silence must be indistinguishable nothing")
	}
	if cd.BinaryFeedback(sim.Collision) {
		t.Error("BinaryFeedback(Collision) = true, want false: no collision signal exists without detection")
	}
}

// TestDegradedMatchesBinaryPath: a windowed station run on the ternary
// feedback path through Degrade must reproduce the plain binary-path
// execution exactly (same stream, identical results) — the degradation
// is the binary model.
func TestDegradedMatchesBinaryPath(t *testing.T) {
	t.Parallel()
	const k = 24
	for seed := uint64(1); seed <= 5; seed++ {
		plain, err := sim.Run(repetitionStations(t, k, nil), rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		degraded, err := sim.Run(
			repetitionStations(t, k, func(st protocol.Station) protocol.Station { return cd.Degrade(st) }),
			rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if plain.Slots != degraded.Slots || plain.Successes != degraded.Successes ||
			plain.Collisions != degraded.Collisions || plain.Silences != degraded.Silences ||
			plain.Delivered != degraded.Delivered {
			t.Errorf("seed %d: degraded run %+v differs from plain run %+v", seed, degraded, plain)
		}
	}
}

// TestAckOnlyWindowedUnchanged: windowed protocols ignore receptions by
// construction, so the ack-only degradation must not change their
// executions at all.
func TestAckOnlyWindowedUnchanged(t *testing.T) {
	t.Parallel()
	const k = 24
	for seed := uint64(1); seed <= 5; seed++ {
		plain, err := sim.Run(repetitionStations(t, k, nil), rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		acked, err := sim.Run(
			repetitionStations(t, k, func(st protocol.Station) protocol.Station { return cd.AckOnly(st) }),
			rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if plain.Slots != acked.Slots || plain.Delivered != acked.Delivered {
			t.Errorf("seed %d: ack-only run %+v differs from plain run %+v", seed, acked, plain)
		}
	}
}

// TestAckOnlyMasksFairReceptions: fair protocols clock their state on
// overheard successes, so the ack-only model must change their behavior
// — a reception that would reset a robust ladder's quiet clock is
// masked into a quiet slot, stepping the level up instead.
func TestAckOnlyMasksFairReceptions(t *testing.T) {
	t.Parallel()
	heard, err := nocd.NewRobustLadder(4)
	if err != nil {
		t.Fatal(err)
	}
	masked, err := nocd.NewRobustLadder(4)
	if err != nil {
		t.Fatal(err)
	}
	plain := protocol.NewFairStation(heard)
	acked := cd.AckOnly(protocol.NewFairStation(masked))
	// Four slots in which some other station delivers: the plain fair
	// station hears each success; the ack-only one hears nothing
	// (patience at level 0 is 4).
	for slot := uint64(1); slot <= 4; slot++ {
		plain.Feedback(slot, false, true)
		acked.Feedback(slot, false, true)
	}
	if heard.Level() != 0 {
		t.Errorf("plain fair station Level = %d, want 0 (receptions reset the quiet clock)", heard.Level())
	}
	if masked.Level() != 1 {
		t.Errorf("ack-only fair station Level = %d, want 1 (receptions masked into quiet slots)", masked.Level())
	}
}
