// Package cd implements the collision-detection side of the paper's
// related work (§2): contention-resolution protocols that exploit the
// ternary silence/success/collision feedback the paper's own model
// deliberately does without.
//
//   - TreeStation / TreeRun: randomized binary tree splitting, the
//     classic adaptive k-selection algorithm of Capetanakis, Hayes and
//     Tsybakov–Mikhailov. On a collision the current group splits by
//     fair coin flips and the two subgroups are resolved depth-first.
//     Expected cost ≈ 2.89k slots for batched arrivals — the benchmark
//     for what collision detection buys over the paper's 7.44k (One-Fail
//     Adaptive) without it. The Massey improvement (skip the guaranteed
//     collision of a right sibling after a silent left sibling) is an
//     option, lowering the constant to ≈ 2.66.
//
//   - LeaderStation / LeaderRun: Willard-style leader election in
//     expected O(log log k) slots: exponent-doubling probes followed by
//     binary search over transmission-probability levels 2^(-2^j). §2
//     cites leader election (Nakano–Olariu) as the way to realize the
//     delivery acknowledgement on channels that lack one.
//
// Both algorithms come in two equivalent realizations: per-node automata
// (sim.CDStation) for the exact simulator, and aggregate engines that
// exploit the group-size symmetry for O(1) work per slot; tests hold the
// two to the same distribution.
//
// # Why there is no event-skip path here
//
// The event-skip kernel (internal/kernel) accelerates protocols whose
// behaviour is constant across stretches of uninformative slots — the
// "probability is constant until my state changes" contract of
// protocol.SkipController. Collision-detection protocols are the
// opposite by design: every slot's ternary outcome is information, and
// both algorithms mutate state on every slot (the tree stack on each
// split, Willard's probe level on each probe). There are no quiet
// stretches to skip — which is also why these protocols finish in O(k)
// slots with small constants in the first place. The aggregate engines
// in this package are already O(1) per slot, matching the kernel's cost
// per state change; see protocol/skip.go for the contract they cannot
// satisfy.
package cd

import (
	"errors"
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// ErrSlotLimit is returned when an execution exceeds its slot budget.
var ErrSlotLimit = errors.New("cd: slot limit exceeded")

// DefaultSplitProb is the probability of joining the left subgroup on a
// collision split. 1/2 is optimal for fair coins.
const DefaultSplitProb = 0.5

// TreeOption configures the tree-splitting algorithm.
type TreeOption func(*treeConfig)

type treeConfig struct {
	split  float64
	massey bool
}

// WithSplitProb sets the left-subgroup probability (default 1/2).
func WithSplitProb(p float64) TreeOption {
	return func(c *treeConfig) { c.split = p }
}

// WithMasseySkip enables the Massey improvement: when a left subgroup
// turns out empty, its right sibling is known to hold the whole colliding
// group (≥ 2 stations), so its guaranteed collision is skipped and the
// sibling is split immediately.
func WithMasseySkip() TreeOption {
	return func(c *treeConfig) { c.massey = true }
}

func newTreeConfig(opts []TreeOption) (treeConfig, error) {
	cfg := treeConfig{split: DefaultSplitProb}
	for _, opt := range opts {
		opt(&cfg)
	}
	if !(cfg.split > 0 && cfg.split < 1) {
		return cfg, fmt.Errorf("cd: split probability must be in (0,1), got %v", cfg.split)
	}
	return cfg, nil
}

// TreeStation is the per-node automaton of randomized binary tree
// splitting. It implements sim.CDStation. All stations evolve a
// consistent view of the group stack from the shared ternary feedback;
// the only private state is the station's own stack depth.
type TreeStation struct {
	cfg treeConfig
	// depth is the station's position in the implicit group stack:
	// 0 = member of the group transmitting now.
	depth int
	// mustFlip defers the collision coin flip to the next WillTransmit
	// call, where randomness is available.
	mustFlip bool
	// prevSplit records whether the current group was created as the
	// left child of the immediately preceding collision (Massey rule).
	prevSplit bool
}

// NewTreeStation returns a tree-splitting station.
func NewTreeStation(opts ...TreeOption) (*TreeStation, error) {
	cfg, err := newTreeConfig(opts)
	if err != nil {
		return nil, err
	}
	return &TreeStation{cfg: cfg}, nil
}

// WillTransmit implements protocol.Station: members of the current group
// (depth 0) transmit.
func (s *TreeStation) WillTransmit(slot uint64, src *rng.Rand) bool {
	if s.mustFlip {
		s.mustFlip = false
		if !src.Bernoulli(s.cfg.split) {
			s.depth = 1 // joins the right subgroup
		}
	}
	return s.depth == 0
}

// Feedback implements protocol.Station; tree splitting requires ternary
// feedback, so plain binary feedback panics loudly rather than corrupting
// state.
func (s *TreeStation) Feedback(slot uint64, transmitted, received bool) {
	panic("cd: TreeStation requires a collision-detection channel (sim delivers ternary feedback to CDStation)")
}

// FeedbackOutcome implements sim.CDStation.
func (s *TreeStation) FeedbackOutcome(slot uint64, transmitted bool, outcome sim.Outcome) {
	switch outcome {
	case sim.Collision:
		if s.depth == 0 {
			s.mustFlip = true // flip left/right at the next decision
		} else {
			s.depth++ // pushed one level deeper by the split
		}
		s.prevSplit = true
	case sim.Silence:
		if s.cfg.massey && s.prevSplit {
			// The left child of the split was empty, so the right child
			// (now current) holds the whole colliding group: split it
			// immediately instead of letting it collide.
			switch {
			case s.depth == 1:
				s.depth = 0
				s.mustFlip = true
			case s.depth > 1:
				// pop one level, then get pushed by the new split: net 0.
			}
			// The immediately following group is again a fresh left child.
			s.prevSplit = true
			return
		}
		if s.depth > 0 {
			s.depth--
		}
		s.prevSplit = false
	case sim.Success:
		// The deliverer has been removed by the simulator; everyone else
		// pops one level.
		if s.depth > 0 {
			s.depth--
		}
		s.prevSplit = false
	}
}

var _ sim.CDStation = (*TreeStation)(nil)

// treeGroup is one entry of the aggregate engine's group stack.
type treeGroup struct {
	size      int
	freshLeft bool // created as the left child of the previous split
}

// TreeRun simulates tree splitting for k batched stations with the
// aggregate group-stack engine: per slot, the current group's size g
// determines the outcome, and a collision splits g into
// Binomial(g, split) and the rest — exactly the distribution the
// independent per-node coin flips induce. Returns the slot of the k-th
// delivery. maxSlots of 0 means 100·k + 1000.
func TreeRun(k int, src *rng.Rand, maxSlots uint64, opts ...TreeOption) (uint64, error) {
	cfg, err := newTreeConfig(opts)
	if err != nil {
		return 0, err
	}
	if k < 0 {
		return 0, fmt.Errorf("cd: negative k %d", k)
	}
	if k == 0 {
		return 0, nil
	}
	if maxSlots == 0 {
		maxSlots = uint64(100*k + 1000)
	}
	m := k
	stack := make([]treeGroup, 1, 64)
	stack[0] = treeGroup{size: k}
	for slot := uint64(1); slot <= maxSlots; slot++ {
		top := &stack[len(stack)-1]
		switch {
		case top.size == 0: // silence
			fresh := top.freshLeft
			stack = stack[:len(stack)-1]
			if cfg.massey && fresh && len(stack) > 0 {
				// The right sibling holds the whole colliding group (≥2):
				// split it immediately without a transmission slot.
				g := stack[len(stack)-1].size
				left := src.Binomial(g, cfg.split)
				stack[len(stack)-1] = treeGroup{size: g - left}
				stack = append(stack, treeGroup{size: left, freshLeft: true})
			}
		case top.size == 1: // success
			m--
			if m == 0 {
				return slot, nil
			}
			stack = stack[:len(stack)-1]
		default: // collision: split depth-first
			g := top.size
			left := src.Binomial(g, cfg.split)
			*top = treeGroup{size: g - left}
			stack = append(stack, treeGroup{size: left, freshLeft: true})
		}
		if len(stack) == 0 {
			return 0, fmt.Errorf("cd: group stack emptied with %d messages undelivered", m)
		}
	}
	return 0, fmt.Errorf("%w (limit %d, remaining %d of %d)", ErrSlotLimit, maxSlots, m, k)
}

// NewTreeStations returns k independent tree stations for the exact
// simulator.
func NewTreeStations(k int, opts ...TreeOption) ([]*TreeStation, error) {
	stations := make([]*TreeStation, k)
	for i := range stations {
		st, err := NewTreeStation(opts...)
		if err != nil {
			return nil, err
		}
		stations[i] = st
	}
	return stations, nil
}
