package cd

import (
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sim"
)

// This file defines the no-collision-detection side of the channel
// model: the degradation that turns the ternary CD feedback
// silence/success/collision into the binary bit the paper's model (and
// the protocols in internal/nocd) runs on, and the stricter ack-only
// model of the Chen–Jiang–Zheng setting.
//
// The plain per-node simulator already implements the binary model —
// stations that are not sim.CDStation receive received = (outcome ==
// Success) — so these wrappers exist to make the degradation explicit
// and testable: a station wrapped in Degrade runs on the CD feedback
// path yet hears only what a no-CD channel would tell it, and tests can
// hold the two paths to identical executions.

// BinaryFeedback degrades a ternary slot outcome to the single bit
// observable on a channel without collision detection: a success is
// heard (the delivered message is received by every listener); silence
// and collision are indistinguishable nothing.
func BinaryFeedback(o sim.Outcome) bool { return o == sim.Success }

// DegradedStation adapts a binary-feedback station to the simulator's
// collision-detection feedback path, degrading every ternary outcome
// through BinaryFeedback before the inner station sees it. A station
// behaves identically whether run plain (binary path) or wrapped
// (ternary path degraded) — the property the tests in this package pin.
type DegradedStation struct {
	inner protocol.Station
}

// Degrade wraps st so it runs on the ternary feedback path but observes
// only the no-CD binary bit.
func Degrade(st protocol.Station) *DegradedStation {
	return &DegradedStation{inner: st}
}

// WillTransmit implements protocol.Station.
func (s *DegradedStation) WillTransmit(slot uint64, src *rng.Rand) bool {
	return s.inner.WillTransmit(slot, src)
}

// Feedback implements protocol.Station (binary feedback needs no
// degradation).
func (s *DegradedStation) Feedback(slot uint64, transmitted, received bool) {
	s.inner.Feedback(slot, transmitted, received)
}

// FeedbackOutcome implements sim.CDStation by degrading the ternary
// outcome.
func (s *DegradedStation) FeedbackOutcome(slot uint64, transmitted bool, outcome sim.Outcome) {
	s.inner.Feedback(slot, transmitted, BinaryFeedback(outcome))
}

// AckOnlyStation models the strictest feedback setting (the
// Chen–Jiang–Zheng ack-only channel): a station learns nothing from the
// channel except the acknowledgement of its own delivery. Overheard
// receptions are masked. Since the simulator realizes the ack by
// removing the delivered station, an ack-only station's inner Feedback
// never reports received = true at all.
//
// Windowed protocols (Schedule via protocol.WindowStation) ignore
// receptions by construction, so they run unchanged under this model;
// fair protocols (Controller via protocol.FairStation) clock their
// shared state on overheard successes and are NOT ack-only — wrapping
// one changes its behavior, which is exactly what the tests demonstrate.
type AckOnlyStation struct {
	inner protocol.Station
}

// AckOnly wraps st so it hears only its own delivery acknowledgement.
func AckOnly(st protocol.Station) *AckOnlyStation {
	return &AckOnlyStation{inner: st}
}

// WillTransmit implements protocol.Station.
func (s *AckOnlyStation) WillTransmit(slot uint64, src *rng.Rand) bool {
	return s.inner.WillTransmit(slot, src)
}

// Feedback implements protocol.Station, masking receptions of other
// stations' deliveries.
func (s *AckOnlyStation) Feedback(slot uint64, transmitted, received bool) {
	s.inner.Feedback(slot, transmitted, transmitted && received)
}

// Compile-time interface conformance checks.
var (
	_ sim.CDStation    = (*DegradedStation)(nil)
	_ protocol.Station = (*AckOnlyStation)(nil)
)
