package scenario

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

// TestGeneratorInvariants checks every catalog arrival generator for the
// structural contract of an arrival schedule: exact message count,
// non-decreasing slots ≥ 1, and determinism under a fixed stream.
func TestGeneratorInvariants(t *testing.T) {
	t.Parallel()
	const n, lambda = 2048, 0.2
	for _, w := range Catalog() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			a, err := w.Arrivals.Generate(n, lambda, rng.New(11))
			if err != nil {
				t.Fatal(err)
			}
			if a.N() != n {
				t.Fatalf("n = %d, want %d", a.N(), n)
			}
			if a.Arrivals[0] < 1 {
				t.Fatalf("first arrival %d < 1", a.Arrivals[0])
			}
			for i := 1; i < n; i++ {
				if a.Arrivals[i] < a.Arrivals[i-1] {
					t.Fatalf("arrivals not monotone at %d: %d < %d", i, a.Arrivals[i], a.Arrivals[i-1])
				}
			}
			b, err := w.Arrivals.Generate(n, lambda, rng.New(11))
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.Arrivals {
				if a.Arrivals[i] != b.Arrivals[i] {
					t.Fatalf("generation not deterministic at %d: %d vs %d", i, a.Arrivals[i], b.Arrivals[i])
				}
			}
		})
	}
}

// TestGeneratorsRejectBadLoad mirrors the load validation the legacy
// shapes enforced.
func TestGeneratorsRejectBadLoad(t *testing.T) {
	t.Parallel()
	for _, w := range Catalog() {
		for _, bad := range []float64{0, -1, math.Inf(1)} {
			if _, err := w.Arrivals.Generate(10, bad, rng.New(1)); err == nil {
				t.Fatalf("%s: λ=%v accepted", w.Name, bad)
			}
		}
		if _, err := w.Arrivals.Generate(200, 1e-18, rng.New(1)); err == nil {
			t.Fatalf("%s: λ below the representable span accepted", w.Name)
		}
	}
}

// injectionBound verifies the ρ-bounded adversary's defining property:
// in every prefix [1, t] at most ρ·t + burst messages are injected.
func injectionBound(t *testing.T, arrivals []uint64, rho float64, burst int) {
	t.Helper()
	count := 0
	for i, a := range arrivals {
		count++
		// Check the bound at each arrival slot: later slots only relax it.
		if i+1 < len(arrivals) && arrivals[i+1] == a {
			continue // evaluate a slot once, after its last arrival
		}
		if float64(count) > rho*float64(a)+float64(burst)+1e-9 {
			t.Fatalf("injection bound violated at slot %d: %d > %v·%d + %d", a, count, rho, a, burst)
		}
	}
}

func TestRhoBoundedRespectsBound(t *testing.T) {
	t.Parallel()
	const n, lambda, burst = 4096, 0.3, 64
	w, err := RhoBounded{Burst: burst}.Generate(n, lambda, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	injectionBound(t, w.Arrivals, lambda, burst)
	// The greedy adversary front-loads: exactly burst messages at slot 1.
	for i := 0; i < burst; i++ {
		if w.Arrivals[i] != 1 {
			t.Fatalf("message %d of the initial burst arrives at %d, want 1", i, w.Arrivals[i])
		}
	}
	if w.Arrivals[burst] == 1 {
		t.Fatal("initial burst exceeds the bucket size")
	}
	// Zero slack: the realized load matches ρ.
	if got := float64(n) / float64(w.Span()); math.Abs(got-lambda) > lambda/10 {
		t.Fatalf("realized load %.3f, want ~%.3f", got, lambda)
	}
}

func TestHerdSplitsBatches(t *testing.T) {
	t.Parallel()
	const n, lambda, batch = 1024, 0.25, 128
	w, err := Herd{Batch: batch}.Generate(n, lambda, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Each herd occupies exactly two distinct slots: the period start and
	// the mid-resolution strike.
	for h := 0; h < n/batch; h++ {
		grp := w.Arrivals[h*batch : (h+1)*batch]
		first, second := grp[0], grp[batch-1]
		if first == second {
			t.Fatalf("herd %d not split", h)
		}
		for i, a := range grp {
			if a != first && a != second {
				t.Fatalf("herd %d message %d at slot %d, want %d or %d", h, i, a, first, second)
			}
		}
		if second-first != uint64(math.Round(DefaultHerdDrainCost*batch/4)) {
			t.Fatalf("herd %d strike offset %d, want %v", h, second-first, math.Round(DefaultHerdDrainCost*batch/4))
		}
	}
	if got := float64(n) / float64(w.Span()); math.Abs(got-lambda) > lambda/3 {
		t.Fatalf("realized load %.3f, want ~%.3f", got, lambda)
	}
	// The split needs a period of at least two slots.
	if _, err := (Herd{Batch: batch}).Generate(n, batch, rng.New(5)); err == nil {
		t.Fatal("λ beyond the herd shape's capacity accepted")
	}
}

func TestAdaptiveRespectsBoundAndAdapts(t *testing.T) {
	t.Parallel()
	const n, lambda = 1024, 0.2
	a := Adaptive{Chunks: 8, Burst: 128}
	w, err := a.Generate(n, lambda, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	injectionBound(t, w.Arrivals, lambda, 128)
	// Eight injection decisions → at most eight distinct arrival slots.
	distinct := map[uint64]bool{}
	for _, s := range w.Arrivals {
		distinct[s] = true
	}
	if len(distinct) > 8 {
		t.Fatalf("%d distinct injection slots, want ≤ 8", len(distinct))
	}
	if len(distinct) < 2 {
		t.Fatal("adversary never spread its injections")
	}
	// The schedule is a function of the stream: same seed, same schedule.
	w2, err := a.Generate(n, lambda, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Arrivals {
		if w.Arrivals[i] != w2.Arrivals[i] {
			t.Fatalf("adaptive schedule not deterministic at %d", i)
		}
	}
}

// TestJamRandomMask checks rate, determinism and call-order independence
// of the memoryless jammer.
func TestJamRandomMask(t *testing.T) {
	t.Parallel()
	mask := JamRandom{Rate: 0.2}.Mask(99)
	const slots = 200_000
	jammed := 0
	for s := uint64(1); s <= slots; s++ {
		if mask(s) {
			jammed++
		}
	}
	if got := float64(jammed) / slots; math.Abs(got-0.2) > 0.01 {
		t.Fatalf("empirical jam rate %.4f, want ~0.2", got)
	}
	// Pure predicate: revisiting slots in any order gives the same answers.
	again := JamRandom{Rate: 0.2}.Mask(99)
	for s := slots; s >= 1; s -= 37 {
		if mask(uint64(s)) != again(uint64(s)) {
			t.Fatalf("mask not pure at slot %d", s)
		}
	}
	// A different key yields a different mask.
	other := JamRandom{Rate: 0.2}.Mask(100)
	differs := false
	for s := uint64(1); s <= 1000; s++ {
		if mask(s) != other(s) {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("masks with different keys agree on 1000 slots — key is ignored")
	}
}

// TestProbThresholdSaturates: probabilities within one float64 ulp of 1
// must saturate the threshold instead of overflowing the uint64
// conversion (which is implementation-specific at exactly 2⁶⁴).
func TestProbThresholdSaturates(t *testing.T) {
	t.Parallel()
	if got := probThreshold(1); got != ^uint64(0) {
		t.Fatalf("probThreshold(1) = %d, want saturation", got)
	}
	if got := probThreshold(math.Nextafter(1, 0)); got < ^uint64(0)-(1<<12) {
		t.Fatalf("probThreshold(1-ulp) = %d, want within 2^12 of 2^64", got)
	}
	if got := probThreshold(0.5); got != 1<<63 {
		t.Fatalf("probThreshold(0.5) = %d, want 2^63", got)
	}
	// A near-1 jam rate must jam (nearly) everything, not nothing.
	mask := JamRandom{Rate: math.Nextafter(1, 0)}.Mask(7)
	for s := uint64(1); s <= 1000; s++ {
		if !mask(s) {
			t.Fatalf("slot %d unjammed at rate 1-ulp", s)
		}
	}
}

func TestJamPeriodicMask(t *testing.T) {
	t.Parallel()
	mask := JamPeriodic{Period: 10, Burst: 3}.Mask(0)
	for s := uint64(1); s <= 40; s++ {
		want := (s-1)%10 < 3
		if mask(s) != want {
			t.Fatalf("slot %d: jammed=%v, want %v", s, mask(s), want)
		}
	}
}

func TestInstantiate(t *testing.T) {
	t.Parallel()
	jammedScn := Workload{Name: "j", Arrivals: Poisson{}, Channel: JamRandom{Rate: 0.1}}
	mixedScn := Workload{Name: "m", Arrivals: Poisson{}, Population: &Population{
		Fraction: 0.5, Background: "beb", NewBackground: NewBackgroundBackoff,
	}}
	const n = 4000
	ji, err := jammedScn.Instantiate(n, 0.1, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if ji.Jammed == nil || ji.Background != nil {
		t.Fatal("jammed instance has wrong impairments")
	}
	// Impairments must not shift the arrival stream: clean and jammed
	// variants of one shape are matched on arrivals under the same seed.
	clean, err := (Workload{Name: "c", Arrivals: Poisson{}}).Instantiate(n, 0.1, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean.Arrivals.Arrivals {
		if clean.Arrivals.Arrivals[i] != ji.Arrivals.Arrivals[i] {
			t.Fatalf("adding a channel shifted arrivals at %d", i)
		}
	}
	mi, err := mixedScn.Instantiate(n, 0.1, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if mi.Jammed != nil || mi.Background == nil || mi.NewBackground == nil {
		t.Fatal("mixed instance has wrong impairments")
	}
	bg := 0
	for i := 0; i < n; i++ {
		if mi.Background(i) {
			bg++
		}
	}
	if got := float64(bg) / n; math.Abs(got-0.5) > 0.05 {
		t.Fatalf("background fraction %.3f, want ~0.5", got)
	}
	if st, err := mi.NewBackground(); err != nil || st == nil {
		t.Fatalf("background constructor: %v, %v", st, err)
	}
	// Identical stream state, identical instance.
	mi2, err := mixedScn.Instantiate(n, 0.1, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range mi.Arrivals.Arrivals {
		if mi.Arrivals.Arrivals[i] != mi2.Arrivals.Arrivals[i] {
			t.Fatalf("arrivals differ at %d", i)
		}
		if mi.Background(i) != mi2.Background(i) {
			t.Fatalf("population assignment differs at %d", i)
		}
	}
}

func TestInstantiateRejectsBadScenarios(t *testing.T) {
	t.Parallel()
	cases := []Workload{
		{Name: "no-arrivals"},
		{Name: "bad-rate", Arrivals: Poisson{}, Channel: JamRandom{Rate: 1.5}},
		{Name: "bad-period", Arrivals: Poisson{}, Channel: JamPeriodic{Period: 3, Burst: 3}},
		{Name: "bad-fraction", Arrivals: Poisson{}, Population: &Population{Fraction: 1.0, NewBackground: NewBackgroundBackoff}},
		{Name: "no-background", Arrivals: Poisson{}, Population: &Population{Fraction: 0.5}},
	}
	for _, w := range cases {
		if _, err := w.Instantiate(100, 0.1, rng.New(1)); err == nil {
			t.Fatalf("%s: accepted", w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	t.Parallel()
	for _, name := range Names() {
		w, err := ByName(name)
		if err != nil || w.Name != name {
			t.Fatalf("ByName(%q) = %v, %v", name, w.Name, err)
		}
	}
	if _, err := ByName("POISSON"); err != nil {
		t.Fatalf("case-insensitive lookup failed: %v", err)
	}
	_, err := ByName("nope")
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	for _, name := range []string{"rho", "herd", "adaptive", "jammed", "mixed"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error does not list %q: %v", name, err)
		}
	}
}
