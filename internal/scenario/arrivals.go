package scenario

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/dynamic"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Arrivals generates the arrival schedule of a scenario: n messages at
// long-run offered load lambda (messages per slot). Implementations must
// be deterministic given (n, lambda, src) so that every protocol in a
// sweep can be offered the identical schedule.
type Arrivals interface {
	// Generate materializes n messages at offered load lambda (a finite
	// value > 0).
	Generate(n int, lambda float64, src *rng.Rand) (dynamic.Workload, error)
}

// Default shape parameters.
const (
	// DefaultBurstSize is the batch size of the Bursty generator.
	DefaultBurstSize = 64
	// DefaultOnOffPhase is the phase length, in slots, of the OnOff
	// generator.
	DefaultOnOffPhase = 1024
	// DefaultAdversaryBurst is the bucket size b of the ρ-bounded
	// adversaries.
	DefaultAdversaryBurst = 128
	// DefaultHerdBatch is the herd size of the thundering-herd adversary.
	DefaultHerdBatch = 256
	// DefaultHerdDrainCost is the thundering-herd adversary's assumed
	// drain cost in slots per message, bracketed by the paper's Table 1
	// ratios (2.7 for Exp Back-on/Back-off, 7.4 for One-Fail Adaptive).
	DefaultHerdDrainCost = 3.0
	// DefaultAdaptiveChunks is the number of injection decisions the
	// greedy adaptive adversary makes.
	DefaultAdaptiveChunks = 8
)

// checkLoad validates an offered load against a message count. A
// vanishing load would need a workload span beyond what uint64 slot
// arithmetic can hold (the expected span is ~n/λ slots).
func checkLoad(n int, lambda float64) error {
	if !(lambda > 0) || math.IsInf(lambda, 0) {
		return fmt.Errorf("scenario: offered load must be a finite value > 0, got %v", lambda)
	}
	if float64(n)/lambda > 1e15 {
		return fmt.Errorf("scenario: offered load %v is too low for %d messages (span would exceed 10^15 slots)", lambda, n)
	}
	return nil
}

// Poisson is a memoryless arrival process at rate λ (statistical
// arrivals) — the benign baseline shape.
type Poisson struct{}

// Generate implements Arrivals.
func (Poisson) Generate(n int, lambda float64, src *rng.Rand) (dynamic.Workload, error) {
	if err := checkLoad(n, lambda); err != nil {
		return dynamic.Workload{}, err
	}
	return dynamic.PoissonArrivals(n, lambda, src)
}

// Bursty delivers batches of Size simultaneous messages spaced so the
// long-run offered load is λ (the batched worst case §1 of the paper
// cites as frequent in practice). With n ≤ Size messages the shape
// degenerates to a single batch at slot 1 — the paper's static problem.
type Bursty struct {
	// Size is the batch size (default DefaultBurstSize).
	Size int
}

// Generate implements Arrivals.
func (g Bursty) Generate(n int, lambda float64, src *rng.Rand) (dynamic.Workload, error) {
	if err := checkLoad(n, lambda); err != nil {
		return dynamic.Workload{}, err
	}
	size := g.Size
	if size <= 0 {
		size = DefaultBurstSize
	}
	if n < size {
		size = n
	}
	if size == 0 {
		return dynamic.Workload{}, nil
	}
	// Bursts are at least one slot apart, so the shape cannot offer more
	// than size messages per slot; reject rather than mislabel.
	if lambda > float64(size) {
		return dynamic.Workload{}, fmt.Errorf("scenario: offered load %v exceeds the bursty shape's maximum of %d msgs/slot", lambda, size)
	}
	bursts := (n + size - 1) / size
	// Integer gaps can only realize loads of size/gap; pick the gap whose
	// realized load is nearest the requested λ (floor vs ceil compared in
	// load space — gap space would skew badly for λ near size, e.g. λ=43
	// is closer to 64/2=32 than to 64/1=64).
	gap := uint64(float64(size) / lambda) // ≥ 1 since lambda ≤ size
	if lambda-float64(size)/float64(gap+1) < float64(size)/float64(gap)-lambda {
		gap++
	}
	w, err := dynamic.BurstArrivals(bursts, size, gap)
	if err != nil {
		return dynamic.Workload{}, err
	}
	w.Arrivals = w.Arrivals[:n] // drop the last burst's overshoot
	return w, nil
}

// OnOff alternates Poisson arrivals at rate 2λ during on-phases of Phase
// slots with silent off-phases of equal length: the long-run offered load
// is λ but the instantaneous load is doubled, an adversarial duty-cycle
// pattern.
type OnOff struct {
	// Phase is the phase length in slots (default DefaultOnOffPhase).
	Phase uint64
}

// Generate implements Arrivals.
func (g OnOff) Generate(n int, lambda float64, src *rng.Rand) (dynamic.Workload, error) {
	if err := checkLoad(n, lambda); err != nil {
		return dynamic.Workload{}, err
	}
	phase := g.Phase
	if phase == 0 {
		phase = DefaultOnOffPhase
	}
	// Poisson at double rate on the "on-time" axis, then stretch that axis
	// by inserting one silent off-phase after each completed on-phase.
	w, err := dynamic.PoissonArrivals(n, 2*lambda, src)
	if err != nil {
		return dynamic.Workload{}, err
	}
	for i, a := range w.Arrivals {
		on := a - 1
		w.Arrivals[i] = on + (on/phase)*phase + 1
	}
	return w, nil
}

// RhoBounded is the ρ-bounded injection adversary of the adversarial
// queueing model (Bender & Kuszmaul 2020; the adversarial contention-
// resolution survey of 2024): in every prefix [1, t] the adversary may
// inject at most ρ·t + Burst messages, with ρ = λ. The generator is the
// greedy instance of that model — every message arrives at the earliest
// slot the bound admits — which front-loads an initial burst of Burst
// simultaneous messages and then sustains the full rate ρ with zero
// slack, the workload a protocol must drain while already backlogged.
type RhoBounded struct {
	// Burst is the bucket size b (default DefaultAdversaryBurst).
	Burst int
}

// Generate implements Arrivals.
func (g RhoBounded) Generate(n int, lambda float64, src *rng.Rand) (dynamic.Workload, error) {
	if err := checkLoad(n, lambda); err != nil {
		return dynamic.Workload{}, err
	}
	burst := g.Burst
	if burst <= 0 {
		burst = DefaultAdversaryBurst
	}
	arrivals := make([]uint64, n)
	for i := range arrivals {
		if i < burst {
			arrivals[i] = 1
			continue
		}
		// Earliest t with i+1 ≤ ρ·t + b.
		arrivals[i] = uint64(math.Ceil(float64(i+1-burst) / lambda))
	}
	return dynamic.Workload{Arrivals: arrivals}, nil
}

// Herd is the batched "thundering herd" adversary: like Bursty it
// delivers its load in periodic batches, but it splits each herd in two
// and times the second half to land mid-resolution of the first — at the
// moment a batch-oriented protocol has backed off to its largest windows
// and is least prepared for fresh contenders. The timing model assumes
// the protocol drains DrainCost slots per message (the paper's Table 1
// ratios are 2.7–7.4), so the second half arrives DrainCost·Batch/4
// slots into the period, when roughly half of the first half has
// delivered.
type Herd struct {
	// Batch is the full herd size (default DefaultHerdBatch).
	Batch int
	// DrainCost is the assumed drain cost in slots per message (default
	// DefaultHerdDrainCost).
	DrainCost float64
}

// Generate implements Arrivals.
func (g Herd) Generate(n int, lambda float64, src *rng.Rand) (dynamic.Workload, error) {
	if err := checkLoad(n, lambda); err != nil {
		return dynamic.Workload{}, err
	}
	batch := g.Batch
	if batch <= 0 {
		batch = DefaultHerdBatch
	}
	if n < batch {
		batch = n
	}
	if batch == 0 {
		return dynamic.Workload{}, nil
	}
	cost := g.DrainCost
	if cost <= 0 {
		cost = DefaultHerdDrainCost
	}
	// A period carries one herd of batch messages, so the shape cannot
	// offer more than batch/2 msgs/slot (the split needs a period ≥ 2).
	if lambda > float64(batch)/2 {
		return dynamic.Workload{}, fmt.Errorf("scenario: offered load %v exceeds the herd shape's maximum of %g msgs/slot", lambda, float64(batch)/2)
	}
	period := uint64(math.Round(float64(batch) / lambda))
	if period < 2 {
		period = 2
	}
	offset := uint64(math.Round(cost * float64(batch) / 4))
	if offset < 1 {
		offset = 1
	}
	if offset > period-1 {
		offset = period - 1
	}
	first := (batch + 1) / 2
	arrivals := make([]uint64, n)
	for i := range arrivals {
		start := uint64(1) + uint64(i/batch)*period
		if i%batch < first {
			arrivals[i] = start
		} else {
			arrivals[i] = start + offset
		}
	}
	return dynamic.Workload{Arrivals: arrivals}, nil
}

// Adaptive is a greedy adaptive adversary in the ρ-bounded model: it
// watches the backlog of a pilot execution of a reference protocol
// (binary exponential back-off on the event-driven engine) and releases
// each chunk of its message budget at the slot where the backlog so far
// peaked, subject to the injection bound ρ·t + Burst with ρ = λ. The
// resulting schedule is adaptive against the reference execution but
// fixed thereafter, so a sweep can replay the identical schedule against
// every protocol under test (a matched-pairs comparison) and two
// generations under the same seed are byte-identical.
type Adaptive struct {
	// Chunks is the number of injection decisions (default
	// DefaultAdaptiveChunks).
	Chunks int
	// Burst is the bucket size b of the injection bound (default: one
	// chunk).
	Burst int
}

// Generate implements Arrivals.
func (g Adaptive) Generate(n int, lambda float64, src *rng.Rand) (dynamic.Workload, error) {
	if err := checkLoad(n, lambda); err != nil {
		return dynamic.Workload{}, err
	}
	if n == 0 {
		return dynamic.Workload{}, nil
	}
	chunks := g.Chunks
	if chunks <= 0 {
		chunks = DefaultAdaptiveChunks
	}
	if chunks > n {
		chunks = n
	}
	burst := g.Burst
	if burst <= 0 {
		burst = (n + chunks - 1) / chunks
	}
	newRef := func() (protocol.Schedule, error) { return baseline.NewExponentialBackoff(2) }
	pilotSeed := src.Uint64()
	arrivals := make([]uint64, 0, n)
	prev := uint64(1)
	for c := 0; c < chunks; c++ {
		// Chunk sizes differ by at most one across the schedule.
		size := n/chunks + boolToInt(c < n%chunks)
		peak := uint64(1)
		if len(arrivals) > 0 {
			// Pilot-run the schedule so far and read off where the
			// reference protocol's backlog peaked.
			pilot := dynamic.Workload{Arrivals: arrivals}
			res, err := dynamic.RunWindowEvent(pilot, newRef,
				rng.NewStream(pilotSeed, "adaptive-pilot", fmt.Sprint(c)),
				dynamic.WithMaxSlots(pilot.DrainBudget()))
			if err != nil {
				return dynamic.Workload{}, err
			}
			peak = res.PeakBacklogSlot
			if peak < 1 {
				peak = 1
			}
		}
		// Earliest slot the ρ-bound admits for the chunk's last message,
		// never revising the past (the adversary is online).
		placed := len(arrivals) + size
		earliest := uint64(1)
		if placed > burst {
			earliest = uint64(math.Ceil(float64(placed-burst) / lambda))
		}
		slot := prev
		if earliest > slot {
			slot = earliest
		}
		if peak > slot {
			slot = peak
		}
		for i := 0; i < size; i++ {
			arrivals = append(arrivals, slot)
		}
		prev = slot
	}
	return dynamic.Workload{Arrivals: arrivals}, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
