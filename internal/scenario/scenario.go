// Package scenario describes dynamic-arrival workloads beyond the benign
// statistical shapes: adversarial injection schedules, channel
// impairments, and heterogeneous station populations. It is the
// composable workload axis the adversarial contention-resolution
// literature studies (Bender & Kuszmaul, "Contention Resolution Without
// Collision Detection"; the 2024 survey on adversarial contention
// resolution) layered over the paper's dynamic (§6 future work)
// extension.
//
// A Workload composes three orthogonal ingredients:
//
//   - Arrivals: who arrives when — the benign Poisson/Bursty/OnOff
//     shapes, a ρ-bounded greedy injection adversary, a batched
//     "thundering herd" adversary that times bursts to land
//     mid-resolution, and a greedy adaptive adversary that injects where
//     a pilot execution's backlog peaks.
//
//   - Channel: whether slots can be destroyed — random or periodic
//     jamming that turns any transmission into noise, so even a lone
//     transmitter fails.
//
//   - Population: who else is on the channel — a fraction of stations
//     running a fixed background protocol, so the protocol under test
//     must coexist with strangers instead of its own kind.
//
// Instantiate resolves a Workload into one concrete, immutable Instance
// (arrival slots, jam mask, population assignment). Every derived
// function is deterministic in the generation source, so a sweep can
// offer the identical instance to every protocol (matched pairs) and two
// runs under one seed are byte-identical. internal/throughput consumes
// Instances for its λ-sweep; mac.EvaluateDynamic and `macsim scenario`
// surface the catalog. docs/paper-map.md places each workload against
// the adversarial contention-resolution literature it models.
package scenario

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/baseline"
	"repro/internal/dynamic"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Channel models slot impairments: a jam mask over the channel's slots.
// An implementation must be stateless given its key so that the
// slot-skipping event engine and the per-slot simulator observe the
// identical mask regardless of which slots they visit.
type Channel interface {
	// Mask returns the execution's jam predicate, seeded by key. The
	// predicate must be pure: the same slot always yields the same
	// answer, independent of call order.
	Mask(key uint64) func(slot uint64) bool
}

// slotHash mixes a mask key and a slot index through the SplitMix64
// finalizer — a stateless hash, so masks are call-order independent.
func slotHash(key, slot uint64) uint64 {
	x := key + slot*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// probThreshold maps a probability to the uint64 threshold below which a
// uniform slotHash value is a hit. The product saturates: for p within
// one ulp of 1 the float rounds to exactly 2⁶⁴, whose uint64 conversion
// is implementation-specific per the Go spec.
func probThreshold(p float64) uint64 {
	const span = float64(1<<63) * 2 // 2⁶⁴
	f := p * span
	if f >= span {
		return ^uint64(0)
	}
	return uint64(f)
}

// JamRandom jams each slot independently with probability Rate ∈ [0, 1):
// a memoryless noise process under which any transmission in a jammed
// slot is destroyed.
type JamRandom struct {
	Rate float64
}

// Mask implements Channel.
func (j JamRandom) Mask(key uint64) func(slot uint64) bool {
	thresh := probThreshold(j.Rate)
	return func(slot uint64) bool { return slotHash(key, slot) < thresh }
}

// validate rejects rates that jam nothing or everything.
func (j JamRandom) validate() error {
	if !(j.Rate > 0 && j.Rate < 1) {
		return fmt.Errorf("scenario: jam rate must be in (0, 1), got %v", j.Rate)
	}
	return nil
}

// JamPeriodic jams the first Burst slots of every Period slots — a
// deterministic duty-cycle jammer (e.g. a co-channel beacon).
type JamPeriodic struct {
	Period, Burst uint64
}

// Mask implements Channel.
func (j JamPeriodic) Mask(uint64) func(slot uint64) bool {
	return func(slot uint64) bool { return (slot-1)%j.Period < j.Burst }
}

// validate rejects degenerate periods.
func (j JamPeriodic) validate() error {
	if j.Period < 2 || j.Burst < 1 || j.Burst >= j.Period {
		return fmt.Errorf("scenario: periodic jam needs 1 ≤ burst < period and period ≥ 2, got burst %d, period %d", j.Burst, j.Period)
	}
	return nil
}

// Population mixes a second station kind into the run: each message's
// station is drawn from the background kind with probability Fraction,
// so the protocol under test shares the channel with a fixed crowd
// instead of its own kind — the heterogeneous-deployment question no
// batched analysis covers.
type Population struct {
	// Fraction ∈ (0, 1) of stations drawn from the background kind.
	Fraction float64
	// Background names the background kind for display.
	Background string
	// NewBackground builds one background station per assigned message.
	// It must be safe for concurrent use (executions run in parallel).
	NewBackground func() (protocol.Station, error)
}

// validate rejects fractions that mix nothing or everything.
func (p *Population) validate() error {
	if !(p.Fraction > 0 && p.Fraction < 1) {
		return fmt.Errorf("scenario: population fraction must be in (0, 1), got %v", p.Fraction)
	}
	if p.NewBackground == nil {
		return fmt.Errorf("scenario: population %q has no background station constructor", p.Background)
	}
	return nil
}

// Workload is a composable scenario description: an arrival schedule
// plus optional channel impairments and a heterogeneous population.
type Workload struct {
	// Name identifies the scenario on the CLI and in rng stream labels.
	Name string
	// Arrivals generates the arrival schedule (required).
	Arrivals Arrivals
	// Channel, if non-nil, impairs slots with a jam mask.
	Channel Channel
	// Population, if non-nil, mixes background stations into the run.
	Population *Population
}

// Instance is one concrete realization of a Workload: the materialized
// arrival slots plus the execution's jam mask and population assignment.
// Nil function fields mean a clean channel / homogeneous population.
type Instance struct {
	// Arrivals is the materialized arrival schedule.
	Arrivals dynamic.Workload
	// Jammed reports whether the adversary jams a slot (nil = clean).
	Jammed func(slot uint64) bool
	// Background reports whether message i's station is drawn from the
	// background population (nil = homogeneous).
	Background func(i int) bool
	// NewBackground builds one background station (set iff Background
	// is).
	NewBackground func() (protocol.Station, error)
}

// Instantiate resolves the workload into a concrete Instance of n
// messages at offered load lambda, drawing all randomness from src.
// Identical (workload, n, lambda, src state) yield identical instances.
func (w Workload) Instantiate(n int, lambda float64, src *rng.Rand) (Instance, error) {
	if w.Arrivals == nil {
		return Instance{}, fmt.Errorf("scenario: workload %q has no arrival generator", w.Name)
	}
	var inst Instance
	if w.Channel != nil {
		if v, ok := w.Channel.(interface{ validate() error }); ok {
			if err := v.validate(); err != nil {
				return Instance{}, err
			}
		}
	}
	if w.Population != nil {
		if err := w.Population.validate(); err != nil {
			return Instance{}, err
		}
	}
	// Generate arrivals before drawing the mask and population keys, so
	// adding impairments to a scenario leaves its arrival schedule
	// unchanged: a clean-vs-jammed comparison is matched on arrivals, and
	// the benign shapes consume exactly the stream they always did.
	arr, err := w.Arrivals.Generate(n, lambda, src)
	if err != nil {
		return Instance{}, err
	}
	inst.Arrivals = arr
	if w.Channel != nil {
		inst.Jammed = w.Channel.Mask(src.Uint64())
	}
	if w.Population != nil {
		key := src.Uint64()
		thresh := probThreshold(w.Population.Fraction)
		inst.Background = func(i int) bool { return slotHash(key, uint64(i)) < thresh }
		inst.NewBackground = w.Population.NewBackground
	}
	return inst, nil
}

// NewBackgroundBackoff builds binary-exponential-backoff stations, the
// standard background crowd of the mixed-population scenario.
func NewBackgroundBackoff() (protocol.Station, error) {
	sched, err := baseline.NewExponentialBackoff(2)
	if err != nil {
		return nil, err
	}
	return protocol.NewWindowStation(sched), nil
}

// Catalog returns the named scenario lineup: the benign shapes of the
// throughput sweep plus the adversarial and heterogeneous workloads this
// package adds. The returned slice is freshly allocated.
func Catalog() []Workload {
	return []Workload{
		{Name: "poisson", Arrivals: Poisson{}},
		{Name: "bursty", Arrivals: Bursty{}},
		{Name: "onoff", Arrivals: OnOff{}},
		{Name: "rho", Arrivals: RhoBounded{}},
		{Name: "herd", Arrivals: Herd{}},
		{Name: "adaptive", Arrivals: Adaptive{}},
		{Name: "jammed", Arrivals: Poisson{}, Channel: JamRandom{Rate: 0.1}},
		{Name: "mixed", Arrivals: Poisson{}, Population: &Population{
			Fraction:      0.5,
			Background:    "Binary Exp Backoff",
			NewBackground: NewBackgroundBackoff,
		}},
	}
}

// Names returns the catalog's scenario names, sorted.
func Names() []string {
	cat := Catalog()
	names := make([]string, len(cat))
	for i, w := range cat {
		names[i] = w.Name
	}
	sort.Strings(names)
	return names
}

// ByName resolves a catalog scenario by name, as used by the macsim CLI.
func ByName(name string) (Workload, error) {
	for _, w := range Catalog() {
		if strings.EqualFold(name, w.Name) {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("scenario: unknown scenario %q (valid: %s)", name, strings.Join(Names(), ", "))
}
