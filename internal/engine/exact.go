package engine

import (
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sim"
)

// exactRun drives the per-node simulator and adapts its result and
// options to this package's conventions.
func exactRun(stations []protocol.Station, src *rng.Rand, maxSlots uint64) (uint64, error) {
	if maxSlots == 0 {
		maxSlots = DefaultMaxSlots
	}
	res, err := sim.Run(stations, src, sim.WithMaxSlots(maxSlots))
	if err != nil {
		return 0, err
	}
	return res.Slots, nil
}
