package engine

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/stats"
)

func newOFA(t testing.TB) protocol.Controller {
	t.Helper()
	ctrl, err := core.NewOneFailAdaptive(core.DefaultOFADelta)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func newEBB(t testing.TB) protocol.Schedule {
	t.Helper()
	sched, err := core.NewExpBackonBackoff(core.DefaultEBBDelta)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

func TestSuccessProb(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		m    int
		p    float64
		want float64
	}{
		{name: "no stations", m: 0, p: 0.5, want: 0},
		{name: "negative m", m: -3, p: 0.5, want: 0},
		{name: "zero prob", m: 10, p: 0, want: 0},
		{name: "single station", m: 1, p: 0.25, want: 0.25},
		{name: "single station certain", m: 1, p: 1, want: 1},
		{name: "two stations p=1 collide", m: 2, p: 1, want: 0},
		{name: "two stations", m: 2, p: 0.5, want: 0.5}, // 2·(1/2)·(1/2)
		{name: "optimal p=1/m", m: 4, p: 0.25, want: 4 * 0.25 * 0.75 * 0.75 * 0.75},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			if got := SuccessProb(tt.m, tt.p); math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("SuccessProb(%d, %v) = %v, want %v", tt.m, tt.p, got, tt.want)
			}
		})
	}
}

func TestSuccessProbLargeM(t *testing.T) {
	t.Parallel()
	// m·p = 1 with huge m: P₁ → e^{-1}.
	const m = 10_000_000
	got := SuccessProb(m, 1.0/m)
	want := math.Exp(-1)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("SuccessProb(1e7, 1e-7) = %v, want ~1/e = %v", got, want)
	}
}

func TestFairRunTrivial(t *testing.T) {
	t.Parallel()
	steps, err := FairRun(0, newOFA(t), rng.New(1), 0)
	if err != nil || steps != 0 {
		t.Fatalf("k=0: (%d, %v), want (0, nil)", steps, err)
	}
	if _, err := FairRun(-1, newOFA(t), rng.New(1), 0); err == nil {
		t.Fatal("k=-1 accepted, want error")
	}
	// k=1 OFA delivers by slot 2 (BT prob 1 at σ=0).
	for seed := uint64(0); seed < 100; seed++ {
		steps, err := FairRun(1, newOFA(t), rng.New(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		if steps > 2 {
			t.Fatalf("k=1 completed at %d, want ≤ 2", steps)
		}
	}
}

func TestFairRunSlotLimit(t *testing.T) {
	t.Parallel()
	// A controller that never lets anyone transmit can never finish.
	_, err := FairRun(2, silentController{}, rng.New(1), 1000)
	if !errors.Is(err, ErrSlotLimit) {
		t.Fatalf("error = %v, want ErrSlotLimit", err)
	}
}

type silentController struct{}

func (silentController) Prob(uint64) float64  { return 0 }
func (silentController) Observe(uint64, bool) {}

func TestWindowRunTrivial(t *testing.T) {
	t.Parallel()
	var r WindowRunner
	steps, err := r.Run(0, newEBB(t), rng.New(1), 0)
	if err != nil || steps != 0 {
		t.Fatalf("k=0: (%d, %v), want (0, nil)", steps, err)
	}
	if _, err := r.Run(-2, newEBB(t), rng.New(1), 0); err == nil {
		t.Fatal("k=-2 accepted, want error")
	}
	for seed := uint64(0); seed < 100; seed++ {
		steps, err := r.Run(1, newEBB(t), rng.New(seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		if steps > 2 {
			t.Fatalf("k=1 completed at %d, want ≤ 2 (first window)", steps)
		}
	}
}

func TestWindowRunSlotLimit(t *testing.T) {
	t.Parallel()
	// Window size 1 with 2 stations: both transmit every slot, never succeed.
	fixed, err := baseline.NewFixedWindow(1)
	if err != nil {
		t.Fatal(err)
	}
	var r WindowRunner
	_, err = r.Run(2, fixed, rng.New(1), 10_000)
	if !errors.Is(err, ErrSlotLimit) {
		t.Fatalf("error = %v, want ErrSlotLimit", err)
	}
}

func TestWindowRunRejectsBadSchedule(t *testing.T) {
	t.Parallel()
	var r WindowRunner
	_, err := r.Run(2, badSchedule{}, rng.New(1), 0)
	if err == nil {
		t.Fatal("schedule returning 0 accepted, want error")
	}
}

type badSchedule struct{}

func (badSchedule) NextWindow() int { return 0 }

// TestBallsInBinsBranchesAgree verifies the two balls-in-bins samplers
// (per-ball and per-bin) agree in distribution on delivered counts, via a
// chi-square-style comparison of empirical PMFs.
// TestFairEngineMatchesExact is the central validity check for the O(1)/slot
// engine: the completion-time distribution of the aggregate simulation
// must match the per-node simulation (two-sample KS test at ~99.9%).
func TestFairEngineMatchesExact(t *testing.T) {
	t.Parallel()
	for _, k := range []int{2, 3, 8, 32} {
		k := k
		t.Run(fmt.Sprintf("OFA_k=%d", k), func(t *testing.T) {
			t.Parallel()
			const draws = 4000
			agg := make([]float64, draws)
			exact := make([]float64, draws)
			for i := 0; i < draws; i++ {
				s1, err := FairRun(k, newOFA(t), rng.NewStream(5, "agg", fmt.Sprint(k), fmt.Sprint(i)), 0)
				if err != nil {
					t.Fatal(err)
				}
				agg[i] = float64(s1)
				s2, err := ExactFairRun(k, func() protocol.Controller { return newOFA(t) },
					rng.NewStream(5, "exact", fmt.Sprint(k), fmt.Sprint(i)), 0)
				if err != nil {
					t.Fatal(err)
				}
				exact[i] = float64(s2)
			}
			crit := 1.95 * math.Sqrt(2.0/draws)
			if d := stats.KSDistance(agg, exact); d > crit {
				t.Fatalf("aggregate vs exact completion time: KS distance %v > %v", d, crit)
			}
		})
	}
}

// TestWindowEngineMatchesExact: same validity check for the windowed
// engine against per-node window stations.
func TestWindowEngineMatchesExact(t *testing.T) {
	t.Parallel()
	for _, k := range []int{2, 3, 8, 32} {
		k := k
		t.Run(fmt.Sprintf("EBB_k=%d", k), func(t *testing.T) {
			t.Parallel()
			const draws = 4000
			agg := make([]float64, draws)
			exact := make([]float64, draws)
			var runner WindowRunner
			for i := 0; i < draws; i++ {
				s1, err := runner.Run(k, newEBB(t), rng.NewStream(6, "agg", fmt.Sprint(k), fmt.Sprint(i)), 0)
				if err != nil {
					t.Fatal(err)
				}
				agg[i] = float64(s1)
				s2, err := ExactWindowRun(k, func() protocol.Schedule { return newEBB(t) },
					rng.NewStream(6, "exact", fmt.Sprint(k), fmt.Sprint(i)), 0)
				if err != nil {
					t.Fatal(err)
				}
				exact[i] = float64(s2)
			}
			crit := 1.95 * math.Sqrt(2.0/draws)
			if d := stats.KSDistance(agg, exact); d > crit {
				t.Fatalf("aggregate vs exact completion time: KS distance %v > %v", d, crit)
			}
		})
	}
}

// TestLFAEngineMatchesExact cross-validates the Log-Fails Adaptive
// controller between engines as well (it exercises the non-alternating
// BT allotment path).
func TestLFAEngineMatchesExact(t *testing.T) {
	t.Parallel()
	const k, draws = 8, 3000
	newLFA := func() protocol.Controller {
		ctrl, err := baseline.NewLogFailsAdaptive(1.0/(float64(k)+1), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	}
	agg := make([]float64, draws)
	exact := make([]float64, draws)
	for i := 0; i < draws; i++ {
		s1, err := FairRun(k, newLFA(), rng.NewStream(7, "agg", fmt.Sprint(i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		agg[i] = float64(s1)
		s2, err := ExactFairRun(k, newLFA, rng.NewStream(7, "exact", fmt.Sprint(i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		exact[i] = float64(s2)
	}
	crit := 1.95 * math.Sqrt(2.0/draws)
	if d := stats.KSDistance(agg, exact); d > crit {
		t.Fatalf("aggregate vs exact completion time: KS distance %v > %v", d, crit)
	}
}

// TestTheorem1Bound: One-Fail Adaptive must complete within
// 2(δ+1)k + O(log²k) slots with probability ≥ 1 − 2/(1+k). We run many
// executions and require the empirical violation rate of the bound (with
// a calibrated constant on the additive term) to stay below 2/(1+k) plus
// sampling slack.
func TestTheorem1Bound(t *testing.T) {
	t.Parallel()
	for _, k := range []int{64, 256, 1024} {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			t.Parallel()
			const runs = 300
			logK := math.Log2(float64(k))
			bound := 2*(core.DefaultOFADelta+1)*float64(k) + 40*logK*logK
			violations := 0
			for i := 0; i < runs; i++ {
				steps, err := FairRun(k, newOFA(t), rng.NewStream(8, fmt.Sprint(k), fmt.Sprint(i)), 0)
				if err != nil {
					t.Fatal(err)
				}
				if float64(steps) > bound {
					violations++
				}
			}
			allowed := 2.0/float64(1+k)*runs + 6*math.Sqrt(2.0/float64(1+k)*runs) + 3
			if float64(violations) > allowed {
				t.Fatalf("bound %0.f violated %d/%d times, allowed ~%.1f", bound, violations, runs, allowed)
			}
		})
	}
}

// TestTheorem2Bound: Exp Back-on/Back-off must complete within 4(1+1/δ)k
// slots w.h.p. for big enough k.
func TestTheorem2Bound(t *testing.T) {
	t.Parallel()
	for _, k := range []int{64, 256, 1024} {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			t.Parallel()
			const runs = 300
			bound := 4 * (1 + 1/core.DefaultEBBDelta) * float64(k)
			var runner WindowRunner
			violations := 0
			for i := 0; i < runs; i++ {
				steps, err := runner.Run(k, newEBB(t), rng.NewStream(9, fmt.Sprint(k), fmt.Sprint(i)), 0)
				if err != nil {
					t.Fatal(err)
				}
				if float64(steps) > bound {
					violations++
				}
			}
			if violations > 0 {
				t.Fatalf("4(1+1/δ)k = %.0f violated %d/%d times", bound, violations, runs)
			}
		})
	}
}

// TestWindowTrace checks the per-window trace callback invariants.
func TestWindowTrace(t *testing.T) {
	t.Parallel()
	var runner WindowRunner
	total := 0
	runner.SetTrace(func(w WindowResult) {
		if w.Window < 1 {
			t.Fatalf("traced window %d < 1", w.Window)
		}
		if w.Delivered < 0 || w.Delivered > w.Active {
			t.Fatalf("delivered %d of %d active", w.Delivered, w.Active)
		}
		if w.Delivered > 0 && (w.LastSlot < 1 || w.LastSlot > w.Window) {
			t.Fatalf("last slot %d outside window %d", w.LastSlot, w.Window)
		}
		total += w.Delivered
	})
	const k = 100
	if _, err := runner.Run(k, newEBB(t), rng.New(3), 0); err != nil {
		t.Fatal(err)
	}
	if total != k {
		t.Fatalf("trace saw %d deliveries, want %d", total, k)
	}
}

// TestRunnerScratchReuse: a single WindowRunner used across runs must not
// leak state between executions (the counts buffer is epoch-free and must
// be fully cleared).
func TestRunnerScratchReuse(t *testing.T) {
	t.Parallel()
	var runner WindowRunner
	a := make([]uint64, 0, 20)
	for i := 0; i < 20; i++ {
		s, err := runner.Run(50, newEBB(t), rng.NewStream(10, fmt.Sprint(i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		a = append(a, s)
	}
	// Fresh runners with the same seeds must reproduce identical results.
	for i := 0; i < 20; i++ {
		var fresh WindowRunner
		s, err := fresh.Run(50, newEBB(t), rng.NewStream(10, fmt.Sprint(i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		if s != a[i] {
			t.Fatalf("run %d: reused runner %d vs fresh runner %d", i, a[i], s)
		}
	}
}

func BenchmarkFairRunOFA(b *testing.B) {
	for _, k := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctrl, _ := core.NewOneFailAdaptive(core.DefaultOFADelta)
				if _, err := FairRun(k, ctrl, rng.NewStream(1, fmt.Sprint(i)), 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWindowRunEBB(b *testing.B) {
	for _, k := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var runner WindowRunner
			for i := 0; i < b.N; i++ {
				sched, _ := core.NewExpBackonBackoff(core.DefaultEBBDelta)
				if _, err := runner.Run(k, sched, rng.NewStream(1, fmt.Sprint(i)), 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExactRunOFA(b *testing.B) {
	const k = 1000
	for i := 0; i < b.N; i++ {
		_, err := ExactFairRun(k, func() protocol.Controller {
			ctrl, _ := core.NewOneFailAdaptive(core.DefaultOFADelta)
			return ctrl
		}, rng.NewStream(1, fmt.Sprint(i)), 0)
		if err != nil {
			b.Fatal(err)
		}
	}
}
