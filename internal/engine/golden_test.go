package engine

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cd"
	"repro/internal/core"
	"repro/internal/rng"
)

// TestGoldenCompletions pins exact completion slots for fixed seeds
// across every protocol family and engine. These are regression anchors:
// any change to an algorithm's decision sequence, to an engine's sampling
// order, or to the RNG stream derivation shows up here immediately. The
// values carry no meaning beyond "the behaviour on 2026-06-11, when the
// Table 1 reproduction was validated" — if a deliberate change breaks
// them, regenerate and re-validate Table 1.
func TestGoldenCompletions(t *testing.T) {
	t.Parallel()
	golden := []struct {
		protocol string
		k        int
		want     uint64
	}{
		{protocol: "ofa", k: 7, want: 24},
		{protocol: "ofa", k: 64, want: 438},
		{protocol: "ofa", k: 513, want: 3714},
		{protocol: "ebb", k: 7, want: 15},
		{protocol: "ebb", k: 64, want: 330},
		{protocol: "ebb", k: 513, want: 2707},
		{protocol: "lfa", k: 7, want: 17},
		{protocol: "lfa", k: 64, want: 13838},
		{protocol: "lfa", k: 513, want: 80973},
		{protocol: "llib", k: 7, want: 33},
		{protocol: "llib", k: 64, want: 251},
		{protocol: "llib", k: 513, want: 3421},
		{protocol: "tree", k: 7, want: 15},
		{protocol: "tree", k: 64, want: 169},
		{protocol: "tree", k: 513, want: 1453},
	}
	for _, tt := range golden {
		tt := tt
		t.Run(fmt.Sprintf("%s/k=%d", tt.protocol, tt.k), func(t *testing.T) {
			t.Parallel()
			src := rng.NewStream(12345, "golden", tt.protocol, fmt.Sprint(tt.k))
			var (
				got uint64
				err error
			)
			switch tt.protocol {
			case "ofa":
				ctrl, cerr := core.NewOneFailAdaptive(core.DefaultOFADelta)
				if cerr != nil {
					t.Fatal(cerr)
				}
				got, err = FairRun(tt.k, ctrl, src, 0)
			case "ebb":
				sched, cerr := core.NewExpBackonBackoff(core.DefaultEBBDelta)
				if cerr != nil {
					t.Fatal(cerr)
				}
				var r WindowRunner
				got, err = r.Run(tt.k, sched, src, 0)
			case "lfa":
				ctrl, cerr := baseline.NewLogFailsAdaptive(1/float64(tt.k+1), 0.5)
				if cerr != nil {
					t.Fatal(cerr)
				}
				got, err = FairRun(tt.k, ctrl, src, 0)
			case "llib":
				sched, cerr := baseline.NewLoglogIteratedBackoff(2)
				if cerr != nil {
					t.Fatal(cerr)
				}
				var r WindowRunner
				got, err = r.Run(tt.k, sched, src, 0)
			case "tree":
				got, err = cd.TreeRun(tt.k, src, 0)
			default:
				t.Fatalf("unknown protocol %q", tt.protocol)
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("%s k=%d completed at slot %d, golden value %d", tt.protocol, tt.k, got, tt.want)
			}
		})
	}
}
