// Package engine provides scalable simulators for the two protocol
// families, exact in distribution with respect to the per-node simulator
// in internal/sim.
//
// # Why aggregation is exact
//
// Fair protocols (One-Fail Adaptive, Log-Fails Adaptive): every active
// station transmits with the same probability p each slot, and the shared
// state evolves only on globally observable events. With m active
// stations the slot is successful with probability
//
//	P₁(m, p) = m·p·(1−p)^(m−1),
//
// and the system state (m, controller state) is a Markov chain whose
// transitions depend only on whether the slot succeeded. By symmetry the
// identity of the deliverer is irrelevant to the completion time, so
// sampling success ~ Bernoulli(P₁) per slot reproduces the completion-time
// distribution of the per-node simulation exactly.
//
// Windowed protocols (Exp Back-on/Back-off, the back-off family): within
// one window of w slots, each of the m active stations picks one slot
// uniformly at random — m balls thrown into w bins. Deliveries are the
// bins with exactly one ball. The joint bin occupancy (N₁,…,N_w) is
// multinomial and can be sampled bin-by-bin in slot order as
//
//	N_j ~ Binomial(m − Σ_{i<j} N_i, 1/(w−j+1)),
//
// costing O(w) binomial draws, ball-by-ball costing O(m) uniform draws,
// or — for saturated windows — by drawing the singleton count directly
// from its inclusion–exclusion distribution in O(1) (kernel.Window picks
// the cheapest exact sampler per window). Stations that deliver
// leave at their chosen slot and do not affect others' already-made
// choices, so per-window aggregation is exact, including the slot index
// of the final delivery.
//
// Statistical agreement between these engines and internal/sim is
// enforced by the tests in this package (Kolmogorov–Smirnov tests on
// completion-time distributions, plus closed-form cases).
package engine

import (
	"errors"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// ErrSlotLimit is returned when an execution exceeds its slot budget
// before all messages are delivered.
var ErrSlotLimit = errors.New("engine: slot limit exceeded before all messages were delivered")

// DefaultMaxSlots is the default execution cap. Every protocol in this
// repository completes k = 10⁷ within ~1.5·10⁸ slots; the cap only exists
// to terminate livelocked protocols under test.
const DefaultMaxSlots = 10_000_000_000

// SuccessProb returns P₁(m, p) = m·p·(1−p)^(m−1), the probability that a
// slot carries a successful delivery when m active stations each transmit
// with probability p. It is shared with the event-skip kernel.
func SuccessProb(m int, p float64) float64 {
	return kernel.SuccessProb(m, p)
}

// FairRun simulates static k-selection under the fair protocol ctrl and
// returns the number of slots until the k-th delivery. maxSlots of 0
// means DefaultMaxSlots.
//
// Controllers that implement protocol.SkipController (One-Fail Adaptive,
// Log-Fails Adaptive) run on the event-skip kernel: O(1) work per
// delivery and per controller phase, independent of the number of silent
// slots. Other controllers fall back to the per-slot reference loop
// FairRunSlot. The two paths consume randomness differently but are
// identical in distribution (enforced by KS tests in this package).
func FairRun(k int, ctrl protocol.Controller, src *rng.Rand, maxSlots uint64) (uint64, error) {
	if maxSlots == 0 {
		maxSlots = DefaultMaxSlots
	}
	if sc, ok := ctrl.(protocol.SkipController); ok {
		slots, err := kernel.FairRun(k, sc, src, maxSlots)
		if err != nil && errors.Is(err, kernel.ErrSlotLimit) {
			err = fmt.Errorf("%w (%v)", ErrSlotLimit, err)
		}
		return slots, err
	}
	return FairRunSlot(k, ctrl, src, maxSlots)
}

// FairRunSlot is the per-slot reference implementation of FairRun: O(1)
// work per slot. It remains exported as the distributional reference the
// event-skip path is validated against, and as the driver for controllers
// without skip-safe phases. maxSlots of 0 means DefaultMaxSlots.
func FairRunSlot(k int, ctrl protocol.Controller, src *rng.Rand, maxSlots uint64) (uint64, error) {
	if k < 0 {
		return 0, fmt.Errorf("engine: negative k %d", k)
	}
	if maxSlots == 0 {
		maxSlots = DefaultMaxSlots
	}
	m := k
	if m == 0 {
		return 0, nil
	}
	for slot := uint64(1); slot <= maxSlots; slot++ {
		p := ctrl.Prob(slot)
		success := src.Bernoulli(SuccessProb(m, p))
		if success {
			m--
		}
		ctrl.Observe(slot, success)
		if m == 0 {
			return slot, nil
		}
	}
	return 0, fmt.Errorf("%w (limit %d, remaining %d of %d)", ErrSlotLimit, maxSlots, m, k)
}

// WindowResult reports one window of a windowed execution, for tracing
// and tests.
type WindowResult struct {
	Window    int // window length in slots
	Active    int // stations active at the window start
	Delivered int // singleton slots in this window
	LastSlot  int // 1-based slot index within the window of the last delivery, 0 if none
}

// WindowRunner simulates windowed protocols. The zero value is ready to
// use; reusing a runner across executions amortizes its scratch buffers
// (which reach O(max window) size).
//
// Window sampling is delegated to kernel.Window, which picks per window
// among an O(m) ball-by-ball sampler, an O(w) binomial-chain sampler, and
// an O(1) direct draw of the singleton count for saturated windows — all
// exact in distribution (see internal/kernel).
type WindowRunner struct {
	occ   kernel.Window
	trace func(WindowResult)
}

// SetTrace installs a per-window callback (nil disables tracing).
func (r *WindowRunner) SetTrace(fn func(WindowResult)) { r.trace = fn }

// Run simulates static k-selection under the windowed protocol sched and
// returns the number of slots until the k-th delivery. maxSlots of 0
// means DefaultMaxSlots.
func (r *WindowRunner) Run(k int, sched protocol.Schedule, src *rng.Rand, maxSlots uint64) (uint64, error) {
	if k < 0 {
		return 0, fmt.Errorf("engine: negative k %d", k)
	}
	if maxSlots == 0 {
		maxSlots = DefaultMaxSlots
	}
	m := k
	if m == 0 {
		return 0, nil
	}
	base := uint64(0) // slots consumed by completed windows
	for {
		w := sched.NextWindow()
		if w < 1 {
			return 0, fmt.Errorf("engine: schedule %T returned window %d < 1", sched, w)
		}
		if base+uint64(w) > maxSlots {
			return 0, fmt.Errorf("%w (limit %d, remaining %d of %d)", ErrSlotLimit, maxSlots, m, k)
		}
		delivered, last := r.occ.Step(m, w, src)
		m -= delivered
		if r.trace != nil {
			r.trace(WindowResult{Window: w, Active: m + delivered, Delivered: delivered, LastSlot: last})
		}
		if m == 0 {
			return base + uint64(last), nil
		}
		base += uint64(w)
	}
}

// ExactFairRun runs the fair protocol via the per-node simulator in
// internal/sim, with one private controller per station built by
// newCtrl. It exists for cross-validation and small-scale studies.
func ExactFairRun(k int, newCtrl func() protocol.Controller, src *rng.Rand, maxSlots uint64) (uint64, error) {
	stations := make([]protocol.Station, k)
	for i := range stations {
		stations[i] = protocol.NewFairStation(newCtrl())
	}
	return exactRun(stations, src, maxSlots)
}

// ExactWindowRun runs the windowed protocol via the per-node simulator in
// internal/sim, with one private schedule per station built by newSched.
func ExactWindowRun(k int, newSched func() protocol.Schedule, src *rng.Rand, maxSlots uint64) (uint64, error) {
	stations := make([]protocol.Station, k)
	for i := range stations {
		stations[i] = protocol.NewWindowStation(newSched())
	}
	return exactRun(stations, src, maxSlots)
}
