// Package montecarlo is the adaptive-precision replication engine every
// repeated-simulation entry point routes through: the static sweeps of
// internal/harness and the λ-sweeps of internal/throughput both
// delegate their "how many runs is enough?" decision here.
//
// The paper's guarantees are stated in expectation and with high
// probability, so any reported point estimate carries Monte Carlo
// error. A fixed repetition count either over-simulates easy
// (low-variance) points or under-simulates hard ones. This engine
// instead replicates until the Student-t confidence interval for the
// mean of the primary metric is narrower than a requested relative
// precision ε at confidence level c — "throughput to ±1% at 95%" as an
// input rather than an afterthought — subject to MinReps/MaxReps
// bounds.
//
// Determinism is load-bearing throughout this repository (canonical
// cache keys, byte-identical front ends, golden tests), so the engine
// is deterministic by construction:
//
//   - Replication r always computes the same value: the caller derives
//     each replication's randomness from its index r alone (the same
//     (seed, labels, rep) streams fixed-rep mode uses), never from
//     scheduling.
//   - The stopping decision is evaluated only at fixed checkpoints
//     (MinReps, then ×3/2 growth, then MaxReps), with all replications
//     up to the checkpoint folded in index order. The checkpoint
//     schedule depends only on the Precision, never on Parallelism or
//     GOMAXPROCS, so a laptop and a 64-core server stop at the same
//     replication count.
//
// Within a batch, replications run concurrently across a worker pool
// sized to GOMAXPROCS (or the caller's bound); parallelism changes only
// wall-clock time, never results.
package montecarlo

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/stats"
)

// Precision is the adaptive stopping rule: replicate until the
// two-sided Student-t confidence interval for the mean of the primary
// metric, at level Confidence, has half-width ≤ Epsilon·|mean|. The
// zero value (Epsilon 0) disables adaptivity — fixed-rep mode.
type Precision struct {
	// Epsilon is the requested relative precision (0.01 = ±1%). It must
	// be in (0, 1); 0 means adaptive stopping is disabled.
	Epsilon float64
	// Confidence is the two-sided confidence level of the interval
	// (default 0.95); must be in (0, 1).
	Confidence float64
	// MinReps is the minimum number of replications before the stopping
	// rule is first consulted (default 3, minimum 2 — variance needs two
	// observations).
	MinReps int
	// MaxReps caps replications when the target precision is not reached
	// (default 64). MinReps == MaxReps reproduces fixed-rep mode exactly:
	// the same replication indices, hence the same streams and results.
	MaxReps int
}

// Enabled reports whether adaptive stopping is requested.
func (p Precision) Enabled() bool { return p.Epsilon > 0 }

// Defaults for the optional Precision fields.
const (
	DefaultConfidence = 0.95
	DefaultMinReps    = 3
	DefaultMaxReps    = 64
)

// WithDefaults fills unset optional fields. It does not validate;
// Validate does.
func (p Precision) WithDefaults() Precision {
	if p.Confidence == 0 {
		p.Confidence = DefaultConfidence
	}
	if p.MinReps == 0 {
		p.MinReps = DefaultMinReps
	}
	if p.MaxReps == 0 {
		p.MaxReps = DefaultMaxReps
	}
	return p
}

// Validate checks a Precision with defaults applied. The zero value
// (adaptivity disabled) is valid.
func (p Precision) Validate() error {
	if math.IsNaN(p.Epsilon) || p.Epsilon < 0 {
		// A malformed epsilon must not silently read as "disabled".
		return fmt.Errorf("montecarlo: epsilon must be in (0, 1), got %v", p.Epsilon)
	}
	if !p.Enabled() {
		return nil
	}
	if p.Epsilon >= 1 {
		return fmt.Errorf("montecarlo: epsilon must be in (0, 1), got %v", p.Epsilon)
	}
	if !(p.Confidence > 0 && p.Confidence < 1) {
		return fmt.Errorf("montecarlo: confidence must be in (0, 1), got %v", p.Confidence)
	}
	if p.MinReps < 2 {
		return fmt.Errorf("montecarlo: minReps must be ≥ 2, got %d", p.MinReps)
	}
	if p.MaxReps < p.MinReps {
		return fmt.Errorf("montecarlo: maxReps must be ≥ minReps (%d), got %d", p.MinReps, p.MaxReps)
	}
	return nil
}

// checkpoints returns the replication counts at which the stopping rule
// is consulted: MinReps, then ×3/2 growth (at least +1), capped at
// MaxReps. The schedule depends only on the bounds, so stopping points
// are machine-independent.
func (p Precision) checkpoints() []int {
	var pts []int
	for n := p.MinReps; ; {
		pts = append(pts, n)
		if n >= p.MaxReps {
			return pts
		}
		next := n + n/2
		if next <= n {
			next = n + 1
		}
		if next > p.MaxReps {
			next = p.MaxReps
		}
		n = next
	}
}

// converged applies the stopping rule to the folded summary.
func (p Precision) converged(s *stats.Summary) bool {
	if s.N() < 2 {
		return false
	}
	half := s.CIAt(p.Confidence)
	mean := math.Abs(s.Mean())
	if mean == 0 {
		// Relative precision is undefined at mean 0; only a degenerate
		// (zero-width) interval counts as converged.
		return half == 0
	}
	return half <= p.Epsilon*mean
}

// Result is one adaptive point estimate.
type Result struct {
	// Stats folds the primary metric of replications 0..Reps-1 in index
	// order — byte-identical to what fixed-rep mode at Runs = Reps would
	// accumulate.
	Stats stats.Summary
	// Reps is the number of replications executed.
	Reps int
	// Converged reports whether the precision target was met (false when
	// the run stopped at MaxReps still short of it).
	Converged bool
	// HalfWidth is the final Student-t half-width at the requested
	// confidence.
	HalfWidth float64
}

// Run replicates task adaptively: replications are launched in batches
// up to the next checkpoint, executed concurrently across a pool of
// parallelism workers (GOMAXPROCS when ≤ 0), folded in replication
// order, and stopped at the first checkpoint whose Student-t interval
// meets the precision target. task(rep) must be safe for concurrent
// invocation with distinct rep values and deterministic in rep.
//
// The first task error (lowest replication index) aborts the run, as
// does ctx cancellation; replications already executing finish. Run
// panics if prec (after WithDefaults) fails Validate — callers validate
// at the spec boundary.
func Run(ctx context.Context, prec Precision, parallelism int, task func(rep int) (float64, error)) (Result, error) {
	prec = prec.WithDefaults()
	if err := prec.Validate(); err != nil {
		panic(err)
	}
	if !prec.Enabled() {
		panic("montecarlo: Run requires an enabled Precision (fixed-rep mode has its own paths)")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}

	var res Result
	values := make([]float64, 0, prec.MaxReps)
	errs := make([]error, prec.MaxReps)
	next := 0 // next replication index to execute
	for _, target := range prec.checkpoints() {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		// Execute replications [next, target) across the pool.
		values = values[:target]
		var wg sync.WaitGroup
		reps := make(chan int)
		workers := min(parallelism, target-next)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := range reps {
					if ctx.Err() != nil {
						errs[r] = ctx.Err()
						continue
					}
					values[r], errs[r] = task(r)
				}
			}()
		}
		for r := next; r < target; r++ {
			reps <- r
		}
		close(reps)
		wg.Wait()
		// Fold in replication order; the first failed index wins.
		for r := next; r < target; r++ {
			if errs[r] != nil {
				return res, errs[r]
			}
			res.Stats.Add(values[r])
		}
		next = target
		res.Reps = target
		res.HalfWidth = res.Stats.CIAt(prec.Confidence)
		if prec.converged(&res.Stats) {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}
