package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

// noisyTask returns a deterministic pseudo-random task: replication r
// always yields the same value regardless of scheduling.
func noisyTask(seed uint64, mean, spread float64) func(rep int) (float64, error) {
	return func(rep int) (float64, error) {
		src := rng.NewStream(seed, "mc-test", fmt.Sprint(rep))
		return mean + spread*(src.Float64()-0.5), nil
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Precision
		ok   bool
	}{
		{"zero value (disabled)", Precision{}, true},
		{"defaults", Precision{Epsilon: 0.01}.WithDefaults(), true},
		{"epsilon 1", Precision{Epsilon: 1}.WithDefaults(), false},
		{"epsilon negative", Precision{Epsilon: -0.1}.WithDefaults(), false},
		{"epsilon NaN", Precision{Epsilon: math.NaN()}.WithDefaults(), false},
		{"confidence 1", Precision{Epsilon: 0.1, Confidence: 1, MinReps: 2, MaxReps: 4}, false},
		{"minReps 1", Precision{Epsilon: 0.1, Confidence: 0.95, MinReps: 1, MaxReps: 4}, false},
		{"max < min", Precision{Epsilon: 0.1, Confidence: 0.95, MinReps: 8, MaxReps: 4}, false},
		{"min == max", Precision{Epsilon: 0.1, Confidence: 0.95, MinReps: 4, MaxReps: 4}, true},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestCheckpointsScheduleIsMachineIndependent(t *testing.T) {
	p := Precision{Epsilon: 0.01, Confidence: 0.95, MinReps: 3, MaxReps: 20}
	got := p.checkpoints()
	want := []int{3, 4, 6, 9, 13, 19, 20}
	if len(got) != len(want) {
		t.Fatalf("checkpoints = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("checkpoints = %v, want %v", got, want)
		}
	}
	// MinReps == MaxReps: a single checkpoint — fixed-rep mode.
	one := Precision{Epsilon: 0.01, Confidence: 0.95, MinReps: 5, MaxReps: 5}
	if pts := one.checkpoints(); len(pts) != 1 || pts[0] != 5 {
		t.Fatalf("checkpoints(min==max) = %v, want [5]", pts)
	}
}

func TestZeroVarianceStopsAtMinReps(t *testing.T) {
	p := Precision{Epsilon: 0.01, MinReps: 2, MaxReps: 100, Confidence: 0.99}
	var calls atomic.Int64
	res, err := Run(context.Background(), p, 4, func(rep int) (float64, error) {
		calls.Add(1)
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reps != 2 || !res.Converged {
		t.Fatalf("Reps=%d Converged=%v, want 2/true", res.Reps, res.Converged)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("task called %d times, want 2", got)
	}
	if res.Stats.Mean() != 42 || res.HalfWidth != 0 {
		t.Fatalf("mean=%v half=%v, want 42/0", res.Stats.Mean(), res.HalfWidth)
	}
}

func TestParallelismDoesNotChangeResult(t *testing.T) {
	p := Precision{Epsilon: 0.02, Confidence: 0.95, MinReps: 3, MaxReps: 200}
	task := noisyTask(7, 10, 3)
	base, err := Run(context.Background(), p, 1, task)
	if err != nil {
		t.Fatal(err)
	}
	if base.Reps <= p.MinReps {
		t.Fatalf("want a multi-batch run for this test, got %d reps", base.Reps)
	}
	for _, par := range []int{2, 5, 16} {
		got, err := Run(context.Background(), p, par, task)
		if err != nil {
			t.Fatal(err)
		}
		if got.Reps != base.Reps || got.Stats.Mean() != base.Stats.Mean() ||
			got.Stats.Variance() != base.Stats.Variance() || got.HalfWidth != base.HalfWidth {
			t.Fatalf("parallelism %d: (reps=%d mean=%v var=%v) != serial (reps=%d mean=%v var=%v)",
				par, got.Reps, got.Stats.Mean(), got.Stats.Variance(),
				base.Reps, base.Stats.Mean(), base.Stats.Variance())
		}
	}
}

func TestMinEqualsMaxMatchesFixedFold(t *testing.T) {
	const reps = 12
	task := noisyTask(11, 5, 2)
	res, err := Run(context.Background(),
		Precision{Epsilon: 1e-9, Confidence: 0.95, MinReps: reps, MaxReps: reps}, 4, task)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reps != reps {
		t.Fatalf("Reps = %d, want %d", res.Reps, reps)
	}
	// The fold must be byte-identical to a sequential fixed-rep fold.
	var fixed stats.Summary
	for r := 0; r < reps; r++ {
		v, _ := task(r)
		fixed.Add(v)
	}
	if res.Stats.Mean() != fixed.Mean() || res.Stats.Variance() != fixed.Variance() {
		t.Fatalf("adaptive fold (%v, %v) != fixed fold (%v, %v)",
			res.Stats.Mean(), res.Stats.Variance(), fixed.Mean(), fixed.Variance())
	}
}

func TestStopsAtMaxRepsWithoutConvergence(t *testing.T) {
	// Alternating ±100 never reaches ±0.01% relative precision.
	p := Precision{Epsilon: 1e-4, Confidence: 0.95, MinReps: 2, MaxReps: 17}
	res, err := Run(context.Background(), p, 3, func(rep int) (float64, error) {
		if rep%2 == 0 {
			return 100, nil
		}
		return 300, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reps != 17 || res.Converged {
		t.Fatalf("Reps=%d Converged=%v, want 17/false", res.Reps, res.Converged)
	}
}

func TestFirstErrorByIndexWins(t *testing.T) {
	errBoom := errors.New("boom")
	p := Precision{Epsilon: 0.01, Confidence: 0.95, MinReps: 8, MaxReps: 8}
	_, err := Run(context.Background(), p, 8, func(rep int) (float64, error) {
		if rep >= 3 {
			return 0, fmt.Errorf("rep %d: %w", rep, errBoom)
		}
		return 1, nil
	})
	if err == nil || err.Error() != "rep 3: boom" {
		t.Fatalf("err = %v, want the lowest failing index (rep 3)", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	p := Precision{Epsilon: 1e-9, Confidence: 0.95, MinReps: 2, MaxReps: 1000}
	_, err := Run(ctx, p, 2, func(rep int) (float64, error) {
		once.Do(cancel) // cancel mid-run; later batches must not start
		return float64(rep), nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunPanicsOnDisabledPrecision(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for disabled precision")
		}
	}()
	_, _ = Run(context.Background(), Precision{}, 1, func(int) (float64, error) { return 0, nil })
}
