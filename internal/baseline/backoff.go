package baseline

import (
	"fmt"
	"math"

	"repro/internal/protocol"
)

// DefaultLLIBBase is the window growth base the paper's evaluation uses
// for Loglog-Iterated Back-off ("simulated with parameter r = 2", §5).
const DefaultLLIBBase = 2.0

// maxWindow caps schedule windows to keep a misconfigured or runaway
// schedule from overflowing slot arithmetic; it is far beyond the windows
// any experiment in this repository reaches (k ≤ 10⁷ completes with
// windows < 2³⁰).
const maxWindow = 1 << 40

// LoglogIteratedBackoff is a reconstruction of the loglog-iterated
// back-off protocol of [2]: a monotone windowed back-off whose window
// sizes grow geometrically with base r, with each window of size w
// repeated ~log_r log_r w times before growing — the "iterated" schedule
// that achieves makespan Θ(k·loglog k / logloglog k) w.h.p., optimal for
// monotone protocols. It implements protocol.Schedule.
type LoglogIteratedBackoff struct {
	r    float64
	i    int     // growth step: current window is round(r^i)
	w    float64 // current real-valued window size
	reps int     // repetitions of the current window remaining
}

// NewLoglogIteratedBackoff returns the schedule with growth base r
// (the paper evaluates r = 2). Requires r > 1.
func NewLoglogIteratedBackoff(r float64) (*LoglogIteratedBackoff, error) {
	if !(r > 1) {
		return nil, fmt.Errorf("baseline: Loglog-Iterated Back-off requires r > 1, got %v", r)
	}
	return &LoglogIteratedBackoff{r: r}, nil
}

// Base returns the growth base r.
func (s *LoglogIteratedBackoff) Base() float64 { return s.r }

// NextWindow implements protocol.Schedule.
func (s *LoglogIteratedBackoff) NextWindow() int {
	if s.reps == 0 {
		s.i++
		s.w = math.Pow(s.r, float64(s.i))
		if s.w > maxWindow {
			s.w = maxWindow
		}
		// log_r w = i for w = r^i; iterate: repetitions = ⌈log_r(max(r, i))⌉.
		logr := func(x float64) float64 { return math.Log(x) / math.Log(s.r) }
		s.reps = int(math.Ceil(logr(math.Max(s.r, float64(s.i)))))
		if s.reps < 1 {
			s.reps = 1
		}
	}
	s.reps--
	w := int(math.Round(s.w))
	if w < 1 {
		w = 1
	}
	return w
}

// ExponentialBackoff is the classic monotone r-exponential back-off:
// window i has size round(r^i). Binary exponential back-off (r = 2) is
// the ubiquitous practical strategy; [2] shows r-exponential back-off has
// makespan Θ(k·log_{log r} k) for batched arrivals — superlinear, which
// is what the paper's non-monotone protocols beat. It implements
// protocol.Schedule.
type ExponentialBackoff struct {
	r float64
	w float64
}

// NewExponentialBackoff returns an r-exponential back-off schedule.
// Requires r > 1.
func NewExponentialBackoff(r float64) (*ExponentialBackoff, error) {
	if !(r > 1) {
		return nil, fmt.Errorf("baseline: exponential back-off requires r > 1, got %v", r)
	}
	return &ExponentialBackoff{r: r, w: 1}, nil
}

// NextWindow implements protocol.Schedule.
func (s *ExponentialBackoff) NextWindow() int {
	s.w *= s.r
	if s.w > maxWindow {
		s.w = maxWindow
	}
	w := int(math.Round(s.w))
	if w < 1 {
		w = 1
	}
	return w
}

// PolynomialBackoff is monotone polynomial back-off: window i has size
// round(i^r). Analyzed in [2] alongside the exponential family. It
// implements protocol.Schedule.
type PolynomialBackoff struct {
	r float64
	i int
}

// NewPolynomialBackoff returns a polynomial back-off schedule with
// exponent r > 0.
func NewPolynomialBackoff(r float64) (*PolynomialBackoff, error) {
	if !(r > 0) {
		return nil, fmt.Errorf("baseline: polynomial back-off requires r > 0, got %v", r)
	}
	return &PolynomialBackoff{r: r}, nil
}

// NextWindow implements protocol.Schedule.
func (s *PolynomialBackoff) NextWindow() int {
	s.i++
	w := math.Pow(float64(s.i), s.r)
	if w > maxWindow {
		w = maxWindow
	}
	if w < 1 {
		return 1
	}
	return int(math.Round(w))
}

// LogBackoff is monotone log-back-off from the family of [2]: windows grow
// by the slow multiplicative factor (1 + 1/log₂ w). It implements
// protocol.Schedule.
type LogBackoff struct {
	w float64
}

// NewLogBackoff returns a log-back-off schedule starting at window size 2.
func NewLogBackoff() *LogBackoff { return &LogBackoff{w: 2} }

// NextWindow implements protocol.Schedule.
func (s *LogBackoff) NextWindow() int {
	w := int(math.Round(s.w))
	if w < 1 {
		w = 1
	}
	grow := 1 + 1/math.Max(1, math.Log2(s.w))
	s.w *= grow
	if s.w > maxWindow {
		s.w = maxWindow
	}
	return w
}

// FixedWindow is the degenerate schedule with constant window size; with
// w ≈ k it is the genie protocol that knows the number of contenders, a
// useful experimental control. It implements protocol.Schedule.
type FixedWindow struct {
	w int
}

// NewFixedWindow returns a constant schedule of w-slot windows. Requires
// w >= 1.
func NewFixedWindow(w int) (*FixedWindow, error) {
	if w < 1 {
		return nil, fmt.Errorf("baseline: fixed window requires w >= 1, got %d", w)
	}
	return &FixedWindow{w: w}, nil
}

// NextWindow implements protocol.Schedule.
func (s *FixedWindow) NextWindow() int { return s.w }

// Compile-time interface conformance checks.
var (
	_ protocol.Schedule = (*LoglogIteratedBackoff)(nil)
	_ protocol.Schedule = (*ExponentialBackoff)(nil)
	_ protocol.Schedule = (*PolynomialBackoff)(nil)
	_ protocol.Schedule = (*LogBackoff)(nil)
	_ protocol.Schedule = (*FixedWindow)(nil)
)
