package baseline

import (
	"fmt"

	"repro/internal/protocol"
	"repro/internal/rng"
)

// TDMAStation is the genie control: round-robin time division, which
// requires exactly the knowledge the paper's setting denies — unique
// station identifiers 0..n-1 and the value of n. Station id transmits in
// slots ≡ id+1 (mod n), so a batch of k ≤ n stations drains in at most n
// slots with zero collisions. Experiments use it as the "if you knew
// everything" lower reference; no contention-resolution protocol can
// beat its throughput, and none of the paper's protocols may be compared
// to it without noting the information gap.
//
// It implements protocol.Station.
type TDMAStation struct {
	id int
	n  int
}

// NewTDMAStation returns the round-robin station with the given identity
// out of n. Requires 0 ≤ id < n.
func NewTDMAStation(id, n int) (*TDMAStation, error) {
	if n < 1 || id < 0 || id >= n {
		return nil, fmt.Errorf("baseline: TDMA requires 0 ≤ id < n, got id=%d n=%d", id, n)
	}
	return &TDMAStation{id: id, n: n}, nil
}

// WillTransmit implements protocol.Station.
func (s *TDMAStation) WillTransmit(slot uint64, _ *rng.Rand) bool {
	return (slot-1)%uint64(s.n) == uint64(s.id)
}

// Feedback implements protocol.Station; TDMA is oblivious.
func (s *TDMAStation) Feedback(uint64, bool, bool) {}

var _ protocol.Station = (*TDMAStation)(nil)

// NewTDMAStations returns n round-robin stations covering all identities.
func NewTDMAStations(n int) ([]protocol.Station, error) {
	stations := make([]protocol.Station, n)
	for id := range stations {
		st, err := NewTDMAStation(id, n)
		if err != nil {
			return nil, err
		}
		stations[id] = st
	}
	return stations, nil
}
