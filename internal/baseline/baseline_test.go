package baseline

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewLogFailsAdaptiveValidation(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name    string
		epsilon float64
		xiT     float64
		opts    []LFAOption
		wantErr bool
	}{
		{name: "paper half", epsilon: 1.0 / 101, xiT: 0.5, wantErr: false},
		{name: "paper tenth", epsilon: 1.0 / 101, xiT: 0.1, wantErr: false},
		{name: "epsilon zero", epsilon: 0, xiT: 0.5, wantErr: true},
		{name: "epsilon one", epsilon: 1, xiT: 0.5, wantErr: true},
		{name: "epsilon negative", epsilon: -0.1, xiT: 0.5, wantErr: true},
		{name: "xiT zero", epsilon: 0.01, xiT: 0, wantErr: true},
		{name: "xiT one", epsilon: 0.01, xiT: 1, wantErr: true},
		{name: "bad xiDelta", epsilon: 0.01, xiT: 0.5, opts: []LFAOption{WithLFAXiDelta(0)}, wantErr: true},
		{name: "bad xiBeta", epsilon: 0.01, xiT: 0.5, opts: []LFAOption{WithLFAXiBeta(-1)}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			_, err := NewLogFailsAdaptive(tt.epsilon, tt.xiT, tt.opts...)
			if gotErr := err != nil; gotErr != tt.wantErr {
				t.Fatalf("NewLogFailsAdaptive(%v, %v) error = %v, wantErr %v", tt.epsilon, tt.xiT, err, tt.wantErr)
			}
		})
	}
}

func TestLFAStepAllotment(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name    string
		xiT     float64
		btSlots []uint64 // slots that must be BT-steps
		atSlots []uint64 // slots that must be AT-steps
	}{
		{name: "half", xiT: 0.5, btSlots: []uint64{2, 4, 6, 100}, atSlots: []uint64{1, 3, 5, 99}},
		{name: "tenth", xiT: 0.1, btSlots: []uint64{10, 20, 100}, atSlots: []uint64{1, 5, 9, 11, 99}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			l, err := NewLogFailsAdaptive(0.01, tt.xiT)
			if err != nil {
				t.Fatal(err)
			}
			btProb := l.Prob(tt.btSlots[0])
			for _, s := range tt.btSlots {
				if got := l.Prob(s); got != btProb {
					t.Errorf("slot %d: prob %v, want fixed BT prob %v", s, got, btProb)
				}
			}
			atProb := 1 / l.DensityEstimate()
			for _, s := range tt.atSlots {
				if got := l.Prob(s); math.Abs(got-atProb) > 1e-12 {
					t.Errorf("slot %d: prob %v, want AT prob %v", s, got, atProb)
				}
			}
		})
	}
}

func TestLFABTProbFixed(t *testing.T) {
	t.Parallel()
	l, err := NewLogFailsAdaptive(1.0/101, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (1 + math.Log2(101)/2)
	before := l.Prob(2)
	if math.Abs(before-want) > 1e-12 {
		t.Fatalf("BT prob = %v, want %v", before, want)
	}
	// The BT probability must not react to receptions (unlike OFA's).
	for slot := uint64(1); slot <= 50; slot++ {
		l.Observe(slot, slot%3 == 0)
	}
	if after := l.Prob(52); after != before {
		t.Fatalf("BT prob changed from %v to %v after receptions", before, after)
	}
}

func TestLFALazyGrowth(t *testing.T) {
	t.Parallel()
	l, err := NewLogFailsAdaptive(0.5, 0.5, WithLFAPatience(10))
	if err != nil {
		t.Fatal(err)
	}
	kappa0 := l.DensityEstimate()
	// Silent slots below the patience threshold leave κ̃ untouched.
	for slot := uint64(1); slot <= 9; slot++ {
		l.Observe(slot, false)
		if got := l.DensityEstimate(); got != kappa0 {
			t.Fatalf("κ̃ moved to %v after %d silent slots (patience 10)", got, slot)
		}
	}
	// The 10th silent slot flushes the pending growth, capped at doubling.
	l.Observe(10, false)
	if got, want := l.DensityEstimate(), 2*kappa0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("κ̃ after patience flush = %v, want doubled %v", got, want)
	}
}

func TestLFAReceptionFlushesAndShrinks(t *testing.T) {
	t.Parallel()
	l, err := NewLogFailsAdaptive(0.5, 0.5, WithLFAPatience(1000))
	if err != nil {
		t.Fatal(err)
	}
	// Accrue 3 AT-steps of pending growth (slots 1, 3, 5), then receive.
	for slot := uint64(1); slot <= 5; slot++ {
		l.Observe(slot, false)
	}
	kappa0 := l.DensityEstimate()
	l.Observe(7, true) // AT-step reception: flush +3, then shrink (1+ξδ)(δ+1)
	// Pending was 4 AT-steps (slots 1,3,5,7); flush min(4, κ̃)=4, then shrink.
	want := math.Max(kappa0+4-(1+DefaultLFAXiDelta)*(math.E+1), math.E+1)
	if got := l.DensityEstimate(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("κ̃ after reception = %v, want %v", got, want)
	}
	if got := l.Received(); got != 1 {
		t.Fatalf("σ = %d, want 1", got)
	}
}

// TestLFAEstimatorInvariant property-checks κ̃ ≥ δ+1, prob ∈ (0,1], and
// geometric growth bounding under arbitrary observation sequences.
func TestLFAEstimatorInvariant(t *testing.T) {
	t.Parallel()
	f := func(events []bool, xiTenth bool) bool {
		xiT := 0.5
		if xiTenth {
			xiT = 0.1
		}
		l, err := NewLogFailsAdaptive(0.001, xiT, WithLFAPatience(5))
		if err != nil {
			return false
		}
		for i, success := range events {
			slot := uint64(i + 1)
			p := l.Prob(slot)
			if p <= 0 || p > 1 {
				return false
			}
			before := l.DensityEstimate()
			l.Observe(slot, success)
			after := l.DensityEstimate()
			if after < math.E+1 {
				return false
			}
			// Growth per observation is bounded by doubling (flush cap).
			if after > 2*before {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLFAPatienceDerivation(t *testing.T) {
	t.Parallel()
	eps := 1.0 / 1001
	l, err := NewLogFailsAdaptive(eps, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(math.Ceil(lfaPatienceFactor / DefaultLFAXiBeta * math.Log(1/eps)))
	if got := l.Patience(); got != want {
		t.Fatalf("derived patience = %d, want %d", got, want)
	}
	// Halving ξβ doubles the patience.
	l2, err := NewLogFailsAdaptive(eps, 0.5, WithLFAXiBeta(DefaultLFAXiBeta/2))
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.Patience(); got < 2*want-2 || got > 2*want+2 {
		t.Fatalf("patience at ξβ/2 = %d, want ~%d", got, 2*want)
	}
}

func TestNewLoglogIteratedBackoffValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewLoglogIteratedBackoff(1); err == nil {
		t.Error("r=1 accepted, want error")
	}
	if _, err := NewLoglogIteratedBackoff(0.5); err == nil {
		t.Error("r=0.5 accepted, want error")
	}
	s, err := NewLoglogIteratedBackoff(DefaultLLIBBase)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Base(); got != DefaultLLIBBase {
		t.Errorf("Base() = %v, want %v", got, DefaultLLIBBase)
	}
}

// TestLLIBWindowSequence checks the first windows of the r=2 schedule:
// size 2^i repeated ⌈log₂(max(2, i))⌉ times.
func TestLLIBWindowSequence(t *testing.T) {
	t.Parallel()
	s, err := NewLoglogIteratedBackoff(2)
	if err != nil {
		t.Fatal(err)
	}
	// i=1: 2×1; i=2: 4×1; i=3: 8×⌈log₂3⌉=8×2; i=4: 16×2; i=5: 32×⌈log₂5⌉=32×3.
	want := []int{2, 4, 8, 8, 16, 16, 32, 32, 32, 64, 64, 64}
	for i, w := range want {
		if got := s.NextWindow(); got != w {
			t.Fatalf("window %d = %d, want %d", i, got, w)
		}
	}
}

// TestMonotoneSchedules property-checks that every monotone back-off
// schedule produces non-decreasing windows ≥ 1.
func TestMonotoneSchedules(t *testing.T) {
	t.Parallel()
	newPoly := func(r float64) func() scheduleIface {
		return func() scheduleIface { s, _ := NewPolynomialBackoff(r); return s }
	}
	tests := []struct {
		name string
		make func() scheduleIface
	}{
		{name: "llib r=2", make: func() scheduleIface { s, _ := NewLoglogIteratedBackoff(2); return s }},
		{name: "llib r=3", make: func() scheduleIface { s, _ := NewLoglogIteratedBackoff(3); return s }},
		{name: "exponential r=2", make: func() scheduleIface { s, _ := NewExponentialBackoff(2); return s }},
		{name: "exponential r=1.5", make: func() scheduleIface { s, _ := NewExponentialBackoff(1.5); return s }},
		{name: "polynomial r=2", make: newPoly(2)},
		{name: "polynomial r=0.5", make: newPoly(0.5)},
		{name: "log-backoff", make: func() scheduleIface { return NewLogBackoff() }},
		{name: "fixed", make: func() scheduleIface { s, _ := NewFixedWindow(7); return s }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			s := tt.make()
			prev := 0
			for i := 0; i < 500; i++ {
				w := s.NextWindow()
				if w < 1 {
					t.Fatalf("window %d = %d < 1", i, w)
				}
				if w < prev {
					t.Fatalf("window shrank: %d -> %d (monotone schedule)", prev, w)
				}
				prev = w
			}
		})
	}
}

// scheduleIface mirrors protocol.Schedule locally to avoid an import cycle
// in test helpers.
type scheduleIface interface{ NextWindow() int }

func TestLLIBRepetitionsGrow(t *testing.T) {
	t.Parallel()
	s, err := NewLoglogIteratedBackoff(2)
	if err != nil {
		t.Fatal(err)
	}
	reps := make(map[int]int)
	for i := 0; i < 400; i++ {
		reps[s.NextWindow()]++
	}
	// Repetition count must be non-decreasing in window size and reach ≥ 4
	// within the first 400 windows (w = 2^17 has ⌈log₂17⌉ = 5 reps).
	prevReps := 0
	maxReps := 0
	sizes := []int{2, 4, 8, 16, 32, 1 << 10, 1 << 16}
	for _, w := range sizes {
		r := reps[w]
		if r == 0 {
			continue
		}
		if r < prevReps {
			t.Errorf("window %d repeated %d times, fewer than a smaller window's %d", w, r, prevReps)
		}
		prevReps = r
		if r > maxReps {
			maxReps = r
		}
	}
	if maxReps < 4 {
		t.Errorf("max repetitions = %d, want ≥ 4 (loglog growth)", maxReps)
	}
}

func TestExponentialBackoffDoubling(t *testing.T) {
	t.Parallel()
	s, err := NewExponentialBackoff(2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4, 8, 16, 32, 64}
	for i, w := range want {
		if got := s.NextWindow(); got != w {
			t.Fatalf("window %d = %d, want %d", i, got, w)
		}
	}
}

func TestPolynomialBackoffSequence(t *testing.T) {
	t.Parallel()
	s, err := NewPolynomialBackoff(2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 4, 9, 16, 25}
	for i, w := range want {
		if got := s.NextWindow(); got != w {
			t.Fatalf("window %d = %d, want %d", i, got, w)
		}
	}
}

func TestFixedWindowValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewFixedWindow(0); err == nil {
		t.Error("w=0 accepted, want error")
	}
	s, err := NewFixedWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := s.NextWindow(); got != 3 {
			t.Fatalf("window = %d, want 3", got)
		}
	}
}

func TestScheduleWindowCap(t *testing.T) {
	t.Parallel()
	s, err := NewExponentialBackoff(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if w := s.NextWindow(); w > maxWindow {
			t.Fatalf("window %d exceeds cap %d", w, maxWindow)
		}
	}
}
