// Package baseline implements the two protocols the paper compares
// against (§5): Log-Fails Adaptive from Fernández Anta & Mosteiro (DMAA
// 2010, reference [7]) and Loglog-Iterated Back-off from Bender et al.
// (SPAA 2005, reference [2]), together with the wider monotone back-off
// family of [2] used by the examples and ablation benches.
//
// Both baselines are reconstructions: the reproduced paper describes their
// structure but not every constant of the original papers. The
// reconstruction decisions and their calibration are documented in
// DESIGN.md ("Substitutions and reconstructions") and assessed against the
// paper's Table 1 by the BenchmarkTable1 rows pinned in BENCH_BASE.json
// (docs/paper-map.md, "§5 Evaluation").
package baseline

import (
	"fmt"
	"math"

	"repro/internal/protocol"
)

// Log-Fails Adaptive defaults; the evaluation in §5 of the paper uses
// ξδ = ξβ = 0.1, ε ≈ 1/(k+1), and ξt ∈ {1/2, 1/10}.
const (
	DefaultLFAXiDelta = 0.1
	DefaultLFAXiBeta  = 0.1

	// lfaDelta is the δ constant of the AT algorithm of [7]; the protocol's
	// linear term is (e+1+ξ)k, so the estimator constant is e.
	lfaDelta = math.E

	// lfaPatienceFactor calibrates the estimator's lazy-update period
	// F = ⌈(factor/ξβ)·ln(1/ε)⌉ — the number of slots without communication
	// after which the pending estimator growth is applied. The constant is
	// of the same magnitude as the paper's own analysis threshold
	// τ = 300·δ·ln(1+k) (Lemma 5), and was calibrated so the simulated
	// Table 1 row reproduces the published shape (see DESIGN.md).
	lfaPatienceFactor = 300.0
)

// LogFailsAdaptive is a reconstruction of the protocol of [7] as described
// in §3 of the reproduced paper. Like One-Fail Adaptive it interleaves an
// AT algorithm (transmission probability 1/κ̃) with a BT algorithm, but:
//
//   - the BT transmission probability is fixed, derived from the error
//     parameter ε (OFA's adapts to the number of delivered messages);
//   - a fraction ξt of slots is allotted to BT (OFA fixes ξt = 1/2);
//   - the density estimator κ̃ is not updated continuously: its growth
//     accrues in a pending counter and is applied only when communication
//     is observed or after F = Θ(log(1/ε)) consecutive silent slots — the
//     "log fails" that name the protocol.
//
// The protocol requires ε ≤ 1/(n+1), i.e. knowledge of (a bound on) the
// network size — exactly the requirement the reproduced paper removes.
//
// It implements protocol.Controller.
type LogFailsAdaptive struct {
	epsilon float64
	xiDelta float64
	xiBeta  float64
	xiT     float64

	btEvery  uint64  // a BT-step every btEvery-th slot (= round(1/ξt))
	btProb   float64 // fixed BT transmission probability
	patience uint64  // F: silent slots before pending growth is applied
	kappa    float64 // κ̃, the density estimator
	pending  float64 // accrued, not-yet-applied estimator growth
	fails    uint64  // consecutive slots without a reception
	sigma    uint64  // messages received (exposed for observability)
	cursor   uint64  // next unobserved slot (event-skip contract; see skip.go)
}

// LFAOption configures NewLogFailsAdaptive.
type LFAOption func(*LogFailsAdaptive)

// WithLFAXiDelta sets ξδ, the estimator growth slack (default 0.1).
func WithLFAXiDelta(v float64) LFAOption {
	return func(l *LogFailsAdaptive) { l.xiDelta = v }
}

// WithLFAXiBeta sets ξβ, the error-exponent slack that scales the lazy
// update period (default 0.1).
func WithLFAXiBeta(v float64) LFAOption {
	return func(l *LogFailsAdaptive) { l.xiBeta = v }
}

// WithLFAPatience overrides the derived lazy-update period F.
func WithLFAPatience(f uint64) LFAOption {
	return func(l *LogFailsAdaptive) { l.patience = f }
}

// NewLogFailsAdaptive returns a controller for Log-Fails Adaptive with
// error parameter epsilon (the paper's evaluation uses ε ≈ 1/(k+1)) and
// BT-step fraction xiT (the paper evaluates ξt = 1/2 and ξt = 1/10).
func NewLogFailsAdaptive(epsilon, xiT float64, opts ...LFAOption) (*LogFailsAdaptive, error) {
	if !(epsilon > 0 && epsilon < 1) {
		return nil, fmt.Errorf("baseline: Log-Fails Adaptive requires 0 < ε < 1, got %v", epsilon)
	}
	if !(xiT > 0 && xiT < 1) {
		return nil, fmt.Errorf("baseline: Log-Fails Adaptive requires 0 < ξt < 1, got %v", xiT)
	}
	l := &LogFailsAdaptive{
		epsilon: epsilon,
		xiDelta: DefaultLFAXiDelta,
		xiBeta:  DefaultLFAXiBeta,
		xiT:     xiT,
		btEvery: uint64(math.Round(1 / xiT)),
		kappa:   lfaDelta + 1,
		cursor:  1,
	}
	for _, opt := range opts {
		opt(l)
	}
	if l.xiDelta <= 0 || l.xiBeta <= 0 {
		return nil, fmt.Errorf("baseline: Log-Fails Adaptive requires ξδ, ξβ > 0, got %v, %v", l.xiDelta, l.xiBeta)
	}
	l.btProb = 1 / (1 + math.Log2(1/epsilon)/2)
	if l.patience == 0 {
		l.patience = uint64(math.Ceil(lfaPatienceFactor / l.xiBeta * math.Log(1/epsilon)))
		if l.patience == 0 {
			l.patience = 1
		}
	}
	return l, nil
}

// Epsilon returns the error parameter ε.
func (l *LogFailsAdaptive) Epsilon() float64 { return l.epsilon }

// XiT returns the BT-step fraction ξt.
func (l *LogFailsAdaptive) XiT() float64 { return l.xiT }

// Patience returns F, the lazy-update period in slots.
func (l *LogFailsAdaptive) Patience() uint64 { return l.patience }

// DensityEstimate returns the current value of the density estimator κ̃
// (excluding pending growth).
func (l *LogFailsAdaptive) DensityEstimate() float64 { return l.kappa }

// Received returns the number of messages received so far.
func (l *LogFailsAdaptive) Received() uint64 { return l.sigma }

// isBTStep reports whether the given slot is allotted to the BT algorithm.
// A fraction ξt of slots are BT-steps: slot ≡ 0 (mod round(1/ξt)).
func (l *LogFailsAdaptive) isBTStep(slot uint64) bool {
	return slot%l.btEvery == 0
}

// Prob implements protocol.Controller.
func (l *LogFailsAdaptive) Prob(slot uint64) float64 {
	if l.isBTStep(slot) {
		return l.btProb
	}
	return 1 / l.kappa
}

// flush applies the pending estimator growth. Growth per flush is capped
// at a doubling of κ̃, so that after long silence the estimator climbs
// geometrically instead of jumping arbitrarily far past the density.
func (l *LogFailsAdaptive) flush() {
	l.kappa += math.Min(l.pending, l.kappa)
	l.pending = 0
	l.fails = 0
}

// Observe implements protocol.Controller. Estimator growth of 1 per
// AT-step accrues lazily in pending; it is applied when a message is
// received or after F consecutive silent slots. A reception additionally
// shrinks the estimator by (1+ξδ)(δ+1) — One-Fail Adaptive's AT decrement
// with the ξδ slack, which keeps the shrink rate strictly above the
// growth rate during a healthy drain so that κ̃ tracks the density
// downward; the patience flush is the matching upward correction.
func (l *LogFailsAdaptive) Observe(slot uint64, success bool) {
	l.cursor = slot + 1
	if !l.isBTStep(slot) {
		l.pending++
	}
	if success {
		l.sigma++
		l.flush()
		l.kappa = math.Max(l.kappa-(1+l.xiDelta)*(lfaDelta+1), lfaDelta+1)
		return
	}
	l.fails++
	if l.fails >= l.patience {
		l.flush()
	}
}

var _ protocol.Controller = (*LogFailsAdaptive)(nil)
