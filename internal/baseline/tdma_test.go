package baseline

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sim"
)

func TestTDMAValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewTDMAStation(-1, 4); err == nil {
		t.Error("negative id accepted")
	}
	if _, err := NewTDMAStation(4, 4); err == nil {
		t.Error("id == n accepted")
	}
	if _, err := NewTDMAStation(0, 0); err == nil {
		t.Error("n == 0 accepted")
	}
}

// TestTDMADrainsInExactlyN: a full batch of n TDMA stations drains in
// exactly n slots with zero collisions and zero silences — the genie
// optimum.
func TestTDMADrainsInExactlyN(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 7, 64, 1000} {
		stations, err := NewTDMAStations(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(stations, rng.New(uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Slots != uint64(n) {
			t.Errorf("n=%d drained in %d slots, want exactly n", n, res.Slots)
		}
		if res.Collisions != 0 || res.Silences != 0 {
			t.Errorf("n=%d: %d collisions, %d silences — TDMA must have none",
				n, res.Collisions, res.Silences)
		}
	}
}

// TestTDMAPartialBatch: k < n active stations still drain within n slots
// (idle slots where absent ids would have transmitted are silent).
func TestTDMAPartialBatch(t *testing.T) {
	t.Parallel()
	const n = 50
	ids := []int{3, 17, 42, 49}
	stations := make([]protocol.Station, 0, len(ids))
	for _, id := range ids {
		st, err := NewTDMAStation(id, n)
		if err != nil {
			t.Fatal(err)
		}
		stations = append(stations, st)
	}
	res, err := sim.Run(stations, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 50 { // the largest id delivers at slot id+1 = 50
		t.Fatalf("drained at slot %d, want 50", res.Slots)
	}
	if res.Collisions != 0 {
		t.Fatalf("%d collisions, want 0", res.Collisions)
	}
}
