package baseline

import "repro/internal/protocol"

// This file implements the event-skip contract (protocol.SkipController)
// for Log-Fails Adaptive. LFA is the ideal case for event-skip: between
// successes its density estimator κ̃ is frozen (growth merely accrues in
// the pending counter, which Prob never reads), so over a quiet stretch
// BOTH slot classes are exactly constant —
//
//   - BT-steps (slot ≡ 0 mod round(1/ξt)): the fixed btProb — the
//     special class;
//   - AT-steps: 1/κ̃ with κ̃ untouched — a constant regular class
//     (RegularLo == RegularHi, so the kernel's geometric draws are exact
//     and no thinning is needed).
//
// The only spontaneous state change is the patience flush after F
// consecutive silent slots, which bumps κ̃; a phase therefore ends exactly
// at the flush slot, and SkipTo replays the flush arithmetic in O(1) per
// flush instead of O(F) per-slot bookkeeping. With F = Θ(log(1/ε)) in the
// thousands, the long silent climbs that dominate LFA's executions
// collapse to a couple of geometric draws per flush period.

// countBT returns the number of BT-steps (slots ≡ 0 mod btEvery) in [a, b).
func (l *LogFailsAdaptive) countBT(a, b uint64) uint64 {
	if b <= a {
		return 0
	}
	return (b-1)/l.btEvery - (a-1)/l.btEvery
}

// SkipPhase implements protocol.SkipController.
func (l *LogFailsAdaptive) SkipPhase(slot uint64) protocol.SkipPhase {
	// The probabilities hold until the patience flush fires, which happens
	// while observing the (patience − fails)-th quiet slot from here.
	end := slot + (l.patience - l.fails) - 1
	ph := protocol.SkipPhase{
		End:         end,
		Period:      l.btEvery,
		SpecialProb: l.btProb,
		RegularLo:   1 / l.kappa,
		RegularHi:   1 / l.kappa,
	}
	if l.btEvery == 1 {
		// Every slot is a BT-step: a single constant class, which the
		// contract represents as Period 1 with regular bounds.
		ph.RegularLo = l.btProb
		ph.RegularHi = l.btProb
	}
	return ph
}

// ProbQuiet implements protocol.SkipController. Nothing Prob reads changes
// during a quiet stretch short of the flush, so it coincides with Prob.
func (l *LogFailsAdaptive) ProbQuiet(s uint64) float64 {
	return l.Prob(s)
}

// SkipTo implements protocol.SkipController: it replays Observe(x, false)
// for every x in [cursor, s) in O(1) per intervening patience flush.
func (l *LogFailsAdaptive) SkipTo(s uint64) {
	for l.cursor < s {
		n := s - l.cursor
		if toFlush := l.patience - l.fails; n > toFlush {
			n = toFlush
		}
		// Per-slot order: pending accrues on the flush slot itself before
		// the flush applies, so count the chunk's AT-steps first.
		l.pending += float64(n - l.countBT(l.cursor, l.cursor+n))
		l.fails += n
		l.cursor += n
		if l.fails >= l.patience {
			l.flush()
		}
	}
}

var _ protocol.SkipController = (*LogFailsAdaptive)(nil)
