package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// keys generates n canonical-key prefixes the way the server derives
// them: twelve hex characters of a SHA-256.
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		out[i] = hex.EncodeToString(sum[:])[:12]
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New("a:1", nil); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if _, err := New("a:1", []string{"a:1", "a:1"}); err == nil {
		t.Fatal("duplicate peer accepted")
	}
	if _, err := New("c:3", []string{"a:1", "b:2"}); err == nil {
		t.Fatal("self outside the peer list accepted")
	}
	if _, err := New("a:1", []string{"a:1", ""}); err == nil {
		t.Fatal("empty peer address accepted")
	}
	r, err := New("a:1", []string{"a:1"})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OwnedBySelf("anything") {
		t.Fatal("single-peer ring does not own everything")
	}
}

func TestOwnershipAgreesAcrossNodes(t *testing.T) {
	peers := []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080"}
	rings := make([]*Ring, len(peers))
	for i, self := range peers {
		r, err := New(self, peers)
		if err != nil {
			t.Fatal(err)
		}
		rings[i] = r
	}
	for _, k := range keys(500) {
		owner := rings[0].Owner(k)
		for _, r := range rings[1:] {
			if got := r.Owner(k); got != owner {
				t.Fatalf("key %s: node %s says owner %s, node %s says %s",
					k, rings[0].self, owner, r.self, got)
			}
		}
		if rings[0].OwnedBySelf(k) != (owner == rings[0].self) {
			t.Fatalf("OwnedBySelf disagrees with Owner for %s", k)
		}
	}
}

func TestOwnershipBalance(t *testing.T) {
	peers := []string{"a:1", "b:2", "c:3"}
	r, err := New("a:1", peers)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const n = 3000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	for _, p := range peers {
		share := float64(counts[p]) / n
		if share < 0.15 || share > 0.55 {
			t.Fatalf("peer %s owns %.1f%% of the keyspace: %v", p, 100*share, counts)
		}
	}
}

func TestRemovingPeerMovesOnlyItsKeys(t *testing.T) {
	// The consistent-hashing contract: dropping one of three peers must
	// not reshuffle keys between the two survivors.
	full, err := New("a:1", []string{"a:1", "b:2", "c:3"})
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := New("a:1", []string{"a:1", "b:2"})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(1000) {
		before := full.Owner(k)
		after := reduced.Owner(k)
		if before != "c:3" && after != before {
			t.Fatalf("key %s moved from surviving peer %s to %s", k, before, after)
		}
	}
}

func TestPeersCopies(t *testing.T) {
	r, err := New("a:1", []string{"a:1", "b:2"})
	if err != nil {
		t.Fatal(err)
	}
	got := r.Peers()
	got[0] = "mutated"
	if r.Peers()[0] != "a:1" {
		t.Fatal("Peers exposed internal state")
	}
	if r.Self() != "a:1" {
		t.Fatalf("Self = %q", r.Self())
	}
}
