// Package cluster routes the canonical spec-hash keyspace across a
// static set of macsimd nodes: a consistent-hash ring with virtual
// nodes, so N peers split the keys near-evenly and adding or removing
// one peer moves only ~1/N of the keyspace. The spec layer guarantees
// byte-identical canonical hashes across front ends, so ownership is a
// pure function of the request — any node can compute the owner of any
// submit (or of any job id, whose prefix is the key's first twelve hex
// characters) and proxy a single hop. Membership is configuration
// (-peers), not gossip: the arena this repo serves is a fleet of
// identical simulators, not a dynamic membership problem.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// vnodes is the number of ring points per peer. 64 keeps the maximum
// over-assignment under ~20% for small fleets while the ring stays a
// few-KB sorted slice.
const vnodes = 64

// Ring assigns keys to peers by consistent hashing. Immutable after
// New; safe for concurrent use.
type Ring struct {
	self   string
	peers  []string
	points []point // sorted by hash
}

type point struct {
	hash uint64
	addr string
}

// New builds a ring over peers (host:port addresses) with self naming
// this node's own entry. Duplicates are rejected; self must be one of
// the peers — an advertise address that no peer list contains would
// silently forward every request. A single-peer list is valid and owns
// everything.
func New(self string, peers []string) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	seen := make(map[string]bool, len(peers))
	selfFound := false
	r := &Ring{self: self, peers: append([]string(nil), peers...)}
	for _, p := range peers {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer address")
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
		if p == self {
			selfFound = true
		}
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", p, v)), addr: p})
		}
	}
	if !selfFound {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", self, peers)
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on address so every node sorts identically even in
		// the astronomically unlikely event of a vnode hash collision.
		return r.points[i].addr < r.points[j].addr
	})
	return r, nil
}

// Self returns this node's advertise address.
func (r *Ring) Self() string { return r.self }

// Peers returns the configured peer list, in configuration order.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// Owner returns the peer owning key: the first ring point at or after
// the key's hash, wrapping around. Every node computes the same owner
// for the same key — that is the whole contract.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].addr
}

// OwnedBySelf reports whether this node owns key.
func (r *Ring) OwnedBySelf(key string) bool { return r.Owner(key) == r.self }

// hash64 is the first eight bytes of SHA-256: FNV diffuses the short,
// similar vnode labels ("host:port#0", "host:port#1", …) badly enough
// to skew ownership 3:1, and ring placement is too rare to need a fast
// hash. Key lookups pay ~100ns per request — noise next to HTTP.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
