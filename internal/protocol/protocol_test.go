package protocol

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// countController transmits with a fixed probability and records calls.
type countController struct {
	p        float64
	observes []bool
}

func (c *countController) Prob(slot uint64) float64 { return c.p }
func (c *countController) Observe(slot uint64, success bool) {
	c.observes = append(c.observes, success)
}

func TestFairStationTransmitsAtControllerRate(t *testing.T) {
	t.Parallel()
	ctrl := &countController{p: 0.3}
	st := NewFairStation(ctrl)
	src := rng.New(1)
	const slots = 200000
	tx := 0
	for s := uint64(1); s <= slots; s++ {
		if st.WillTransmit(s, src) {
			tx++
		}
	}
	got := float64(tx) / slots
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("transmit rate = %v, want ~0.3", got)
	}
}

func TestFairStationFeedbackForwardsReception(t *testing.T) {
	t.Parallel()
	ctrl := &countController{p: 0.5}
	st := NewFairStation(ctrl)
	st.Feedback(1, false, true)
	st.Feedback(2, true, false)
	st.Feedback(3, false, false)
	want := []bool{true, false, false}
	if len(ctrl.observes) != len(want) {
		t.Fatalf("observes = %v, want %v", ctrl.observes, want)
	}
	for i := range want {
		if ctrl.observes[i] != want[i] {
			t.Fatalf("observes = %v, want %v", ctrl.observes, want)
		}
	}
}

// fixedSchedule emits a constant window size.
type fixedSchedule struct{ w int }

func (s fixedSchedule) NextWindow() int { return s.w }

func TestWindowStationOneTransmissionPerWindow(t *testing.T) {
	t.Parallel()
	st := NewWindowStation(fixedSchedule{w: 8})
	src := rng.New(2)
	for window := 0; window < 100; window++ {
		tx := 0
		for i := 0; i < 8; i++ {
			slot := uint64(window*8 + i + 1)
			if st.WillTransmit(slot, src) {
				tx++
			}
		}
		if tx != 1 {
			t.Fatalf("window %d: %d transmissions, want exactly 1", window, tx)
		}
	}
}

func TestWindowStationUniformSlotChoice(t *testing.T) {
	t.Parallel()
	const w, windows = 4, 200000
	st := NewWindowStation(fixedSchedule{w: w})
	src := rng.New(3)
	var counts [w]int
	for window := 0; window < windows; window++ {
		for i := 0; i < w; i++ {
			slot := uint64(window*w + i + 1)
			if st.WillTransmit(slot, src) {
				counts[i]++
			}
		}
	}
	want := float64(windows) / w
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("slot offset %d chosen %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestWindowStationFastForward(t *testing.T) {
	t.Parallel()
	// First queried at slot 100 with windows of 8: the station must
	// fast-forward to the window containing slot 100 (slots 97..104) and
	// then behave normally.
	st := NewWindowStation(fixedSchedule{w: 8})
	src := rng.New(4)
	tx := 0
	for slot := uint64(100); slot <= 104; slot++ {
		if st.WillTransmit(slot, src) {
			tx++
		}
	}
	if tx > 1 {
		t.Fatalf("%d transmissions in one window after fast-forward, want ≤ 1", tx)
	}
	// The next full window must again have exactly one transmission.
	tx = 0
	for slot := uint64(105); slot <= 112; slot++ {
		if st.WillTransmit(slot, src) {
			tx++
		}
	}
	if tx != 1 {
		t.Fatalf("window after fast-forward had %d transmissions, want 1", tx)
	}
}

func TestWindowStationPanicsOnBadSchedule(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("window < 1 did not panic")
		}
	}()
	st := NewWindowStation(fixedSchedule{w: 0})
	st.WillTransmit(1, rng.New(1))
}

func TestWindowStationFeedbackIgnored(t *testing.T) {
	t.Parallel()
	st := NewWindowStation(fixedSchedule{w: 4})
	src := rng.New(5)
	// Interleaving feedback must not change the already-chosen slot.
	first := -1
	for i := 0; i < 4; i++ {
		slot := uint64(i + 1)
		if st.WillTransmit(slot, src) {
			first = i
		}
		st.Feedback(slot, false, true)
	}
	if first == -1 {
		t.Fatal("no transmission in first window")
	}
}
