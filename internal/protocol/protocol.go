// Package protocol defines the abstractions shared by every contention-
// resolution protocol in this repository, and adapters that turn them into
// per-node automata for the exact channel simulator.
//
// The paper's four protocols — and every registry addition since, from
// the monotone back-off baselines (internal/baseline) to the
// no-collision-detection families of the related work (internal/nocd)
// — fall into two families:
//
//   - Fair probability-based protocols (One-Fail Adaptive, Log-Fails
//     Adaptive, the BK-style Cascade, the JZ-style Robust Ladder): in
//     every slot, every active station transmits with the same
//     probability, and the state that determines that probability is
//     updated only on globally observable events (a reception, i.e. some
//     other station's successful delivery). Such protocols are modeled by
//     a Controller.
//
//   - Windowed (back-on/back-off) protocols (Exp Back-on/Back-off,
//     Loglog-Iterated Back-off, the CJZ-style Repetition Ladder and the
//     monotone back-off family): time is partitioned into windows by a
//     deterministic schedule shared by all stations, and each active
//     station transmits in one uniformly chosen slot of each window. Such
//     protocols are modeled by a Schedule.
//
// Because all stations of a fair protocol observe the same events (§2 of
// the paper: a success is received by every non-transmitting station, and
// in a successful slot every still-active station was a non-transmitter),
// all active stations hold identical controller state at all times. The
// aggregate engines in internal/engine exploit this for O(1)-per-slot and
// O(min(m,w))-per-window simulation; the adapters in this package realize
// the same protocols as individual stations for the exact per-node
// simulator in internal/sim. Statistical agreement of the two realizations
// is enforced by tests in internal/engine.
package protocol

import (
	"fmt"

	"repro/internal/rng"
)

// Controller is the shared state machine of a fair protocol. A Controller
// is stateful and single-use: create a fresh one per simulated execution.
type Controller interface {
	// Prob returns the transmission probability every active station uses
	// in the given slot. Slots are numbered from 1.
	Prob(slot uint64) float64
	// Observe advances the state after the slot resolves. success reports
	// whether the slot carried a successful delivery (the only event
	// distinguishable on a channel without collision detection).
	Observe(slot uint64, success bool)
}

// Schedule enumerates the window lengths of a windowed protocol. A
// Schedule is stateful and single-use: create a fresh one per execution.
// All stations of an execution follow identical schedules, so windows are
// synchronized (all messages arrive in a single batch; §2).
type Schedule interface {
	// NextWindow returns the length in slots of the next window. It must
	// always return a value >= 1.
	NextWindow() int
}

// Station is a per-node protocol automaton driven by the exact simulator.
type Station interface {
	// WillTransmit reports whether the station transmits in slot. src is
	// the station's source of randomness for this decision.
	WillTransmit(slot uint64, src *rng.Rand) bool
	// Feedback delivers the station's view of the slot outcome:
	// transmitted is what WillTransmit returned, received reports whether
	// the station received a message (some other station delivered).
	// A station that has delivered its own message is removed by the
	// simulator and receives no further callbacks.
	Feedback(slot uint64, transmitted, received bool)
}

// FairStation adapts a Controller into a Station. Each station owns a
// private Controller instance; all instances evolve identically because
// they observe identical events.
type FairStation struct {
	ctrl Controller
}

// NewFairStation returns a Station running the fair protocol ctrl.
func NewFairStation(ctrl Controller) *FairStation {
	return &FairStation{ctrl: ctrl}
}

// WillTransmit implements Station.
func (s *FairStation) WillTransmit(slot uint64, src *rng.Rand) bool {
	return src.Bernoulli(s.ctrl.Prob(slot))
}

// Feedback implements Station. For a station that is still active after
// the slot, receiving a message is equivalent to the slot being successful.
func (s *FairStation) Feedback(slot uint64, transmitted, received bool) {
	s.ctrl.Observe(slot, received)
}

// WindowStation adapts a Schedule into a Station: at the start of each
// window it draws a uniform slot of the window and transmits only there.
type WindowStation struct {
	sched      Schedule
	windowEnd  uint64 // last slot of the current window; 0 before the first
	chosenSlot uint64
}

// NewWindowStation returns a Station running the windowed protocol sched.
// Each station must receive its own Schedule instance (schedules are
// stateful); instances must produce identical sequences.
func NewWindowStation(sched Schedule) *WindowStation {
	return &WindowStation{sched: sched}
}

// DrawWindow advances a windowed station's schedule by one window: it
// draws the next window length and the station's uniformly chosen
// transmission slot within it. windowEnd is the last slot of the previous
// window (0 before the first). It is the single definition of the
// windowed transmission process, shared by WindowStation and the
// event-driven engine in internal/dynamic so the two realizations cannot
// drift apart.
func DrawWindow(sched Schedule, windowEnd uint64, src *rng.Rand) (newEnd, chosen uint64, err error) {
	w := sched.NextWindow()
	if w < 1 {
		return 0, 0, fmt.Errorf("protocol: schedule %T returned window %d < 1", sched, w)
	}
	start := windowEnd + 1
	return windowEnd + uint64(w), start + uint64(src.Intn(w)), nil
}

// WillTransmit implements Station. A station that was inactive past one
// or more window boundaries (dynamic arrivals on a global clock)
// fast-forwards through the missed windows; a window whose chosen slot
// already passed is simply missed.
func (s *WindowStation) WillTransmit(slot uint64, src *rng.Rand) bool {
	for slot > s.windowEnd {
		end, chosen, err := DrawWindow(s.sched, s.windowEnd, src)
		if err != nil {
			panic(err.Error())
		}
		s.windowEnd = end
		s.chosenSlot = chosen
	}
	return slot == s.chosenSlot
}

// Feedback implements Station. Windowed protocols are oblivious to channel
// feedback other than their own delivery ack, so this is a no-op.
func (s *WindowStation) Feedback(slot uint64, transmitted, received bool) {}

// Compile-time interface conformance checks.
var (
	_ Station = (*FairStation)(nil)
	_ Station = (*WindowStation)(nil)
)
