package protocol

import "repro/internal/rng"

// This file defines the event-skip contract: the declarations that let a
// protocol promise "my transmission probability is constant (or boundedly
// varying) until my state changes", so that the kernel in internal/kernel
// can jump straight to the next interesting slot with one geometric draw
// instead of flipping a Bernoulli coin per slot.
//
// Two such contracts exist, one per protocol family:
//
//   - SkipController extends Controller for fair protocols. The controller
//     describes the channel's immediate future as a SkipPhase — a stretch
//     of slots over which, as long as no success occurs, the probability
//     sequence is periodic with one constant "special" class and one
//     boundedly-varying "regular" class. The kernel samples the next
//     success directly: exactly for the constant class, by thinning
//     (rejection against a dominating constant) for the varying class.
//
//   - AttemptStation extends Station for windowed protocols, whose
//     stations are channel-oblivious: the station exposes the slot of its
//     next transmission attempt so a calendar queue can jump from occupied
//     slot to occupied slot.
//
// Not every protocol can declare skip-safe phases. The tree-splitting
// protocols in internal/cd contend in every slot and mutate their group
// stack on every ternary outcome, so they have no quiet stretches to skip
// and intentionally implement neither interface; the per-slot simulator
// remains their only driver (see internal/cd's package comment).

// SkipPhase describes a fair controller's transmission probabilities over
// the slots [start, End] under the assumption that none of those slots
// carries a success, where start is the slot passed to SkipPhase. Slots
// fall into two classes by residue mod Period:
//
//   - special: slot % Period == SpecialResidue (only when Period ≥ 2).
//     The probability on every special slot of the phase is exactly
//     SpecialProb, a constant.
//   - regular: every other slot. The probability on a regular slot s is
//     ProbQuiet(s) ∈ [RegularLo, RegularHi]. RegularLo == RegularHi
//     promises the regular class is constant too.
//
// When Period ≤ 1 there is no special class: every slot is regular.
//
// The phase ends at End (inclusive) because observing slot End without a
// success changes controller state in a way the bounds no longer cover
// (e.g. Log-Fails Adaptive's patience flush); a success anywhere in the
// phase ends it early. Either way the kernel re-requests a fresh phase.
type SkipPhase struct {
	End            uint64
	Period         uint64
	SpecialResidue uint64
	SpecialProb    float64
	RegularLo      float64
	RegularHi      float64
}

// SkipController is a Controller that declares skip-safe phases, enabling
// the event-skip fair kernel (internal/kernel). Implementations maintain a
// cursor over slots: the cursor starts at slot 1 and advances past a slot
// when the slot is observed — explicitly via Observe, or in bulk via
// SkipTo. SkipPhase and ProbQuiet are always asked about slots at or ahead
// of the cursor.
//
// The contract ties the three methods to Prob/Observe semantics: for any
// slot sequence, driving the controller with Prob+Observe slot by slot and
// driving it with SkipPhase/ProbQuiet/SkipTo must yield identical states
// whenever the intervening slots carry no success.
type SkipController interface {
	Controller

	// SkipPhase returns a phase description starting at the cursor
	// (slot == cursor). The returned End must be ≥ slot.
	SkipPhase(slot uint64) SkipPhase

	// ProbQuiet returns the probability the controller would use in slot
	// s — equal to what Prob(s) would return after observing failures for
	// every slot in [cursor, s). It must not mutate state and is only
	// called for s within the current phase.
	ProbQuiet(s uint64) float64

	// SkipTo advances the cursor to slot s, updating state exactly as
	// Observe(x, false) for every x in [cursor, s) would. s is at most
	// End+1 of the current phase.
	SkipTo(s uint64)
}

// AttemptStation is a Station whose transmission slots can be enumerated
// without visiting the slots in between. Implementations promise that
// WillTransmit depends only on the station's own schedule and randomness —
// never on Feedback — which is what makes jumping over unvisited slots
// sound (nothing the station would have heard can change its behavior).
//
// A station must be driven through exactly one of its interfaces per
// execution: either slot-by-slot via WillTransmit, or event-by-event via
// NextAttempt. The two consume randomness differently.
type AttemptStation interface {
	Station

	// NextAttempt returns the first slot strictly greater than after in
	// which the station transmits, advancing its schedule state past that
	// slot's window. after = 0 yields the first attempt; for a station
	// whose message arrives at slot a on a global window clock, seeding
	// with after = a−1 reproduces WillTransmit's fast-forward semantics
	// (windows whose chosen slot precedes the arrival are missed).
	NextAttempt(after uint64, src *rng.Rand) (uint64, error)
}

// NextAttempt implements AttemptStation by drawing windows until one's
// uniformly chosen slot lands beyond after, via the same DrawWindow
// primitive WillTransmit uses.
func (s *WindowStation) NextAttempt(after uint64, src *rng.Rand) (uint64, error) {
	for s.chosenSlot <= after {
		end, chosen, err := DrawWindow(s.sched, s.windowEnd, src)
		if err != nil {
			return 0, err
		}
		s.windowEnd = end
		s.chosenSlot = chosen
	}
	return s.chosenSlot, nil
}

var _ AttemptStation = (*WindowStation)(nil)
