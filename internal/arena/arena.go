// Package arena runs every registered protocol configuration — the
// paper's originals and the no-collision-detection families of the
// related work (internal/nocd) — through a shared gauntlet of
// adversarial workload scenarios, and ranks them by robustness.
//
// The arena composes the layers beneath it rather than reimplementing
// them: protocols come from harness.NamedSystems (so the CLI, spec and
// serving layers name arena contestants exactly as they name sweep
// protocols), workloads come from the internal/scenario catalog
// (thundering herd, ρ-bounded adversary, jammed channel, …), and each
// (protocol, scenario) cell executes through internal/throughput's
// matched-pairs sweep at one fixed offered load — every protocol faces
// byte-identical arrival sequences, jam masks and population
// assignments, and replication is either fixed-count or
// adaptive-precision (internal/montecarlo).
//
// The score of a cell is the fraction of the offered load the protocol
// sustained: mean delivered-per-slot throughput divided by λ, measured
// to completion or to the drain budget for saturated runs. 1.0 means
// the protocol kept up with the adversary; 0 means it delivered
// nothing. A protocol's overall robustness is the unweighted mean of
// its scenario scores, with a CI95 propagated from the per-scenario
// confidence intervals. Results are bit-for-bit reproducible for a
// given seed regardless of parallelism.
package arena

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/dynamic"
	"repro/internal/harness"
	"repro/internal/montecarlo"
	"repro/internal/protocol"
	"repro/internal/scenario"
	"repro/internal/throughput"
)

// Defaults for Config's zero values.
const (
	// DefaultLambda is the offered load every cell runs at: high enough
	// to stress adaptive protocols, low enough that stable protocols
	// drain.
	DefaultLambda = 0.2
	// DefaultMessages is the number of messages per execution.
	DefaultMessages = 400
	// DefaultRuns is the fixed replication count per cell.
	DefaultRuns = 3
)

// DefaultScenarios returns the arena's standard adversarial gauntlet:
// the thundering herd, the ρ-bounded adversary and the jammed channel.
// The full scenario catalog (scenario.Names) is accepted too.
func DefaultScenarios() []string {
	return []string{"herd", "rho", "jammed"}
}

// Config parameterizes Run.
type Config struct {
	// Protocols lists the contestants by registry name or alias
	// (harness.NamedSystems); empty means every registered
	// configuration.
	Protocols []string
	// Scenarios lists workload scenarios by catalog name
	// (internal/scenario); empty means DefaultScenarios(). Column order
	// in the result follows this order.
	Scenarios []string
	// Lambda is the offered load in messages per slot (default
	// DefaultLambda).
	Lambda float64
	// Messages is the number of messages per execution (default
	// DefaultMessages).
	Messages int
	// Runs is the number of executions per (protocol, scenario) cell
	// (default DefaultRuns). Ignored when Precision is enabled.
	Runs int
	// Seed is the master seed (default 1). Workload randomness is keyed
	// by (Seed, scenario, λ, run) only, so every protocol faces
	// identical workloads.
	Seed uint64
	// Precision, when enabled, replaces Runs with adaptive-precision
	// replication per cell (see throughput.Config.Precision).
	Precision montecarlo.Precision
	// MaxSlots is the per-execution slot budget; 0 derives the
	// workload's drain budget.
	MaxSlots uint64
	// Parallelism bounds concurrent executions; defaults to GOMAXPROCS.
	Parallelism int
	// Progress, if non-nil, is invoked after each completed execution.
	// It may be called concurrently and must be safe for concurrent
	// use.
	Progress func(protocol, scenario string, run int, res dynamic.Result)
}

// ScenarioScore is one (protocol, scenario) cell of the ranking.
type ScenarioScore struct {
	// Scenario is the catalog name.
	Scenario string
	// Score is the sustained fraction of the offered load: mean
	// throughput / λ.
	Score float64
	// CI95 is the half-width of the score's 95% confidence interval
	// across runs.
	CI95 float64
	// Completed counts runs that drained every message within budget;
	// Runs is the number of executions behind the cell.
	Completed int
	Runs      int
}

// Saturated reports whether any of the cell's runs hit the slot budget
// before draining.
func (s *ScenarioScore) Saturated() bool { return s.Completed < s.Runs }

// Entry is one protocol's row of the ranking.
type Entry struct {
	// Protocol is the registry's canonical name.
	Protocol string
	// Display is the configuration's display name (System.Name).
	Display string
	// Scenarios holds the per-scenario cells, aligned with
	// Result.Scenarios.
	Scenarios []ScenarioScore
	// Overall is the unweighted mean of the scenario scores.
	Overall float64
	// CI95 is the propagated half-width: √(Σ CIᵢ²)/n.
	CI95 float64
}

// Result is a full arena outcome.
type Result struct {
	// Lambda, Messages and Runs echo the effective configuration.
	Lambda   float64
	Messages int
	Runs     int
	// Scenarios lists the gauntlet in column order.
	Scenarios []string
	// Ranking holds one entry per protocol, best overall score first
	// (ties broken by protocol name).
	Ranking []Entry
}

// contestant pairs a registry entry with its dynamic-engine adapter.
type contestant struct {
	name    string // canonical registry name
	display string
	proto   throughput.Protocol
}

// resolve maps registry names to throughput protocols. The contender
// estimate k sizes constructors that derive parameters from the network
// size (Log-Fails Adaptive).
func resolve(names []string, k int) ([]contestant, error) {
	if len(names) == 0 {
		names = harness.SystemNames()
	}
	out := make([]contestant, 0, len(names))
	seen := map[string]bool{}
	for _, name := range names {
		canon, err := harness.CanonicalSystemName(name)
		if err != nil {
			return nil, fmt.Errorf("arena: %w", err)
		}
		if seen[canon] {
			return nil, fmt.Errorf("arena: protocol %q listed twice", canon)
		}
		seen[canon] = true
		sys, err := harness.SystemByName(canon)
		if err != nil {
			return nil, fmt.Errorf("arena: %w", err)
		}
		c := contestant{name: canon, display: sys.Name()}
		switch s := sys.(type) {
		case *harness.FairSystem:
			c.proto = throughput.Protocol{
				Name:          canon,
				NewController: func() (protocol.Controller, error) { return s.NewController(k) },
				Clock:         dynamic.ClockGlobal,
			}
		case *harness.WindowSystem:
			c.proto = throughput.Protocol{
				Name:        canon,
				NewSchedule: func() (protocol.Schedule, error) { return s.NewSchedule(k) },
			}
		default:
			return nil, fmt.Errorf("arena: protocol %q has no dynamic-engine adapter", canon)
		}
		out = append(out, c)
	}
	return out, nil
}

// Run executes the arena and returns the robustness ranking.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation, inherited by every underlying
// throughput sweep.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	lambda := cfg.Lambda
	if lambda == 0 {
		lambda = DefaultLambda
	}
	if !(lambda > 0) || math.IsInf(lambda, 0) {
		return nil, fmt.Errorf("arena: offered load must be a finite value > 0, got %v", lambda)
	}
	messages := cfg.Messages
	if messages <= 0 {
		messages = DefaultMessages
	}
	runs := cfg.Runs
	if runs <= 0 {
		runs = DefaultRuns
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	scenarios := cfg.Scenarios
	if len(scenarios) == 0 {
		scenarios = DefaultScenarios()
	}
	workloads := make([]scenario.Workload, len(scenarios))
	seenScn := map[string]bool{}
	for i, name := range scenarios {
		w, err := scenario.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("arena: %w", err)
		}
		if seenScn[w.Name] {
			return nil, fmt.Errorf("arena: scenario %q listed twice", w.Name)
		}
		seenScn[w.Name] = true
		workloads[i] = w
	}
	contestants, err := resolve(cfg.Protocols, messages)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Lambda:    lambda,
		Messages:  messages,
		Runs:      runs,
		Scenarios: make([]string, len(workloads)),
		Ranking:   make([]Entry, len(contestants)),
	}
	for i, w := range workloads {
		res.Scenarios[i] = w.Name
	}
	protocols := make([]throughput.Protocol, len(contestants))
	for i, c := range contestants {
		protocols[i] = c.proto
		res.Ranking[i] = Entry{
			Protocol:  c.name,
			Display:   c.display,
			Scenarios: make([]ScenarioScore, len(workloads)),
		}
	}

	// One matched-pairs throughput sweep per scenario: within a
	// scenario every protocol faces identical workload instances, and
	// the sweep's fixed fold order keeps results independent of
	// scheduling.
	for scnIdx, w := range workloads {
		w := w
		tcfg := throughput.Config{
			Lambdas:     []float64{lambda},
			Messages:    messages,
			Runs:        runs,
			Precision:   cfg.Precision,
			Seed:        seed,
			Scenario:    w,
			MaxSlots:    cfg.MaxSlots,
			Parallelism: cfg.Parallelism,
		}
		if cfg.Progress != nil {
			tcfg.Progress = func(protocol string, _ float64, run int, r dynamic.Result) {
				cfg.Progress(protocol, w.Name, run, r)
			}
		}
		series, err := throughput.RunContext(ctx, protocols, tcfg)
		if err != nil {
			return nil, fmt.Errorf("arena: scenario %q: %w", w.Name, err)
		}
		for i := range series {
			pt := &series[i].Points[0]
			res.Ranking[i].Scenarios[scnIdx] = ScenarioScore{
				Scenario:  w.Name,
				Score:     pt.Throughput.Mean() / lambda,
				CI95:      pt.Throughput.CIAt(0.95) / lambda,
				Completed: pt.Completed,
				Runs:      pt.Runs,
			}
		}
	}

	// Overall robustness: unweighted mean of scenario scores, CI95
	// propagated as the half-width of the mean of independent
	// estimates.
	for i := range res.Ranking {
		e := &res.Ranking[i]
		var sum, varSum float64
		for _, s := range e.Scenarios {
			sum += s.Score
			varSum += s.CI95 * s.CI95
		}
		n := float64(len(e.Scenarios))
		e.Overall = sum / n
		e.CI95 = math.Sqrt(varSum) / n
	}
	sort.SliceStable(res.Ranking, func(i, j int) bool {
		if res.Ranking[i].Overall != res.Ranking[j].Overall {
			return res.Ranking[i].Overall > res.Ranking[j].Overall
		}
		return res.Ranking[i].Protocol < res.Ranking[j].Protocol
	})
	return res, nil
}
