package arena_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/arena"
	"repro/internal/dynamic"
	"repro/internal/harness"
)

// smallConfig keeps test sweeps fast while still exercising fair,
// windowed and adversarial paths.
func smallConfig() arena.Config {
	return arena.Config{
		Protocols: []string{"one-fail", "exp-bb", "bk-cascade", "cjz-ladder", "jz-robust"},
		Scenarios: []string{"herd", "jammed"},
		Messages:  120,
		Runs:      2,
		Seed:      7,
	}
}

// TestSeedDeterminism: the rendered ranking must be byte-identical
// across repeated runs and across different parallelism — the fold
// order, not the scheduler, determines the result.
func TestSeedDeterminism(t *testing.T) {
	t.Parallel()
	render := func(par int) (string, string) {
		cfg := smallConfig()
		cfg.Parallelism = par
		res, err := arena.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var table, csv bytes.Buffer
		if err := arena.Table(&table, res); err != nil {
			t.Fatal(err)
		}
		if err := arena.CSV(&csv, res); err != nil {
			t.Fatal(err)
		}
		return table.String(), csv.String()
	}
	t1, c1 := render(1)
	t4, c4 := render(4)
	if t1 != t4 {
		t.Errorf("table differs between parallelism 1 and 4:\n--- par=1 ---\n%s\n--- par=4 ---\n%s", t1, t4)
	}
	if c1 != c4 {
		t.Errorf("csv differs between parallelism 1 and 4:\n--- par=1 ---\n%s\n--- par=4 ---\n%s", c1, c4)
	}
}

// TestDefaultsCoverRegistry: with no protocol filter the ranking covers
// every registry entry, so a new protocol joins the arena by
// registration alone.
func TestDefaultsCoverRegistry(t *testing.T) {
	t.Parallel()
	cfg := arena.Config{
		Scenarios: []string{"herd"},
		Messages:  60,
		Runs:      1,
		Seed:      3,
	}
	res, err := arena.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := harness.SystemNames()
	if len(res.Ranking) != len(names) {
		t.Fatalf("ranking has %d entries, want %d (full registry)", len(res.Ranking), len(names))
	}
	got := map[string]bool{}
	for _, e := range res.Ranking {
		got[e.Protocol] = true
	}
	for _, n := range names {
		if !got[n] {
			t.Errorf("registry entry %q missing from ranking", n)
		}
	}
}

// TestRankingShape: scores are sane fractions of offered load, CIs are
// non-negative, the overall column is sorted descending, and every row
// carries one cell per scenario.
func TestRankingShape(t *testing.T) {
	t.Parallel()
	cfg := smallConfig()
	res, err := arena.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda != arena.DefaultLambda {
		t.Errorf("Lambda = %v, want default %v", res.Lambda, arena.DefaultLambda)
	}
	prev := 2.0
	for _, e := range res.Ranking {
		if len(e.Scenarios) != len(res.Scenarios) {
			t.Fatalf("%s: %d cells, want %d", e.Protocol, len(e.Scenarios), len(res.Scenarios))
		}
		if e.Overall > prev {
			t.Errorf("ranking not sorted: %s overall %v after %v", e.Protocol, e.Overall, prev)
		}
		prev = e.Overall
		if e.Overall < 0 || e.Overall > 1.5 || e.CI95 < 0 {
			t.Errorf("%s: overall %v ±%v out of range", e.Protocol, e.Overall, e.CI95)
		}
		if e.Display == "" {
			t.Errorf("%s: empty display name", e.Protocol)
		}
		for i, s := range e.Scenarios {
			if s.Scenario != res.Scenarios[i] {
				t.Errorf("%s cell %d: scenario %q, want %q", e.Protocol, i, s.Scenario, res.Scenarios[i])
			}
			if s.Score < 0 || s.Score > 1.5 || s.CI95 < 0 {
				t.Errorf("%s/%s: score %v ±%v out of range", e.Protocol, s.Scenario, s.Score, s.CI95)
			}
			if s.Runs < 1 || s.Completed > s.Runs {
				t.Errorf("%s/%s: completed %d of %d runs", e.Protocol, s.Scenario, s.Completed, s.Runs)
			}
		}
	}
}

// TestValidation: unknown protocols and scenarios, duplicates, and bad
// loads are rejected with the registry listings.
func TestValidation(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		cfg  arena.Config
		want string
	}{
		{"unknown protocol", arena.Config{Protocols: []string{"no-such"}}, "unknown protocol"},
		{"duplicate protocol", arena.Config{Protocols: []string{"ofa", "one-fail"}}, "listed twice"},
		{"unknown scenario", arena.Config{Scenarios: []string{"no-such"}}, "unknown scenario"},
		{"duplicate scenario", arena.Config{Scenarios: []string{"herd", "herd"}}, "listed twice"},
		{"bad lambda", arena.Config{Lambda: -1}, "offered load"},
	}
	for _, tc := range cases {
		_, err := arena.Run(tc.cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestProgressCallback: one callback per completed execution, tagged
// with the requested protocols and scenarios.
func TestProgressCallback(t *testing.T) {
	t.Parallel()
	var mu sync.Mutex
	counts := map[string]int{}
	cfg := arena.Config{
		Protocols: []string{"exp-bb", "cjz-ladder"},
		Scenarios: []string{"herd"},
		Messages:  60,
		Runs:      2,
		Seed:      5,
		Progress: func(protocol, scn string, run int, res dynamic.Result) {
			mu.Lock()
			counts[protocol+"/"+scn]++
			mu.Unlock()
		},
	}
	if _, err := arena.Run(cfg); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"exp-bb/herd", "cjz-ladder/herd"} {
		if counts[key] != 2 {
			t.Errorf("progress calls for %s = %d, want 2", key, counts[key])
		}
	}
}
