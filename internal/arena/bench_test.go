package arena_test

import (
	"testing"

	"repro/internal/arena"
)

// BenchmarkArenaSweep pins the cost of a small full-stack arena run —
// protocol resolution, matched-pairs workload generation, dynamic
// simulation across fair and windowed engines, and ranking — so
// regressions in any layer below surface in the benchjson diff.
func BenchmarkArenaSweep(b *testing.B) {
	cfg := arena.Config{
		Protocols:   []string{"one-fail", "exp-bb", "bk-cascade", "cjz-ladder", "jz-robust"},
		Scenarios:   []string{"herd", "jammed"},
		Messages:    120,
		Runs:        2,
		Seed:        7,
		Parallelism: 1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := arena.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
