package arena

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table renders the ranking as an aligned text table: one row per
// protocol, best first, with the overall robustness score and one
// column per scenario, each as score ± CI95. Saturated cells (some run
// hit the slot budget before draining) are marked with '*'. Output is
// byte-identical for identical results.
func Table(w io.Writer, res *Result) error {
	if _, err := fmt.Fprintf(w, "Arena robustness ranking: λ=%v, %d messages, %d runs per cell\n",
		res.Lambda, res.Messages, res.Runs); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "score = sustained fraction of offered load (1.0 = kept up), ± CI95\n\n"); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "rank\tprotocol\toverall\t")
	for _, s := range res.Scenarios {
		fmt.Fprintf(tw, "%s\t", s)
	}
	fmt.Fprintln(tw)
	saturated := false
	for i := range res.Ranking {
		e := &res.Ranking[i]
		fmt.Fprintf(tw, "%d\t%s\t%.4f ±%.4f\t", i+1, e.Protocol, e.Overall, e.CI95)
		for j := range e.Scenarios {
			s := &e.Scenarios[j]
			mark := ""
			if s.Saturated() {
				mark = "*"
				saturated = true
			}
			fmt.Fprintf(tw, "%.4f ±%.4f%s\t", s.Score, s.CI95, mark)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if saturated {
		if _, err := fmt.Fprintf(w, "\n* some runs hit the slot budget before draining (saturated)\n"); err != nil {
			return err
		}
	}
	return nil
}

// CSV renders the ranking as comma-separated values with one header
// row: rank, protocol, display, overall and its CI, then score and CI
// per scenario. Output is byte-identical for identical results.
func CSV(w io.Writer, res *Result) error {
	cols := []string{"rank", "protocol", "display", "overall", "overall_ci95"}
	for _, s := range res.Scenarios {
		cols = append(cols, s, s+"_ci95")
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i := range res.Ranking {
		e := &res.Ranking[i]
		row := []string{
			fmt.Sprint(i + 1),
			e.Protocol,
			fmt.Sprintf("%q", e.Display),
			fmt.Sprintf("%.6f", e.Overall),
			fmt.Sprintf("%.6f", e.CI95),
		}
		for j := range e.Scenarios {
			s := &e.Scenarios[j]
			row = append(row, fmt.Sprintf("%.6f", s.Score), fmt.Sprintf("%.6f", s.CI95))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
