// Package spec is the declarative experiment layer shared by the
// library façade (mac.Run), the CLI (cmd/macsim) and the HTTP API
// (internal/server): one canonical, validated, hashable description per
// experiment, so every workload is defined once and reachable from all
// three front ends with byte-identical semantics.
//
// The flow is always the same:
//
//	spec → Validate(Limits) → CanonicalKey → Run(ctx) → events → Result
//
// An ExperimentSpec is a tagged union over the experiment kinds
// (solve, evaluate, throughput, scenario, arena). Validate normalizes it in
// place — defaults applied, protocol aliases canonicalized — after
// which json.Marshal yields the canonical parameter encoding and
// CanonicalKey the cache key the serving subsystem stores results
// under. Run executes the experiment with context cancellation and
// streams typed progress events; the result documents marshal to the
// exact JSON the HTTP API serves and the CLI's -json flag prints.
//
// The repeated-run kinds accept a PrecisionSpec, which replaces their
// fixed runs count with adaptive-precision replication
// (internal/montecarlo): each point repeats until its Student-t
// confidence interval is narrower than the requested relative
// precision, and the result documents carry the per-point error bar
// (ci95) and replication count (repsUsed). A nil PrecisionSpec keeps
// fixed-rep mode and its pre-existing canonical keys.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/arena"
	"repro/internal/harness"
	"repro/internal/montecarlo"
	"repro/internal/scenario"
	"repro/internal/throughput"
)

// ExperimentKind names one of the experiment families.
type ExperimentKind string

// Experiment kinds, one per sub-spec (and per /v1/* submit endpoint).
const (
	// KindSolve is one static k-selection execution.
	KindSolve ExperimentKind = "solve"
	// KindEvaluate is the paper's static sweep (Table 1 / Figure 1).
	KindEvaluate ExperimentKind = "evaluate"
	// KindThroughput is the λ-sweep saturation experiment over a benign
	// arrival shape.
	KindThroughput ExperimentKind = "throughput"
	// KindScenario is the λ-sweep over a catalog workload scenario.
	KindScenario ExperimentKind = "scenario"
	// KindArena is the cross-paper robustness arena: every contestant
	// protocol against every adversarial scenario, ranked.
	KindArena ExperimentKind = "arena"
)

// ExperimentSpec is the tagged union: Kind selects which sub-spec is
// active; exactly that field must be non-nil. The zero Kind is inferred
// when exactly one sub-spec is set.
type ExperimentSpec struct {
	Kind       ExperimentKind  `json:"kind,omitempty"`
	Solve      *SolveSpec      `json:"solve,omitempty"`
	Evaluate   *EvaluateSpec   `json:"evaluate,omitempty"`
	Throughput *ThroughputSpec `json:"throughput,omitempty"`
	Scenario   *ThroughputSpec `json:"scenario,omitempty"`
	Arena      *ArenaSpec      `json:"arena,omitempty"`
}

// ForSolve wraps a SolveSpec into an ExperimentSpec.
func ForSolve(s SolveSpec) ExperimentSpec {
	return ExperimentSpec{Kind: KindSolve, Solve: &s}
}

// ForEvaluate wraps an EvaluateSpec into an ExperimentSpec.
func ForEvaluate(s EvaluateSpec) ExperimentSpec {
	return ExperimentSpec{Kind: KindEvaluate, Evaluate: &s}
}

// ForThroughput wraps a ThroughputSpec into an ExperimentSpec of kind
// "throughput" (benign arrival shapes).
func ForThroughput(s ThroughputSpec) ExperimentSpec {
	return ExperimentSpec{Kind: KindThroughput, Throughput: &s}
}

// ForScenario wraps a ThroughputSpec into an ExperimentSpec of kind
// "scenario" (catalog workloads).
func ForScenario(s ThroughputSpec) ExperimentSpec {
	return ExperimentSpec{Kind: KindScenario, Scenario: &s}
}

// ForArena wraps an ArenaSpec into an ExperimentSpec.
func ForArena(s ArenaSpec) ExperimentSpec {
	return ExperimentSpec{Kind: KindArena, Arena: &s}
}

// Limits bound what one experiment may ask of the simulators, so a
// public endpoint cannot be asked for a week of CPU time. The zero
// value of every field means unlimited — service policy belongs to the
// caller (internal/server applies its serving defaults); the library
// front ends validate with Limits{}.
type Limits struct {
	// MaxK bounds k for solve and each evaluate ks entry.
	MaxK int
	// MaxExp bounds evaluate maxExp.
	MaxExp int
	// MaxRuns bounds runs per point (fixed-rep mode).
	MaxRuns int
	// MaxReps bounds precision.maxReps, the adaptive-mode replication
	// cap per point.
	MaxReps int
	// MaxMessages bounds messages per dynamic execution.
	MaxMessages int
	// MaxLambdas bounds the offered-load grid length.
	MaxLambdas int
	// MaxKs bounds the evaluate ks grid length.
	MaxKs int
	// InteractiveCost is the interactive/batch boundary (in estimated
	// slots, see EstimatedCost) used by the serving subsystem's priority
	// lane; 0 selects the built-in default (2^16). Unlike the Max*
	// fields it classifies requests rather than rejecting them.
	InteractiveCost int
	// MaxWindow bounds a session's aggregation window length in slots.
	MaxWindow int
	// MaxSessionWindows bounds how many windows one session may
	// simulate. Unlike the other Max* fields it clamps rather than
	// rejects: a session asking for unbounded life (maxWindows 0) is
	// capped here, so a serving deployment never hosts a truly
	// immortal simulation.
	MaxSessionWindows int
}

// ProtocolSpec selects a protocol configuration from the
// internal/harness named registry, optionally overriding its
// parameters (e.g. {"delta": 2.9} on "one-fail"). It marshals as the
// plain registry name when no parameters are set, so the canonical
// encoding of the common case is just "one-fail".
type ProtocolSpec struct {
	// Name is a registry name or alias ("one-fail", "ofa", …).
	Name string
	// Params overrides protocol parameters; keys are per-protocol
	// ("delta", "r", "xi_t"). Unknown keys fail validation.
	Params map[string]float64
}

// MarshalJSON implements the canonical encoding: a bare string without
// parameters, an object otherwise (map keys marshal sorted, so the
// encoding is canonical either way).
func (p ProtocolSpec) MarshalJSON() ([]byte, error) {
	if len(p.Params) == 0 {
		return json.Marshal(p.Name)
	}
	return json.Marshal(struct {
		Name   string             `json:"name"`
		Params map[string]float64 `json:"params"`
	}{p.Name, p.Params})
}

// UnmarshalJSON accepts both encodings.
func (p *ProtocolSpec) UnmarshalJSON(data []byte) error {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) > 0 && trimmed[0] == '"' {
		p.Params = nil
		return json.Unmarshal(trimmed, &p.Name)
	}
	var obj struct {
		Name   string             `json:"name"`
		Params map[string]float64 `json:"params"`
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&obj); err != nil {
		return fmt.Errorf("protocol spec: %w", err)
	}
	p.Name, p.Params = obj.Name, obj.Params
	return nil
}

// validate canonicalizes the name, drops parameters spelled at their
// registry defaults (so implicit and explicit defaults hash to the
// same canonical key), and probes the registry constructor, so bad
// names and bad parameters fail before any work is queued.
func (p *ProtocolSpec) validate() error {
	name, err := harness.CanonicalSystemName(p.Name)
	if err != nil {
		return err
	}
	p.Name = name
	if defaults := harness.DefaultParams(p.Name); len(p.Params) > 0 && len(defaults) > 0 {
		for key, v := range p.Params {
			if def, ok := defaults[key]; ok && def == v {
				delete(p.Params, key)
			}
		}
	}
	if len(p.Params) == 0 {
		p.Params = nil
		return nil
	}
	_, err = harness.SystemBySpec(p.Name, p.Params)
	return err
}

// PrecisionSpec requests adaptive-precision replication
// (internal/montecarlo) for the repeated-run experiment kinds: instead
// of a fixed runs count, each point replicates until the Student-t
// confidence interval of its primary metric (mean slots for evaluate,
// mean throughput for throughput/scenario) is narrower than
// Epsilon·|mean| at the Confidence level, between MinReps and MaxReps
// replications. Replication r draws the identical randomness fixed-rep
// run r would, so minReps == maxReps reproduces fixed-rep results
// exactly. A nil PrecisionSpec is fixed-rep mode (and encodes to
// nothing, leaving pre-existing canonical keys untouched).
type PrecisionSpec struct {
	// Epsilon is the requested relative precision in (0, 1): 0.01 asks
	// for ±1% of the mean. Required.
	Epsilon float64 `json:"epsilon"`
	// Confidence is the two-sided confidence level (default 0.95).
	Confidence float64 `json:"confidence"`
	// MinReps is the floor before the stopping rule is consulted
	// (default 3, minimum 2).
	MinReps int `json:"minReps"`
	// MaxReps caps replications per point (default 64; bounded by
	// Limits.MaxReps when serving).
	MaxReps int `json:"maxReps"`
}

// validate fills defaults in place — after it, explicit and implicit
// defaults produce the identical canonical encoding — and checks the
// stopping rule and the serving limit.
func (p *PrecisionSpec) validate(l Limits) error {
	mc := montecarlo.Precision(*p)
	if !mc.Enabled() {
		return fmt.Errorf("precision: epsilon must be in (0, 1), got %v (omit precision entirely for fixed-rep mode)", p.Epsilon)
	}
	mc = mc.WithDefaults()
	if err := mc.Validate(); err != nil {
		return err
	}
	if l.MaxReps > 0 && mc.MaxReps > l.MaxReps {
		return fmt.Errorf("precision: maxReps must be in [minReps, %d], got %d", l.MaxReps, mc.MaxReps)
	}
	*p = PrecisionSpec(mc)
	return nil
}

// engine converts the spec (nil = fixed-rep mode) to the montecarlo
// stopping rule.
func (p *PrecisionSpec) engine() montecarlo.Precision {
	if p == nil {
		return montecarlo.Precision{}
	}
	return montecarlo.Precision(*p)
}

// SolveSpec is one static k-selection execution — mac.Protocol.Solve as
// data. Field order fixes the canonical encoding.
type SolveSpec struct {
	// Protocol names the configuration (default "one-fail").
	Protocol ProtocolSpec `json:"protocol"`
	// K is the number of contenders (default 1000).
	K int `json:"k"`
	// Seed keys all channel randomness (default 1).
	Seed uint64 `json:"seed"`
}

func (s *SolveSpec) validate(l Limits) error {
	if s.Protocol.Name == "" {
		s.Protocol.Name = "one-fail"
	}
	if err := s.Protocol.validate(); err != nil {
		return err
	}
	if s.K == 0 {
		s.K = 1000
	}
	if s.K < 1 {
		return fmt.Errorf("k must be ≥ 1, got %d", s.K)
	}
	if l.MaxK > 0 && s.K > l.MaxK {
		return fmt.Errorf("k must be in [1, %d], got %d", l.MaxK, s.K)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return nil
}

// EvaluateSpec is the paper's static sweep — mac.Evaluate as data.
type EvaluateSpec struct {
	// Protocols lists registry configurations; empty means the paper's
	// five-row lineup.
	Protocols []ProtocolSpec `json:"protocols,omitempty"`
	// MaxExp selects sizes 10..10^maxExp (default 4); ignored (and
	// zeroed, for canonical hashing) when Ks is set.
	MaxExp int `json:"maxExp,omitempty"`
	// Ks overrides the size grid.
	Ks []int `json:"ks,omitempty"`
	// Runs is the number of averaged runs per point (default 3). It is
	// ignored — and zeroed, for canonical hashing — when Precision is
	// set.
	Runs int `json:"runs"`
	// Seed is the master seed (default 1).
	Seed uint64 `json:"seed"`
	// Precision, when set, replaces the fixed runs count with adaptive
	// stopping at the requested relative precision.
	Precision *PrecisionSpec `json:"precision,omitempty"`

	// Systems is the library-only escape hatch for custom protocol
	// configurations that have no registry spelling (mac.Evaluate uses
	// it). It is never serialized and makes the spec unhashable.
	Systems []harness.System `json:"-"`
}

func (s *EvaluateSpec) validate(l Limits) error {
	for i := range s.Protocols {
		if err := s.Protocols[i].validate(); err != nil {
			return err
		}
	}
	if len(s.Ks) > 0 {
		s.MaxExp = 0
		if l.MaxKs > 0 && len(s.Ks) > l.MaxKs {
			return fmt.Errorf("at most %d ks per request, got %d", l.MaxKs, len(s.Ks))
		}
		for _, k := range s.Ks {
			if k < 1 {
				return fmt.Errorf("ks entries must be ≥ 1, got %d", k)
			}
			if l.MaxK > 0 && k > l.MaxK {
				return fmt.Errorf("ks entries must be in [1, %d], got %d", l.MaxK, k)
			}
		}
	} else {
		if s.MaxExp == 0 {
			s.MaxExp = 4
		}
		if s.MaxExp < 1 {
			return fmt.Errorf("maxExp must be ≥ 1, got %d", s.MaxExp)
		}
		if l.MaxExp > 0 && s.MaxExp > l.MaxExp {
			return fmt.Errorf("maxExp must be in [1, %d], got %d", l.MaxExp, s.MaxExp)
		}
	}
	if s.Precision != nil {
		if err := s.Precision.validate(l); err != nil {
			return err
		}
		s.Runs = 0 // ignored in adaptive mode; zeroed so it cannot split cache keys
	} else {
		if s.Runs == 0 {
			s.Runs = 3
		}
		if err := validateRuns(s.Runs, l); err != nil {
			return err
		}
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return nil
}

// systems resolves the sweep's protocol lineup.
func (s *EvaluateSpec) systems() ([]harness.System, error) {
	if len(s.Systems) > 0 {
		return s.Systems, nil
	}
	if len(s.Protocols) == 0 {
		return harness.PaperSystems(), nil
	}
	out := make([]harness.System, len(s.Protocols))
	for i, p := range s.Protocols {
		sys, err := harness.SystemBySpec(p.Name, p.Params)
		if err != nil {
			return nil, err
		}
		out[i] = sys
	}
	return out, nil
}

// ThroughputSpec is the λ-sweep saturation experiment —
// mac.EvaluateDynamic as data. Kind "throughput" selects a benign
// arrival Shape; kind "scenario" selects a catalog workload by name
// (distinct kinds, so the two hash into disjoint key spaces exactly as
// the two endpoints always did).
type ThroughputSpec struct {
	// Scenario names a catalog workload; only kind "scenario" sets it.
	Scenario string `json:"scenario,omitempty"`
	// Shape selects a benign arrival pattern for kind "throughput"
	// (default "poisson"); must be empty for kind "scenario".
	Shape string `json:"shape,omitempty"`
	// Lambdas is the offered-load grid (default 0.05, 0.1, 0.2).
	Lambdas []float64 `json:"lambdas"`
	// Messages per execution (default 2000).
	Messages int `json:"messages"`
	// Runs per (protocol, λ) point (default 2). It is ignored — and
	// zeroed, for canonical hashing — when Precision is set.
	Runs int `json:"runs"`
	// Seed is the master seed (default 1).
	Seed uint64 `json:"seed"`
	// Precision, when set, replaces the fixed runs count with adaptive
	// stopping at the requested relative precision.
	Precision *PrecisionSpec `json:"precision,omitempty"`

	// Lineup is the library-only protocol lineup override
	// (mac.EvaluateDynamic uses it); empty means the standard dynamic
	// lineup. Never serialized; makes the spec unhashable.
	Lineup []throughput.Protocol `json:"-"`
	// Config is the library-only full-config escape hatch for custom
	// workload compositions, slot budgets and progress callbacks. When
	// set it supersedes every exported field. Never serialized; makes
	// the spec unhashable.
	Config *throughput.Config `json:"-"`
}

func (s *ThroughputSpec) validate(kind ExperimentKind, l Limits) error {
	if s.Config != nil {
		return nil // throughput.Run validates the full config itself
	}
	switch kind {
	case KindThroughput:
		if s.Scenario != "" {
			return fmt.Errorf("scenario requests go to kind %q", KindScenario)
		}
		if s.Shape == "" {
			s.Shape = "poisson"
		}
		shape, err := throughput.ParseShape(s.Shape)
		if err != nil {
			return err
		}
		s.Shape = shape.String() // canonicalize aliases ("burst" → "bursty")
	case KindScenario:
		if s.Shape != "" {
			return fmt.Errorf("shape requests go to kind %q", KindThroughput)
		}
		if s.Scenario == "" {
			s.Scenario = "poisson"
		}
		if _, err := scenario.ByName(s.Scenario); err != nil {
			return err
		}
	}
	if len(s.Lambdas) == 0 {
		s.Lambdas = []float64{0.05, 0.1, 0.2}
	}
	if l.MaxLambdas > 0 && len(s.Lambdas) > l.MaxLambdas {
		return fmt.Errorf("at most %d lambdas per request, got %d", l.MaxLambdas, len(s.Lambdas))
	}
	for _, v := range s.Lambdas {
		if !(v > 0) || math.IsInf(v, 0) {
			return fmt.Errorf("offered load must be a finite value > 0, got %v", v)
		}
	}
	if s.Messages == 0 {
		s.Messages = 2000
	}
	if s.Messages < 1 {
		return fmt.Errorf("messages must be ≥ 1, got %d", s.Messages)
	}
	if l.MaxMessages > 0 && s.Messages > l.MaxMessages {
		return fmt.Errorf("messages must be in [1, %d], got %d", l.MaxMessages, s.Messages)
	}
	if s.Precision != nil {
		if err := s.Precision.validate(l); err != nil {
			return err
		}
		s.Runs = 0 // ignored in adaptive mode; zeroed so it cannot split cache keys
	} else {
		if s.Runs == 0 {
			s.Runs = 2
		}
		if err := validateRuns(s.Runs, l); err != nil {
			return err
		}
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return nil
}

// ArenaSpec is the cross-paper robustness arena — internal/arena as
// data: every contestant protocol runs through every adversarial
// scenario at one fixed offered load, and the result is a ranking with
// CI95 error bars. Field order fixes the canonical encoding.
type ArenaSpec struct {
	// Protocols lists the contestants by registry name; empty means
	// every registered configuration. Arena contestants are registry
	// configurations only — parameter overrides are rejected, so the
	// ranking always compares the named defaults.
	Protocols []ProtocolSpec `json:"protocols"`
	// Scenarios lists catalog workloads; empty means the standard
	// gauntlet (arena.DefaultScenarios). Column order follows this
	// order.
	Scenarios []string `json:"scenarios"`
	// Lambda is the offered load every cell runs at (default
	// arena.DefaultLambda).
	Lambda float64 `json:"lambda"`
	// Messages per execution (default arena.DefaultMessages).
	Messages int `json:"messages"`
	// Runs per (protocol, scenario) cell (default arena.DefaultRuns).
	// It is ignored — and zeroed, for canonical hashing — when
	// Precision is set.
	Runs int `json:"runs"`
	// Seed is the master seed (default 1).
	Seed uint64 `json:"seed"`
	// Precision, when set, replaces the fixed runs count with adaptive
	// stopping at the requested relative precision, per cell.
	Precision *PrecisionSpec `json:"precision,omitempty"`
}

// validate normalizes in place. Unlike evaluate, an empty contestant or
// scenario list is expanded to the explicit registry/gauntlet listing:
// the canonical key must pin exactly which protocols a cached ranking
// compared, so a replayed job is not silently re-ranked against a
// registry that has since grown.
func (s *ArenaSpec) validate(l Limits) error {
	if len(s.Protocols) == 0 {
		names := harness.SystemNames()
		s.Protocols = make([]ProtocolSpec, len(names))
		for i, n := range names {
			s.Protocols[i] = ProtocolSpec{Name: n}
		}
	}
	seen := make(map[string]bool, len(s.Protocols))
	for i := range s.Protocols {
		if err := s.Protocols[i].validate(); err != nil {
			return err
		}
		if len(s.Protocols[i].Params) > 0 {
			return fmt.Errorf("arena contestants take no parameter overrides, got params on %q", s.Protocols[i].Name)
		}
		if seen[s.Protocols[i].Name] {
			return fmt.Errorf("protocol %q listed twice", s.Protocols[i].Name)
		}
		seen[s.Protocols[i].Name] = true
	}
	if len(s.Scenarios) == 0 {
		s.Scenarios = arena.DefaultScenarios()
	}
	seenScn := make(map[string]bool, len(s.Scenarios))
	for i, name := range s.Scenarios {
		w, err := scenario.ByName(name)
		if err != nil {
			return err
		}
		if seenScn[w.Name] {
			return fmt.Errorf("scenario %q listed twice", w.Name)
		}
		seenScn[w.Name] = true
		s.Scenarios[i] = w.Name
	}
	if s.Lambda == 0 {
		s.Lambda = arena.DefaultLambda
	}
	if !(s.Lambda > 0) || math.IsInf(s.Lambda, 0) {
		return fmt.Errorf("offered load must be a finite value > 0, got %v", s.Lambda)
	}
	if s.Messages == 0 {
		s.Messages = arena.DefaultMessages
	}
	if s.Messages < 1 {
		return fmt.Errorf("messages must be ≥ 1, got %d", s.Messages)
	}
	if l.MaxMessages > 0 && s.Messages > l.MaxMessages {
		return fmt.Errorf("messages must be in [1, %d], got %d", l.MaxMessages, s.Messages)
	}
	if s.Precision != nil {
		if err := s.Precision.validate(l); err != nil {
			return err
		}
		s.Runs = 0 // ignored in adaptive mode; zeroed so it cannot split cache keys
	} else {
		if s.Runs == 0 {
			s.Runs = arena.DefaultRuns
		}
		if err := validateRuns(s.Runs, l); err != nil {
			return err
		}
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return nil
}

// validateRuns applies the shared runs-per-point rules.
func validateRuns(runs int, l Limits) error {
	if runs < 1 {
		return fmt.Errorf("runs must be ≥ 1, got %d", runs)
	}
	if l.MaxRuns > 0 && runs > l.MaxRuns {
		return fmt.Errorf("runs must be in [1, %d], got %d", l.MaxRuns, runs)
	}
	return nil
}

// active returns the sub-spec matching Kind, checking the union is
// well-formed (exactly the matching field set).
func (s *ExperimentSpec) active() (any, error) {
	set := 0
	if s.Solve != nil {
		set++
	}
	if s.Evaluate != nil {
		set++
	}
	if s.Throughput != nil {
		set++
	}
	if s.Scenario != nil {
		set++
	}
	if s.Arena != nil {
		set++
	}
	if set != 1 {
		return nil, fmt.Errorf("spec: exactly one of solve/evaluate/throughput/scenario/arena must be set, got %d", set)
	}
	if s.Kind == "" {
		switch {
		case s.Solve != nil:
			s.Kind = KindSolve
		case s.Evaluate != nil:
			s.Kind = KindEvaluate
		case s.Throughput != nil:
			s.Kind = KindThroughput
		case s.Scenario != nil:
			s.Kind = KindScenario
		case s.Arena != nil:
			s.Kind = KindArena
		}
	}
	switch s.Kind {
	case KindSolve:
		if s.Solve == nil {
			return nil, fmt.Errorf("spec: kind %q without a solve spec", s.Kind)
		}
		return s.Solve, nil
	case KindEvaluate:
		if s.Evaluate == nil {
			return nil, fmt.Errorf("spec: kind %q without an evaluate spec", s.Kind)
		}
		return s.Evaluate, nil
	case KindThroughput:
		if s.Throughput == nil {
			return nil, fmt.Errorf("spec: kind %q without a throughput spec", s.Kind)
		}
		return s.Throughput, nil
	case KindScenario:
		if s.Scenario == nil {
			return nil, fmt.Errorf("spec: kind %q without a scenario spec", s.Kind)
		}
		return s.Scenario, nil
	case KindArena:
		if s.Arena == nil {
			return nil, fmt.Errorf("spec: kind %q without an arena spec", s.Kind)
		}
		return s.Arena, nil
	default:
		return nil, fmt.Errorf("spec: unknown experiment kind %q", s.Kind)
	}
}

// Validate normalizes the spec in place — defaults applied, names
// canonicalized — and checks it against the limits (zero fields of
// which mean unlimited). After Validate, json.Marshal of the active
// sub-spec is the canonical parameter encoding. Validate is idempotent.
func (s *ExperimentSpec) Validate(l Limits) error {
	sub, err := s.active()
	if err != nil {
		return err
	}
	switch v := sub.(type) {
	case *SolveSpec:
		return v.validate(l)
	case *EvaluateSpec:
		return v.validate(l)
	case *ThroughputSpec:
		return v.validate(s.Kind, l)
	case *ArenaSpec:
		return v.validate(l)
	}
	return nil
}

// EncodeParams marshals a validated spec's canonical parameter
// document — the flat JSON body the matching /v1/* endpoint accepts,
// and the bytes CanonicalKey hashes. Decode(s.Kind, params) followed
// by Validate reconstructs an equivalent spec with an identical
// canonical key, which is what makes job records replayable: the
// serving subsystem persists (kind, params) and recovery rebuilds the
// exact experiment. Specs using a library-only escape hatch (Systems,
// Lineup, Config) have no canonical encoding.
func (s ExperimentSpec) EncodeParams() ([]byte, error) {
	sub, err := s.active()
	if err != nil {
		return nil, err
	}
	switch v := sub.(type) {
	case *EvaluateSpec:
		if len(v.Systems) > 0 {
			return nil, fmt.Errorf("spec: custom systems have no canonical encoding")
		}
	case *ThroughputSpec:
		if len(v.Lineup) > 0 || v.Config != nil {
			return nil, fmt.Errorf("spec: custom lineups and configs have no canonical encoding")
		}
	}
	return json.Marshal(sub)
}

// CanonicalKey hashes a validated spec into the cache key used by the
// serving subsystem: SHA-256 over kind and the canonical parameter
// encoding. Identical experiments — however they were expressed: Go
// structs, CLI flags or HTTP JSON, implicit or explicit defaults,
// aliases or canonical names — produce byte-identical keys. Specs
// using a library-only escape hatch (Systems, Lineup, Config) are not
// hashable.
func (s ExperimentSpec) CanonicalKey() (string, error) {
	params, err := s.EncodeParams()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(s.Kind))
	h.Write([]byte{0})
	h.Write(params)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Decode parses an experiment's parameter document (the flat JSON body
// the /v1/* submit endpoints accept) into a spec of the given kind. An
// empty body selects all defaults. Unknown fields are rejected — a
// misspelled parameter must not silently hash to a different
// (default-valued) experiment.
func Decode(kind ExperimentKind, body []byte) (ExperimentSpec, error) {
	s := ExperimentSpec{Kind: kind}
	var sub any
	switch kind {
	case KindSolve:
		s.Solve = &SolveSpec{}
		sub = s.Solve
	case KindEvaluate:
		s.Evaluate = &EvaluateSpec{}
		sub = s.Evaluate
	case KindThroughput:
		s.Throughput = &ThroughputSpec{}
		sub = s.Throughput
	case KindScenario:
		s.Scenario = &ThroughputSpec{}
		sub = s.Scenario
	case KindArena:
		s.Arena = &ArenaSpec{}
		sub = s.Arena
	default:
		return ExperimentSpec{}, fmt.Errorf("spec: unknown experiment kind %q", kind)
	}
	if len(bytes.TrimSpace(body)) == 0 {
		return s, nil
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(sub); err != nil {
		return ExperimentSpec{}, fmt.Errorf("decoding %s request: %w", kind, err)
	}
	return s, nil
}
