// Execution: the single entry point that runs any ExperimentSpec with
// context cancellation and streams typed progress events. The library
// (mac.Run), the CLI and the HTTP job workers all execute experiments
// through Run — one code path, three front ends.

package spec

import (
	"context"
	"encoding/json"
	"fmt"
	"iter"
	"sync"

	"repro/internal/arena"
	"repro/internal/dynamic"
	"repro/internal/harness"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/throughput"
)

// Event is one typed progress record streamed by an Execution. The
// concrete types marshal to the NDJSON lines the HTTP /stream endpoint
// and the CLI's -stream flag emit.
type Event interface {
	// EventName returns the wire name ("progress").
	EventName() string
	// SimulatedSlots returns the channel slots this event accounts for
	// (0 when unknown), feeding work-rate metrics.
	SimulatedSlots() uint64
}

// SweepProgress is one completed static execution of a solve or
// evaluate experiment.
type SweepProgress struct {
	Event  string `json:"event"`
	System string `json:"system"`
	K      int    `json:"k"`
	Run    int    `json:"run"`
	Slots  uint64 `json:"slots"`
}

// EventName implements Event.
func (p SweepProgress) EventName() string { return p.Event }

// SimulatedSlots implements Event.
func (p SweepProgress) SimulatedSlots() uint64 { return p.Slots }

// DynamicProgress is one completed execution of a throughput or
// scenario experiment. Slots counts the drained run's completion time;
// saturated runs report 0 (their budget is not knowable here).
type DynamicProgress struct {
	Event     string  `json:"event"`
	Protocol  string  `json:"protocol"`
	Lambda    float64 `json:"lambda"`
	Run       int     `json:"run"`
	Delivered int     `json:"delivered"`
	Drained   bool    `json:"drained"`
	Slots     uint64  `json:"slots"`
}

// EventName implements Event.
func (p DynamicProgress) EventName() string { return p.Event }

// SimulatedSlots implements Event.
func (p DynamicProgress) SimulatedSlots() uint64 { return p.Slots }

// ArenaProgress is one completed execution of an arena experiment's
// (protocol, scenario) cell. Slots counts the drained run's completion
// time; saturated runs report 0.
type ArenaProgress struct {
	Event     string `json:"event"`
	Protocol  string `json:"protocol"`
	Scenario  string `json:"scenario"`
	Run       int    `json:"run"`
	Delivered int    `json:"delivered"`
	Drained   bool   `json:"drained"`
	Slots     uint64 `json:"slots"`
}

// EventName implements Event.
func (p ArenaProgress) EventName() string { return p.Event }

// SimulatedSlots implements Event.
func (p ArenaProgress) SimulatedSlots() uint64 { return p.Slots }

// StreamEnd is the terminal record of an NDJSON event stream, shared by
// the HTTP /stream endpoint and the CLI's -stream flag.
type StreamEnd struct {
	Event  string          `json:"event"` // "done" or "failed"
	ID     string          `json:"id,omitempty"`
	Status string          `json:"status,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Execution is one running (or finished) experiment. Progress events
// accumulate append-only, so any number of consumers can replay the
// stream from the start and then follow live.
type Execution struct {
	mu     sync.Mutex
	events []Event
	pulse  chan struct{} // closed and replaced on every state change
	done   bool
	result *Result
	err    error
}

// Run validates the spec (in place: defaults applied, names
// canonicalized) and starts executing it. Simulation work runs on
// background goroutines; canceling ctx aborts it promptly and
// surfaces ctx's error from Events and Result. Validation errors
// return synchronously.
func Run(ctx context.Context, s ExperimentSpec) (*Execution, error) {
	if err := s.Validate(Limits{}); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e := &Execution{pulse: make(chan struct{})}
	go e.run(ctx, s)
	return e, nil
}

// publish appends one progress event. Safe for concurrent use — sweep
// workers report from multiple goroutines.
func (e *Execution) publish(ev Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.events = append(e.events, ev)
	close(e.pulse)
	e.pulse = make(chan struct{})
}

// finish records the terminal state.
func (e *Execution) finish(res *Result, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.done = true
	e.result, e.err = res, err
	close(e.pulse)
	e.pulse = make(chan struct{})
}

// snapshot returns the events published since from, the current pulse
// channel (closed on the next change) and the terminal state.
func (e *Execution) snapshot(from int) (events []Event, pulse <-chan struct{}, done bool, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.events[from:], e.pulse, e.done, e.err
}

// Events streams the execution's progress events in publication order,
// following live until the experiment finishes; a terminal error (the
// first simulation error, or ctx's error after cancellation) is
// yielded last with a nil event. The sequence is re-iterable: each
// iteration replays from the start.
func (e *Execution) Events() iter.Seq2[Event, error] {
	return func(yield func(Event, error) bool) {
		sent := 0
		for {
			events, pulse, done, err := e.snapshot(sent)
			for _, ev := range events {
				if !yield(ev, nil) {
					return
				}
				sent++
			}
			if done {
				if err != nil {
					yield(nil, err)
				}
				return
			}
			<-pulse
		}
	}
}

// Result blocks until the experiment finishes and returns its typed
// result, or the first error (ctx's error after cancellation).
func (e *Execution) Result() (*Result, error) {
	for {
		_, pulse, done, err := e.snapshot(0)
		if done {
			if err != nil {
				return nil, err
			}
			e.mu.Lock()
			res := e.result
			e.mu.Unlock()
			return res, nil
		}
		<-pulse
	}
}

// run dispatches on the spec kind. The spec arrives validated.
func (e *Execution) run(ctx context.Context, s ExperimentSpec) {
	var (
		res *Result
		err error
	)
	switch s.Kind {
	case KindSolve:
		res, err = e.runSolve(ctx, s.Solve)
	case KindEvaluate:
		res, err = e.runEvaluate(ctx, s.Evaluate)
	case KindThroughput:
		res, err = e.runDynamic(ctx, s.Kind, s.Throughput)
	case KindScenario:
		res, err = e.runDynamic(ctx, s.Kind, s.Scenario)
	case KindArena:
		res, err = e.runArena(ctx, s.Arena)
	default:
		err = fmt.Errorf("spec: unknown experiment kind %q", s.Kind)
	}
	e.finish(res, err)
}

// runSolve executes one static k-selection instance, deriving the
// identical rng stream as mac.Protocol.Solve so all front ends
// reproduce the library bit for bit.
func (e *Execution) runSolve(ctx context.Context, s *SolveSpec) (*Result, error) {
	sys, err := harness.SystemBySpec(s.Protocol.Name, s.Protocol.Params)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	steps, err := sys.Run(s.K, rng.NewStream(s.Seed, "mac.Solve", sys.Name(), fmt.Sprint(s.K)))
	if err != nil {
		return nil, err
	}
	e.publish(SweepProgress{Event: "progress", System: sys.Name(), K: s.K, Slots: steps})
	return &Result{Kind: KindSolve, Solve: &SolveResult{
		Protocol: s.Protocol.Name,
		System:   sys.Name(),
		K:        s.K,
		Seed:     s.Seed,
		Slots:    steps,
		Ratio:    float64(steps) / float64(s.K),
		Analysis: sys.AnalysisRatio(s.K),
	}}, nil
}

// runEvaluate executes the static sweep.
func (e *Execution) runEvaluate(ctx context.Context, s *EvaluateSpec) (*Result, error) {
	systems, err := s.systems()
	if err != nil {
		return nil, err
	}
	ks := s.Ks
	if len(ks) == 0 {
		ks = harness.PaperKs(s.MaxExp)
	}
	sweep := harness.Sweep{
		Ks:        ks,
		Runs:      s.Runs,
		Seed:      s.Seed,
		Precision: s.Precision.engine(),
		Progress: func(system string, k, run int, steps uint64) {
			e.publish(SweepProgress{Event: "progress", System: system, K: k, Run: run, Slots: steps})
		},
	}
	results, err := sweep.RunContext(ctx, systems)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Kind:     KindEvaluate,
		Evaluate: evaluateDocument(s.Seed, results),
		sweep:    results,
	}
	if s.Precision != nil {
		for _, series := range results {
			for i := range series.Cells {
				res.repsSaved += s.Precision.MaxReps - series.Cells[i].Steps.N()
			}
		}
	}
	return res, nil
}

// runArena executes the cross-paper robustness arena.
func (e *Execution) runArena(ctx context.Context, s *ArenaSpec) (*Result, error) {
	names := make([]string, len(s.Protocols))
	for i, p := range s.Protocols {
		names[i] = p.Name
	}
	cfg := arena.Config{
		Protocols: names,
		Scenarios: s.Scenarios,
		Lambda:    s.Lambda,
		Messages:  s.Messages,
		Runs:      s.Runs,
		Seed:      s.Seed,
		Precision: s.Precision.engine(),
		Progress: func(name, scn string, run int, r dynamic.Result) {
			var slots uint64
			if r.Completed {
				slots = r.Completion
			}
			e.publish(ArenaProgress{Event: "progress", Protocol: name, Scenario: scn,
				Run: run, Delivered: r.Delivered, Drained: r.Completed, Slots: slots})
		},
	}
	ranking, err := arena.RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Kind:      KindArena,
		Arena:     arenaDocument(s.Seed, ranking),
		arenaRank: ranking,
	}
	if s.Precision != nil {
		for _, entry := range ranking.Ranking {
			for i := range entry.Scenarios {
				res.repsSaved += s.Precision.MaxReps - entry.Scenarios[i].Runs
			}
		}
	}
	return res, nil
}

// runDynamic executes the λ-sweep shared by the throughput and
// scenario kinds.
func (e *Execution) runDynamic(ctx context.Context, kind ExperimentKind, s *ThroughputSpec) (*Result, error) {
	var cfg throughput.Config
	var workload string
	switch {
	case s.Config != nil:
		cfg = *s.Config
		workload = cfg.Scenario.Name
		if workload == "" {
			if cfg.Scenario.Arrivals != nil {
				workload = "custom"
			} else {
				workload = cfg.Shape.String()
			}
		}
	case kind == KindScenario:
		scn, err := scenario.ByName(s.Scenario)
		if err != nil {
			return nil, err
		}
		cfg = throughput.Config{Scenario: scn}
		workload = scn.Name
	default:
		shape, err := throughput.ParseShape(s.Shape)
		if err != nil {
			return nil, err
		}
		cfg = throughput.Config{Shape: shape}
		workload = shape.String()
	}
	if s.Config == nil {
		cfg.Lambdas = s.Lambdas
		cfg.Messages = s.Messages
		cfg.Runs = s.Runs
		cfg.Seed = s.Seed
		cfg.Precision = s.Precision.engine()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1 // the default throughput.Run would apply; made explicit for the result document
	}
	userProgress := cfg.Progress
	cfg.Progress = func(name string, lambda float64, run int, res dynamic.Result) {
		if userProgress != nil {
			userProgress(name, lambda, run, res)
		}
		// Saturated runs burn their full (unknown here) budget; counting
		// only drained completions undercounts slightly, which is fine
		// for a rate metric.
		var slots uint64
		if res.Completed {
			slots = res.Completion
		}
		e.publish(DynamicProgress{Event: "progress", Protocol: name, Lambda: lambda,
			Run: run, Delivered: res.Delivered, Drained: res.Completed, Slots: slots})
	}
	protocols := s.Lineup
	if len(protocols) == 0 {
		protocols = throughput.DefaultProtocols()
	}
	series, err := throughput.RunContext(ctx, protocols, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Kind:       kind,
		Throughput: throughputDocument(workload, cfg.Seed, series),
		dynamic:    series,
	}
	if s.Config == nil && s.Precision != nil {
		for _, sr := range series {
			for i := range sr.Points {
				res.repsSaved += s.Precision.MaxReps - sr.Points[i].Runs
			}
		}
	}
	return res, nil
}
