package spec

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/throughput"
)

// validKey validates with the given limits and hashes.
func validKey(t *testing.T, es ExperimentSpec, l Limits) string {
	t.Helper()
	if err := es.Validate(l); err != nil {
		t.Fatal(err)
	}
	key, err := es.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestCanonicalKeyAcrossFrontEnds is the cross-representation table:
// the identical experiment expressed as a Go struct (the library front
// end) and as HTTP JSON (the serving front end) must produce
// byte-identical cache keys — including float formatting edge cases
// (2.72 vs 2.720, 0.3 vs 0.30) and alias spellings. The CLI front end
// is covered by cmd/macsim's TestSpecKeyParityAcrossFrontEnds, which
// folds real flag parsing into the same comparison.
func TestCanonicalKeyAcrossFrontEnds(t *testing.T) {
	cases := []struct {
		name    string
		kind    ExperimentKind
		struct_ ExperimentSpec
		json    string
	}{
		{
			name:    "solve alias vs canonical",
			kind:    KindSolve,
			struct_: ForSolve(SolveSpec{Protocol: ProtocolSpec{Name: "one-fail"}, K: 500, Seed: 7}),
			json:    `{"protocol":"ofa","k":500,"seed":7}`,
		},
		{
			name:    "solve defaults implicit vs explicit",
			kind:    KindSolve,
			struct_: ForSolve(SolveSpec{}),
			json:    `{"protocol":"one-fail","k":1000,"seed":1}`,
		},
		{
			name:    "solve explicit default delta vs implicit",
			kind:    KindSolve,
			struct_: ForSolve(SolveSpec{Protocol: ProtocolSpec{Name: "one-fail"}, K: 100, Seed: 3}),
			json:    `{"protocol":{"name":"ofa","params":{"delta":2.72}},"k":100,"seed":3}`,
		},
		{
			name: "solve delta formatting 2.72 vs 2.720",
			kind: KindSolve,
			struct_: ForSolve(SolveSpec{
				Protocol: ProtocolSpec{Name: "one-fail", Params: map[string]float64{"delta": 2.72}},
				K:        100, Seed: 3,
			}),
			json: `{"protocol":{"name":"ofa","params":{"delta":2.720}},"k":100,"seed":3}`,
		},
		{
			name:    "evaluate protocols by alias",
			kind:    KindEvaluate,
			struct_: ForEvaluate(EvaluateSpec{Protocols: []ProtocolSpec{{Name: "one-fail"}, {Name: "exp-bb"}}, Ks: []int{10, 100}, Runs: 2, Seed: 5}),
			json:    `{"protocols":["ofa","ebb"],"ks":[10,100],"runs":2,"seed":5}`,
		},
		{
			name:    "evaluate maxExp ignored when ks set",
			kind:    KindEvaluate,
			struct_: ForEvaluate(EvaluateSpec{Ks: []int{10}, Runs: 1, Seed: 1}),
			json:    `{"maxExp":3,"ks":[10],"runs":1,"seed":1}`,
		},
		{
			name:    "throughput lambda formatting 0.3 vs 0.30",
			kind:    KindThroughput,
			struct_: ForThroughput(ThroughputSpec{Shape: "bursty", Lambdas: []float64{0.2, 0.3}, Messages: 100, Runs: 1, Seed: 2}),
			json:    `{"shape":"burst","lambdas":[0.20,0.30],"messages":100,"runs":1,"seed":2}`,
		},
		{
			name:    "scenario defaults",
			kind:    KindScenario,
			struct_: ForScenario(ThroughputSpec{Scenario: "herd", Lambdas: []float64{0.1}}),
			json:    `{"scenario":"herd","lambdas":[0.1],"messages":2000,"runs":2,"seed":1}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			structKey := validKey(t, tc.struct_, Limits{})
			decoded, err := Decode(tc.kind, []byte(tc.json))
			if err != nil {
				t.Fatal(err)
			}
			jsonKey := validKey(t, decoded, Limits{})
			if structKey != jsonKey {
				t.Fatalf("struct key %s != JSON key %s", structKey, jsonKey)
			}
		})
	}
}

func TestCanonicalKeySeparatesExperiments(t *testing.T) {
	base := validKey(t, ForSolve(SolveSpec{K: 100}), Limits{})
	if k := validKey(t, ForSolve(SolveSpec{K: 101}), Limits{}); k == base {
		t.Fatal("different k collide")
	}
	delta := validKey(t, ForSolve(SolveSpec{
		K: 100, Protocol: ProtocolSpec{Name: "one-fail", Params: map[string]float64{"delta": 2.9}},
	}), Limits{})
	if delta == base {
		t.Fatal("parameter override did not change the key")
	}
	tp := validKey(t, ForThroughput(ThroughputSpec{Lambdas: []float64{0.1}}), Limits{})
	sc := validKey(t, ForScenario(ThroughputSpec{Lambdas: []float64{0.1}}), Limits{})
	if tp == sc {
		t.Fatal("throughput and scenario kinds collide")
	}
}

func TestValidateLimits(t *testing.T) {
	l := Limits{MaxK: 1000, MaxExp: 6, MaxRuns: 10, MaxMessages: 10000, MaxLambdas: 4, MaxKs: 3}
	bad := []ExperimentSpec{
		ForSolve(SolveSpec{K: 5000}),
		ForSolve(SolveSpec{K: -4}),
		ForSolve(SolveSpec{Protocol: ProtocolSpec{Name: "nope"}}),
		ForSolve(SolveSpec{Protocol: ProtocolSpec{Name: "one-fail", Params: map[string]float64{"zap": 1}}}),
		ForEvaluate(EvaluateSpec{MaxExp: 9}),
		ForEvaluate(EvaluateSpec{Ks: []int{1, 2, 3, 4}}),
		ForEvaluate(EvaluateSpec{Runs: 99}),
		ForThroughput(ThroughputSpec{Lambdas: []float64{0}}),
		ForThroughput(ThroughputSpec{Lambdas: []float64{0.1, 0.2, 0.3, 0.4, 0.5}}),
		ForThroughput(ThroughputSpec{Shape: "uniform"}),
		ForThroughput(ThroughputSpec{Scenario: "rho"}),
		ForThroughput(ThroughputSpec{Messages: 999999}),
		ForScenario(ThroughputSpec{Scenario: "nope"}),
		ForScenario(ThroughputSpec{Shape: "poisson"}),
	}
	for i, es := range bad {
		if err := es.Validate(l); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, es)
		}
	}
	// The library limits (zero value) lift the service caps but keep
	// intrinsic validation.
	big := ForEvaluate(EvaluateSpec{MaxExp: 7, Runs: 99})
	if err := big.Validate(Limits{}); err != nil {
		t.Fatalf("unlimited validation rejected a big sweep: %v", err)
	}
	negative := ForSolve(SolveSpec{K: -1})
	if err := negative.Validate(Limits{}); err == nil {
		t.Fatal("negative k accepted under unlimited limits")
	}
}

func TestValidateUnionShape(t *testing.T) {
	var empty ExperimentSpec
	if err := empty.Validate(Limits{}); err == nil {
		t.Fatal("empty union accepted")
	}
	two := ExperimentSpec{Solve: &SolveSpec{}, Evaluate: &EvaluateSpec{}}
	if err := two.Validate(Limits{}); err == nil {
		t.Fatal("double-set union accepted")
	}
	mismatch := ExperimentSpec{Kind: KindEvaluate, Solve: &SolveSpec{}}
	if err := mismatch.Validate(Limits{}); err == nil {
		t.Fatal("kind/sub-spec mismatch accepted")
	}
	// Kind inference from a single set sub-spec.
	inferred := ExperimentSpec{Scenario: &ThroughputSpec{Scenario: "rho", Lambdas: []float64{0.1}}}
	if err := inferred.Validate(Limits{}); err != nil || inferred.Kind != KindScenario {
		t.Fatalf("inference: kind=%q err=%v", inferred.Kind, err)
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := Decode(KindSolve, []byte(`{"kk":5}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Decode(KindSolve, []byte(`{"protocol":{"name":"ofa","zap":1}}`)); err == nil {
		t.Fatal("unknown protocol-object field accepted")
	}
	if _, err := Decode(KindSolve, []byte(`{"k":"hundred"}`)); err == nil {
		t.Fatal("type error accepted")
	}
	es, err := Decode(KindEvaluate, nil)
	if err != nil || es.Kind != KindEvaluate || es.Evaluate == nil {
		t.Fatalf("empty body decode = %+v, %v", es, err)
	}
}

func TestProtocolSpecJSONRoundTrip(t *testing.T) {
	plain := ProtocolSpec{Name: "one-fail"}
	data, err := json.Marshal(plain)
	if err != nil || string(data) != `"one-fail"` {
		t.Fatalf("plain marshal = %s, %v", data, err)
	}
	withParams := ProtocolSpec{Name: "one-fail", Params: map[string]float64{"delta": 2.9}}
	data, err = json.Marshal(withParams)
	if err != nil || !strings.Contains(string(data), `"params":{"delta":2.9}`) {
		t.Fatalf("param marshal = %s, %v", data, err)
	}
	var back ProtocolSpec
	if err := json.Unmarshal(data, &back); err != nil || back.Name != "one-fail" || back.Params["delta"] != 2.9 {
		t.Fatalf("round trip = %+v, %v", back, err)
	}
}

func TestCanonicalKeyRejectsEscapeHatches(t *testing.T) {
	es := ForThroughput(ThroughputSpec{Config: &throughput.Config{}})
	if err := es.Validate(Limits{}); err != nil {
		t.Fatal(err)
	}
	if _, err := es.CanonicalKey(); err == nil {
		t.Fatal("config escape hatch hashed")
	}
}

// TestPrecisionCanonicalKey pins the adaptive-precision hashing rules:
// a nil precision leaves pre-existing keys untouched, implicit and
// explicit precision defaults hash identically (struct, JSON and
// partial-JSON spellings), and runs cannot split keys once precision is
// set.
func TestPrecisionCanonicalKey(t *testing.T) {
	base := validKey(t, ForEvaluate(EvaluateSpec{Ks: []int{10, 100}, Runs: 3}), Limits{})

	// Nil precision must hash exactly as before the field existed: the
	// canonical encoding omits it.
	es := ForEvaluate(EvaluateSpec{Ks: []int{10, 100}, Runs: 3})
	if err := es.Validate(Limits{}); err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(es.Evaluate)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(enc), "precision") {
		t.Fatalf("fixed-rep canonical encoding mentions precision: %s", enc)
	}

	// Implicit defaults == explicit defaults, however spelled.
	implicit := validKey(t, ForEvaluate(EvaluateSpec{
		Ks: []int{10, 100}, Precision: &PrecisionSpec{Epsilon: 0.01},
	}), Limits{})
	explicit := validKey(t, ForEvaluate(EvaluateSpec{
		Ks:        []int{10, 100},
		Precision: &PrecisionSpec{Epsilon: 0.01, Confidence: 0.95, MinReps: 3, MaxReps: 64},
	}), Limits{})
	if implicit != explicit {
		t.Fatal("implicit and explicit precision defaults hash differently")
	}
	if implicit == base {
		t.Fatal("adaptive and fixed-rep experiments hash identically")
	}
	fromJSON, err := Decode(KindEvaluate, []byte(`{"ks":[10,100],"precision":{"epsilon":0.01}}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := validKey(t, fromJSON, Limits{}); got != implicit {
		t.Fatal("JSON and struct spellings of the same precision hash differently")
	}

	// Runs is ignored under precision — it must be zeroed out of the key.
	withRuns := validKey(t, ForEvaluate(EvaluateSpec{
		Ks: []int{10, 100}, Runs: 7, Precision: &PrecisionSpec{Epsilon: 0.01},
	}), Limits{})
	if withRuns != implicit {
		t.Fatal("runs split the cache key despite being ignored in adaptive mode")
	}
}

// TestPrecisionValidation covers the stopping-rule bounds and the
// serving limit.
func TestPrecisionValidation(t *testing.T) {
	bad := []PrecisionSpec{
		{},                                     // epsilon required
		{Epsilon: -0.5},                        // negative
		{Epsilon: 1},                           // not < 1
		{Epsilon: 0.1, Confidence: 1.5},        // confidence out of range
		{Epsilon: 0.1, MinReps: 1},             // needs ≥ 2 for variance
		{Epsilon: 0.1, MinReps: 9, MaxReps: 4}, // inverted bounds
	}
	for _, p := range bad {
		pc := p
		es := ForEvaluate(EvaluateSpec{Precision: &pc})
		if err := es.Validate(Limits{}); err == nil {
			t.Errorf("precision %+v: want validation error", p)
		}
	}

	// Limits.MaxReps bounds the adaptive cap, for both repeated kinds.
	es := ForEvaluate(EvaluateSpec{Precision: &PrecisionSpec{Epsilon: 0.1, MaxReps: 100}})
	if err := es.Validate(Limits{MaxReps: 50}); err == nil || !strings.Contains(err.Error(), "maxReps") {
		t.Fatalf("evaluate: want maxReps limit error, got %v", err)
	}
	ts := ForThroughput(ThroughputSpec{Precision: &PrecisionSpec{Epsilon: 0.1, MaxReps: 100}})
	if err := ts.Validate(Limits{MaxReps: 50}); err == nil || !strings.Contains(err.Error(), "maxReps") {
		t.Fatalf("throughput: want maxReps limit error, got %v", err)
	}

	// MinReps == MaxReps (the fixed-rep reproduction case) is valid.
	ok := ForThroughput(ThroughputSpec{Precision: &PrecisionSpec{Epsilon: 0.1, MinReps: 4, MaxReps: 4}})
	if err := ok.Validate(Limits{}); err != nil {
		t.Fatal(err)
	}
	// Validation is idempotent on a defaulted precision.
	if err := ok.Validate(Limits{}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeParamsRoundTrip: the persistence contract behind durable
// job records — EncodeParams of a validated spec decodes back (via the
// same path the HTTP endpoints use) to a spec with an identical
// canonical key, for every kind.
func TestEncodeParamsRoundTrip(t *testing.T) {
	specs := []ExperimentSpec{
		ForSolve(SolveSpec{Protocol: ProtocolSpec{Name: "ofa"}, K: 4096, Seed: 9}),
		ForSolve(SolveSpec{Protocol: ProtocolSpec{Name: "one-fail", Params: map[string]float64{"delta": 2.9}}}),
		ForEvaluate(EvaluateSpec{Ks: []int{10, 100}, Runs: 2, Seed: 3}),
		ForEvaluate(EvaluateSpec{MaxExp: 3, Precision: &PrecisionSpec{Epsilon: 0.05}}),
		ForThroughput(ThroughputSpec{Shape: "burst", Lambdas: []float64{0.1, 0.2}, Messages: 500, Runs: 1}),
		ForScenario(ThroughputSpec{Scenario: "herd", Lambdas: []float64{0.1}, Messages: 300, Runs: 1}),
	}
	for i, es := range specs {
		if err := es.Validate(Limits{}); err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		key, err := es.CanonicalKey()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		params, err := es.EncodeParams()
		if err != nil {
			t.Fatalf("spec %d: EncodeParams: %v", i, err)
		}
		back, err := Decode(es.Kind, params)
		if err != nil {
			t.Fatalf("spec %d: Decode(EncodeParams): %v", i, err)
		}
		if err := back.Validate(Limits{}); err != nil {
			t.Fatalf("spec %d: revalidate: %v", i, err)
		}
		key2, err := back.CanonicalKey()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if key2 != key {
			t.Fatalf("spec %d: round trip changed the canonical key:\n %s\n %s", i, key, key2)
		}
	}

	// Library-only escape hatches stay unencodable.
	es := ForThroughput(ThroughputSpec{Config: &throughput.Config{}})
	if _, err := es.EncodeParams(); err == nil {
		t.Fatal("EncodeParams accepted a library-only config")
	}
}
