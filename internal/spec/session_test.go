package spec

import (
	"strings"
	"testing"
)

func TestSessionSpecValidateDefaults(t *testing.T) {
	var s SessionSpec
	if err := s.Validate(Limits{}); err != nil {
		t.Fatal(err)
	}
	if s.Protocol.Name != "exp-bb" || s.Lambda != 0.1 || s.Seed != 1 || s.Window != 64 || s.Buffer != 256 {
		t.Fatalf("defaults not applied: %+v", s)
	}
	if s.MaxWindows != 0 || s.Pace != 0 || s.Jam != nil {
		t.Fatalf("zero fields should stay zero under empty limits: %+v", s)
	}
	// Idempotent: re-validating a validated spec changes nothing, so
	// the canonical encoding is a fixed point.
	before, err := s.EncodeParams()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(Limits{}); err != nil {
		t.Fatal(err)
	}
	after, err := s.EncodeParams()
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("Validate not idempotent: %s vs %s", before, after)
	}
}

func TestSessionSpecValidateClampsAndRejects(t *testing.T) {
	// MaxSessionWindows clamps both unbounded and oversized requests.
	s := SessionSpec{MaxWindows: 0}
	if err := s.Validate(Limits{MaxSessionWindows: 500}); err != nil {
		t.Fatal(err)
	}
	if s.MaxWindows != 500 {
		t.Fatalf("unbounded session not clamped: %d", s.MaxWindows)
	}
	s = SessionSpec{MaxWindows: 900}
	if err := s.Validate(Limits{MaxSessionWindows: 500}); err != nil {
		t.Fatal(err)
	}
	if s.MaxWindows != 500 {
		t.Fatalf("oversized session not clamped: %d", s.MaxWindows)
	}
	s = SessionSpec{MaxWindows: 100}
	if err := s.Validate(Limits{MaxSessionWindows: 500}); err != nil {
		t.Fatal(err)
	}
	if s.MaxWindows != 100 {
		t.Fatalf("in-budget request rewritten: %d", s.MaxWindows)
	}

	// An explicit off-jammer normalizes away so it hashes like none.
	s = SessionSpec{Jam: &JamSpec{}}
	if err := s.Validate(Limits{}); err != nil {
		t.Fatal(err)
	}
	if s.Jam != nil {
		t.Fatalf("off jam not erased: %+v", s.Jam)
	}

	bad := []SessionSpec{
		{Lambda: -1},
		{Lambda: 100},
		{Window: -3},
		{MaxWindows: -1},
		{Buffer: 4},
		{Buffer: 1 << 20},
		{Pace: -1},
		{Pace: 5000},
		{Jam: &JamSpec{Mode: "sometimes"}},
		{Jam: &JamSpec{Mode: JamPattern, Period: 1, Burst: 1}},
		{Jam: &JamSpec{Mode: JamPattern, Period: 8, Burst: 8}},
		{Jam: &JamSpec{Mode: JamOn, Period: 4}},
		{Protocol: ProtocolSpec{Name: "no-such-protocol"}},
	}
	for _, b := range bad {
		if err := b.Validate(Limits{}); err == nil {
			t.Errorf("spec %+v validated", b)
		}
	}
	if err := (&SessionSpec{Window: 1 << 20}).Validate(Limits{MaxWindow: 4096}); err == nil {
		t.Error("window above MaxWindow validated")
	}
}

func TestSessionSpecRejectsFairProtocols(t *testing.T) {
	s := SessionSpec{Protocol: ProtocolSpec{Name: "one-fail"}}
	err := s.Validate(Limits{})
	if err == nil || !strings.Contains(err.Error(), "windowed protocols") {
		t.Fatalf("fair protocol accepted for a session: %v", err)
	}
}

func TestSessionCanonicalKeyStability(t *testing.T) {
	// Aliased protocol names canonicalize before hashing, so they route
	// to the same ring owner.
	a := SessionSpec{Protocol: ProtocolSpec{Name: "ebb"}}
	b := SessionSpec{Protocol: ProtocolSpec{Name: "exp-bb"}}
	for _, s := range []*SessionSpec{&a, &b} {
		if err := s.Validate(Limits{}); err != nil {
			t.Fatal(err)
		}
	}
	ka, err := a.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("aliased specs hash apart: %s vs %s", ka, kb)
	}
	c := a
	c.Seed = 2
	kc, err := c.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if kc == ka {
		t.Fatal("different seeds hash alike")
	}
}

func TestDecodeSession(t *testing.T) {
	s, err := DecodeSession([]byte(`{"lambda": 0.5, "window": 32, "jam": {"mode": "pattern", "period": 8, "burst": 2}}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Lambda != 0.5 || s.Window != 32 || s.Jam == nil || s.Jam.Period != 8 {
		t.Fatalf("decoded %+v", s)
	}
	if _, err := DecodeSession([]byte(`{"lambda": 0.5, "runs": 3}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if s, err := DecodeSession([]byte("  \n")); err != nil || s.Protocol.Name != "" || s.Lambda != 0 {
		t.Fatalf("empty body: %+v, %v", s, err)
	}
}

func TestParseControl(t *testing.T) {
	good := []struct {
		line string
		want ControlMessage
	}{
		{"set-lambda 0.3", ControlMessage{Type: ControlSetLambda, Lambda: 0.3}},
		{"  jam on ", ControlMessage{Type: ControlJam, Jam: &JamSpec{Mode: JamOn}}},
		{"jam off", ControlMessage{Type: ControlJam, Jam: &JamSpec{Mode: JamOff}}},
		{"jam pattern 8:3", ControlMessage{Type: ControlJam, Jam: &JamSpec{Mode: JamPattern, Period: 8, Burst: 3}}},
		{"swap-protocol exp-backoff", ControlMessage{Type: ControlSwapProtocol, Protocol: &ProtocolSpec{Name: "exp-backoff"}}},
		{"pause", ControlMessage{Type: ControlPause}},
		{"resume", ControlMessage{Type: ControlResume}},
		{"checkpoint", ControlMessage{Type: ControlCheckpoint}},
		{"stop", ControlMessage{Type: ControlStop}},
	}
	for _, g := range good {
		got, err := ParseControl(g.line)
		if err != nil {
			t.Errorf("ParseControl(%q): %v", g.line, err)
			continue
		}
		if got.Type != g.want.Type || got.Lambda != g.want.Lambda {
			t.Errorf("ParseControl(%q) = %+v", g.line, got)
		}
		if (got.Jam == nil) != (g.want.Jam == nil) || (got.Jam != nil && *got.Jam != *g.want.Jam) {
			t.Errorf("ParseControl(%q) jam = %+v", g.line, got.Jam)
		}
		if (got.Protocol == nil) != (g.want.Protocol == nil) || (got.Protocol != nil && got.Protocol.Name != g.want.Protocol.Name) {
			t.Errorf("ParseControl(%q) protocol = %+v", g.line, got.Protocol)
		}
		if err := got.Validate(Limits{}); err != nil {
			t.Errorf("parsed control %q fails validation: %v", g.line, err)
		}
	}
	bad := []string{
		"",
		"   ",
		"set-lambda",
		"set-lambda fast",
		"set-lambda 0.1 0.2",
		"jam",
		"jam maybe",
		"jam on hard",
		"jam pattern",
		"jam pattern 8",
		"jam pattern 8:3:1",
		"jam pattern a:b",
		"swap-protocol",
		"swap-protocol a b",
		"pause now",
		"warp 9",
	}
	for _, line := range bad {
		if _, err := ParseControl(line); err == nil {
			t.Errorf("ParseControl(%q) accepted", line)
		}
	}
}

func TestControlMessageValidate(t *testing.T) {
	bad := []ControlMessage{
		{},
		{Type: "warp"},
		{Type: ControlSetLambda, Lambda: 0},
		{Type: ControlSetLambda, Lambda: -2},
		{Type: ControlSetLambda, Lambda: 0.5, Jam: &JamSpec{Mode: JamOn}},
		{Type: ControlJam},
		{Type: ControlJam, Jam: &JamSpec{Mode: "x"}},
		{Type: ControlJam, Jam: &JamSpec{Mode: JamOn}, Lambda: 0.5},
		{Type: ControlSwapProtocol},
		{Type: ControlSwapProtocol, Protocol: &ProtocolSpec{Name: "one-fail"}},
		{Type: ControlSwapProtocol, Protocol: &ProtocolSpec{Name: "exp-bb"}, Lambda: 1},
		{Type: ControlPause, Lambda: 0.5},
		{Type: ControlStop, Protocol: &ProtocolSpec{Name: "exp-bb"}},
	}
	for _, b := range bad {
		if err := b.Validate(Limits{}); err == nil {
			t.Errorf("control %+v validated", b)
		}
	}
	ok := ControlMessage{Type: ControlSwapProtocol, Protocol: &ProtocolSpec{Name: "beb"}}
	if err := ok.Validate(Limits{}); err != nil {
		t.Fatal(err)
	}
	if ok.Protocol.Name != "exp-backoff" {
		t.Fatalf("protocol alias not canonicalized: %q", ok.Protocol.Name)
	}
}

func TestJamSpecMask(t *testing.T) {
	var nilJam *JamSpec
	if nilJam.Mask() != nil {
		t.Fatal("nil jam should compile to a clean channel")
	}
	if (&JamSpec{Mode: JamOff}).Mask() != nil {
		t.Fatal("off jam should compile to a clean channel")
	}
	on := (&JamSpec{Mode: JamOn}).Mask()
	if !on(1) || !on(1<<40) {
		t.Fatal("on jam must jam every slot")
	}
	// Pattern 5:2 jams slots 1,2, 6,7, 11,12, ... — scenario.JamPeriodic
	// semantics on 1-based slots.
	p := (&JamSpec{Mode: JamPattern, Period: 5, Burst: 2}).Mask()
	jammed := []uint64{1, 2, 6, 7, 11, 12}
	clean := []uint64{3, 4, 5, 8, 9, 10, 13}
	for _, s := range jammed {
		if !p(s) {
			t.Errorf("slot %d should be jammed", s)
		}
	}
	for _, s := range clean {
		if p(s) {
			t.Errorf("slot %d should be clean", s)
		}
	}
}
