// Session specs: the declarative surface of internal/session. A
// session is a dynamic simulation that runs indefinitely on the
// event-skip kernel and accepts typed control messages mid-flight;
// this file defines the session spec, the control-message codec (JSON
// and the one-line text grammar the CLI and docs share), the windowed
// aggregate events a session streams, and the checkpoint document
// whose (seed, initial spec, slot-stamped control log) replays a run
// bit for bit.

package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/harness"
)

// KindSession tags session parameter documents in the serving
// subsystem's store. Sessions are not experiments — they have no
// Result and never enter the result cache — but they share the
// canonical-key machinery for ring routing and persistence.
const KindSession ExperimentKind = "session"

// maxSessionLambda is the absolute offered-load bound for sessions. A
// load above 1 msg/slot already saturates every protocol in the
// registry; 64 is generous headroom for overload experiments while
// keeping one window's arrival count (λ·window) boundable.
const maxSessionLambda = 64

// JamSpec describes channel impairment for a session: "off" (clean
// channel), "on" (every slot jammed — nothing ever delivers), or
// "pattern" (a deterministic duty-cycle jammer that jams the first
// Burst slots of every Period slots, matching scenario.JamPeriodic).
type JamSpec struct {
	// Mode is "off", "on" or "pattern" (default "off").
	Mode string `json:"mode"`
	// Period is the pattern cycle length in slots (pattern mode only,
	// ≥ 2).
	Period uint64 `json:"period,omitempty"`
	// Burst is how many slots at each cycle start are jammed (pattern
	// mode only, 1 ≤ burst < period).
	Burst uint64 `json:"burst,omitempty"`
}

// JamOff, JamOn and JamPattern are the JamSpec modes.
const (
	JamOff     = "off"
	JamOn      = "on"
	JamPattern = "pattern"
)

// validate normalizes the mode and checks the pattern shape.
func (j *JamSpec) validate() error {
	switch j.Mode {
	case "":
		j.Mode = JamOff
		fallthrough
	case JamOff, JamOn:
		if j.Period != 0 || j.Burst != 0 {
			return fmt.Errorf("jam mode %q takes no period/burst", j.Mode)
		}
	case JamPattern:
		if j.Period < 2 || j.Burst < 1 || j.Burst >= j.Period {
			return fmt.Errorf("jam pattern needs 1 ≤ burst < period and period ≥ 2, got burst %d, period %d", j.Burst, j.Period)
		}
	default:
		return fmt.Errorf("unknown jam mode %q (want %q, %q or %q)", j.Mode, JamOff, JamOn, JamPattern)
	}
	return nil
}

// Mask compiles the spec into the slot predicate the engines consume
// (dynamic.WithJammer shape). A nil or off spec compiles to nil — a
// clean channel. Slots are 1-based, so a pattern jams slots s with
// (s-1) mod period < burst, exactly as scenario.JamPeriodic does.
func (j *JamSpec) Mask() func(slot uint64) bool {
	if j == nil {
		return nil
	}
	switch j.Mode {
	case JamOn:
		return func(uint64) bool { return true }
	case JamPattern:
		period, burst := j.Period, j.Burst
		return func(slot uint64) bool { return (slot-1)%period < burst }
	}
	return nil
}

// SessionSpec configures one live session (internal/session): a
// dynamic Poisson workload simulated window by window on the event-skip
// kernel, indefinitely or up to MaxWindows, under a windowed protocol.
// Field order fixes the canonical encoding.
type SessionSpec struct {
	// Protocol names a *windowed* registry configuration (default
	// "exp-bb"). Fair full-feedback protocols are rejected: an
	// unbounded session cannot afford per-slot feedback delivery, and
	// the event-skip kernel is exact only for feedback-oblivious
	// windowed schedules.
	Protocol ProtocolSpec `json:"protocol"`
	// Lambda is the initial offered load in messages/slot (default
	// 0.1; bounded by maxSessionLambda). Changeable mid-run via
	// set-lambda.
	Lambda float64 `json:"lambda"`
	// Seed keys all randomness (default 1). Together with the
	// validated spec and the control log it determines the run
	// bit for bit.
	Seed uint64 `json:"seed"`
	// Window is the aggregation window length in slots (default 64):
	// one SessionWindow event per window, and the granularity at which
	// controls take effect.
	Window int `json:"window"`
	// MaxWindows ends the session after this many windows; 0 means
	// run until stopped (clamped to Limits.MaxSessionWindows when
	// serving).
	MaxWindows int `json:"maxWindows,omitempty"`
	// Buffer bounds the in-memory event buffer (default 256 entries,
	// [16, 65536]). When a slow consumer lets it fill, the oldest
	// window aggregates are dropped and a gap marker takes their
	// place; see docs/sessions.md.
	Buffer int `json:"buffer,omitempty"`
	// Pace throttles the session to this many windows per wall-clock
	// second (0 = simulate as fast as possible). Pacing affects only
	// timing, never simulated content: replay ignores it.
	Pace float64 `json:"pace,omitempty"`
	// Jam is the initial channel impairment (default off). Changeable
	// mid-run via the jam control.
	Jam *JamSpec `json:"jam,omitempty"`
}

// Validate normalizes the spec in place — defaults applied, protocol
// name canonicalized, an explicit off-jammer erased — and checks it
// against the limits (zero fields of which mean unlimited, except
// MaxSessionWindows, which clamps). Idempotent; after it json.Marshal
// is the canonical parameter encoding.
func (s *SessionSpec) Validate(l Limits) error {
	if s.Protocol.Name == "" {
		s.Protocol.Name = "exp-bb"
	}
	if err := s.Protocol.validate(); err != nil {
		return err
	}
	if err := requireWindowed(s.Protocol); err != nil {
		return err
	}
	if s.Lambda == 0 {
		s.Lambda = 0.1
	}
	if err := validateSessionLambda(s.Lambda); err != nil {
		return err
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Window == 0 {
		s.Window = 64
	}
	if s.Window < 1 {
		return fmt.Errorf("window must be ≥ 1 slot, got %d", s.Window)
	}
	if l.MaxWindow > 0 && s.Window > l.MaxWindow {
		return fmt.Errorf("window must be in [1, %d] slots, got %d", l.MaxWindow, s.Window)
	}
	if s.MaxWindows < 0 {
		return fmt.Errorf("maxWindows must be ≥ 0, got %d", s.MaxWindows)
	}
	if l.MaxSessionWindows > 0 && (s.MaxWindows == 0 || s.MaxWindows > l.MaxSessionWindows) {
		s.MaxWindows = l.MaxSessionWindows
	}
	if s.Buffer == 0 {
		s.Buffer = 256
	}
	if s.Buffer < 16 || s.Buffer > 65536 {
		return fmt.Errorf("buffer must be in [16, 65536] entries, got %d", s.Buffer)
	}
	if s.Pace < 0 || math.IsInf(s.Pace, 0) || math.IsNaN(s.Pace) || s.Pace > 1000 {
		return fmt.Errorf("pace must be in [0, 1000] windows/second, got %v", s.Pace)
	}
	if s.Jam != nil {
		if err := s.Jam.validate(); err != nil {
			return err
		}
		if s.Jam.Mode == JamOff {
			s.Jam = nil // implicit and explicit clean channels hash alike
		}
	}
	return nil
}

// requireWindowed checks that a validated protocol spec names a
// windowed (feedback-oblivious) configuration.
func requireWindowed(p ProtocolSpec) error {
	sys, err := harness.SystemBySpec(p.Name, p.Params)
	if err != nil {
		return err
	}
	if _, ok := sys.(*harness.WindowSystem); !ok {
		return fmt.Errorf("sessions support only windowed protocols (exp-bb, loglog-iterated, exp-backoff); %q needs per-slot channel feedback, which an unbounded event-skip session never materializes", p.Name)
	}
	return nil
}

// validateSessionLambda applies the shared offered-load rule for
// session specs and set-lambda controls.
func validateSessionLambda(lambda float64) error {
	if !(lambda > 0) || math.IsInf(lambda, 0) || lambda > maxSessionLambda {
		return fmt.Errorf("lambda must be in (0, %d] messages/slot, got %v", maxSessionLambda, lambda)
	}
	return nil
}

// EncodeParams marshals a validated session spec's canonical parameter
// document — the body POST /v1/sessions accepts, and the bytes
// CanonicalKey hashes.
func (s SessionSpec) EncodeParams() ([]byte, error) {
	return json.Marshal(s)
}

// CanonicalKey hashes a validated session spec exactly as
// ExperimentSpec.CanonicalKey hashes experiments. Sessions are not
// cached or deduplicated — two identical specs open two distinct
// sessions — but the key routes the session to its shard-ring owner
// and prefixes its id, so polls, controls and streams forward without
// a lookup table.
func (s SessionSpec) CanonicalKey() (string, error) {
	params, err := s.EncodeParams()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(KindSession))
	h.Write([]byte{0})
	h.Write(params)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// DecodeSession parses a session parameter document. An empty body
// selects all defaults; unknown fields are rejected.
func DecodeSession(body []byte) (SessionSpec, error) {
	var s SessionSpec
	if len(bytes.TrimSpace(body)) == 0 {
		return s, nil
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return SessionSpec{}, fmt.Errorf("decoding session request: %w", err)
	}
	return s, nil
}

// Control message types. Content controls (set-lambda, jam,
// swap-protocol, stop) change what the session simulates and are
// recorded in the control log; pause, resume and checkpoint only
// steer the live process and replay as no-ops.
const (
	ControlSetLambda    = "set-lambda"
	ControlJam          = "jam"
	ControlSwapProtocol = "swap-protocol"
	ControlPause        = "pause"
	ControlResume       = "resume"
	ControlCheckpoint   = "checkpoint"
	ControlStop         = "stop"
)

// ControlMessage is one typed mid-flight session control. On input
// (POST /v1/sessions/{id}/control, macsim session stdin) Slot is
// ignored; the session stamps it with the first slot of the next
// unsimulated window — the slot at which the control takes effect —
// before appending the message to the control log. On replay the
// recorded Slot is authoritative.
type ControlMessage struct {
	// Type selects the control (see the Control* constants).
	Type string `json:"type"`
	// Lambda is the new offered load (set-lambda only).
	Lambda float64 `json:"lambda,omitempty"`
	// Jam is the new channel impairment (jam only).
	Jam *JamSpec `json:"jam,omitempty"`
	// Protocol is the windowed configuration to hot-swap to
	// (swap-protocol only). Backlogged stations redraw their schedules
	// under the new protocol from the effective slot on.
	Protocol *ProtocolSpec `json:"protocol,omitempty"`
	// Slot is the stamped effective slot (output on live sessions,
	// input on replay).
	Slot uint64 `json:"slot,omitempty"`
}

// Validate checks (and normalizes in place) one control message.
// Limits is accepted for symmetry with the spec types; today only the
// shared absolute bounds apply.
func (c *ControlMessage) Validate(l Limits) error {
	switch c.Type {
	case ControlSetLambda:
		if c.Jam != nil || c.Protocol != nil {
			return fmt.Errorf("control %q takes only a lambda", c.Type)
		}
		if err := validateSessionLambda(c.Lambda); err != nil {
			return err
		}
	case ControlJam:
		if c.Lambda != 0 || c.Protocol != nil {
			return fmt.Errorf("control %q takes only a jam object", c.Type)
		}
		if c.Jam == nil {
			return fmt.Errorf("control %q needs a jam object (mode %q, %q or %q)", c.Type, JamOff, JamOn, JamPattern)
		}
		if err := c.Jam.validate(); err != nil {
			return err
		}
	case ControlSwapProtocol:
		if c.Lambda != 0 || c.Jam != nil {
			return fmt.Errorf("control %q takes only a protocol", c.Type)
		}
		if c.Protocol == nil {
			return fmt.Errorf("control %q needs a protocol", c.Type)
		}
		if err := c.Protocol.validate(); err != nil {
			return err
		}
		if err := requireWindowed(*c.Protocol); err != nil {
			return err
		}
	case ControlPause, ControlResume, ControlCheckpoint, ControlStop:
		if c.Lambda != 0 || c.Jam != nil || c.Protocol != nil {
			return fmt.Errorf("control %q takes no payload", c.Type)
		}
	case "":
		return fmt.Errorf("control needs a type (set-lambda, jam, swap-protocol, pause, resume, checkpoint, stop)")
	default:
		return fmt.Errorf("unknown control type %q (want set-lambda, jam, swap-protocol, pause, resume, checkpoint or stop)", c.Type)
	}
	return nil
}

// ParseControl parses the one-line text grammar shared by the macsim
// session stdin reader and the /control endpoint's text mode:
//
//	set-lambda 0.3
//	jam on | jam off | jam pattern PERIOD:BURST
//	swap-protocol NAME
//	pause | resume | checkpoint | stop
//
// The result is unvalidated; callers pass it through Validate.
func ParseControl(line string) (ControlMessage, error) {
	f := strings.Fields(line)
	if len(f) == 0 {
		return ControlMessage{}, fmt.Errorf("empty control line")
	}
	bad := func(format string, args ...any) (ControlMessage, error) {
		return ControlMessage{}, fmt.Errorf(format, args...)
	}
	switch f[0] {
	case ControlSetLambda:
		if len(f) != 2 {
			return bad("set-lambda takes one value, got %q", line)
		}
		lambda, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return bad("set-lambda %q: %v", f[1], err)
		}
		return ControlMessage{Type: ControlSetLambda, Lambda: lambda}, nil
	case ControlJam:
		if len(f) < 2 {
			return bad("jam takes on, off or pattern PERIOD:BURST, got %q", line)
		}
		switch f[1] {
		case JamOn, JamOff:
			if len(f) != 2 {
				return bad("jam %s takes no further arguments, got %q", f[1], line)
			}
			return ControlMessage{Type: ControlJam, Jam: &JamSpec{Mode: f[1]}}, nil
		case JamPattern:
			if len(f) != 3 {
				return bad("jam pattern takes PERIOD:BURST, got %q", line)
			}
			periodStr, burstStr, ok := strings.Cut(f[2], ":")
			if !ok {
				return bad("jam pattern %q: want PERIOD:BURST", f[2])
			}
			period, err1 := strconv.ParseUint(periodStr, 10, 64)
			burst, err2 := strconv.ParseUint(burstStr, 10, 64)
			if err1 != nil || err2 != nil {
				return bad("jam pattern %q: want two integers PERIOD:BURST", f[2])
			}
			return ControlMessage{Type: ControlJam, Jam: &JamSpec{Mode: JamPattern, Period: period, Burst: burst}}, nil
		default:
			return bad("jam mode %q: want on, off or pattern", f[1])
		}
	case ControlSwapProtocol:
		if len(f) != 2 {
			return bad("swap-protocol takes one registry name, got %q", line)
		}
		return ControlMessage{Type: ControlSwapProtocol, Protocol: &ProtocolSpec{Name: f[1]}}, nil
	case ControlPause, ControlResume, ControlCheckpoint, ControlStop:
		if len(f) != 1 {
			return bad("%s takes no arguments, got %q", f[0], line)
		}
		return ControlMessage{Type: f[0]}, nil
	default:
		return bad("unknown control %q (want set-lambda, jam, swap-protocol, pause, resume, checkpoint or stop)", f[0])
	}
}

// SessionWindow is one aggregation window of a live session: the
// windowed throughput/backlog/collision/latency aggregate the stream
// carries. Rates derive from the raw counts: throughput is
// delivered/slots, the collision rate collisions/slots.
type SessionWindow struct {
	Event string `json:"event"` // "window"
	// Window is the 0-based window index.
	Window int `json:"window"`
	// Start is the window's first slot (1-based global slot numbers).
	Start uint64 `json:"start"`
	// Slots is the window length.
	Slots int `json:"slots"`
	// Lambda is the offered load in effect during this window.
	Lambda float64 `json:"lambda"`
	// Arrivals, Delivered and Collisions count this window's events.
	Arrivals   int `json:"arrivals"`
	Delivered  int `json:"delivered"`
	Collisions int `json:"collisions"`
	// Backlog is the number of undelivered messages at window end.
	Backlog int `json:"backlog"`
	// Throughput is delivered/slots.
	Throughput float64 `json:"throughput"`
	// LatencyP99 is the 99th-percentile delivery latency (slots from
	// arrival to delivery, inclusive) among this window's deliveries;
	// 0 when nothing was delivered.
	LatencyP99 float64 `json:"latencyP99"`
}

// EventName implements Event.
func (w SessionWindow) EventName() string { return w.Event }

// SimulatedSlots implements Event.
func (w SessionWindow) SimulatedSlots() uint64 { return uint64(w.Slots) }

// SessionGap marks windows dropped from the event buffer because a
// slow consumer let it fill (drop-oldest-aggregate policy): aggregates
// for windows [From, To] were discarded. The simulation itself never
// stalls or skips — only the stream has the hole.
type SessionGap struct {
	Event string `json:"event"` // "gap"
	// From and To are the first and last dropped window indices.
	From int `json:"from"`
	To   int `json:"to"`
	// Dropped counts the dropped window aggregates (To - From + 1).
	Dropped int `json:"dropped"`
}

// EventName implements Event.
func (g SessionGap) EventName() string { return g.Event }

// SimulatedSlots implements Event. The dropped windows' slots were
// already accounted by their SessionWindow events at publish time, so
// a gap accounts for none.
func (g SessionGap) SimulatedSlots() uint64 { return 0 }

// SessionControl acknowledges an applied control on the stream,
// carrying the slot-stamped message exactly as the control log records
// it.
type SessionControl struct {
	Event   string         `json:"event"` // "control"
	Control ControlMessage `json:"control"`
}

// EventName implements Event.
func (c SessionControl) EventName() string { return c.Event }

// SimulatedSlots implements Event.
func (c SessionControl) SimulatedSlots() uint64 { return 0 }

// SessionCheckpoint is the replay document: the initial validated spec
// (including the seed) plus the slot-stamped control log. Replaying it
// — session.Replay, macsim session -replay — reproduces every
// SessionWindow aggregate bit for bit. A checkpoint control publishes
// one mid-stream; GET /v1/sessions/{id} embeds the current one.
type SessionCheckpoint struct {
	Event string `json:"event"` // "checkpoint"
	// Slot is the next unsimulated slot at checkpoint time.
	Slot uint64 `json:"slot"`
	// Window is the next window index at checkpoint time.
	Window int `json:"window"`
	// Session is the initial validated spec.
	Session SessionSpec `json:"session"`
	// Log is the control log so far, in application order.
	Log []ControlMessage `json:"log"`
}

// EventName implements Event.
func (c SessionCheckpoint) EventName() string { return c.Event }

// SimulatedSlots implements Event.
func (c SessionCheckpoint) SimulatedSlots() uint64 { return 0 }

// SessionEnd is the terminal event of a session stream.
type SessionEnd struct {
	Event string `json:"event"` // "end"
	// Reason is "stop" (stop control), "maxWindows" (window budget
	// reached) or "canceled" (context canceled / hard teardown).
	Reason string `json:"reason"`
	// Windows and Slots measure the simulated extent.
	Windows int    `json:"windows"`
	Slots   uint64 `json:"slots"`
	// Delivered counts messages delivered over the whole session.
	Delivered uint64 `json:"delivered"`
	// Backlog is the undelivered backlog at the end.
	Backlog int `json:"backlog"`
	// Dropped counts window aggregates dropped on the event buffer
	// over the session's lifetime.
	Dropped uint64 `json:"dropped"`
}

// EventName implements Event.
func (e SessionEnd) EventName() string { return e.Event }

// SimulatedSlots implements Event.
func (e SessionEnd) SimulatedSlots() uint64 { return 0 }
