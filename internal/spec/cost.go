// Cost classification: a rough, deterministic estimate of how much
// simulation work a validated spec will cost, and the interactive/batch
// split the serving subsystem's priority lane is built on. The estimate
// is in "estimated channel slots" — the unit every simulator already
// accounts in — and only has to be right to an order of magnitude: it
// ranks requests against each other and against the interactive
// threshold, it never budgets them (Limits does that).

package spec

import "repro/internal/throughput"

// defaultInteractiveCost is the interactive/batch boundary when
// Limits.InteractiveCost is unset: about 2^16 estimated slots, a few
// milliseconds of simulation with the event-skip kernel. A default
// solve (k=1000) sits far below it; the default evaluate sweep and
// anything sized for Table 1 sits far above.
const defaultInteractiveCost = 1 << 16

// costCeiling caps EstimatedCost so arithmetic on estimates (deficit
// accounting, cost-unit division) can never overflow.
const costCeiling = int64(1) << 40

// slotsPerK is the linear proxy for the slots one static execution of
// size k costs: the paper's protocols finish in Θ(k) slots with small
// constants (Table 1's best column is 2.72k).
const slotsPerK = 3

// EstimatedCost returns the spec's rough simulation cost in estimated
// channel slots. Call it on a validated spec — defaults are assumed
// filled in; unvalidated zero fields are treated as their minimum so
// the estimate degrades toward "cheap", never toward a panic.
func (s ExperimentSpec) EstimatedCost() int64 {
	sub, err := s.active()
	if err != nil {
		return 0
	}
	var cost int64
	switch v := sub.(type) {
	case *SolveSpec:
		cost = slotsPerK * int64(max(v.K, 1))
	case *EvaluateSpec:
		lineup := len(v.Protocols)
		if len(v.Systems) > 0 {
			lineup = len(v.Systems)
		}
		if lineup == 0 {
			lineup = 5 // the paper's five-row default lineup
		}
		var grid int64
		if len(v.Ks) > 0 {
			for _, k := range v.Ks {
				grid += int64(max(k, 1))
			}
		} else {
			// Sizes 10, 100, …, 10^maxExp: the sum is dominated by the
			// largest term.
			k := int64(1)
			for e := 0; e < max(v.MaxExp, 1) && k < costCeiling/10; e++ {
				k *= 10
				grid += k
			}
		}
		cost = mulCapped(mulCapped(int64(lineup), repsBound(v.Runs, v.Precision)), slotsPerK*grid)
	case *ThroughputSpec:
		lineup := len(v.Lineup)
		if lineup == 0 {
			lineup = len(throughput.DefaultProtocols())
		}
		// Delivering m messages at offered load λ needs ≈ m/λ slots at
		// stability, more at saturation; the smallest λ dominates.
		var slots int64
		for _, lambda := range v.Lambdas {
			if lambda > 0 {
				slots += int64(float64(max(v.Messages, 1)) / lambda)
			}
		}
		if slots == 0 {
			slots = int64(max(v.Messages, 1))
		}
		cost = mulCapped(mulCapped(int64(lineup), repsBound(v.Runs, v.Precision)), slots)
	case *ArenaSpec:
		// One throughput cell per (protocol, scenario) pair at a single
		// offered load: ≈ messages/λ slots each.
		lineup := max(len(v.Protocols), 1)
		scenarios := max(len(v.Scenarios), 1)
		slots := int64(max(v.Messages, 1))
		if v.Lambda > 0 {
			slots = int64(float64(max(v.Messages, 1)) / v.Lambda)
		}
		cells := mulCapped(int64(lineup), int64(scenarios))
		cost = mulCapped(mulCapped(cells, repsBound(v.Runs, v.Precision)), slots)
	}
	return min(max(cost, 1), costCeiling)
}

// Interactive reports whether the spec is small enough for the serving
// subsystem's priority lane: its estimated cost is at or below the
// interactive threshold (Limits.InteractiveCost, defaulting to
// defaultInteractiveCost when zero).
func (s ExperimentSpec) Interactive(l Limits) bool {
	return s.EstimatedCost() <= l.InteractiveThreshold()
}

// InteractiveThreshold resolves the interactive/batch boundary.
func (l Limits) InteractiveThreshold() int64 {
	if l.InteractiveCost > 0 {
		return int64(l.InteractiveCost)
	}
	return defaultInteractiveCost
}

// repsBound returns the replication bound per point: the fixed runs
// count, or the adaptive cap when precision replaces it.
func repsBound(runs int, p *PrecisionSpec) int64 {
	if p != nil && p.MaxReps > 0 {
		return int64(p.MaxReps)
	}
	return int64(max(runs, 1))
}

// mulCapped multiplies non-negative factors, saturating at costCeiling.
func mulCapped(a, b int64) int64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	if a > costCeiling/b {
		return costCeiling
	}
	return a * b
}
