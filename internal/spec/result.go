// Result documents: the typed, JSON-stable outcome of each experiment
// kind. These are the exact documents the HTTP API caches and serves
// and the CLI's -json flag prints — one codec for all three front ends.

package spec

import (
	"strings"

	"repro/internal/arena"
	"repro/internal/harness"
	"repro/internal/throughput"
)

// SolveResult is the result document of a solve experiment.
type SolveResult struct {
	Protocol string  `json:"protocol"`
	System   string  `json:"system"`
	K        int     `json:"k"`
	Seed     uint64  `json:"seed"`
	Slots    uint64  `json:"slots"`
	Ratio    float64 `json:"ratio"`
	Analysis string  `json:"analysis"`
}

// EvaluateCell is one (system, k) aggregate of an evaluate result.
// RepsUsed is the number of replications actually executed (equal to
// Runs in fixed-rep mode; between minReps and maxReps under a
// PrecisionSpec), and CI95 is the Student-t 95% half-width of
// MeanSlots — the calibrated error bar adaptive mode stops on.
type EvaluateCell struct {
	K         int     `json:"k"`
	Runs      int     `json:"runs"`
	RepsUsed  int     `json:"repsUsed"`
	MeanSlots float64 `json:"meanSlots"`
	CI95      float64 `json:"ci95"`
	Ratio     float64 `json:"ratio"`
	Analysis  string  `json:"analysis"`
}

// EvaluateSeries is one system's sweep outcome.
type EvaluateSeries struct {
	System string         `json:"system"`
	Cells  []EvaluateCell `json:"cells"`
}

// EvaluateResult is the result document of an evaluate experiment.
type EvaluateResult struct {
	Seed   uint64           `json:"seed"`
	Series []EvaluateSeries `json:"series"`
	Table1 string           `json:"table1"`
	CSV    string           `json:"csv"`
}

// ThroughputPoint is one (protocol, λ) aggregate of a sweep result.
// RepsUsed is the number of replications actually executed (equal to
// Runs in fixed-rep mode; between minReps and maxReps under a
// PrecisionSpec), and CI95 is the Student-t 95% half-width of
// Throughput — the calibrated error bar adaptive mode stops on.
type ThroughputPoint struct {
	Lambda      float64 `json:"lambda"`
	Throughput  float64 `json:"throughput"`
	CI95        float64 `json:"ci95"`
	LatencyMean float64 `json:"latencyMean"`
	LatencyP50  float64 `json:"latencyP50"`
	LatencyP99  float64 `json:"latencyP99"`
	MaxBacklog  float64 `json:"maxBacklog"`
	Completed   int     `json:"completed"`
	Runs        int     `json:"runs"`
	RepsUsed    int     `json:"repsUsed"`
	Saturated   bool    `json:"saturated"`
}

// ThroughputSeries is one protocol's sweep outcome.
type ThroughputSeries struct {
	Protocol string            `json:"protocol"`
	Points   []ThroughputPoint `json:"points"`
}

// ThroughputResult is the result document of a throughput or scenario
// experiment.
type ThroughputResult struct {
	Scenario string             `json:"scenario"`
	Seed     uint64             `json:"seed"`
	Series   []ThroughputSeries `json:"series"`
	Table    string             `json:"table"`
	CSV      string             `json:"csv"`
}

// ArenaCell is one (protocol, scenario) aggregate of an arena result.
// Score is the sustained fraction of the offered load (mean throughput
// divided by λ) and CI95 its Student-t 95% half-width across runs.
type ArenaCell struct {
	Scenario  string  `json:"scenario"`
	Score     float64 `json:"score"`
	CI95      float64 `json:"ci95"`
	Completed int     `json:"completed"`
	Runs      int     `json:"runs"`
	RepsUsed  int     `json:"repsUsed"`
	Saturated bool    `json:"saturated"`
}

// ArenaEntry is one protocol's row of the robustness ranking, best
// overall score first.
type ArenaEntry struct {
	Rank      int         `json:"rank"`
	Protocol  string      `json:"protocol"`
	Display   string      `json:"display"`
	Overall   float64     `json:"overall"`
	CI95      float64     `json:"ci95"`
	Scenarios []ArenaCell `json:"scenarios"`
}

// ArenaResult is the result document of an arena experiment.
type ArenaResult struct {
	Lambda    float64      `json:"lambda"`
	Messages  int          `json:"messages"`
	Runs      int          `json:"runs"`
	Seed      uint64       `json:"seed"`
	Scenarios []string     `json:"scenarios"`
	Ranking   []ArenaEntry `json:"ranking"`
	Table     string       `json:"table"`
	CSV       string       `json:"csv"`
}

// Result is an experiment's typed outcome: exactly one of the kind
// fields is set, mirroring the spec union.
type Result struct {
	Kind       ExperimentKind
	Solve      *SolveResult
	Evaluate   *EvaluateResult
	Throughput *ThroughputResult // kinds "throughput" and "scenario"
	Arena      *ArenaResult

	sweep     []harness.SeriesResult // raw evaluate series, for renderers
	dynamic   []throughput.Series    // raw throughput series, for renderers
	arenaRank *arena.Result          // raw arena ranking, for renderers

	// repsSaved counts replications the adaptive-precision engine did
	// not need: Σ over points of (maxReps − repsUsed). 0 in fixed-rep
	// mode. The serving subsystem folds it into
	// macsimd_reps_saved_total.
	repsSaved int
}

// RepsSaved reports the replications adaptive-precision stopping saved
// against the MaxReps worst case (0 for fixed-rep experiments).
func (r *Result) RepsSaved() int { return r.repsSaved }

// Document returns the kind's result document — the value whose
// json.Marshal is the wire encoding shared by the HTTP API and the
// CLI's -json output.
func (r *Result) Document() any {
	switch r.Kind {
	case KindSolve:
		return r.Solve
	case KindEvaluate:
		return r.Evaluate
	case KindArena:
		return r.Arena
	default:
		return r.Throughput
	}
}

// Sweep returns the raw evaluate series for the Table1/Figure1/CSV
// renderers; nil for other kinds.
func (r *Result) Sweep() []harness.SeriesResult { return r.sweep }

// Dynamic returns the raw throughput series for the
// Table/Plot/CSV renderers; nil for other kinds.
func (r *Result) Dynamic() []throughput.Series { return r.dynamic }

// ArenaRanking returns the raw arena ranking for the arena.Table/CSV
// renderers; nil for other kinds.
func (r *Result) ArenaRanking() *arena.Result { return r.arenaRank }

// evaluateDocument folds raw sweep series into the result document.
func evaluateDocument(seed uint64, results []harness.SeriesResult) *EvaluateResult {
	out := &EvaluateResult{
		Seed:   seed,
		Series: make([]EvaluateSeries, len(results)),
		Table1: harness.Table1(results),
		CSV:    harness.CSV(results),
	}
	for i, res := range results {
		s := EvaluateSeries{System: res.System.Name(), Cells: make([]EvaluateCell, len(res.Cells))}
		for j := range res.Cells {
			c := &res.Cells[j]
			s.Cells[j] = EvaluateCell{
				K:         c.K,
				Runs:      c.Steps.N(),
				RepsUsed:  c.Steps.N(),
				MeanSlots: c.Steps.Mean(),
				CI95:      c.Steps.CIAt(0.95),
				Ratio:     c.Ratio(),
				Analysis:  res.System.AnalysisRatio(c.K),
			}
		}
		out.Series[i] = s
	}
	return out
}

// arenaDocument folds a raw arena ranking into the result document,
// embedding the rendered table and CSV so all three front ends serve
// byte-identical artifacts.
func arenaDocument(seed uint64, res *arena.Result) *ArenaResult {
	var table, csv strings.Builder
	_ = arena.Table(&table, res) // strings.Builder writes cannot fail
	_ = arena.CSV(&csv, res)
	out := &ArenaResult{
		Lambda:    res.Lambda,
		Messages:  res.Messages,
		Runs:      res.Runs,
		Seed:      seed,
		Scenarios: res.Scenarios,
		Ranking:   make([]ArenaEntry, len(res.Ranking)),
		Table:     table.String(),
		CSV:       csv.String(),
	}
	for i := range res.Ranking {
		e := &res.Ranking[i]
		entry := ArenaEntry{
			Rank:      i + 1,
			Protocol:  e.Protocol,
			Display:   e.Display,
			Overall:   e.Overall,
			CI95:      e.CI95,
			Scenarios: make([]ArenaCell, len(e.Scenarios)),
		}
		for j := range e.Scenarios {
			c := &e.Scenarios[j]
			entry.Scenarios[j] = ArenaCell{
				Scenario:  c.Scenario,
				Score:     c.Score,
				CI95:      c.CI95,
				Completed: c.Completed,
				Runs:      c.Runs,
				RepsUsed:  c.Runs,
				Saturated: c.Saturated(),
			}
		}
		out.Ranking[i] = entry
	}
	return out
}

// throughputDocument folds raw λ-sweep series into the result document.
func throughputDocument(workload string, seed uint64, series []throughput.Series) *ThroughputResult {
	out := &ThroughputResult{
		Scenario: workload,
		Seed:     seed,
		Series:   make([]ThroughputSeries, len(series)),
		Table:    throughput.Table(series),
		CSV:      throughput.CSV(series),
	}
	for i, s := range series {
		ts := ThroughputSeries{Protocol: s.Protocol.Name, Points: make([]ThroughputPoint, len(s.Points))}
		for j := range s.Points {
			p := &s.Points[j]
			ts.Points[j] = ThroughputPoint{
				Lambda:      p.Lambda,
				Throughput:  p.Throughput.Mean(),
				CI95:        p.Throughput.CIAt(0.95),
				LatencyMean: p.Latency.Mean(),
				LatencyP50:  p.Latency.Quantile(0.5),
				LatencyP99:  p.Latency.Quantile(0.99),
				MaxBacklog:  p.Backlog.Max(),
				Completed:   p.Completed,
				Runs:        p.Runs,
				RepsUsed:    p.Runs,
				Saturated:   p.Saturated(),
			}
		}
		out.Series[i] = ts
	}
	return out
}
