package spec

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunSolveStreamsAndResolves(t *testing.T) {
	t.Parallel()
	exec, err := Run(context.Background(), ForSolve(SolveSpec{K: 300, Seed: 11}))
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for ev, err := range exec.Events() {
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if len(events) != 1 {
		t.Fatalf("solve streamed %d events, want 1", len(events))
	}
	p, ok := events[0].(SweepProgress)
	if !ok || p.Event != "progress" || p.K != 300 || p.Slots == 0 {
		t.Fatalf("unexpected event %+v", events[0])
	}
	if p.SimulatedSlots() != p.Slots {
		t.Fatalf("SimulatedSlots = %d, want %d", p.SimulatedSlots(), p.Slots)
	}
	res, err := exec.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindSolve || res.Solve == nil || res.Solve.Slots != p.Slots {
		t.Fatalf("unexpected result %+v", res)
	}
	if res.Solve.System != "One-Fail Adaptive" || res.Solve.Protocol != "one-fail" {
		t.Fatalf("unexpected result naming %+v", res.Solve)
	}
	// Events are re-iterable after completion.
	n := 0
	for _, err := range exec.Events() {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 1 {
		t.Fatalf("replay saw %d events", n)
	}
	// The document marshals to the wire codec.
	data, err := json.Marshal(res.Document())
	if err != nil {
		t.Fatal(err)
	}
	var doc SolveResult
	if err := json.Unmarshal(data, &doc); err != nil || doc != *res.Solve {
		t.Fatalf("document round trip: %s, %v", data, err)
	}
}

func TestRunSolveDeterministicAcrossExecutions(t *testing.T) {
	t.Parallel()
	slots := func() uint64 {
		exec, err := Run(context.Background(), ForSolve(SolveSpec{K: 200, Seed: 42}))
		if err != nil {
			t.Fatal(err)
		}
		res, err := exec.Result()
		if err != nil {
			t.Fatal(err)
		}
		return res.Solve.Slots
	}
	if a, b := slots(), slots(); a != b {
		t.Fatalf("same spec gave %d then %d slots", a, b)
	}
}

func TestRunEvaluateEventsAndResult(t *testing.T) {
	t.Parallel()
	exec, err := Run(context.Background(), ForEvaluate(EvaluateSpec{
		Protocols: []ProtocolSpec{{Name: "ofa"}},
		Ks:        []int{10, 50},
		Runs:      2,
		Seed:      3,
	}))
	if err != nil {
		t.Fatal(err)
	}
	progress := 0
	for _, err := range exec.Events() {
		if err != nil {
			t.Fatal(err)
		}
		progress++
	}
	if progress != 4 { // 1 protocol × 2 sizes × 2 runs
		t.Fatalf("progress events = %d, want 4", progress)
	}
	res, err := exec.Result()
	if err != nil {
		t.Fatal(err)
	}
	doc := res.Evaluate
	if doc == nil || len(doc.Series) != 1 || len(doc.Series[0].Cells) != 2 {
		t.Fatalf("unexpected evaluate document %+v", doc)
	}
	if doc.Series[0].System != "One-Fail Adaptive" || doc.Table1 == "" || doc.CSV == "" {
		t.Fatalf("document misses renderings: %+v", doc)
	}
	if len(res.Sweep()) != 1 {
		t.Fatalf("raw series missing: %d", len(res.Sweep()))
	}
}

func TestRunThroughputKinds(t *testing.T) {
	t.Parallel()
	exec, err := Run(context.Background(), ForScenario(ThroughputSpec{
		Scenario: "rho", Lambdas: []float64{0.1}, Messages: 100, Runs: 1, Seed: 5,
	}))
	if err != nil {
		t.Fatal(err)
	}
	sawDynamic := false
	for ev, err := range exec.Events() {
		if err != nil {
			t.Fatal(err)
		}
		if p, ok := ev.(DynamicProgress); ok {
			sawDynamic = true
			if p.Event != "progress" || p.Lambda != 0.1 {
				t.Fatalf("unexpected event %+v", p)
			}
		}
	}
	if !sawDynamic {
		t.Fatal("no dynamic progress events")
	}
	res, err := exec.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindScenario || res.Throughput == nil || res.Throughput.Scenario != "rho" {
		t.Fatalf("unexpected result %+v", res)
	}
	if len(res.Dynamic()) == 0 {
		t.Fatal("raw dynamic series missing")
	}
}

func TestRunValidationErrorIsSynchronous(t *testing.T) {
	t.Parallel()
	if _, err := Run(context.Background(), ForSolve(SolveSpec{K: -3})); err == nil {
		t.Fatal("invalid spec started an execution")
	}
}

// TestRunCancelMidSweep is the library-path acceptance test: canceling
// the mac.Run context mid-sweep stops simulation work promptly and
// surfaces context.Canceled from both the event stream and Result.
func TestRunCancelMidSweep(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Runs heavy enough (k=20'000, several ms each) that the cancel —
	// issued on the first progress event — lands long before the 200
	// queued runs could drain.
	exec, err := Run(ctx, ForEvaluate(EvaluateSpec{
		Protocols: []ProtocolSpec{{Name: "ofa"}},
		Ks:        []int{20000},
		Runs:      200,
		Seed:      1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	var events atomic.Int32
	var streamErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, err := range exec.Events() {
			if err != nil {
				streamErr = err
				return
			}
			if events.Add(1) == 1 {
				cancel()
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("event stream did not terminate after cancellation")
	}
	if !errors.Is(streamErr, context.Canceled) {
		t.Fatalf("stream error = %v after %d events, want context.Canceled", streamErr, events.Load())
	}
	if _, err := exec.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Result error = %v, want context.Canceled", err)
	}
	// The bulk of the 200 queued runs must never have executed.
	if n := events.Load(); n > 100 {
		t.Fatalf("%d runs executed after cancellation at run 1", n)
	}
}

// TestRunResultWithoutConsumingEvents: a caller that never iterates
// Events must still get the result — publication never blocks on
// consumers.
func TestRunResultWithoutConsumingEvents(t *testing.T) {
	t.Parallel()
	exec, err := Run(context.Background(), ForEvaluate(EvaluateSpec{
		Protocols: []ProtocolSpec{{Name: "exp-bb"}},
		Ks:        []int{10},
		Runs:      3,
		Seed:      2,
	}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Result()
	if err != nil || res.Evaluate == nil {
		t.Fatalf("Result = %+v, %v", res, err)
	}
}

// TestRunAdaptiveEvaluate drives an adaptive-precision evaluate
// experiment end to end through Run: the result document must report
// per-cell reps and error bars, and the execution must account the
// replications the stopping rule saved.
func TestRunAdaptiveEvaluate(t *testing.T) {
	t.Parallel()
	exec, err := Run(context.Background(), ForEvaluate(EvaluateSpec{
		Protocols: []ProtocolSpec{{Name: "exp-bb"}},
		Ks:        []int{200},
		Seed:      1,
		Precision: &PrecisionSpec{Epsilon: 0.3, Confidence: 0.9, MinReps: 2, MaxReps: 40},
	}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Result()
	if err != nil {
		t.Fatal(err)
	}
	cell := res.Evaluate.Series[0].Cells[0]
	if cell.RepsUsed < 2 || cell.RepsUsed >= 40 {
		t.Fatalf("RepsUsed = %d, want early stop in [2, 40)", cell.RepsUsed)
	}
	if cell.Runs != cell.RepsUsed {
		t.Fatalf("Runs (%d) and RepsUsed (%d) disagree", cell.Runs, cell.RepsUsed)
	}
	if cell.CI95 <= 0 {
		t.Fatalf("CI95 = %v, want > 0 for a noisy cell", cell.CI95)
	}
	if want := 40 - cell.RepsUsed; res.RepsSaved() != want {
		t.Fatalf("RepsSaved = %d, want %d", res.RepsSaved(), want)
	}
	// The document round-trips the new fields.
	data, err := json.Marshal(res.Document())
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"repsUsed"`, `"ci95"`} {
		if !json.Valid(data) || !bytes.Contains(data, []byte(field)) {
			t.Fatalf("document missing %s: %s", field, data)
		}
	}
}

// TestRunAdaptiveThroughput drives an adaptive scenario experiment end
// to end and checks the dynamic result document.
func TestRunAdaptiveThroughput(t *testing.T) {
	t.Parallel()
	exec, err := Run(context.Background(), ForThroughput(ThroughputSpec{
		Lambdas:   []float64{0.05},
		Messages:  200,
		Seed:      1,
		Precision: &PrecisionSpec{Epsilon: 0.4, Confidence: 0.9, MinReps: 2, MaxReps: 16},
	}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Result()
	if err != nil {
		t.Fatal(err)
	}
	saved := 0
	for _, s := range res.Throughput.Series {
		for _, p := range s.Points {
			if p.RepsUsed < 2 || p.RepsUsed > 16 {
				t.Fatalf("%s: RepsUsed = %d out of bounds", s.Protocol, p.RepsUsed)
			}
			saved += 16 - p.RepsUsed
		}
	}
	if res.RepsSaved() != saved {
		t.Fatalf("RepsSaved = %d, want %d", res.RepsSaved(), saved)
	}
}
