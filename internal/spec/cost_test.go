package spec

import (
	"testing"

	"repro/internal/throughput"
)

func TestEstimatedCostSolve(t *testing.T) {
	if got := ForSolve(SolveSpec{K: 1000}).EstimatedCost(); got != 3000 {
		t.Fatalf("solve k=1000 cost = %d, want 3000", got)
	}
	// Unvalidated zero fields degrade toward cheap, never panic.
	if got := ForSolve(SolveSpec{}).EstimatedCost(); got < 1 {
		t.Fatalf("zero solve cost = %d, want ≥ 1", got)
	}
}

func TestEstimatedCostEvaluate(t *testing.T) {
	// 2 protocols × 4 runs × 3·(100+200) slots.
	es := ForEvaluate(EvaluateSpec{
		Protocols: []ProtocolSpec{{Name: "one-fail"}, {Name: "exp-bb"}},
		Ks:        []int{100, 200},
		Runs:      4,
	})
	if got := es.EstimatedCost(); got != 2*4*3*300 {
		t.Fatalf("evaluate cost = %d, want %d", got, 2*4*3*300)
	}
	// Precision replaces runs with its MaxReps bound.
	es = ForEvaluate(EvaluateSpec{
		Protocols: []ProtocolSpec{{Name: "one-fail"}},
		Ks:        []int{100},
		Runs:      4,
		Precision: &PrecisionSpec{Epsilon: 0.1, MaxReps: 10},
	})
	if got := es.EstimatedCost(); got != 1*10*3*100 {
		t.Fatalf("precision evaluate cost = %d, want %d", got, 1*10*3*100)
	}
	// Default lineup (5 rows) and exponent grid dominate-by-largest.
	if got := ForEvaluate(EvaluateSpec{MaxExp: 2, Runs: 1}).EstimatedCost(); got != 5*1*3*110 {
		t.Fatalf("default-lineup cost = %d, want %d", got, 5*3*110)
	}
}

func TestEstimatedCostThroughput(t *testing.T) {
	// default lineup × 2 runs × (1000/0.1) slots.
	es := ForThroughput(ThroughputSpec{
		Shape:    "poisson",
		Lambdas:  []float64{0.1},
		Messages: 1000,
		Runs:     2,
	})
	want := int64(len(throughput.DefaultProtocols())) * 2 * 10000
	if got := es.EstimatedCost(); got != want {
		t.Fatalf("throughput cost = %d, want %d", got, want)
	}
}

func TestEstimatedCostSaturates(t *testing.T) {
	es := ForEvaluate(EvaluateSpec{MaxExp: 18, Runs: 1 << 30})
	if got := es.EstimatedCost(); got != costCeiling {
		t.Fatalf("huge sweep cost = %d, want ceiling %d", got, costCeiling)
	}
}

func TestInteractiveClassification(t *testing.T) {
	small := ForSolve(SolveSpec{K: 500})
	big := ForEvaluate(EvaluateSpec{Protocols: []ProtocolSpec{{Name: "one-fail"}}, Ks: []int{100000}, Runs: 3})
	if !small.Interactive(Limits{}) {
		t.Fatal("k=500 solve should be interactive at the default threshold")
	}
	if big.Interactive(Limits{}) {
		t.Fatal("a 900k-slot sweep should be batch at the default threshold")
	}
	// A custom threshold moves the boundary.
	if small.Interactive(Limits{InteractiveCost: 100}) {
		t.Fatal("k=500 solve should be batch under a 100-slot threshold")
	}
	if !big.Interactive(Limits{InteractiveCost: 1 << 30}) {
		t.Fatal("the sweep should be interactive under a 2^30 threshold")
	}
}

func TestInteractiveThreshold(t *testing.T) {
	if got := (Limits{}).InteractiveThreshold(); got != defaultInteractiveCost {
		t.Fatalf("default threshold = %d, want %d", got, defaultInteractiveCost)
	}
	if got := (Limits{InteractiveCost: 42}).InteractiveThreshold(); got != 42 {
		t.Fatalf("explicit threshold = %d, want 42", got)
	}
}
