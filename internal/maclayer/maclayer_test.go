package maclayer

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/rng"
)

func newOFAStation() (protocol.Station, error) {
	ctrl, err := core.NewOneFailAdaptive(core.DefaultOFADelta)
	if err != nil {
		return nil, err
	}
	return protocol.NewFairStation(ctrl), nil
}

func newEBBStation() (protocol.Station, error) {
	sched, err := core.NewExpBackonBackoff(core.DefaultEBBDelta)
	if err != nil {
		return nil, err
	}
	return protocol.NewWindowStation(sched), nil
}

func TestServiceIdle(t *testing.T) {
	t.Parallel()
	s := New(newOFAStation, rng.New(1))
	for i := 0; i < 10; i++ {
		d, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			t.Fatal("idle service delivered something")
		}
	}
	if s.Slot() != 10 || s.Batch() != 0 || s.Backlog() != 0 {
		t.Fatalf("idle service state wrong: slot=%d batch=%d backlog=%d", s.Slot(), s.Batch(), s.Backlog())
	}
}

func TestServiceSingleMessage(t *testing.T) {
	t.Parallel()
	s := New(newOFAStation, rng.New(2))
	s.Enqueue("hello")
	deliveries, err := s.RunUntilDrained(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(deliveries) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(deliveries))
	}
	d := deliveries[0]
	if d.Payload != "hello" || d.Batch != 1 || d.Arrival != 1 {
		t.Fatalf("bad delivery: %+v", d)
	}
	// A lone OFA station delivers by its second (local) slot.
	if d.Latency() > 2 {
		t.Fatalf("latency %d, want ≤ 2", d.Latency())
	}
}

func TestServiceBatchDrain(t *testing.T) {
	t.Parallel()
	const k = 100
	s := New(newOFAStation, rng.New(3))
	for i := 0; i < k; i++ {
		s.Enqueue(i)
	}
	deliveries, err := s.RunUntilDrained(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(deliveries) != k {
		t.Fatalf("delivered %d, want %d", len(deliveries), k)
	}
	// All in one batch; payloads all distinct.
	seen := make(map[any]bool, k)
	for _, d := range deliveries {
		if d.Batch != 1 {
			t.Fatalf("message in batch %d, want 1", d.Batch)
		}
		if seen[d.Payload] {
			t.Fatalf("payload %v delivered twice", d.Payload)
		}
		seen[d.Payload] = true
	}
	// The batch should resolve at roughly the protocol's static cost.
	if got := float64(s.Slot()) / k; got > 12 {
		t.Fatalf("batch cost ratio %v, want near 7.4", got)
	}
}

func TestServiceGating(t *testing.T) {
	t.Parallel()
	s := New(newOFAStation, rng.New(4))
	s.Enqueue("a")
	s.Enqueue("b")
	// Step once: batch 1 opens with exactly {a, b}; enqueue c afterwards —
	// it must wait for batch 2.
	d, err := s.Step()
	if err != nil {
		t.Fatal(err)
	}
	wantInFlight := 2
	if d != nil { // slot 1 may already deliver one of the two
		wantInFlight = 1
	}
	if s.Batch() != 1 || s.InFlight() != wantInFlight {
		t.Fatalf("batch=%d inflight=%d, want 1/%d", s.Batch(), s.InFlight(), wantInFlight)
	}
	s.Enqueue("c")
	if s.InFlight() != wantInFlight {
		t.Fatal("late arrival joined the open batch")
	}
	deliveries, err := s.RunUntilDrained(10000)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		deliveries = append(deliveries, *d) // count the manual first step
	}
	if len(deliveries) != 3 {
		t.Fatalf("delivered %d, want 3", len(deliveries))
	}
	batchOf := make(map[any]int, 3)
	for _, dv := range deliveries {
		batchOf[dv.Payload] = dv.Batch
	}
	if batchOf["a"] != 1 || batchOf["b"] != 1 {
		t.Fatalf("a/b batches = %v, want both 1", batchOf)
	}
	if batchOf["c"] != 2 {
		t.Fatalf("c batch = %d, want 2", batchOf["c"])
	}
}

// TestServiceAvoidsLocalClockLivelock: the arrival pattern that livelocks
// naive per-arrival One-Fail Adaptive (two stations per slot-parity
// class; see internal/dynamic) drains fine under gated batching, for
// every seed.
func TestServiceAvoidsLocalClockLivelock(t *testing.T) {
	t.Parallel()
	for seed := uint64(0); seed < 30; seed++ {
		s := New(newOFAStation, rng.New(seed))
		s.Enqueue(1)
		s.Enqueue(2)
		if _, err := s.Step(); err != nil { // opens batch 1 at slot 1
			t.Fatal(err)
		}
		s.Enqueue(3) // arrive at slot 2: the pattern {1,1,2,2}
		s.Enqueue(4)
		if _, err := s.RunUntilDrained(100000); err != nil {
			t.Fatalf("seed %d: gated batching failed to drain: %v", seed, err)
		}
	}
}

// TestServicePoissonStability: under a sustained Poisson load well below
// channel capacity (~1/7.4 messages/slot for OFA), the backlog stays
// bounded and every message is delivered.
func TestServicePoissonStability(t *testing.T) {
	t.Parallel()
	const horizon = 60000
	const rate = 0.05 // well under capacity
	arrivals := rng.New(7)
	s := New(newOFAStation, rng.New(8))
	enqueued, delivered := 0, 0
	maxBacklog := 0
	for i := 0; i < horizon; i++ {
		if arrivals.Bernoulli(rate) {
			s.Enqueue(i)
			enqueued++
		}
		d, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			delivered++
		}
		if b := s.Backlog(); b > maxBacklog {
			maxBacklog = b
		}
	}
	if _, err := s.RunUntilDrained(horizon + 100000); err != nil {
		t.Fatal(err)
	}
	if got := int(s.Delivered()); got != enqueued {
		t.Fatalf("delivered %d of %d", got, enqueued)
	}
	if maxBacklog > 100 {
		t.Fatalf("max backlog %d under gentle load, want bounded", maxBacklog)
	}
}

// TestServiceWindowProtocol runs the service over Exp Back-on/Back-off
// stations to confirm protocol-family independence.
func TestServiceWindowProtocol(t *testing.T) {
	t.Parallel()
	s := New(newEBBStation, rng.New(9))
	for i := 0; i < 64; i++ {
		s.Enqueue(i)
	}
	deliveries, err := s.RunUntilDrained(100000)
	if err != nil {
		t.Fatal(err)
	}
	if len(deliveries) != 64 {
		t.Fatalf("delivered %d, want 64", len(deliveries))
	}
}

// TestServiceBatchSlotAccounting: arrival and delivery slots must be
// consistent (arrival ≤ delivered, latency ≥ 1) and collision counts sane.
func TestServiceBatchSlotAccounting(t *testing.T) {
	t.Parallel()
	s := New(newOFAStation, rng.New(10))
	for i := 0; i < 32; i++ {
		s.Enqueue(i)
	}
	deliveries, err := s.RunUntilDrained(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deliveries {
		if d.Delivered < d.Arrival {
			t.Fatalf("delivered %d before arrival %d", d.Delivered, d.Arrival)
		}
		if d.Latency() < 1 {
			t.Fatalf("latency %d < 1", d.Latency())
		}
	}
	if s.Collisions() == 0 {
		t.Fatal("32-station batch saw no collisions — implausible")
	}
	if s.Collisions() >= s.Slot() {
		t.Fatalf("collisions %d ≥ slots %d", s.Collisions(), s.Slot())
	}
}

func TestServiceConstructorError(t *testing.T) {
	t.Parallel()
	bad := func() (protocol.Station, error) { return nil, fmt.Errorf("boom") }
	s := New(bad, rng.New(11))
	s.Enqueue(1)
	if _, err := s.Step(); err == nil {
		t.Fatal("constructor error not propagated")
	}
}
