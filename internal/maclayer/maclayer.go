// Package maclayer provides the deployable service API on top of the
// contention-resolution protocols: a slot-driven MAC service that accepts
// messages over time and delivers each of them over the shared channel.
//
// The service uses gated batching: messages that arrive while a batch is
// being resolved wait in the gate queue; when the channel goes quiet (the
// current batch has fully delivered), the gate opens and all waiting
// messages form the next batch, started on fresh, synchronized protocol
// state. This reduces the paper's §6 dynamic problem to a sequence of
// static k-selection instances — exactly the problem the paper's
// protocols solve in linear time w.h.p. — so the service inherits a
// per-batch guarantee. It also side-steps the local-clock livelock that
// naive per-arrival deployment of One-Fail Adaptive exhibits (see
// internal/dynamic): every batch restarts all stations in lockstep.
//
// In a real network the gate signal is the base station's beacon (§2's
// acknowledgement infrastructure); here the service itself detects batch
// completion.
package maclayer

import (
	"fmt"

	"repro/internal/protocol"
	"repro/internal/rng"
)

// Delivery reports one delivered message.
type Delivery struct {
	// Payload is the enqueued message payload.
	Payload any
	// Arrival is the slot at which Enqueue was called (the first slot is 1).
	Arrival uint64
	// Delivered is the slot of the successful transmission.
	Delivered uint64
	// Batch is the index (from 1) of the batch that carried the message.
	Batch int
}

// Latency returns the delivery latency in slots, counting the arrival
// slot itself.
func (d Delivery) Latency() uint64 { return d.Delivered - d.Arrival + 1 }

// Service is a slot-driven MAC service. Create one with New, enqueue
// messages at any time, and call Step once per slot. Not safe for
// concurrent use.
type Service struct {
	newStation func() (protocol.Station, error)
	src        *rng.Rand

	slot       uint64
	batch      int
	batchStart uint64 // global slot at which the current batch opened

	// gate holds messages waiting for the next batch.
	gate []*pending
	// active holds the stations of the current batch, aligned with their
	// messages.
	active []*pending

	transmitters []int // scratch

	// Stats.
	delivered  uint64
	collisions uint64
}

// pending is one undelivered message and, once batched, its station.
type pending struct {
	payload any
	arrival uint64
	station protocol.Station
}

// New returns a service that resolves each batch with stations built by
// newStation (one per message; fresh state per batch, as in "upon message
// arrival" of Algorithm 1 with the arrival being the gate opening).
func New(newStation func() (protocol.Station, error), src *rng.Rand) *Service {
	return &Service{newStation: newStation, src: src}
}

// Slot returns the number of slots stepped so far.
func (s *Service) Slot() uint64 { return s.slot }

// Batch returns the index of the current batch (0 before the first).
func (s *Service) Batch() int { return s.batch }

// Backlog returns the number of undelivered messages (gated + in flight).
func (s *Service) Backlog() int { return len(s.gate) + len(s.active) }

// InFlight returns the number of messages in the current batch.
func (s *Service) InFlight() int { return len(s.active) }

// Delivered returns the total number of delivered messages.
func (s *Service) Delivered() uint64 { return s.delivered }

// Collisions returns the total number of collision slots so far.
func (s *Service) Collisions() uint64 { return s.collisions }

// Enqueue adds a message to the gate queue. It will join the next batch.
func (s *Service) Enqueue(payload any) {
	s.gate = append(s.gate, &pending{payload: payload, arrival: s.slot + 1})
}

// Step advances the channel by one slot and returns the delivery made in
// that slot, if any. An idle channel (no backlog) still consumes a slot.
func (s *Service) Step() (*Delivery, error) {
	s.slot++
	// Open the gate when the channel is quiet.
	if len(s.active) == 0 && len(s.gate) > 0 {
		for _, p := range s.gate {
			st, err := s.newStation()
			if err != nil {
				return nil, fmt.Errorf("maclayer: batch %d: %w", s.batch+1, err)
			}
			p.station = st
		}
		s.active = s.gate
		s.gate = nil
		s.batch++
		s.batchStart = s.slot
	}
	if len(s.active) == 0 {
		return nil, nil // idle slot
	}

	// One slot of the paper's channel: local step numbering per batch so
	// the protocols see the batched-arrival model they are specified for.
	localSlot := s.slot - s.batchStart + 1
	s.transmitters = s.transmitters[:0]
	for i, p := range s.active {
		if p.station.WillTransmit(localSlot, s.src) {
			s.transmitters = append(s.transmitters, i)
		}
	}
	var delivery *Delivery
	if len(s.transmitters) == 1 {
		winner := s.transmitters[0]
		p := s.active[winner]
		delivery = &Delivery{
			Payload:   p.payload,
			Arrival:   p.arrival,
			Delivered: s.slot,
			Batch:     s.batch,
		}
		s.active = append(s.active[:winner], s.active[winner+1:]...)
		for _, q := range s.active {
			q.station.Feedback(localSlot, false, true)
		}
		s.delivered++
		return delivery, nil
	}
	if len(s.transmitters) > 1 {
		s.collisions++
	}
	j := 0
	for i, p := range s.active {
		transmitted := j < len(s.transmitters) && s.transmitters[j] == i
		if transmitted {
			j++
		}
		p.station.Feedback(localSlot, transmitted, false)
	}
	return nil, nil
}

// RunUntilDrained steps the service until the backlog empties or the
// budget is exhausted, collecting deliveries. It is a convenience for
// tests and batch-style use.
func (s *Service) RunUntilDrained(maxSlots uint64) ([]Delivery, error) {
	var out []Delivery
	for s.Backlog() > 0 {
		if maxSlots > 0 && s.slot >= maxSlots {
			return out, fmt.Errorf("maclayer: %d messages undelivered after %d slots", s.Backlog(), s.slot)
		}
		d, err := s.Step()
		if err != nil {
			return out, err
		}
		if d != nil {
			out = append(out, *d)
		}
	}
	return out, nil
}
