package maclayer_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/maclayer"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Example drives the gated-batching MAC service by hand: three sensor
// readings arrive while the channel is busy with an earlier message, so
// they wait at the gate and form the second batch together, resolved by
// One-Fail Adaptive on fresh synchronized state.
func Example() {
	newStation := func() (protocol.Station, error) {
		ctrl, err := core.NewOneFailAdaptive(core.DefaultOFADelta)
		if err != nil {
			return nil, err
		}
		return protocol.NewFairStation(ctrl), nil
	}
	svc := maclayer.New(newStation, rng.New(42))

	// The first message opens batch 1 on the next Step.
	svc.Enqueue("boot")
	first, err := svc.Step()
	if err != nil {
		fmt.Println(err)
		return
	}
	// These arrive while slot 1 is in progress: they wait at the gate
	// and will form batch 2 together, on fresh synchronized state.
	for _, payload := range []string{"temp=21.5", "temp=21.6", "temp=21.4"} {
		svc.Enqueue(payload)
	}

	deliveries, err := svc.RunUntilDrained(10_000)
	if err != nil {
		fmt.Println(err)
		return
	}
	if first != nil {
		deliveries = append([]maclayer.Delivery{*first}, deliveries...)
	}
	for _, d := range deliveries {
		fmt.Printf("batch %d: %v (arrived slot %d, delivered slot %d)\n",
			d.Batch, d.Payload, d.Arrival, d.Delivered)
	}
	fmt.Printf("%d messages in %d slots, %d collisions\n",
		svc.Delivered(), svc.Slot(), svc.Collisions())
	// Output:
	// batch 1: boot (arrived slot 1, delivered slot 1)
	// batch 2: temp=21.6 (arrived slot 2, delivered slot 14)
	// batch 2: temp=21.5 (arrived slot 2, delivered slot 15)
	// batch 2: temp=21.4 (arrived slot 2, delivered slot 21)
	// 4 messages in 21 slots, 6 collisions
}
