// Package throughput measures how the repository's contention-resolution
// protocols behave as sustained traffic approaches saturation — the
// throughput-vs-arrival-rate question the dynamic extension of the paper
// (§6 future work) poses, and the framing of the adversarial-arrival
// literature (Bender & Kuszmaul 2020; the adversarial contention-
// resolution survey of 2024).
//
// A sweep offers each protocol the same workloads at increasing offered
// load λ (messages per slot) and records, per (protocol, λ): sustained
// throughput (delivered messages per channel slot), delivery-latency
// quantiles, the peak backlog of simultaneously active stations, and
// whether the run drained within its slot budget. Below the protocol's
// saturation point throughput tracks λ and latency stays flat; above it
// the backlog diverges and latency explodes — the sweep table makes the
// knee visible per protocol.
//
// Windowed (back-off) protocols run on the event-driven engine
// (dynamic.RunWindowEvent) and scale to millions of messages; adaptive
// fair protocols run on the exact per-node simulator and are practical at
// moderate sizes.
package throughput

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Shape selects the arrival pattern of a sweep's workloads.
type Shape uint8

// Arrival shapes.
const (
	// Poisson is a memoryless arrival process at rate λ (statistical
	// arrivals).
	Poisson Shape = iota
	// Bursty delivers batches of BurstSize simultaneous messages spaced
	// so the long-run offered load is λ (the batched worst case §1 of the
	// paper cites as frequent in practice). With n ≤ BurstSize messages
	// the shape degenerates to a single batch at slot 1 — the paper's
	// static problem.
	Bursty
	// OnOff alternates Poisson arrivals at rate 2λ during on-phases of
	// OnOffPhase slots with silent off-phases of equal length: the
	// long-run offered load is λ but the instantaneous load is doubled,
	// an adversarial duty-cycle pattern.
	OnOff
)

// BurstSize is the batch size of the Bursty shape.
const BurstSize = 64

// OnOffPhase is the phase length, in slots, of the OnOff shape.
const OnOffPhase = 1024

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	case OnOff:
		return "onoff"
	default:
		return fmt.Sprintf("Shape(%d)", uint8(s))
	}
}

// ParseShape resolves a shape name as used by the macsim CLI.
func ParseShape(name string) (Shape, error) {
	switch strings.ToLower(name) {
	case "poisson":
		return Poisson, nil
	case "bursty", "burst", "bursts":
		return Bursty, nil
	case "onoff", "on-off":
		return OnOff, nil
	default:
		return 0, fmt.Errorf("throughput: unknown arrival shape %q (want poisson, bursty or onoff)", name)
	}
}

// Generate materializes n messages at offered load lambda (a finite
// value > 0).
func (s Shape) Generate(n int, lambda float64, src *rng.Rand) (dynamic.Workload, error) {
	if !(lambda > 0) || math.IsInf(lambda, 0) {
		return dynamic.Workload{}, fmt.Errorf("throughput: offered load must be a finite value > 0, got %v", lambda)
	}
	// A vanishing load would need a workload span beyond what uint64 slot
	// arithmetic can hold; reject rather than overflow (applies to every
	// shape — the expected span is ~n/λ slots).
	if float64(n)/lambda > 1e15 {
		return dynamic.Workload{}, fmt.Errorf("throughput: offered load %v is too low for %d messages (span would exceed 10^15 slots)", lambda, n)
	}
	switch s {
	case Poisson:
		return dynamic.PoissonArrivals(n, lambda, src)
	case Bursty:
		size := BurstSize
		if n < size {
			size = n
		}
		if size == 0 {
			return dynamic.Workload{}, nil
		}
		// Bursts are at least one slot apart, so the shape cannot offer
		// more than size messages per slot; reject rather than mislabel.
		if lambda > float64(size) {
			return dynamic.Workload{}, fmt.Errorf("throughput: offered load %v exceeds the bursty shape's maximum of %d msgs/slot", lambda, size)
		}
		bursts := (n + size - 1) / size
		// Integer gaps can only realize loads of size/gap; pick the gap
		// whose realized load is nearest the requested λ (floor vs ceil
		// compared in load space — gap space would skew badly for λ near
		// size, e.g. λ=43 is closer to 64/2=32 than to 64/1=64).
		gap := uint64(float64(size) / lambda) // ≥ 1 since lambda ≤ size
		if lambda-float64(size)/float64(gap+1) < float64(size)/float64(gap)-lambda {
			gap++
		}
		w, err := dynamic.BurstArrivals(bursts, size, gap)
		if err != nil {
			return dynamic.Workload{}, err
		}
		w.Arrivals = w.Arrivals[:n] // drop the last burst's overshoot
		return w, nil
	case OnOff:
		// Poisson at double rate on the "on-time" axis, then stretch that
		// axis by inserting one silent off-phase after each completed
		// on-phase.
		w, err := dynamic.PoissonArrivals(n, 2*lambda, src)
		if err != nil {
			return dynamic.Workload{}, err
		}
		for i, a := range w.Arrivals {
			on := a - 1
			w.Arrivals[i] = on + (on/OnOffPhase)*OnOffPhase + 1
		}
		return w, nil
	default:
		return dynamic.Workload{}, fmt.Errorf("throughput: unknown shape %v", s)
	}
}

// Protocol is one protocol configuration under saturation test. Exactly
// one of NewController and NewSchedule must be set.
type Protocol struct {
	// Name is the display name.
	Name string
	// NewController builds a fresh fair-protocol controller per
	// execution; fair protocols run on the exact per-node simulator.
	NewController func() (protocol.Controller, error)
	// NewSchedule builds a fresh windowed-protocol schedule per
	// execution; windowed protocols run on the event-driven engine.
	NewSchedule func() (protocol.Schedule, error)
	// Clock selects the station clock mode. Fair protocols should use
	// dynamic.ClockGlobal: under local clocks One-Fail Adaptive's BT step
	// livelocks across arrival parities (see internal/dynamic).
	Clock dynamic.Clock
}

// run executes one workload under the protocol's engine.
func (p Protocol) run(w dynamic.Workload, src *rng.Rand, maxSlots uint64) (dynamic.Result, error) {
	opts := []dynamic.Option{dynamic.WithClock(p.Clock), dynamic.WithMaxSlots(maxSlots)}
	switch {
	case p.NewSchedule != nil:
		return dynamic.RunWindowEvent(w, p.NewSchedule, src, opts...)
	case p.NewController != nil:
		return dynamic.RunFair(w, p.NewController, src, opts...)
	default:
		return dynamic.Result{}, fmt.Errorf("throughput: protocol %q has no constructor", p.Name)
	}
}

// DefaultProtocols returns the standard saturation lineup: the paper's
// windowed protocol, the two monotone back-off baselines, and the paper's
// adaptive protocol on a global clock.
func DefaultProtocols() []Protocol {
	return []Protocol{
		{Name: "Exp Back-on/Back-off", NewSchedule: func() (protocol.Schedule, error) {
			return core.NewExpBackonBackoff(core.DefaultEBBDelta)
		}},
		{Name: "Loglog-Iterated Backoff", NewSchedule: func() (protocol.Schedule, error) {
			return baseline.NewLoglogIteratedBackoff(baseline.DefaultLLIBBase)
		}},
		{Name: "Binary Exp Backoff", NewSchedule: func() (protocol.Schedule, error) {
			return baseline.NewExponentialBackoff(2)
		}},
		{Name: "One-Fail Adaptive", NewController: func() (protocol.Controller, error) {
			return core.NewOneFailAdaptive(core.DefaultOFADelta)
		}, Clock: dynamic.ClockGlobal},
	}
}

// WindowedProtocols returns only the windowed members of
// DefaultProtocols — the set that runs on the event-driven engine and
// scales to millions of messages.
func WindowedProtocols() []Protocol {
	all := DefaultProtocols()
	out := all[:0]
	for _, p := range all {
		if p.NewSchedule != nil {
			out = append(out, p)
		}
	}
	return out
}

// DefaultLambdas is the default offered-load grid, bracketing every
// protocol's saturation point.
func DefaultLambdas() []float64 {
	return []float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4}
}

// Config parameterizes Run.
type Config struct {
	// Lambdas lists the offered loads; defaults to DefaultLambdas().
	// The sweep sorts them ascending, and every Series' Points follow
	// that ascending order, not the input order.
	Lambdas []float64
	// Messages is the number of messages per execution (default 2000).
	Messages int
	// Runs is the number of executions per (protocol, λ) (default 3).
	Runs int
	// Seed is the master seed (default 1). Workload randomness is keyed
	// by (Seed, shape, λ, run) only, so every protocol faces identical
	// workloads — a matched-pairs comparison.
	Seed uint64
	// Shape selects the arrival pattern (default Poisson).
	Shape Shape
	// MaxSlots is the per-execution slot budget; 0 derives a budget of
	// span + 64·Messages + 10⁴ slots, enough for any stable protocol to
	// drain while terminating saturated runs.
	MaxSlots uint64
	// Parallelism bounds concurrent executions; defaults to GOMAXPROCS.
	Parallelism int
	// Progress, if non-nil, is invoked after each completed execution,
	// outside any internal lock. It may be called concurrently from
	// multiple workers and must be safe for concurrent use.
	Progress func(protocol string, lambda float64, run int, r dynamic.Result)
}

// LatencySampleCap bounds how many per-message latencies one execution
// contributes to Point.Latency.
const LatencySampleCap = 4096

// Point is one (protocol, λ) aggregate.
type Point struct {
	// Lambda is the offered load in messages per slot.
	Lambda float64
	// Throughput summarizes, per run, delivered messages per channel slot
	// measured to completion (or to the budget for saturated runs).
	Throughput stats.Summary
	// Latency pools per-message delivery latencies (slots) across runs.
	// To keep memory independent of Messages, each run contributes a
	// stride-sample of at most LatencySampleCap latencies; statistics are
	// exact below the cap and representative estimates above it.
	Latency stats.Summary
	// Backlog summarizes the peak number of simultaneously active
	// stations per run.
	Backlog stats.Summary
	// Collisions summarizes collision slots per run.
	Collisions stats.Summary
	// Completed counts runs that delivered every message within budget.
	Completed int
	// Runs is the number of executions behind this point.
	Runs int
}

// Saturated reports whether any run failed to drain within its budget.
func (p *Point) Saturated() bool { return p.Completed < p.Runs }

// Series is one protocol's sweep outcome across all λ.
type Series struct {
	Protocol Protocol
	Points   []Point // ascending λ, aligned with the sweep's Lambdas
}

// Run executes the λ-sweep over the given protocols and returns one
// Series per protocol, in input order. Executions run in parallel across
// a worker pool; every run draws its randomness from a stream derived
// from (Seed, protocol, λ, run), so results are reproducible regardless
// of scheduling.
func Run(protocols []Protocol, cfg Config) ([]Series, error) {
	lambdas := cfg.Lambdas
	if len(lambdas) == 0 {
		lambdas = DefaultLambdas()
	}
	lambdas = append([]float64(nil), lambdas...)
	sort.Float64s(lambdas)
	for _, l := range lambdas {
		if !(l > 0) || math.IsInf(l, 0) {
			return nil, fmt.Errorf("throughput: offered load must be a finite value > 0, got %v", l)
		}
	}
	messages := cfg.Messages
	if messages <= 0 {
		messages = 2000
	}
	runs := cfg.Runs
	if runs <= 0 {
		runs = 3
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	results := make([]Series, len(protocols))
	for i, p := range protocols {
		results[i] = Series{Protocol: p, Points: make([]Point, len(lambdas))}
		for j, l := range lambdas {
			results[i].Points[j].Lambda = l
			results[i].Points[j].Runs = runs
		}
	}

	// Each λ's workloads are generated once, just before its jobs are
	// enqueued, and released when its last job completes: every protocol
	// faces the identical arrival sequence (the workload stream ignores
	// the protocol — a matched-pairs comparison without redundant
	// generation), and peak memory holds only the in-flight λs rather
	// than the whole grid at million-message scale.
	workloads := make([][]dynamic.Workload, len(lambdas))
	jobsPerLambda := make([]int64, len(lambdas))
	for lIdx := range lambdas {
		jobsPerLambda[lIdx] = int64(len(protocols) * runs)
	}

	type job struct{ proto, lIdx, run int }
	jobs := make(chan job)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	// release drops a λ's workloads once its last job has finished with
	// them. Every job reads its workload before calling release, so the
	// final decrementer is the only goroutine that can touch the slice.
	release := func(lIdx int) {
		if atomic.AddInt64(&jobsPerLambda[lIdx], -1) == 0 {
			workloads[lIdx] = nil
		}
	}
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				// After the first error, drain the remaining jobs without
				// burning their (potentially minutes-long) budgets.
				mu.Lock()
				abort := firstErr != nil
				mu.Unlock()
				if abort {
					release(j.lIdx)
					continue
				}
				p := protocols[j.proto]
				lambda := lambdas[j.lIdx]
				wl := workloads[j.lIdx][j.run]
				budget := cfg.MaxSlots
				if budget == 0 {
					budget = wl.Span() + 64*uint64(messages) + 10_000
				}
				res, err := p.run(wl,
					rng.NewStream(seed, "throughput-run", p.Name, fmt.Sprint(lambda), fmt.Sprint(j.run)), budget)
				release(j.lIdx)
				if err != nil {
					fail(err)
					continue
				}
				slots := res.Completion
				if !res.Completed {
					slots = budget
				}
				sample := res.Latency.Sampled(LatencySampleCap)
				mu.Lock()
				pt := &results[j.proto].Points[j.lIdx]
				if slots > 0 {
					pt.Throughput.Add(float64(res.Delivered) / float64(slots))
				}
				for _, v := range sample {
					pt.Latency.Add(v)
				}
				pt.Backlog.Add(float64(res.MaxBacklog))
				pt.Collisions.Add(float64(res.Collisions))
				if res.Completed {
					pt.Completed++
				}
				mu.Unlock()
				if cfg.Progress != nil {
					cfg.Progress(p.Name, lambda, j.run, res)
				}
			}
		}()
	}
	// Schedule the highest loads first: saturated runs burn their whole
	// budget and must not be left for last. The channel send orders each
	// workload write before any worker's read of it.
	for lIdx := len(lambdas) - 1; lIdx >= 0; lIdx-- {
		wls := make([]dynamic.Workload, runs)
		for run := 0; run < runs; run++ {
			wl, err := cfg.Shape.Generate(messages, lambdas[lIdx],
				rng.NewStream(seed, "throughput-workload", cfg.Shape.String(), fmt.Sprint(lambdas[lIdx]), fmt.Sprint(run)))
			if err != nil {
				fail(err)
				break
			}
			wls[run] = wl
		}
		mu.Lock()
		abort := firstErr != nil
		mu.Unlock()
		if abort {
			break
		}
		workloads[lIdx] = wls
		for protoIdx := range protocols {
			for run := 0; run < runs; run++ {
				jobs <- job{proto: protoIdx, lIdx: lIdx, run: run}
			}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
