// Package throughput measures how the repository's contention-resolution
// protocols behave as sustained traffic approaches saturation — the
// throughput-vs-arrival-rate question the dynamic extension of the paper
// (§6 future work) poses, and the framing of the adversarial-arrival
// literature (Bender & Kuszmaul 2020; the adversarial contention-
// resolution survey of 2024).
//
// A sweep offers each protocol the same workloads at increasing offered
// load λ (messages per slot) and records, per (protocol, λ): sustained
// throughput (delivered messages per channel slot), delivery-latency
// quantiles, the peak backlog of simultaneously active stations, and
// whether the run drained within its slot budget. Below the protocol's
// saturation point throughput tracks λ and latency stays flat; above it
// the backlog diverges and latency explodes — the sweep table makes the
// knee visible per protocol.
//
// Workloads are described by internal/scenario: the sweep instantiates a
// scenario.Workload per (λ, run) — arrival schedule, jam mask and
// population mix — and offers the identical instance to every protocol.
// The legacy Shape selector maps onto the benign scenarios.
//
// Replication counts are either fixed (Config.Runs) or adaptive
// (Config.Precision): under a precision target each (protocol, λ)
// point repeats until the Student-t confidence interval of its mean
// throughput is narrower than ε·mean at the requested confidence
// (internal/montecarlo), so easy points stop after a few runs and the
// slot budget concentrates where variance is high.
//
// Windowed (back-off) protocols run on the event-driven engine
// (dynamic.RunWindowEvent) and scale to millions of messages; adaptive
// fair protocols, and any run with a mixed station population, run on
// the exact per-node simulator and are practical at moderate sizes.
package throughput

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/montecarlo"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// Shape selects the arrival pattern of a sweep's workloads.
type Shape uint8

// Arrival shapes.
const (
	// Poisson is a memoryless arrival process at rate λ (statistical
	// arrivals).
	Poisson Shape = iota
	// Bursty delivers batches of BurstSize simultaneous messages spaced
	// so the long-run offered load is λ (the batched worst case §1 of the
	// paper cites as frequent in practice). With n ≤ BurstSize messages
	// the shape degenerates to a single batch at slot 1 — the paper's
	// static problem.
	Bursty
	// OnOff alternates Poisson arrivals at rate 2λ during on-phases of
	// OnOffPhase slots with silent off-phases of equal length: the
	// long-run offered load is λ but the instantaneous load is doubled,
	// an adversarial duty-cycle pattern.
	OnOff
)

// BurstSize is the batch size of the Bursty shape.
const BurstSize = scenario.DefaultBurstSize

// OnOffPhase is the phase length, in slots, of the OnOff shape.
const OnOffPhase = scenario.DefaultOnOffPhase

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	case OnOff:
		return "onoff"
	default:
		return fmt.Sprintf("Shape(%d)", uint8(s))
	}
}

// ParseShape resolves a shape name as used by the macsim CLI.
func ParseShape(name string) (Shape, error) {
	switch strings.ToLower(name) {
	case "poisson":
		return Poisson, nil
	case "bursty", "burst", "bursts":
		return Bursty, nil
	case "onoff", "on-off":
		return OnOff, nil
	default:
		return 0, fmt.Errorf("throughput: unknown arrival shape %q (want poisson, bursty or onoff)", name)
	}
}

// Scenario returns the shape's equivalent workload scenario — the
// extension point internal/scenario generalizes: the benign shapes are
// just the impairment-free members of the catalog.
func (s Shape) Scenario() (scenario.Workload, error) {
	switch s {
	case Poisson:
		return scenario.Workload{Name: "poisson", Arrivals: scenario.Poisson{}}, nil
	case Bursty:
		return scenario.Workload{Name: "bursty", Arrivals: scenario.Bursty{Size: BurstSize}}, nil
	case OnOff:
		return scenario.Workload{Name: "onoff", Arrivals: scenario.OnOff{Phase: OnOffPhase}}, nil
	default:
		return scenario.Workload{}, fmt.Errorf("throughput: unknown shape %v", s)
	}
}

// Generate materializes n messages at offered load lambda (a finite
// value > 0) under the shape's scenario.
func (s Shape) Generate(n int, lambda float64, src *rng.Rand) (dynamic.Workload, error) {
	scn, err := s.Scenario()
	if err != nil {
		return dynamic.Workload{}, err
	}
	return scn.Arrivals.Generate(n, lambda, src)
}

// Protocol is one protocol configuration under saturation test. Exactly
// one of NewController and NewSchedule must be set.
type Protocol struct {
	// Name is the display name.
	Name string
	// NewController builds a fresh fair-protocol controller per
	// execution; fair protocols run on the exact per-node simulator.
	NewController func() (protocol.Controller, error)
	// NewSchedule builds a fresh windowed-protocol schedule per
	// execution; windowed protocols run on the event-driven engine.
	NewSchedule func() (protocol.Schedule, error)
	// Clock selects the station clock mode. Fair protocols should use
	// dynamic.ClockGlobal: under local clocks One-Fail Adaptive's BT step
	// livelocks across arrival parities (see internal/dynamic).
	Clock dynamic.Clock
}

// newStation builds one station of the protocol under test, for runs
// that need explicit per-node stations (mixed populations).
func (p Protocol) newStation() (protocol.Station, error) {
	switch {
	case p.NewSchedule != nil:
		sched, err := p.NewSchedule()
		if err != nil {
			return nil, err
		}
		return protocol.NewWindowStation(sched), nil
	case p.NewController != nil:
		ctrl, err := p.NewController()
		if err != nil {
			return nil, err
		}
		return protocol.NewFairStation(ctrl), nil
	default:
		return nil, fmt.Errorf("throughput: protocol %q has no constructor", p.Name)
	}
}

// run executes one scenario instance under the protocol's engine: the
// event-driven engine for homogeneous windowed runs, the exact per-node
// simulator for fair protocols and for any mixed station population.
func (p Protocol) run(inst scenario.Instance, src *rng.Rand, maxSlots uint64) (dynamic.Result, error) {
	opts := []dynamic.Option{dynamic.WithClock(p.Clock), dynamic.WithMaxSlots(maxSlots)}
	if inst.Jammed != nil {
		opts = append(opts, dynamic.WithJammer(inst.Jammed))
	}
	if inst.Background != nil {
		return dynamic.RunMixed(inst.Arrivals, func(i int) (protocol.Station, error) {
			if inst.Background(i) {
				return inst.NewBackground()
			}
			return p.newStation()
		}, src, opts...)
	}
	switch {
	case p.NewSchedule != nil:
		return dynamic.RunWindowEvent(inst.Arrivals, p.NewSchedule, src, opts...)
	case p.NewController != nil:
		return dynamic.RunFair(inst.Arrivals, p.NewController, src, opts...)
	default:
		return dynamic.Result{}, fmt.Errorf("throughput: protocol %q has no constructor", p.Name)
	}
}

// DefaultProtocols returns the standard saturation lineup: the paper's
// windowed protocol, the two monotone back-off baselines, and the paper's
// adaptive protocol on a global clock.
func DefaultProtocols() []Protocol {
	return []Protocol{
		{Name: "Exp Back-on/Back-off", NewSchedule: func() (protocol.Schedule, error) {
			return core.NewExpBackonBackoff(core.DefaultEBBDelta)
		}},
		{Name: "Loglog-Iterated Backoff", NewSchedule: func() (protocol.Schedule, error) {
			return baseline.NewLoglogIteratedBackoff(baseline.DefaultLLIBBase)
		}},
		{Name: "Binary Exp Backoff", NewSchedule: func() (protocol.Schedule, error) {
			return baseline.NewExponentialBackoff(2)
		}},
		{Name: "One-Fail Adaptive", NewController: func() (protocol.Controller, error) {
			return core.NewOneFailAdaptive(core.DefaultOFADelta)
		}, Clock: dynamic.ClockGlobal},
	}
}

// WindowedProtocols returns only the windowed members of
// DefaultProtocols — the set that runs on the event-driven engine and
// scales to millions of messages.
func WindowedProtocols() []Protocol {
	all := DefaultProtocols()
	out := all[:0]
	for _, p := range all {
		if p.NewSchedule != nil {
			out = append(out, p)
		}
	}
	return out
}

// DefaultLambdas is the default offered-load grid, bracketing every
// protocol's saturation point.
func DefaultLambdas() []float64 {
	return []float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4}
}

// Config parameterizes Run.
type Config struct {
	// Lambdas lists the offered loads; defaults to DefaultLambdas().
	// The sweep sorts them ascending, and every Series' Points follow
	// that ascending order, not the input order.
	Lambdas []float64
	// Messages is the number of messages per execution (default 2000).
	Messages int
	// Runs is the number of executions per (protocol, λ) (default 3). It
	// is ignored when Precision is enabled.
	Runs int
	// Precision, when enabled (Epsilon > 0), switches the sweep to
	// adaptive-precision replication (internal/montecarlo): each
	// (protocol, λ) point executes between Precision.MinReps and
	// Precision.MaxReps runs, stopping once the Student-t confidence
	// interval of its mean throughput is narrower than Epsilon·mean at
	// the requested confidence — low-variance points stop early, the
	// budget concentrates where variance is high. Run r of a point draws
	// the identical workload instance and protocol stream in both modes,
	// so MinReps == MaxReps == Runs reproduces fixed-rep results exactly
	// (matched pairs across protocols still hold per run index). The
	// zero value keeps the classic fixed-rep sweep.
	Precision montecarlo.Precision
	// Seed is the master seed (default 1). Workload randomness is keyed
	// by (Seed, scenario, λ, run) only, so every protocol faces identical
	// workloads — a matched-pairs comparison.
	Seed uint64
	// Shape selects a benign arrival pattern (default Poisson). It is
	// ignored when Scenario is set.
	Shape Shape
	// Scenario selects the full workload description — arrival schedule,
	// channel impairments, station population mix (internal/scenario).
	// The zero value derives the scenario from Shape.
	Scenario scenario.Workload
	// MaxSlots is the per-execution slot budget; 0 derives the
	// workload's dynamic.Workload.DrainBudget, enough for any stable
	// protocol to drain while terminating saturated runs.
	MaxSlots uint64
	// Parallelism bounds concurrent executions; defaults to GOMAXPROCS.
	Parallelism int
	// Progress, if non-nil, is invoked after each completed execution,
	// outside any internal lock. It may be called concurrently from
	// multiple workers and must be safe for concurrent use.
	Progress func(protocol string, lambda float64, run int, r dynamic.Result)
}

// LatencySampleCap bounds how many per-message latencies one execution
// contributes to Point.Latency.
const LatencySampleCap = 4096

// Point is one (protocol, λ) aggregate.
type Point struct {
	// Lambda is the offered load in messages per slot.
	Lambda float64
	// Throughput summarizes, per run, delivered messages per channel slot
	// measured to completion (or to the budget for saturated runs).
	Throughput stats.Summary
	// Latency pools per-message delivery latencies (slots) across runs.
	// To keep memory independent of Messages, each run contributes a
	// stride-sample of at most LatencySampleCap latencies; statistics are
	// exact below the cap and representative estimates above it.
	Latency stats.Summary
	// Backlog summarizes the peak number of simultaneously active
	// stations per run.
	Backlog stats.Summary
	// Collisions summarizes collision slots per run.
	Collisions stats.Summary
	// Completed counts runs that delivered every message within budget.
	Completed int
	// Runs is the number of executions behind this point.
	Runs int
}

// Saturated reports whether any run failed to drain within its budget.
func (p *Point) Saturated() bool { return p.Completed < p.Runs }

// Series is one protocol's sweep outcome across all λ.
type Series struct {
	Protocol Protocol
	Points   []Point // ascending λ, aligned with the sweep's Lambdas
}

// outcome is one execution's aggregation-ready extract: scalars plus a
// bounded latency sample, so holding every run of a sweep stays cheap
// even at million-message scale.
type outcome struct {
	done       bool // the execution ran (vs. aborted after an error)
	throughput float64
	hasRate    bool // slots > 0, so throughput is defined
	latency    []float64
	backlog    float64
	collisions float64
	completed  bool
}

// extract reduces one execution's result to its aggregation extract.
func extract(res dynamic.Result, budget uint64) outcome {
	out := outcome{done: true}
	slots := res.Completion
	if !res.Completed {
		slots = budget
	}
	if slots > 0 {
		out.hasRate = true
		out.throughput = float64(res.Delivered) / float64(slots)
	}
	out.latency = res.Latency.Sampled(LatencySampleCap)
	out.backlog = float64(res.MaxBacklog)
	out.collisions = float64(res.Collisions)
	out.completed = res.Completed
	return out
}

// fold accumulates one outcome into the point. Callers fold in run
// order so aggregates are independent of scheduling.
func (p *Point) fold(out *outcome) {
	if out.hasRate {
		p.Throughput.Add(out.throughput)
	}
	for _, v := range out.latency {
		p.Latency.Add(v)
	}
	p.Backlog.Add(out.backlog)
	p.Collisions.Add(out.collisions)
	if out.completed {
		p.Completed++
	}
}

// runAdaptive executes the λ-sweep under the adaptive-precision engine
// (Config.Precision): points are evaluated one at a time, each
// replicating across the worker pool until the Student-t confidence
// interval of its mean throughput meets the target (or MaxReps).
// Replication r of a point derives the identical workload and protocol
// streams fixed-rep run r would — matched pairs across protocols hold
// per run index, and MinReps == MaxReps == Runs reproduces fixed-rep
// results exactly. Workload instances are materialized inside the
// replication and reduced to bounded extracts immediately, so peak
// memory holds one batch of instances rather than the grid.
func runAdaptive(ctx context.Context, protocols []Protocol, cfg Config,
	scn scenario.Workload, lambdas []float64, messages int, seed uint64, par int) ([]Series, error) {
	prec := cfg.Precision.WithDefaults()
	if err := prec.Validate(); err != nil {
		return nil, err
	}
	results := make([]Series, len(protocols))
	for protoIdx, p := range protocols {
		results[protoIdx] = Series{Protocol: p, Points: make([]Point, len(lambdas))}
	}
	// Highest loads first, as in fixed mode: saturated points burn whole
	// budgets and should not be left for last.
	for lIdx := len(lambdas) - 1; lIdx >= 0; lIdx-- {
		lambda := lambdas[lIdx]
		for protoIdx, p := range protocols {
			outs := make([]outcome, prec.MaxReps)
			res, err := montecarlo.Run(ctx, prec, par, func(run int) (float64, error) {
				inst, err := scn.Instantiate(messages, lambda,
					rng.NewStream(seed, "throughput-workload", scn.Name, fmt.Sprint(lambda), fmt.Sprint(run)))
				if err != nil {
					return 0, err
				}
				budget := cfg.MaxSlots
				if budget == 0 {
					budget = inst.Arrivals.DrainBudget()
				}
				r, err := p.run(inst,
					rng.NewStream(seed, "throughput-run", p.Name, fmt.Sprint(lambda), fmt.Sprint(run)), budget)
				if err != nil {
					return 0, err
				}
				outs[run] = extract(r, budget)
				if cfg.Progress != nil {
					cfg.Progress(p.Name, lambda, run, r)
				}
				return outs[run].throughput, nil
			})
			if err != nil {
				return nil, err
			}
			pt := &results[protoIdx].Points[lIdx]
			pt.Lambda = lambda
			pt.Runs = res.Reps
			for run := 0; run < res.Reps; run++ {
				pt.fold(&outs[run])
			}
		}
	}
	return results, nil
}

// Run executes the λ-sweep over the given protocols and returns one
// Series per protocol, in input order. Executions run in parallel across
// a worker pool; every run draws its randomness from a stream derived
// from (Seed, protocol, λ, run), and per-run outcomes are folded into
// the aggregates in a fixed order after all workers finish, so results
// are bit-for-bit reproducible regardless of scheduling.
func Run(protocols []Protocol, cfg Config) ([]Series, error) {
	return RunContext(context.Background(), protocols, cfg)
}

// RunContext is Run with cancellation: once ctx is canceled no further
// execution starts — workers drain the queued jobs without simulating
// and the producer stops materializing workloads — and ctx's error is
// returned. Executions already running finish (a single execution is
// not interruptible).
func RunContext(ctx context.Context, protocols []Protocol, cfg Config) ([]Series, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	lambdas := cfg.Lambdas
	if len(lambdas) == 0 {
		lambdas = DefaultLambdas()
	}
	lambdas = append([]float64(nil), lambdas...)
	sort.Float64s(lambdas)
	for _, l := range lambdas {
		if !(l > 0) || math.IsInf(l, 0) {
			return nil, fmt.Errorf("throughput: offered load must be a finite value > 0, got %v", l)
		}
	}
	scn := cfg.Scenario
	if scn.Arrivals == nil {
		// Only the zero value falls back to Shape: a partially built
		// scenario (a jam mask or population without arrivals) is a
		// configuration bug, and silently swapping in the benign shape
		// would report clean-channel results as the requested ones.
		if scn.Name != "" || scn.Channel != nil || scn.Population != nil {
			return nil, fmt.Errorf("throughput: scenario %q has no arrival generator", scn.Name)
		}
		var err error
		if scn, err = cfg.Shape.Scenario(); err != nil {
			return nil, err
		}
	}
	if scn.Name == "" {
		scn.Name = "custom"
	}
	messages := cfg.Messages
	if messages <= 0 {
		messages = 2000
	}
	runs := cfg.Runs
	if runs <= 0 {
		runs = 3
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	if cfg.Precision.Enabled() {
		return runAdaptive(ctx, protocols, cfg, scn, lambdas, messages, seed, par)
	}

	// Each λ's instances are materialized once, just before its jobs are
	// enqueued: every protocol faces the identical arrival sequence, jam
	// mask and population assignment (the instance stream ignores the
	// protocol — a matched-pairs comparison without redundant
	// generation). Instances are retained until aggregation only through
	// their jobs' outcomes, which are bounded extracts.
	instances := make([][]scenario.Instance, len(lambdas))
	jobsPerLambda := make([]int64, len(lambdas))
	for lIdx := range lambdas {
		jobsPerLambda[lIdx] = int64(len(protocols) * runs)
	}
	outcomes := make([][][]outcome, len(protocols))
	for protoIdx := range protocols {
		outcomes[protoIdx] = make([][]outcome, len(lambdas))
		for lIdx := range lambdas {
			outcomes[protoIdx][lIdx] = make([]outcome, runs)
		}
	}

	type job struct{ proto, lIdx, run int }
	jobs := make(chan job)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	// release drops a λ's instances once its last job has finished with
	// them — outcomes are bounded extracts, so peak memory holds only the
	// in-flight λs rather than the whole grid at million-message scale.
	// Every job reads its instance before calling release, so the final
	// decrementer is the only goroutine that can touch the slice.
	release := func(lIdx int) {
		if atomic.AddInt64(&jobsPerLambda[lIdx], -1) == 0 {
			instances[lIdx] = nil
		}
	}
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				// After the first error or a cancellation, drain the
				// remaining jobs without burning their (potentially
				// minutes-long) budgets.
				mu.Lock()
				abort := firstErr != nil
				mu.Unlock()
				if abort || ctx.Err() != nil {
					release(j.lIdx)
					continue
				}
				p := protocols[j.proto]
				lambda := lambdas[j.lIdx]
				inst := instances[j.lIdx][j.run]
				budget := cfg.MaxSlots
				if budget == 0 {
					budget = inst.Arrivals.DrainBudget()
				}
				res, err := p.run(inst,
					rng.NewStream(seed, "throughput-run", p.Name, fmt.Sprint(lambda), fmt.Sprint(j.run)), budget)
				release(j.lIdx)
				if err != nil {
					fail(err)
					continue
				}
				outcomes[j.proto][j.lIdx][j.run] = extract(res, budget)
				if cfg.Progress != nil {
					cfg.Progress(p.Name, lambda, j.run, res)
				}
			}
		}()
	}
	// Schedule the highest loads first: saturated runs burn their whole
	// budget and must not be left for last. The channel send orders each
	// instance write before any worker's read of it.
enqueue:
	for lIdx := len(lambdas) - 1; lIdx >= 0; lIdx-- {
		insts := make([]scenario.Instance, runs)
		for run := 0; run < runs; run++ {
			inst, err := scn.Instantiate(messages, lambdas[lIdx],
				rng.NewStream(seed, "throughput-workload", scn.Name, fmt.Sprint(lambdas[lIdx]), fmt.Sprint(run)))
			if err != nil {
				fail(err)
				break
			}
			insts[run] = inst
		}
		mu.Lock()
		abort := firstErr != nil
		mu.Unlock()
		if abort || ctx.Err() != nil {
			break
		}
		instances[lIdx] = insts
		for protoIdx := range protocols {
			for run := 0; run < runs; run++ {
				select {
				case jobs <- job{proto: protoIdx, lIdx: lIdx, run: run}:
				case <-ctx.Done():
					break enqueue
				}
			}
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}

	// Fold outcomes in (protocol, λ, run) order — the fixed order that
	// makes floating-point accumulation independent of scheduling.
	results := make([]Series, len(protocols))
	for protoIdx, p := range protocols {
		results[protoIdx] = Series{Protocol: p, Points: make([]Point, len(lambdas))}
		for lIdx, l := range lambdas {
			pt := &results[protoIdx].Points[lIdx]
			pt.Lambda = l
			pt.Runs = runs
			for run := 0; run < runs; run++ {
				out := &outcomes[protoIdx][lIdx][run]
				if !out.done {
					return nil, fmt.Errorf("throughput: %s λ=%v run %d never executed", p.Name, l, run)
				}
				pt.fold(out)
			}
		}
	}
	return results, nil
}
