package throughput

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/montecarlo"
	"repro/internal/rng"
	"repro/internal/scenario"
)

func TestParseShape(t *testing.T) {
	t.Parallel()
	for name, want := range map[string]Shape{
		"poisson": Poisson, "bursty": Bursty, "burst": Bursty, "onoff": OnOff, "On-Off": OnOff,
	} {
		got, err := ParseShape(name)
		if err != nil || got != want {
			t.Fatalf("ParseShape(%q) = %v, %v; want %v", name, got, err, want)
		}
		if got.String() == "" {
			t.Fatalf("shape %v has empty name", got)
		}
	}
	if _, err := ParseShape("uniform"); err == nil {
		t.Fatal("unknown shape accepted")
	}
}

func TestGenerateRejectsBadLoad(t *testing.T) {
	t.Parallel()
	for _, shape := range []Shape{Poisson, Bursty, OnOff} {
		if _, err := shape.Generate(10, 0, rng.New(1)); err == nil {
			t.Fatalf("%v: λ=0 accepted", shape)
		}
		if _, err := shape.Generate(10, -1, rng.New(1)); err == nil {
			t.Fatalf("%v: λ=-1 accepted", shape)
		}
	}
	if _, err := Shape(99).Generate(10, 0.5, rng.New(1)); err == nil {
		t.Fatal("unknown shape generated a workload")
	}
	// A vanishing λ would overflow uint64 slot arithmetic in any shape.
	for _, shape := range []Shape{Poisson, Bursty, OnOff} {
		if _, err := shape.Generate(200, 1e-18, rng.New(1)); err == nil {
			t.Fatalf("%v: λ below the representable span accepted", shape)
		}
	}
}

// TestGenerateShapes verifies the structural invariants of each arrival
// shape: exact message count, non-decreasing slots ≥ 1, and a realized
// offered load near λ.
func TestGenerateShapes(t *testing.T) {
	t.Parallel()
	const n, lambda = 4096, 0.25
	for _, shape := range []Shape{Poisson, Bursty, OnOff} {
		shape := shape
		t.Run(shape.String(), func(t *testing.T) {
			t.Parallel()
			w, err := shape.Generate(n, lambda, rng.New(7))
			if err != nil {
				t.Fatal(err)
			}
			if w.N() != n {
				t.Fatalf("n = %d, want %d", w.N(), n)
			}
			if w.Arrivals[0] < 1 {
				t.Fatalf("first arrival %d < 1", w.Arrivals[0])
			}
			for i := 1; i < n; i++ {
				if w.Arrivals[i] < w.Arrivals[i-1] {
					t.Fatalf("arrivals not monotone at %d: %d < %d", i, w.Arrivals[i], w.Arrivals[i-1])
				}
			}
			got := float64(n) / float64(w.Span())
			if math.Abs(got-lambda) > lambda/3 {
				t.Fatalf("realized load %.3f, want ~%.3f", got, lambda)
			}
		})
	}
}

func TestGenerateBursty(t *testing.T) {
	t.Parallel()
	// 200 messages in bursts of 64: 64+64+64+8, gaps of 64/0.5 = 128.
	w, err := Bursty.Generate(200, 0.5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 200 {
		t.Fatalf("n = %d, want 200", w.N())
	}
	for i, a := range w.Arrivals {
		want := uint64(1 + (i/BurstSize)*128)
		if a != want {
			t.Fatalf("message %d arrives at %d, want %d", i, a, want)
		}
	}
}

func TestGenerateOnOffRespectsPhases(t *testing.T) {
	t.Parallel()
	w, err := OnOff.Generate(3000, 0.3, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range w.Arrivals {
		// Arrival slots are 1-based; phase index of slot s is (s-1)/P,
		// and odd phases are silent.
		if ((a-1)/OnOffPhase)%2 != 0 {
			t.Fatalf("message %d arrives at %d inside an off-phase", i, a)
		}
	}
}

// TestRunSweepStructure runs a small two-protocol sweep end to end and
// checks the aggregate structure: stable points track λ, the table, CSV
// and plot render every protocol, and workloads are matched across
// protocols by construction.
func TestRunSweepStructure(t *testing.T) {
	t.Parallel()
	protos := []Protocol{DefaultProtocols()[0], DefaultProtocols()[3]} // EBB (window), OFA (fair)
	var calls atomic.Int64
	cfg := Config{
		Lambdas:  []float64{0.05, 0.1},
		Messages: 400,
		Runs:     2,
		Seed:     3,
		Progress: func(string, float64, int, dynamic.Result) { calls.Add(1) },
	}
	series, err := Run(protos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2", len(series))
	}
	if got := calls.Load(); got != 2*2*2 {
		t.Fatalf("progress calls = %d, want 8", got)
	}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("%s: points = %d, want 2", s.Protocol.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Completed != p.Runs {
				t.Fatalf("%s λ=%v: %d/%d drained at a gentle load", s.Protocol.Name, p.Lambda, p.Completed, p.Runs)
			}
			// At loads far below saturation, throughput ≈ λ.
			if got := p.Throughput.Mean(); math.Abs(got-p.Lambda) > p.Lambda/3 {
				t.Fatalf("%s λ=%v: throughput %.3f, want ~λ", s.Protocol.Name, p.Lambda, got)
			}
			if p.Latency.N() != cfg.Messages*cfg.Runs {
				t.Fatalf("%s λ=%v: %d latencies, want %d", s.Protocol.Name, p.Lambda, p.Latency.N(), cfg.Messages*cfg.Runs)
			}
		}
	}
	for _, render := range []string{Table(series), CSV(series), Plot(series)} {
		for _, p := range protos {
			if !strings.Contains(render, p.Name) {
				t.Fatalf("rendering misses %q:\n%s", p.Name, render)
			}
		}
	}
	if !strings.HasPrefix(CSV(series), "protocol,lambda,") {
		t.Fatalf("CSV header wrong:\n%s", CSV(series))
	}
}

// TestRunSaturationKnee: at an offered load beyond Exp Back-on/Back-off's
// saturation point the sweep must report degraded throughput, while the
// same load is sustained by binary exponential backoff — the ranking the
// dynamic-arrival literature predicts for gentle loads vs batched work.
func TestRunSaturationKnee(t *testing.T) {
	t.Parallel()
	protos := WindowedProtocols() // EBB, LLIB, BEB
	series, err := Run(protos, Config{
		Lambdas:  []float64{0.3},
		Messages: 6000,
		Runs:     2,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ebb, beb := series[0].Points[0], series[2].Points[0]
	if ebb.Throughput.Mean() > 0.15 {
		t.Fatalf("EBB at λ=0.3 sustained %.3f msgs/slot, expected saturation well below 0.15", ebb.Throughput.Mean())
	}
	// The short run's drain tail shaves the measured rate below λ even
	// for a stable protocol; 0.22 still cleanly separates the two.
	if beb.Throughput.Mean() < 0.22 || beb.Throughput.Mean() < 2*ebb.Throughput.Mean() {
		t.Fatalf("binary exp backoff at λ=0.3 sustained only %.3f msgs/slot (EBB: %.3f)",
			beb.Throughput.Mean(), ebb.Throughput.Mean())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	t.Parallel()
	if _, err := Run(DefaultProtocols()[:1], Config{Lambdas: []float64{-0.1}, Messages: 10}); err == nil {
		t.Fatal("negative λ accepted")
	}
	bad := []Protocol{{Name: "empty"}}
	if _, err := Run(bad, Config{Lambdas: []float64{0.1}, Messages: 10, Runs: 1}); err == nil {
		t.Fatal("protocol without constructor accepted")
	}
	// A partially built scenario (impairments but no arrivals) must error
	// rather than silently fall back to the benign shape.
	half := Config{Lambdas: []float64{0.1}, Messages: 10, Runs: 1,
		Scenario: scenario.Workload{Name: "half", Channel: scenario.JamRandom{Rate: 0.1}}}
	if _, err := Run(DefaultProtocols()[:1], half); err == nil {
		t.Fatal("scenario without arrivals accepted")
	}
}

func TestGenerateBurstyRejectsExcessiveLoad(t *testing.T) {
	t.Parallel()
	// The shape cannot offer more than BurstSize messages per slot and
	// must say so rather than silently cap and mislabel the load.
	if _, err := Bursty.Generate(200, 200, rng.New(1)); err == nil {
		t.Fatal("λ beyond the bursty shape's capacity accepted")
	}
	if _, err := Bursty.Generate(200, float64(BurstSize)+0.5, rng.New(1)); err == nil {
		t.Fatal("λ just above the bursty shape's capacity accepted")
	}
	// λ = BurstSize is exactly representable (gap 1, a burst every slot).
	w, err := Bursty.Generate(200, float64(BurstSize), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 200 {
		t.Fatalf("n = %d, want 200", w.N())
	}
}

// TestRunScenarioImpairments drives the sweep through the catalog's
// impaired scenarios: a jammed channel must cost throughput or latency
// relative to the clean run of the identical shape, and a mixed
// population must still drain at a gentle load.
func TestRunScenarioImpairments(t *testing.T) {
	t.Parallel()
	protos := []Protocol{DefaultProtocols()[2]} // binary exponential backoff
	base := Config{Lambdas: []float64{0.05}, Messages: 300, Runs: 2, Seed: 11}

	clean, err := Run(protos, base)
	if err != nil {
		t.Fatal(err)
	}
	jammedCfg := base
	jammedCfg.Scenario = scenario.Workload{
		Name:     "jammed",
		Arrivals: scenario.Poisson{},
		Channel:  scenario.JamRandom{Rate: 0.3},
	}
	jammed, err := Run(protos, jammedCfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, jp := clean[0].Points[0], jammed[0].Points[0]
	if jp.Completed != jp.Runs {
		t.Fatalf("jammed runs did not drain: %d/%d", jp.Completed, jp.Runs)
	}
	if jp.Latency.Mean() <= cp.Latency.Mean() {
		t.Fatalf("jamming did not cost latency: %.1f ≤ %.1f", jp.Latency.Mean(), cp.Latency.Mean())
	}
	if jp.Collisions.Mean() <= cp.Collisions.Mean() {
		t.Fatalf("jamming did not cost collisions: %.1f ≤ %.1f", jp.Collisions.Mean(), cp.Collisions.Mean())
	}

	mixedCfg := base
	mixedCfg.Scenario = scenario.Workload{
		Name:     "mixed",
		Arrivals: scenario.Poisson{},
		Population: &scenario.Population{
			Fraction:      0.5,
			Background:    "Binary Exp Backoff",
			NewBackground: scenario.NewBackgroundBackoff,
		},
	}
	mixed, err := Run(protos, mixedCfg)
	if err != nil {
		t.Fatal(err)
	}
	mp := mixed[0].Points[0]
	if mp.Completed != mp.Runs {
		t.Fatalf("mixed-population runs did not drain: %d/%d", mp.Completed, mp.Runs)
	}
	if mp.Latency.N() != base.Messages*base.Runs {
		t.Fatalf("mixed run recorded %d latencies, want %d", mp.Latency.N(), base.Messages*base.Runs)
	}
}

// TestRunDeterministic: two sweeps with the same configuration must be
// bit-for-bit identical regardless of worker scheduling — the property
// the `macsim scenario` golden output relies on.
func TestRunDeterministic(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Lambdas:  []float64{0.05, 0.15},
		Messages: 250,
		Runs:     3,
		Seed:     7,
		Scenario: scenario.Workload{
			Name:     "jammed",
			Arrivals: scenario.RhoBounded{},
			Channel:  scenario.JamRandom{Rate: 0.1},
		},
	}
	protos := WindowedProtocols()
	one, err := Run(protos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 1 // maximally different scheduling
	two, err := Run(protos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if CSV(one) != CSV(two) {
		t.Fatalf("sweep not deterministic:\n%s\nvs\n%s", CSV(one), CSV(two))
	}
	if Table(one) != Table(two) {
		t.Fatal("table rendering not deterministic")
	}
}

// TestRunAdversarialScenarios smoke-runs each adversarial arrival
// generator through the full sweep machinery.
func TestRunAdversarialScenarios(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"rho", "herd", "adaptive"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			scn, err := scenario.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			series, err := Run(WindowedProtocols()[:1], Config{
				Lambdas: []float64{0.1}, Messages: 300, Runs: 1, Seed: 3, Scenario: scn,
			})
			if err != nil {
				t.Fatal(err)
			}
			p := series[0].Points[0]
			if p.Latency.N() == 0 {
				t.Fatal("no latencies recorded")
			}
		})
	}
}

// TestRunContextCancel: once the context is canceled, workers must stop
// starting queued executions and the sweep must return ctx.Err() — the
// lever mac.Run and the serving subsystem's job cancellation rely on.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var runs atomic.Int32
	cfg := Config{
		Lambdas:     []float64{0.05, 0.1, 0.2, 0.3},
		Messages:    200,
		Runs:        8,
		Seed:        1,
		Parallelism: 2,
		Progress: func(string, float64, int, dynamic.Result) {
			if runs.Add(1) == 2 {
				cancel()
			}
		},
	}
	if _, err := RunContext(ctx, DefaultProtocols(), cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext after cancel: err = %v, want context.Canceled", err)
	}
	// 4 protocols × 4 λ × 8 runs = 128 queued executions; after the
	// cancel at execution 2 only the in-flight ones may finish.
	if n := runs.Load(); n > 2+4 {
		t.Fatalf("%d executions finished after cancellation at execution 2", n)
	}
}

// TestRunContextAlreadyCanceled: a canceled context aborts before any
// workload is even materialized.
func TestRunContextAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var runs atomic.Int32
	cfg := Config{Lambdas: []float64{0.1}, Messages: 100, Runs: 2,
		Progress: func(string, float64, int, dynamic.Result) { runs.Add(1) }}
	if _, err := RunContext(ctx, WindowedProtocols(), cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if runs.Load() != 0 {
		t.Fatalf("%d executions ran under a canceled context", runs.Load())
	}
}

// TestAdaptiveMatchesFixedAtPinnedReps is the λ-sweep half of the
// seed-determinism proof: with MinReps == MaxReps == Runs, adaptive
// mode replays the identical workload instances and protocol streams,
// so every aggregate — including the pooled latency sample and the
// matched-pairs property across protocols — reproduces fixed-rep
// results bit for bit.
func TestAdaptiveMatchesFixedAtPinnedReps(t *testing.T) {
	t.Parallel()
	const runs = 3
	protocols := WindowedProtocols()[:2]
	base := Config{Lambdas: []float64{0.05, 0.2}, Messages: 300, Seed: 9}
	fixedCfg := base
	fixedCfg.Runs = runs
	fixedRes, err := Run(protocols, fixedCfg)
	if err != nil {
		t.Fatal(err)
	}
	adaptiveCfg := base
	adaptiveCfg.Precision = montecarlo.Precision{Epsilon: 1e-12, Confidence: 0.95, MinReps: runs, MaxReps: runs}
	adaptiveRes, err := Run(protocols, adaptiveCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fixedRes {
		for j := range fixedRes[i].Points {
			f, a := &fixedRes[i].Points[j], &adaptiveRes[i].Points[j]
			same := f.Lambda == a.Lambda && f.Runs == a.Runs && f.Completed == a.Completed &&
				f.Throughput.Mean() == a.Throughput.Mean() &&
				f.Throughput.Variance() == a.Throughput.Variance() &&
				f.Latency.N() == a.Latency.N() && f.Latency.Mean() == a.Latency.Mean() &&
				f.Backlog.Max() == a.Backlog.Max() && f.Collisions.Mean() == a.Collisions.Mean()
			if !same {
				t.Fatalf("%s λ=%v: adaptive point %+v != fixed point %+v",
					fixedRes[i].Protocol.Name, f.Lambda, *a, *f)
			}
		}
	}
}

// TestAdaptiveStopsEarly checks that a loose target stops a
// low-variance point well short of MaxReps, and that the per-point rep
// counts are reported via Point.Runs.
func TestAdaptiveStopsEarly(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Lambdas:  []float64{0.05},
		Messages: 400,
		Seed:     1,
		Precision: montecarlo.Precision{
			Epsilon: 0.25, Confidence: 0.9, MinReps: 2, MaxReps: 32,
		},
	}
	res, err := Run(WindowedProtocols()[:1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	pt := res[0].Points[0]
	if pt.Runs >= 32 || pt.Runs < 2 {
		t.Fatalf("reps used = %d, want early stop in [2, 32)", pt.Runs)
	}
	if pt.Throughput.N() != pt.Runs {
		t.Fatalf("Throughput.N() = %d, want Runs = %d", pt.Throughput.N(), pt.Runs)
	}
}

// TestAdaptiveInvalidPrecision verifies precision validation surfaces
// from the sweep entry point.
func TestAdaptiveInvalidPrecision(t *testing.T) {
	t.Parallel()
	cfg := Config{Lambdas: []float64{0.1}, Messages: 50,
		Precision: montecarlo.Precision{Epsilon: 0.1, Confidence: 0.95, MinReps: 1, MaxReps: 4}}
	if _, err := Run(WindowedProtocols()[:1], cfg); err == nil {
		t.Fatal("want validation error for minReps < 2")
	}
}

// TestAdaptiveCancellation verifies ctx cancellation aborts the
// adaptive sweep between batches.
func TestAdaptiveCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	cfg := Config{Lambdas: []float64{0.05, 0.1, 0.2}, Messages: 200, Seed: 3,
		Precision: montecarlo.Precision{Epsilon: 1e-12, Confidence: 0.95, MinReps: 2, MaxReps: 1000},
		Progress: func(string, float64, int, dynamic.Result) {
			once.Do(cancel)
		}}
	if _, err := RunContext(ctx, WindowedProtocols()[:1], cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
