package throughput

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/rng"
)

func TestParseShape(t *testing.T) {
	t.Parallel()
	for name, want := range map[string]Shape{
		"poisson": Poisson, "bursty": Bursty, "burst": Bursty, "onoff": OnOff, "On-Off": OnOff,
	} {
		got, err := ParseShape(name)
		if err != nil || got != want {
			t.Fatalf("ParseShape(%q) = %v, %v; want %v", name, got, err, want)
		}
		if got.String() == "" {
			t.Fatalf("shape %v has empty name", got)
		}
	}
	if _, err := ParseShape("uniform"); err == nil {
		t.Fatal("unknown shape accepted")
	}
}

func TestGenerateRejectsBadLoad(t *testing.T) {
	t.Parallel()
	for _, shape := range []Shape{Poisson, Bursty, OnOff} {
		if _, err := shape.Generate(10, 0, rng.New(1)); err == nil {
			t.Fatalf("%v: λ=0 accepted", shape)
		}
		if _, err := shape.Generate(10, -1, rng.New(1)); err == nil {
			t.Fatalf("%v: λ=-1 accepted", shape)
		}
	}
	if _, err := Shape(99).Generate(10, 0.5, rng.New(1)); err == nil {
		t.Fatal("unknown shape generated a workload")
	}
	// A vanishing λ would overflow uint64 slot arithmetic in any shape.
	for _, shape := range []Shape{Poisson, Bursty, OnOff} {
		if _, err := shape.Generate(200, 1e-18, rng.New(1)); err == nil {
			t.Fatalf("%v: λ below the representable span accepted", shape)
		}
	}
}

// TestGenerateShapes verifies the structural invariants of each arrival
// shape: exact message count, non-decreasing slots ≥ 1, and a realized
// offered load near λ.
func TestGenerateShapes(t *testing.T) {
	t.Parallel()
	const n, lambda = 4096, 0.25
	for _, shape := range []Shape{Poisson, Bursty, OnOff} {
		shape := shape
		t.Run(shape.String(), func(t *testing.T) {
			t.Parallel()
			w, err := shape.Generate(n, lambda, rng.New(7))
			if err != nil {
				t.Fatal(err)
			}
			if w.N() != n {
				t.Fatalf("n = %d, want %d", w.N(), n)
			}
			if w.Arrivals[0] < 1 {
				t.Fatalf("first arrival %d < 1", w.Arrivals[0])
			}
			for i := 1; i < n; i++ {
				if w.Arrivals[i] < w.Arrivals[i-1] {
					t.Fatalf("arrivals not monotone at %d: %d < %d", i, w.Arrivals[i], w.Arrivals[i-1])
				}
			}
			got := float64(n) / float64(w.Span())
			if math.Abs(got-lambda) > lambda/3 {
				t.Fatalf("realized load %.3f, want ~%.3f", got, lambda)
			}
		})
	}
}

func TestGenerateBursty(t *testing.T) {
	t.Parallel()
	// 200 messages in bursts of 64: 64+64+64+8, gaps of 64/0.5 = 128.
	w, err := Bursty.Generate(200, 0.5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 200 {
		t.Fatalf("n = %d, want 200", w.N())
	}
	for i, a := range w.Arrivals {
		want := uint64(1 + (i/BurstSize)*128)
		if a != want {
			t.Fatalf("message %d arrives at %d, want %d", i, a, want)
		}
	}
}

func TestGenerateOnOffRespectsPhases(t *testing.T) {
	t.Parallel()
	w, err := OnOff.Generate(3000, 0.3, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range w.Arrivals {
		// Arrival slots are 1-based; phase index of slot s is (s-1)/P,
		// and odd phases are silent.
		if ((a-1)/OnOffPhase)%2 != 0 {
			t.Fatalf("message %d arrives at %d inside an off-phase", i, a)
		}
	}
}

// TestRunSweepStructure runs a small two-protocol sweep end to end and
// checks the aggregate structure: stable points track λ, the table, CSV
// and plot render every protocol, and workloads are matched across
// protocols by construction.
func TestRunSweepStructure(t *testing.T) {
	t.Parallel()
	protos := []Protocol{DefaultProtocols()[0], DefaultProtocols()[3]} // EBB (window), OFA (fair)
	var calls atomic.Int64
	cfg := Config{
		Lambdas:  []float64{0.05, 0.1},
		Messages: 400,
		Runs:     2,
		Seed:     3,
		Progress: func(string, float64, int, dynamic.Result) { calls.Add(1) },
	}
	series, err := Run(protos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2", len(series))
	}
	if got := calls.Load(); got != 2*2*2 {
		t.Fatalf("progress calls = %d, want 8", got)
	}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("%s: points = %d, want 2", s.Protocol.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Completed != p.Runs {
				t.Fatalf("%s λ=%v: %d/%d drained at a gentle load", s.Protocol.Name, p.Lambda, p.Completed, p.Runs)
			}
			// At loads far below saturation, throughput ≈ λ.
			if got := p.Throughput.Mean(); math.Abs(got-p.Lambda) > p.Lambda/3 {
				t.Fatalf("%s λ=%v: throughput %.3f, want ~λ", s.Protocol.Name, p.Lambda, got)
			}
			if p.Latency.N() != cfg.Messages*cfg.Runs {
				t.Fatalf("%s λ=%v: %d latencies, want %d", s.Protocol.Name, p.Lambda, p.Latency.N(), cfg.Messages*cfg.Runs)
			}
		}
	}
	for _, render := range []string{Table(series), CSV(series), Plot(series)} {
		for _, p := range protos {
			if !strings.Contains(render, p.Name) {
				t.Fatalf("rendering misses %q:\n%s", p.Name, render)
			}
		}
	}
	if !strings.HasPrefix(CSV(series), "protocol,lambda,") {
		t.Fatalf("CSV header wrong:\n%s", CSV(series))
	}
}

// TestRunSaturationKnee: at an offered load beyond Exp Back-on/Back-off's
// saturation point the sweep must report degraded throughput, while the
// same load is sustained by binary exponential backoff — the ranking the
// dynamic-arrival literature predicts for gentle loads vs batched work.
func TestRunSaturationKnee(t *testing.T) {
	t.Parallel()
	protos := WindowedProtocols() // EBB, LLIB, BEB
	series, err := Run(protos, Config{
		Lambdas:  []float64{0.3},
		Messages: 6000,
		Runs:     2,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ebb, beb := series[0].Points[0], series[2].Points[0]
	if ebb.Throughput.Mean() > 0.15 {
		t.Fatalf("EBB at λ=0.3 sustained %.3f msgs/slot, expected saturation well below 0.15", ebb.Throughput.Mean())
	}
	// The short run's drain tail shaves the measured rate below λ even
	// for a stable protocol; 0.22 still cleanly separates the two.
	if beb.Throughput.Mean() < 0.22 || beb.Throughput.Mean() < 2*ebb.Throughput.Mean() {
		t.Fatalf("binary exp backoff at λ=0.3 sustained only %.3f msgs/slot (EBB: %.3f)",
			beb.Throughput.Mean(), ebb.Throughput.Mean())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	t.Parallel()
	if _, err := Run(DefaultProtocols()[:1], Config{Lambdas: []float64{-0.1}, Messages: 10}); err == nil {
		t.Fatal("negative λ accepted")
	}
	bad := []Protocol{{Name: "empty"}}
	if _, err := Run(bad, Config{Lambdas: []float64{0.1}, Messages: 10, Runs: 1}); err == nil {
		t.Fatal("protocol without constructor accepted")
	}
}

func TestGenerateBurstyRejectsExcessiveLoad(t *testing.T) {
	t.Parallel()
	// The shape cannot offer more than BurstSize messages per slot and
	// must say so rather than silently cap and mislabel the load.
	if _, err := Bursty.Generate(200, 200, rng.New(1)); err == nil {
		t.Fatal("λ beyond the bursty shape's capacity accepted")
	}
	if _, err := Bursty.Generate(200, float64(BurstSize)+0.5, rng.New(1)); err == nil {
		t.Fatal("λ just above the bursty shape's capacity accepted")
	}
	// λ = BurstSize is exactly representable (gap 1, a burst every slot).
	w, err := Bursty.Generate(200, float64(BurstSize), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 200 {
		t.Fatalf("n = %d, want 200", w.N())
	}
}
