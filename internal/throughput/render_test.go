package throughput

import (
	"strings"
	"testing"
)

// fakeSeries builds a two-protocol, two-λ sweep result by hand: one
// protocol stable at both loads, the other saturated at the higher one.
func fakeSeries() []Series {
	mkPoint := func(lambda, tp float64, completed, runs int, lats ...float64) Point {
		p := Point{Lambda: lambda, Completed: completed, Runs: runs}
		p.Throughput.Add(tp)
		for _, l := range lats {
			p.Latency.Add(l)
		}
		p.Backlog.Add(7)
		p.Collisions.Add(3)
		return p
	}
	return []Series{
		{
			Protocol: Protocol{Name: "Stable"},
			Points: []Point{
				mkPoint(0.1, 0.1, 2, 2, 3, 5, 9),
				mkPoint(0.2, 0.2, 2, 2, 4, 6, 11),
			},
		},
		{
			Protocol: Protocol{Name: "Saturating"},
			Points: []Point{
				mkPoint(0.1, 0.1, 2, 2, 8, 12, 20),
				mkPoint(0.2, 0.05, 0, 2, 900, 1500, 4000),
			},
		},
	}
}

func TestTableRendersPointsAndSaturationMark(t *testing.T) {
	t.Parallel()
	table := Table(fakeSeries())
	if !strings.HasPrefix(table, "| protocol | λ |") {
		t.Fatalf("table header wrong:\n%s", table)
	}
	for _, want := range []string{"Stable", "Saturating", "| 2/2 |", "| 0/2 |"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	// The saturated point's throughput carries the asterisk; stable
	// points carry none.
	if !strings.Contains(table, "0.05*") {
		t.Fatalf("saturated point not marked:\n%s", table)
	}
	if strings.Count(table, "*") != 1 {
		t.Fatalf("want exactly one saturation mark:\n%s", table)
	}
	// One header, one separator, one row per (protocol, λ).
	if lines := strings.Count(strings.TrimSpace(table), "\n") + 1; lines != 2+4 {
		t.Fatalf("table has %d lines, want 6:\n%s", lines, table)
	}
}

func TestCSVRendersAllFields(t *testing.T) {
	t.Parallel()
	csv := CSV(fakeSeries())
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "protocol,lambda,runs,completed,throughput,latency_mean,latency_p50,latency_p99,latency_max,max_backlog,collisions" {
		t.Fatalf("CSV header wrong: %s", lines[0])
	}
	if len(lines) != 1+4 {
		t.Fatalf("CSV has %d lines, want 5:\n%s", len(lines), csv)
	}
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != 10 {
			t.Fatalf("CSV row has %d commas, want 10: %s", got, line)
		}
	}
	// Protocol names are quoted so future names with commas stay one field.
	if !strings.Contains(csv, `"Stable",0.1,2,2,0.1,`) {
		t.Fatalf("CSV row content wrong:\n%s", csv)
	}
	// The saturated point reports its degraded throughput and 0 completions.
	if !strings.Contains(csv, `"Saturating",0.2,2,0,0.05,`) {
		t.Fatalf("saturated CSV row wrong:\n%s", csv)
	}
}

func TestPlotRendersEverySeries(t *testing.T) {
	t.Parallel()
	plot := Plot(fakeSeries())
	for _, want := range []string{"Sustained throughput vs offered load", "offered λ (msgs/slot)", "Stable", "Saturating"} {
		if !strings.Contains(plot, want) {
			t.Fatalf("plot missing %q:\n%s", want, plot)
		}
	}
	// Points with no throughput observations are skipped, not plotted as
	// zeros: a series of only empty summaries degrades to the no-data
	// chart instead of a flat line at 0.
	empty := []Series{{Protocol: Protocol{Name: "Empty"}, Points: []Point{{Lambda: 0.1}}}}
	if out := Plot(empty); !strings.Contains(out, "(no data)") {
		t.Fatalf("empty summaries plotted as data:\n%s", out)
	}
}
