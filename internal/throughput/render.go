package throughput

import (
	"fmt"
	"strings"

	"repro/internal/asciiplot"
)

// Table renders a sweep as a GitHub-flavored Markdown table in long
// format: one row per (protocol, λ) with throughput, latency quantiles,
// peak backlog and drain status. Saturated points (runs that failed to
// drain within budget) are marked with an asterisk on the throughput.
func Table(series []Series) string {
	var b strings.Builder
	b.WriteString("| protocol | λ | throughput | mean lat | p50 lat | p99 lat | max backlog | drained |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, s := range series {
		for i := range s.Points {
			p := &s.Points[i]
			mark := ""
			if p.Saturated() {
				mark = "*"
			}
			fmt.Fprintf(&b, "| %s | %.3g | %.3g%s | %.1f | %.0f | %.0f | %.0f | %d/%d |\n",
				s.Protocol.Name, p.Lambda, p.Throughput.Mean(), mark,
				p.Latency.Mean(), p.Latency.Quantile(0.5), p.Latency.Quantile(0.99),
				p.Backlog.Max(), p.Completed, p.Runs)
		}
	}
	return b.String()
}

// CSV renders a sweep as tidy comma-separated records.
func CSV(series []Series) string {
	var b strings.Builder
	b.WriteString("protocol,lambda,runs,completed,throughput,latency_mean,latency_p50,latency_p99,latency_max,max_backlog,collisions\n")
	for _, s := range series {
		for i := range s.Points {
			p := &s.Points[i]
			fmt.Fprintf(&b, "%q,%.6g,%d,%d,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g\n",
				s.Protocol.Name, p.Lambda, p.Runs, p.Completed, p.Throughput.Mean(),
				p.Latency.Mean(), p.Latency.Quantile(0.5), p.Latency.Quantile(0.99),
				p.Latency.Max(), p.Backlog.Max(), p.Collisions.Mean())
		}
	}
	return b.String()
}

// Plot renders sustained throughput against offered load as a log-log
// ASCII chart, one series per protocol. The saturation knee shows as the
// point where a series departs from the throughput = λ diagonal.
func Plot(series []Series) string {
	plot := asciiplot.New("Sustained throughput vs offered load", "offered λ (msgs/slot)", "throughput")
	for _, s := range series {
		var xs, ys []float64
		for i := range s.Points {
			p := &s.Points[i]
			if p.Throughput.N() == 0 {
				continue
			}
			xs = append(xs, p.Lambda)
			ys = append(ys, p.Throughput.Mean())
		}
		plot.AddSeries(s.Protocol.Name, xs, ys)
	}
	return plot.Render(78, 24)
}
