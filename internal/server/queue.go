package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// errQueueFull is returned by pool.submit when the bounded queue is at
// capacity; the HTTP layer translates it into 429 + Retry-After.
var errQueueFull = errors.New("server: job queue full")

// pool is a sharded worker pool: one queue shard per worker, jobs placed
// by request-hash affinity, and work stealing from the far end of other
// shards when a worker's own shard runs dry. The shard count defaults to
// GOMAXPROCS (one shard per processor slice), so under load every core
// runs simulations while stealing keeps skewed shards from idling the
// rest.
type pool struct {
	shards   []poolShard
	capacity int64
	queued   atomic.Int64 // jobs waiting in some shard
	running  atomic.Int64 // jobs currently executing
	notify   chan struct{}
	execute  func(workerID int, j *job, stolen bool)

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

type poolShard struct {
	mu   sync.Mutex
	jobs []*job // front = oldest; owner pops front, thieves pop back
}

// newPool builds a pool of `workers` shards with the given global queue
// bound. execute runs one job and must not panic.
func newPool(workers, capacity int, execute func(workerID int, j *job, stolen bool)) *pool {
	ctx, cancel := context.WithCancel(context.Background())
	return &pool{
		shards:   make([]poolShard, workers),
		capacity: int64(capacity),
		// One token per worker: a submit can never find every worker
		// blocked without a token in flight for at least one of them.
		notify:  make(chan struct{}, workers),
		execute: execute,
		ctx:     ctx,
		cancel:  cancel,
	}
}

// start launches the workers.
func (p *pool) start() {
	for i := range p.shards {
		p.wg.Add(1)
		go p.worker(i)
	}
}

// close stops the workers after their current job; queued jobs are
// abandoned. Drain first for a graceful stop.
func (p *pool) close() {
	p.cancel()
	p.wg.Wait()
}

// submit places a job on the shard selected by affinity (a hash of the
// canonical request key), enforcing the global queue bound.
func (p *pool) submit(j *job, affinity uint64) error {
	if p.queued.Add(1) > p.capacity {
		p.queued.Add(-1)
		return errQueueFull
	}
	s := &p.shards[affinity%uint64(len(p.shards))]
	s.mu.Lock()
	s.jobs = append(s.jobs, j)
	s.mu.Unlock()
	// Non-blocking: with the buffer at one token per worker, a full
	// buffer means every worker already has a wakeup pending.
	select {
	case p.notify <- struct{}{}:
	default:
	}
	return nil
}

// depth reports jobs waiting in the queue (excluding running jobs).
func (p *pool) depth() int64 { return p.queued.Load() }

// inflight reports jobs queued or running.
func (p *pool) inflight() int64 { return p.queued.Load() + p.running.Load() }

// drain blocks until the queue is empty and no job is running, or ctx
// expires. The caller is responsible for refusing new submissions first.
func (p *pool) drain(ctx context.Context) error {
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		if p.inflight() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// worker is the per-shard loop: drain the own shard front-to-back, then
// steal the newest job from another shard, then block for a wakeup.
func (p *pool) worker(id int) {
	defer p.wg.Done()
	for {
		j, stolen := p.next(id)
		if j == nil {
			select {
			case <-p.notify:
				continue
			case <-p.ctx.Done():
				return
			}
		}
		// running before queued: between the two updates the job counts
		// in both gauges, so inflight() can never read 0 while a popped
		// job has yet to execute — the invariant drain() relies on.
		p.running.Add(1)
		p.queued.Add(-1)
		p.execute(id, j, stolen)
		p.running.Add(-1)
	}
}

// next pops a job: the worker's own shard first (FIFO), then a steal
// sweep over the other shards (LIFO from the victim's tail, the classic
// deque discipline that minimizes owner/thief contention).
func (p *pool) next(id int) (j *job, stolen bool) {
	if j := p.shards[id].popFront(); j != nil {
		return j, false
	}
	n := len(p.shards)
	for off := 1; off < n; off++ {
		if j := p.shards[(id+off)%n].popBack(); j != nil {
			return j, true
		}
	}
	return nil, false
}

func (s *poolShard) popFront() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.jobs) == 0 {
		return nil
	}
	j := s.jobs[0]
	s.jobs[0] = nil
	s.jobs = s.jobs[1:]
	return j
}

func (s *poolShard) popBack() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.jobs) == 0 {
		return nil
	}
	last := len(s.jobs) - 1
	j := s.jobs[last]
	s.jobs[last] = nil
	s.jobs = s.jobs[:last]
	return j
}
