package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// errQueueFull is returned by pool.submit when the bounded queue is at
// capacity; the HTTP layer translates it into 429 + Retry-After.
var errQueueFull = errors.New("server: job queue full")

// pool is the worker pool: a fixed set of workers pulling from the
// tenant-aware DRR scheduler (sched.go). The global queue bound is
// enforced here; per-tenant bounds and weighted fairness live in the
// scheduler and the tenancy layer. Before the tenancy layer the pool
// was a sharded work-stealing FIFO; DRR subsumes the load-balancing
// role (any idle worker serves the globally next job) and adds the
// cross-tenant fairness the FIFO could not express.
type pool struct {
	sched    *scheduler
	capacity int64
	workers  int
	queued   atomic.Int64 // jobs waiting in some sub-queue
	running  atomic.Int64 // jobs currently executing
	notify   chan struct{}
	execute  func(workerID int, j *job)

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// newPool builds a pool of `workers` workers over the given scheduler
// with the given global queue bound. execute runs one job and must not
// panic.
func newPool(workers, capacity int, sched *scheduler, execute func(workerID int, j *job)) *pool {
	ctx, cancel := context.WithCancel(context.Background())
	return &pool{
		sched:    sched,
		capacity: int64(capacity),
		workers:  workers,
		// One token per worker: a submit can never find every worker
		// blocked without a token in flight for at least one of them.
		notify:  make(chan struct{}, workers),
		execute: execute,
		ctx:     ctx,
		cancel:  cancel,
	}
}

// start launches the workers.
func (p *pool) start() {
	for i := 0; i < p.workers; i++ {
		p.wg.Add(1)
		go p.worker(i)
	}
}

// close stops the workers after their current job; queued jobs are
// abandoned. Drain first for a graceful stop.
func (p *pool) close() {
	p.cancel()
	p.wg.Wait()
}

// submit places a job on its tenant's sub-queue, enforcing the global
// queue bound.
func (p *pool) submit(j *job) error {
	if p.queued.Add(1) > p.capacity {
		p.queued.Add(-1)
		return errQueueFull
	}
	p.sched.push(j)
	// Non-blocking: with the buffer at one token per worker, a full
	// buffer means every worker already has a wakeup pending.
	select {
	case p.notify <- struct{}{}:
	default:
	}
	return nil
}

// force enqueues a job without the capacity check: boot recovery must
// never drop work a previous process already answered 202 for, even if
// the recovered backlog exceeds the configured bound. Fresh submits
// still go through submit and see 429 until the backlog drains.
func (p *pool) force(j *job) {
	p.queued.Add(1)
	p.sched.push(j)
	select {
	case p.notify <- struct{}{}:
	default:
	}
}

// depth reports jobs waiting in the queue (excluding running jobs).
func (p *pool) depth() int64 { return p.queued.Load() }

// inflight reports jobs queued or running.
func (p *pool) inflight() int64 { return p.queued.Load() + p.running.Load() }

// drain blocks until the queue is empty and no job is running, or ctx
// expires. The caller is responsible for refusing new submissions first.
func (p *pool) drain(ctx context.Context) error {
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		if p.inflight() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// worker pulls the scheduler's next job, blocking for a wakeup when
// every sub-queue is empty.
func (p *pool) worker(id int) {
	defer p.wg.Done()
	for {
		j := p.sched.pop()
		if j == nil {
			select {
			case <-p.notify:
				continue
			case <-p.ctx.Done():
				return
			}
		}
		// running before queued: between the two updates the job counts
		// in both gauges, so inflight() can never read 0 while a popped
		// job has yet to execute — the invariant drain() relies on.
		p.running.Add(1)
		p.queued.Add(-1)
		p.execute(id, j)
		p.running.Add(-1)
	}
}
