package server

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/spec"
)

// collectPool builds a pool over a fresh single-lane scheduler whose
// execute records which worker ran each job.
func collectPool(workers, capacity int) (*pool, *sync.Map) {
	var seen sync.Map
	p := newPool(workers, capacity, newScheduler(nil, false), func(workerID int, j *job) {
		seen.Store(j.id, workerID)
	})
	return p, &seen
}

func testJob(id string) *job {
	return newJob(id, spec.ForSolve(spec.SolveSpec{}), "key-"+id)
}

func tenantJob(id, tenant string, cost int64, interactive bool) *job {
	j := testJob(id)
	j.tenant = tenant
	j.cost = cost
	j.interactive = interactive
	return j
}

func TestPoolBound(t *testing.T) {
	// Workers not started: submissions accumulate until the bound.
	p, _ := collectPool(2, 3)
	for i := 0; i < 3; i++ {
		if err := p.submit(testJob(string(rune('a' + i)))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := p.submit(testJob("overflow")); err != errQueueFull {
		t.Fatalf("over-capacity submit = %v, want errQueueFull", err)
	}
	if p.depth() != 3 {
		t.Fatalf("depth = %d, want 3", p.depth())
	}
	p.close()
}

func TestPoolSpreadsWorkAcrossWorkers(t *testing.T) {
	const workers, jobs = 4, 64
	var seen sync.Map
	p := newPool(workers, jobs, newScheduler(nil, false), func(workerID int, j *job) {
		// Long enough that one worker cannot drain the pile before the
		// others are scheduled, so the pull model demonstrably spreads
		// work.
		time.Sleep(time.Millisecond)
		seen.Store(j.id, workerID)
	})
	// Pile every job up before starting the workers.
	for i := 0; i < jobs; i++ {
		if err := p.submit(testJob(string(rune('A' + i)))); err != nil {
			t.Fatal(err)
		}
	}
	p.start()
	deadline := time.Now().Add(10 * time.Second)
	for p.inflight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool stuck with %d in flight", p.inflight())
		}
		time.Sleep(time.Millisecond)
	}
	count := 0
	workersSeen := map[int]bool{}
	seen.Range(func(_, worker any) bool {
		count++
		workersSeen[worker.(int)] = true
		return true
	})
	if count != jobs {
		t.Fatalf("executed %d jobs, want %d", count, jobs)
	}
	if len(workersSeen) < 2 {
		t.Fatalf("only %d workers participated", len(workersSeen))
	}
	p.close()
}

func TestPoolSubmitAfterStartWakesIdleWorkers(t *testing.T) {
	p, seen := collectPool(3, 16)
	p.start()
	time.Sleep(10 * time.Millisecond) // let the workers block idle
	for i := 0; i < 8; i++ {
		if err := p.submit(testJob(string(rune('a' + i)))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for p.inflight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle workers never woke for submitted jobs")
		}
		time.Sleep(time.Millisecond)
	}
	count := 0
	seen.Range(func(_, _ any) bool { count++; return true })
	if count != 8 {
		t.Fatalf("executed %d, want 8", count)
	}
	p.close()
}

func TestPoolDrainTimesOut(t *testing.T) {
	block := make(chan struct{})
	p := newPool(1, 4, newScheduler(nil, false), func(int, *job) { <-block })
	p.start()
	if err := p.submit(testJob("x")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := p.drain(ctx); err == nil {
		t.Fatal("drain of a stuck pool returned nil")
	}
	close(block)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := p.drain(ctx2); err != nil {
		t.Fatalf("drain after unblock: %v", err)
	}
	p.close()
}

func TestRegistryEvictsOnlyTerminalJobs(t *testing.T) {
	r := newRegistry(2)
	j1, j2, j3 := testJob("1"), testJob("2"), testJob("3")
	r.add(j1)
	r.add(j2)
	j1.finish(nil, nil) // terminal → evictable
	r.add(j3)           // over capacity: j1 goes, live j2 stays
	if _, ok := r.get("1"); ok {
		t.Fatal("terminal job survived eviction")
	}
	if _, ok := r.get("2"); !ok {
		t.Fatal("live job was evicted")
	}
	if _, ok := r.get("3"); !ok {
		t.Fatal("fresh job missing")
	}
	if r.len() != 2 {
		t.Fatalf("len = %d, want 2", r.len())
	}
}
