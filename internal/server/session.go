// The session surface: long-running dynamic simulations
// (internal/session) exposed over HTTP. Unlike jobs, a session is not
// a cacheable unit of work — it is an open-ended process the client
// steers mid-flight — so sessions bypass the result cache, the queue
// and the worker pool entirely and run on their own goroutines, gated
// only by admission (tenant token bucket, Config.MaxSessions).
//
//	POST   /v1/sessions              open (body: spec.SessionSpec JSON)
//	GET    /v1/sessions/{id}         poll (view embeds the replay checkpoint)
//	GET    /v1/sessions/{id}/stream  NDJSON aggregates, controls, gaps, end
//	POST   /v1/sessions/{id}/control one control (JSON object or text line)
//	DELETE /v1/sessions/{id}         hard teardown (status "canceled")
//
// Session ids are key-prefixed like job ids ("<key12>-s<seq>"), so the
// shard ring routes polls, controls and streams to the owning node with
// the same prefix rule jobs use. On session end — and again on drain —
// the spec document and the slot-stamped control log are persisted as a
// store.SessionRecord: a SIGTERM'd daemon leaves every session's replay
// document on disk.

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/session"
	"repro/internal/spec"
	"repro/internal/store"
)

// liveSession pairs a running session with its serving identity.
type liveSession struct {
	id      string
	key     string
	tenant  string
	params  json.RawMessage
	created time.Time
	sess    *session.Session
}

// sessionView is the API rendering of a session. Checkpoint embeds the
// current replay document, so one poll hands a client everything
// needed for macsim session -replay.
type sessionView struct {
	ID         string                 `json:"id"`
	Kind       string                 `json:"kind"`
	Key        string                 `json:"key"`
	Status     string                 `json:"status"`
	Windows    int                    `json:"windows"`
	Dropped    uint64                 `json:"dropped,omitempty"`
	Created    time.Time              `json:"created"`
	Checkpoint spec.SessionCheckpoint `json:"checkpoint"`
	Error      string                 `json:"error,omitempty"`
}

func (ls *liveSession) view() sessionView {
	v := sessionView{
		ID:         ls.id,
		Kind:       string(spec.KindSession),
		Key:        ls.key,
		Status:     ls.sess.Status(),
		Windows:    ls.sess.Windows(),
		Dropped:    ls.sess.Dropped(),
		Created:    ls.created,
		Checkpoint: ls.sess.Checkpoint(),
	}
	if v.Status == session.StatusFailed || v.Status == session.StatusCanceled {
		if err := waitErr(ls.sess); err != nil {
			v.Error = err.Error()
		}
	}
	return v
}

// waitErr reads a terminal session's error without blocking a live one.
func waitErr(s *session.Session) error {
	if s.Status() == session.StatusRunning {
		return nil
	}
	return s.Wait()
}

// sessionRegistry indexes sessions by id, bounded by evicting the
// oldest *terminal* sessions beyond cap; live sessions are never
// evicted (they are separately bounded by Config.MaxSessions).
type sessionRegistry struct {
	mu       sync.Mutex
	cap      int
	sessions map[string]*liveSession
	order    []string
}

func newSessionRegistry(cap int) *sessionRegistry {
	if cap < 1 {
		cap = 1
	}
	return &sessionRegistry{cap: cap, sessions: make(map[string]*liveSession)}
}

func (r *sessionRegistry) add(ls *liveSession) (evicted []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sessions[ls.id] = ls
	r.order = append(r.order, ls.id)
	if len(r.sessions) <= r.cap {
		return nil
	}
	kept := r.order[:0]
	for _, id := range r.order {
		old, ok := r.sessions[id]
		if !ok {
			continue
		}
		if len(r.sessions) > r.cap && old != ls && old.sess.Status() != session.StatusRunning {
			delete(r.sessions, id)
			evicted = append(evicted, id)
			continue
		}
		kept = append(kept, id)
	}
	r.order = kept
	return evicted
}

func (r *sessionRegistry) get(id string) (*liveSession, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ls, ok := r.sessions[id]
	return ls, ok
}

func (r *sessionRegistry) all() []*liveSession {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*liveSession, 0, len(r.sessions))
	for _, ls := range r.sessions {
		out = append(out, ls)
	}
	return out
}

// active counts sessions still running — the Config.MaxSessions gate.
func (r *sessionRegistry) active() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ls := range r.sessions {
		if ls.sess.Status() == session.StatusRunning {
			n++
		}
	}
	return n
}

// handleOpenSession serves POST /v1/sessions: tenant → decode →
// validate → hash → route (ring owner) → admit (token bucket, active-
// session cap) → open. The 201 body is the session view; the client
// follows up on /stream and /control.
func (s *Server) handleOpenSession(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.metrics.refused.Add(1)
		s.writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server is draining"})
		return
	}
	tenant, err := s.tenantFor(r)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	body, err := readBody(r)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	sp, err := spec.DecodeSession(body)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	if err := sp.Validate(s.cfg.Limits); err != nil {
		s.writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	key, err := sp.CanonicalKey()
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	if owner, ok := s.forwardTarget(r, key); ok {
		s.proxyTo(w, r, owner, body)
		return
	}

	ts := s.tenants.get(tenant)
	if ts.bucket != nil {
		if ok, retry := ts.bucket.take(); !ok {
			ts.rejected.Add(1)
			s.reject429(w, ts, retry, fmt.Sprintf("tenant %q over admission rate", ts.name))
			return
		}
	}
	if s.sessionReg.active() >= s.cfg.MaxSessions {
		s.reject429(w, ts, s.cfg.RetryAfter, fmt.Sprintf("session capacity (%d) reached", s.cfg.MaxSessions))
		return
	}

	params, _ := sp.EncodeParams() // CanonicalKey above already proved it encodes
	ls := &liveSession{
		id:      fmt.Sprintf("%s-s%d", key[:ringPrefixLen], s.seq.Add(1)),
		key:     key,
		tenant:  ts.name,
		params:  params,
		created: time.Now(),
	}
	// Observers charge the tenant and the global counters per simulated
	// window — the session analogue of per-job cost accounting. The
	// session must outlive this request, so it parents on Background,
	// not r.Context(); teardown is DELETE, a stop control, or drain.
	sess, err := session.Open(context.Background(), sp, session.WithObserver(session.Observer{
		OnWindow: func(win spec.SessionWindow) {
			s.metrics.sessionWindows.Add(1)
			s.metrics.slotsSimulated.Add(int64(win.Slots))
			ts.sessionWindows.Add(1)
		},
		OnControl: func(spec.ControlMessage) { s.metrics.sessionControls.Add(1) },
		OnDrop:    func(n int) { s.metrics.sessionDropped.Add(int64(n)) },
	}))
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	ls.sess = sess
	for _, id := range s.sessionReg.add(ls) {
		_ = s.store.DeleteSession(id)
	}
	s.metrics.sessionsOpened.Add(1)
	// Persist the terminal record the moment the session ends, whatever
	// ends it — stop control, window budget, failure or DELETE.
	go func() {
		_ = sess.Wait()
		s.writeSessionRecord(ls)
	}()
	w.Header().Set("Location", "/v1/sessions/"+ls.id)
	s.writeJSON(w, http.StatusCreated, ls.view())
}

// writeSessionRecord persists the session's replay document and final
// counters. Called on session end and again on drain; the write is a
// full replace, so repeats are harmless.
func (s *Server) writeSessionRecord(ls *liveSession) {
	ck := ls.sess.Checkpoint()
	logDoc, err := json.Marshal(ck.Log)
	if err != nil {
		logDoc = nil
	}
	rec := store.SessionRecord{
		ID:      ls.id,
		Key:     ls.key,
		Tenant:  ls.tenant,
		Params:  ls.params,
		Log:     logDoc,
		Status:  ls.sess.Status(),
		Windows: ls.sess.Windows(),
		Dropped: ls.sess.Dropped(),
		Created: ls.created,
		Stopped: time.Now(),
	}
	if werr := waitErr(ls.sess); werr != nil {
		rec.Error = werr.Error()
	}
	if s.store.PutSession(rec) == nil {
		s.metrics.storeWrites.Add(1)
	}
}

// flushSessions stops every live session and persists its record — the
// drain path. Sessions are interactive processes; a draining daemon
// cannot wait for a client to send stop, so teardown is hard
// (status "canceled") but the replay document survives.
func (s *Server) flushSessions() {
	live := s.sessionReg.all()
	for _, ls := range live {
		ls.sess.Stop()
	}
	for _, ls := range live {
		_ = ls.sess.Wait()
		s.writeSessionRecord(ls)
	}
}

// proxySessionRequest forwards a session request whose id this node
// does not own — proxyJobRequest with a body (control POSTs carry one).
func (s *Server) proxySessionRequest(w http.ResponseWriter, r *http.Request, id string, body []byte) bool {
	if s.ring == nil || len(id) < ringPrefixLen || r.Header.Get(forwardedHeader) != "" {
		return false
	}
	owner := s.ring.Owner(id[:ringPrefixLen])
	if owner == s.ring.Self() {
		return false
	}
	s.proxyTo(w, r, owner, body)
	return true
}

// handleSessionPoll serves GET /v1/sessions/{id}. The view embeds the
// current checkpoint — spec plus slot-stamped control log — which is
// exactly the macsim session -replay input.
func (s *Server) handleSessionPoll(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ls, ok := s.sessionReg.get(id)
	if !ok {
		if s.proxySessionRequest(w, r, id, nil) {
			return
		}
		// A session that ended before a restart still answers from its
		// persisted record.
		if rec, ok, err := s.store.GetSession(id); err == nil && ok {
			s.metrics.storeReads.Add(1)
			s.writeJSON(w, http.StatusOK, sessionRecordView(rec))
			return
		}
		s.writeJSON(w, http.StatusNotFound, apiError{Error: "unknown session id"})
		return
	}
	s.writeJSON(w, http.StatusOK, ls.view())
}

// sessionRecordView renders a persisted record in the live view's
// shape, rebuilding the checkpoint from the stored spec and log.
func sessionRecordView(rec store.SessionRecord) sessionView {
	v := sessionView{
		ID:      rec.ID,
		Kind:    string(spec.KindSession),
		Key:     rec.Key,
		Status:  rec.Status,
		Windows: rec.Windows,
		Dropped: rec.Dropped,
		Created: rec.Created,
		Error:   rec.Error,
	}
	v.Checkpoint.Event = "checkpoint"
	v.Checkpoint.Window = rec.Windows
	_ = json.Unmarshal(rec.Params, &v.Checkpoint.Session)
	_ = json.Unmarshal(rec.Log, &v.Checkpoint.Log)
	if v.Checkpoint.Session.Window > 0 {
		v.Checkpoint.Slot = uint64(rec.Windows)*uint64(v.Checkpoint.Session.Window) + 1
	}
	return v
}

// handleSessionControl serves POST /v1/sessions/{id}/control. The body
// is either a ControlMessage JSON object or one line of the text
// grammar ("set-lambda 0.3", "jam pattern 8:3", ...). The response is
// the stamped acknowledgment exactly as the stream and the control log
// carry it.
func (s *Server) handleSessionControl(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := readBody(r)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	ls, ok := s.sessionReg.get(id)
	if !ok {
		if s.proxySessionRequest(w, r, id, body) {
			return
		}
		s.writeJSON(w, http.StatusNotFound, apiError{Error: "unknown session id"})
		return
	}
	msg, err := parseControlBody(body)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	stamped, err := ls.sess.Control(r.Context(), msg)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "ended") {
			status = http.StatusConflict
		}
		s.writeJSON(w, status, apiError{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, spec.SessionControl{Event: "control", Control: stamped})
}

// parseControlBody accepts both control encodings: a JSON object, or a
// single line of the shared text grammar.
func parseControlBody(body []byte) (spec.ControlMessage, error) {
	trimmed := bytes.TrimSpace(body)
	if len(trimmed) == 0 {
		return spec.ControlMessage{}, fmt.Errorf("empty control body")
	}
	if trimmed[0] == '{' {
		var msg spec.ControlMessage
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&msg); err != nil {
			return spec.ControlMessage{}, fmt.Errorf("decoding control: %w", err)
		}
		msg.Slot = 0 // the session stamps the effective slot
		return msg, nil
	}
	return spec.ParseControl(string(trimmed))
}

// handleSessionStream serves GET /v1/sessions/{id}/stream: the
// session's events as NDJSON — window aggregates, control acks,
// checkpoints, gap markers where backpressure dropped aggregates, and
// the end record — following live until the session ends or the client
// disconnects.
func (s *Server) handleSessionStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ls, ok := s.sessionReg.get(id)
	if !ok {
		if s.proxySessionRequest(w, r, id, nil) {
			return
		}
		s.writeJSON(w, http.StatusNotFound, apiError{Error: "unknown session id"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Server", "macsimd/"+s.cfg.Version)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for ev, err := range ls.sess.EventsContext(r.Context()) {
		var line []byte
		var merr error
		if err != nil {
			line, merr = json.Marshal(apiError{Error: err.Error()})
		} else {
			line, merr = json.Marshal(ev)
		}
		if merr != nil {
			return
		}
		line = append(line, '\n')
		if _, werr := w.Write(line); werr != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleSessionDelete serves DELETE /v1/sessions/{id}: hard teardown.
// The session ends with status "canceled"; its record (with the replay
// document) is persisted by the end watcher. For a clean, replayable
// end, POST a stop control instead.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ls, ok := s.sessionReg.get(id)
	if !ok {
		if s.proxySessionRequest(w, r, id, nil) {
			return
		}
		s.writeJSON(w, http.StatusNotFound, apiError{Error: "unknown session id"})
		return
	}
	ls.sess.Stop()
	_ = ls.sess.Wait()
	s.writeJSON(w, http.StatusAccepted, ls.view())
}
