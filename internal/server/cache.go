package server

import (
	"container/list"
	"encoding/json"
	"sync"
)

// cacheShards is the number of independently locked cache shards. A
// power of two so the shard index is a mask of the key hash.
const cacheShards = 16

// cache is a sharded LRU over canonical request hashes. Every simulation
// in this repository is deterministic in (endpoint, params, seed), so a
// completed job's result can be replayed verbatim for any identical
// later request — the layer that makes repeated interactive queries
// cost zero simulation time.
type cache struct {
	shards [cacheShards]cacheShard
	perCap int // per-shard entry bound
}

type cacheShard struct {
	mu    sync.Mutex
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key   string
	value json.RawMessage
}

// newCache builds a cache bounded at roughly totalEntries across all
// shards (at least one entry per shard).
func newCache(totalEntries int) *cache {
	per := totalEntries / cacheShards
	if per < 1 {
		per = 1
	}
	c := &cache{perCap: per}
	for i := range c.shards {
		c.shards[i].order = list.New()
		c.shards[i].items = make(map[string]*list.Element)
	}
	return c
}

// fnv64 is FNV-1a over the key: the one hash behind both cache
// sharding and queue-shard affinity, so the two cannot drift apart.
func fnv64(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// shardFor selects a shard by FNV-1a of the key.
func (c *cache) shardFor(key string) *cacheShard {
	return &c.shards[fnv64(key)&(cacheShards-1)]
}

// get returns the cached result for key, promoting it to most recently
// used. The returned bytes are shared and must not be mutated.
func (c *cache) get(key string) (json.RawMessage, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

// put inserts (or refreshes) key, evicting the shard's least recently
// used entry when the shard is over budget.
func (c *cache) put(key string, value json.RawMessage) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).value = value
		s.order.MoveToFront(el)
		return
	}
	s.items[key] = s.order.PushFront(&cacheEntry{key: key, value: value})
	for s.order.Len() > c.perCap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the resident entry count across all shards.
func (c *cache) len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.order.Len()
		s.mu.Unlock()
	}
	return total
}
