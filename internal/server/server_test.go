package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/spec"
)

// newTestServer builds a started Server plus an httptest front end. When
// gated, every job blocks before executing until the returned gate
// receives (or is closed) — the lever behind the deterministic
// backpressure, coalescing and drain tests.
func newTestServer(t *testing.T, cfg Config, gated bool) (*Server, *httptest.Server, chan struct{}) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var gate chan struct{}
	if gated {
		// The gate must exist before any job can execute; New started the
		// workers but no job has been submitted yet.
		gate = make(chan struct{})
		s.testGate = gate
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		if gated {
			// Unblock any worker still waiting so Close can finish.
			select {
			case <-gate:
			default:
				close(gate)
			}
		}
		ts.Close()
		s.Close()
	})
	return s, ts, gate
}

// post submits body to url and returns the response with its decoded
// submit envelope.
func post(t *testing.T, url, body string) (*http.Response, submitResponse) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &sub); err != nil {
			t.Fatalf("decoding submit response %s: %v", data, err)
		}
	}
	return resp, sub
}

// waitDone polls the job until it reaches a terminal state.
func waitDone(t *testing.T, base, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v jobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status.terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return jobView{}
}

// metricValue extracts a metric's value from the /metrics exposition.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("parsing %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

func TestSolveSubmitPollAndCache(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)

	resp, sub := post(t, ts.URL+"/v1/solve", `{"protocol":"one-fail","k":500,"seed":7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("X-Cache = %q, want miss", resp.Header.Get("X-Cache"))
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+sub.ID {
		t.Fatalf("Location = %q, want /v1/jobs/%s", loc, sub.ID)
	}
	done := waitDone(t, ts.URL, sub.ID)
	if done.Status != StatusDone {
		t.Fatalf("job status = %s (%s)", done.Status, done.Error)
	}
	var res spec.SolveResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.K != 500 || res.Seed != 7 || res.Slots == 0 || res.System != "One-Fail Adaptive" {
		t.Fatalf("unexpected result %+v", res)
	}

	// The identical request — and its alias spelling — must be a cache
	// hit with the byte-identical result.
	for _, body := range []string{`{"protocol":"one-fail","k":500,"seed":7}`, `{"protocol":"ofa","k":500,"seed":7}`} {
		resp, sub := post(t, ts.URL+"/v1/solve", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cached submit status = %d, want 200", resp.StatusCode)
		}
		if resp.Header.Get("X-Cache") != "hit" || !sub.Cached {
			t.Fatalf("resubmit of %s was not a cache hit", body)
		}
		if !bytes.Equal(sub.Result, done.Result) {
			t.Fatalf("cached result differs:\n%s\n%s", sub.Result, done.Result)
		}
	}
	if hits := metricValue(t, ts.URL, "macsimd_cache_hits_total"); hits != 2 {
		t.Fatalf("cache hits = %v, want 2", hits)
	}
	if rate := metricValue(t, ts.URL, "macsimd_cache_hit_rate"); rate <= 0.5 {
		t.Fatalf("cache hit rate = %v, want > 0.5", rate)
	}
}

func TestSubmitDefaultsHashIdentically(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)

	// An empty body and the explicit spelling of every default must hash
	// to the same canonical key: the second submit hits the cache.
	resp, sub := post(t, ts.URL+"/v1/solve", "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	waitDone(t, ts.URL, sub.ID)
	resp2, _ := post(t, ts.URL+"/v1/solve", `{"protocol":"one-fail","k":1000,"seed":1}`)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("explicit defaults did not hit the empty-body cache entry (X-Cache=%q)",
			resp2.Header.Get("X-Cache"))
	}
}

func TestEvaluateStream(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)

	resp, sub := post(t, ts.URL+"/v1/evaluate",
		`{"protocols":["one-fail"],"ks":[10,50],"runs":2,"seed":3}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	stream, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	var progress, terminal int
	var final spec.StreamEnd
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var ev spec.StreamEnd
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case "progress":
			progress++
		case "done", "failed":
			terminal++
			final = ev
		default:
			t.Fatalf("unknown event %q", ev.Event)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// 1 protocol × 2 sizes × 2 runs.
	if progress != 4 {
		t.Fatalf("progress events = %d, want 4", progress)
	}
	if terminal != 1 || final.Event != "done" {
		t.Fatalf("terminal events = %d, final = %+v", terminal, final)
	}
	var res spec.EvaluateResult
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || len(res.Series[0].Cells) != 2 || !strings.Contains(res.Table1, "One-Fail Adaptive") {
		t.Fatalf("unexpected evaluate result %+v", res)
	}
}

func TestThroughputAndScenarioEndpoints(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)

	resp, sub := post(t, ts.URL+"/v1/throughput",
		`{"lambdas":[0.2],"messages":120,"runs":1,"shape":"bursty","seed":5}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("throughput submit status = %d, want 202", resp.StatusCode)
	}
	done := waitDone(t, ts.URL, sub.ID)
	if done.Status != StatusDone {
		t.Fatalf("throughput job failed: %s", done.Error)
	}
	var res spec.ThroughputResult
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "bursty" || len(res.Series) == 0 || len(res.Series[0].Points) != 1 {
		t.Fatalf("unexpected throughput result %+v", res)
	}

	resp, sub = post(t, ts.URL+"/v1/scenario",
		`{"scenario":"rho","lambdas":[0.1],"messages":100,"runs":1,"seed":5}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("scenario submit status = %d, want 202", resp.StatusCode)
	}
	done = waitDone(t, ts.URL, sub.ID)
	if done.Status != StatusDone {
		t.Fatalf("scenario job failed: %s", done.Error)
	}
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "rho" {
		t.Fatalf("scenario result names %q, want rho", res.Scenario)
	}
}

func TestBackpressure429(t *testing.T) {
	s, ts, gate := newTestServer(t, Config{Workers: 1, QueueDepth: 1}, true)

	// Job A is dequeued by the single worker and blocks on the gate; job
	// B fills the queue's single slot; job C must bounce with 429.
	respA, subA := post(t, ts.URL+"/v1/solve", `{"k":100,"seed":1}`)
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("job A status = %d", respA.StatusCode)
	}
	// Wait until the worker has dequeued A (queue depth back to 0).
	deadline := time.Now().Add(5 * time.Second)
	for metricValue(t, ts.URL, "macsimd_queue_depth") != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued job A")
		}
		time.Sleep(2 * time.Millisecond)
	}
	respB, subB := post(t, ts.URL+"/v1/solve", `{"k":101,"seed":1}`)
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("job B status = %d", respB.StatusCode)
	}
	respC, _ := post(t, ts.URL+"/v1/solve", `{"k":102,"seed":1}`)
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job C status = %d, want 429", respC.StatusCode)
	}
	if ra := respC.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want an integer ≥ 1", ra)
	}
	if rejected := metricValue(t, ts.URL, "macsimd_rejected_total"); rejected != 1 {
		t.Fatalf("rejected = %v, want 1", rejected)
	}
	// The bounced job's id was never handed out; it must not linger in
	// the poll registry where a reject storm would evict real jobs.
	if n := s.reg.len(); n != 2 {
		t.Fatalf("registry holds %d jobs after a reject, want 2", n)
	}

	close(gate)
	if v := waitDone(t, ts.URL, subA.ID); v.Status != StatusDone {
		t.Fatalf("job A failed: %s", v.Error)
	}
	if v := waitDone(t, ts.URL, subB.ID); v.Status != StatusDone {
		t.Fatalf("job B failed: %s", v.Error)
	}
}

func TestDuplicateCoalescing(t *testing.T) {
	_, ts, gate := newTestServer(t, Config{Workers: 2, QueueDepth: 8}, true)

	const body = `{"k":300,"seed":11}`
	resp1, sub1 := post(t, ts.URL+"/v1/solve", body)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d", resp1.StatusCode)
	}
	resp2, sub2 := post(t, ts.URL+"/v1/solve", body)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("duplicate submit status = %d", resp2.StatusCode)
	}
	if resp2.Header.Get("X-Cache") != "coalesced" {
		t.Fatalf("duplicate X-Cache = %q, want coalesced", resp2.Header.Get("X-Cache"))
	}
	if sub1.ID != sub2.ID {
		t.Fatalf("duplicate got its own job: %s vs %s", sub1.ID, sub2.ID)
	}
	if v := metricValue(t, ts.URL, "macsimd_coalesced_total"); v != 1 {
		t.Fatalf("coalesced = %v, want 1", v)
	}

	close(gate)
	done := waitDone(t, ts.URL, sub1.ID)
	if done.Status != StatusDone {
		t.Fatalf("coalesced job failed: %s", done.Error)
	}
	// After completion the shared key is a plain cache hit.
	resp3, _ := post(t, ts.URL+"/v1/solve", body)
	if resp3.Header.Get("X-Cache") != "hit" {
		t.Fatalf("post-completion X-Cache = %q, want hit", resp3.Header.Get("X-Cache"))
	}
}

func TestGracefulDrain(t *testing.T) {
	s, ts, gate := newTestServer(t, Config{Workers: 1, QueueDepth: 4}, true)

	_, sub := post(t, ts.URL+"/v1/solve", `{"k":200,"seed":2}`)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Draining must refuse new work with 503 and report via /healthz.
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	resp, _ := post(t, ts.URL+"/v1/solve", `{"k":999,"seed":2}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
	health, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", health.StatusCode)
	}

	select {
	case err := <-drained:
		t.Fatalf("drain returned before the in-flight job finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The in-flight job completed during the drain.
	if v := waitDone(t, ts.URL, sub.ID); v.Status != StatusDone {
		t.Fatalf("in-flight job after drain: %s (%s)", v.Status, v.Error)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Limits: Limits{MaxK: 1000}}, false)

	cases := []struct {
		path, body string
	}{
		{"/v1/solve", `{"protocol":"nope"}`},
		{"/v1/solve", `{"k":-4}`},
		{"/v1/solve", `{"k":5000}`},      // over Limits.MaxK
		{"/v1/solve", `{"kk":5}`},        // unknown field must not hash to defaults
		{"/v1/solve", `{"k":"hundred"}`}, // type error
		{"/v1/evaluate", `{"maxExp":9}`},
		{"/v1/evaluate", `{"protocols":["zap"]}`},
		{"/v1/throughput", `{"lambdas":[0]}`},
		{"/v1/throughput", `{"shape":"uniform"}`},
		{"/v1/throughput", `{"scenario":"rho"}`}, // wrong endpoint
		{"/v1/scenario", `{"scenario":"nope"}`},
		{"/v1/scenario", `{"shape":"poisson"}`}, // wrong endpoint
	}
	for _, c := range cases {
		resp, _ := post(t, ts.URL+c.path, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %s = %d, want 400", c.path, c.body, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/unknown")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve = %d, want 405", resp.StatusCode)
	}
}

func TestDiscoveryEndpoints(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Version: "test-1"}, false)

	resp, err := http.Get(ts.URL + "/v1/protocols")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"one-fail", "ofa", "exp-backoff", "One-Fail Adaptive"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("/v1/protocols missing %q: %s", want, data)
		}
	}
	resp, err = http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"rho", "herd", "jammed", "mixed"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("/v1/scenarios missing %q: %s", want, data)
		}
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "test-1") {
		t.Fatalf("healthz = %d %s", resp.StatusCode, data)
	}
}

func TestServeListensAndShutsDown(t *testing.T) {
	s, err := New(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	served := make(chan error, 1)
	go func() { served <- s.ListenAndServe(ctx, ready) }()
	addr := <-ready

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
	s.Close()
}

func TestMetricsExposition(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 3, QueueDepth: 17}, false)

	_, sub := post(t, ts.URL+"/v1/solve", `{"k":50,"seed":4}`)
	waitDone(t, ts.URL, sub.ID)
	post(t, ts.URL+"/v1/solve", `{"k":50,"seed":4}`) // hit

	if v := metricValue(t, ts.URL, "macsimd_queue_capacity"); v != 17 {
		t.Fatalf("queue capacity = %v", v)
	}
	if v := metricValue(t, ts.URL, "macsimd_workers"); v != 3 {
		t.Fatalf("workers = %v", v)
	}
	if v := metricValue(t, ts.URL, "macsimd_slots_simulated_total"); v <= 0 {
		t.Fatalf("slots simulated = %v, want > 0", v)
	}
	if v := metricValue(t, ts.URL, "macsimd_cache_entries"); v != 1 {
		t.Fatalf("cache entries = %v, want 1", v)
	}
	if v := metricValue(t, ts.URL, "macsimd_jobs_completed_total"); v != 1 {
		t.Fatalf("jobs completed = %v, want 1", v)
	}
	// The rate gauge must parse even when ~0 between scrapes.
	metricValue(t, ts.URL, "macsimd_slots_simulated_per_second")
}

func TestJobViewTimestamps(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)
	_, sub := post(t, ts.URL+"/v1/solve", `{"k":60,"seed":9}`)
	v := waitDone(t, ts.URL, sub.ID)
	if v.Started == nil || v.Finished == nil {
		t.Fatalf("terminal job missing timestamps: %+v", v)
	}
	if v.Kind != "solve" || !strings.HasPrefix(v.ID, v.Key[:12]) {
		t.Fatalf("job view id/kind wrong: %+v", v)
	}
}

func TestStreamOfFinishedJobReplaysAndTerminates(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)
	_, sub := post(t, ts.URL+"/v1/evaluate", `{"protocols":["exp-bb"],"ks":[20],"runs":1}`)
	waitDone(t, ts.URL, sub.ID)

	// Streaming an already-finished job must replay everything and close.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+sub.ID+"/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 { // 1 progress (1×1×1) + 1 done
		t.Fatalf("stream lines = %d, want 2:\n%s", len(lines), data)
	}
	var final spec.StreamEnd
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatal(err)
	}
	if final.Event != "done" || len(final.Result) == 0 {
		t.Fatalf("final stream event %+v", final)
	}
}

// TestConcurrentStreamersShareEvents: several clients streaming the
// same job must each see the full event sequence (the event buffers are
// shared; the race detector guards the no-mutation invariant).
func TestConcurrentStreamersShareEvents(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)
	_, sub := post(t, ts.URL+"/v1/evaluate", `{"protocols":["one-fail"],"ks":[10,30],"runs":2}`)

	const streamers = 4
	errs := make(chan error, streamers)
	for i := 0; i < streamers; i++ {
		go func() {
			resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/stream")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var progress int
			var sawDone bool
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
			for sc.Scan() {
				var ev spec.StreamEnd
				if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
					errs <- fmt.Errorf("bad line %q: %v", sc.Text(), err)
					return
				}
				switch ev.Event {
				case "progress":
					progress++
				case "done":
					sawDone = true
				}
			}
			if progress != 4 || !sawDone {
				errs <- fmt.Errorf("streamer saw %d progress events (want 4), done=%v", progress, sawDone)
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < streamers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCachedThroughputIdenticalAcrossRestart(t *testing.T) {
	// Two fresh servers must compute the byte-identical result for the
	// same request — the determinism the cache layer relies on.
	body := `{"lambdas":[0.1],"messages":150,"runs":1,"seed":21}`
	results := make([]json.RawMessage, 2)
	for i := range results {
		_, ts, _ := newTestServer(t, Config{}, false)
		_, sub := post(t, ts.URL+"/v1/throughput", body)
		done := waitDone(t, ts.URL, sub.ID)
		if done.Status != StatusDone {
			t.Fatalf("run %d failed: %s", i, done.Error)
		}
		results[i] = done.Result
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Fatalf("throughput results differ across servers:\n%s\n%s", results[0], results[1])
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	// A small soak: distinct and duplicate jobs racing across shards;
	// everything must terminate and the counters must balance.
	_, ts, _ := newTestServer(t, Config{Workers: 4, QueueDepth: 128}, false)

	const distinct, dups = 8, 4
	ids := make(chan string, distinct*dups)
	errs := make(chan error, distinct*dups)
	for d := 0; d < distinct; d++ {
		for r := 0; r < dups; r++ {
			go func(d int) {
				resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
					strings.NewReader(fmt.Sprintf(`{"k":%d,"seed":6}`, 100+d)))
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				var sub submitResponse
				if derr := json.NewDecoder(resp.Body).Decode(&sub); derr != nil {
					errs <- fmt.Errorf("status %d: %v", resp.StatusCode, derr)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK, http.StatusAccepted:
					if sub.ID != "" {
						ids <- sub.ID
					}
					errs <- nil
				default:
					errs <- fmt.Errorf("status %d", resp.StatusCode)
				}
			}(d)
		}
	}
	for i := 0; i < distinct*dups; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(ids)
	for id := range ids {
		if v := waitDone(t, ts.URL, id); v.Status != StatusDone {
			t.Fatalf("job %s: %s (%s)", id, v.Status, v.Error)
		}
	}
	if v := metricValue(t, ts.URL, "macsimd_jobs_inflight"); v != 0 {
		t.Fatalf("inflight after drain-down = %v", v)
	}
	if v := metricValue(t, ts.URL, "macsimd_jobs_completed_total"); v != distinct {
		t.Fatalf("completed = %v, want %d", v, distinct)
	}
}

// del issues DELETE /v1/jobs/{id}.
func del(t *testing.T, base, id string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestCancelRunningJob is the HTTP-path acceptance test: killing a
// running job stops simulation work promptly — long before the sweep's
// remaining queued runs could have executed.
func TestCancelRunningJob(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 1}, false)

	// A sweep whose runs are individually fast but long in aggregate
	// (tens of k=100'000 executions at ~tens of ms each), so the cancel
	// lands mid-sweep with a wide margin on both sides.
	const body = `{"protocols":["one-fail"],"ks":[100000],"runs":10,"seed":1}`
	resp, sub := post(t, ts.URL+"/v1/evaluate", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	// Follow the live stream until the first progress event proves the
	// job is mid-sweep, then cancel.
	stream, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	sawProgress := false
	for sc.Scan() {
		var ev spec.StreamEnd
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Event == "progress" {
			sawProgress = true
			break
		}
		if ev.Event == "done" || ev.Event == "failed" {
			break
		}
	}
	stream.Body.Close()
	if !sawProgress {
		t.Fatal("job finished before any progress event; cannot exercise mid-sweep cancel")
	}
	start := time.Now()
	if resp := del(t, ts.URL, sub.ID); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel = %d, want 202", resp.StatusCode)
	}
	done := waitDone(t, ts.URL, sub.ID)
	if done.Status != StatusCanceled {
		t.Fatalf("status after cancel = %s (%s)", done.Status, done.Error)
	}
	// Promptness: the worker abandons the remaining runs within a couple
	// of in-flight executions, not the many seconds the full sweep needs.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if v := metricValue(t, ts.URL, "macsimd_jobs_canceled_total"); v != 1 {
		t.Fatalf("canceled counter = %v, want 1", v)
	}
	// A canceled job must not poison the cache: resubmitting the same
	// body must be a fresh miss, not a hit on a partial result.
	resp2, _ := post(t, ts.URL+"/v1/evaluate", body)
	if resp2.StatusCode != http.StatusAccepted || resp2.Header.Get("X-Cache") != "miss" {
		t.Fatalf("resubmit after cancel: %d %q", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	if resp := del(t, ts.URL, resp2.Header.Get("Location")[len("/v1/jobs/"):]); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cleanup cancel = %d", resp.StatusCode)
	}
}

// TestCancelQueuedJob: a job canceled while still waiting in the queue
// must never start simulating.
func TestCancelQueuedJob(t *testing.T) {
	s, ts, gate := newTestServer(t, Config{Workers: 1, QueueDepth: 4}, true)

	// Job A blocks the single worker on the gate; job B sits queued.
	_, subA := post(t, ts.URL+"/v1/solve", `{"k":100,"seed":1}`)
	deadline := time.Now().Add(5 * time.Second)
	for metricValue(t, ts.URL, "macsimd_queue_depth") != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued job A")
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, subB := post(t, ts.URL+"/v1/evaluate", `{"protocols":["one-fail"],"ks":[64],"runs":10}`)
	if resp := del(t, ts.URL, subB.ID); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel queued = %d", resp.StatusCode)
	}
	// The canceled job is detached from the in-flight map immediately: an
	// identical resubmission must enqueue fresh work, not coalesce onto
	// the doomed job.
	respB2, subB2 := post(t, ts.URL+"/v1/evaluate", `{"protocols":["one-fail"],"ks":[64],"runs":10}`)
	if respB2.Header.Get("X-Cache") != "miss" || subB2.ID == subB.ID {
		t.Fatalf("resubmit after queued cancel coalesced: X-Cache=%q id=%s (canceled id %s)",
			respB2.Header.Get("X-Cache"), subB2.ID, subB.ID)
	}
	close(gate)
	if v := waitDone(t, ts.URL, subB2.ID); v.Status != StatusDone {
		t.Fatalf("resubmitted job: %s (%s)", v.Status, v.Error)
	}
	if v := waitDone(t, ts.URL, subA.ID); v.Status != StatusDone {
		t.Fatalf("job A: %s (%s)", v.Status, v.Error)
	}
	vB := waitDone(t, ts.URL, subB.ID)
	if vB.Status != StatusCanceled {
		t.Fatalf("queued job after cancel = %s (%s)", vB.Status, vB.Error)
	}
	// The canceled job never simulated: no progress events were
	// published and no slots were accounted beyond job A's.
	j, ok := s.reg.get(subB.ID)
	if !ok {
		t.Fatal("job B missing from registry")
	}
	if events, _, _ := j.snapshot(0); len(events) != 0 {
		t.Fatalf("canceled queued job published %d events", len(events))
	}
	// DELETE of an unknown id is a 404; of a finished job, a no-op 202.
	if resp := del(t, ts.URL, "unknown"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown = %d", resp.StatusCode)
	}
	if resp := del(t, ts.URL, subA.ID); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel finished = %d", resp.StatusCode)
	}
	if v := waitDone(t, ts.URL, subA.ID); v.Status != StatusDone {
		t.Fatalf("finished job flipped status after cancel: %s", v.Status)
	}
}

// TestSubmitKeyMatchesLibraryCanonicalKey: the key the server reports
// for a job is exactly spec.CanonicalKey of the equivalent library
// spec — one hash across front ends.
func TestSubmitKeyMatchesLibraryCanonicalKey(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)
	_, sub := post(t, ts.URL+"/v1/solve", `{"protocol":"ofa","k":123,"seed":9}`)

	es := spec.ForSolve(spec.SolveSpec{Protocol: spec.ProtocolSpec{Name: "one-fail"}, K: 123, Seed: 9})
	if err := es.Validate(limitsWithDefaults(Limits{})); err != nil {
		t.Fatal(err)
	}
	want, err := es.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if sub.Key != want {
		t.Fatalf("server key %s != library key %s", sub.Key, want)
	}
}

// TestArenaServing: POST /v1/arena runs the cross-paper robustness
// arena end to end. The served document — ranking, rendered table and
// CSV — must be byte-identical to what the library produces for the
// same spec, and the canonical key must match the library's, so the
// third front end joins the parity the CLI tests already pin.
func TestArenaServing(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)

	resp, sub := post(t, ts.URL+"/v1/arena",
		`{"protocols":["exp-bb","bkc","jz-robust"],"scenarios":["herd"],"messages":60,"runs":1,"seed":5}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	v := waitDone(t, ts.URL, sub.ID)
	if v.Status != StatusDone {
		t.Fatalf("job status = %s (%s)", v.Status, v.Error)
	}

	es := spec.ForArena(spec.ArenaSpec{
		Protocols: []spec.ProtocolSpec{{Name: "exp-bb"}, {Name: "bk-cascade"}, {Name: "jz-robust"}},
		Scenarios: []string{"herd"},
		Messages:  60,
		Runs:      1,
		Seed:      5,
	})
	if err := es.Validate(limitsWithDefaults(Limits{})); err != nil {
		t.Fatal(err)
	}
	key, err := es.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if sub.Key != key {
		t.Fatalf("server key %s != library key %s", sub.Key, key)
	}

	exec, err := spec.Run(context.Background(), es)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Result()
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res.Document())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v.Result, want) {
		t.Fatalf("served arena document diverges from the library's:\nhttp: %s\nlib:  %s", v.Result, want)
	}

	var doc spec.ArenaResult
	if err := json.Unmarshal(v.Result, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Ranking) != 3 || len(doc.Scenarios) != 1 || doc.Table == "" || doc.CSV == "" {
		t.Fatalf("unexpected arena document shape: %+v", doc)
	}
	for i, e := range doc.Ranking {
		if e.Rank != i+1 {
			t.Fatalf("ranking[%d].Rank = %d, want %d", i, e.Rank, i+1)
		}
	}

	// Bad arena requests are rejected at submit time.
	for _, body := range []string{
		`{"protocols":["nope"]}`,
		`{"protocols":[{"name":"one-fail","params":{"delta":2.9}}]}`,
		`{"scenarios":["nope"]}`,
		`{"lambda":-1}`,
	} {
		resp, _ := post(t, ts.URL+"/v1/arena", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestAdaptivePrecisionServing submits an adaptive-precision evaluate
// request end to end: the result document carries per-cell reps and
// error bars, and the replications the stopping rule saved surface in
// macsimd_reps_saved_total.
func TestAdaptivePrecisionServing(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)

	body := `{"protocols":["exp-bb"],"ks":[200],"precision":{"epsilon":0.3,"confidence":0.9,"minReps":2,"maxReps":40}}`
	_, sub := post(t, ts.URL+"/v1/evaluate", body)
	v := waitDone(t, ts.URL, sub.ID)

	var doc struct {
		Series []struct {
			Cells []struct {
				RepsUsed int     `json:"repsUsed"`
				CI95     float64 `json:"ci95"`
			} `json:"cells"`
		} `json:"series"`
	}
	if err := json.Unmarshal(v.Result, &doc); err != nil {
		t.Fatal(err)
	}
	cell := doc.Series[0].Cells[0]
	if cell.RepsUsed < 2 || cell.RepsUsed >= 40 {
		t.Fatalf("repsUsed = %d, want early stop in [2, 40)", cell.RepsUsed)
	}
	if cell.CI95 <= 0 {
		t.Fatalf("ci95 = %v, want > 0", cell.CI95)
	}
	if got, want := metricValue(t, ts.URL, "macsimd_reps_saved_total"), float64(40-cell.RepsUsed); got != want {
		t.Fatalf("macsimd_reps_saved_total = %v, want %v", got, want)
	}

	// The serving default caps maxReps at 64.
	resp, _ := post(t, ts.URL+"/v1/evaluate", `{"ks":[10],"precision":{"epsilon":0.1,"maxReps":1000}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized maxReps: status %d, want 400", resp.StatusCode)
	}
}
