// Shard routing: with a -peers list configured, the canonical spec-hash
// keyspace is split across the fleet by internal/cluster's consistent-
// hash ring, and a node that receives work it does not own proxies the
// request a single hop to the owner, streaming the response back. The
// route key is the first twelve hex characters of the canonical key —
// exactly the prefix every job id carries — so polls, cancels and
// streams for a foreign job route without any lookup table. The
// X-Forwarded-Node header marks a request as already forwarded: an
// owner never forwards again, so a misconfigured ring degrades to
// serving locally instead of looping.

package server

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"time"
)

// ringPrefixLen is how many hex characters of the canonical key form
// the routing key and the job-id prefix.
const ringPrefixLen = 12

// forwardedHeader marks a proxied request (value: the forwarding node's
// advertise address) and guards against forwarding loops.
const forwardedHeader = "X-Forwarded-Node"

// newProxyClient builds the HTTP client that carries forwarded
// requests: a bounded dial (a dead peer fails fast) but no overall
// timeout, because proxied NDJSON streams legitimately live as long as
// the job runs.
func newProxyClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext:         (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
			MaxIdleConnsPerHost: 16,
		},
	}
}

// forwardTarget decides whether a submit for key must be proxied,
// returning the owning peer. Single-node rings and already-forwarded
// requests always serve locally.
func (s *Server) forwardTarget(r *http.Request, key string) (string, bool) {
	if s.ring == nil || r.Header.Get(forwardedHeader) != "" {
		return "", false
	}
	owner := s.ring.Owner(key[:ringPrefixLen])
	if owner == s.ring.Self() {
		return "", false
	}
	return owner, true
}

// proxyJobRequest forwards a poll, cancel or stream whose job id this
// node does not know and does not own. It reports false when the
// request should be answered locally (404) instead.
func (s *Server) proxyJobRequest(w http.ResponseWriter, r *http.Request, id string) bool {
	if s.ring == nil || len(id) < ringPrefixLen || r.Header.Get(forwardedHeader) != "" {
		return false
	}
	owner := s.ring.Owner(id[:ringPrefixLen])
	if owner == s.ring.Self() {
		return false
	}
	s.proxyTo(w, r, owner, nil)
	return true
}

// proxyTo replays the request against the owning peer and streams the
// response back verbatim — status, headers and body, flushed as it
// arrives so proxied NDJSON streams stay live. body is the already-read
// request body (nil for bodyless methods).
func (s *Server) proxyTo(w http.ResponseWriter, r *http.Request, owner string, body []byte) {
	s.metrics.forwarded.Add(1)
	req, err := http.NewRequestWithContext(r.Context(), r.Method,
		"http://"+owner+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		s.writeJSON(w, http.StatusBadGateway, apiError{Error: fmt.Sprintf("forward to %s: %v", owner, err)})
		return
	}
	for _, h := range []string{"Content-Type", "X-Tenant", "Accept"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	req.Header.Set(forwardedHeader, s.ring.Self())
	resp, err := s.proxyClient.Do(req)
	if err != nil {
		s.writeJSON(w, http.StatusBadGateway, apiError{Error: fmt.Sprintf("forward to owner %s failed: %v", owner, err)})
		return
	}
	defer resp.Body.Close()
	hdr := w.Header()
	for name, values := range resp.Header {
		for _, v := range values {
			hdr.Add(name, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			// io.EOF ends the relay cleanly; anything else means the peer
			// died mid-stream and there is nothing more to relay either.
			return
		}
	}
}
