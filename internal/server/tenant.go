// The tenancy layer: who a request belongs to, whether that tenant may
// enqueue more work right now, and the per-tenant accounting /metrics
// exposes. Identity comes from the X-Tenant header (absent means
// Config.DefaultTenant); admission is a per-tenant token bucket sized
// by Config.Tenants; scheduling fairness between the tenants' sub-
// queues lives in sched.go. The full operator guide is docs/tenancy.md.

package server

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TenantLimits configures one tenant's token-bucket admission control:
// how many fresh jobs per second the tenant may enqueue, and how large
// a burst the bucket absorbs. Cache hits and coalesced duplicates are
// never charged — admission controls new simulation work only.
type TenantLimits struct {
	// Rate is the sustained admission rate in jobs/second; 0 means
	// unlimited (no bucket at all).
	Rate float64
	// Burst is the bucket capacity in jobs; 0 defaults to
	// max(1, ceil(Rate)).
	Burst int
}

// maxTenantStates bounds the distinct tenant identities the server
// tracks; beyond it, new names share the overflowTenant state (and its
// scheduler sub-queue) so an attacker cycling X-Tenant values cannot
// grow memory or metric cardinality without bound.
const maxTenantStates = 1024

// overflowTenant is the shared identity for tenants beyond the bound.
const overflowTenant = "~other"

// tenantFor extracts and validates the request's tenant identity.
func (s *Server) tenantFor(r *http.Request) (string, error) {
	name := r.Header.Get("X-Tenant")
	if name == "" {
		return s.cfg.DefaultTenant, nil
	}
	if len(name) > 64 {
		return "", fmt.Errorf("X-Tenant longer than 64 bytes")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return "", fmt.Errorf("X-Tenant %q: only [A-Za-z0-9._-] allowed", name)
		}
	}
	return name, nil
}

// tenantState is one tenant's admission bucket and counters. States are
// created lazily on first sight and never removed (bounded by
// maxTenantStates).
type tenantState struct {
	name   string
	bucket *bucket // nil = unlimited

	admitted  atomic.Int64 // fresh jobs that entered the queue
	rejected  atomic.Int64 // admissions denied by the token bucket
	status429 atomic.Int64 // all 429 responses (bucket + queue bounds)
	served    atomic.Int64 // jobs that finished successfully
	queued    atomic.Int64 // jobs currently waiting in the sub-queue

	sessionWindows atomic.Int64 // aggregation windows simulated for the tenant's sessions
}

// tenants is the lazily-populated name → *tenantState index.
type tenants struct {
	mu     sync.Mutex
	byName map[string]*tenantState
	limits map[string]TenantLimits // from Config; "*" is the unlisted-tenant default
	now    func() time.Time
}

func newTenants(limits map[string]TenantLimits, now func() time.Time) *tenants {
	return &tenants{byName: make(map[string]*tenantState), limits: limits, now: now}
}

// get returns the tenant's state, creating it on first sight. Past the
// cardinality bound, unseen names collapse onto the overflow state; the
// returned state's name is therefore the one to schedule under.
func (t *tenants) get(name string) *tenantState {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ts, ok := t.byName[name]; ok {
		return ts
	}
	if len(t.byName) >= maxTenantStates {
		name = overflowTenant
		if ts, ok := t.byName[name]; ok {
			return ts
		}
	}
	ts := &tenantState{name: name}
	if lim, ok := t.limits[name]; ok {
		ts.bucket = newBucket(lim, t.now)
	} else if lim, ok := t.limits["*"]; ok {
		ts.bucket = newBucket(lim, t.now)
	}
	t.byName[name] = ts
	return ts
}

// snapshot returns the states sorted by name, for deterministic metric
// rendering.
func (t *tenants) snapshot() []*tenantState {
	t.mu.Lock()
	out := make([]*tenantState, 0, len(t.byName))
	for _, ts := range t.byName {
		out = append(out, ts)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// bucket is a token bucket: capacity `burst`, refilled continuously at
// `rate` tokens/second. take spends one token or reports how long until
// one is available.
type bucket struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// newBucket builds the tenant's bucket; a non-positive rate means
// unlimited and returns nil.
func newBucket(lim TenantLimits, now func() time.Time) *bucket {
	if lim.Rate <= 0 {
		return nil
	}
	burst := float64(lim.Burst)
	if burst <= 0 {
		burst = math.Ceil(lim.Rate)
	}
	if burst < 1 {
		burst = 1
	}
	return &bucket{rate: lim.Rate, burst: burst, now: now, tokens: burst}
}

// take spends one token. When the bucket is empty it reports how long
// until the next token accrues — the per-tenant Retry-After hint.
func (b *bucket) take() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		b.tokens = math.Min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// retryAfterHeader renders a Retry-After duration as whole seconds,
// rounded up with a floor of 1 (a 0 would tell clients to hammer).
func retryAfterHeader(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprint(secs)
}
