package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metrics is the server's counter set, exposed at /metrics in the
// Prometheus text exposition format. All counters are monotone atomics;
// the only derived quantities (cache hit rate, slots simulated per
// second) are computed at scrape time.
type metrics struct {
	// Submission outcomes. Every submit increments exactly one of these.
	cacheHits atomic.Int64 // served from the result cache, zero simulation
	coalesced atomic.Int64 // duplicate of an in-flight job, attached to it
	enqueued  atomic.Int64 // entered the queue as a fresh job (cache miss)
	rejected  atomic.Int64 // bounced with 429: the queue was full
	refused   atomic.Int64 // bounced with 503: the server was draining

	// Job outcomes.
	jobsDone     atomic.Int64
	jobsFailed   atomic.Int64
	jobsCanceled atomic.Int64

	// Work accounting.
	slotsSimulated atomic.Int64 // channel slots simulated across all jobs
	repsSaved      atomic.Int64 // replications adaptive precision stopped short of maxReps

	// Durability (internal/store).
	storeWrites    atomic.Int64 // job records and result documents persisted
	storeReads     atomic.Int64 // records and results read back from the store
	storeRecovered atomic.Int64 // job records replayed by the boot recovery pass
	storeRequeued  atomic.Int64 // recovered jobs put back on the queue

	// Live sessions (internal/session).
	sessionsOpened  atomic.Int64 // sessions accepted by POST /v1/sessions
	sessionWindows  atomic.Int64 // aggregation windows simulated across all sessions
	sessionControls atomic.Int64 // control messages accepted and applied
	sessionDropped  atomic.Int64 // window aggregates dropped by slow-consumer backpressure

	// Clustering (internal/cluster). Zero on single-node deployments.
	forwarded atomic.Int64 // submits proxied to the key's owning peer
	owned     atomic.Int64 // submits this node handled as the key's owner

	// Scrape state for the slots/sec rate: the rate is measured between
	// consecutive scrapes (the usual counter-delta a scraper would
	// compute, precomputed for human readers and the load generator).
	scrapeMu   sync.Mutex
	lastScrape time.Time
	lastSlots  int64
	started    time.Time
}

// hitRate returns cache hits / (hits + fresh enqueues): the fraction of
// cacheable submissions that cost zero simulation time. Coalesced
// duplicates are excluded — they are neither a hit nor a miss, but a
// dedup of a miss in flight.
func (m *metrics) hitRate() float64 {
	hits := m.cacheHits.Load()
	total := hits + m.enqueued.Load()
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// slotsPerSecond returns the slots-simulated rate since the previous
// scrape (since start for the first scrape).
func (m *metrics) slotsPerSecond(now time.Time) float64 {
	m.scrapeMu.Lock()
	defer m.scrapeMu.Unlock()
	slots := m.slotsSimulated.Load()
	since := m.started
	base := int64(0)
	if !m.lastScrape.IsZero() {
		since, base = m.lastScrape, m.lastSlots
	}
	m.lastScrape, m.lastSlots = now, slots
	dt := now.Sub(since).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(slots-base) / dt
}

// render writes the exposition text. Gauges that live outside the
// counter set (queue depth, cache entries, in-flight jobs) are passed in
// by the server.
func (m *metrics) render(now time.Time, gauges map[string]float64) string {
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("macsimd_cache_hits_total", "submissions served from the result cache", m.cacheHits.Load())
	counter("macsimd_cache_misses_total", "submissions that enqueued a fresh job", m.enqueued.Load())
	counter("macsimd_coalesced_total", "submissions attached to an identical in-flight job", m.coalesced.Load())
	counter("macsimd_rejected_total", "submissions bounced with 429 (queue full)", m.rejected.Load())
	counter("macsimd_refused_total", "submissions bounced with 503 (draining)", m.refused.Load())
	counter("macsimd_jobs_completed_total", "jobs that finished successfully", m.jobsDone.Load())
	counter("macsimd_jobs_failed_total", "jobs that finished with an error", m.jobsFailed.Load())
	counter("macsimd_jobs_canceled_total", "jobs retired by DELETE /v1/jobs/{id}", m.jobsCanceled.Load())
	counter("macsimd_slots_simulated_total", "channel slots simulated across all jobs", m.slotsSimulated.Load())
	counter("macsimd_reps_saved_total", "replications adaptive-precision stopping saved against the maxReps worst case", m.repsSaved.Load())
	counter("macsimd_store_writes_total", "job records and result documents persisted to the store", m.storeWrites.Load())
	counter("macsimd_store_reads_total", "records and result documents read back from the store", m.storeReads.Load())
	counter("macsimd_store_recovered_total", "job records replayed by the boot recovery pass", m.storeRecovered.Load())
	counter("macsimd_store_requeued_total", "recovered jobs put back on the queue", m.storeRequeued.Load())
	counter("macsimd_sessions_opened_total", "live sessions accepted by POST /v1/sessions", m.sessionsOpened.Load())
	counter("macsimd_sessions_windows_total", "aggregation windows simulated across all live sessions", m.sessionWindows.Load())
	counter("macsimd_sessions_controls_total", "session control messages accepted and applied", m.sessionControls.Load())
	counter("macsimd_sessions_dropped_total", "session window aggregates dropped by slow-consumer backpressure", m.sessionDropped.Load())
	counter("macsimd_forwarded_total", "submissions proxied to the key's owning peer", m.forwarded.Load())
	counter("macsimd_owned_total", "submissions this node handled as the key's ring owner", m.owned.Load())
	gauge("macsimd_cache_hit_rate", "cache hits / (hits + misses)", m.hitRate())
	gauge("macsimd_slots_simulated_per_second", "slots simulated per second since the previous scrape", m.slotsPerSecond(now))
	// Deterministic order for the caller-supplied gauges.
	names := make([]string, 0, len(gauges))
	for name := range gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		gauge(name, gaugeHelp[name], gauges[name])
	}
	return b.String()
}

// gaugeHelp documents the server-supplied gauges.
var gaugeHelp = map[string]string{
	"macsimd_queue_depth":     "jobs waiting across all tenant sub-queues",
	"macsimd_queue_capacity":  "bound on queued jobs before 429",
	"macsimd_workers":         "pool workers",
	"macsimd_jobs_inflight":   "jobs queued or running",
	"macsimd_jobs_running":    "jobs currently executing",
	"macsimd_cache_entries":   "entries resident in the result cache",
	"macsimd_sessions_active": "live sessions currently running",
}

// renderTenants writes the per-tenant metric families, one labeled
// sample per tenant under each family's shared HELP/TYPE header. The
// snapshot arrives sorted by name so output is deterministic.
func renderTenants(states []*tenantState) string {
	if len(states) == 0 {
		return ""
	}
	var b strings.Builder
	family := func(name, typ, help string, value func(*tenantState) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, ts := range states {
			fmt.Fprintf(&b, "%s{tenant=%q} %d\n", name, ts.name, value(ts))
		}
	}
	family("macsimd_tenant_admitted_total", "counter",
		"fresh jobs admitted to the tenant's sub-queue",
		func(ts *tenantState) int64 { return ts.admitted.Load() })
	family("macsimd_tenant_rejected_total", "counter",
		"admissions denied by the tenant's token bucket",
		func(ts *tenantState) int64 { return ts.rejected.Load() })
	family("macsimd_tenant_429_total", "counter",
		"all 429 responses to the tenant (bucket, tenant queue share, global queue)",
		func(ts *tenantState) int64 { return ts.status429.Load() })
	family("macsimd_tenant_served_total", "counter",
		"tenant jobs that finished successfully",
		func(ts *tenantState) int64 { return ts.served.Load() })
	family("macsimd_tenant_session_windows_total", "counter",
		"aggregation windows simulated for the tenant's live sessions",
		func(ts *tenantState) int64 { return ts.sessionWindows.Load() })
	family("macsimd_tenant_queued", "gauge",
		"tenant jobs currently waiting in the sub-queue",
		func(ts *tenantState) int64 { return ts.queued.Load() })
	return b.String()
}
