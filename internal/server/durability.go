// The durability layer: every job-state transition and every published
// result writes through Config.Store, and a recovery pass on boot
// replays the store back into the queue, so an accepted job survives
// kill -9 of the daemon. With the default in-memory store this is
// byte-for-byte the old single-process behavior (records die with the
// process); with a file-backed store (-data-dir) the contract becomes:
//
//   - a submit is answered 202 only after its queued record is durable;
//   - a worker takes a job under a lease (running record with a
//     deadline); a running record whose lease expired belongs to a
//     dead process;
//   - a result is fsynced under its canonical key before the job's
//     terminal record — crashing between the two re-runs the job,
//     which re-derives the identical bytes (every simulation is
//     deterministic in its spec), so the content-addressed rewrite is
//     a no-op;
//   - boot recovery re-registers terminal records for polling,
//     requeues queued records as-is, requeues lease-expired running
//     records with Retries+1 (failed beyond MaxRetries), and defers
//     still-leased running records until their lease expires.
//
// docs/durability.md is the operator guide.

package server

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/spec"
	"repro/internal/store"
)

// putJobRecord persists the job's current state. Record writes for one
// job serialize on j.storeMu, so the store always converges to the
// latest snapshot even when submit, worker and cancel race. Store
// errors leave the in-memory job authoritative — the server keeps
// serving; durability degrades to the in-memory contract.
func (s *Server) putJobRecord(j *job) {
	j.storeMu.Lock()
	defer j.storeMu.Unlock()
	rec := j.record(s.cfg.now().Add(s.cfg.LeaseDuration))
	if err := s.store.PutJob(rec); err == nil {
		s.metrics.storeWrites.Add(1)
	}
}

// publishResult durably publishes a completed job's result document
// under its canonical key, then installs it in the memory tier. Store
// first: a crash between the two leaves the result on disk and the
// job's record running, so recovery re-runs the job and the rewrite is
// a content-addressed no-op.
func (s *Server) publishResult(key string, doc []byte) {
	if err := s.store.PutResult(key, doc); err == nil {
		s.metrics.storeWrites.Add(1)
	}
	s.cache.put(key, doc)
}

// persistCanceled persists cancellation of a job that was already
// running (or already terminal): the record is rewritten as canceled
// right away, so a crash before the worker observes the context
// cancellation cannot resurrect the job at the next boot. If the job
// beat the cancel and finished, the snapshot is already terminal and is
// persisted as-is; either way the worker's own terminal write (ordered
// behind this one by storeMu) converges the record to in-memory truth.
func (s *Server) persistCanceled(j *job) {
	j.storeMu.Lock()
	defer j.storeMu.Unlock()
	rec := j.record(s.cfg.now().Add(s.cfg.LeaseDuration))
	if !store.TerminalStatus(rec.Status) {
		rec.Status = store.StatusCanceled
		rec.Error = context.Canceled.Error()
		rec.LeaseUntil = time.Time{}
		if rec.Finished.IsZero() {
			rec.Finished = s.cfg.now()
		}
	}
	if err := s.store.PutJob(rec); err == nil {
		s.metrics.storeWrites.Add(1)
	}
}

// dropEvicted deletes the store records of jobs the poll registry just
// evicted: the registry and the store retire terminal jobs together,
// bounding the data-dir the same way JobsRetained bounds memory.
// (Result documents are content-addressed and kept — they are the
// persistent cache, not per-job state.)
func (s *Server) dropEvicted(ids []string) {
	for _, id := range ids {
		_ = s.store.DeleteJob(id)
	}
}

// recoverJobs is the boot recovery pass: replay every persisted record
// into the registry, the in-flight map and (for unfinished work) the
// queue. It runs before the HTTP mux serves and before the worker pool
// starts, so recovered jobs obey the same scheduling as fresh ones.
func (s *Server) recoverJobs() {
	recs, err := s.store.Jobs()
	if err != nil || len(recs) == 0 {
		return
	}
	now := s.cfg.now()
	maxSeq := int64(0)
	for _, rec := range recs {
		s.metrics.storeRecovered.Add(1)
		if seq := idSequence(rec.ID); seq > maxSeq {
			maxSeq = seq
		}
		switch {
		case store.TerminalStatus(rec.Status):
			s.registerTerminal(rec)
		case rec.Status == store.StatusQueued:
			s.requeueRecovered(rec, false)
		case rec.Status == store.StatusRunning:
			if rec.LeaseUntil.After(now) {
				// The lease has not expired: honor it, then reclaim.
				s.deferRecovered(rec, rec.LeaseUntil.Sub(now))
			} else {
				s.requeueRecovered(rec, true)
			}
		}
	}
	// Fresh job ids continue after the recovered ones, so a recovered
	// "abcdef-3" can never collide with a new job under the same key.
	if cur := s.seq.Load(); maxSeq > cur {
		s.seq.Store(maxSeq)
	}
}

// idSequence parses the trailing "-N" of a job id (ids are
// key-prefix-sequence); 0 when absent.
func idSequence(id string) int64 {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.ParseInt(id[i+1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// registerTerminal rebuilds a finished job for the poll registry: a
// restart must report drained work as done, not lost. Done records
// re-attach their result document from the result store (and warm the
// memory tier with it).
func (s *Server) registerTerminal(rec store.JobRecord) {
	j := jobShell(rec)
	j.status = JobStatus(rec.Status)
	j.errMsg = rec.Error
	if j.status == StatusDone {
		if doc, ok, err := s.store.GetResult(rec.Key); err == nil && ok {
			s.metrics.storeReads.Add(1)
			j.result = doc
			s.cache.put(rec.Key, doc)
		}
	}
	s.mu.Lock()
	evicted := s.reg.add(j)
	s.mu.Unlock()
	s.dropEvicted(evicted)
}

// jobShell builds the common in-memory frame of a recovered job.
func jobShell(rec store.JobRecord) *job {
	j := newJob(rec.ID, spec.ExperimentSpec{Kind: spec.ExperimentKind(rec.Kind)}, rec.Key)
	j.kind = rec.Kind
	j.params = rec.Params
	j.tenant = rec.Tenant
	j.retries = rec.Retries
	if !rec.Created.IsZero() {
		j.created = rec.Created
	}
	j.started = rec.Started
	j.finished = rec.Finished
	return j
}

// rebuildJob reconstructs a runnable job from its record: decode the
// canonical parameter document, revalidate (which also recomputes the
// scheduler's cost classification) and wire a fresh context.
func (s *Server) rebuildJob(rec store.JobRecord) (*job, error) {
	es, err := spec.Decode(spec.ExperimentKind(rec.Kind), rec.Params)
	if err != nil {
		return nil, err
	}
	if err := es.Validate(s.cfg.Limits); err != nil {
		return nil, err
	}
	j := jobShell(rec)
	j.spec = es
	if j.tenant == "" {
		j.tenant = s.cfg.DefaultTenant
	}
	j.cost = costUnits(es.EstimatedCost(), int64(s.cfg.Limits.InteractiveThreshold()))
	j.interactive = es.Interactive(s.cfg.Limits)
	return j, nil
}

// requeueRecovered puts one unfinished record back on the queue.
// expired marks a lease-expired running record: the requeue costs a
// retry, and a record over MaxRetries is failed instead of looping a
// poisonous job forever. Recovery bypasses admission (token buckets,
// queue bounds): this work was admitted in a previous life.
func (s *Server) requeueRecovered(rec store.JobRecord, expired bool) {
	if expired {
		rec.Retries++
		if rec.Retries > s.cfg.MaxRetries {
			s.failRecovered(rec, fmt.Sprintf("lease expired; gave up after %d retries (-max-retries)", s.cfg.MaxRetries))
			return
		}
	}
	j, err := s.rebuildJob(rec)
	if err != nil {
		s.failRecovered(rec, fmt.Sprintf("unrecoverable job record: %v", err))
		return
	}
	s.enqueueRecovered(j)
}

// enqueueRecovered publishes a rebuilt job exactly like a fresh
// admit — registry, in-flight map, tenant gauge, queue — but through
// the pool's force path, which ignores the global capacity bound.
func (s *Server) enqueueRecovered(j *job) {
	ts := s.tenants.get(j.tenant)
	s.mu.Lock()
	s.pool.force(j)
	ts.queued.Add(1)
	s.inflight[j.key] = j
	evicted := s.reg.add(j)
	s.mu.Unlock()
	s.dropEvicted(evicted)
	s.metrics.storeRequeued.Add(1)
	s.putJobRecord(j)
}

// failRecovered terminates an unrecoverable record: persisted as
// failed, registered for polling, never executed.
func (s *Server) failRecovered(rec store.JobRecord, msg string) {
	rec.Status = store.StatusFailed
	rec.Error = msg
	rec.LeaseUntil = time.Time{}
	if rec.Finished.IsZero() {
		rec.Finished = s.cfg.now()
	}
	if err := s.store.PutJob(rec); err == nil {
		s.metrics.storeWrites.Add(1)
	}
	s.metrics.jobsFailed.Add(1)
	s.registerTerminal(rec)
}

// deferRecovered honors a still-live lease found at boot: the job is
// registered (pollable, status queued) but only enters the queue when
// the lease expires — at which point the previous owner is declared
// dead and the requeue costs a retry, exactly like a lease found
// expired. The timer is dropped by Close.
func (s *Server) deferRecovered(rec store.JobRecord, wait time.Duration) {
	j, err := s.rebuildJob(rec)
	if err != nil {
		s.failRecovered(rec, fmt.Sprintf("unrecoverable job record: %v", err))
		return
	}
	s.mu.Lock()
	s.inflight[j.key] = j
	evicted := s.reg.add(j)
	timer := time.AfterFunc(wait, func() {
		j.mu.Lock()
		stillQueued := j.status == StatusQueued
		j.mu.Unlock()
		if !stillQueued {
			return // canceled while deferred
		}
		j.retries++
		if j.retries > s.cfg.MaxRetries {
			j.finish(nil, fmt.Errorf("lease expired; gave up after %d retries (-max-retries)", s.cfg.MaxRetries))
			s.metrics.jobsFailed.Add(1)
			s.putJobRecord(j)
			s.retire(j)
			return
		}
		ts := s.tenants.get(j.tenant)
		s.mu.Lock()
		s.pool.force(j)
		ts.queued.Add(1)
		s.mu.Unlock()
		s.metrics.storeRequeued.Add(1)
		s.putJobRecord(j)
	})
	s.timers = append(s.timers, timer)
	s.mu.Unlock()
	s.dropEvicted(evicted)
}

// flushJobs persists the current state of every registered job — the
// final barrier of a graceful drain. After a clean drain every job is
// terminal and this re-asserts it durably; after a drain that timed
// out it makes the still-queued and still-running jobs' records
// current, so the restart requeues exactly what was in flight.
func (s *Server) flushJobs() {
	for _, j := range s.reg.all() {
		s.putJobRecord(j)
	}
}
