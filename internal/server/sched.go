// The weighted-fair scheduler: deficit round-robin (DRR) over
// per-tenant sub-queues, replacing the single global FIFO. Each tenant
// with pending jobs owns a slot in the active ring; a pop visits
// tenants in ring order, crediting each visit with quantum × weight
// cost units and serving the tenant's head job once its accumulated
// deficit covers the job's cost. Served cost per tenant is therefore
// proportional to its weight over any busy interval — the classic DRR
// guarantee — while a single-tenant server degenerates to plain FIFO.
//
// This mirrors the paper's fairness-without-starvation goal one layer
// up: stations sharing one channel become tenants sharing one worker
// pool, and DRR plays the role the adaptive transmission probabilities
// play on the channel — every backlogged participant gets a bounded
// share, none can be starved by a burst from another.
//
// Within a tenant, the optional priority lane (Config.PriorityLane)
// serves interactive jobs — cost-classified by the spec layer — before
// batch jobs, so a tenant's own small queries are not stuck behind its
// own sweeps. The lane never affects cross-tenant shares: a job's cost
// is charged against the deficit regardless of lane.

package server

import "sync"

// maxCostUnits caps one job's DRR cost so a pop needs at most this many
// ring passes; beyond the cap a huge sweep is "only" 64× a small query,
// which is plenty of skew for fairness accounting.
const maxCostUnits = 64

// costUnits converts a spec-layer cost estimate into DRR units:
// interactive-scale jobs cost 1, larger jobs proportionally more,
// capped at maxCostUnits. unit is the interactive threshold.
func costUnits(estimated, unit int64) int64 {
	if unit <= 0 {
		unit = 1
	}
	u := 1 + estimated/unit
	if u > maxCostUnits {
		u = maxCostUnits
	}
	return u
}

// scheduler is the DRR queue set. All methods are safe for concurrent
// use; the mutex spans whole pop decisions, which is fine at job
// granularity (jobs are milliseconds of simulation, not packets).
type scheduler struct {
	priority bool
	weights  map[string]int // tenant → weight; unlisted = 1

	mu      sync.Mutex
	tenants map[string]*tenantQueue
	ring    []*tenantQueue // tenants with pending jobs, round-robin order
	cursor  int
}

// tenantQueue is one tenant's sub-queue: two FIFO lanes (interactive,
// batch) and the DRR deficit counter.
type tenantQueue struct {
	name    string
	weight  int64
	deficit int64
	lanes   [2][]*job // 0 = interactive (priority lane), 1 = batch
}

func newScheduler(weights map[string]int, priority bool) *scheduler {
	return &scheduler{
		priority: priority,
		weights:  weights,
		tenants:  make(map[string]*tenantQueue),
	}
}

// push enqueues a job under its tenant, activating the sub-queue at the
// back of the ring if it was idle.
func (s *scheduler) push(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tq, ok := s.tenants[j.tenant]
	if !ok {
		w := int64(s.weights[j.tenant])
		if w < 1 {
			w = 1
		}
		tq = &tenantQueue{name: j.tenant, weight: w}
		s.tenants[j.tenant] = tq
	}
	lane := 1
	if s.priority && j.interactive {
		lane = 0
	}
	if tq.empty() {
		s.ring = append(s.ring, tq)
	}
	tq.lanes[lane] = append(tq.lanes[lane], j)
}

// pop dequeues the next job by deficit round-robin, or nil when every
// sub-queue is empty. Each full ring pass credits every active tenant
// weight cost units (quantum 1), so the loop terminates within
// maxCostUnits passes.
func (s *scheduler) pop() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.ring) > 0 {
		if s.cursor >= len(s.ring) {
			s.cursor = 0
		}
		tq := s.ring[s.cursor]
		j := tq.head()
		if tq.deficit < j.cost {
			tq.deficit += tq.weight
			s.cursor++
			continue
		}
		tq.deficit -= j.cost
		tq.popHead()
		if tq.empty() {
			// An idle tenant keeps no credit: deficits only accumulate
			// while backlogged, the standard DRR anti-hoarding rule.
			tq.deficit = 0
			s.ring = append(s.ring[:s.cursor], s.ring[s.cursor+1:]...)
		}
		return j
	}
	return nil
}

// depth reports jobs pending for one tenant (both lanes).
func (s *scheduler) depth(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	tq, ok := s.tenants[tenant]
	if !ok {
		return 0
	}
	return len(tq.lanes[0]) + len(tq.lanes[1])
}

func (t *tenantQueue) empty() bool { return len(t.lanes[0]) == 0 && len(t.lanes[1]) == 0 }

// head returns the next job without removing it: interactive lane
// first. Caller guarantees the queue is non-empty.
func (t *tenantQueue) head() *job {
	if len(t.lanes[0]) > 0 {
		return t.lanes[0][0]
	}
	return t.lanes[1][0]
}

func (t *tenantQueue) popHead() {
	lane := 1
	if len(t.lanes[0]) > 0 {
		lane = 0
	}
	t.lanes[lane][0] = nil
	t.lanes[lane] = t.lanes[lane][1:]
}
