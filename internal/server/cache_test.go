package server

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/spec"
)

func TestCacheGetPut(t *testing.T) {
	c := newCache(64)
	if _, ok := c.get("missing"); ok {
		t.Fatal("empty cache returned a value")
	}
	c.put("a", json.RawMessage(`1`))
	v, ok := c.get("a")
	if !ok || string(v) != "1" {
		t.Fatalf("get(a) = %s, %v", v, ok)
	}
	c.put("a", json.RawMessage(`2`))
	if v, _ := c.get("a"); string(v) != "2" {
		t.Fatalf("refresh lost: %s", v)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// One entry per shard: inserting two keys in the same shard must
	// evict the least recently used.
	c := newCache(cacheShards)
	shard := c.shardFor("x0")
	var same []string
	for i := 0; len(same) < 3; i++ {
		key := fmt.Sprintf("x%d", i)
		if c.shardFor(key) == shard {
			same = append(same, key)
		}
	}
	c.put(same[0], json.RawMessage(`0`))
	c.put(same[1], json.RawMessage(`1`)) // evicts same[0]
	if _, ok := c.get(same[0]); ok {
		t.Fatal("LRU entry survived over-capacity insert")
	}
	if _, ok := c.get(same[1]); !ok {
		t.Fatal("fresh entry evicted")
	}
	// A get promotes: after touching same[1], inserting same[2] still
	// evicts... with capacity 1 the only resident is evicted regardless;
	// use the promotion path at capacity 2 instead.
	c2 := newCache(2 * cacheShards)
	c2.put(same[0], json.RawMessage(`0`))
	c2.put(same[1], json.RawMessage(`1`))
	c2.get(same[0]) // promote the older entry
	c2.put(same[2], json.RawMessage(`2`))
	if _, ok := c2.get(same[0]); !ok {
		t.Fatal("promoted entry was evicted")
	}
	if _, ok := c2.get(same[1]); ok {
		t.Fatal("unpromoted entry survived")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newCache(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%97)
				c.put(key, json.RawMessage(fmt.Sprintf("%d", i)))
				c.get(key)
			}
		}(w)
	}
	wg.Wait()
	if c.len() == 0 || c.len() > 97 {
		t.Fatalf("len = %d after concurrent churn", c.len())
	}
}

func TestCacheEvictionRacesPublish(t *testing.T) {
	// One entry per shard: every insert of a new key evicts, so the
	// eviction path runs constantly while a publisher refreshes and
	// reads one hot key. Under -race this exercises eviction against
	// concurrent publish; functionally, a read after a publish must
	// return either the exact published bytes or a clean miss (the
	// evictor got there first) — never a torn or stale value.
	c := newCache(cacheShards)
	stop := make(chan struct{})

	// Evictors: flood unique keys through every shard until told to stop.
	var evictors sync.WaitGroup
	for w := 0; w < 4; w++ {
		evictors.Add(1)
		go func(w int) {
			defer evictors.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.put(fmt.Sprintf("churn-%d-%d", w, i), json.RawMessage(`0`))
			}
		}(w)
	}
	// Publishers: each owns a hot key, republishing a changing value and
	// checking every read against the last value it published.
	var publishers sync.WaitGroup
	errc := make(chan error, 4)
	for w := 0; w < 4; w++ {
		publishers.Add(1)
		go func(w int) {
			defer publishers.Done()
			key := fmt.Sprintf("hot-%d", w)
			for i := 0; i < 3000; i++ {
				want := fmt.Sprintf(`{"v":%d}`, i)
				c.put(key, json.RawMessage(want))
				got, ok := c.get(key)
				if ok && string(got) != want {
					errc <- fmt.Errorf("key %s: read %s after publishing %s", key, got, want)
					return
				}
			}
		}(w)
	}
	publishers.Wait()
	close(stop)
	evictors.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if c.len() > cacheShards {
		t.Fatalf("cache grew past its bound: %d > %d", c.len(), cacheShards)
	}
}

func TestCanonicalKeyStability(t *testing.T) {
	norm := func(t *testing.T, es spec.ExperimentSpec) string {
		t.Helper()
		if err := es.Validate(limitsWithDefaults(Limits{})); err != nil {
			t.Fatal(err)
		}
		key, err := es.CanonicalKey()
		if err != nil {
			t.Fatal(err)
		}
		return key
	}

	// Alias and canonical name hash identically; so do implicit and
	// explicit defaults.
	a := norm(t, spec.ForSolve(spec.SolveSpec{Protocol: spec.ProtocolSpec{Name: "ofa"}, K: 500, Seed: 7}))
	b := norm(t, spec.ForSolve(spec.SolveSpec{Protocol: spec.ProtocolSpec{Name: "one-fail"}, K: 500, Seed: 7}))
	if a != b {
		t.Fatal("alias and canonical name hash differently")
	}
	c := norm(t, spec.ForSolve(spec.SolveSpec{}))
	d := norm(t, spec.ForSolve(spec.SolveSpec{Protocol: spec.ProtocolSpec{Name: "one-fail"}, K: 1000, Seed: 1}))
	if c != d {
		t.Fatal("defaults and explicit defaults hash differently")
	}

	// Different parameters and different kinds must not collide.
	x := norm(t, spec.ForSolve(spec.SolveSpec{Seed: 2}))
	y := norm(t, spec.ForSolve(spec.SolveSpec{Seed: 3}))
	if x == y {
		t.Fatal("different seeds collide")
	}
	tp := norm(t, spec.ForThroughput(spec.ThroughputSpec{Lambdas: []float64{0.1}, Messages: 100, Runs: 1}))
	sc := norm(t, spec.ForScenario(spec.ThroughputSpec{Lambdas: []float64{0.1}, Messages: 100, Runs: 1}))
	if tp == sc {
		t.Fatal("throughput and scenario kinds collide")
	}
	// Shape aliases canonicalize before hashing.
	s1 := norm(t, spec.ForThroughput(spec.ThroughputSpec{Shape: "burst"}))
	s2 := norm(t, spec.ForThroughput(spec.ThroughputSpec{Shape: "bursty"}))
	if s1 != s2 {
		t.Fatal("shape aliases hash differently")
	}
}
