package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// postAs submits body for a tenant (empty = no X-Tenant header).
func postAs(t *testing.T, url, tenant, body string) (*http.Response, submitResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sub submitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
	}
	return resp, sub
}

// labeledMetric extracts one {tenant="..."} sample from /metrics.
func labeledMetric(t *testing.T, base, name, tenant string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	prefix := fmt.Sprintf("%s{tenant=%q} ", name, tenant)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), prefix); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("parsing %s: %v", sc.Text(), err)
			}
			return v
		}
	}
	t.Fatalf("metric %s for tenant %q not found", name, tenant)
	return 0
}

// TestTenantBucket429 drives a tenant into its token bucket under a
// fake clock: admissions past the burst answer 429 with a bucket-derived
// Retry-After, while cache hits stay free and other tenants are
// untouched.
func TestTenantBucket429(t *testing.T) {
	// The fake clock is read by worker goroutines too (lease stamping on
	// job records), so it must be safe against the test's advances.
	var clockMu sync.Mutex
	now := time.Unix(1000, 0)
	advance := func(d time.Duration) {
		clockMu.Lock()
		now = now.Add(d)
		clockMu.Unlock()
	}
	_, ts, _ := newTestServer(t, Config{
		Tenants: map[string]TenantLimits{"metered": {Rate: 0.5, Burst: 2}},
		now: func() time.Time {
			clockMu.Lock()
			defer clockMu.Unlock()
			return now
		},
	}, false)

	// Two fresh submits fit the burst.
	for i := 0; i < 2; i++ {
		resp, sub := postAs(t, ts.URL+"/v1/solve", "metered", fmt.Sprintf(`{"k":%d,"seed":1}`, 100+i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d, want 202", i, resp.StatusCode)
		}
		waitDone(t, ts.URL, sub.ID)
	}
	// The third is denied: rate 0.5/s with an empty bucket → next token
	// in 2s, surfaced as Retry-After.
	resp, _ := postAs(t, ts.URL+"/v1/solve", "metered", `{"k":102,"seed":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want 2 (empty bucket at 0.5 tokens/s)", ra)
	}
	// A cache hit costs no token: the empty bucket must not block it.
	resp, _ = postAs(t, ts.URL+"/v1/solve", "metered", `{"k":100,"seed":1}`)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("cache hit while bucket empty = %d %q, want 200 hit",
			resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	// Unlisted tenants have no bucket.
	if resp, _ := postAs(t, ts.URL+"/v1/solve", "free", `{"k":103,"seed":1}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("unlimited tenant = %d, want 202", resp.StatusCode)
	}
	// Advancing the clock refills the bucket.
	advance(2 * time.Second)
	if resp, _ := postAs(t, ts.URL+"/v1/solve", "metered", `{"k":104,"seed":1}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after refill = %d, want 202", resp.StatusCode)
	}

	if v := labeledMetric(t, ts.URL, "macsimd_tenant_admitted_total", "metered"); v != 3 {
		t.Fatalf("admitted = %v, want 3", v)
	}
	if v := labeledMetric(t, ts.URL, "macsimd_tenant_rejected_total", "metered"); v != 1 {
		t.Fatalf("rejected = %v, want 1", v)
	}
	if v := labeledMetric(t, ts.URL, "macsimd_tenant_429_total", "metered"); v != 1 {
		t.Fatalf("429 total = %v, want 1", v)
	}
	if v := labeledMetric(t, ts.URL, "macsimd_tenant_429_total", "free"); v != 0 {
		t.Fatalf("free tenant 429 total = %v, want 0", v)
	}
}

// TestTenantQueueShare429 pins TenantQueueDepth: one tenant at its
// share answers 429 while another tenant still enqueues freely.
func TestTenantQueueShare429(t *testing.T) {
	_, ts, gate := newTestServer(t, Config{Workers: 1, QueueDepth: 16, TenantQueueDepth: 2}, true)
	defer close(gate)

	// Hog's first job is dequeued by the single worker and blocks on the
	// gate (it stays counted in the tenant's share until it executes);
	// one more fills the share of 2.
	postAs(t, ts.URL+"/v1/solve", "hog", `{"k":100,"seed":1}`)
	postAs(t, ts.URL+"/v1/solve", "hog", `{"k":101,"seed":1}`)
	deadline := time.Now().Add(5 * time.Second)
	for labeledMetric(t, ts.URL, "macsimd_tenant_queued", "hog") != 2 {
		if time.Now().After(deadline) {
			t.Fatal("hog jobs never reached the queue")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, _ := postAs(t, ts.URL+"/v1/solve", "hog", `{"k":102,"seed":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-share submit = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	// The global queue has room: another tenant is unaffected.
	if resp, _ := postAs(t, ts.URL+"/v1/solve", "quiet", `{"k":103,"seed":1}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant while hog is bounded = %d, want 202", resp.StatusCode)
	}
	if v := labeledMetric(t, ts.URL, "macsimd_tenant_429_total", "hog"); v != 1 {
		t.Fatalf("hog 429 total = %v, want 1", v)
	}
	// Share rejections are not bucket rejections.
	if v := labeledMetric(t, ts.URL, "macsimd_tenant_rejected_total", "hog"); v != 0 {
		t.Fatalf("hog bucket-rejected = %v, want 0", v)
	}
}

// TestTrickleTenantNotStarved is the fairness acceptance test at the
// scheduling layer: with tenant A's backlog deep and tenant B
// submitting one job, DRR serves B within two job completions — not
// after A's entire backlog.
func TestTrickleTenantNotStarved(t *testing.T) {
	s, ts, gate := newTestServer(t, Config{Workers: 1, QueueDepth: 64}, true)

	// A's first job occupies the worker (blocked on the gate); five more
	// pile up in A's sub-queue. Then B submits one job.
	const heavyBacklog = 5
	postAs(t, ts.URL+"/v1/solve", "heavy", `{"k":100,"seed":1}`)
	for i := 0; i < heavyBacklog; i++ {
		resp, _ := postAs(t, ts.URL+"/v1/solve", "heavy", fmt.Sprintf(`{"k":%d,"seed":1}`, 101+i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("heavy submit %d = %d", i, resp.StatusCode)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.depth() != heavyBacklog {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth = %d, want %d", s.pool.depth(), heavyBacklog)
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, subB := postAs(t, ts.URL+"/v1/solve", "small", `{"k":50,"seed":1}`)

	// Release exactly three jobs: the blocked heavy job, then — by the
	// equal-weight DRR alternation — at most one more heavy job before
	// B's. A FIFO would need heavyBacklog+1 releases.
	for i := 0; i < 3; i++ {
		gate <- struct{}{}
	}
	if v := waitDone(t, ts.URL, subB.ID); v.Status != StatusDone {
		t.Fatalf("small tenant's job: %s (%s)", v.Status, v.Error)
	}
	if d := s.pool.sched.depth("heavy"); d < heavyBacklog-2 {
		t.Fatalf("heavy backlog = %d after 3 releases, want ≥ %d still queued", d, heavyBacklog-2)
	}
	close(gate)
}

// TestPriorityLaneWithinTenant: with the lane on, a tenant's
// interactive job overtakes its own earlier batch jobs.
func TestPriorityLaneWithinTenant(t *testing.T) {
	s, ts, gate := newTestServer(t, Config{Workers: 1, QueueDepth: 64, PriorityLane: true}, true)

	// The first batch job occupies the worker; a second waits in the
	// batch lane. The evaluate sweep is far over the default interactive
	// threshold; the k=50 solve is far under it.
	const batch = `{"protocols":["one-fail"],"ks":[10000],"runs":3,"seed":%d}`
	postAs(t, ts.URL+"/v1/evaluate", "team", fmt.Sprintf(batch, 1))
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.running.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the first batch job")
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, subBatch := postAs(t, ts.URL+"/v1/evaluate", "team", fmt.Sprintf(batch, 2))
	_, subSmall := postAs(t, ts.URL+"/v1/solve", "team", `{"k":50,"seed":1}`)

	// Two releases: the running batch job, then the next pop — which
	// must be the interactive job, queued later or not.
	gate <- struct{}{}
	gate <- struct{}{}
	if v := waitDone(t, ts.URL, subSmall.ID); v.Status != StatusDone {
		t.Fatalf("interactive job: %s (%s)", v.Status, v.Error)
	}
	if j, ok := s.reg.get(subBatch.ID); !ok {
		t.Fatal("batch job missing from registry")
	} else if _, _, status := j.snapshot(0); status != StatusQueued {
		t.Fatalf("batch job status = %s, want still queued behind the lane", status)
	}
	close(gate)
	waitDone(t, ts.URL, subBatch.ID)
}

// TestTenantHeaderValidation: malformed identities are 400s before any
// work happens.
func TestTenantHeaderValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)
	for _, bad := range []string{"bad tenant", "a/b", strings.Repeat("x", 65)} {
		resp, _ := postAs(t, ts.URL+"/v1/solve", bad, `{"k":100,"seed":1}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("X-Tenant %q = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestDefaultTenantUnchanged: without tenancy config or X-Tenant
// headers, responses and metrics look exactly like the single-tenant
// server, with the default tenant carrying all accounting.
func TestDefaultTenantUnchanged(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)
	resp, sub := post(t, ts.URL+"/v1/solve", `{"k":80,"seed":2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	waitDone(t, ts.URL, sub.ID)
	if v := labeledMetric(t, ts.URL, "macsimd_tenant_admitted_total", "default"); v != 1 {
		t.Fatalf("default tenant admitted = %v, want 1", v)
	}
	if v := labeledMetric(t, ts.URL, "macsimd_tenant_served_total", "default"); v != 1 {
		t.Fatalf("default tenant served = %v, want 1", v)
	}
	if v := labeledMetric(t, ts.URL, "macsimd_tenant_queued", "default"); v != 0 {
		t.Fatalf("default tenant queued = %v, want 0", v)
	}
}
