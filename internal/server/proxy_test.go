package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/spec"
)

// startNode boots a Server on a real listener whose address doubles as
// its ring advertise address, returning the server and its base URL.
// The listeners must exist before New because ring membership is the
// set of bound addresses.
func startNode(t *testing.T, ln net.Listener, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	t.Cleanup(func() {
		_ = httpSrv.Close()
		s.Close()
	})
	return s, "http://" + ln.Addr().String()
}

// twoNodes boots a 2-node fleet over fresh listeners and returns both
// servers with their base URLs.
func twoNodes(t *testing.T) (s1, s2 *Server, url1, url2 string) {
	t.Helper()
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := []string{ln1.Addr().String(), ln2.Addr().String()}
	s1, url1 = startNode(t, ln1, Config{Peers: peers, SelfAddr: peers[0], Workers: 2})
	s2, url2 = startNode(t, ln2, Config{Peers: peers, SelfAddr: peers[1], Workers: 2})
	return s1, s2, url1, url2
}

// bodyOwnedBy finds a small solve body whose canonical key the given
// node owns, by walking seeds.
func bodyOwnedBy(t *testing.T, s *Server, want string) string {
	t.Helper()
	for seed := 1; seed < 200; seed++ {
		body := fmt.Sprintf(`{"k":60,"seed":%d}`, seed)
		key, _ := specParts(t, spec.KindSolve, body)
		if s.ring.Owner(key[:ringPrefixLen]) == want {
			return body
		}
	}
	t.Fatal("no seed landed on the wanted owner in 200 tries")
	return ""
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := New(Config{Peers: []string{"a:1", "b:2"}, SelfAddr: "c:3"}); err == nil {
		t.Fatal("self outside the peer list accepted")
	}
	if _, err := New(Config{Peers: []string{"a:1", "a:1"}, SelfAddr: "a:1"}); err == nil {
		t.Fatal("duplicate peers accepted")
	}
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.ring != nil {
		t.Fatal("peerless config built a ring")
	}
}

func TestClusterForwardsSubmitToOwner(t *testing.T) {
	s1, s2, url1, url2 := twoNodes(t)
	body := bodyOwnedBy(t, s1, s2.ring.Self())

	// Submitting to the non-owner proxies one hop; the job runs on the
	// owner and the 202 streams back through the front node.
	resp, sub := post(t, url1+"/v1/solve", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("forwarded submit = %d", resp.StatusCode)
	}
	if got := s1.metrics.forwarded.Load(); got != 1 {
		t.Fatalf("node1 forwarded = %d, want 1", got)
	}
	if got := s2.metrics.owned.Load(); got != 1 {
		t.Fatalf("node2 owned = %d, want 1", got)
	}
	// The job lives on node2 — and polling either node finds it, because
	// the id's prefix routes to the owner.
	if v := waitDone(t, url2, sub.ID); v.Status != StatusDone {
		t.Fatalf("job on owner = %s (%s)", v.Status, v.Error)
	}
	if v := waitDone(t, url1, sub.ID); v.Status != StatusDone {
		t.Fatalf("proxied poll = %s (%s)", v.Status, v.Error)
	}
	// A repeat submit through the non-owner is answered from the owner's
	// cache, hit header intact.
	resp2, _ := post(t, url1+"/v1/solve", body)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("forwarded resubmit = %d X-Cache=%q", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
}

func TestClusterProxiesStreamAndCancel(t *testing.T) {
	s1, s2, url1, _ := twoNodes(t)
	_ = s1
	body := bodyOwnedBy(t, s2, s2.ring.Self())
	resp, sub := post(t, url1+"/v1/solve", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	// Stream through the non-owner: the NDJSON relay must carry the
	// terminal record.
	stream, err := http.Get(url1 + "/v1/jobs/" + sub.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	var final spec.StreamEnd
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &final); err != nil {
			t.Fatalf("bad proxied NDJSON line %q: %v", sc.Text(), err)
		}
	}
	if final.Event != "done" {
		t.Fatalf("proxied stream final event = %q", final.Event)
	}
	// Cancel of a finished foreign job proxies to a no-op 202.
	if resp := del(t, url1, sub.ID); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("proxied cancel = %d", resp.StatusCode)
	}
	// An id that routes to this very node but is unknown stays a 404 —
	// no forwarding loop.
	selfOwned := bodyOwnedBy(t, s1, s1.ring.Self())
	key, _ := specParts(t, spec.KindSolve, selfOwned)
	if resp := del(t, url1, key[:ringPrefixLen]+"-999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown self-owned id = %d, want 404", resp.StatusCode)
	}
}

func TestClusterLoopGuard(t *testing.T) {
	s1, s2, url1, _ := twoNodes(t)
	body := bodyOwnedBy(t, s1, s2.ring.Self())

	// A request already marked as forwarded is served locally even by a
	// non-owner: one hop, never two.
	req, err := http.NewRequest(http.MethodPost, url1+"/v1/solve", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, s2.ring.Self())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("marked submit = %d, want local 202", resp.StatusCode)
	}
	if got := s1.metrics.forwarded.Load(); got != 0 {
		t.Fatalf("loop guard leaked a forward: %d", got)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if v := waitDone(t, url1, sub.ID); v.Status != StatusDone {
		t.Fatalf("locally served job = %s (%s)", v.Status, v.Error)
	}
}

func TestClusterForwardsBalance(t *testing.T) {
	s1, s2, url1, url2 := twoNodes(t)
	urls := []string{url1, url2}
	for seed := 1; seed <= 24; seed++ {
		body := fmt.Sprintf(`{"k":40,"seed":%d}`, seed)
		resp, sub := post(t, urls[seed%2]+"/v1/solve", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("seed %d: submit = %d", seed, resp.StatusCode)
		}
		waitDone(t, urls[seed%2], sub.ID)
	}
	// Across an even spray both nodes must own work and both must have
	// forwarded some — the ring splits the keyspace, not the front ends.
	f1, f2 := s1.metrics.forwarded.Load(), s2.metrics.forwarded.Load()
	o1, o2 := s1.metrics.owned.Load(), s2.metrics.owned.Load()
	if f1 == 0 || f2 == 0 || o1 == 0 || o2 == 0 {
		t.Fatalf("degenerate routing: forwarded=(%d,%d) owned=(%d,%d)", f1, f2, o1, o2)
	}
	if o1+o2 != 24 {
		t.Fatalf("owned total = %d, want 24", o1+o2)
	}
}

func TestProxyDeadPeerAnswers502(t *testing.T) {
	// A ring whose second peer never listens: forwarding must fail fast
	// with a 502, not hang.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close() // the port is now unbound
	peers := []string{ln.Addr().String(), deadAddr}
	s1, url1 := startNode(t, ln, Config{Peers: peers, SelfAddr: peers[0], Workers: 1})
	body := bodyOwnedBy(t, s1, deadAddr)
	start := time.Now()
	resp, _ := post(t, url1+"/v1/solve", body)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("forward to dead peer = %d, want 502", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("dead-peer forward took %v", elapsed)
	}
}
