package server

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

// popOrder drains the scheduler and returns the tenants served in
// order.
func popOrder(s *scheduler) []string {
	var order []string
	for {
		j := s.pop()
		if j == nil {
			return order
		}
		order = append(order, j.tenant)
	}
}

func TestSchedulerSingleTenantIsFIFO(t *testing.T) {
	s := newScheduler(nil, false)
	for i := 0; i < 5; i++ {
		s.push(tenantJob(fmt.Sprintf("j%d", i), "default", 1, false))
	}
	for i := 0; i < 5; i++ {
		j := s.pop()
		if j == nil || j.id != fmt.Sprintf("j%d", i) {
			t.Fatalf("pop %d = %v, want j%d in FIFO order", i, j, i)
		}
	}
	if s.pop() != nil {
		t.Fatal("empty scheduler returned a job")
	}
}

func TestSchedulerWeightedShares(t *testing.T) {
	// Weights A=2, B=1 with unit-cost jobs: over any backlogged window A
	// is served twice per B. With both queues full from the start the
	// deterministic DRR trace is A,A,B repeating.
	s := newScheduler(map[string]int{"A": 2, "B": 1}, false)
	for i := 0; i < 6; i++ {
		s.push(tenantJob(fmt.Sprintf("a%d", i), "A", 1, false))
		s.push(tenantJob(fmt.Sprintf("b%d", i), "B", 1, false))
	}
	got := popOrder(s)[:9]
	want := []string{"A", "A", "B", "A", "A", "B", "A", "A", "B"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("serve order %v, want %v", got, want)
		}
	}
}

func TestSchedulerEqualWeightsAlternate(t *testing.T) {
	s := newScheduler(nil, false)
	for i := 0; i < 4; i++ {
		s.push(tenantJob(fmt.Sprintf("a%d", i), "A", 1, false))
		s.push(tenantJob(fmt.Sprintf("b%d", i), "B", 1, false))
	}
	counts := map[string]int{}
	for i := 0; i < 8; i++ {
		counts[s.pop().tenant]++
	}
	if counts["A"] != 4 || counts["B"] != 4 {
		t.Fatalf("served %v, want 4 each", counts)
	}
}

func TestSchedulerCostProportionalService(t *testing.T) {
	// A's jobs cost 4 units, B's cost 1; equal weights. Served *cost*
	// must balance, so B gets ~4 jobs per A job.
	s := newScheduler(nil, false)
	for i := 0; i < 4; i++ {
		s.push(tenantJob(fmt.Sprintf("a%d", i), "A", 4, false))
	}
	for i := 0; i < 16; i++ {
		s.push(tenantJob(fmt.Sprintf("b%d", i), "B", 1, false))
	}
	servedCost := map[string]int64{}
	for i := 0; i < 10; i++ {
		j := s.pop()
		servedCost[j.tenant] += j.cost
	}
	a, b := servedCost["A"], servedCost["B"]
	if a == 0 || b == 0 {
		t.Fatalf("one tenant starved: cost served %v", servedCost)
	}
	if diff := a - b; diff > 4 || diff < -4 {
		t.Fatalf("served cost skew %d (A=%d B=%d), want within one max job", diff, a, b)
	}
}

func TestSchedulerPriorityLane(t *testing.T) {
	s := newScheduler(nil, true)
	s.push(tenantJob("batch1", "A", 1, false))
	s.push(tenantJob("batch2", "A", 1, false))
	s.push(tenantJob("small", "A", 1, true))
	if j := s.pop(); j.id != "small" {
		t.Fatalf("first pop = %s, want the interactive job", j.id)
	}
	if j := s.pop(); j.id != "batch1" {
		t.Fatalf("second pop = %s, want batch1", j.id)
	}
	// Lane disabled: strict FIFO regardless of classification.
	s2 := newScheduler(nil, false)
	s2.push(tenantJob("batch", "A", 1, false))
	s2.push(tenantJob("small", "A", 1, true))
	if j := s2.pop(); j.id != "batch" {
		t.Fatalf("without the lane, first pop = %s, want batch", j.id)
	}
}

func TestSchedulerIdleTenantForfeitsDeficit(t *testing.T) {
	s := newScheduler(nil, false)
	s.push(tenantJob("a0", "A", 1, false))
	if s.pop() == nil {
		t.Fatal("pop returned nil with a queued job")
	}
	// A went idle; its deficit must be zeroed so it cannot hoard credit.
	s.mu.Lock()
	d := s.tenants["A"].deficit
	s.mu.Unlock()
	if d != 0 {
		t.Fatalf("idle tenant kept deficit %d, want 0", d)
	}
}

func TestCostUnits(t *testing.T) {
	unit := int64(1 << 16)
	for _, tc := range []struct {
		est, want int64
	}{
		{0, 1},
		{unit - 1, 1},
		{unit, 2},
		{50 * unit, 51},
		{1 << 40, maxCostUnits},
	} {
		if got := costUnits(tc.est, unit); got != tc.want {
			t.Errorf("costUnits(%d) = %d, want %d", tc.est, got, tc.want)
		}
	}
	if got := costUnits(100, 0); got != maxCostUnits {
		t.Errorf("costUnits with unit 0 = %d, want clamp to %d", got, maxCostUnits)
	}
}

func TestBucketRefillUnderFakeClock(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := newBucket(TenantLimits{Rate: 2, Burst: 2}, clock)
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("take %d within burst denied", i)
		}
	}
	ok, retry := b.take()
	if ok {
		t.Fatal("take beyond burst admitted")
	}
	// Rate 2/s with an empty bucket: next token in 500ms.
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 500ms]", retry)
	}
	now = now.Add(500 * time.Millisecond)
	if ok, _ := b.take(); !ok {
		t.Fatal("take after refill interval denied")
	}
	// Refill never exceeds burst.
	now = now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("take %d after long idle denied", i)
		}
	}
	if ok, _ := b.take(); ok {
		t.Fatal("bucket overfilled beyond burst after long idle")
	}
}

func TestBucketDefaults(t *testing.T) {
	if b := newBucket(TenantLimits{Rate: 0}, time.Now); b != nil {
		t.Fatal("zero rate should mean no bucket")
	}
	if b := newBucket(TenantLimits{Rate: 2.5}, time.Now); b.burst != 3 {
		t.Fatalf("default burst = %v, want ceil(rate) = 3", b.burst)
	}
	if b := newBucket(TenantLimits{Rate: 0.1}, time.Now); b.burst != 1 {
		t.Fatalf("default burst = %v, want floor of 1", b.burst)
	}
}

func TestRetryAfterHeader(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{200 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{3 * time.Second, "3"},
	} {
		if got := retryAfterHeader(tc.d); got != tc.want {
			t.Errorf("retryAfterHeader(%v) = %s, want %s", tc.d, got, tc.want)
		}
	}
}

func TestTenantForValidation(t *testing.T) {
	s, err := New(Config{DefaultTenant: "home"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	req := httptest.NewRequest("POST", "/v1/solve", nil)
	if name, err := s.tenantFor(req); err != nil || name != "home" {
		t.Fatalf("absent header → (%q, %v), want (home, nil)", name, err)
	}
	req.Header.Set("X-Tenant", "team-a.prod_1")
	if name, err := s.tenantFor(req); err != nil || name != "team-a.prod_1" {
		t.Fatalf("valid header → (%q, %v)", name, err)
	}
	for _, bad := range []string{"has space", "semi;colon", "ünïcode", string(make([]byte, 65))} {
		req.Header.Set("X-Tenant", bad)
		if _, err := s.tenantFor(req); err == nil {
			t.Errorf("tenant %q accepted, want error", bad)
		}
	}
}

func TestTenantOverflowCollapses(t *testing.T) {
	ts := newTenants(nil, time.Now)
	for i := 0; i < maxTenantStates; i++ {
		ts.get(fmt.Sprintf("t%04d", i))
	}
	over := ts.get("one-too-many")
	if over.name != overflowTenant {
		t.Fatalf("overflow tenant scheduled as %q, want %q", over.name, overflowTenant)
	}
	if again := ts.get("another"); again != over {
		t.Fatal("overflow names should share one state")
	}
	// Already-known names still resolve to their own state.
	if known := ts.get("t0000"); known.name != "t0000" {
		t.Fatalf("known tenant collapsed to %q", known.name)
	}
}

func TestTenantWildcardLimits(t *testing.T) {
	ts := newTenants(map[string]TenantLimits{
		"vip": {Rate: 100},
		"*":   {Rate: 1, Burst: 1},
	}, time.Now)
	if ts.get("vip").bucket.rate != 100 {
		t.Fatal("explicit limit not applied")
	}
	if b := ts.get("stranger").bucket; b == nil || b.rate != 1 {
		t.Fatal("wildcard limit not applied to unlisted tenant")
	}
}
