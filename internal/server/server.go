// Package server is the simulation-serving subsystem: a long-running
// daemon that turns the repository's simulators — static sweeps
// (internal/harness), λ-sweep saturation experiments
// (internal/throughput) and the workload scenario catalog
// (internal/scenario) — into cacheable, streamable HTTP endpoints.
//
// Architecture, front to back:
//
//   - Submit endpoints (POST /v1/solve, /v1/evaluate, /v1/throughput,
//     /v1/scenario) normalize the request, hash it into a canonical key,
//     and answer from the sharded LRU result cache when possible —
//     every simulation is deterministic in (endpoint, params, seed), so
//     repeated queries cost zero simulation time.
//   - Cache misses become jobs on per-tenant sub-queues (identity from
//     the X-Tenant header) scheduled by deficit round-robin into a
//     worker pool; token buckets, per-tenant queue shares and the
//     global bound answer 429 with Retry-After — backpressure instead
//     of collapse. See docs/tenancy.md.
//   - Duplicate requests already in flight are coalesced onto the
//     existing job (singleflight) instead of simulating twice.
//   - Jobs are polled at GET /v1/jobs/{id} and streamed as NDJSON
//     progress events plus a terminal record at /v1/jobs/{id}/stream.
//   - Every job-state transition and every published result writes
//     through a pluggable store (internal/store); with a file-backed
//     store a restart recovers accepted-but-unfinished work under a
//     lease/retry discipline (durability.go, docs/durability.md) and
//     the LRU cache reads through to the persistent result store.
//   - With a static -peers list, submits route across a consistent-hash
//     ring (internal/cluster): a non-owner proxies the request a single
//     hop to the key's owner and streams the response back (proxy.go).
//   - GET /metrics exposes slots-simulated/sec, queue depth, cache hit
//     rate, the replications saved by adaptive-precision stopping
//     (macsimd_reps_saved_total) and the other counters in Prometheus
//     text format.
//   - Drain stops admission (503), waits for the queue and running
//     jobs to finish and flushes final job state to the store —
//     graceful shutdown on SIGTERM.
//
// The full endpoint reference — request schemas, job lifecycle,
// backpressure semantics, every metric — is docs/http-api.md.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/scenario"
	"repro/internal/spec"
	"repro/internal/store"
)

// Config parameterizes New. The zero value serves with sensible
// defaults.
type Config struct {
	// Addr is the listen address for ListenAndServe (default
	// "127.0.0.1:8080").
	Addr string
	// Workers is the worker/shard count (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds queued jobs before submits answer 429 (default
	// 256).
	QueueDepth int
	// CacheEntries bounds the result cache (default 4096 entries).
	CacheEntries int
	// JobsRetained bounds the poll registry; terminal jobs beyond it are
	// evicted oldest-first (default 1024).
	JobsRetained int
	// RetryAfter is the backpressure hint on 429 responses (default 1s).
	RetryAfter time.Duration
	// DrainTimeout bounds the graceful drain on shutdown (default 30s).
	DrainTimeout time.Duration
	// Limits bound per-request simulation cost.
	Limits Limits
	// Version is reported by /healthz and the Server header.
	Version string

	// Tenancy (docs/tenancy.md). Tenant identity comes from the
	// X-Tenant header; requests without one belong to DefaultTenant.

	// Tenants configures per-tenant token-bucket admission; the key "*"
	// sets the bucket for tenants not listed explicitly. Unlisted
	// tenants without a "*" entry are unlimited.
	Tenants map[string]TenantLimits
	// DefaultTenant is the identity assumed when X-Tenant is absent
	// (default "default").
	DefaultTenant string
	// FairnessWeights sets each tenant's deficit-round-robin weight;
	// unlisted tenants weigh 1. Served simulation cost per tenant is
	// proportional to weight over any backlogged interval.
	FairnessWeights map[string]int
	// PriorityLane, when true, serves a tenant's interactive jobs
	// (cost-classified via Limits.InteractiveCost) before its batch
	// jobs. Cross-tenant shares are unaffected.
	PriorityLane bool
	// TenantQueueDepth bounds the jobs one tenant may have queued
	// (answering 429 beyond it), so a single tenant cannot occupy the
	// whole global queue. 0 means no per-tenant bound.
	TenantQueueDepth int

	// MaxSessions bounds concurrently running live sessions (POST
	// /v1/sessions answers 429 beyond it; default 64). Each session is
	// one goroutine simulating indefinitely, outside the worker pool.
	MaxSessions int

	// Durability and clustering (docs/durability.md).

	// Store persists job records and result documents. Nil means an
	// in-memory store: job state dies with the process, exactly the
	// single-process behavior. Wire a file store (store.OpenFile) and
	// accepted work survives restarts — including kill -9.
	Store store.Store
	// LeaseDuration is how long a worker owns a running job before a
	// restarted daemon may conclude the worker died and requeue the
	// work (default 15s).
	LeaseDuration time.Duration
	// MaxRetries bounds how many times a lease-expired job is requeued
	// before recovery fails it instead (default 3; negative means a
	// lease-expired job is never requeued).
	MaxRetries int
	// Peers is the static cluster membership as host:port advertise
	// addresses. Empty means single-node: no ring, no proxying. With
	// peers configured, each canonical key has one owner on a
	// consistent-hash ring and a non-owner proxies the submit a single
	// hop to the owner.
	Peers []string
	// SelfAddr is this node's own advertise address; it must appear in
	// Peers. Defaults to Addr.
	SelfAddr string

	// now is the clock the token buckets read; the tests override it.
	// Nil means time.Now.
	now func() time.Time
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8080"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.JobsRetained <= 0 {
		c.JobsRetained = 1024
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Version == "" {
		c.Version = "dev"
	}
	if c.DefaultTenant == "" {
		c.DefaultTenant = "default"
	}
	if c.TenantQueueDepth > c.QueueDepth {
		c.TenantQueueDepth = c.QueueDepth
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.Store == nil {
		// Zero result retention: the server's LRU stays the only
		// in-memory result tier, so the default configuration costs the
		// same memory as before the store existed.
		c.Store = store.Mem(0)
	}
	if c.LeaseDuration <= 0 {
		c.LeaseDuration = 15 * time.Second
	}
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = 3
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	}
	if c.SelfAddr == "" {
		c.SelfAddr = c.Addr
	}
	if c.now == nil {
		c.now = time.Now
	}
	c.Limits = limitsWithDefaults(c.Limits)
	return c
}

// Server is the serving subsystem. Create with New, expose with
// Handler (or ListenAndServe), stop with Drain then Close.
type Server struct {
	cfg        Config
	cache      *cache
	store      store.Store
	pool       *pool
	reg        *registry
	sessionReg *sessionRegistry
	tenants    *tenants
	metrics    metrics
	mux        *http.ServeMux

	// Clustering: nil ring means single-node. The proxy client carries
	// forwarded requests to the owning peer (proxy.go).
	ring        *cluster.Ring
	proxyClient *http.Client

	mu       sync.Mutex
	inflight map[string]*job // canonical key → queued/running job
	timers   []*time.Timer   // lease-deferral timers (durability.go), stopped by Close

	draining atomic.Bool
	seq      atomic.Int64

	// testGate, when non-nil, is received from before each job executes;
	// the white-box tests use it to hold jobs in the queue and observe
	// backpressure, coalescing and drain deterministically.
	testGate chan struct{}
}

// New builds a Server, replays any persisted job records (recovery) and
// starts its worker pool. It fails only on invalid cluster membership.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		cache:      newCache(cfg.CacheEntries),
		store:      cfg.Store,
		reg:        newRegistry(cfg.JobsRetained),
		sessionReg: newSessionRegistry(cfg.JobsRetained),
		tenants:    newTenants(cfg.Tenants, cfg.now),
		inflight:   make(map[string]*job),
	}
	if len(cfg.Peers) > 0 {
		ring, err := cluster.New(cfg.SelfAddr, cfg.Peers)
		if err != nil {
			return nil, err
		}
		s.ring = ring
		s.proxyClient = newProxyClient()
	}
	s.metrics.started = time.Now()
	s.pool = newPool(cfg.Workers, cfg.QueueDepth,
		newScheduler(cfg.FairnessWeights, cfg.PriorityLane), s.execute)
	// Recovery before the workers start and before the mux serves:
	// requeued jobs line up under normal scheduling, and no fresh submit
	// can race the sequence-counter reseed.
	s.recoverJobs()
	s.pool.start()
	s.buildMux()
	return s, nil
}

// Close stops the workers after their current job and drops any pending
// lease-deferral timers. Call Drain first for a graceful stop.
func (s *Server) Close() {
	s.mu.Lock()
	timers := s.timers
	s.timers = nil
	s.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	s.pool.close()
}

// Drain stops admitting jobs (submits answer 503) and waits until the
// queue is empty and all running jobs finished, or ctx expires. Either
// way the final state of every registered job is flushed to the store,
// so a drained-then-restarted daemon reports finished work as done —
// and requeues whatever a timed-out drain left behind.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	err := s.pool.drain(ctx)
	s.flushJobs()
	s.flushSessions()
	return err
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve serves the API on ln until ctx is canceled, then drains
// gracefully (bounded by Config.DrainTimeout) and shuts the listener
// down. It returns nil on a clean shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	httpSrv := &http.Server{Handler: s.Handler()}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		// Order matters: refuse new submissions, then wait for in-flight
		// HTTP handlers (Shutdown) — a straggler that passed the draining
		// check may still be enqueueing — and only then drain the pool,
		// so every job the API answered 202 for actually runs.
		s.draining.Store(true)
		stopErr := httpSrv.Shutdown(dctx)
		drainErr := s.pool.drain(dctx)
		s.flushJobs()
		s.flushSessions()
		shutdownErr <- errors.Join(stopErr, drainErr)
	}()
	err := httpSrv.Serve(ln)
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-shutdownErr
}

// ListenAndServe listens on Config.Addr and calls Serve. ready, if
// non-nil, receives the bound address once listening (supports ":0").
func (s *Server) ListenAndServe(ctx context.Context, ready chan<- string) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	return s.Serve(ctx, ln)
}

// buildMux wires the routes. Every submit endpoint is the same shim
// over one spec kind.
func (s *Server) buildMux() {
	mux := http.NewServeMux()
	for path, kind := range map[string]spec.ExperimentKind{
		"/v1/solve":      spec.KindSolve,
		"/v1/evaluate":   spec.KindEvaluate,
		"/v1/throughput": spec.KindThroughput,
		"/v1/scenario":   spec.KindScenario,
		"/v1/arena":      spec.KindArena,
	} {
		mux.HandleFunc("POST "+path, func(w http.ResponseWriter, r *http.Request) {
			s.handleSubmit(w, r, kind)
		})
	}
	mux.HandleFunc("GET /v1/jobs/{id}", s.handlePoll)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/sessions", s.handleOpenSession)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionPoll)
	mux.HandleFunc("GET /v1/sessions/{id}/stream", s.handleSessionStream)
	mux.HandleFunc("POST /v1/sessions/{id}/control", s.handleSessionControl)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /v1/protocols", s.handleProtocols)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON writes v with the given status. Responses are compact —
// cached results are spliced back verbatim on hits, so every path must
// emit the same bytes for the same result.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Server", "macsimd/"+s.cfg.Version)
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // write error: the client hung up
}

// submitResponse is the envelope of a submit: either a finished cached
// result or a job to poll.
type submitResponse struct {
	jobView
	Cached bool `json:"cached"`
}

// handleSubmit is the shared submit path: resolve the tenant → decode
// into a spec of the endpoint's kind → validate → hash → cache (memory
// tier, then the persistent result store) → route (proxy to the ring
// owner when clustered) → coalesce → admit (token bucket, per-tenant
// and global queue bounds) → enqueue durably. Cache hits and coalesced
// duplicates cost the tenant nothing — admission controls new
// simulation work only.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request, kind spec.ExperimentKind) {
	if s.draining.Load() {
		s.metrics.refused.Add(1)
		s.writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server is draining"})
		return
	}
	tenant, err := s.tenantFor(r)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	body, err := readBody(r)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	es, err := spec.Decode(kind, body)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	if err := es.Validate(s.cfg.Limits); err != nil {
		s.writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	key, err := es.CanonicalKey()
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}

	// Cache: repeated queries cost zero simulation time. Memory tier
	// first; on a miss, read through to the persistent result store —
	// results published before a restart keep serving as hits.
	if result, ok := s.cache.get(key); ok {
		s.metrics.cacheHits.Add(1)
		s.serveCached(w, kind, key, result)
		return
	}
	if result, ok, err := s.store.GetResult(key); err == nil && ok {
		s.metrics.storeReads.Add(1)
		s.metrics.cacheHits.Add(1)
		s.cache.put(key, result)
		s.serveCached(w, kind, key, result)
		return
	}

	// Routing: when clustered, fresh work for a key this node does not
	// own is proxied one hop to the owner (proxy.go).
	if owner, ok := s.forwardTarget(r, key); ok {
		s.proxyTo(w, r, owner, body)
		return
	}
	if s.ring != nil {
		s.metrics.owned.Add(1)
	}

	// Coalesce: a duplicate of an in-flight job attaches to it instead
	// of simulating twice. Queue admission and registration happen under
	// the same lock that publishes the job to s.inflight, so any id a
	// coalesced duplicate can ever see belongs to a job that is both
	// pollable and actually queued.
	s.mu.Lock()
	if existing, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.metrics.coalesced.Add(1)
		w.Header().Set("X-Cache", "coalesced")
		w.Header().Set("Location", "/v1/jobs/"+existing.id)
		s.writeJSON(w, http.StatusAccepted, submitResponse{jobView: existing.view()})
		return
	}

	// Admission: the tenant's token bucket first (429 with a bucket-
	// derived Retry-After), then its queue share, then the global bound.
	ts := s.tenants.get(tenant)
	if ts.bucket != nil {
		if ok, retry := ts.bucket.take(); !ok {
			s.mu.Unlock()
			ts.rejected.Add(1)
			s.reject429(w, ts, retry, fmt.Sprintf("tenant %q over admission rate", ts.name))
			return
		}
	}
	if lim := s.cfg.TenantQueueDepth; lim > 0 && ts.queued.Load() >= int64(lim) {
		s.mu.Unlock()
		s.reject429(w, ts, s.cfg.RetryAfter, fmt.Sprintf("tenant %q queue share full", ts.name))
		return
	}
	j := newJob(fmt.Sprintf("%s-%d", key[:ringPrefixLen], s.seq.Add(1)), es, key)
	j.tenant = ts.name
	j.cost = costUnits(es.EstimatedCost(), int64(s.cfg.Limits.InteractiveThreshold()))
	j.interactive = es.Interactive(s.cfg.Limits)
	// The canonical parameter document rides in the job's store record;
	// CanonicalKey already proved the spec encodes.
	j.params, _ = es.EncodeParams()
	if err := s.pool.submit(j); err != nil {
		s.mu.Unlock()
		s.metrics.rejected.Add(1)
		s.reject429(w, ts, s.cfg.RetryAfter, err.Error())
		return
	}
	ts.queued.Add(1)
	ts.admitted.Add(1)
	s.inflight[key] = j
	evicted := s.reg.add(j)
	s.mu.Unlock()
	s.dropEvicted(evicted)
	// Durability barrier: the queued record is persisted before the 202
	// leaves — accepted work is never invisible to recovery.
	s.putJobRecord(j)
	s.metrics.enqueued.Add(1)
	w.Header().Set("X-Cache", "miss")
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	s.writeJSON(w, http.StatusAccepted, submitResponse{jobView: j.view()})
}

// serveCached answers a submit from a cached result document. This is
// the serving hot path — the envelope is spliced around the cached
// bytes (kind and key are plain tokens) instead of re-encoding them,
// and every tier (memory LRU, persistent store) emits identical bytes.
func (s *Server) serveCached(w http.ResponseWriter, kind spec.ExperimentKind, key string, result []byte) {
	var buf bytes.Buffer
	buf.Grow(len(result) + 96)
	buf.WriteString(`{"kind":"`)
	buf.WriteString(string(kind))
	buf.WriteString(`","key":"`)
	buf.WriteString(key)
	buf.WriteString(`","status":"done","cached":true,"result":`)
	buf.Write(result)
	buf.WriteString("}\n")
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Server", "macsimd/"+s.cfg.Version)
	h.Set("X-Cache", "hit")
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// reject429 answers a submit with backpressure: 429, a Retry-After
// hint (whole seconds, rounded up), and the tenant's 429 accounting.
func (s *Server) reject429(w http.ResponseWriter, ts *tenantState, retry time.Duration, msg string) {
	ts.status429.Add(1)
	w.Header().Set("Retry-After", retryAfterHeader(retry))
	s.writeJSON(w, http.StatusTooManyRequests, apiError{Error: msg})
}

// execute runs one job on a pool worker: take the lease (running
// record in the store), dispatch the spec with the job's context, relay
// the execution's event stream into the job (and from there to any
// NDJSON streamer), publish the result durably, persist the terminal
// record, retire the in-flight entry. A job canceled while queued never
// starts simulating — handleCancel already persisted its terminal
// state.
func (s *Server) execute(workerID int, j *job) {
	if s.testGate != nil {
		<-s.testGate
	}
	ts := s.tenants.get(j.tenant)
	ts.queued.Add(-1)
	if !j.markRunning() {
		s.retire(j)
		return
	}
	s.putJobRecord(j) // the lease: running + deadline
	result, err := s.runJob(j)
	var data json.RawMessage
	if err == nil {
		data, err = json.Marshal(result.Document())
	}
	switch {
	case err == nil:
		// Publish before retiring the in-flight entry, so an identical
		// request always sees one of the two. The result document lands
		// in the store before the terminal record below — a crash between
		// the two re-runs the job into a content-addressed no-op.
		s.publishResult(j.key, data)
		s.metrics.jobsDone.Add(1)
		ts.served.Add(1)
	case errors.Is(err, context.Canceled):
		s.metrics.jobsCanceled.Add(1)
	default:
		s.metrics.jobsFailed.Add(1)
	}
	j.finish(data, err)
	s.putJobRecord(j)
	s.retire(j)
}

// retire removes the job's in-flight entry — unless a newer job already
// took the key over (a canceled job is detached eagerly by handleCancel,
// and an identical resubmission may be in flight under the same key).
func (s *Server) retire(j *job) {
	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.mu.Unlock()
}

// runJob dispatches the job's spec and consumes its event stream.
func (s *Server) runJob(j *job) (*spec.Result, error) {
	if err := j.ctx.Err(); err != nil {
		return nil, err
	}
	exec, err := spec.Run(j.ctx, j.spec)
	if err != nil {
		return nil, err
	}
	for ev, err := range exec.Events() {
		if err != nil {
			break // the terminal error surfaces via Result below
		}
		s.metrics.slotsSimulated.Add(int64(ev.SimulatedSlots()))
		if data, merr := json.Marshal(ev); merr == nil {
			j.publish(data)
		}
	}
	res, err := exec.Result()
	if err == nil {
		s.metrics.repsSaved.Add(int64(res.RepsSaved()))
	}
	return res, err
}

// handleCancel serves DELETE /v1/jobs/{id}: cancel the job's context.
// A queued job flips straight to canceled and never starts simulating;
// a running sweep aborts between executions (one static run is not
// interruptible, so a lone solve finishes its run first). The canceled
// state is persisted immediately, so a restart does not resurrect
// canceled work even if the process dies before the worker notices.
// The job is detached from the in-flight map immediately, so an
// identical resubmission enqueues fresh work instead of coalescing onto
// the doomed job. Cancellation is idempotent and has no effect on a job
// that already finished. An id owned by a peer is proxied one hop.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.reg.get(id)
	if !ok {
		if s.proxyJobRequest(w, r, id) {
			return
		}
		s.writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job id"})
		return
	}
	if j.cancelQueued() {
		s.metrics.jobsCanceled.Add(1)
		s.putJobRecord(j)
	} else {
		j.cancel()
		s.persistCanceled(j)
	}
	s.retire(j)
	s.writeJSON(w, http.StatusAccepted, j.view())
}

// handlePoll serves GET /v1/jobs/{id}; an id owned by a peer is proxied
// one hop.
func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.reg.get(id)
	if !ok {
		if s.proxyJobRequest(w, r, id) {
			return
		}
		s.writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job id"})
		return
	}
	s.writeJSON(w, http.StatusOK, j.view())
}

// handleStream serves GET /v1/jobs/{id}/stream: replays the job's
// progress events as NDJSON, follows live until the job reaches a
// terminal state, then emits a "done"/"failed" record with the result.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.reg.get(id)
	if !ok {
		if s.proxyJobRequest(w, r, id) {
			return
		}
		s.writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job id"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Server", "macsimd/"+s.cfg.Version)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	emit := func(line []byte) bool {
		// Two writes, not append(line, '\n'): line aliases the job's
		// shared event buffer, and an append could write the newline into
		// the backing array under a concurrent streamer's feet.
		if _, err := w.Write(line); err != nil {
			return false
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	sent := 0
	for {
		events, pulse, status := j.snapshot(sent)
		for _, e := range events {
			if !emit(e) {
				return
			}
			sent++
		}
		if status.terminal() {
			break
		}
		select {
		case <-pulse:
		case <-r.Context().Done():
			return
		}
	}
	v := j.view()
	final := spec.StreamEnd{Event: "done", ID: v.ID, Status: string(v.Status), Error: v.Error, Result: v.Result}
	if v.Status != StatusDone {
		final.Event = "failed"
	}
	line, err := json.Marshal(final)
	if err != nil {
		return
	}
	emit(line)
}

// handleProtocols serves GET /v1/protocols: the named registry.
func (s *Server) handleProtocols(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name   string `json:"name"`
		Alias  string `json:"alias"`
		System string `json:"system"`
	}
	reg := harness.NamedSystems()
	out := make([]entry, len(reg))
	for i, n := range reg {
		out[i] = entry{Name: n.Name, Alias: n.Alias, System: n.New().Name()}
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleScenarios serves GET /v1/scenarios: the workload catalog.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, scenario.Names())
}

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = io.WriteString(w, s.metrics.render(time.Now(), map[string]float64{
		"macsimd_queue_depth":     float64(s.pool.depth()),
		"macsimd_queue_capacity":  float64(s.cfg.QueueDepth),
		"macsimd_workers":         float64(s.cfg.Workers),
		"macsimd_jobs_inflight":   float64(s.pool.inflight()),
		"macsimd_jobs_running":    float64(s.pool.running.Load()),
		"macsimd_cache_entries":   float64(s.cache.len()),
		"macsimd_sessions_active": float64(s.sessionReg.active()),
	}))
	_, _ = io.WriteString(w, renderTenants(s.tenants.snapshot()))
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	s.writeJSON(w, status, map[string]string{"status": state, "version": s.cfg.Version})
}
