package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/spec"
	"repro/internal/store"
)

// openSession POSTs a session spec and decodes the created view.
func openSession(t *testing.T, base, body string) sessionView {
	t.Helper()
	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open session: %d %s", resp.StatusCode, data)
	}
	var v sessionView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("decoding session view %s: %v", data, err)
	}
	return v
}

// sendControl POSTs one control (text grammar) and returns the stamped ack.
func sendControl(t *testing.T, base, id, line string) spec.SessionControl {
	t.Helper()
	resp, err := http.Post(base+"/v1/sessions/"+id+"/control", "text/plain", strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("control %q: %d %s", line, resp.StatusCode, data)
	}
	var ack spec.SessionControl
	if err := json.Unmarshal(data, &ack); err != nil {
		t.Fatalf("decoding control ack %s: %v", data, err)
	}
	return ack
}

func getSessionView(t *testing.T, base, id string) (int, sessionView) {
	t.Helper()
	resp, err := http.Get(base + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var v sessionView
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("decoding session view %s: %v", data, err)
		}
	}
	return resp.StatusCode, v
}

func TestSessionLifecycleOverHTTP(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)

	v := openSession(t, ts.URL, `{"lambda": 0.2, "window": 32, "seed": 5}`)
	if v.Kind != "session" || v.Status != "running" {
		t.Fatalf("created view: %+v", v)
	}
	if !strings.Contains(v.ID, "-s") || !strings.HasPrefix(v.ID, v.Key[:ringPrefixLen]) {
		t.Fatalf("session id %q not key-prefixed", v.ID)
	}

	// Stream concurrently while driving controls.
	resp, err := http.Get(ts.URL + "/v1/sessions/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}

	ack := sendControl(t, ts.URL, v.ID, "set-lambda 0.4")
	if ack.Event != "control" || ack.Control.Type != "set-lambda" || ack.Control.Slot == 0 {
		t.Fatalf("ack %+v", ack)
	}
	sendControl(t, ts.URL, v.ID, "jam pattern 8:3")
	sendControl(t, ts.URL, v.ID, "stop")

	// The stream must end with the end record; the control acks ride it.
	var sawControl, sawWindowOrEnd, sawEnd bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var probe struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad stream line %s: %v", sc.Text(), err)
		}
		switch probe.Event {
		case "control":
			sawControl = true
		case "window":
			sawWindowOrEnd = true
		case "end":
			sawEnd = true
		}
	}
	if !sawControl || !sawWindowOrEnd || !sawEnd {
		t.Fatalf("stream missing events: control=%v window=%v end=%v", sawControl, sawWindowOrEnd, sawEnd)
	}

	// Poll: stopped, with the checkpoint embedding the stamped log.
	code, got := getSessionView(t, ts.URL, v.ID)
	if code != http.StatusOK || got.Status != "stopped" {
		t.Fatalf("poll after stop: %d %+v", code, got)
	}
	if len(got.Checkpoint.Log) != 3 || got.Checkpoint.Log[2].Type != "stop" {
		t.Fatalf("checkpoint log: %+v", got.Checkpoint.Log)
	}
	if got.Checkpoint.Session.Lambda != 0.2 || got.Checkpoint.Session.Seed != 5 {
		t.Fatalf("checkpoint spec: %+v", got.Checkpoint.Session)
	}

	// Controls after the end conflict.
	cresp, err := http.Post(ts.URL+"/v1/sessions/"+v.ID+"/control", "text/plain", strings.NewReader("pause"))
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusConflict {
		t.Fatalf("control after end: %d", cresp.StatusCode)
	}
}

func TestSessionJSONControlAndDelete(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)
	v := openSession(t, ts.URL, `{"window": 16}`)

	// JSON control encoding, client-supplied slot ignored.
	resp, err := http.Post(ts.URL+"/v1/sessions/"+v.ID+"/control", "application/json",
		strings.NewReader(`{"type": "jam", "jam": {"mode": "on"}, "slot": 99999}`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json control: %d %s", resp.StatusCode, data)
	}

	// Unknown control: 400.
	resp, err = http.Post(ts.URL+"/v1/sessions/"+v.ID+"/control", "text/plain", strings.NewReader("warp 9"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad control: %d", resp.StatusCode)
	}

	// DELETE: hard teardown, status canceled.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+v.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("delete: %d %s", dresp.StatusCode, data)
	}
	var dv sessionView
	if err := json.Unmarshal(data, &dv); err != nil {
		t.Fatal(err)
	}
	if dv.Status != "canceled" {
		t.Fatalf("deleted session status %q", dv.Status)
	}
}

func TestSessionCapacityAndValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{MaxSessions: 1}, false)

	v := openSession(t, ts.URL, `{}`)
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{"seed": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over capacity: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Bad specs: 400.
	for _, body := range []string{
		`{"lambda": -1}`,
		`{"protocol": "one-fail"}`,
		`{"unknown": 1}`,
		`{"window": 1000000}`, // above the serving MaxWindow default
	} {
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %s: %d", body, resp.StatusCode)
		}
	}

	// Ending the session frees the slot.
	sendControl(t, ts.URL, v.ID, "stop")
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{"seed": 2}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusCreated {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %d", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSessionServedSpecIsClamped(t *testing.T) {
	// A served session must never be unbounded: the serving limits clamp
	// MaxWindows, and the checkpoint records the clamped spec.
	_, ts, _ := newTestServer(t, Config{Limits: Limits{MaxSessionWindows: 50}}, false)
	v := openSession(t, ts.URL, `{"window": 16}`)
	if v.Checkpoint.Session.MaxWindows != 50 {
		t.Fatalf("served spec not clamped: %+v", v.Checkpoint.Session)
	}
	// With no consumer, the session still ends on its own budget.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, got := getSessionView(t, ts.URL, v.ID)
		if got.Status == "stopped" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("clamped session never ended: %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSessionMetricsAndTenantCharge(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{}, false)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions", strings.NewReader(`{"window": 16, "maxWindows": 5}`))
	req.Header.Set("X-Tenant", "team-a")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var v sessionView
	if err := json.Unmarshal(data, &v); err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("open: %d %s", resp.StatusCode, data)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, got := getSessionView(t, ts.URL, v.ID)
		if got.Status == "stopped" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("budgeted session never ended")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mdata)
	for _, want := range []string{
		"macsimd_sessions_opened_total 1",
		"macsimd_sessions_windows_total 5",
		"macsimd_sessions_active 0",
		`macsimd_tenant_session_windows_total{tenant="team-a"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestSessionRecordPersistsOnDrain(t *testing.T) {
	st, err := store.OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, ts, _ := newTestServer(t, Config{Store: st}, false)
	v := openSession(t, ts.URL, `{"window": 32}`)
	sendControl(t, ts.URL, v.ID, "set-lambda 0.3")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	rec, ok, err := st.GetSession(v.ID)
	if err != nil || !ok {
		t.Fatalf("record not persisted: ok=%v err=%v", ok, err)
	}
	if rec.Status != "canceled" || rec.Tenant != "default" || rec.Key != v.Key {
		t.Fatalf("record %+v", rec)
	}
	var log []spec.ControlMessage
	if err := json.Unmarshal(rec.Log, &log); err != nil || len(log) != 1 || log[0].Type != "set-lambda" {
		t.Fatalf("persisted log %s: %v", rec.Log, err)
	}
	var sp spec.SessionSpec
	if err := json.Unmarshal(rec.Params, &sp); err != nil || sp.Window != 32 {
		t.Fatalf("persisted params %s: %v", rec.Params, err)
	}

	// A restarted daemon answers the poll from the record.
	s2, ts2, _ := newTestServer(t, Config{Store: st}, false)
	_ = s2
	code, got := getSessionView(t, ts2.URL, v.ID)
	if code != http.StatusOK || got.Status != "canceled" || got.Checkpoint.Session.Window != 32 {
		t.Fatalf("restart poll: %d %+v", code, got)
	}
	if len(got.Checkpoint.Log) != 1 {
		t.Fatalf("restart checkpoint log: %+v", got.Checkpoint.Log)
	}
}
