package server

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"repro/internal/spec"
	"repro/internal/store"
)

// JobStatus is a job's lifecycle state.
type JobStatus string

// Job lifecycle states, in order.
const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusDone     JobStatus = "done"
	StatusFailed   JobStatus = "failed"
	StatusCanceled JobStatus = "canceled"
)

// terminal reports whether the status is final.
func (s JobStatus) terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// job is one queued simulation. The result bytes are immutable once set;
// progress events accumulate append-only so any number of NDJSON
// streamers can replay from the start and then follow live. The job's
// context governs its simulation work: cancel aborts a queued job
// before it starts and stops a running one mid-sweep.
type job struct {
	id   string
	kind string
	key  string // canonical request hash; also the cache key
	spec spec.ExperimentSpec

	// Tenancy: which sub-queue the job schedules under, its DRR cost in
	// units, and whether it rides the interactive priority lane. Set by
	// the submit path before the job enters the pool; immutable after.
	tenant      string
	cost        int64
	interactive bool

	// Durability: the canonical parameter document persisted in the
	// job's store record (spec.Decode(kind, params) rebuilds the
	// experiment after a restart) and the requeue count recovery has
	// already spent on it. Set before the job is published; immutable
	// after, except retries which recovery bumps on requeue.
	params  json.RawMessage
	retries int

	ctx    context.Context
	cancel context.CancelFunc

	// storeMu serializes this job's record writes so the store always
	// ends up holding the latest snapshot (j.mu only covers taking the
	// snapshot, not the file write behind it).
	storeMu sync.Mutex

	mu       sync.Mutex
	status   JobStatus
	result   json.RawMessage
	errMsg   string
	events   []json.RawMessage
	pulse    chan struct{} // closed and replaced on every state change
	created  time.Time
	started  time.Time
	finished time.Time
}

func newJob(id string, es spec.ExperimentSpec, key string) *job {
	ctx, cancel := context.WithCancel(context.Background())
	return &job{
		id:      id,
		kind:    string(es.Kind),
		key:     key,
		spec:    es,
		cost:    1, // overwritten by the submit path's cost classifier
		ctx:     ctx,
		cancel:  cancel,
		status:  StatusQueued,
		pulse:   make(chan struct{}),
		created: time.Now(),
	}
}

// broadcast wakes every waiter; callers must hold j.mu.
func (j *job) broadcast() {
	close(j.pulse)
	j.pulse = make(chan struct{})
}

// markRunning marks the job started, unless it already reached a
// terminal state (canceled while still queued) — then the worker must
// skip it entirely.
func (j *job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.terminal() {
		return false
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.broadcast()
	return true
}

// cancelQueued transitions a still-queued job straight to canceled; it
// never starts simulating. Returns false when the job is already
// running or terminal (running jobs are canceled through their
// context and finish() records the terminal state).
func (j *job) cancelQueued() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusCanceled
	j.errMsg = context.Canceled.Error()
	j.finished = time.Now()
	j.broadcast()
	return true
}

// publish appends one progress event (already-marshaled JSON).
func (j *job) publish(event json.RawMessage) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, event)
	j.broadcast()
}

// finish records the final result (on nil err), the cancellation, or
// the failure.
func (j *job) finish(result json.RawMessage, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case errors.Is(err, context.Canceled):
		j.status = StatusCanceled
		j.errMsg = err.Error()
	case err != nil:
		j.status = StatusFailed
		j.errMsg = err.Error()
	default:
		j.status = StatusDone
		j.result = result
	}
	j.finished = time.Now()
	j.broadcast()
}

// record snapshots the job's persisted form. leaseUntil is stamped
// only on running records — it is the deadline after which a restart
// (or a lease sweep) may conclude the owning worker died and requeue
// the work.
func (j *job) record(leaseUntil time.Time) store.JobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := store.JobRecord{
		ID:       j.id,
		Kind:     j.kind,
		Key:      j.key,
		Params:   j.params,
		Tenant:   j.tenant,
		Status:   string(j.status),
		Error:    j.errMsg,
		Retries:  j.retries,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
	}
	if j.status == StatusRunning {
		rec.LeaseUntil = leaseUntil
	}
	return rec
}

// jobView is the API rendering of a job, returned by submit and poll.
type jobView struct {
	ID       string          `json:"id"`
	Kind     string          `json:"kind"`
	Key      string          `json:"key"`
	Status   JobStatus       `json:"status"`
	Created  time.Time       `json:"created"`
	Started  *time.Time      `json:"started,omitempty"`
	Finished *time.Time      `json:"finished,omitempty"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// view snapshots the job for the API.
func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:      j.id,
		Kind:    j.kind,
		Key:     j.key,
		Status:  j.status,
		Created: j.created,
		Error:   j.errMsg,
		Result:  j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// snapshot returns the events published so far, the current pulse
// channel (which will be closed on the next change) and the status. A
// streamer emits events[from:], then waits on pulse if the status is not
// terminal.
func (j *job) snapshot(from int) (events []json.RawMessage, pulse <-chan struct{}, status JobStatus) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.events[from:], j.pulse, j.status
}

// registry holds recently submitted jobs for polling, bounded by
// evicting the oldest *terminal* jobs first; live jobs are never
// evicted.
type registry struct {
	mu    sync.Mutex
	cap   int
	jobs  map[string]*job
	order []string // insertion order of job ids
}

func newRegistry(cap int) *registry {
	if cap < 1 {
		cap = 1
	}
	return &registry{cap: cap, jobs: make(map[string]*job)}
}

// add registers a job, evicting old terminal jobs beyond capacity.
// The evicted ids are returned so the server can drop their persisted
// records too — the poll registry and the job store retire together.
func (r *registry) add(j *job) (evicted []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.jobs[j.id] = j
	r.order = append(r.order, j.id)
	if len(r.jobs) <= r.cap {
		return nil
	}
	kept := r.order[:0]
	for _, id := range r.order {
		old, ok := r.jobs[id]
		if !ok {
			continue
		}
		if len(r.jobs) > r.cap && old != j {
			old.mu.Lock()
			evictable := old.status.terminal()
			old.mu.Unlock()
			if evictable {
				delete(r.jobs, id)
				evicted = append(evicted, id)
				continue
			}
		}
		kept = append(kept, id)
	}
	r.order = kept
	return evicted
}

// all snapshots every registered job, for the drain-time state flush.
func (r *registry) all() []*job {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*job, 0, len(r.jobs))
	for _, j := range r.jobs {
		out = append(out, j)
	}
	return out
}

// get looks a job up by id.
func (r *registry) get(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// len reports registered jobs.
func (r *registry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.jobs)
}
