package server

import (
	"context"
	"net/http"
	"testing"
	"time"

	"repro/internal/spec"
	"repro/internal/store"
)

// specParts computes the canonical key and parameter document of a
// request body exactly as the submit path does — the raw material for
// hand-crafting store records that simulate a previous daemon's life.
func specParts(t *testing.T, kind spec.ExperimentKind, body string) (key string, params []byte) {
	t.Helper()
	es, err := spec.Decode(kind, []byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if err := es.Validate(limitsWithDefaults(Limits{})); err != nil {
		t.Fatal(err)
	}
	key, err = es.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	params, err = es.EncodeParams()
	if err != nil {
		t.Fatal(err)
	}
	return key, params
}

func TestSubmitPersistsQueuedRecordBeforeResponse(t *testing.T) {
	st, err := store.OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts, gate := newTestServer(t, Config{Store: st, Workers: 1}, true)

	_, sub := post(t, ts.URL+"/v1/solve", `{"k":200,"seed":11}`)
	// The 202 has been answered; the worker is still held at the gate.
	// The queued record must already be durable.
	rec, ok, err := st.GetJob(sub.ID)
	if err != nil || !ok {
		t.Fatalf("queued record missing after 202: ok=%v err=%v", ok, err)
	}
	if rec.Status != store.StatusQueued || rec.Key != sub.Key || rec.Tenant != "default" {
		t.Fatalf("queued record = %+v", rec)
	}
	close(gate)
	waitDone(t, ts.URL, sub.ID)
	rec, ok, _ = st.GetJob(sub.ID)
	if !ok || rec.Status != store.StatusDone {
		t.Fatalf("terminal record = %+v (ok=%v)", rec, ok)
	}
	if _, ok, _ := st.GetResult(sub.Key); !ok {
		t.Fatal("result document not persisted")
	}
}

func TestRecoveryRequeuesQueuedRecord(t *testing.T) {
	st, err := store.OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, params := specParts(t, spec.KindSolve, `{"k":300,"seed":9}`)
	rec := store.JobRecord{
		ID: key[:ringPrefixLen] + "-1", Kind: "solve", Key: key, Params: params,
		Tenant: "default", Status: store.StatusQueued, Created: time.Now(),
	}
	if err := st.PutJob(rec); err != nil {
		t.Fatal(err)
	}

	// Boot a fresh daemon over the store: the accepted-but-unfinished
	// job must run to completion without any client resubmitting it.
	_, ts, _ := newTestServer(t, Config{Store: st}, false)
	if v := waitDone(t, ts.URL, rec.ID); v.Status != StatusDone {
		t.Fatalf("recovered job = %s (%s)", v.Status, v.Error)
	}
	if got := metricValue(t, ts.URL, "macsimd_store_recovered_total"); got != 1 {
		t.Fatalf("store_recovered_total = %v", got)
	}
	if got := metricValue(t, ts.URL, "macsimd_store_requeued_total"); got != 1 {
		t.Fatalf("store_requeued_total = %v", got)
	}
	// The published result serves an identical fresh submit as a hit.
	resp, _ := post(t, ts.URL+"/v1/solve", `{"k":300,"seed":9}`)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("post-recovery resubmit X-Cache = %q", resp.Header.Get("X-Cache"))
	}
}

func TestRecoveryRequeuesLeaseExpiredRecord(t *testing.T) {
	st, err := store.OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, params := specParts(t, spec.KindSolve, `{"k":250,"seed":4}`)
	rec := store.JobRecord{
		ID: key[:ringPrefixLen] + "-2", Kind: "solve", Key: key, Params: params,
		Tenant: "default", Status: store.StatusRunning, Created: time.Now(),
		Started: time.Now(), LeaseUntil: time.Now().Add(-time.Second),
	}
	if err := st.PutJob(rec); err != nil {
		t.Fatal(err)
	}
	_, ts, _ := newTestServer(t, Config{Store: st}, false)
	if v := waitDone(t, ts.URL, rec.ID); v.Status != StatusDone {
		t.Fatalf("lease-expired job = %s (%s)", v.Status, v.Error)
	}
	// The requeue cost one retry, recorded durably.
	final, ok, _ := st.GetJob(rec.ID)
	if !ok || final.Status != store.StatusDone || final.Retries != 1 {
		t.Fatalf("final record = %+v (ok=%v)", final, ok)
	}
}

func TestRecoveryFailsBeyondMaxRetries(t *testing.T) {
	st, err := store.OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, params := specParts(t, spec.KindSolve, `{"k":260,"seed":5}`)
	rec := store.JobRecord{
		ID: key[:ringPrefixLen] + "-3", Kind: "solve", Key: key, Params: params,
		Tenant: "default", Status: store.StatusRunning, Created: time.Now(),
		Started: time.Now(), LeaseUntil: time.Now().Add(-time.Second),
		Retries: 2,
	}
	if err := st.PutJob(rec); err != nil {
		t.Fatal(err)
	}
	_, ts, _ := newTestServer(t, Config{Store: st, MaxRetries: 2}, false)
	v := waitDone(t, ts.URL, rec.ID)
	if v.Status != StatusFailed || v.Error == "" {
		t.Fatalf("over-retried job = %s (%q), want failed with a give-up error", v.Status, v.Error)
	}
	if got := metricValue(t, ts.URL, "macsimd_store_requeued_total"); got != 0 {
		t.Fatalf("store_requeued_total = %v, want 0", got)
	}
}

func TestRecoveryDefersLiveLease(t *testing.T) {
	st, err := store.OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, params := specParts(t, spec.KindSolve, `{"k":270,"seed":6}`)
	rec := store.JobRecord{
		ID: key[:ringPrefixLen] + "-4", Kind: "solve", Key: key, Params: params,
		Tenant: "default", Status: store.StatusRunning, Created: time.Now(),
		Started: time.Now(), LeaseUntil: time.Now().Add(250 * time.Millisecond),
	}
	if err := st.PutJob(rec); err != nil {
		t.Fatal(err)
	}
	_, ts, _ := newTestServer(t, Config{Store: st}, false)
	// The previous owner's lease is still live: the job is pollable but
	// not yet requeued.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deferred job poll = %d", resp.StatusCode)
	}
	if got := metricValue(t, ts.URL, "macsimd_store_requeued_total"); got != 0 {
		t.Fatalf("requeued before the lease expired: %v", got)
	}
	// Once the lease lapses, the job requeues (costing a retry) and
	// completes.
	if v := waitDone(t, ts.URL, rec.ID); v.Status != StatusDone {
		t.Fatalf("deferred job = %s (%s)", v.Status, v.Error)
	}
	final, ok, _ := st.GetJob(rec.ID)
	if !ok || final.Retries != 1 {
		t.Fatalf("final record = %+v (ok=%v)", final, ok)
	}
}

func TestDrainedRestartReportsJobsDone(t *testing.T) {
	dir := t.TempDir()
	st, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1, _ := newTestServer(t, Config{Store: st}, false)
	_, sub := post(t, ts1.URL+"/v1/evaluate", `{"protocols":["one-fail"],"ks":[32],"runs":2,"seed":8}`)
	done := waitDone(t, ts1.URL, sub.ID)
	if done.Status != StatusDone {
		t.Fatalf("job = %s (%s)", done.Status, done.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.Close()

	// A fresh daemon over the same data-dir reports the drained job as
	// done — with its result — instead of losing it.
	st2, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2, _ := newTestServer(t, Config{Store: st2}, false)
	v := waitDone(t, ts2.URL, sub.ID)
	if v.Status != StatusDone || len(v.Result) == 0 {
		t.Fatalf("restarted daemon reports %s (result %d bytes)", v.Status, len(v.Result))
	}
	// And serves the identical submit from the persistent result tier.
	resp, sub2 := post(t, ts2.URL+"/v1/evaluate", `{"protocols":["one-fail"],"ks":[32],"runs":2,"seed":8}`)
	if resp.Header.Get("X-Cache") != "hit" || !sub2.Cached {
		t.Fatalf("restarted daemon missed the persisted result (X-Cache=%q)", resp.Header.Get("X-Cache"))
	}
}

func TestCanceledJobIsNotResurrected(t *testing.T) {
	dir := t.TempDir()
	st, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1, gate := newTestServer(t, Config{Store: st, Workers: 1, QueueDepth: 8}, true)

	// Job A holds the single worker at the gate; job B sits queued and
	// is canceled.
	_, subA := post(t, ts1.URL+"/v1/solve", `{"k":120,"seed":1}`)
	deadline := time.Now().Add(5 * time.Second)
	for metricValue(t, ts1.URL, "macsimd_queue_depth") != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued job A")
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, subB := post(t, ts1.URL+"/v1/solve", `{"k":130,"seed":2}`)
	if resp := del(t, ts1.URL, subB.ID); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel = %d", resp.StatusCode)
	}
	// The cancellation is already durable — before any drain.
	recB, ok, _ := st.GetJob(subB.ID)
	if !ok || recB.Status != store.StatusCanceled {
		t.Fatalf("canceled record = %+v (ok=%v)", recB, ok)
	}
	close(gate)
	waitDone(t, ts1.URL, subA.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.Close()

	st2, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2, _ := newTestServer(t, Config{Store: st2}, false)
	if v := waitDone(t, ts2.URL, subB.ID); v.Status != StatusCanceled {
		t.Fatalf("canceled job after restart = %s", v.Status)
	}
	if v := waitDone(t, ts2.URL, subA.ID); v.Status != StatusDone {
		t.Fatalf("finished job after restart = %s", v.Status)
	}
	if got := metricValue(t, ts2.URL, "macsimd_store_requeued_total"); got != 0 {
		t.Fatalf("restart requeued %v jobs, want 0 — canceled work resurrected", got)
	}
}

func TestPersistCanceledOverridesRunningRecord(t *testing.T) {
	st, err := store.OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, _, gate := newTestServer(t, Config{Store: st, Workers: 1}, true)
	key, params := specParts(t, spec.KindSolve, `{"k":140,"seed":3}`)
	es, _ := spec.Decode(spec.KindSolve, params)
	j := newJob(key[:ringPrefixLen]+"-9", es, key)
	j.params = params
	j.tenant = "default"
	if !j.markRunning() {
		t.Fatal("markRunning on a fresh job returned false")
	}
	s.putJobRecord(j)
	if rec, ok, _ := st.GetJob(j.id); !ok || rec.Status != store.StatusRunning || rec.LeaseUntil.IsZero() {
		t.Fatalf("running record = %+v (ok=%v)", rec, ok)
	}
	j.cancel()
	s.persistCanceled(j)
	rec, ok, _ := st.GetJob(j.id)
	if !ok || rec.Status != store.StatusCanceled || !rec.LeaseUntil.IsZero() {
		t.Fatalf("canceled record = %+v (ok=%v)", rec, ok)
	}
	close(gate)
}

func TestRegistryEvictionDropsStoreRecords(t *testing.T) {
	st, err := store.OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts, _ := newTestServer(t, Config{Store: st, JobsRetained: 2}, false)
	bodies := []string{`{"k":100,"seed":21}`, `{"k":100,"seed":22}`, `{"k":100,"seed":23}`}
	ids := make([]string, len(bodies))
	for i, body := range bodies {
		_, sub := post(t, ts.URL+"/v1/solve", body)
		ids[i] = sub.ID
		waitDone(t, ts.URL, sub.ID)
	}
	recs, err := st.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("store holds %d job records after eviction, want 2", len(recs))
	}
	// The result documents stay: they are the persistent cache.
	for i, body := range bodies {
		resp, _ := post(t, ts.URL+"/v1/solve", body)
		if resp.Header.Get("X-Cache") != "hit" {
			t.Fatalf("body %d (%s) missed after eviction", i, body)
		}
	}
}

func TestMaxRetriesNegativeMeansNoRequeue(t *testing.T) {
	cfg := Config{MaxRetries: -1}.withDefaults()
	if cfg.MaxRetries != 0 {
		t.Fatalf("MaxRetries = %d, want 0 (never requeue)", cfg.MaxRetries)
	}
	cfg = Config{}.withDefaults()
	if cfg.MaxRetries != 3 {
		t.Fatalf("default MaxRetries = %d, want 3", cfg.MaxRetries)
	}
	if cfg.LeaseDuration != 15*time.Second {
		t.Fatalf("default LeaseDuration = %v", cfg.LeaseDuration)
	}
}
