// Job kinds: the request schema, normalization, canonical hashing and
// simulation runner for each of the four submit endpoints. Every kind is
// deterministic in its normalized parameters (all randomness derives
// from the seed), which is what makes the canonical-request-hash cache
// sound: two requests with the same key would compute byte-identical
// results.

package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/dynamic"
	"repro/internal/harness"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/throughput"
)

// Limits bound what one request may ask of the simulators, so a public
// endpoint cannot be asked for a week of CPU time.
type Limits struct {
	// MaxK bounds k for /v1/solve and each entry of /v1/evaluate ks
	// (default 10'000'000 — the paper's largest size).
	MaxK int
	// MaxExp bounds /v1/evaluate maxExp (default 6).
	MaxExp int
	// MaxRuns bounds runs per point (default 10, the paper's count).
	MaxRuns int
	// MaxMessages bounds messages per dynamic execution (default
	// 1'000'000).
	MaxMessages int
	// MaxLambdas bounds the offered-load grid length (default 16).
	MaxLambdas int
}

// withDefaults fills zero fields.
func (l Limits) withDefaults() Limits {
	if l.MaxK <= 0 {
		l.MaxK = 10_000_000
	}
	if l.MaxExp <= 0 {
		l.MaxExp = 6
	}
	if l.MaxRuns <= 0 {
		l.MaxRuns = 10
	}
	if l.MaxMessages <= 0 {
		l.MaxMessages = 1_000_000
	}
	if l.MaxLambdas <= 0 {
		l.MaxLambdas = 16
	}
	return l
}

// jobSpec is one normalized, validated, hashable simulation request.
type jobSpec interface {
	// kind names the endpoint ("solve", "evaluate", "throughput",
	// "scenario").
	kind() string
	// normalize applies defaults and validates against the limits. After
	// normalize, marshaling the spec yields the canonical parameter
	// encoding.
	normalize(l Limits) error
	// run executes the simulation, publishing progress events through
	// publish and accounting simulated slots through addSlots; the
	// returned value is marshaled into the job result.
	run(publish func(any), addSlots func(uint64)) (any, error)
}

// canonicalKey hashes a normalized spec into the cache key. The struct
// field order is fixed at compile time, so the encoding is canonical.
func canonicalKey(spec jobSpec) (string, error) {
	params, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(spec.kind()))
	h.Write([]byte{0})
	h.Write(params)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// validateLambdas applies the shared offered-load grid rules.
func validateLambdas(lambdas []float64, l Limits) error {
	if len(lambdas) > l.MaxLambdas {
		return fmt.Errorf("at most %d lambdas per request, got %d", l.MaxLambdas, len(lambdas))
	}
	for _, v := range lambdas {
		if !(v > 0) || math.IsInf(v, 0) {
			return fmt.Errorf("offered load must be a finite value > 0, got %v", v)
		}
	}
	return nil
}

// --- solve ---

// solveRequest is the body of POST /v1/solve: one static k-selection
// execution, mac.Protocol.Solve over HTTP.
type solveRequest struct {
	// Protocol is a name or alias from the named registry (default
	// "one-fail").
	Protocol string `json:"protocol"`
	// K is the number of contenders (default 1000).
	K int `json:"k"`
	// Seed keys all channel randomness (default 1).
	Seed uint64 `json:"seed"`
}

func (r *solveRequest) kind() string { return "solve" }

func (r *solveRequest) normalize(l Limits) error {
	if r.Protocol == "" {
		r.Protocol = "one-fail"
	}
	// Canonicalize aliases ("ofa") to the registry name so both hash to
	// the same cache key.
	name, err := harness.CanonicalSystemName(r.Protocol)
	if err != nil {
		return err
	}
	r.Protocol = name
	if r.K == 0 {
		r.K = 1000
	}
	if r.K < 1 || r.K > l.MaxK {
		return fmt.Errorf("k must be in [1, %d], got %d", l.MaxK, r.K)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	return nil
}

// solveResult is the result document of a solve job.
type solveResult struct {
	Protocol string  `json:"protocol"`
	System   string  `json:"system"`
	K        int     `json:"k"`
	Seed     uint64  `json:"seed"`
	Slots    uint64  `json:"slots"`
	Ratio    float64 `json:"ratio"`
	Analysis string  `json:"analysis"`
}

func (r *solveRequest) run(publish func(any), addSlots func(uint64)) (any, error) {
	sys, err := harness.SystemByName(r.Protocol)
	if err != nil {
		return nil, err
	}
	// The identical stream derivation as mac.Protocol.Solve, so the API
	// reproduces the library bit for bit.
	steps, err := sys.Run(r.K, rng.NewStream(r.Seed, "mac.Solve", sys.Name(), fmt.Sprint(r.K)))
	if err != nil {
		return nil, err
	}
	addSlots(steps)
	return solveResult{
		Protocol: r.Protocol,
		System:   sys.Name(),
		K:        r.K,
		Seed:     r.Seed,
		Slots:    steps,
		Ratio:    float64(steps) / float64(r.K),
		Analysis: sys.AnalysisRatio(r.K),
	}, nil
}

// --- evaluate ---

// evaluateRequest is the body of POST /v1/evaluate: the paper's static
// sweep (Table 1 / Figure 1 data), mac.Evaluate over HTTP.
type evaluateRequest struct {
	// Protocols lists registry names; empty means the paper's five-row
	// lineup.
	Protocols []string `json:"protocols,omitempty"`
	// MaxExp selects sizes 10..10^maxExp (default 4); ignored when Ks is
	// set.
	MaxExp int `json:"maxExp,omitempty"`
	// Ks overrides the size grid.
	Ks []int `json:"ks,omitempty"`
	// Runs is the number of averaged runs per point (default 3).
	Runs int `json:"runs"`
	// Seed is the master seed (default 1).
	Seed uint64 `json:"seed"`
}

func (r *evaluateRequest) kind() string { return "evaluate" }

func (r *evaluateRequest) normalize(l Limits) error {
	for i, name := range r.Protocols {
		canonical, err := harness.CanonicalSystemName(name)
		if err != nil {
			return err
		}
		r.Protocols[i] = canonical
	}
	if len(r.Ks) > 0 {
		r.MaxExp = 0
		if len(r.Ks) > 12 {
			return fmt.Errorf("at most 12 ks per request, got %d", len(r.Ks))
		}
		for _, k := range r.Ks {
			if k < 1 || k > l.MaxK {
				return fmt.Errorf("ks entries must be in [1, %d], got %d", l.MaxK, k)
			}
		}
	} else {
		if r.MaxExp == 0 {
			r.MaxExp = 4
		}
		if r.MaxExp < 1 || r.MaxExp > l.MaxExp {
			return fmt.Errorf("maxExp must be in [1, %d], got %d", l.MaxExp, r.MaxExp)
		}
	}
	if r.Runs == 0 {
		r.Runs = 3
	}
	if r.Runs < 1 || r.Runs > l.MaxRuns {
		return fmt.Errorf("runs must be in [1, %d], got %d", l.MaxRuns, r.Runs)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	return nil
}

// systems resolves the request's protocol lineup.
func (r *evaluateRequest) systems() ([]harness.System, error) {
	if len(r.Protocols) == 0 {
		return harness.PaperSystems(), nil
	}
	out := make([]harness.System, len(r.Protocols))
	for i, name := range r.Protocols {
		sys, err := harness.SystemByName(name)
		if err != nil {
			return nil, err
		}
		out[i] = sys
	}
	return out, nil
}

// evaluateCell is one (system, k) aggregate of an evaluate result.
type evaluateCell struct {
	K         int     `json:"k"`
	Runs      int     `json:"runs"`
	MeanSlots float64 `json:"meanSlots"`
	Ratio     float64 `json:"ratio"`
	Analysis  string  `json:"analysis"`
}

// evaluateSeries is one system's sweep outcome.
type evaluateSeries struct {
	System string         `json:"system"`
	Cells  []evaluateCell `json:"cells"`
}

// evaluateResult is the result document of an evaluate job.
type evaluateResult struct {
	Seed   uint64           `json:"seed"`
	Series []evaluateSeries `json:"series"`
	Table1 string           `json:"table1"`
	CSV    string           `json:"csv"`
}

// evaluateProgress is one streamed progress event.
type evaluateProgress struct {
	Event  string `json:"event"`
	System string `json:"system"`
	K      int    `json:"k"`
	Run    int    `json:"run"`
	Slots  uint64 `json:"slots"`
}

func (r *evaluateRequest) run(publish func(any), addSlots func(uint64)) (any, error) {
	systems, err := r.systems()
	if err != nil {
		return nil, err
	}
	ks := r.Ks
	if len(ks) == 0 {
		ks = harness.PaperKs(r.MaxExp)
	}
	sweep := harness.Sweep{
		Ks:   ks,
		Runs: r.Runs,
		Seed: r.Seed,
		Progress: func(system string, k, run int, steps uint64) {
			addSlots(steps)
			publish(evaluateProgress{Event: "progress", System: system, K: k, Run: run, Slots: steps})
		},
	}
	results, err := sweep.Run(systems)
	if err != nil {
		return nil, err
	}
	out := evaluateResult{
		Seed:   r.Seed,
		Series: make([]evaluateSeries, len(results)),
		Table1: harness.Table1(results),
		CSV:    harness.CSV(results),
	}
	for i, res := range results {
		s := evaluateSeries{System: res.System.Name(), Cells: make([]evaluateCell, len(res.Cells))}
		for j := range res.Cells {
			c := &res.Cells[j]
			s.Cells[j] = evaluateCell{
				K:         c.K,
				Runs:      c.Steps.N(),
				MeanSlots: c.Steps.Mean(),
				Ratio:     c.Ratio(),
				Analysis:  res.System.AnalysisRatio(c.K),
			}
		}
		out.Series[i] = s
	}
	return out, nil
}

// --- throughput / scenario ---

// throughputRequest is the body of POST /v1/throughput (benign shapes)
// and, with Scenario set, POST /v1/scenario (the full workload catalog):
// the λ-sweep saturation experiment, mac.EvaluateDynamic over HTTP.
type throughputRequest struct {
	// Scenario names a catalog workload; only /v1/scenario sets it.
	Scenario string `json:"scenario,omitempty"`
	// Shape selects a benign arrival pattern for /v1/throughput (default
	// "poisson"); ignored when Scenario is set.
	Shape string `json:"shape,omitempty"`
	// Lambdas is the offered-load grid (default 0.05, 0.1, 0.2).
	Lambdas []float64 `json:"lambdas"`
	// Messages per execution (default 2000).
	Messages int `json:"messages"`
	// Runs per (protocol, λ) point (default 2).
	Runs int `json:"runs"`
	// Seed is the master seed (default 1).
	Seed uint64 `json:"seed"`
}

// scenarioRequest is the body of POST /v1/scenario: the same sweep
// shape, selecting a catalog workload instead of a benign arrival
// shape. A distinct type so the two endpoints hash into disjoint key
// spaces.
type scenarioRequest struct{ throughputRequest }

func (r *throughputRequest) kind() string { return "throughput" }
func (r *scenarioRequest) kind() string   { return "scenario" }

func (r *throughputRequest) normalize(l Limits) error {
	if r.Scenario != "" {
		return fmt.Errorf("scenario requests go to /v1/scenario")
	}
	if r.Shape == "" {
		r.Shape = "poisson"
	}
	shape, err := throughput.ParseShape(r.Shape)
	if err != nil {
		return err
	}
	r.Shape = shape.String() // canonicalize aliases ("burst" → "bursty")
	return r.normalizeCommon(l)
}

func (r *scenarioRequest) normalize(l Limits) error {
	if r.Shape != "" {
		return fmt.Errorf("shape requests go to /v1/throughput")
	}
	if r.Scenario == "" {
		r.Scenario = "poisson"
	}
	if _, err := scenario.ByName(r.Scenario); err != nil {
		return err
	}
	return r.normalizeCommon(l)
}

func (r *throughputRequest) normalizeCommon(l Limits) error {
	if len(r.Lambdas) == 0 {
		r.Lambdas = []float64{0.05, 0.1, 0.2}
	}
	if err := validateLambdas(r.Lambdas, l); err != nil {
		return err
	}
	if r.Messages == 0 {
		r.Messages = 2000
	}
	if r.Messages < 1 || r.Messages > l.MaxMessages {
		return fmt.Errorf("messages must be in [1, %d], got %d", l.MaxMessages, r.Messages)
	}
	if r.Runs == 0 {
		r.Runs = 2
	}
	if r.Runs < 1 || r.Runs > l.MaxRuns {
		return fmt.Errorf("runs must be in [1, %d], got %d", l.MaxRuns, r.Runs)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	return nil
}

// throughputPoint is one (protocol, λ) aggregate of a sweep result.
type throughputPoint struct {
	Lambda      float64 `json:"lambda"`
	Throughput  float64 `json:"throughput"`
	LatencyMean float64 `json:"latencyMean"`
	LatencyP50  float64 `json:"latencyP50"`
	LatencyP99  float64 `json:"latencyP99"`
	MaxBacklog  float64 `json:"maxBacklog"`
	Completed   int     `json:"completed"`
	Runs        int     `json:"runs"`
	Saturated   bool    `json:"saturated"`
}

// throughputSeries is one protocol's sweep outcome.
type throughputSeries struct {
	Protocol string            `json:"protocol"`
	Points   []throughputPoint `json:"points"`
}

// throughputResult is the result document of a throughput or scenario
// job.
type throughputResult struct {
	Scenario string             `json:"scenario"`
	Seed     uint64             `json:"seed"`
	Series   []throughputSeries `json:"series"`
	Table    string             `json:"table"`
	CSV      string             `json:"csv"`
}

// throughputProgress is one streamed progress event.
type throughputProgress struct {
	Event     string  `json:"event"`
	Protocol  string  `json:"protocol"`
	Lambda    float64 `json:"lambda"`
	Run       int     `json:"run"`
	Delivered int     `json:"delivered"`
	Drained   bool    `json:"drained"`
}

func (r *scenarioRequest) run(publish func(any), addSlots func(uint64)) (any, error) {
	scn, err := scenario.ByName(r.Scenario)
	if err != nil {
		return nil, err
	}
	return r.runSweep(throughput.Config{Scenario: scn}, scn.Name, publish, addSlots)
}

func (r *throughputRequest) run(publish func(any), addSlots func(uint64)) (any, error) {
	shape, err := throughput.ParseShape(r.Shape)
	if err != nil {
		return nil, err
	}
	return r.runSweep(throughput.Config{Shape: shape}, shape.String(), publish, addSlots)
}

// runSweep executes the λ-sweep shared by both endpoints.
func (r *throughputRequest) runSweep(cfg throughput.Config, workload string,
	publish func(any), addSlots func(uint64)) (any, error) {
	cfg.Lambdas = r.Lambdas
	cfg.Messages = r.Messages
	cfg.Runs = r.Runs
	cfg.Seed = r.Seed
	cfg.Progress = func(name string, lambda float64, run int, res dynamic.Result) {
		// Saturated runs burn their full (unknown here) budget; counting
		// only drained completions undercounts slightly, which is fine
		// for a rate metric.
		if res.Completed {
			addSlots(res.Completion)
		}
		publish(throughputProgress{Event: "progress", Protocol: name, Lambda: lambda,
			Run: run, Delivered: res.Delivered, Drained: res.Completed})
	}
	series, err := throughput.Run(throughput.DefaultProtocols(), cfg)
	if err != nil {
		return nil, err
	}
	out := throughputResult{
		Scenario: workload,
		Seed:     r.Seed,
		Series:   make([]throughputSeries, len(series)),
		Table:    throughput.Table(series),
		CSV:      throughput.CSV(series),
	}
	for i, s := range series {
		ts := throughputSeries{Protocol: s.Protocol.Name, Points: make([]throughputPoint, len(s.Points))}
		for j := range s.Points {
			p := &s.Points[j]
			ts.Points[j] = throughputPoint{
				Lambda:      p.Lambda,
				Throughput:  p.Throughput.Mean(),
				LatencyMean: p.Latency.Mean(),
				LatencyP50:  p.Latency.Quantile(0.5),
				LatencyP99:  p.Latency.Quantile(0.99),
				MaxBacklog:  p.Backlog.Max(),
				Completed:   p.Completed,
				Runs:        p.Runs,
				Saturated:   p.Saturated(),
			}
		}
		out.Series[i] = ts
	}
	return out, nil
}
