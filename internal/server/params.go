// The request layer is a thin shim over the spec layer: each submit
// endpoint decodes its flat JSON body into a spec.ExperimentSpec of the
// endpoint's kind, validates it against the server's limits and hashes
// it with the spec's canonical key. All schema knowledge, defaulting,
// validation and result codecs live in internal/spec — shared verbatim
// with the library façade (mac.Run) and the CLI.

package server

import (
	"io"
	"net/http"

	"repro/internal/spec"
)

// Limits bound what one request may ask of the simulators, so a public
// endpoint cannot be asked for a week of CPU time. Zero fields take the
// serving defaults below (in the spec layer itself, zero means
// unlimited — caps are service policy, applied here).
type Limits = spec.Limits

// limitsWithDefaults fills zero fields with the serving defaults:
// MaxK 10'000'000 (the paper's largest size), MaxExp 6, MaxRuns 10
// (the paper's count), MaxReps 64 (the adaptive-precision replication
// cap), MaxMessages 1'000'000, MaxLambdas 16, MaxKs 12.
func limitsWithDefaults(l Limits) Limits {
	if l.MaxK <= 0 {
		l.MaxK = 10_000_000
	}
	if l.MaxExp <= 0 {
		l.MaxExp = 6
	}
	if l.MaxRuns <= 0 {
		l.MaxRuns = 10
	}
	if l.MaxReps <= 0 {
		l.MaxReps = 64
	}
	if l.MaxMessages <= 0 {
		l.MaxMessages = 1_000_000
	}
	if l.MaxLambdas <= 0 {
		l.MaxLambdas = 16
	}
	if l.MaxKs <= 0 {
		l.MaxKs = 12
	}
	if l.MaxWindow <= 0 {
		l.MaxWindow = 65536
	}
	if l.MaxSessionWindows <= 0 {
		l.MaxSessionWindows = 1_000_000
	}
	return l
}

// readBody reads a bounded submit body (an empty body selects all
// defaults). The raw bytes are kept around by the submit path because a
// clustered node may need to replay them verbatim to the key's owner.
// spec.Decode rejects unknown fields — a misspelled parameter must not
// silently hash to a different (default-valued) experiment.
func readBody(r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(nil, r.Body, 1<<20))
}
