package rng

import (
	"math"
	"testing"
)

func TestPoissonEdgeCases(t *testing.T) {
	t.Parallel()
	r := New(1)
	for i := 0; i < 100; i++ {
		if got := r.Poisson(0); got != 0 {
			t.Fatalf("Poisson(0) = %d, want 0", got)
		}
		if got := r.Poisson(-3); got != 0 {
			t.Fatalf("Poisson(-3) = %d, want 0", got)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	t.Parallel()
	means := []float64{0.1, 1, 5, 11.9, 12.1, 50, 1000}
	for _, mean := range means {
		r := New(uint64(mean * 1e3))
		const draws = 200000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < draws; i++ {
			v := float64(r.Poisson(mean))
			if v < 0 {
				t.Fatalf("Poisson(%v) returned negative %v", mean, v)
			}
			sum += v
			sumSq += v * v
		}
		got := sum / draws
		variance := sumSq/draws - got*got
		tol := 6 * math.Sqrt(mean/draws)
		if math.Abs(got-mean) > tol {
			t.Errorf("Poisson(%v) mean = %v, want within %v", mean, got, tol)
		}
		if math.Abs(variance-mean) > 0.05*mean+6*mean/math.Sqrt(draws) {
			t.Errorf("Poisson(%v) variance = %v, want ~%v", mean, variance, mean)
		}
	}
}

// TestPoissonDistributionSmall checks the empirical PMF for a small mean
// against exact Poisson probabilities.
func TestPoissonDistributionSmall(t *testing.T) {
	t.Parallel()
	const mean, draws = 3.5, 400000
	r := New(55)
	counts := make(map[int]int)
	for i := 0; i < draws; i++ {
		counts[r.Poisson(mean)]++
	}
	for k := 0; k <= 12; k++ {
		exact := math.Exp(float64(k)*math.Log(mean) - mean - lfact(float64(k)))
		want := exact * draws
		if want < 20 {
			continue
		}
		tol := 6 * math.Sqrt(want)
		if math.Abs(float64(counts[k])-want) > tol {
			t.Errorf("P(X=%d): observed %d, want %.0f +/- %.0f", k, counts[k], want, tol)
		}
	}
}

// TestPoissonRegimesAgree compares the Knuth and PTRS samplers on either
// side of the cutoff via a KS test at a common mean.
func TestPoissonRegimesAgree(t *testing.T) {
	t.Parallel()
	const mean, draws = 20.0, 200000
	rKnuth, rPTRS := New(301), New(302)
	const maxK = 100
	var cdfA, cdfB [maxK + 1]float64
	for i := 0; i < draws; i++ {
		a := rKnuth.poissonKnuth(mean)
		b := rPTRS.poissonPTRS(mean)
		if a > maxK {
			a = maxK
		}
		if b > maxK {
			b = maxK
		}
		cdfA[a]++
		cdfB[b]++
	}
	maxGap, accA, accB := 0.0, 0.0, 0.0
	for k := 0; k <= maxK; k++ {
		accA += cdfA[k] / draws
		accB += cdfB[k] / draws
		if gap := math.Abs(accA - accB); gap > maxGap {
			maxGap = gap
		}
	}
	crit := 1.95 * math.Sqrt(2.0/draws)
	if maxGap > crit {
		t.Fatalf("Knuth and PTRS disagree: KS distance %v > %v", maxGap, crit)
	}
}

func BenchmarkPoissonSmallMean(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Poisson(4)
	}
	_ = sink
}

func BenchmarkPoissonLargeMean(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Poisson(5000)
	}
	_ = sink
}
