package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	t.Parallel()
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: generators with equal seeds diverged: %d vs %d", i, got, want)
		}
	}
}

func TestSeedsProduceDistinctStreams(t *testing.T) {
	t.Parallel()
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 1000 draws", same)
	}
}

func TestReseedRestartsSequence(t *testing.T) {
	t.Parallel()
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("draw %d after Reseed: got %d, want %d", i, got, first[i])
		}
	}
}

func TestNewStreamLabels(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name     string
		labelsA  []string
		labelsB  []string
		wantSame bool
	}{
		{name: "identical labels", labelsA: []string{"ofa", "10"}, labelsB: []string{"ofa", "10"}, wantSame: true},
		{name: "different protocol", labelsA: []string{"ofa", "10"}, labelsB: []string{"ebb", "10"}, wantSame: false},
		{name: "different k", labelsA: []string{"ofa", "10"}, labelsB: []string{"ofa", "100"}, wantSame: false},
		{name: "label boundary shift", labelsA: []string{"ab", "c"}, labelsB: []string{"a", "bc"}, wantSame: false},
		{name: "empty vs none", labelsA: []string{""}, labelsB: nil, wantSame: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			a := NewStream(99, tt.labelsA...)
			b := NewStream(99, tt.labelsB...)
			same := a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64()
			if same != tt.wantSame {
				t.Fatalf("streams %v vs %v: same=%v, want %v", tt.labelsA, tt.labelsB, same, tt.wantSame)
			}
		})
	}
}

func TestStreamIDDistinct(t *testing.T) {
	t.Parallel()
	seen := make(map[uint64]bool)
	for k := uint64(0); k < 100; k++ {
		for run := uint64(0); run < 100; run++ {
			id := StreamID(5, k, run)
			if seen[id] {
				t.Fatalf("StreamID collision at k=%d run=%d", k, run)
			}
			seen[id] = true
		}
	}
}

func TestFloat64Range(t *testing.T) {
	t.Parallel()
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64OpenRange(t *testing.T) {
	t.Parallel()
	r := New(4)
	for i := 0; i < 100000; i++ {
		f := r.Float64Open()
		if f <= 0 || f >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	t.Parallel()
	r := New(5)
	const n = 1 << 20
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.003 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestUint64nBounds(t *testing.T) {
	t.Parallel()
	r := New(6)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniform(t *testing.T) {
	t.Parallel()
	r := New(8)
	const n, draws = 10, 1000000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliEdge(t *testing.T) {
	t.Parallel()
	r := New(9)
	for i := 0; i < 1000; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	t.Parallel()
	tests := []float64{0.01, 0.1, 0.5, 0.9}
	for _, p := range tests {
		r := New(uint64(math.Float64bits(p)))
		const n = 500000
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		tol := 5 * math.Sqrt(p*(1-p)/n)
		if math.Abs(got-p) > tol {
			t.Errorf("Bernoulli(%v) frequency %v, want within %v", p, got, tol)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	t.Parallel()
	r := New(11)
	const n = 1 << 19
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.01 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	t.Parallel()
	r := New(12)
	const n = 1 << 19
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("NormFloat64 mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("NormFloat64 variance = %v, want ~1", variance)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	t.Parallel()
	r := New(13)
	const n = 100
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	r.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	seen := make([]bool, n)
	for _, v := range perm {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("shuffle produced invalid permutation: %v", perm)
		}
		seen[v] = true
	}
}

func TestShuffleUniformFirstElement(t *testing.T) {
	t.Parallel()
	r := New(14)
	const n, draws = 5, 200000
	var counts [n]int
	arr := make([]int, n)
	for d := 0; d < draws; d++ {
		for i := range arr {
			arr[i] = i
		}
		r.Shuffle(n, func(i, j int) { arr[i], arr[j] = arr[j], arr[i] })
		counts[arr[0]]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d first %d times, want ~%.0f", v, c, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64n(1000003)
	}
	_ = sink
}
