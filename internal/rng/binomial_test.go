package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialEdgeCases(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		n    int
		p    float64
		want int
	}{
		{name: "n=0", n: 0, p: 0.5, want: 0},
		{name: "p=0", n: 100, p: 0, want: 0},
		{name: "p=1", n: 100, p: 1, want: 100},
		{name: "p negative", n: 100, p: -0.2, want: 0},
		{name: "p above one", n: 100, p: 1.3, want: 100},
	}
	r := New(1)
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for i := 0; i < 100; i++ {
				if got := r.Binomial(tt.n, tt.p); got != tt.want {
					t.Fatalf("Binomial(%d,%v) = %d, want %d", tt.n, tt.p, got, tt.want)
				}
			}
		})
	}
}

func TestBinomialBounds(t *testing.T) {
	t.Parallel()
	r := New(2)
	f := func(nRaw uint16, pRaw uint16) bool {
		n := int(nRaw % 5000)
		p := float64(pRaw) / math.MaxUint16
		v := r.Binomial(n, p)
		return v >= 0 && v <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestBinomialMoments checks mean and variance across both sampler regimes
// (inversion for small n*p, BTRS for large n*p) and across the p>1/2
// symmetry reflection.
func TestBinomialMoments(t *testing.T) {
	t.Parallel()
	tests := []struct {
		n int
		p float64
	}{
		{n: 10, p: 0.3},       // inversion
		{n: 50, p: 0.02},      // inversion, small p
		{n: 1000, p: 0.001},   // inversion, tiny mean
		{n: 1000, p: 0.5},     // BTRS
		{n: 1000, p: 0.9},     // BTRS via symmetry
		{n: 100000, p: 0.001}, // BTRS, large n small p (engine regime)
		{n: 1000000, p: 0.2},  // BTRS, large n
		{n: 37, p: 0.49},      // inversion near boundary
	}
	for _, tt := range tests {
		r := New(uint64(tt.n)*31 + uint64(tt.p*1e6))
		const draws = 60000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < draws; i++ {
			v := float64(r.Binomial(tt.n, tt.p))
			sum += v
			sumSq += v * v
		}
		mean := sum / draws
		variance := sumSq/draws - mean*mean
		wantMean := float64(tt.n) * tt.p
		wantVar := wantMean * (1 - tt.p)
		meanTol := 6 * math.Sqrt(wantVar/draws)
		if wantVar == 0 {
			meanTol = 1e-9
		}
		if math.Abs(mean-wantMean) > meanTol {
			t.Errorf("Binomial(%d,%v): mean %v, want %v +/- %v", tt.n, tt.p, mean, wantMean, meanTol)
		}
		// Variance of the sample variance is ~2*var^2/draws for near-normal
		// summands; allow a broad 10% + absolute slack band.
		if math.Abs(variance-wantVar) > 0.1*wantVar+6*wantVar/math.Sqrt(draws)+1e-6 {
			t.Errorf("Binomial(%d,%v): variance %v, want ~%v", tt.n, tt.p, variance, wantVar)
		}
	}
}

// TestBinomialDistributionSmall compares the empirical PMF of the sampler
// against exact binomial probabilities with a chi-square-style bound.
func TestBinomialDistributionSmall(t *testing.T) {
	t.Parallel()
	const n, p, draws = 8, 0.37, 400000
	r := New(77)
	var counts [n + 1]int
	for i := 0; i < draws; i++ {
		counts[r.Binomial(n, p)]++
	}
	for k := 0; k <= n; k++ {
		exact := math.Exp(lfact(n)-lfact(float64(k))-lfact(float64(n-k))) *
			math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
		want := exact * draws
		if want < 20 {
			continue // too rare for a tight frequency check
		}
		tol := 6 * math.Sqrt(want)
		if math.Abs(float64(counts[k])-want) > tol {
			t.Errorf("P(X=%d): observed %d, want %.0f +/- %.0f", k, counts[k], want, tol)
		}
	}
}

// TestBinomialRegimesAgree verifies the two samplers agree in distribution
// at a parameter point where both are usable, by comparing empirical CDFs.
func TestBinomialRegimesAgree(t *testing.T) {
	t.Parallel()
	const n, p, draws = 200, 0.2, 200000 // n*p = 40: BTRS by default
	rInv, rBTRS := New(101), New(202)
	cdfA := make([]float64, n+2)
	cdfB := make([]float64, n+2)
	for i := 0; i < draws; i++ {
		cdfA[rInv.binomialInversion(n, p)]++
		cdfB[rBTRS.binomialBTRS(n, p)]++
	}
	maxGap := 0.0
	accA, accB := 0.0, 0.0
	for k := 0; k <= n; k++ {
		accA += cdfA[k] / draws
		accB += cdfB[k] / draws
		if gap := math.Abs(accA - accB); gap > maxGap {
			maxGap = gap
		}
	}
	// Two-sample Kolmogorov-Smirnov 99.9% critical value.
	crit := 1.95 * math.Sqrt(2.0/draws)
	if maxGap > crit {
		t.Fatalf("inversion and BTRS disagree: KS distance %v > %v", maxGap, crit)
	}
}

func TestBinomialPanicsOnNegativeN(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Binomial(-1, 0.5) did not panic")
		}
	}()
	New(1).Binomial(-1, 0.5)
}

func BenchmarkBinomialInversion(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Binomial(1000, 0.005) // n*p = 5
	}
	_ = sink
}

func BenchmarkBinomialBTRS(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Binomial(1000000, 0.1)
	}
	_ = sink
}
