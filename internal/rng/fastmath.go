package rng

import "math"

// log1m returns log(1−p) for p ∈ [0, 1). math.Log1p is pure Go and
// dominates profiles of the samplers in this package, while math.Log has
// an assembly implementation on the platforms we target. Computing
// log(1−p) directly is safe whenever the subtraction does not cancel
// (p not tiny); a short series covers the tiny-p range with relative
// error below 1e-17.
func log1m(p float64) float64 {
	if p > 1e-4 {
		return math.Log(1 - p)
	}
	return -p * (1 + p*(0.5+p*(1.0/3+p*0.25)))
}
