package rng

import "math"

// GeometricInf is the saturated return value of Geometric: the sampled
// failure run does not fit in a uint64 (or p is zero, making success
// impossible). Callers treat it as "beyond any horizon"; adding it to a
// slot number would overflow, so compare before adding.
const GeometricInf = math.MaxUint64

// Geometric returns a draw of the number of failures before the first
// success in independent Bernoulli(p) trials: P(G = g) = (1-p)^g · p for
// g ≥ 0. It consumes exactly one uniform variate, via inversion of the
// geometric CDF (G = ⌊ln U / ln(1-p)⌋).
//
// Geometric is the slot-skip primitive of the event-skip simulation
// kernel (internal/kernel): a station — or an aggregate channel state —
// whose per-slot success probability is p for a stretch of slots can
// jump straight to its next success by drawing the length of the
// failure run instead of flipping a coin per slot.
//
// p ≥ 1 returns 0 (immediate success). p ≤ 0, and draws whose failure
// run exceeds uint64 range, return GeometricInf.
func (r *Rand) Geometric(p float64) uint64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return GeometricInf
	}
	// Float64Open never returns 0 or 1, so the logarithm is finite and
	// negative, and the ratio is non-negative.
	g := math.Log(r.Float64Open()) / log1m(p)
	if g >= math.MaxUint64 || math.IsNaN(g) {
		return GeometricInf
	}
	return uint64(g)
}
