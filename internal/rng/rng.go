// Package rng provides a small, fast, deterministic random-number substrate
// for the simulators in this repository.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 so that any 64-bit seed yields a well-mixed state. Independent
// streams for parallel experiments are derived by hashing a master seed
// with a list of labels (protocol name, network size, run index), which
// makes every simulated run reproducible in isolation: the result of run
// (protocol, k, i) does not depend on which goroutine executed it or on
// which other runs were scheduled.
//
// The package intentionally does not use math/rand: the experiments need
// explicit seeding, cheap stream derivation and distributions (binomial,
// Poisson) that the standard library does not provide.
package rng

import (
	"math"
	"math/bits"
)

// Rand is a deterministic pseudo-random generator. It is not safe for
// concurrent use; derive one stream per goroutine with NewStream instead
// of sharing a Rand.
type Rand struct {
	s [4]uint64
}

// splitMix64 advances x through the SplitMix64 sequence and returns the
// next output. It is used only for seeding and stream derivation.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator state from seed, as if freshly created by New.
func (r *Rand) Reseed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i] = splitMix64(&x)
	}
	// xoshiro256** requires a state that is not all zero; SplitMix64 cannot
	// produce four consecutive zeros, but keep an explicit guard for clarity.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// fnv1a64 hashes b into h using the FNV-1a mixing function.
func fnv1a64(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// NewStream derives an independent generator from a master seed and a list
// of labels. Streams with different labels are statistically independent
// for all practical purposes; identical labels always yield the identical
// stream.
func NewStream(master uint64, labels ...string) *Rand {
	h := uint64(14695981039346656037) // FNV offset basis
	var buf [8]byte
	for i := uint(0); i < 8; i++ {
		buf[i] = byte(master >> (8 * i))
	}
	h = fnv1a64(h, buf[:])
	for _, l := range labels {
		h = fnv1a64(h, []byte{0xff}) // label separator
		h = fnv1a64(h, []byte(l))
	}
	return New(h)
}

// StreamID derives a child seed from a master seed and integer coordinates.
// It is a cheaper alternative to NewStream when the coordinates are numeric
// (e.g. run indices in a sweep).
func StreamID(master uint64, coords ...uint64) uint64 {
	x := master
	out := splitMix64(&x)
	for _, c := range coords {
		x ^= c * 0x9e3779b97f4a7c15
		out ^= splitMix64(&x)
	}
	return out
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1), never exactly zero,
// suitable for logarithms.
func (r *Rand) Float64Open() float64 {
	for {
		f := (float64(r.Uint64()>>11) + 0.5) / (1 << 53)
		if f > 0 && f < 1 {
			return f
		}
	}
}

// Uint64n returns a uniform integer in [0, n) using Lemire's multiply-shift
// rejection method. n must be > 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Bernoulli returns true with probability p. Probabilities outside [0, 1]
// are clamped.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1), via inversion.
func (r *Rand) ExpFloat64() float64 {
	return -math.Log(r.Float64Open())
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Shuffle pseudo-randomly permutes the first n elements using swap, in the
// style of math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := int(r.Uint64n(uint64(i + 1)))
		swap(i, j)
	}
}
