package rng

import (
	"math"
	"sort"
	"testing"
)

// geometricReference draws the same distribution as Geometric by flipping
// explicit Bernoulli(p) coins — the per-slot process the sampler collapses.
func geometricReference(r *Rand, p float64) uint64 {
	var g uint64
	for !r.Bernoulli(p) {
		g++
	}
	return g
}

func TestGeometricEdgeCases(t *testing.T) {
	r := New(1)
	if g := r.Geometric(1); g != 0 {
		t.Errorf("Geometric(1) = %d, want 0", g)
	}
	if g := r.Geometric(1.5); g != 0 {
		t.Errorf("Geometric(1.5) = %d, want 0", g)
	}
	if g := r.Geometric(0); g != GeometricInf {
		t.Errorf("Geometric(0) = %d, want GeometricInf", g)
	}
	if g := r.Geometric(-0.25); g != GeometricInf {
		t.Errorf("Geometric(-0.25) = %d, want GeometricInf", g)
	}
	// p so small that ln U / ln(1-p) overflows uint64 for essentially
	// every U: must saturate, not wrap.
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1e-300); g != GeometricInf {
			t.Fatalf("Geometric(1e-300) = %d, want GeometricInf", g)
		}
	}
}

func TestGeometricMeanVariance(t *testing.T) {
	// Mean (1-p)/p and variance (1-p)/p² of the failures-before-success
	// geometric, checked within 5 standard errors.
	for _, p := range []float64{0.5, 0.1, 0.01, 1e-4} {
		r := NewStream(42, "geometric-moments")
		const n = 200_000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			g := float64(r.Geometric(p))
			sum += g
			sumSq += g * g
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		wantMean := (1 - p) / p
		wantVar := (1 - p) / (p * p)
		// Std error of the sample mean is sqrt(var/n); the sample variance
		// of a geometric has relative std error ~ sqrt(κ/n) with excess
		// kurtosis κ ≤ 9 for small p.
		seMean := math.Sqrt(wantVar / n)
		if math.Abs(mean-wantMean) > 5*seMean {
			t.Errorf("p=%v: mean = %v, want %v ± %v", p, mean, wantMean, 5*seMean)
		}
		if math.Abs(variance-wantVar) > 0.1*wantVar {
			t.Errorf("p=%v: variance = %v, want %v within 10%%", p, variance, wantVar)
		}
	}
}

func TestGeometricKSAgainstReference(t *testing.T) {
	// Two-sample Kolmogorov–Smirnov test: inversion sampler vs the
	// explicit Bernoulli-loop process it replaces.
	for _, p := range []float64{0.5, 0.08, 0.01} {
		const n = 20_000
		a := make([]float64, n)
		b := make([]float64, n)
		ra := NewStream(7, "geometric-ks", "inversion")
		rb := NewStream(7, "geometric-ks", "reference")
		for i := 0; i < n; i++ {
			a[i] = float64(ra.Geometric(p))
			b[i] = float64(geometricReference(rb, p))
		}
		d := ksStatistic(a, b)
		// Critical value at α = 0.001 for the two-sample KS test is
		// c(α)·sqrt(2/n) with c(0.001) ≈ 1.95.
		crit := 1.95 * math.Sqrt(2.0/n)
		if d > crit {
			t.Errorf("p=%v: KS statistic %v exceeds %v", p, d, crit)
		}
	}
}

// ksStatistic computes the two-sample Kolmogorov–Smirnov statistic.
func ksStatistic(a, b []float64) float64 {
	sort.Float64s(a)
	sort.Float64s(b)
	var d float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		// Advance both samples through every copy of the smaller value:
		// with discrete (tied) data the empirical CDFs may only be
		// compared between distinct values.
		x := a[i]
		if b[j] < x {
			x = b[j]
		}
		for i < len(a) && a[i] == x {
			i++
		}
		for j < len(b) && b[j] == x {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b)))
		if diff > d {
			d = diff
		}
	}
	return d
}

func TestGeometricDeterminism(t *testing.T) {
	// Identical streams yield identical draw sequences regardless of how
	// many other streams are being consumed concurrently — the property
	// internal/montecarlo relies on for rep-indexed reproducibility.
	const n = 1000
	want := make([]uint64, n)
	r := NewStream(99, "geometric-det", "3")
	for i := range want {
		want[i] = r.Geometric(0.05)
	}
	done := make(chan []uint64, 4)
	for g := 0; g < 4; g++ {
		go func() {
			rr := NewStream(99, "geometric-det", "3")
			// Interleave with unrelated streams to prove isolation.
			noise := NewStream(1234, "noise")
			got := make([]uint64, n)
			for i := range got {
				noise.Geometric(0.3)
				got[i] = rr.Geometric(0.05)
			}
			done <- got
		}()
	}
	for g := 0; g < 4; g++ {
		got := <-done
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("draw %d differs across goroutines: %d vs %d", i, got[i], want[i])
			}
		}
	}
}

func TestGeometricConsumesOneUniform(t *testing.T) {
	// The skip kernel budget-accounts one uniform per geometric draw; a
	// change here would silently break rep-indexed stream alignment.
	a := New(5)
	b := New(5)
	for i := 0; i < 100; i++ {
		a.Geometric(0.2)
		b.Float64Open()
	}
	if a.Uint64() != b.Uint64() {
		t.Error("Geometric consumed a different number of variates than one Float64Open")
	}
}
