package rng

import "math"

// _ptrsCutoff is the mean above which the transformed-rejection Poisson
// sampler replaces Knuth multiplication, whose cost grows linearly in the
// mean.
const _ptrsCutoff = 12

// Poisson returns a draw from the Poisson distribution with the given mean.
// It is used by the dynamic-arrival workload generator (message arrivals
// per slot) and by statistical tests. Exact for all means.
func (r *Rand) Poisson(mean float64) int {
	switch {
	case mean <= 0:
		return 0
	case mean < _ptrsCutoff:
		return r.poissonKnuth(mean)
	default:
		return r.poissonPTRS(mean)
	}
}

// poissonKnuth draws Poisson(mean) by multiplying uniforms until the
// product drops below exp(-mean). Expected cost O(mean).
func (r *Rand) poissonKnuth(mean float64) int {
	limit := math.Exp(-mean)
	prod := r.Float64()
	k := 0
	for prod > limit {
		prod *= r.Float64()
		k++
	}
	return k
}

// poissonPTRS draws Poisson(mean) using Hörmann's PTRS transformed
// rejection ("The transformed rejection method for generating Poisson
// random variables", 1993). O(1) expected time, valid for mean >= 10.
func (r *Rand) poissonPTRS(mean float64) int {
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logMean := math.Log(mean)

	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int(kf)
		}
		if kf < 0 || (us < 0.013 && v > us) {
			continue
		}
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= kf*logMean-mean-lfact(kf) {
			return int(kf)
		}
	}
}
