package rng

import "math"

// _btrsCutoff is the n*p value above which the transformed-rejection
// sampler is used instead of sequential inversion. Inversion costs O(n*p)
// per draw, so the cutoff balances the two methods' constant factors.
const _btrsCutoff = 16

// Binomial returns a draw from Binomial(n, p): the number of successes in
// n independent Bernoulli(p) trials. It is exact (not a normal
// approximation) for all n and p.
//
// For n*min(p,1-p) below a small cutoff it uses sequential CDF inversion;
// above the cutoff it uses Hörmann's BTRS transformed-rejection algorithm
// ("The generation of binomial random variates", 1993), which runs in O(1)
// expected time independent of n. This matters because the windowed-protocol
// engine draws per-slot occupancies Binomial(m, 1/w) with m up to 10^7.
func (r *Rand) Binomial(n int, p float64) int {
	if n < 0 {
		panic("rng: Binomial with n < 0")
	}
	if n == 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Exploit the symmetry Binomial(n,p) = n - Binomial(n,1-p) so the
	// samplers only deal with p <= 1/2 (both require it for efficiency and,
	// for BTRS, correctness of the constants).
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	if float64(n)*p < _btrsCutoff {
		return r.binomialInversion(n, p)
	}
	return r.binomialBTRS(n, p)
}

// binomialInversion draws Binomial(n, p) by walking the CDF from 0.
// Expected cost O(n*p + 1); requires p <= 1/2 for efficiency only.
func (r *Rand) binomialInversion(n int, p float64) int {
	q := 1 - p
	// s = p/q, f = q^n computed in log space to survive large n.
	logQ := log1m(p)
	f := math.Exp(float64(n) * logQ)
	if f <= 0 {
		// q^n underflowed (enormous n with p just below cutoff/n). Fall back
		// to a sum of two halves, each of which is better conditioned.
		h := n / 2
		return r.Binomial(h, p) + r.Binomial(n-h, p)
	}
	s := p / q
	u := r.Float64()
	k := 0
	for {
		if u < f {
			return k
		}
		u -= f
		f *= s * float64(n-k) / float64(k+1)
		k++
		if k > n {
			// Floating-point residue: the probabilities summed to slightly
			// less than u. The mass beyond n is zero, so return n.
			return n
		}
	}
}

// binomialBTRS draws Binomial(n, p) using the BTRS algorithm of Hörmann
// (transformed rejection with direct log-gamma acceptance). Requires
// p <= 1/2 and n*p >= 10.
func (r *Rand) binomialBTRS(n int, p float64) int {
	q := 1 - p
	nf := float64(n)
	spq := math.Sqrt(nf * p * q)
	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := nf*p + 0.5
	vr := 0.92 - 4.2/b
	urvr := 0.86 * vr
	alpha := (2.83 + 5.1/b) * spq
	lpq := math.Log(p / q)
	m := math.Floor((nf + 1) * p) // mode
	hm := lfact(m) + lfact(nf-m)

	for {
		v := r.Float64()
		var u float64
		if v <= urvr {
			u = v/vr - 0.43
			k := math.Floor((2*a/(0.5-math.Abs(u))+b)*u + c)
			return int(k)
		}
		if v >= vr {
			u = r.Float64() - 0.5
		} else {
			u = v/vr - 0.93
			u = math.Copysign(0.5, u) - u
			v = r.Float64() * vr
		}
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*a/us+b)*u + c)
		if kf < 0 || kf > nf {
			continue
		}
		v = v * alpha / (a/(us*us) + b)
		if math.Log(v) <= hm-lfact(kf)-lfact(nf-kf)+(kf-m)*lpq {
			return int(kf)
		}
	}
}

// lfact returns log(x!) for non-negative real x via the log-gamma function.
func lfact(x float64) float64 {
	v, _ := math.Lgamma(x + 1)
	return v
}
