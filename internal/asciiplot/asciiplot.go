// Package asciiplot renders log-log line charts as plain text, so the
// repository can regenerate the paper's Figure 1 in a terminal without
// external plotting dependencies.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// seriesMarks are assigned to series in order of addition.
var _seriesMarks = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Plot is a log-log scatter/line chart. Create one with New, add series,
// then Render.
type Plot struct {
	title  string
	xLabel string
	yLabel string
	series []series
}

type series struct {
	name string
	xs   []float64
	ys   []float64
}

// New returns an empty plot with the given title and axis labels.
func New(title, xLabel, yLabel string) *Plot {
	return &Plot{title: title, xLabel: xLabel, yLabel: yLabel}
}

// AddSeries appends a named series; xs and ys must have equal length and
// positive values (non-positive points are dropped — the chart is
// logarithmic on both axes).
func (p *Plot) AddSeries(name string, xs, ys []float64) {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	var fx, fy []float64
	for i := 0; i < n; i++ {
		if xs[i] > 0 && ys[i] > 0 {
			fx = append(fx, xs[i])
			fy = append(fy, ys[i])
		}
	}
	p.series = append(p.series, series{name: name, xs: fx, ys: fy})
}

// Render draws the chart into a width×height character canvas (axes and
// legend add a margin around it) and returns it as a string.
func (p *Plot) Render(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range p.series {
		for i := range s.xs {
			xMin = math.Min(xMin, s.xs[i])
			xMax = math.Max(xMax, s.xs[i])
			yMin = math.Min(yMin, s.ys[i])
			yMax = math.Max(yMax, s.ys[i])
			points++
		}
	}
	var b strings.Builder
	if p.title != "" {
		fmt.Fprintf(&b, "%s\n", p.title)
	}
	if points == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	// Expand degenerate ranges so single points still render.
	if xMin == xMax {
		xMin, xMax = xMin/2, xMax*2
	}
	if yMin == yMax {
		yMin, yMax = yMin/2, yMax*2
	}
	lxMin, lxMax := math.Log10(xMin), math.Log10(xMax)
	lyMin, lyMax := math.Log10(yMin), math.Log10(yMax)

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(math.Round((math.Log10(x) - lxMin) / (lxMax - lxMin) * float64(width-1)))
		return clamp(c, 0, width-1)
	}
	row := func(y float64) int {
		r := int(math.Round((math.Log10(y) - lyMin) / (lyMax - lyMin) * float64(height-1)))
		return clamp(height-1-r, 0, height-1)
	}
	for si, s := range p.series {
		mark := _seriesMarks[si%len(_seriesMarks)]
		// Connect consecutive points with interpolated steps in log space.
		for i := range s.xs {
			grid[row(s.ys[i])][col(s.xs[i])] = mark
			if i == 0 {
				continue
			}
			const segments = 24
			x0, y0 := math.Log10(s.xs[i-1]), math.Log10(s.ys[i-1])
			x1, y1 := math.Log10(s.xs[i]), math.Log10(s.ys[i])
			for t := 1; t < segments; t++ {
				f := float64(t) / segments
				xi := math.Pow(10, x0+(x1-x0)*f)
				yi := math.Pow(10, y0+(y1-y0)*f)
				r, c := row(yi), col(xi)
				if grid[r][c] == ' ' {
					grid[r][c] = '.'
				}
			}
		}
	}

	yLo := fmt.Sprintf("%.3g", yMin)
	yHi := fmt.Sprintf("%.3g", yMax)
	margin := len(yHi)
	if len(yLo) > margin {
		margin = len(yLo)
	}
	fmt.Fprintf(&b, "%s\n", p.yLabel)
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", margin)
		switch r {
		case 0:
			label = pad(yHi, margin)
		case height - 1:
			label = pad(yLo, margin)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", margin), width-len(fmt.Sprintf("%.3g", xMax)),
		fmt.Sprintf("%.3g", xMin), fmt.Sprintf("%.3g", xMax))
	fmt.Fprintf(&b, "%s  %s (log-log)\n", strings.Repeat(" ", margin), p.xLabel)
	for si, s := range p.series {
		fmt.Fprintf(&b, "  %c %s\n", _seriesMarks[si%len(_seriesMarks)], s.name)
	}
	return b.String()
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}
