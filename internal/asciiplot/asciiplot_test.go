package asciiplot

import (
	"strings"
	"testing"
)

func TestRenderEmpty(t *testing.T) {
	t.Parallel()
	p := New("empty", "x", "y")
	out := p.Render(40, 10)
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty plot missing placeholder:\n%s", out)
	}
}

func TestRenderBasic(t *testing.T) {
	t.Parallel()
	p := New("title", "nodes", "steps")
	p.AddSeries("a", []float64{10, 100, 1000}, []float64{40, 700, 7000})
	p.AddSeries("b", []float64{10, 100, 1000}, []float64{50, 550, 5500})
	out := p.Render(60, 16)
	for _, want := range []string{"title", "nodes", "steps", "a", "b", "*", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered plot missing %q:\n%s", want, out)
		}
	}
	// Axis extremes must appear.
	if !strings.Contains(out, "10") || !strings.Contains(out, "1e+03") && !strings.Contains(out, "1000") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}

func TestRenderDropsNonPositive(t *testing.T) {
	t.Parallel()
	p := New("t", "x", "y")
	p.AddSeries("s", []float64{-1, 0, 10}, []float64{5, 5, 5})
	out := p.Render(40, 10)
	if strings.Contains(out, "(no data)") {
		t.Fatalf("positive point dropped:\n%s", out)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	t.Parallel()
	p := New("t", "x", "y")
	p.AddSeries("s", []float64{100}, []float64{100})
	out := p.Render(40, 10)
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not drawn:\n%s", out)
	}
}

func TestRenderMismatchedLengths(t *testing.T) {
	t.Parallel()
	p := New("t", "x", "y")
	p.AddSeries("s", []float64{1, 10, 100}, []float64{5, 50})
	out := p.Render(40, 10)
	if out == "" {
		t.Fatal("mismatched series rendered nothing")
	}
}

func TestRenderMinimumDimensions(t *testing.T) {
	t.Parallel()
	p := New("t", "x", "y")
	p.AddSeries("s", []float64{1, 1000}, []float64{1, 1000})
	out := p.Render(1, 1) // clamped internally
	lines := strings.Split(out, "\n")
	if len(lines) < 8 {
		t.Fatalf("clamped render too small:\n%s", out)
	}
}

func TestMonotoneSeriesSlopesUpward(t *testing.T) {
	t.Parallel()
	// A y = x series on a log-log chart must place the first point on a
	// lower row than the last point.
	p := New("", "x", "y")
	p.AddSeries("s", []float64{1, 1e6}, []float64{1, 1e6})
	out := p.Render(60, 20)
	lines := strings.Split(out, "\n")
	firstMark, lastMark := -1, -1
	for i, line := range lines {
		if strings.Contains(line, "*") {
			if firstMark == -1 {
				firstMark = i
			}
			lastMark = i
		}
	}
	if firstMark == -1 || firstMark == lastMark {
		t.Fatalf("expected marks on distinct rows:\n%s", out)
	}
}
