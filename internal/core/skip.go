package core

import "repro/internal/protocol"

// This file implements the event-skip contract (protocol.SkipController)
// for One-Fail Adaptive, so the kernel in internal/kernel can sample the
// slot of the next successful delivery directly instead of resolving every
// slot.
//
// Between successes, OFA's probability sequence has exactly the two-class
// periodic structure the contract describes (period 2):
//
//   - BT-steps (even slots) use 1/(1 + log₂(σ+1)), which depends only on
//     σ and is therefore constant until the next success — the special
//     class.
//   - AT-steps (odd slots) use 1/κ̃, and κ̃ grows by 1 on every observed
//     AT-step whether or not anything was heard (Task 1 of Algorithm 1) —
//     the regular class, varying but monotone, so a phase spanning g
//     AT-steps has probabilities boxed in [1/(κ̃+g), 1/κ̃].
//
// The phase horizon caps κ̃'s within-phase growth at ~1/8 of its current
// value, keeping the thinning envelope (the dominating constant the kernel
// rejects against) within ~6% of the true success probability, so almost
// every candidate drawn is accepted. Shorter phases would waste phase
// setups; longer ones would waste rejected candidates during the initial
// κ̃-climb, where the estimator must grow from δ+1 to ≈k before any
// delivery is likely.

// countOdd returns the number of odd integers in [a, b).
func countOdd(a, b uint64) uint64 {
	if b <= a {
		return 0
	}
	return (b - a + (a & 1)) / 2
}

// btProb returns the BT-step transmission probability for the current σ
// (cached; recomputed by Observe on each reception).
func (o *OneFailAdaptive) btProb() float64 {
	return o.btp
}

// SkipPhase implements protocol.SkipController.
func (o *OneFailAdaptive) SkipPhase(slot uint64) protocol.SkipPhase {
	span := uint64(o.kappa) / 8
	if span < 64 {
		span = 64
	}
	end := slot + span - 1
	// Prob at a regular slot s reflects the AT-step increments of
	// [cursor, s) only, so the last regular slot of the phase sees at
	// most countOdd(slot, end) increments beyond the current κ̃.
	kappaEnd := o.kappa + float64(countOdd(slot, end))
	return protocol.SkipPhase{
		End:            end,
		Period:         2,
		SpecialResidue: 0, // even slots are BT-steps
		SpecialProb:    o.btProb(),
		RegularLo:      1 / kappaEnd,
		RegularHi:      1 / o.kappa,
	}
}

// ProbQuiet implements protocol.SkipController: the probability at slot s
// assuming every slot in [cursor, s) resolves without a success.
func (o *OneFailAdaptive) ProbQuiet(s uint64) float64 {
	if s%2 == 0 {
		return o.btProb()
	}
	return 1 / (o.kappa + float64(countOdd(o.cursor, s)))
}

// SkipTo implements protocol.SkipController: observing a failure changes
// state only on AT-steps (κ̃++), so skipping is one counting step.
func (o *OneFailAdaptive) SkipTo(s uint64) {
	if s > o.cursor {
		o.kappa += float64(countOdd(o.cursor, s))
		o.cursor = s
	}
}

var _ protocol.SkipController = (*OneFailAdaptive)(nil)
