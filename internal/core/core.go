// Package core implements the two contention-resolution protocols
// contributed by the paper:
//
//   - One-Fail Adaptive (Algorithm 1): a fair probability-based protocol
//     that interleaves an AT algorithm (transmission probability 1/κ̃,
//     where κ̃ is a continuously updated density estimator) with a BT
//     algorithm (probability inversely logarithmic in the number of
//     delivered messages). It solves static k-selection in
//     2(δ+1)k + O(log²k) slots with probability at least 1 − 2/(1+k)
//     (Theorem 1), for e < δ ≤ Σ_{j=1..5}(5/6)^j.
//
//   - Exp Back-on/Back-off (Algorithm 2): a windowed sawtooth protocol —
//     windows double in an outer loop (back-on) and shrink geometrically
//     by (1−δ) in an inner loop (back-off). It solves static k-selection
//     in 4(1+1/δ)k slots w.h.p. (Theorem 2), for 0 < δ < 1/e.
//
// Neither protocol needs any knowledge of the number of contenders k nor
// of the network size n — the "unbounded" setting of the paper's title.
package core

import (
	"fmt"
	"math"

	"repro/internal/protocol"
)

// Parameter bounds from the paper.
const (
	// OFADeltaMin is the exclusive lower bound e for One-Fail Adaptive's δ.
	OFADeltaMin = math.E
	// OFADeltaMax is the inclusive upper bound Σ_{j=1..5}(5/6)^j = 23255/7776
	// for One-Fail Adaptive's δ (Theorem 1).
	OFADeltaMax = 23255.0 / 7776.0
	// EBBDeltaMax is the exclusive upper bound 1/e for Exp
	// Back-on/Back-off's δ (Theorem 2).
	EBBDeltaMax = 1 / math.E

	// DefaultOFADelta is the value simulated in the paper's evaluation (§5).
	DefaultOFADelta = 2.72
	// DefaultEBBDelta is the value simulated in the paper's evaluation (§5).
	DefaultEBBDelta = 0.366
)

// OneFailAdaptive is the shared state of Algorithm 1 for one execution.
// It implements protocol.Controller. The zero value is not usable; create
// instances with NewOneFailAdaptive.
//
// Slot parity follows the paper's pseudocode: slots are numbered from 1,
// even slots are BT-steps and odd slots are AT-steps.
type OneFailAdaptive struct {
	delta  float64
	kappa  float64 // κ̃, the density estimator
	sigma  uint64  // σ, messages received so far
	cursor uint64  // next unobserved slot (event-skip contract; see skip.go)
	btp    float64 // cached BT-step probability 1/(1+log₂(σ+1))
}

// NewOneFailAdaptive returns a controller for Algorithm 1 with parameter
// δ = delta. It returns an error unless e < δ ≤ Σ_{j=1..5}(5/6)^j, the
// range required by Theorem 1.
func NewOneFailAdaptive(delta float64) (*OneFailAdaptive, error) {
	if !(delta > OFADeltaMin && delta <= OFADeltaMax) {
		return nil, fmt.Errorf("core: One-Fail Adaptive requires e < δ ≤ %.4f, got %v", OFADeltaMax, delta)
	}
	return &OneFailAdaptive{delta: delta, kappa: delta + 1, cursor: 1, btp: 1}, nil
}

// Delta returns the protocol parameter δ.
func (o *OneFailAdaptive) Delta() float64 { return o.delta }

// DensityEstimate returns the current value of the density estimator κ̃.
func (o *OneFailAdaptive) DensityEstimate() float64 { return o.kappa }

// Received returns σ, the number of messages received so far.
func (o *OneFailAdaptive) Received() uint64 { return o.sigma }

// Prob implements protocol.Controller; it is lines 6–10 of Algorithm 1.
func (o *OneFailAdaptive) Prob(slot uint64) float64 {
	if slot%2 == 0 {
		// BT-step: transmit with probability 1/(1 + log₂(σ+1)).
		return o.btp
	}
	// AT-step: transmit with probability 1/κ̃.
	return 1 / o.kappa
}

// Observe implements protocol.Controller; it is line 11 (Task 1) and
// Task 2 of Algorithm 1. The AT-step increment of κ̃ applies before the
// reception decrement, and the floor δ+1 applies last — consistent with
// the analysis' bookkeeping κ̃_{r,t} = κ̃_{r,1} − δσ + t − σ (Lemma 4).
func (o *OneFailAdaptive) Observe(slot uint64, success bool) {
	o.cursor = slot + 1
	atStep := slot%2 == 1
	if atStep {
		o.kappa++
	}
	if !success {
		return
	}
	o.sigma++
	o.btp = 1 / (1 + math.Log2(float64(o.sigma)+1))
	dec := o.delta
	if atStep {
		dec = o.delta + 1
	}
	o.kappa = math.Max(o.kappa-dec, o.delta+1)
}

// RoundingMode selects how Exp Back-on/Back-off materializes its
// real-valued window length w into an integer number of slots. The
// paper's analysis telescopes real-valued windows, so this is an
// implementation choice; see BenchmarkAblationEBBRounding.
type RoundingMode uint8

// Rounding modes for window materialization.
const (
	// RoundCeil uses ⌈w⌉ slots (default: never shrinks a window below its
	// analytical size).
	RoundCeil RoundingMode = iota
	// RoundFloor uses ⌊w⌋ slots.
	RoundFloor
	// RoundNearest uses ⌊w+0.5⌋ slots.
	RoundNearest
)

// String implements fmt.Stringer.
func (m RoundingMode) String() string {
	switch m {
	case RoundCeil:
		return "ceil"
	case RoundFloor:
		return "floor"
	case RoundNearest:
		return "nearest"
	default:
		return fmt.Sprintf("RoundingMode(%d)", uint8(m))
	}
}

// ExpBackonBackoff is the window schedule of Algorithm 2 for one
// execution. It implements protocol.Schedule. Create instances with
// NewExpBackonBackoff.
type ExpBackonBackoff struct {
	delta    float64
	rounding RoundingMode
	i        int     // outer-loop exponent; window sequence starts at 2^1
	w        float64 // current real-valued window; < 1 forces a new phase
}

// EBBOption configures NewExpBackonBackoff.
type EBBOption func(*ExpBackonBackoff)

// WithEBBRounding selects the window rounding mode (default RoundCeil).
func WithEBBRounding(m RoundingMode) EBBOption {
	return func(e *ExpBackonBackoff) { e.rounding = m }
}

// NewExpBackonBackoff returns the window schedule of Algorithm 2 with
// parameter δ = delta. It returns an error unless 0 < δ < 1/e, the range
// required by Theorem 2.
func NewExpBackonBackoff(delta float64, opts ...EBBOption) (*ExpBackonBackoff, error) {
	if !(delta > 0 && delta < EBBDeltaMax) {
		return nil, fmt.Errorf("core: Exp Back-on/Back-off requires 0 < δ < 1/e ≈ %.4f, got %v", EBBDeltaMax, delta)
	}
	e := &ExpBackonBackoff{delta: delta}
	for _, opt := range opts {
		opt(e)
	}
	return e, nil
}

// Delta returns the protocol parameter δ.
func (e *ExpBackonBackoff) Delta() float64 { return e.delta }

// Phase returns the current outer-loop index i (the phase whose windows
// started at 2^i slots); 0 before the first window.
func (e *ExpBackonBackoff) Phase() int { return e.i }

// NextWindow implements protocol.Schedule; it is Algorithm 2 verbatim:
// the outer loop sets w ← 2^i, the inner loop emits windows while w ≥ 1,
// shrinking w ← w(1−δ) after each.
func (e *ExpBackonBackoff) NextWindow() int {
	if e.w < 1 {
		e.i++
		e.w = math.Exp2(float64(e.i))
	}
	w := e.w
	e.w *= 1 - e.delta
	switch e.rounding {
	case RoundFloor:
		return int(math.Floor(w))
	case RoundNearest:
		return int(math.Floor(w + 0.5))
	default:
		return int(math.Ceil(w))
	}
}

// Compile-time interface conformance checks.
var (
	_ protocol.Controller = (*OneFailAdaptive)(nil)
	_ protocol.Schedule   = (*ExpBackonBackoff)(nil)
)
