package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewOneFailAdaptiveValidation(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name    string
		delta   float64
		wantErr bool
	}{
		{name: "paper value", delta: DefaultOFADelta, wantErr: false},
		{name: "upper bound inclusive", delta: OFADeltaMax, wantErr: false},
		{name: "just above e", delta: math.Nextafter(math.E, 3), wantErr: false},
		{name: "e excluded", delta: math.E, wantErr: true},
		{name: "above upper bound", delta: OFADeltaMax + 1e-9, wantErr: true},
		{name: "zero", delta: 0, wantErr: true},
		{name: "negative", delta: -1, wantErr: true},
		{name: "NaN", delta: math.NaN(), wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			_, err := NewOneFailAdaptive(tt.delta)
			if gotErr := err != nil; gotErr != tt.wantErr {
				t.Fatalf("NewOneFailAdaptive(%v) error = %v, wantErr %v", tt.delta, err, tt.wantErr)
			}
		})
	}
}

func TestOFADeltaMaxValue(t *testing.T) {
	t.Parallel()
	// Σ_{j=1..5}(5/6)^j, the upper bound of Theorem 1.
	sum := 0.0
	for j := 1; j <= 5; j++ {
		sum += math.Pow(5.0/6.0, float64(j))
	}
	if math.Abs(sum-OFADeltaMax) > 1e-12 {
		t.Fatalf("OFADeltaMax = %v, want Σ(5/6)^j = %v", OFADeltaMax, sum)
	}
	// The paper's default must lie in the admissible range.
	if !(DefaultOFADelta > math.E && DefaultOFADelta <= OFADeltaMax) {
		t.Fatalf("DefaultOFADelta %v outside (e, %v]", DefaultOFADelta, OFADeltaMax)
	}
}

func TestOFAInitialState(t *testing.T) {
	t.Parallel()
	o, err := NewOneFailAdaptive(DefaultOFADelta)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := o.DensityEstimate(), DefaultOFADelta+1; got != want {
		t.Errorf("initial κ̃ = %v, want δ+1 = %v", got, want)
	}
	if got := o.Received(); got != 0 {
		t.Errorf("initial σ = %d, want 0", got)
	}
	if got := o.Delta(); got != DefaultOFADelta {
		t.Errorf("Delta() = %v, want %v", got, DefaultOFADelta)
	}
}

func TestOFAProbBTSteps(t *testing.T) {
	t.Parallel()
	o, err := NewOneFailAdaptive(DefaultOFADelta)
	if err != nil {
		t.Fatal(err)
	}
	// σ = 0: BT probability is 1/(1+log₂(1)) = 1.
	if got := o.Prob(2); got != 1 {
		t.Errorf("BT prob at σ=0 = %v, want 1", got)
	}
	// After one reception in a BT-step, σ = 1: probability 1/(1+log₂2) = 1/2.
	o.Observe(2, true)
	if got, want := o.Prob(4), 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("BT prob at σ=1 = %v, want %v", got, want)
	}
	// σ = 3: probability 1/(1+log₂4) = 1/3.
	o.Observe(4, true)
	o.Observe(6, true)
	if got, want := o.Prob(8), 1.0/3; math.Abs(got-want) > 1e-12 {
		t.Errorf("BT prob at σ=3 = %v, want %v", got, want)
	}
}

func TestOFAProbATSteps(t *testing.T) {
	t.Parallel()
	o, err := NewOneFailAdaptive(DefaultOFADelta)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (DefaultOFADelta + 1)
	if got := o.Prob(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("AT prob at start = %v, want 1/(δ+1) = %v", got, want)
	}
	// A silent AT-step increments κ̃ by one (line 11 of Algorithm 1).
	o.Observe(1, false)
	if got, want := o.DensityEstimate(), DefaultOFADelta+2; math.Abs(got-want) > 1e-12 {
		t.Errorf("κ̃ after silent AT-step = %v, want %v", got, want)
	}
	// A silent BT-step leaves κ̃ unchanged.
	o.Observe(2, false)
	if got, want := o.DensityEstimate(), DefaultOFADelta+2; math.Abs(got-want) > 1e-12 {
		t.Errorf("κ̃ after silent BT-step = %v, want %v", got, want)
	}
}

func TestOFAObserveDecrements(t *testing.T) {
	t.Parallel()
	const delta = DefaultOFADelta
	t.Run("AT-step reception nets -δ", func(t *testing.T) {
		t.Parallel()
		o, _ := NewOneFailAdaptive(delta)
		// Grow κ̃ well above the floor with silent AT-steps first.
		for s := uint64(1); s < 21; s += 2 {
			o.Observe(s, false)
		}
		before := o.DensityEstimate()
		o.Observe(21, true) // AT-step: +1 then −(δ+1)
		if got, want := o.DensityEstimate(), before-delta; math.Abs(got-want) > 1e-9 {
			t.Errorf("κ̃ after AT reception = %v, want %v", got, want)
		}
	})
	t.Run("BT-step reception nets -δ", func(t *testing.T) {
		t.Parallel()
		o, _ := NewOneFailAdaptive(delta)
		for s := uint64(1); s < 21; s += 2 {
			o.Observe(s, false)
		}
		before := o.DensityEstimate()
		o.Observe(22, true) // BT-step: −δ, no increment
		if got, want := o.DensityEstimate(), before-delta; math.Abs(got-want) > 1e-9 {
			t.Errorf("κ̃ after BT reception = %v, want %v", got, want)
		}
	})
	t.Run("floor at δ+1", func(t *testing.T) {
		t.Parallel()
		o, _ := NewOneFailAdaptive(delta)
		for s := uint64(2); s < 100; s += 2 {
			o.Observe(s, true) // repeated BT receptions push κ̃ to the floor
		}
		if got, want := o.DensityEstimate(), delta+1; got != want {
			t.Errorf("κ̃ floor = %v, want δ+1 = %v", got, want)
		}
	})
}

// TestOFAEstimatorInvariant property-checks κ̃ ≥ δ+1 and σ monotone under
// arbitrary observation sequences.
func TestOFAEstimatorInvariant(t *testing.T) {
	t.Parallel()
	f := func(events []bool) bool {
		o, err := NewOneFailAdaptive(DefaultOFADelta)
		if err != nil {
			return false
		}
		var prevSigma uint64
		for i, success := range events {
			slot := uint64(i + 1)
			p := o.Prob(slot)
			if p <= 0 || p > 1 {
				return false
			}
			o.Observe(slot, success)
			if o.DensityEstimate() < DefaultOFADelta+1 {
				return false
			}
			if o.Received() < prevSigma {
				return false
			}
			prevSigma = o.Received()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestOFABookkeepingIdentity verifies the analysis identity
// κ̃_t = κ̃_1 − δσ + a − σ (Lemma 4), where a counts AT-steps, as long as
// the floor is never hit.
func TestOFABookkeepingIdentity(t *testing.T) {
	t.Parallel()
	o, _ := NewOneFailAdaptive(DefaultOFADelta)
	kappa1 := o.DensityEstimate()
	atSteps, sigma := 0, 0
	// Alternate silent steps with occasional receptions on AT-steps only
	// (the identity accounts receptions at the AT rate −(δ+1); BT
	// receptions cost −δ), keeping receptions rare enough that κ̃ stays
	// above the floor.
	for slot := uint64(1); slot <= 1000; slot++ {
		success := slot%18 == 9
		if slot%2 == 1 {
			atSteps++
		}
		o.Observe(slot, success)
		if success {
			sigma++
		}
	}
	want := kappa1 - DefaultOFADelta*float64(sigma) + float64(atSteps) - float64(sigma)
	if got := o.DensityEstimate(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("κ̃ = %v, want bookkeeping value %v", got, want)
	}
}

func TestNewExpBackonBackoffValidation(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name    string
		delta   float64
		wantErr bool
	}{
		{name: "paper value", delta: DefaultEBBDelta, wantErr: false},
		{name: "small", delta: 0.01, wantErr: false},
		{name: "zero", delta: 0, wantErr: true},
		{name: "1/e excluded", delta: EBBDeltaMax, wantErr: true},
		{name: "above 1/e", delta: 0.5, wantErr: true},
		{name: "negative", delta: -0.1, wantErr: true},
		{name: "NaN", delta: math.NaN(), wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			_, err := NewExpBackonBackoff(tt.delta)
			if gotErr := err != nil; gotErr != tt.wantErr {
				t.Fatalf("NewExpBackonBackoff(%v) error = %v, wantErr %v", tt.delta, err, tt.wantErr)
			}
		})
	}
}

// TestEBBWindowSequence checks the sawtooth against hand-computed windows
// for δ = 0.366 with ceil rounding: phase i starts at w = 2^i and shrinks
// by factor 0.634 while w ≥ 1.
func TestEBBWindowSequence(t *testing.T) {
	t.Parallel()
	e, err := NewExpBackonBackoff(DefaultEBBDelta)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: 2, ⌈1.268⌉=2 (then 0.804 < 1 ends the phase).
	// Phase 2: 4, ⌈2.536⌉=3, ⌈1.608⌉=2, ⌈1.019⌉=2 (then 0.646 < 1).
	// Phase 3: 8, ⌈5.072⌉=6, ⌈3.216⌉=4, ⌈2.039⌉=3, ⌈1.293⌉=2 (then 0.820 < 1).
	want := []int{2, 2, 4, 3, 2, 2, 8, 6, 4, 3, 2}
	for i, w := range want {
		if got := e.NextWindow(); got != w {
			t.Fatalf("window %d = %d, want %d", i, got, w)
		}
	}
	if got := e.Phase(); got != 3 {
		t.Fatalf("phase = %d, want 3", got)
	}
}

func TestEBBRoundingModes(t *testing.T) {
	t.Parallel()
	tests := []struct {
		mode RoundingMode
		want []int // first four windows for δ = 0.366
	}{
		{mode: RoundCeil, want: []int{2, 2, 4, 3}},
		{mode: RoundFloor, want: []int{2, 1, 4, 2}},
		{mode: RoundNearest, want: []int{2, 1, 4, 3}},
	}
	for _, tt := range tests {
		t.Run(tt.mode.String(), func(t *testing.T) {
			t.Parallel()
			e, err := NewExpBackonBackoff(DefaultEBBDelta, WithEBBRounding(tt.mode))
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range tt.want {
				if got := e.NextWindow(); got != w {
					t.Fatalf("window %d = %d, want %d", i, got, w)
				}
			}
		})
	}
}

// TestEBBSawtoothShape property-checks the schedule invariants across
// admissible δ: windows are ≥ 1; within a phase windows never grow; each
// phase starts at 2^i.
func TestEBBSawtoothShape(t *testing.T) {
	t.Parallel()
	deltas := []float64{0.01, 0.1, 0.2, DefaultEBBDelta, 0.3678}
	for _, delta := range deltas {
		e, err := NewExpBackonBackoff(delta)
		if err != nil {
			t.Fatal(err)
		}
		prev := 0
		prevPhase := 0
		for i := 0; i < 2000; i++ {
			w := e.NextWindow()
			if w < 1 {
				t.Fatalf("δ=%v: window %d = %d < 1", delta, i, w)
			}
			phase := e.Phase()
			if phase < prevPhase {
				t.Fatalf("δ=%v: phase went backwards: %d -> %d", delta, prevPhase, phase)
			}
			if phase == prevPhase && prev > 0 && w > prev {
				t.Fatalf("δ=%v: window grew within phase %d: %d -> %d", delta, phase, prev, w)
			}
			if phase != prevPhase {
				if want := int(math.Exp2(float64(phase))); w != want {
					t.Fatalf("δ=%v: phase %d starts with window %d, want 2^i = %d", delta, phase, w, want)
				}
			}
			prev, prevPhase = w, phase
		}
	}
}

// TestEBBTelescopedLength verifies the analysis' telescoped bound: the
// total number of slots in phases 1..i is at most 2^(i+1)/δ (the paper's
// telescoping ΣΣ2^i(1−δ)^j), with ceil rounding adding at most one slot
// per window.
func TestEBBTelescopedLength(t *testing.T) {
	t.Parallel()
	const delta = DefaultEBBDelta
	e, err := NewExpBackonBackoff(delta)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	windows := 0
	for e.Phase() < 15 {
		total += float64(e.NextWindow())
		windows++
	}
	// Strip the first window of phase 15 that ended the loop.
	bound := math.Exp2(16)/delta + float64(windows)
	if total > bound {
		t.Fatalf("total slots through phase 14 = %v, want ≤ %v", total, bound)
	}
}

func BenchmarkOFAController(b *testing.B) {
	o, _ := NewOneFailAdaptive(DefaultOFADelta)
	for i := 0; i < b.N; i++ {
		slot := uint64(i + 1)
		_ = o.Prob(slot)
		o.Observe(slot, i%7 == 0)
	}
}

func BenchmarkEBBSchedule(b *testing.B) {
	e, _ := NewExpBackonBackoff(DefaultEBBDelta)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += e.NextWindow()
	}
	_ = sink
}
