package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// BenchmarkStorePublish measures the file-backed publish path a worker
// pays when a job completes: one content-addressed result write plus
// the terminal job-record write, both with write-to-temp + fsync +
// atomic rename and a directory sync. This is the durability tax on
// every completed job under -data-dir; it is pinned in BENCH_BASE.json
// so a regression (an extra sync, a lost batch) fails the benchjson
// diff gate.
func BenchmarkStorePublish(b *testing.B) {
	s, err := OpenFile(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	// A representative result document: a small sweep's JSON, ~1 KiB.
	doc := make([]byte, 0, 1024)
	doc = append(doc, `{"kind":"evaluate","rows":[`...)
	for i := 0; len(doc) < 1000; i++ {
		if i > 0 {
			doc = append(doc, ',')
		}
		doc = fmt.Appendf(doc, `{"k":%d,"slots":%d}`, 10*i, 1234+i)
	}
	doc = append(doc, `]}`...)
	created := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := sha256.Sum256([]byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)})
		key := hex.EncodeToString(sum[:])
		if err := s.PutResult(key, doc); err != nil {
			b.Fatal(err)
		}
		rec := JobRecord{
			ID:       key[:12] + "-1",
			Kind:     "evaluate",
			Key:      key,
			Params:   json.RawMessage(`{"ks":[10,100],"runs":3,"seed":1}`),
			Status:   StatusDone,
			Created:  created,
			Finished: created,
		}
		if err := s.PutJob(rec); err != nil {
			b.Fatal(err)
		}
	}
}
