package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// SessionRecord is the persisted form of one live session: the
// validated spec document plus the slot-stamped control log — exactly
// the replay inputs — together with enough bookkeeping to answer a
// poll after the fact. The server writes it on session end and on
// drain, so a SIGTERM'd daemon leaves every session's replay document
// on disk.
type SessionRecord struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	Tenant string `json:"tenant,omitempty"`
	// Params is the canonical validated session spec document
	// (spec.SessionSpec.EncodeParams).
	Params json.RawMessage `json:"params,omitempty"`
	// Log is the slot-stamped control log in application order.
	Log json.RawMessage `json:"log,omitempty"`
	// Status is "running" (drained mid-flight), "stopped", "canceled"
	// or "failed".
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// Windows and Dropped snapshot the stream counters at write time.
	Windows int    `json:"windows"`
	Dropped uint64 `json:"dropped,omitempty"`

	Created time.Time `json:"created"`
	Stopped time.Time `json:"stopped,omitempty"`
}

// SessionStore persists session records by id.
type SessionStore interface {
	// PutSession creates or replaces the record atomically.
	PutSession(rec SessionRecord) error
	// GetSession returns the record for id, if present.
	GetSession(id string) (SessionRecord, bool, error)
	// Sessions returns every persisted record, in no particular order.
	Sessions() ([]SessionRecord, error)
	// DeleteSession removes the record; deleting an absent id is not an
	// error.
	DeleteSession(id string) error
}

func (m *memStore) PutSession(rec SessionRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sessions == nil {
		m.sessions = make(map[string]SessionRecord)
	}
	m.sessions[rec.ID] = rec
	return nil
}

func (m *memStore) GetSession(id string) (SessionRecord, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.sessions[id]
	return rec, ok, nil
}

func (m *memStore) Sessions() ([]SessionRecord, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SessionRecord, 0, len(m.sessions))
	for _, rec := range m.sessions {
		out = append(out, rec)
	}
	return out, nil
}

func (m *memStore) DeleteSession(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.sessions, id)
	return nil
}

// sessionPath lives beside jobs/ and results/: one JSON record per
// session under <dir>/sessions/.
func (f *fileStore) sessionPath(id string) string {
	return filepath.Join(f.dir, "sessions", id+".json")
}

func (f *fileStore) PutSession(rec SessionRecord) error {
	if err := safeName(rec.ID); err != nil {
		return err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	path := f.sessionPath(rec.ID)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return writeAtomic(path, data, true)
}

func (f *fileStore) GetSession(id string) (SessionRecord, bool, error) {
	if err := safeName(id); err != nil {
		return SessionRecord{}, false, err
	}
	data, err := os.ReadFile(f.sessionPath(id))
	if os.IsNotExist(err) {
		return SessionRecord{}, false, nil
	}
	if err != nil {
		return SessionRecord{}, false, err
	}
	var rec SessionRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return SessionRecord{}, false, err
	}
	return rec, true, nil
}

func (f *fileStore) Sessions() ([]SessionRecord, error) {
	dir := filepath.Join(f.dir, "sessions")
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []SessionRecord
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var rec SessionRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			_ = os.Rename(path, path+".corrupt")
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

func (f *fileStore) DeleteSession(id string) error {
	if err := safeName(id); err != nil {
		return err
	}
	err := os.Remove(f.sessionPath(id))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
